// Benchmarks regenerating each table and figure of the NISQ+ evaluation
// (scaled-down Monte-Carlo sizes; the cmd/ binaries run the full
// versions). Key quantities are attached to each benchmark via
// ReportMetric so `go test -bench . -benchmem` prints the series the
// paper reports.
package repro_test

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"repro/internal/backlog"
	"repro/internal/core"
	"repro/internal/decodepool"
	"repro/internal/decoder"
	"repro/internal/decoder/greedy"
	"repro/internal/decoder/mld"
	"repro/internal/decoder/mwpm"
	"repro/internal/decoder/neural"
	"repro/internal/decoder/unionfind"
	"repro/internal/lattice"
	"repro/internal/noise"
	"repro/internal/obs"
	"repro/internal/pauli"
	"repro/internal/qprog"
	"repro/internal/rotated"
	"repro/internal/sfq"
	"repro/internal/sfqchip"
	"repro/internal/spacetime"
	"repro/internal/sqv"
	"repro/internal/stats"
	"repro/internal/surface"
	"repro/internal/tradeoff"
)

// BenchmarkFig1SQV evaluates the Fig. 1 SQV boost for the paper's
// 1,024-qubit, p=1e-5 machine at d=3 and d=5.
func BenchmarkFig1SQV(b *testing.B) {
	m := sqv.Machine{PhysicalQubits: 1024, ErrorRate: 1e-5}
	fit := sqv.NISQPlusFit()
	var boost3, boost5 float64
	for i := 0; i < b.N; i++ {
		p3, err := m.PlanAt(fit, 3)
		if err != nil {
			b.Fatal(err)
		}
		p5, err := m.PlanAt(fit, 5)
		if err != nil {
			b.Fatal(err)
		}
		boost3, boost5 = p3.BoostVsTarget, p5.BoostVsTarget
	}
	b.ReportMetric(boost3, "boost@d3")
	b.ReportMetric(boost5, "boost@d5")
}

// BenchmarkFig5Backlog traces the Cuccaro adder at processing ratio 2:
// the exponential wall-clock blow-up of §III.
func BenchmarkFig5Backlog(b *testing.B) {
	ad, err := qprog.Cuccaro(20)
	if err != nil {
		b.Fatal(err)
	}
	prog := backlog.Program(ad.Circuit.Decompose())
	m := backlog.Model{SyndromeCycleNs: 400, DecodeNs: 800}
	var slow float64
	for i := 0; i < b.N; i++ {
		tr, err := m.Execute(prog)
		if err != nil {
			b.Fatal(err)
		}
		slow = tr.Slowdown()
	}
	b.ReportMetric(math.Log10(slow), "log10-slowdown")
	b.ReportMetric(float64(len(prog)), "gates")
}

// BenchmarkFig6RunningTime sweeps all five Table I benchmarks across
// decoder processing ratios.
func BenchmarkFig6RunningTime(b *testing.B) {
	benches, err := qprog.Benchmarks()
	if err != nil {
		b.Fatal(err)
	}
	ratios := []float64{0.5, 1.0, 1.5, 2.0}
	for i := 0; i < b.N; i++ {
		for _, bench := range benches {
			if _, err := backlog.Sweep(backlog.Program(bench.Circuit), 400, ratios); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTable1Circuits generates and decomposes the five benchmark
// circuits.
func BenchmarkTable1Circuits(b *testing.B) {
	var tGates int
	for i := 0; i < b.N; i++ {
		benches, err := qprog.Benchmarks()
		if err != nil {
			b.Fatal(err)
		}
		tGates = 0
		for _, bench := range benches {
			tGates += bench.Stats.TGates
		}
	}
	b.ReportMetric(float64(tGates), "total-T")
}

// lifetimePL runs a small lifetime simulation and returns PL.
func lifetimePL(b *testing.B, d int, p float64, v sfq.Variant, cycles int, seed int64) float64 {
	b.Helper()
	ch, err := noise.NewDephasing(p)
	if err != nil {
		b.Fatal(err)
	}
	sim, err := surface.New(surface.Config{
		Distance: d,
		Channel:  ch,
		DecoderZ: sfq.New(lattice.MustNew(d).MatchingGraph(lattice.ZErrors), v),
		Seed:     seed,
	})
	if err != nil {
		b.Fatal(err)
	}
	res, err := sim.Run(cycles)
	if err != nil {
		b.Fatal(err)
	}
	return res.PL
}

// BenchmarkFig10Final measures the final design's logical error rate per
// distance at p = 4% (just below the pseudo-threshold band).
func BenchmarkFig10Final(b *testing.B) {
	for _, d := range []int{3, 5, 7, 9} {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			var pl float64
			for i := 0; i < b.N; i++ {
				pl = lifetimePL(b, d, 0.04, sfq.Final, 2000, int64(i))
			}
			b.ReportMetric(pl, "PL@4%")
		})
	}
}

// BenchmarkFig10Variants measures the incremental designs of the top row
// at d = 5, p = 4%.
func BenchmarkFig10Variants(b *testing.B) {
	for _, v := range []sfq.Variant{sfq.Baseline, sfq.WithReset, sfq.WithBoundary, sfq.Final} {
		b.Run(v.Name(), func(b *testing.B) {
			var pl float64
			for i := 0; i < b.N; i++ {
				pl = lifetimePL(b, 5, 0.04, v, 1500, int64(i))
			}
			b.ReportMetric(pl, "PL@4%")
		})
	}
}

// BenchmarkTable4Timing collects decoder execution-time statistics per
// distance (Table IV) and the Fig. 10(c) cycle distributions.
func BenchmarkTable4Timing(b *testing.B) {
	for _, d := range []int{3, 5, 7, 9} {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			var max, mean float64
			for i := 0; i < b.N; i++ {
				var times []float64
				ch, err := noise.NewDephasing(0.05)
				if err != nil {
					b.Fatal(err)
				}
				sim, err := surface.New(surface.Config{
					Distance: d,
					Channel:  ch,
					DecoderZ: sfq.New(lattice.MustNew(d).MatchingGraph(lattice.ZErrors), sfq.Final),
					Seed:     int64(i),
					Observer: func(e lattice.ErrorType, st sfq.Stats) {
						times = append(times, st.TimeNs())
					},
				})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := sim.Run(1500); err != nil {
					b.Fatal(err)
				}
				s := stats.Summarize(times)
				max, mean = s.Max, s.Mean
			}
			b.ReportMetric(max, "max-ns")
			b.ReportMetric(mean, "avg-ns")
		})
	}
}

// BenchmarkTable3Synthesis characterizes the decoder subcircuits.
func BenchmarkTable3Synthesis(b *testing.B) {
	var area float64
	for i := 0; i < b.N; i++ {
		for _, r := range sfqchip.TableIII() {
			if r.Name == "Full Circuit" {
				area = r.AreaUm2
			}
		}
	}
	b.ReportMetric(area/1e6, "module-mm2")
}

// BenchmarkTable5Fit fits the c2 model on a small below-threshold sweep.
func BenchmarkTable5Fit(b *testing.B) {
	var c2 float64
	for i := 0; i < b.N; i++ {
		points, err := stats.Curves(stats.CurveConfig{
			Distances:  []int{3},
			Rates:      []float64{0.02, 0.03, 0.04},
			Cycles:     3000,
			NewChannel: func(p float64) (noise.Channel, error) { return noise.NewDephasing(p) },
			NewDecoderZ: func(d int) decoder.Decoder {
				return sfq.New(lattice.MustNew(d).MatchingGraph(lattice.ZErrors), sfq.Final)
			},
			Seed:    int64(i),
			Workers: 3,
		})
		if err != nil {
			b.Fatal(err)
		}
		_, got, err := stats.FitC2(points, 0.05)
		if err != nil {
			b.Fatal(err)
		}
		c2 = got
	}
	b.ReportMetric(c2, "c2@d3")
}

// BenchmarkFig11Tradeoff sweeps the required-code-distance comparison.
func BenchmarkFig11Tradeoff(b *testing.B) {
	cfg := tradeoff.DefaultConfig()
	rates := []float64{1e-5, 1e-4, 1e-3, 1e-2}
	var gap float64
	for i := 0; i < b.N; i++ {
		pts, err := tradeoff.Figure11(tradeoff.PaperDecoders(), rates, cfg)
		if err != nil {
			b.Fatal(err)
		}
		var dSfq, dNnet int
		for _, pt := range pts {
			if pt.P == 1e-4 && pt.Feasible {
				switch pt.Decoder {
				case "sfq":
					dSfq = pt.Distance
				case "nnet":
					dNnet = pt.Distance
				}
			}
		}
		gap = float64(dNnet) / float64(dSfq)
	}
	b.ReportMetric(gap, "offline/online-d")
}

// BenchmarkDecoders compares per-round decode latency of every decoder
// implementation on identical d=9 syndromes at p = 5%.
func BenchmarkDecoders(b *testing.B) {
	l := lattice.MustNew(9)
	g := l.MatchingGraph(lattice.ZErrors)
	rng := noise.NewRand(5)
	ch, err := noise.NewDephasing(0.05)
	if err != nil {
		b.Fatal(err)
	}
	var targets []int
	for _, s := range l.DataSites() {
		targets = append(targets, l.QubitIndex(s))
	}
	syndromes := make([][]bool, 64)
	for i := range syndromes {
		f := pauli.NewFrame(l.NumQubits())
		ch.Sample(rng, f, targets)
		syndromes[i] = g.Syndrome(f)
	}
	decoders := []decoder.Decoder{
		sfq.New(g, sfq.Final),
		greedy.New(),
		mwpm.New(),
		unionfind.New(),
	}
	for _, dec := range decoders {
		b.Run(dec.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := dec.Decode(g, syndromes[i%len(syndromes)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSystemLifetime exercises the full core façade.
func BenchmarkSystemLifetime(b *testing.B) {
	sys, err := core.New(core.Config{Distance: 5, PhysicalError: 0.03, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	var pl float64
	for i := 0; i < b.N; i++ {
		rep, err := sys.RunLifetime(1000)
		if err != nil {
			b.Fatal(err)
		}
		pl = rep.PL
	}
	b.ReportMetric(pl, "PL")
}

// BenchmarkRotatedLayout compares the lifetime of the rotated layout
// extension against the paper's unrotated layout at d = 5.
func BenchmarkRotatedLayout(b *testing.B) {
	code, err := rotated.New(5)
	if err != nil {
		b.Fatal(err)
	}
	var pl float64
	for i := 0; i < b.N; i++ {
		res, err := code.Lifetime(0.03, 2000, rotated.Exact, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		pl = res.PL
	}
	b.ReportMetric(pl, "PL@3%")
	b.ReportMetric(float64(code.NumData()+code.NumChecks()*2), "qubits~")
}

// BenchmarkSpacetime runs the measurement-noise extension.
func BenchmarkSpacetime(b *testing.B) {
	var pl float64
	for i := 0; i < b.N; i++ {
		sim, err := spacetime.NewSimulator(spacetime.Config{
			Distance: 5, P: 0.01, Q: 0.01, Rounds: 5,
			Method: spacetime.Exact, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := sim.Run(300)
		if err != nil {
			b.Fatal(err)
		}
		pl = res.PL
	}
	b.ReportMetric(pl, "PL/block")
}

// BenchmarkSmallDecoders covers the d=3-only baselines: exact maximum
// likelihood and the trained neural decoder.
func BenchmarkSmallDecoders(b *testing.B) {
	l := lattice.MustNew(3)
	g := l.MatchingGraph(lattice.ZErrors)
	ml, err := mld.New(g, 0.05)
	if err != nil {
		b.Fatal(err)
	}
	nn, err := neural.New(g, neural.TrainConfig{P: 0.05, Samples: 20000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	rng := noise.NewRand(9)
	ch, err := noise.NewDephasing(0.05)
	if err != nil {
		b.Fatal(err)
	}
	var targets []int
	for _, s := range l.DataSites() {
		targets = append(targets, l.QubitIndex(s))
	}
	syndromes := make([][]bool, 64)
	for i := range syndromes {
		f := pauli.NewFrame(l.NumQubits())
		ch.Sample(rng, f, targets)
		syndromes[i] = g.Syndrome(f)
	}
	for _, dec := range []decoder.Decoder{ml, nn} {
		b.Run(dec.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := dec.Decode(g, syndromes[i%len(syndromes)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkErasureDecoding exercises the linear-time erasure peeler.
func BenchmarkErasureDecoding(b *testing.B) {
	l := lattice.MustNew(9)
	g := l.MatchingGraph(lattice.ZErrors)
	u := unionfind.New()
	ch, err := noise.NewErasure(0.2, pauli.Z)
	if err != nil {
		b.Fatal(err)
	}
	rng := noise.NewRand(11)
	var targets []int
	for _, s := range l.DataSites() {
		targets = append(targets, l.QubitIndex(s))
	}
	type caseT struct {
		erased []bool
		syn    []bool
	}
	cases := make([]caseT, 32)
	for i := range cases {
		f := pauli.NewFrame(l.NumQubits())
		mask := ch.SampleErasure(rng, f, targets)
		erased := make([]bool, l.NumQubits())
		for k, e := range mask {
			if e {
				erased[targets[k]] = true
			}
		}
		cases[i] = caseT{erased: erased, syn: g.Syndrome(f)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := cases[i%len(cases)]
		if _, err := u.DecodeErasure(g, c.erased, c.syn); err != nil {
			b.Fatal(err)
		}
	}
}

// hotPathSyndromes draws the fixed seeded syndrome set the decode
// hot-path benchmarks and cmd/bench share (dephasing at p = 5%).
func hotPathSyndromes(b testing.TB, l *lattice.Lattice, g *lattice.Graph, count int, seed int64) [][]bool {
	b.Helper()
	rng := noise.NewRand(seed)
	ch, err := noise.NewDephasing(0.05)
	if err != nil {
		b.Fatal(err)
	}
	var targets []int
	for _, s := range l.DataSites() {
		targets = append(targets, l.QubitIndex(s))
	}
	syndromes := make([][]bool, count)
	for i := range syndromes {
		f := pauli.NewFrame(l.NumQubits())
		ch.Sample(rng, f, targets)
		syndromes[i] = g.Syndrome(f)
	}
	return syndromes
}

// BenchmarkDecodeHotPath compares the legacy allocating Decode path with
// the pooled DecodeInto path for every matching decoder at d ∈ {5,9,13},
// on fixed seeded syndromes. ns/decode and allocs/decode are attached as
// metrics; cmd/bench regenerates the same matrix into BENCH_pr2.json.
func BenchmarkDecodeHotPath(b *testing.B) {
	for _, d := range []int{5, 9, 13} {
		l := lattice.MustNew(d)
		g := l.MatchingGraph(lattice.ZErrors)
		syndromes := hotPathSyndromes(b, l, g, 64, int64(100+d))
		for _, dec := range []decodepool.IntoDecoder{greedy.New(), mwpm.New(), unionfind.New()} {
			b.Run(fmt.Sprintf("%s/d=%d/legacy", dec.Name(), d), func(b *testing.B) {
				benchDecode(b, func(i int) error {
					_, err := dec.Decode(g, syndromes[i%len(syndromes)])
					return err
				})
			})
			b.Run(fmt.Sprintf("%s/d=%d/pooled", dec.Name(), d), func(b *testing.B) {
				s := decodepool.NewScratch()
				for _, syn := range syndromes { // warm the scratch and cache
					if _, err := dec.DecodeInto(g, syn, s); err != nil {
						b.Fatal(err)
					}
				}
				benchDecode(b, func(i int) error {
					_, err := dec.DecodeInto(g, syndromes[i%len(syndromes)], s)
					return err
				})
			})
			// Same pooled path with telemetry attached (default 1-in-16
			// latency sampling): the allocs/decode metric must stay 0 and
			// ns/decode within a few percent of plain pooled — the basis
			// of the ci.sh overhead guard.
			b.Run(fmt.Sprintf("%s/d=%d/pooled+obs", dec.Name(), d), func(b *testing.B) {
				s := decodepool.NewScratch()
				s.Instrument(obs.NewHistogram(), nil, 0)
				for _, syn := range syndromes { // warm the scratch and cache
					if _, err := dec.DecodeInto(g, syn, s); err != nil {
						b.Fatal(err)
					}
				}
				benchDecode(b, func(i int) error {
					_, err := dec.DecodeInto(g, syndromes[i%len(syndromes)], s)
					return err
				})
			})
		}
	}
}

// BenchmarkSFQMesh compares the legacy struct-of-bools mesh kernel, the
// scalar bit-plane kernel, and the SWAR batch kernel at d ∈ {5,7,9,13}
// on fixed seeded syndromes, all through the pooled decode path.
// cycles/decode is attached as a metric — it must be identical across
// kernels (the conformance suites enforce this; the benchmark makes it
// visible). The batch case reports per-decode metrics (one call
// advances Lanes() decodes); the PR 5 acceptance bar is batch ns/decode
// ≤ ½ of the scalar bit-plane kernel at every d ≤ 13. cmd/bench
// regenerates the same matrix into BENCH_pr3.json / BENCH_pr5.json.
func BenchmarkSFQMesh(b *testing.B) {
	for _, d := range []int{5, 7, 9, 13} {
		l := lattice.MustNew(d)
		g := l.MatchingGraph(lattice.ZErrors)
		syndromes := hotPathSyndromes(b, l, g, 64, int64(100+d))
		for _, k := range []sfq.Kernel{sfq.KernelLegacy, sfq.KernelBitplane} {
			b.Run(fmt.Sprintf("d=%d/%s", d, k), func(b *testing.B) {
				mesh := sfq.NewWithKernel(g, sfq.Final, k)
				s := decodepool.NewScratch()
				for _, syn := range syndromes { // warm the scratch
					if _, err := mesh.DecodeInto(g, syn, s); err != nil {
						b.Fatal(err)
					}
				}
				var cycles int64
				benchDecodeN(b, 1, func(i int) error {
					_, err := mesh.DecodeInto(g, syndromes[i%len(syndromes)], s)
					cycles += int64(mesh.Stats().Cycles)
					return err
				})
				b.ReportMetric(float64(cycles)/float64(b.N), "cycles/decode")
			})
		}
		b.Run(fmt.Sprintf("d=%d/batch", d), func(b *testing.B) {
			batch := sfq.NewBatch(g, sfq.Final)
			s := decodepool.NewScratch()
			lanes := batch.Lanes()
			b.ReportMetric(float64(lanes), "lanes")
			// Rotating windows over the syndrome set so successive calls
			// decode fresh lane mixes.
			wins := make([][][]bool, len(syndromes))
			for i := range wins {
				win := make([][]bool, lanes)
				for j := range win {
					win[j] = syndromes[(i+j)%len(syndromes)]
				}
				wins[i] = win
			}
			for _, win := range wins { // warm the scratch
				if _, err := batch.DecodeBatchInto(g, win, s); err != nil {
					b.Fatal(err)
				}
			}
			var cycles int64
			benchDecodeN(b, lanes, func(i int) error {
				_, err := batch.DecodeBatchInto(g, wins[i%len(wins)], s)
				for j := 0; j < lanes; j++ {
					cycles += int64(batch.LaneStats(j).Cycles)
				}
				return err
			})
			b.ReportMetric(float64(cycles)/float64(b.N*lanes), "cycles/decode")
		})
	}
}

// benchDecode times one decode closure and reports ns/decode and
// allocs/decode (heap allocation count from runtime.MemStats).
func benchDecode(b *testing.B, decode func(i int) error) {
	benchDecodeN(b, 1, decode)
}

// benchDecodeN is benchDecode for closures that complete perCall
// decodes per invocation (the SWAR batch path): per-decode metrics are
// normalized by b.N·perCall.
func benchDecodeN(b *testing.B, perCall int, decode func(i int) error) {
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := decode(i); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	runtime.ReadMemStats(&ms1)
	n := float64(b.N) * float64(perCall)
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/n, "ns/decode")
	b.ReportMetric(float64(ms1.Mallocs-ms0.Mallocs)/n, "allocs/decode")
}
