// Command threshold regenerates the Fig. 10 logical-error-rate curves:
// Monte-Carlo lifetime simulation of the SFQ decoder mesh across code
// distances and physical error rates, for any of the paper's incremental
// design variants, with pseudo-threshold and accuracy-threshold
// estimates.
//
// Usage:
//
//	threshold [-variant final] [-cycles 20000] [-distances 3,5,7,9]
//	          [-rates 0.01,...,0.1] [-workers 0] [-seed 1]
//	          [-relwidth 0] [-progress] [-batch]
//
// Sweeps run on the sharded Monte-Carlo engine (internal/mc): points
// and trial shards execute in parallel, results are bit-identical for
// any -workers value, -relwidth enables adaptive early stopping on the
// Wilson interval, and Ctrl-C aborts cleanly.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"text/tabwriter"

	"repro/internal/decoder"
	"repro/internal/knob"
	"repro/internal/lattice"
	"repro/internal/noise"
	"repro/internal/obs"
	"repro/internal/plot"
	"repro/internal/progress"
	"repro/internal/sfq"
	"repro/internal/stats"
)

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	if err := knob.CheckEnv(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	variantName := flag.String("variant", "final", "design variant: baseline, resets, resets+boundaries, final")
	cycles := flag.Int("cycles", 20000, "syndrome cycles per (d, p) point")
	distances := flag.String("distances", "3,5,7,9", "code distances")
	rates := flag.String("rates", "0.01,0.02,0.03,0.04,0.05,0.06,0.07,0.08,0.09,0.10", "physical error rates")
	workers := flag.Int("workers", 0, "concurrent trial shards (0 = GOMAXPROCS)")
	seed := flag.Int64("seed", 1, "random seed")
	doPlot := flag.Bool("plot", false, "render the curves as an ASCII log-log chart")
	channel := flag.String("channel", "dephasing", "error channel: dephasing or depolarizing")
	relWidth := flag.Float64("relwidth", 0, "stop a point once its 95% CI is tighter than this fraction of PL (0 = run all cycles)")
	batch := flag.Bool("batch", false, "decode trials through the SWAR batch kernel (bit-identical results, higher throughput)")
	showProgress := flag.Bool("progress", false, "live progress line on stderr")
	obsAddr := flag.String("obs", "", "serve /metrics, /metrics.json, /manifest.json and /debug/pprof on this address (e.g. :9090)")
	flag.Parse()

	variant, ok := sfq.VariantByName(*variantName)
	if !ok {
		log.Fatalf("unknown variant %q", *variantName)
	}
	ds, err := parseInts(*distances)
	if err != nil {
		log.Fatal(err)
	}
	ps, err := parseFloats(*rates)
	if err != nil {
		log.Fatal(err)
	}

	// One mesh pool for the whole sweep: finished points release their
	// meshes for the next point to reuse instead of rebuilding lattice,
	// graph, and mesh per shard.
	pool := sfq.NewPool(variant)
	cfg := stats.CurveConfig{
		Distances:  ds,
		Rates:      ps,
		Cycles:     *cycles,
		NewChannel: func(p float64) (noise.Channel, error) { return noise.NewDephasing(p) },
		NewDecoderZ: func(d int) decoder.Decoder {
			if *batch {
				return pool.GetBatch(d, lattice.ZErrors)
			}
			return pool.Get(d, lattice.ZErrors)
		},
		Seed:           *seed,
		Workers:        *workers,
		TargetRelWidth: *relWidth,
		FreeDecoder:    pool.Release,
		Batch:          *batch,
	}
	if *obsAddr != "" {
		srv, err := obs.ServeDefault(*obsAddr, map[string]any{
			"variant": *variantName, "channel": *channel, "cycles": *cycles,
			"distances": *distances, "rates": *rates, "seed": *seed,
			"workers": *workers, "relwidth": *relWidth,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "obs: telemetry on http://%s/metrics\n", srv.Addr)
		cfg.Obs = obs.Default()
	}
	var bar *progress.Printer
	if *showProgress {
		bar = progress.New(os.Stderr, len(ds)*len(ps))
		cfg.Progress = bar.Observe
	}
	switch *channel {
	case "dephasing":
	case "depolarizing":
		cfg.NewChannel = func(p float64) (noise.Channel, error) { return noise.NewDepolarizing(p) }
		cfg.NewDecoderX = func(d int) decoder.Decoder {
			if *batch {
				return pool.GetBatch(d, lattice.XErrors)
			}
			return pool.Get(d, lattice.XErrors)
		}
	default:
		log.Fatalf("unknown channel %q", *channel)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	points, err := stats.CurvesContext(ctx, cfg)
	if bar != nil {
		bar.Finish()
	}
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Fig. 10 — logical error rate, %s design, %s channel, %d cycles/point\n\n", variant.Name(), *channel, *cycles)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "d\tp\tPL\t95% CI\terrors\tcycles\tforced")
	for _, pt := range points {
		fmt.Fprintf(w, "%d\t%.3f\t%.5f\t[%.5f, %.5f]\t%d\t%d\t%d\n",
			pt.D, pt.P, pt.PL, pt.Lo, pt.Hi, pt.Errors, pt.Cycles, pt.Forced)
	}
	w.Flush()

	fmt.Println()
	if *doPlot {
		chart := &plot.Chart{
			Title: "Fig. 10 " + variant.Name() + " design",
			LogX:  true, LogY: true,
			XLabel: "physical error rate", YLabel: "logical error rate",
			Width: 70, Height: 24,
		}
		for _, d := range ds {
			var xs, ys []float64
			for _, pt := range points {
				if pt.D == d {
					xs = append(xs, pt.P)
					ys = append(ys, pt.PL)
				}
			}
			chart.Add(plot.Series{Name: fmt.Sprintf("d=%d", d), X: xs, Y: ys})
		}
		chart.Add(plot.Series{Name: "PL=p", X: ps, Y: ps})
		fmt.Println(chart.Render())
	}
	byD := stats.ByDistance(points)
	for _, d := range ds {
		if pth, ok := stats.PseudoThreshold(byD[d]); ok {
			fmt.Printf("pseudo-threshold d=%d: %.4f (paper: ~0.05, 0.0475, 0.045, 0.035 for d=3,5,7,9)\n", d, pth)
		} else {
			fmt.Printf("pseudo-threshold d=%d: not crossed in sampled window\n", d)
		}
	}
	if th, ok := stats.AccuracyThreshold(points); ok {
		fmt.Printf("accuracy threshold: %.4f (paper: ~0.05)\n", th)
	} else {
		fmt.Println("accuracy threshold: no curve crossing in sampled window")
	}
}
