// Command spacetime runs the repository's measurement-noise extension:
// phenomenological lifetime simulation where syndrome bits themselves
// flip, decoded by matching detection events in the 3D space-time graph
// (greedy or exact blossom). This is the "beyond the paper" experiment:
// the NISQ+ evaluation assumes perfect extraction, and this harness
// quantifies what repeated noisy measurement costs.
//
// Usage:
//
//	spacetime [-distances 3,5,7] [-p 0.01] [-qs 0,0.005,0.01,0.02]
//	          [-rounds 5] [-blocks 2000] [-method exact] [-seed 1]
//	          [-workers 0]
//
// All (d, q) points run concurrently on the sharded Monte-Carlo
// engine; results are bit-identical for any -workers value.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"text/tabwriter"

	"repro/internal/knob"
	"repro/internal/spacetime"
)

func main() {
	if err := knob.CheckEnv(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	distances := flag.String("distances", "3,5,7", "code distances")
	p := flag.Float64("p", 0.01, "data error rate per round")
	qs := flag.String("qs", "0,0.005,0.01,0.02", "measurement flip rates")
	rounds := flag.Int("rounds", 5, "noisy rounds per block")
	blocks := flag.Int("blocks", 2000, "blocks per point")
	methodName := flag.String("method", "exact", "matching method: greedy or exact")
	seed := flag.Int64("seed", 1, "random seed")
	workers := flag.Int("workers", 0, "concurrent trial shards (0 = GOMAXPROCS)")
	flag.Parse()

	var method spacetime.Method
	switch *methodName {
	case "greedy":
		method = spacetime.Greedy
	case "exact":
		method = spacetime.Exact
	default:
		log.Fatalf("unknown method %q", *methodName)
	}
	var ds []int
	for _, s := range strings.Split(*distances, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			log.Fatal(err)
		}
		ds = append(ds, v)
	}
	var qrates []float64
	for _, s := range strings.Split(*qs, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			log.Fatal(err)
		}
		qrates = append(qrates, v)
	}

	var cfgs []spacetime.Config
	for _, d := range ds {
		for _, q := range qrates {
			cfgs = append(cfgs, spacetime.Config{
				Distance: d, P: *p, Q: q, Rounds: *rounds, Method: method,
			})
		}
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	results, err := spacetime.Sweep(ctx, cfgs, *blocks, *seed, *workers)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("space-time decoding (%s matching): p=%g, %d rounds/block, %d blocks/point\n\n",
		method, *p, *rounds, *blocks)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "d\tq\tlogical errors\tPL per block")
	for i, cfg := range cfgs {
		fmt.Fprintf(w, "%d\t%.3f\t%d\t%.5f\n", cfg.Distance, cfg.Q, results[i].LogicalErrors, results[i].PL)
	}
	w.Flush()
	fmt.Println("\nmeasurement noise raises PL; matching across time recovers the")
	fmt.Println("distance scaling that per-round 2D decoding loses when q > 0.")
}
