// Command tradeoff regenerates Fig. 11: the code distance each decoder
// needs to execute a 100-T-gate algorithm once decoding backlog is
// accounted for, across physical error rates.
//
// Usage:
//
//	tradeoff [-tgates 100] [-cycle 400] [-fail 0.5]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/knob"
	"repro/internal/tradeoff"
)

func main() {
	if err := knob.CheckEnv(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	tgates := flag.Int("tgates", 100, "T gates in the algorithm")
	cycle := flag.Float64("cycle", 400, "syndrome generation cycle (ns)")
	fail := flag.Float64("fail", 0.5, "target total failure probability")
	flag.Parse()

	cfg := tradeoff.Config{
		TGates:          *tgates,
		SyndromeCycleNs: *cycle,
		TargetFailure:   *fail,
		MaxDistance:     2001,
	}
	rates := []float64{1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2}
	specs := tradeoff.PaperDecoders()
	points, err := tradeoff.Figure11(specs, rates, cfg)
	if err != nil {
		log.Fatal(err)
	}
	byDecoder := map[string]map[float64]tradeoff.Point{}
	for _, pt := range points {
		if byDecoder[pt.Decoder] == nil {
			byDecoder[pt.Decoder] = map[float64]tradeoff.Point{}
		}
		byDecoder[pt.Decoder][pt.P] = pt
	}

	fmt.Printf("Fig. 11 — required code distance, %d T gates, %g ns cycle\n\n", *tgates, *cycle)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	header := "p"
	for _, s := range specs {
		header += "\t" + s.Name
	}
	fmt.Fprintln(w, header)
	for _, p := range rates {
		row := fmt.Sprintf("%.0e", p)
		for _, s := range specs {
			pt := byDecoder[s.Name][p]
			if pt.Feasible {
				row += fmt.Sprintf("\t%d", pt.Distance)
			} else {
				row += "\t—"
			}
		}
		fmt.Fprintln(w, row)
	}
	w.Flush()
	fmt.Println("\n(paper: the SFQ decoder needs ~10x smaller distance than backlogged")
	fmt.Println(" offline decoders; only the hypothetical no-backlog MWPM beats it)")
}
