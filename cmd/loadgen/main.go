// Command loadgen drives a running serve instance with open-loop
// Poisson traffic and writes the latency/shedding curve as a BENCH
// artifact (BENCH_pr6.json), so the service's p99-vs-offered-load
// behavior is tracked the same way the kernel benchmarks are.
//
// The run has two phases. Calibration floods the server closed-loop
// (a fixed population of back-to-back requesters) to estimate its
// decode capacity R; the measurement then replays open-loop Poisson
// arrivals at offered rates R/2, R and 2R — straddling saturation on
// whatever machine this runs on — unless -rates pins explicit values.
// Latency is measured from each request's *scheduled* arrival time, so
// a stalled sender cannot hide queueing delay (no coordinated
// omission), and only StatusOK responses enter the histogram — shed
// responses return fast and would flatter the tail.
//
// Usage:
//
//	loadgen -addr 127.0.0.1:9000 [-d 9] [-etype z] [-conns 4]
//	        [-duration 2s] [-rates 1000,5000,10000] [-max-rate 50000]
//	        [-density 0.08] [-seed 1] [-out BENCH_pr6.json]
//	        [-trace-http http://127.0.0.1:9090] [-trace-out BENCH_pr10.json]
//
// With -trace-http and -trace-out set, loadgen scrapes the server's
// /debug/traces flight recorder after the sweep and writes the
// per-stage latency decomposition — stage p50/p99 rows, the embedded
// PR 9 baseline with a before/after comparison, the worst-10 traces by
// wall time, and every captured shed/drop decision — as its own
// artifact. -trace-check makes the scrape's acceptance checks (≥1 shed
// decision with controller inputs, ≥1 shed decision carrying
// weight/sojourn inputs, ≥1 outlier trace whose stage durations sum to
// its wall time, and serve_queue_wait_ns p99 ≥20% under the PR 9
// baseline) fatal; ci.sh passes it.
//
// With -sweep, loadgen instead measures an in-process server at several
// scheduler widths (workers × mixed-distance closed-loop traffic) and
// appends lane-fill vs p99 rows to the BENCH_pr8.json artifact:
//
//	loadgen -sweep [-sweep-out BENCH_pr8.json] [-sweep-clients 16]
//	        [-duration 2s] [-density 0.08] [-seed 1]
package main

import (
	"encoding/json"
	"flag"
	"log"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/knob"
	"repro/internal/lattice"
	"repro/internal/mc"
	"repro/internal/obs"
	"repro/internal/serve"
)

// Artifact is the on-disk schema of BENCH_pr6.json.
type Artifact struct {
	Manifest      *obs.Manifest `json:"manifest"`
	CalibratedRPS float64       `json:"calibrated_rps"`
	// ClientFlushes counts socket flushes across every client for the
	// whole run; Sent / ClientFlushes is the pipelining batch factor
	// (1.0 before the batched-flush client fix).
	ClientFlushes uint64 `json:"client_flushes"`
	Rows          []Row  `json:"rows"`
}

// Row is one offered-load point of the latency/shedding curve.
type Row struct {
	OfferedRPS  float64 `json:"offered_rps"`
	AchievedRPS float64 `json:"achieved_rps"` // OK responses per wall second
	DurationS   float64 `json:"duration_s"`
	Sent        int64   `json:"sent"`
	OK          int64   `json:"ok"`
	Shed        int64   `json:"shed"`
	Errors      int64   `json:"errors"`
	Escalated   int64   `json:"escalated"` // OK responses flagged for level-2 re-decode
	ShedRate    float64 `json:"shed_rate"`
	EscRate     float64 `json:"esc_rate"` // Escalated / OK
	P50Ns       uint64  `json:"p50_ns"`
	P90Ns       uint64  `json:"p90_ns"`
	P99Ns       uint64  `json:"p99_ns"`
	MeanNs      float64 `json:"mean_ns"`
	MaxNs       uint64  `json:"max_ns"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")
	if err := knob.CheckEnv(); err != nil {
		log.Fatal(err)
	}

	addr := flag.String("addr", "", "serve framed-TCP address (required)")
	d := flag.Int("d", 9, "code distance to request")
	etype := flag.String("etype", "z", "error type: z or x")
	conns := flag.Int("conns", 4, "client connections")
	duration := flag.Duration("duration", 2*time.Second, "measurement time per offered rate")
	ratesFlag := flag.String("rates", "", "explicit offered rates (req/s), else R/2,R,2R from calibration")
	maxRate := flag.Float64("max-rate", 50000, "cap on the calibrated rate (bounds goroutine fan-out)")
	density := flag.Float64("density", 0.08, "per-check hot probability of generated syndromes")
	seed := flag.Int64("seed", 1, "root seed of the syndrome and arrival streams")
	out := flag.String("out", "BENCH_pr6.json", "artifact path")
	sweep := flag.Bool("sweep", false, "run the in-process multi-core sweep instead (workers × mixed-distance lane-fill/p99 rows)")
	sweepOut := flag.String("sweep-out", "BENCH_pr8.json", "artifact the sweep appends its serve rows to")
	sweepClients := flag.Int("sweep-clients", 16, "closed-loop requesters per sweep point")
	traceHTTP := flag.String("trace-http", "", "serve HTTP base URL (http://host:port) to scrape /debug/traces from")
	traceOut := flag.String("trace-out", "", "write the scraped per-stage trace decomposition to this artifact")
	traceCheck := flag.Bool("trace-check", false, "fail if the trace scrape misses a shed decision or a consistent outlier trace")
	flag.Parse()
	if *sweep {
		if err := runSweep(*sweepOut, *sweepClients, *duration, *density, *seed); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *addr == "" {
		log.Fatal("-addr is required")
	}
	var e lattice.ErrorType
	switch *etype {
	case "z":
		e = lattice.ZErrors
	case "x":
		e = lattice.XErrors
	default:
		log.Fatalf("etype %q is not z or x", *etype)
	}

	// A fixed deterministic syndrome working set: the run measures the
	// service, not syndrome generation.
	nchecks := lattice.MustNew(*d).MatchingGraph(e).NumChecks()
	const nsyns = 256
	syns := make([][]bool, nsyns)
	synID := mc.DeriveID(uint64(*d), uint64(e), 0x10ad)
	for i := range syns {
		rng := mc.NewRand(*seed, synID, int64(i))
		syn := make([]bool, nchecks)
		for j := range syn {
			syn[j] = rng.Float64() < *density
		}
		syns[i] = syn
	}

	clients := make([]*serve.Client, *conns)
	for i := range clients {
		c, err := serve.Dial(*addr)
		if err != nil {
			log.Fatalf("dial %s: %v", *addr, err)
		}
		clients[i] = c
		defer c.Close()
	}

	var rates []float64
	calibrated := 0.0
	if *ratesFlag != "" {
		for _, f := range strings.Split(*ratesFlag, ",") {
			r, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil || r <= 0 {
				log.Fatalf("bad rate %q", f)
			}
			rates = append(rates, r)
		}
	} else {
		calibrated = calibrate(clients, *d, e, syns, *maxRate)
		log.Printf("calibrated capacity ~%.0f req/s", calibrated)
		rates = []float64{calibrated / 2, calibrated, 2 * calibrated}
	}

	art := Artifact{
		Manifest: obs.NewManifest(map[string]any{
			"addr": *addr, "d": *d, "etype": *etype, "conns": *conns,
			"duration": duration.String(), "density": *density, "seed": *seed,
		}),
		CalibratedRPS: calibrated,
	}
	for i, rps := range rates {
		row := runRate(clients, *d, e, syns, rps, *duration, *seed, int64(i))
		log.Printf("offered %.0f/s: achieved %.0f/s ok, shed %.1f%%, escalated %.1f%%, p50 %s p99 %s",
			row.OfferedRPS, row.AchievedRPS, 100*row.ShedRate, 100*row.EscRate,
			time.Duration(row.P50Ns), time.Duration(row.P99Ns))
		art.Rows = append(art.Rows, row)
	}
	for _, c := range clients {
		art.ClientFlushes += c.Flushes()
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(art); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", *out)

	if *traceOut != "" {
		if *traceHTTP == "" {
			log.Fatal("-trace-out requires -trace-http")
		}
		if err := scrapeTraces(*traceHTTP, *traceOut, art.Manifest, *traceCheck); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", *traceOut)
	}
}

// calibrate estimates the server's decode capacity: a closed loop of
// back-to-back requesters (16 per connection) for half a second, OK
// responses per wall second, capped at maxRate.
func calibrate(clients []*serve.Client, d int, e lattice.ErrorType, syns [][]bool, maxRate float64) float64 {
	const per = 16
	var ok atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	start := time.Now()
	for ci, c := range clients {
		for w := 0; w < per; w++ {
			wg.Add(1)
			go func(c *serve.Client, off int) {
				defer wg.Done()
				for i := off; ; i += per {
					select {
					case <-stop:
						return
					default:
					}
					resp, err := c.Do(&serve.Request{D: d, EType: e, Syndrome: syns[i%len(syns)]})
					if err != nil {
						return
					}
					if resp.Status == serve.StatusOK {
						ok.Add(1)
					}
				}
			}(c, ci*per+w)
		}
	}
	time.Sleep(500 * time.Millisecond)
	close(stop)
	wg.Wait()
	r := float64(ok.Load()) / time.Since(start).Seconds()
	if r < 1 {
		r = 1
	}
	if r > maxRate {
		r = maxRate
	}
	return r
}

// runRate replays one open-loop Poisson arrival process at the offered
// rate and summarizes what came back.
func runRate(clients []*serve.Client, d int, e lattice.ErrorType, syns [][]bool,
	rps float64, dur time.Duration, seed, point int64) Row {
	rng := mc.NewRand(seed, mc.DeriveID(0xa881, uint64(point)), 0)
	hist := obs.NewHistogram()
	var ok, shed, errs, escalated atomic.Int64
	var wg sync.WaitGroup

	start := time.Now()
	deadline := start.Add(dur)
	next := start
	sent := int64(0)
	for {
		next = next.Add(time.Duration(rng.ExpFloat64() / rps * float64(time.Second)))
		if next.After(deadline) {
			break
		}
		// Pace against the schedule, but never skip a late arrival: a
		// sender running behind dispatches immediately and the latency
		// clock still starts at the scheduled instant.
		if until := time.Until(next); until > 0 {
			time.Sleep(until)
		}
		c := clients[int(sent)%len(clients)]
		syn := syns[int(sent)%len(syns)]
		arrival := next
		sent++
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := c.Do(&serve.Request{D: d, EType: e, Syndrome: syn})
			if err != nil {
				errs.Add(1)
				return
			}
			switch resp.Status {
			case serve.StatusOK:
				hist.Observe(uint64(time.Since(arrival)))
				ok.Add(1)
				if resp.Escalated {
					escalated.Add(1)
				}
			case serve.StatusShed:
				shed.Add(1)
			default:
				errs.Add(1)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	sum := hist.Snapshot().Summary()
	row := Row{
		OfferedRPS:  rps,
		AchievedRPS: float64(ok.Load()) / elapsed,
		DurationS:   elapsed,
		Sent:        sent,
		OK:          ok.Load(),
		Shed:        shed.Load(),
		Errors:      errs.Load(),
		Escalated:   escalated.Load(),
		P50Ns:       sum.P50,
		P90Ns:       sum.P90,
		P99Ns:       sum.P99,
		MeanNs:      sum.Mean,
		MaxNs:       sum.Max,
	}
	if sent > 0 {
		row.ShedRate = float64(row.Shed) / float64(sent)
	}
	if row.OK > 0 {
		row.EscRate = float64(row.Escalated) / float64(row.OK)
	}
	return row
}
