package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sort"
	"time"

	"repro/internal/obs"
)

// Trace scrape: after the rate sweep, pull the server's flight recorder
// (/debug/traces on the -trace-http listener) and write the per-stage
// latency decomposition as its own artifact (-trace-out,
// BENCH_pr10.json), including a before/after comparison against the
// embedded PR 9 baseline rows. The recorder accumulated over the whole
// sweep, so the worst traces and the shed decisions captured at 2R are
// still in the rings when the scrape runs.

// wallStages are the duration rows that telescope accept → resp_write;
// their sum equals each trace's wall time exactly (shared stamps, no
// gaps), which checkTraces verifies against the server's arithmetic.
var wallStages = []string{
	"admit_ns", "enqueue_ns", "queue_wait_ns",
	"coalesce_ns", "decode_ns", "resp_write_ns",
}

// scrapedTrace mirrors the /debug/traces trace view.
type scrapedTrace struct {
	Seq     uint64           `json:"seq"`
	ID      uint64           `json:"id"`
	D       int32            `json:"d"`
	EType   string           `json:"etype"`
	Kind    string           `json:"kind"`
	Flags   []string         `json:"flags,omitempty"`
	WallNs  int64            `json:"wall_ns"`
	Offsets map[string]int64 `json:"offset_ns"`
	Stages  map[string]int64 `json:"stage_ns"`
}

// scrapedDecision mirrors the /debug/traces decision view.
type scrapedDecision struct {
	Seq       uint64  `json:"seq"`
	ID        uint64  `json:"id"`
	D         int32   `json:"d"`
	EType     string  `json:"etype"`
	Kind      string  `json:"kind"`
	Reason    string  `json:"reason"`
	Ratio     float64 `json:"ratio"`
	ArrivalNs float64 `json:"arrival_ns"`
	QueueLen  int32   `json:"queue_len"`
	Weight    float64 `json:"weight,omitempty"`
	SojournNs int64   `json:"sojourn_ns,omitempty"`
}

// scrapedDoc is the subset of the /debug/traces document the artifact
// consumes.
type scrapedDoc struct {
	SampleN      int                    `json:"sample_n"`
	Counters     map[string]uint64      `json:"counters"`
	StageSummary map[string]obs.Summary `json:"stage_summary"`
	Traces       []scrapedTrace         `json:"traces"`
	Decisions    []scrapedDecision      `json:"decisions"`
}

// StageRow is one per-stage decomposition row of the trace artifact.
type StageRow struct {
	Stage string `json:"stage"`
	Count uint64 `json:"count"`
	P50Ns uint64 `json:"p50_ns"`
	P99Ns uint64 `json:"p99_ns"`
	MaxNs uint64 `json:"max_ns"`
}

// TraceChecks records the acceptance checks run against the scrape.
type TraceChecks struct {
	// ShedDecisionWithInputs: ≥1 shed decision carrying the admission
	// controller inputs (reason plus a live arrival/ratio estimate).
	ShedDecisionWithInputs bool `json:"shed_decision_with_inputs"`
	// OutlierStageSum: ≥1 outlier-flagged trace whose wall-stage
	// durations sum to within ±5% of its recorded wall time.
	OutlierStageSum bool `json:"outlier_stage_sum_within_5pct"`
	// ShedDecisionWeighted: ≥1 shed decision carrying the PR 10
	// cost-weighted-admission inputs — a class weight, or a measured
	// sojourn for drop-oldest decisions.
	ShedDecisionWeighted bool `json:"shed_decision_weighted_or_sojourn"`
	// QueueWaitP99Improved: the scraped serve_queue_wait_ns p99 beats
	// the embedded PR 9 baseline row by ≥20% — the PR 10 acceptance
	// number (7,340,031 ns × 0.8 = 5,872,024 ns ceiling).
	QueueWaitP99Improved bool `json:"queue_wait_p99_improved_20pct"`
}

// pr9Baseline is the PR 9 trace decomposition at the ci.sh sweep's 2R
// point (BENCH_pr9.json, d=13, lanes=1, escalation on, 1-CPU ci box) —
// the before side of the before/after table and the denominator of the
// ≥20% queue-wait improvement gate.
var pr9Baseline = []StageRow{
	{Stage: "serve_coalesce_ns", Count: 24219, P50Ns: 87, P99Ns: 255, MaxNs: 55642},
	{Stage: "serve_decode_ns", Count: 24219, P50Ns: 122879, P99Ns: 491519, MaxNs: 8899410},
	{Stage: "serve_escalate_ns", Count: 9743, P50Ns: 16383, P99Ns: 98303, MaxNs: 38421003},
	{Stage: "serve_escalate_wait_ns", Count: 9743, P50Ns: 1703935, P99Ns: 25165823, MaxNs: 43251903},
	{Stage: "serve_queue_wait_ns", Count: 24219, P50Ns: 1310719, P99Ns: 7340031, MaxNs: 29787790},
	{Stage: "serve_sched_wait_ns", Count: 3378, P50Ns: 2815, P99Ns: 90111, MaxNs: 14777879},
}

// StageCompare is one before/after row: the PR 9 baseline p99 against
// this run's, with the relative improvement (positive = faster now).
type StageCompare struct {
	Stage          string  `json:"stage"`
	BaselineP99Ns  uint64  `json:"baseline_p99_ns"`
	P99Ns          uint64  `json:"p99_ns"`
	ImprovementPct float64 `json:"improvement_pct"`
}

// TraceArtifact is the on-disk schema of BENCH_pr10.json.
type TraceArtifact struct {
	Manifest    *obs.Manifest     `json:"manifest"`
	SampleN     int               `json:"sample_n"`
	Counters    map[string]uint64 `json:"counters"`
	StageRows   []StageRow        `json:"stage_rows"`
	Baseline    []StageRow        `json:"baseline_pr9"`
	Comparison  []StageCompare    `json:"comparison_vs_pr9"`
	WorstTraces []scrapedTrace    `json:"worst_traces"`
	Decisions   []scrapedDecision `json:"decisions"`
	Checks      TraceChecks       `json:"checks"`
}

// scrapeTraces pulls /debug/traces from the server's HTTP listener and
// writes the decomposition artifact. With strict set, failed acceptance
// checks are fatal — ci.sh runs the default R/2, R, 2R sweep first, so
// the 2R point has forced shedding and the rings are warm.
func scrapeTraces(httpBase, out string, manifest *obs.Manifest, strict bool) error {
	cl := &http.Client{Timeout: 10 * time.Second}
	resp, err := cl.Get(httpBase + "/debug/traces")
	if err != nil {
		return fmt.Errorf("scrape %s/debug/traces: %w", httpBase, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("scrape %s/debug/traces: HTTP %d", httpBase, resp.StatusCode)
	}
	var doc scrapedDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return fmt.Errorf("decode /debug/traces: %w", err)
	}

	art := TraceArtifact{
		Manifest: manifest,
		SampleN:  doc.SampleN,
		Counters: doc.Counters,
		Baseline: pr9Baseline,
		Checks:   checkTraces(&doc),
	}
	for stage, sum := range doc.StageSummary {
		art.StageRows = append(art.StageRows, StageRow{
			Stage: stage, Count: sum.Count, P50Ns: sum.P50, P99Ns: sum.P99, MaxNs: sum.Max,
		})
	}
	sort.Slice(art.StageRows, func(i, j int) bool { return art.StageRows[i].Stage < art.StageRows[j].Stage })
	for _, base := range pr9Baseline {
		for _, row := range art.StageRows {
			if row.Stage != base.Stage {
				continue
			}
			cmp := StageCompare{Stage: row.Stage, BaselineP99Ns: base.P99Ns, P99Ns: row.P99Ns}
			if base.P99Ns > 0 {
				cmp.ImprovementPct = 100 * (1 - float64(row.P99Ns)/float64(base.P99Ns))
			}
			art.Comparison = append(art.Comparison, cmp)
			if row.Stage == "serve_queue_wait_ns" &&
				float64(row.P99Ns) <= 0.8*float64(base.P99Ns) {
				art.Checks.QueueWaitP99Improved = true
			}
		}
	}

	sort.Slice(doc.Traces, func(i, j int) bool { return doc.Traces[i].WallNs > doc.Traces[j].WallNs })
	if len(doc.Traces) > 10 {
		doc.Traces = doc.Traces[:10]
	}
	art.WorstTraces = doc.Traces
	art.Decisions = doc.Decisions

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(art); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if strict {
		if !art.Checks.ShedDecisionWithInputs {
			return fmt.Errorf("trace check failed: no shed decision with controller inputs in %d decisions", len(art.Decisions))
		}
		if !art.Checks.OutlierStageSum {
			return fmt.Errorf("trace check failed: no outlier trace whose stage durations sum to its wall time")
		}
		if !art.Checks.ShedDecisionWeighted {
			return fmt.Errorf("trace check failed: no shed decision carrying weight/sojourn inputs in %d decisions", len(art.Decisions))
		}
		if !art.Checks.QueueWaitP99Improved {
			p99 := uint64(0)
			for _, row := range art.StageRows {
				if row.Stage == "serve_queue_wait_ns" {
					p99 = row.P99Ns
				}
			}
			return fmt.Errorf("trace check failed: serve_queue_wait_ns p99 %d ns not ≥20%% under the PR 9 baseline (7340031 ns)", p99)
		}
	}
	return nil
}

// checkTraces runs the acceptance checks over the scraped document.
func checkTraces(doc *scrapedDoc) TraceChecks {
	var c TraceChecks
	for _, d := range doc.Decisions {
		if d.Kind != "shed" || d.Reason == "" {
			continue
		}
		if d.ArrivalNs > 0 || d.Ratio > 0 {
			c.ShedDecisionWithInputs = true
		}
		if d.Weight > 0 || d.SojournNs > 0 {
			c.ShedDecisionWeighted = true
		}
		if c.ShedDecisionWithInputs && c.ShedDecisionWeighted {
			break
		}
	}
	for _, t := range doc.Traces {
		if !hasFlag(t.Flags, "outlier") || t.WallNs <= 0 {
			continue
		}
		sum := int64(0)
		for _, st := range wallStages {
			sum += t.Stages[st]
		}
		if diff := sum - t.WallNs; diff < 0 {
			diff = -diff
			if float64(diff) <= 0.05*float64(t.WallNs) {
				c.OutlierStageSum = true
				break
			}
		} else if float64(diff) <= 0.05*float64(t.WallNs) {
			c.OutlierStageSum = true
			break
		}
	}
	return c
}

func hasFlag(flags []string, want string) bool {
	for _, f := range flags {
		if f == want {
			return true
		}
	}
	return false
}
