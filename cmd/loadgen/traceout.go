package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sort"
	"time"

	"repro/internal/obs"
)

// Trace scrape: after the rate sweep, pull the server's flight recorder
// (/debug/traces on the -trace-http listener) and write the per-stage
// latency decomposition as its own artifact (-trace-out, BENCH_pr9.json).
// The recorder accumulated over the whole sweep, so the worst traces and
// the shed decisions captured at 2R are still in the rings when the
// scrape runs.

// wallStages are the duration rows that telescope accept → resp_write;
// their sum equals each trace's wall time exactly (shared stamps, no
// gaps), which checkTraces verifies against the server's arithmetic.
var wallStages = []string{
	"admit_ns", "enqueue_ns", "queue_wait_ns",
	"coalesce_ns", "decode_ns", "resp_write_ns",
}

// scrapedTrace mirrors the /debug/traces trace view.
type scrapedTrace struct {
	Seq     uint64           `json:"seq"`
	ID      uint64           `json:"id"`
	D       int32            `json:"d"`
	EType   string           `json:"etype"`
	Kind    string           `json:"kind"`
	Flags   []string         `json:"flags,omitempty"`
	WallNs  int64            `json:"wall_ns"`
	Offsets map[string]int64 `json:"offset_ns"`
	Stages  map[string]int64 `json:"stage_ns"`
}

// scrapedDecision mirrors the /debug/traces decision view.
type scrapedDecision struct {
	Seq       uint64  `json:"seq"`
	ID        uint64  `json:"id"`
	D         int32   `json:"d"`
	EType     string  `json:"etype"`
	Kind      string  `json:"kind"`
	Reason    string  `json:"reason"`
	Ratio     float64 `json:"ratio"`
	ArrivalNs float64 `json:"arrival_ns"`
	QueueLen  int32   `json:"queue_len"`
}

// scrapedDoc is the subset of the /debug/traces document the artifact
// consumes.
type scrapedDoc struct {
	SampleN      int                    `json:"sample_n"`
	Counters     map[string]uint64      `json:"counters"`
	StageSummary map[string]obs.Summary `json:"stage_summary"`
	Traces       []scrapedTrace         `json:"traces"`
	Decisions    []scrapedDecision      `json:"decisions"`
}

// StageRow is one per-stage decomposition row of the trace artifact.
type StageRow struct {
	Stage string `json:"stage"`
	Count uint64 `json:"count"`
	P50Ns uint64 `json:"p50_ns"`
	P99Ns uint64 `json:"p99_ns"`
	MaxNs uint64 `json:"max_ns"`
}

// TraceChecks records the acceptance checks run against the scrape.
type TraceChecks struct {
	// ShedDecisionWithInputs: ≥1 shed decision carrying the admission
	// controller inputs (reason plus a live arrival/ratio estimate).
	ShedDecisionWithInputs bool `json:"shed_decision_with_inputs"`
	// OutlierStageSum: ≥1 outlier-flagged trace whose wall-stage
	// durations sum to within ±5% of its recorded wall time.
	OutlierStageSum bool `json:"outlier_stage_sum_within_5pct"`
}

// TraceArtifact is the on-disk schema of BENCH_pr9.json.
type TraceArtifact struct {
	Manifest    *obs.Manifest     `json:"manifest"`
	SampleN     int               `json:"sample_n"`
	Counters    map[string]uint64 `json:"counters"`
	StageRows   []StageRow        `json:"stage_rows"`
	WorstTraces []scrapedTrace    `json:"worst_traces"`
	Decisions   []scrapedDecision `json:"decisions"`
	Checks      TraceChecks       `json:"checks"`
}

// scrapeTraces pulls /debug/traces from the server's HTTP listener and
// writes the decomposition artifact. With strict set, failed acceptance
// checks are fatal — ci.sh runs the default R/2, R, 2R sweep first, so
// the 2R point has forced shedding and the rings are warm.
func scrapeTraces(httpBase, out string, manifest *obs.Manifest, strict bool) error {
	cl := &http.Client{Timeout: 10 * time.Second}
	resp, err := cl.Get(httpBase + "/debug/traces")
	if err != nil {
		return fmt.Errorf("scrape %s/debug/traces: %w", httpBase, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("scrape %s/debug/traces: HTTP %d", httpBase, resp.StatusCode)
	}
	var doc scrapedDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return fmt.Errorf("decode /debug/traces: %w", err)
	}

	art := TraceArtifact{
		Manifest: manifest,
		SampleN:  doc.SampleN,
		Counters: doc.Counters,
		Checks:   checkTraces(&doc),
	}
	for stage, sum := range doc.StageSummary {
		art.StageRows = append(art.StageRows, StageRow{
			Stage: stage, Count: sum.Count, P50Ns: sum.P50, P99Ns: sum.P99, MaxNs: sum.Max,
		})
	}
	sort.Slice(art.StageRows, func(i, j int) bool { return art.StageRows[i].Stage < art.StageRows[j].Stage })

	sort.Slice(doc.Traces, func(i, j int) bool { return doc.Traces[i].WallNs > doc.Traces[j].WallNs })
	if len(doc.Traces) > 10 {
		doc.Traces = doc.Traces[:10]
	}
	art.WorstTraces = doc.Traces
	art.Decisions = doc.Decisions

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(art); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if strict {
		if !art.Checks.ShedDecisionWithInputs {
			return fmt.Errorf("trace check failed: no shed decision with controller inputs in %d decisions", len(art.Decisions))
		}
		if !art.Checks.OutlierStageSum {
			return fmt.Errorf("trace check failed: no outlier trace whose stage durations sum to its wall time")
		}
	}
	return nil
}

// checkTraces runs the acceptance checks over the scraped document.
func checkTraces(doc *scrapedDoc) TraceChecks {
	var c TraceChecks
	for _, d := range doc.Decisions {
		if d.Kind == "shed" && d.Reason != "" && (d.ArrivalNs > 0 || d.Ratio > 0) {
			c.ShedDecisionWithInputs = true
			break
		}
	}
	for _, t := range doc.Traces {
		if !hasFlag(t.Flags, "outlier") || t.WallNs <= 0 {
			continue
		}
		sum := int64(0)
		for _, st := range wallStages {
			sum += t.Stages[st]
		}
		if diff := sum - t.WallNs; diff < 0 {
			diff = -diff
			if float64(diff) <= 0.05*float64(t.WallNs) {
				c.OutlierStageSum = true
				break
			}
		} else if float64(diff) <= 0.05*float64(t.WallNs) {
			c.OutlierStageSum = true
			break
		}
	}
	return c
}

func hasFlag(flags []string, want string) bool {
	for _, f := range flags {
		if f == want {
			return true
		}
	}
	return false
}
