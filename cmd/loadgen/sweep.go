package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/lattice"
	"repro/internal/mc"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/sfq"
)

// SweepRow is one (scheduler workers, closed-loop clients) point of the
// multi-core service sweep: mixed-distance traffic against an
// in-process server, reporting how full the coalesced batch lanes ran
// (from the serve_batch_lanes histogram) against the client-observed
// latency tail. More workers should drain queues faster — smaller
// coalesced batches, lower p99 — so the two columns together show where
// added cores stop buying latency.
type SweepRow struct {
	Workers       int     `json:"workers"` // scheduler pool size (serve.Config.PoolWorkers)
	Clients       int     `json:"clients"` // closed-loop requesters
	DurationS     float64 `json:"duration_s"`
	OK            int64   `json:"ok"`
	Shed          int64   `json:"shed"`
	Errors        int64   `json:"errors"`
	ThroughputRPS float64 `json:"throughput_rps"`
	Batches       uint64  `json:"batches"`        // drained batch count
	MeanLaneFill  float64 `json:"mean_lane_fill"` // occupied lanes per drained batch
	P50Ns         uint64  `json:"p50_ns"`
	P90Ns         uint64  `json:"p90_ns"`
	P99Ns         uint64  `json:"p99_ns"`
	MeanNs        float64 `json:"mean_ns"`
}

// sweepDistances is the mixed-distance traffic blend: every request
// draws round-robin from these queues (Z and X planes alternating), so
// one run exercises several mesh sizes concurrently, as the paper's
// shared-decoder deployment would.
var sweepDistances = []int{5, 9, 13}

// runSweep measures the decode service at several scheduler widths and
// appends the rows to the BENCH_pr8.json artifact written by cmd/bench.
// Servers are in-process (requests go straight to Server.Decode), so
// the sweep isolates the queue/drain/scheduler path from transport
// noise and needs no running serve instance.
func runSweep(out string, clients int, dur time.Duration, density float64, seed int64) error {
	// One deterministic syndrome working set per (d, etype) queue.
	type key struct {
		d int
		e lattice.ErrorType
	}
	const nsyns = 128
	synsets := map[key][][]bool{}
	for _, d := range sweepDistances {
		for _, e := range []lattice.ErrorType{lattice.ZErrors, lattice.XErrors} {
			nchecks := lattice.MustNew(d).MatchingGraph(e).NumChecks()
			synID := mc.DeriveID(uint64(d), uint64(e), 0x10ad)
			set := make([][]bool, nsyns)
			for i := range set {
				rng := mc.NewRand(seed, synID, int64(i))
				syn := make([]bool, nchecks)
				for j := range syn {
					syn[j] = rng.Float64() < density
				}
				set[i] = syn
			}
			synsets[key{d, e}] = set
		}
	}

	var rows []SweepRow
	for _, workers := range []int{1, 2, 4, 8} {
		reg := obs.NewRegistry()
		srv := serve.New(serve.Config{
			Variant:     sfq.Final,
			Distances:   sweepDistances,
			PoolWorkers: workers,
			Workers:     workers,
			Registry:    reg,
		})
		hist := obs.NewHistogram()
		var ok, shed, errs atomic.Int64
		var reqID atomic.Uint64
		stop := make(chan struct{})
		var wg sync.WaitGroup
		start := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(off int) {
				defer wg.Done()
				for i := off; ; i += clients {
					select {
					case <-stop:
						return
					default:
					}
					d := sweepDistances[i%len(sweepDistances)]
					e := lattice.ZErrors
					if (i/len(sweepDistances))%2 == 1 {
						e = lattice.XErrors
					}
					set := synsets[key{d, e}]
					t0 := time.Now()
					resp := srv.Decode(d, e, reqID.Add(1), set[i%len(set)])
					switch resp.Status {
					case serve.StatusOK:
						hist.Observe(uint64(time.Since(t0)))
						ok.Add(1)
					case serve.StatusShed:
						shed.Add(1)
					default:
						errs.Add(1)
					}
				}
			}(c)
		}
		time.Sleep(dur)
		close(stop)
		wg.Wait()
		elapsed := time.Since(start).Seconds()
		if err := srv.Close(); err != nil {
			return err
		}

		lanes := reg.Histogram("serve_batch_lanes").Snapshot()
		sum := hist.Snapshot().Summary()
		row := SweepRow{
			Workers:       workers,
			Clients:       clients,
			DurationS:     elapsed,
			OK:            ok.Load(),
			Shed:          shed.Load(),
			Errors:        errs.Load(),
			ThroughputRPS: float64(ok.Load()) / elapsed,
			Batches:       lanes.Count,
			MeanLaneFill:  lanes.Mean(),
			P50Ns:         sum.P50,
			P90Ns:         sum.P90,
			P99Ns:         sum.P99,
			MeanNs:        sum.Mean,
		}
		rows = append(rows, row)
		log.Printf("sweep workers=%d: %.0f req/s ok, lane fill %.1f over %d batches, p50 %s p99 %s",
			workers, row.ThroughputRPS, row.MeanLaneFill, row.Batches,
			time.Duration(row.P50Ns), time.Duration(row.P99Ns))
	}
	return appendServeRows(out, rows)
}

// appendServeRows merges the sweep rows into the artifact cmd/bench
// wrote, preserving its kernel and scaling rows. A missing artifact
// gets a minimal one (manifest + serve rows) so the sweep can run
// standalone.
func appendServeRows(path string, rows []SweepRow) error {
	art := map[string]any{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &art); err != nil {
			return fmt.Errorf("loadgen: %s exists but is not a JSON object: %w", path, err)
		}
	} else {
		art["manifest"] = obs.NewManifest(map[string]any{"source": "loadgen -sweep"})
	}
	art["serve_rows"] = rows
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	log.Printf("appended %d serve rows to %s", len(rows), path)
	return nil
}
