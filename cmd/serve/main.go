// Command serve runs the streaming decode service: the SWAR batch mesh
// decoders of internal/sfq behind a persistent framed-TCP protocol and
// a JSON HTTP endpoint, with admission control driven by the paper's
// backlog model over the live service-latency histograms. The telemetry
// surface (/metrics, /metrics.json, /manifest.json, /debug/pprof) rides
// the same HTTP listener.
//
// Usage:
//
//	serve [-tcp 127.0.0.1:9000] [-http 127.0.0.1:9090] [-d 3,5,7,9]
//	      [-variant final] [-workers 1] [-lanes 0] [-queue 64]
//	      [-window 32] [-enter 1.0] [-exit 0.85] [-addr-file PATH]
//	      [-escalate] [-esc-hot 4] [-esc-queue 256] [-esc-workers 1]
//	      [-trace-sample 0] [-trace-depth 256] [-runtime-metrics]
//	      [-max-queue-wait 3ms] [-flush-every 8] [-flush-interval 200µs]
//	      [-no-weighted-shed]
//
// -max-queue-wait is the CoDel-style sojourn bound: under sustained
// backlog, queued requests older than the bound are dropped
// (StatusShed) while fresher work remains, keeping the queue-wait tail
// near the bound instead of QueueDepth × the service time. 0 disables
// dropping. -no-weighted-shed turns off cost-weighted admission (by
// default overload sheds cheap low-distance traffic before expensive
// high-distance traffic, in proportion to measured decode cost).
//
// -escalate turns on two-level decoding: responses still carry the
// level-1 mesh correction at mesh latency, but suspect ones are flagged
// on the wire and re-decoded asynchronously by exact MWPM, with the
// two-tier latency mixture driving admission control.
//
// -trace-sample controls the request-lifecycle flight recorder served
// at /debug/traces: 0 defers to REPRO_TRACE_SAMPLE (default 1-in-16),
// N > 0 samples 1 in N, and -1 disables tracing. -runtime-metrics (or
// REPRO_RUNTIME_METRICS=1) bridges the Go runtime's GC-pause and
// scheduler-latency telemetry into the registry, so serve-side GC
// stalls are distinguishable from decode stalls on the same surface.
//
// With -tcp/-http at ":0" the kernel picks the ports; -addr-file writes
// the bound addresses ("tcp ADDR" and "http ADDR" lines) so scripts —
// ci.sh's loadgen run — can find them.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/knob"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/sfq"
	"repro/internal/twolevel"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("serve: ")
	if err := knob.CheckEnv(); err != nil {
		log.Fatal(err)
	}

	tcpAddr := flag.String("tcp", "127.0.0.1:0", "framed-TCP listen address")
	httpAddr := flag.String("http", "127.0.0.1:0", "HTTP listen address (decode + telemetry)")
	dList := flag.String("d", "3,5,7,9", "comma-separated code distances to serve")
	variant := flag.String("variant", "final", "mesh design variant (baseline|resets|boundaries|final)")
	workers := flag.Int("workers", 1, "decode workers per (distance, error type) queue")
	lanes := flag.Int("lanes", 0, "batch lane width (0 = pooled maximum for each distance)")
	queue := flag.Int("queue", 64, "per-queue depth before hard shedding")
	window := flag.Int("window", 32, "per-connection in-flight request window")
	enter := flag.Float64("enter", 1.0, "backlog ratio above which shedding engages")
	exit := flag.Float64("exit", 0.85, "backlog ratio below which shedding releases")
	evalMs := flag.Int("eval-ms", 50, "controller evaluation period (ms)")
	pprof := flag.Bool("pprof", true, "expose /debug/pprof on the HTTP listener")
	addrFile := flag.String("addr-file", "", "write bound addresses to this file")
	escalate := flag.Bool("escalate", false, "two-level mode: flag and asynchronously re-decode suspect corrections with exact MWPM")
	escHot := flag.Int("esc-hot", 0, "escalate when the initial hot-check count reaches this (0 = stats triggers only)")
	escQueue := flag.Int("esc-queue", 256, "escalation queue depth (full queue drops, never blocks level 1)")
	escWorkers := flag.Int("esc-workers", 1, "level-2 MWPM workers")
	traceSample := flag.Int("trace-sample", 0, "trace 1-in-N requests (0 = REPRO_TRACE_SAMPLE or 16, -1 = off)")
	traceDepth := flag.Int("trace-depth", 256, "flight-recorder ring depth (traces and decisions)")
	maxQueueWait := flag.Duration("max-queue-wait", 3*time.Millisecond,
		"sojourn bound: drop queued requests older than this while more work is queued (0 = never drop)")
	flushEvery := flag.Int("flush-every", 8, "flush a connection's responses after this many unflushed")
	flushInterval := flag.Duration("flush-interval", 200*time.Microsecond,
		"flush a connection's responses after the oldest has waited this long")
	noWeighted := flag.Bool("no-weighted-shed", false,
		"disable cost-weighted admission (shed all classes uniformly; REPRO_SERVE_WEIGHTED=0 is equivalent)")
	runtimeMetrics := flag.Bool("runtime-metrics", knob.Bool("REPRO_RUNTIME_METRICS"),
		"bridge runtime/metrics (GC pauses, sched latency, goroutines, heap) into the registry")
	flag.Parse()

	v, ok := sfq.VariantByName(*variant)
	if !ok {
		log.Fatalf("unknown variant %q", *variant)
	}
	var ds []int
	for _, f := range strings.Split(*dList, ",") {
		d, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || d < 3 || d%2 == 0 {
			log.Fatalf("bad distance %q (want odd, >= 3)", f)
		}
		ds = append(ds, d)
	}

	obs.Default().SetManifest(obs.NewManifest(map[string]any{
		"variant": *variant, "distances": ds, "workers": *workers, "lanes": *lanes,
		"queue": *queue, "window": *window, "enter": *enter, "exit": *exit,
		"escalate": *escalate, "esc_hot": *escHot,
		"esc_queue": *escQueue, "esc_workers": *escWorkers,
		"trace_sample": *traceSample, "trace_depth": *traceDepth,
		"runtime_metrics":   *runtimeMetrics,
		"max_queue_wait_ns": int64(*maxQueueWait), "flush_every": *flushEvery,
		"flush_interval_ns": int64(*flushInterval), "weighted_shed": !*noWeighted,
	}))
	if *runtimeMetrics {
		bridge := obs.StartRuntimeBridge(obs.Default(), time.Second)
		defer bridge.Close()
	}
	var escPol *twolevel.Policy
	if *escalate {
		p := twolevel.DefaultPolicy()
		p.HotThreshold = *escHot
		escPol = &p
	}
	s := serve.New(serve.Config{
		Variant:             v,
		Distances:           ds,
		Workers:             *workers,
		Lanes:               *lanes,
		QueueDepth:          *queue,
		Window:              *window,
		Enter:               *enter,
		Exit:                *exit,
		EvalEvery:           time.Duration(*evalMs) * time.Millisecond,
		Escalate:            *escalate,
		EscalatePolicy:      escPol,
		EscQueueDepth:       *escQueue,
		EscWorkers:          *escWorkers,
		TraceSample:         *traceSample,
		TraceDepth:          *traceDepth,
		MaxQueueWait:        *maxQueueWait,
		FlushEvery:          *flushEvery,
		FlushInterval:       *flushInterval,
		DisableWeightedShed: *noWeighted,
	})

	tcpLn, err := net.Listen("tcp", *tcpAddr)
	if err != nil {
		log.Fatal(err)
	}
	httpLn, err := net.Listen("tcp", *httpAddr)
	if err != nil {
		log.Fatal(err)
	}
	if *addrFile != "" {
		body := fmt.Sprintf("tcp %s\nhttp %s\n", tcpLn.Addr(), httpLn.Addr())
		if err := os.WriteFile(*addrFile, []byte(body), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	log.Printf("framed TCP on %s, HTTP on %s, variant %s, d %v",
		tcpLn.Addr(), httpLn.Addr(), v.Name(), ds)

	hs := &http.Server{Handler: s.Handler(*pprof), ReadHeaderTimeout: 5 * time.Second}
	errc := make(chan error, 2)
	go func() { errc <- s.Serve(tcpLn) }()
	go func() { errc <- hs.Serve(httpLn) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case got := <-sig:
		log.Printf("%v: draining", got)
	case err := <-errc:
		if err != nil && err != http.ErrServerClosed {
			log.Printf("listener failed: %v", err)
		}
	}
	if err := s.Close(); err != nil {
		log.Printf("drain: %v", err)
	}
	hs.Close()
}
