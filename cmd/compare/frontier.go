package main

// The two-level frontier: pure-mesh, two-level (mesh + escalation to
// exact MWPM) and pure-MWPM decoding run head to head on identical
// lifetime error streams, at several distances and physical rates. The
// artifact (BENCH_pr7.json) records the accuracy-vs-latency frontier:
// per point, the logical error rate of each decoder, the escalation
// rate of the two-level policy, the modeled SFQ mesh latency, the
// measured MWPM software latency, and the two-tier latency mixture
// mesh + escRate × mwpm — the quantity the serve-layer admission
// controller consumes — with its backlog-model processing ratio.
//
// The frontier claim this pins: at every distance there is a rate where
// two-level decoding is strictly more accurate than the pure mesh while
// its mean latency stays strictly below pure MWPM's.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"os"
	"sync/atomic"
	"text/tabwriter"

	"repro/internal/backlog"
	"repro/internal/decoder"
	"repro/internal/decoder/mwpm"
	"repro/internal/lattice"
	"repro/internal/mc"
	"repro/internal/noise"
	"repro/internal/obs"
	"repro/internal/sfq"
	"repro/internal/stats"
	"repro/internal/surface"
	"repro/internal/twolevel"
)

// frontierRow is one (distance, rate, decoder) cell of the artifact.
type frontierRow struct {
	D        int     `json:"d"`
	P        float64 `json:"p"`
	Decoder  string  `json:"decoder"` // mesh | two-level | mwpm
	Trials   int64   `json:"trials"`
	Failures int64   `json:"failures"`
	PL       float64 `json:"pl"`
	// MeanNs is the decoder's mean per-decode latency: modeled SFQ time
	// for the mesh, sampled wall clock for MWPM, and the two-tier
	// mixture meshMean + escRate×mwpmMean for two-level.
	MeanNs   float64 `json:"mean_ns"`
	EscRate  float64 `json:"esc_rate,omitempty"`  // two-level only
	BacklogF float64 `json:"backlog_f,omitempty"` // DecodeNs / tGen at 400 ns
}

// frontierArtifact is the on-disk schema of BENCH_pr7.json.
type frontierArtifact struct {
	Manifest *obs.Manifest `json:"manifest"`
	Rows     []frontierRow `json:"rows"`
	// Frontier summarizes the acceptance property per distance: the
	// rates where two-level beat the pure mesh on accuracy while staying
	// below pure MWPM on mean latency.
	Frontier map[string][]float64 `json:"frontier"`
}

// rowProbe accumulates per-decode telemetry from one sweep row's
// Observer callbacks (shards run concurrently; everything here is
// concurrency-safe).
type rowProbe struct {
	meshPs  *obs.Histogram // modeled mesh latency, picoseconds
	decodes atomic.Int64
	escs    atomic.Int64
}

func newRowProbe() *rowProbe { return &rowProbe{meshPs: obs.NewHistogram()} }

func (rp *rowProbe) observe(pol twolevel.Policy, st sfq.Stats) {
	rp.meshPs.Observe(uint64(float64(st.Cycles) * sfq.CycleTimePs))
	rp.decodes.Add(1)
	if pol.Escalate(st) {
		rp.escs.Add(1)
	}
}

// meshMeanNs is the modeled mean mesh latency in nanoseconds.
func (rp *rowProbe) meshMeanNs() float64 { return rp.meshPs.Snapshot().Mean() / 1000 }

func (rp *rowProbe) escRate() float64 {
	if n := rp.decodes.Load(); n > 0 {
		return float64(rp.escs.Load()) / float64(n)
	}
	return 0
}

// runFrontier builds and runs the frontier sweep, writes the artifact,
// and reports (optionally enforcing) the acceptance property.
func frontierTable(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

func runFrontier(ctx context.Context, ds []int, ps []float64, cycles int, seed int64,
	escHot, workers int, out string, strict bool) {
	type cell struct {
		d       int
		p       float64
		probe   *rowProbe   // mesh + two-level rows
		mwpmReg *obs.Registry // mwpm rows: wall-clock via scratch sampling
	}
	var cells []cell
	var specs []mc.PointSpec
	pool := sfq.NewPool(sfq.Final)
	const syndromeCycleNs = 400 // tGen of the paper's backlog examples

	hotFor := map[int]int{}
	for _, d := range ds {
		// The hot-count trigger scales with the syndrome size: a fixed
		// count that yields moderate escalation at d=7 fires on nearly
		// every decode at d=11. ~30% of the checks hot keeps the
		// escalation rate in the informative middle at every distance.
		hot := escHot
		if hot <= 0 {
			hot = (3*pool.Graph(d, lattice.ZErrors).NumChecks() + 5) / 10
		}
		hotFor[d] = hot
		pol := twolevel.DefaultPolicy()
		pol.HotThreshold = hot
		for pi, p := range ps {
			d, p, pol := d, p, pol
			// One engine point ID per (d, p), shared by all three
			// decoders: identical per-trial error streams, so the PL
			// differences below are decoder differences only.
			id := int64(1000*d + pi)
			ch := func() (noise.Channel, error) { return noise.NewDephasing(p) }

			meshProbe := newRowProbe()
			cells = append(cells, cell{d: d, p: p, probe: meshProbe})
			specs = append(specs, stats.LifetimeSpec(id, cycles, 0, func() (surface.Config, error) {
				c, err := ch()
				if err != nil {
					return surface.Config{}, err
				}
				return surface.Config{
					Distance: d, Channel: c,
					DecoderZ: pool.Get(d, lattice.ZErrors),
					Observer: func(_ lattice.ErrorType, st sfq.Stats) { meshProbe.observe(pol, st) },
				}, nil
			}))
			specs[len(specs)-1].Release = stats.ReleaseDecoders(pool.Release)

			tlProbe := newRowProbe()
			cells = append(cells, cell{d: d, p: p, probe: tlProbe})
			specs = append(specs, stats.LifetimeSpec(id, cycles, 0, func() (surface.Config, error) {
				c, err := ch()
				if err != nil {
					return surface.Config{}, err
				}
				tl := twolevel.New(pool.Get(d, lattice.ZErrors), mwpm.New(), pol)
				return surface.Config{
					Distance: d, Channel: c, DecoderZ: tl,
					Observer: func(_ lattice.ErrorType, st sfq.Stats) { tlProbe.observe(pol, st) },
				}, nil
			}))
			specs[len(specs)-1].Release = stats.ReleaseDecoders(pool.Release)

			reg := obs.NewRegistry()
			cells = append(cells, cell{d: d, p: p, mwpmReg: reg})
			specs = append(specs, stats.LifetimeSpec(id, cycles, 0, func() (surface.Config, error) {
				c, err := ch()
				if err != nil {
					return surface.Config{}, err
				}
				var dec decoder.Decoder = mwpm.New()
				return surface.Config{Distance: d, Channel: c, DecoderZ: dec, Obs: reg}, nil
			}))
		}
	}

	results, err := mc.Run(ctx, mc.Config{RootSeed: seed, Workers: workers}, specs)
	if err != nil {
		log.Fatal(err)
	}

	names := []string{"mesh", "two-level", "mwpm"}
	art := frontierArtifact{
		Manifest: obs.NewManifest(map[string]any{
			"mode": "two-level-frontier", "distances": ds, "rates": ps,
			"cycles": cycles, "seed": seed, "esc_hot": hotFor,
			"variant": sfq.Final.Name(), "syndrome_cycle_ns": syndromeCycleNs,
		}),
		Frontier: map[string][]float64{},
	}
	// Assemble rows cell by cell; the mixture latency of a two-level row
	// needs its sibling mwpm row's wall-clock mean, so index by (d, p).
	for ci := 0; ci+2 < len(cells); ci += 3 {
		d, p := cells[ci].d, cells[ci].p
		meshProbe, tlProbe := cells[ci].probe, cells[ci+1].probe
		mwpmNs := cells[ci+2].mwpmReg.Histogram("decodepool_decode_ns").Snapshot().Mean()
		meshNs := meshProbe.meshMeanNs()
		escRate := tlProbe.escRate()
		mixNs := tlProbe.meshMeanNs() + escRate*mwpmNs
		means := []float64{meshNs, mixNs, mwpmNs}
		escRates := []float64{0, escRate, 1}
		for k := 0; k < 3; k++ {
			res := results[ci+k]
			pl := 0.0
			if res.Trials > 0 {
				pl = float64(res.Failures) / float64(res.Trials)
			}
			row := frontierRow{
				D: d, P: p, Decoder: names[k],
				Trials: int64(res.Trials), Failures: int64(res.Failures), PL: pl,
				MeanNs:   means[k],
				BacklogF: backlog.Model{SyndromeCycleNs: syndromeCycleNs, DecodeNs: means[k]}.Ratio(),
			}
			if k == 1 {
				row.EscRate = escRates[k]
			}
			art.Rows = append(art.Rows, row)
		}
		// The mesh row's modeled latency also flows through the
		// histogram-based model builder (the serve layer's path), as a
		// consistency cross-check on the artifact.
		_ = backlog.ModelForHistogram(syndromeCycleNs, 0, 1e-3, meshProbe.meshPs.Snapshot())
	}

	// Acceptance: per distance, at least one rate where two-level beats
	// the pure mesh on PL and pure MWPM on mean latency.
	ok := true
	for _, d := range ds {
		var wins []float64
		for i := 0; i+2 < len(art.Rows); i += 3 {
			mesh, tl, mw := art.Rows[i], art.Rows[i+1], art.Rows[i+2]
			if mesh.D != d {
				continue
			}
			if tl.PL < mesh.PL && tl.MeanNs < mw.MeanNs {
				wins = append(wins, mesh.P)
			}
		}
		art.Frontier[fmt.Sprintf("d%d", d)] = wins
		status := "ok"
		if len(wins) == 0 {
			status = "NOT MET"
			ok = false
		}
		log.Printf("frontier d=%d: two-level beats mesh-PL and mwpm-latency at p=%v (%s)", d, wins, status)
	}

	f, err := os.Create(out)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(art); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s (%d rows)", out, len(art.Rows))
	if strict && !ok {
		log.Fatal("frontier property not met at every distance")
	}

	fmt.Printf("two-level frontier — dephasing, %d cycles, esc hot thresholds %v\n\n", cycles, hotFor)
	w := frontierTable(os.Stdout)
	fmt.Fprintln(w, "d\tp\tdecoder\tPL\tmean latency (ns)\tesc rate")
	for _, r := range art.Rows {
		esc := ""
		if r.Decoder == "two-level" {
			esc = fmt.Sprintf("%.4f", r.EscRate)
		}
		fmt.Fprintf(w, "%d\t%.3f\t%s\t%.5f\t%.1f\t%s\n", r.D, r.P, r.Decoder, r.PL, r.MeanNs, esc)
	}
	w.Flush()
}
