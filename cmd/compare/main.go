// Command compare runs every decoder in the repository head to head on
// identical lifetime workloads: the SFQ mesh (the paper's contribution),
// the software greedy reference, exact minimum-weight perfect matching,
// union-find, exact maximum likelihood (small codes only — bounded by
// mld.MaxDataQubits) and the trained neural decoder (every distance).
// This extends the paper's accuracy discussion (§VIII "Comparison to
// existing approximation techniques") with a single reproducible table.
//
// Trained decoders (mld coset tables, neural MLP training) are built
// once per (decoder, d, p, seed) and shared by all trial shards of that
// row: both decode by read-only table lookups / stateless forward
// passes, so sharing is safe and the rows parallelize like the rest.
//
// All rows run concurrently on the sharded Monte-Carlo engine. Every
// decoder at a given distance uses the same engine point ID, so the
// per-trial error streams are identical across decoders — the
// head-to-head property the table depends on — for any -workers value.
//
// Usage:
//
//	compare [-distances 3,5,7] [-p 0.03] [-cycles 20000] [-seed 1]
//	        [-workers 0]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"text/tabwriter"

	"repro/internal/decoder"
	"repro/internal/decoder/greedy"
	"repro/internal/decoder/mld"
	"repro/internal/decoder/mwpm"
	"repro/internal/decoder/neural"
	"repro/internal/decoder/unionfind"
	"repro/internal/knob"
	"repro/internal/lattice"
	"repro/internal/mc"
	"repro/internal/noise"
	"repro/internal/obs"
	"repro/internal/sfq"
	"repro/internal/stats"
	"repro/internal/surface"
)

// trainedKey identifies one expensive-to-build decoder instance. Rows
// are parameterized by (d, p, seed), so two sweeps over the same cell
// reuse the instance instead of retraining.
type trainedKey struct {
	name string
	d    int
	p    float64
	seed int64
}

// trainedCache hands out shared trained decoders. Build runs under the
// lock, so concurrent shards of one row train exactly once and the
// rest block until the instance is ready.
type trainedCache struct {
	mu   sync.Mutex
	decs map[trainedKey]decoder.Decoder
}

func (c *trainedCache) get(key trainedKey, build func() (decoder.Decoder, error)) (decoder.Decoder, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if dec, ok := c.decs[key]; ok {
		return dec, nil
	}
	dec, err := build()
	if err != nil {
		return nil, err
	}
	if c.decs == nil {
		c.decs = map[trainedKey]decoder.Decoder{}
	}
	c.decs[key] = dec
	return dec, nil
}

func main() {
	if err := knob.CheckEnv(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	distances := flag.String("distances", "3,5,7", "code distances")
	p := flag.Float64("p", 0.03, "physical dephasing rate")
	cycles := flag.Int("cycles", 20000, "syndrome cycles per decoder")
	seed := flag.Int64("seed", 1, "random seed (shared across decoders)")
	workers := flag.Int("workers", 0, "concurrent trial shards (0 = GOMAXPROCS)")
	obsAddr := flag.String("obs", "", "serve /metrics, /metrics.json, /manifest.json and /debug/pprof on this address (e.g. :9090)")
	frontier := flag.Bool("frontier", false, "run the two-level accuracy-vs-latency frontier instead of the decoder table")
	frontierPs := flag.String("frontier-p", "0.04,0.08,0.12", "physical rates of the frontier sweep")
	escHot := flag.Int("esc-hot", 0, "frontier escalation policy: hot-check count threshold (0 = ~30% of checks per distance)")
	out := flag.String("out", "BENCH_pr7.json", "frontier artifact path")
	strict := flag.Bool("strict", false, "exit nonzero if the frontier property fails at any distance")
	flag.Parse()

	var ds []int
	for _, s := range strings.Split(*distances, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			log.Fatal(err)
		}
		ds = append(ds, v)
	}

	if *frontier {
		var fps []float64
		for _, s := range strings.Split(*frontierPs, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				log.Fatal(err)
			}
			fps = append(fps, v)
		}
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stop()
		runFrontier(ctx, ds, fps, *cycles, *seed, *escHot, *workers, *out, *strict)
		return
	}

	type row struct {
		d    int
		name string
		note string
	}
	var rows []row
	var specs []mc.PointSpec
	add := func(d int, name, note string, shardSize int, newDec func() (decoder.Decoder, error)) {
		rows = append(rows, row{d, name, note})
		build := func() (surface.Config, error) {
			ch, err := noise.NewDephasing(*p)
			if err != nil {
				return surface.Config{}, err
			}
			dec, err := newDec()
			if err != nil {
				return surface.Config{}, err
			}
			return surface.Config{Distance: d, Channel: ch, DecoderZ: dec}, nil
		}
		// Same ID per distance: identical error streams for every decoder.
		specs = append(specs, stats.LifetimeSpec(int64(d), *cycles, shardSize, build))
	}
	pool := sfq.NewPool(sfq.Final)
	cache := &trainedCache{}
	for _, d := range ds {
		d := d
		g := pool.Graph(d, lattice.ZErrors)
		add(d, "sfq-"+sfq.Final.Name(), "online, ~ns latency", 0, func() (decoder.Decoder, error) {
			return pool.Get(d, lattice.ZErrors), nil
		})
		specs[len(specs)-1].Release = stats.ReleaseDecoders(pool.Release)
		add(d, "greedy", "software reference of §V-B", 0, func() (decoder.Decoder, error) {
			return greedy.New(), nil
		})
		add(d, "mwpm", "exact matching (offline)", 0, func() (decoder.Decoder, error) {
			return mwpm.New(), nil
		})
		add(d, "union-find", "almost-linear (offline)", 0, func() (decoder.Decoder, error) {
			return unionfind.New(), nil
		})
		// Trained decoders: the cache builds one shared instance per
		// (name, d, p, seed), so these rows shard in parallel like the
		// rest and repeated -distances entries never retrain.
		if g.Lattice().NumData() <= mld.MaxDataQubits {
			add(d, "ml-exact", "exact maximum likelihood", 0, func() (decoder.Decoder, error) {
				return cache.get(trainedKey{"ml-exact", d, *p, *seed}, func() (decoder.Decoder, error) {
					return mld.New(g, *p)
				})
			})
		}
		add(d, "neural", "greedy + trained MLP stage", 0, func() (decoder.Decoder, error) {
			return cache.get(trainedKey{"neural", d, *p, *seed}, func() (decoder.Decoder, error) {
				return neural.New(g, neural.TrainConfig{P: *p, Samples: 80000, Seed: *seed})
			})
		})
	}

	var reg *obs.Registry
	if *obsAddr != "" {
		srv, err := obs.ServeDefault(*obsAddr, map[string]any{
			"distances": *distances, "p": *p, "cycles": *cycles,
			"seed": *seed, "workers": *workers,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "obs: telemetry on http://%s/metrics\n", srv.Addr)
		reg = obs.Default()
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	results, err := mc.Run(ctx, mc.Config{RootSeed: *seed, Workers: *workers, Obs: reg}, specs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("decoder comparison — pure dephasing p=%g, %d cycles, identical error streams\n\n", *p, *cycles)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "d\tdecoder\tlogical errors\tPL\tnote")
	for i, r := range rows {
		res := results[i]
		pl := 0.0
		if res.Trials > 0 {
			pl = float64(res.Failures) / float64(res.Trials)
		}
		fmt.Fprintf(w, "%d\t%s\t%d\t%.5f\t%s\n", r.d, r.name, res.Failures, pl, r.note)
	}
	w.Flush()
	fmt.Println("\nthe SFQ mesh trades a constant-factor accuracy loss for four orders")
	fmt.Println("of magnitude in latency — the paper's central engineering trade.")
}
