// Command compare runs every decoder in the repository head to head on
// identical lifetime workloads: the SFQ mesh (the paper's contribution),
// the software greedy reference, exact minimum-weight perfect matching,
// union-find, exact maximum likelihood (d = 3 only) and the trained
// neural decoder (d = 3 only). This extends the paper's accuracy
// discussion (§VIII "Comparison to existing approximation techniques")
// with a single reproducible table.
//
// Usage:
//
//	compare [-distances 3,5,7] [-p 0.03] [-cycles 20000] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"

	"repro/internal/decoder"
	"repro/internal/decoder/greedy"
	"repro/internal/decoder/mld"
	"repro/internal/decoder/mwpm"
	"repro/internal/decoder/neural"
	"repro/internal/decoder/unionfind"
	"repro/internal/lattice"
	"repro/internal/noise"
	"repro/internal/sfq"
	"repro/internal/surface"
)

func main() {
	distances := flag.String("distances", "3,5,7", "code distances")
	p := flag.Float64("p", 0.03, "physical dephasing rate")
	cycles := flag.Int("cycles", 20000, "syndrome cycles per decoder")
	seed := flag.Int64("seed", 1, "random seed (shared across decoders)")
	flag.Parse()

	var ds []int
	for _, s := range strings.Split(*distances, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			log.Fatal(err)
		}
		ds = append(ds, v)
	}

	fmt.Printf("decoder comparison — pure dephasing p=%g, %d cycles, identical error streams\n\n", *p, *cycles)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "d\tdecoder\tlogical errors\tPL\tnote")
	for _, d := range ds {
		g := lattice.MustNew(d).MatchingGraph(lattice.ZErrors)
		decoders := []struct {
			dec  decoder.Decoder
			note string
		}{
			{sfq.New(g, sfq.Final), "online, ~ns latency"},
			{greedy.New(), "software reference of §V-B"},
			{mwpm.New(), "exact matching (offline)"},
			{unionfind.New(), "almost-linear (offline)"},
		}
		if d == 3 {
			ml, err := mld.New(g, *p)
			if err != nil {
				log.Fatal(err)
			}
			decoders = append(decoders, struct {
				dec  decoder.Decoder
				note string
			}{ml, "exact maximum likelihood"})
			nn, err := neural.New(g, neural.TrainConfig{P: *p, Samples: 80000, Seed: *seed})
			if err != nil {
				log.Fatal(err)
			}
			decoders = append(decoders, struct {
				dec  decoder.Decoder
				note string
			}{nn, "greedy + trained MLP stage"})
		}
		for _, entry := range decoders {
			ch, err := noise.NewDephasing(*p)
			if err != nil {
				log.Fatal(err)
			}
			sim, err := surface.New(surface.Config{
				Distance: d,
				Channel:  ch,
				DecoderZ: entry.dec,
				Seed:     *seed, // same seed: same error stream per distance
			})
			if err != nil {
				log.Fatal(err)
			}
			res, err := sim.Run(*cycles)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(w, "%d\t%s\t%d\t%.5f\t%s\n", d, entry.dec.Name(), res.LogicalErrors, res.PL, entry.note)
		}
	}
	w.Flush()
	fmt.Println("\nthe SFQ mesh trades a constant-factor accuracy loss for four orders")
	fmt.Println("of magnitude in latency — the paper's central engineering trade.")
}
