// Command timing regenerates Table IV (decoder execution time per code
// distance across all simulated error rates) and Fig. 10(c) (the
// cycles-to-solution distributions), by running lifetime simulations
// with the final SFQ design and recording every mesh invocation.
//
// The sweep runs on the sharded Monte-Carlo engine: all (d, p) points
// and their trial shards execute in parallel, and mesh samples are
// collected through the observer hook. Sample sets are sorted before
// summarizing, so the table is reproducible for any -workers value.
//
// Usage:
//
//	timing [-cycles 4000] [-distances 3,5,7,9] [-rates 0.01,...]
//	       [-hist] [-seed 1] [-workers 0] [-obs :9090] [-batch]
//
// After the Table IV summary, the command closes the loop between the
// measured cycles-to-solution distributions and the §III backlog model:
// for every distance it prints the execution-time slowdown on the
// cuccaro adder under the worst-case model (ModelForDecodes — the
// Fig. 5/6 construction) next to the distribution-aware model
// (backlog.ModelForHistogram over the live sfq_decode_cycles_d*
// histogram), showing how much the single-worst-sample bound
// overstates the steady-state cost.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"text/tabwriter"

	"repro/internal/backlog"
	"repro/internal/decoder"
	"repro/internal/knob"
	"repro/internal/lattice"
	"repro/internal/noise"
	"repro/internal/obs"
	"repro/internal/qprog"
	"repro/internal/sfq"
	"repro/internal/stats"
)

func parseList(s string, f func(string) error) error {
	for _, part := range strings.Split(s, ",") {
		if err := f(strings.TrimSpace(part)); err != nil {
			return err
		}
	}
	return nil
}

// meshSamples collects observer samples for one code distance. Points
// of the same distance at different rates report concurrently, so the
// collector locks around every append.
type meshSamples struct {
	mu     sync.Mutex
	times  []float64
	counts map[int]int
}

func (ms *meshSamples) observe(st sfq.Stats) {
	ms.mu.Lock()
	ms.times = append(ms.times, st.TimeNs())
	ms.counts[st.Cycles]++
	ms.mu.Unlock()
}

func main() {
	if err := knob.CheckEnv(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cycles := flag.Int("cycles", 4000, "syndrome cycles per (d, p) point")
	distances := flag.String("distances", "3,5,7,9", "code distances")
	rates := flag.String("rates", "0.01,0.02,0.03,0.04,0.05,0.06,0.07,0.08,0.09,0.10", "physical error rates")
	hist := flag.Bool("hist", false, "also print the Fig. 10(c) cycle histograms")
	seed := flag.Int64("seed", 1, "random seed")
	workers := flag.Int("workers", 0, "concurrent trial shards (0 = GOMAXPROCS)")
	obsAddr := flag.String("obs", "", "serve /metrics, /metrics.json, /manifest.json and /debug/pprof on this address (e.g. :9090)")
	tGen := flag.Float64("tgen", 400, "syndrome generation cycle time in ns for the backlog comparison")
	batch := flag.Bool("batch", false, "decode trials through the SWAR batch kernel (bit-identical results, higher throughput)")
	flag.Parse()

	var ds []int
	if err := parseList(*distances, func(s string) error {
		v, err := strconv.Atoi(s)
		ds = append(ds, v)
		return err
	}); err != nil {
		log.Fatal(err)
	}
	var ps []float64
	if err := parseList(*rates, func(s string) error {
		v, err := strconv.ParseFloat(s, 64)
		ps = append(ps, v)
		return err
	}); err != nil {
		log.Fatal(err)
	}

	samples := map[int]*meshSamples{}
	for _, d := range ds {
		samples[d] = &meshSamples{counts: map[int]int{}}
	}
	var reg *obs.Registry
	if *obsAddr != "" {
		srv, err := obs.ServeDefault(*obsAddr, map[string]any{
			"cycles": *cycles, "distances": *distances, "rates": *rates,
			"seed": *seed, "workers": *workers, "tgen": *tGen,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "obs: telemetry on http://%s/metrics\n", srv.Addr)
		reg = obs.Default()
	}
	pool := sfq.NewPool(sfq.Final)
	if _, err := stats.Curves(stats.CurveConfig{
		Obs:        reg,
		Distances:  ds,
		Rates:      ps,
		Cycles:     *cycles,
		NewChannel: func(p float64) (noise.Channel, error) { return noise.NewDephasing(p) },
		NewDecoderZ: func(d int) decoder.Decoder {
			if *batch {
				return pool.GetBatch(d, lattice.ZErrors)
			}
			return pool.Get(d, lattice.ZErrors)
		},
		FreeDecoder: pool.Release,
		Seed:        *seed,
		Workers:     *workers,
		Batch:       *batch,
		Observer: func(d int, p float64) func(lattice.ErrorType, sfq.Stats) {
			ms := samples[d]
			return func(e lattice.ErrorType, st sfq.Stats) { ms.observe(st) }
		},
	}); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Table IV — decoder execution time (ns), final design, %d cycles per (d,p)\n\n", *cycles)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "d\tmax\tp99.9\taverage\tstd dev\tdecodes\t(paper max/avg/std)")
	paper := map[int][3]float64{
		3: {3.74, 0.28, 0.58},
		5: {9.28, 0.72, 1.09},
		7: {14.2, 2.00, 1.99},
		9: {19.2, 3.81, 3.11},
	}
	for _, d := range ds {
		times := samples[d].times
		sort.Float64s(times) // shard completion order varies; the summary must not
		s := stats.Summarize(times)
		row := fmt.Sprintf("%d\t%.2f\t%.2f\t%.2f\t%.2f\t%d", d, s.Max, stats.Percentile(times, 0.999), s.Mean, s.StdDev, s.N)
		if pp, ok := paper[d]; ok {
			row += fmt.Sprintf("\t(%.2f/%.2f/%.2f)", pp[0], pp[1], pp[2])
		}
		fmt.Fprintln(w, row)
	}
	w.Flush()

	if *hist {
		fmt.Println("\nFig. 10(c) — cycles-to-solution distribution (first 21 bins)")
		for _, d := range ds {
			counts := samples[d].counts
			total := 0
			for _, c := range counts {
				total += c
			}
			fmt.Printf("\nd=%d (N=%d)\n", d, total)
			for c := 0; c <= 20; c++ {
				frac := float64(counts[c]) / float64(total)
				fmt.Printf("%3d cycles  %.4f %s\n", c, frac, strings.Repeat("#", int(frac*120)))
			}
		}
	}

	// Close the loop: measured latency distribution -> backlog model.
	adder, err := qprog.Cuccaro(20)
	if err != nil {
		log.Fatal(err)
	}
	isT := backlog.Program(adder.Circuit.Decompose())
	const floorNs = 20 // the paper's worst-case decode bound
	fmt.Printf("\nBacklog model on cuccaro-adder-20, tGen = %.0f ns, floor = %.0f ns\n\n", *tGen, float64(floorNs))
	bw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(bw, "d\tdecode ns (worst)\tdecode ns (dist)\tslowdown (worst)\tslowdown (dist)")
	for _, d := range ds {
		// The per-d cycle histograms accumulate in the process-wide
		// registry as the meshes decode; flush-on-Put already ran when
		// the pool reclaimed the sweep's meshes.
		snap := obs.Default().Histogram(fmt.Sprintf("sfq_decode_cycles_d%d", d)).Snapshot()
		var sts []sfq.Stats
		for c := range samples[d].counts {
			sts = append(sts, sfq.Stats{Cycles: c})
		}
		wm := backlog.ModelForDecodes(*tGen, floorNs, sts)
		hm := backlog.ModelForHistogram(*tGen, floorNs, sfq.CycleTimePs/1000, snap)
		wt, err := wm.Execute(isT)
		if err != nil {
			log.Fatal(err)
		}
		ht, err := hm.Execute(isT)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(bw, "%d\t%.2f\t%.2f\t%.4g\t%.4g\n", d, wm.DecodeNs, hm.DecodeNs, wt.Slowdown(), ht.Slowdown())
	}
	bw.Flush()
}
