// Command synth regenerates the hardware characterization: Table II
// (the ERSFQ cell library), Table III (subcircuit synthesis results
// after path balancing), and the §VIII footprint and refrigerator-budget
// analysis.
//
// Usage:
//
//	synth [-cells] [-distance 9] [-budget 0.1]
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/knob"
	"repro/internal/sfqchip"
)

func main() {
	if err := knob.CheckEnv(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cells := flag.Bool("cells", false, "print the Table II cell library")
	distance := flag.Int("distance", 9, "code distance for the mesh footprint")
	budget := flag.Float64("budget", 0.1, "power budget (W) for the co-location analysis")
	flag.Parse()

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	if *cells {
		fmt.Println("Table II — ERSFQ cell library")
		fmt.Fprintln(w, "cell\tarea (µm²)\tJJs\tdelay (ps)\tpower (µW)")
		for _, c := range sfqchip.Library() {
			fmt.Fprintf(w, "%s\t%.0f\t%d\t%.1f\t%.3f\n", c.Name, c.AreaUm2, c.JJs, c.DelayPs, c.PowerUw)
		}
		w.Flush()
		fmt.Println()
	}

	fmt.Println("Table III — synthesized decoder subcircuits (path balanced)")
	fmt.Fprintln(w, "circuit\tdepth\tlatency (ps)\tarea (µm²)\tpower (µW)\tJJs\tgates\tDFFs")
	for _, r := range sfqchip.TableIII() {
		fmt.Fprintf(w, "%s\t%d\t%.2f\t%.0f\t%.3f\t%d\t%d\t%d\n",
			r.Name, r.LogicalDepth, r.LatencyPs, r.AreaUm2, r.PowerUw, r.JJs, r.Gates, r.DFFs)
	}
	w.Flush()
	fmt.Println("(paper: subcircuits depth 5, 85.6–96 ps, 338–448k µm², 3.4–4.6 µW;")
	fmt.Println(" full circuit depth 6, 162.72 ps, 1.28 mm², 13.08 µW)")

	area, power, modules := sfqchip.DecoderFootprint(*distance)
	fmt.Printf("\nd=%d decoder mesh: %d modules, %.2f mm², %.3f mW", *distance, modules, area, power)
	if *distance == 9 {
		fmt.Printf("  (paper: 289 modules, 369.72 mm², 3.78 mW)")
	}
	fmt.Println()

	side := sfqchip.MeshSideWithinBudget(*budget)
	fmt.Printf("mesh within a %.3f W budget: %d × %d modules — a single distance-%d qubit, or %d distance-5 qubits\n",
		*budget, side, side, (side+1)/2, side*side/81)
	fmt.Println("(paper: 87 × 87 mesh, one d=44 qubit or 100 d=5 qubits)")
}
