// Command sqv regenerates the Fig. 1 Simple-Quantum-Volume analysis:
// the raw volume of a NISQ machine, the per-distance AQEC operating
// points, and the boost factors versus the 10^5 NISQ target.
//
// Usage:
//
//	sqv [-qubits 1024] [-p 1e-5]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/sqv"
)

func main() {
	qubits := flag.Int("qubits", 1024, "physical qubits")
	p := flag.Float64("p", 1e-5, "physical error rate")
	flag.Parse()

	m := sqv.Machine{PhysicalQubits: *qubits, ErrorRate: *p}
	fit := sqv.NISQPlusFit()
	fmt.Printf("Fig. 1 — SQV boost for a %d-qubit machine at p=%g\n\n", *qubits, *p)
	fmt.Printf("raw machine SQV (no correction): %.3g\n", m.RawSQV())
	fmt.Printf("NISQ target SQV: %.0g\n\n", sqv.NISQTargetSQV)

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "d\tlogical qubits\tPL\tgates/qubit\tSQV\tboost vs target")
	for _, d := range []int{3, 5, 7, 9} {
		if *qubits/sqv.QubitsPerLogical(d) < 1 {
			continue
		}
		plan, err := m.PlanAt(fit, d)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "%d\t%d\t%.3g\t%.3g\t%.3g\t%.0f\n",
			plan.Distance, plan.LogicalQubits, plan.LogicalError,
			plan.GatesPerQubit, plan.SQV, plan.BoostVsTarget)
	}
	w.Flush()

	best, err := m.Best(fit)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbest operating point: d=%d, SQV %.3g, boost %.0f\n", best.Distance, best.SQV, best.BoostVsTarget)
	fmt.Println("(paper: d=3 gives 78 logical qubits, SQV 3.4e8, boost 3402;")
	fmt.Println(" d=5 gives 40 logical qubits, SQV 1.12e9, boost 11163)")
}
