// Command sqv regenerates the Fig. 1 Simple-Quantum-Volume analysis:
// the raw volume of a NISQ machine, the per-distance AQEC operating
// points, and the boost factors versus the 10^5 NISQ target.
//
// Usage:
//
//	sqv [-qubits 1024] [-p 1e-5] [-empirical] [-obs :9090]
//
// With -empirical the command additionally validates the 1/(K·PL)
// stopping-time accounting at an elevated error rate: a K-tile machine
// of SFQ-decoded logical qubits runs Monte-Carlo until first failure
// and the measured mean cycles-to-failure is printed next to the
// analytic prediction. -obs serves the run's live telemetry.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/decoder"
	"repro/internal/knob"
	"repro/internal/lattice"
	"repro/internal/noise"
	"repro/internal/obs"
	"repro/internal/sfq"
	"repro/internal/sqv"
	"repro/internal/stats"
)

func main() {
	if err := knob.CheckEnv(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	qubits := flag.Int("qubits", 1024, "physical qubits")
	p := flag.Float64("p", 1e-5, "physical error rate")
	empirical := flag.Bool("empirical", false, "validate 1/(K·PL) with a Monte-Carlo stopping-time run")
	empP := flag.Float64("emp-p", 0.04, "elevated physical rate for the empirical run")
	empTrials := flag.Int("emp-trials", 200, "stopping-time trials for the empirical run")
	seed := flag.Int64("seed", 1, "random seed for the empirical run")
	workers := flag.Int("workers", 0, "concurrent trial shards (0 = GOMAXPROCS)")
	obsAddr := flag.String("obs", "", "serve /metrics, /metrics.json, /manifest.json and /debug/pprof on this address (e.g. :9090)")
	flag.Parse()

	var reg *obs.Registry
	if *obsAddr != "" {
		srv, err := obs.ServeDefault(*obsAddr, map[string]any{
			"qubits": *qubits, "p": *p, "empirical": *empirical,
			"emp_p": *empP, "emp_trials": *empTrials, "seed": *seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "obs: telemetry on http://%s/metrics\n", srv.Addr)
		reg = obs.Default()
	}

	m := sqv.Machine{PhysicalQubits: *qubits, ErrorRate: *p}
	fit := sqv.NISQPlusFit()
	fmt.Printf("Fig. 1 — SQV boost for a %d-qubit machine at p=%g\n\n", *qubits, *p)
	fmt.Printf("raw machine SQV (no correction): %.3g\n", m.RawSQV())
	fmt.Printf("NISQ target SQV: %.0g\n\n", sqv.NISQTargetSQV)

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "d\tlogical qubits\tPL\tgates/qubit\tSQV\tboost vs target")
	for _, d := range []int{3, 5, 7, 9} {
		if *qubits/sqv.QubitsPerLogical(d) < 1 {
			continue
		}
		plan, err := m.PlanAt(fit, d)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "%d\t%d\t%.3g\t%.3g\t%.3g\t%.0f\n",
			plan.Distance, plan.LogicalQubits, plan.LogicalError,
			plan.GatesPerQubit, plan.SQV, plan.BoostVsTarget)
	}
	w.Flush()

	best, err := m.Best(fit)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbest operating point: d=%d, SQV %.3g, boost %.0f\n", best.Distance, best.SQV, best.BoostVsTarget)
	fmt.Println("(paper: d=3 gives 78 logical qubits, SQV 3.4e8, boost 3402;")
	fmt.Println(" d=5 gives 40 logical qubits, SQV 1.12e9, boost 11163)")

	if !*empirical {
		return
	}
	// Empirical validation of the SQV accounting at an elevated rate
	// where failures are observable in a short run: K SFQ-decoded tiles
	// advanced until first logical fault.
	const d, k, maxCycles = 3, 2, 4000
	pool := sfq.NewPool(sfq.Final)
	m2, err := sqv.NewMachineSim(sqv.SimConfig{
		LogicalQubits: k, Distance: d, P: *empP,
		NewDecoderZ: func(d int) decoder.Decoder { return pool.Get(d, lattice.ZErrors) },
		Seed:        *seed,
		Workers:     *workers,
		FreeDecoder: pool.Release,
		Obs:         reg,
	})
	if err != nil {
		log.Fatal(err)
	}
	mean, err := m2.MeanCyclesToFailure(*empTrials, maxCycles)
	if err != nil {
		log.Fatal(err)
	}
	// Analytic prediction from a single-tile lifetime measurement at
	// the same rate: gates/qubit = 1/(K·PL).
	pts, err := stats.Curves(stats.CurveConfig{
		Distances:  []int{d},
		Rates:      []float64{*empP},
		Cycles:     8000,
		NewChannel: func(p float64) (noise.Channel, error) { return noise.NewDephasing(p) },
		NewDecoderZ: func(d int) decoder.Decoder {
			return pool.Get(d, lattice.ZErrors)
		},
		FreeDecoder: pool.Release,
		Seed:        *seed,
		Workers:     *workers,
		Obs:         reg,
	})
	if err != nil {
		log.Fatal(err)
	}
	pl := pts[0].PL
	fmt.Printf("\nempirical stopping time: K=%d, d=%d, p=%g\n", k, d, *empP)
	fmt.Printf("measured mean cycles to failure: %.1f (%d trials)\n", mean, *empTrials)
	if pl > 0 {
		fmt.Printf("analytic 1/(K·PL): %.1f (PL=%.5f)\n", 1/(float64(k)*pl), pl)
	} else {
		fmt.Println("analytic 1/(K·PL): PL measured as 0 — raise -emp-p or trials")
	}
}
