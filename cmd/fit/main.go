// Command fit regenerates Table V: the per-distance c2 coefficients of
// the model PL ≈ c1·(p/pth)^(c2·d), fitted to below-threshold
// Monte-Carlo points of the final SFQ design. c2 measures the effective
// fraction of the code distance the approximate decoder retains.
//
// Usage:
//
//	fit [-cycles 40000] [-pth 0.05] [-distances 3,5,7,9] [-seed 1]
//	    [-workers 0] [-relwidth 0] [-progress]
//
// The sweep runs on the sharded Monte-Carlo engine: results are
// bit-identical for any -workers value, and -relwidth trades cycles
// for a target confidence-interval width per point.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"text/tabwriter"

	"repro/internal/decoder"
	"repro/internal/knob"
	"repro/internal/lattice"
	"repro/internal/noise"
	"repro/internal/progress"
	"repro/internal/sfq"
	"repro/internal/stats"
)

func main() {
	if err := knob.CheckEnv(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cycles := flag.Int("cycles", 40000, "syndrome cycles per (d, p) point")
	pth := flag.Float64("pth", 0.05, "accuracy threshold used by the model")
	distances := flag.String("distances", "3,5,7,9", "code distances")
	workers := flag.Int("workers", 0, "concurrent trial shards (0 = GOMAXPROCS)")
	seed := flag.Int64("seed", 1, "random seed")
	relWidth := flag.Float64("relwidth", 0, "stop a point once its 95% CI is tighter than this fraction of PL (0 = run all cycles)")
	showProgress := flag.Bool("progress", false, "live progress line on stderr")
	flag.Parse()

	var ds []int
	for _, f := range strings.Split(*distances, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			log.Fatal(err)
		}
		ds = append(ds, v)
	}
	rates := []float64{0.015, 0.02, 0.025, 0.03, 0.035, 0.04}

	pool := sfq.NewPool(sfq.Final)
	cfg := stats.CurveConfig{
		Distances:  ds,
		Rates:      rates,
		Cycles:     *cycles,
		NewChannel: func(p float64) (noise.Channel, error) { return noise.NewDephasing(p) },
		NewDecoderZ: func(d int) decoder.Decoder {
			return pool.Get(d, lattice.ZErrors)
		},
		Seed:           *seed,
		Workers:        *workers,
		TargetRelWidth: *relWidth,
		FreeDecoder:    pool.Release,
	}
	var bar *progress.Printer
	if *showProgress {
		bar = progress.New(os.Stderr, len(ds)*len(rates))
		cfg.Progress = bar.Observe
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	points, err := stats.CurvesContext(ctx, cfg)
	if bar != nil {
		bar.Finish()
	}
	if err != nil {
		log.Fatal(err)
	}

	paper := map[int]float64{3: 0.650, 5: 0.429, 7: 0.306, 9: 0.323}
	fmt.Printf("Table V — PL ≈ c1·(p/%.3f)^(c2·d) fits, %d cycles/point\n\n", *pth, *cycles)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "d\tc1\tc2\t(paper c2)")
	byD := stats.ByDistance(points)
	for _, d := range ds {
		c1, c2, err := stats.FitC2(byD[d], *pth)
		if err != nil {
			fmt.Fprintf(w, "%d\t—\t—\t(%.3f)  %v\n", d, paper[d], err)
			continue
		}
		fmt.Fprintf(w, "%d\t%.4f\t%.3f\t(%.3f)\n", d, c1, c2, paper[d])
	}
	w.Flush()
}
