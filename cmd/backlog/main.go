// Command backlog regenerates the §III motivation artifacts: Table I
// (the simulated benchmark circuits), Fig. 5 (the wall-clock trace of a
// backlogged execution), and Fig. 6 (running time versus the syndrome
// data processing ratio for all five benchmarks).
//
// Usage:
//
//	backlog -table1
//	backlog -trace [-bench "cuccaro adder"] [-ratio 2] [-cycle 400]
//	backlog -sweep [-cycle 400]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/backlog"
	"repro/internal/knob"
	"repro/internal/qprog"
)

func main() {
	if err := knob.CheckEnv(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	table1 := flag.Bool("table1", false, "print the Table I benchmark characteristics")
	trace := flag.Bool("trace", false, "print the Fig. 5 wall-clock trace")
	sweep := flag.Bool("sweep", false, "print the Fig. 6 ratio sweep")
	benchName := flag.String("bench", "cuccaro adder", "benchmark for -trace")
	ratio := flag.Float64("ratio", 2, "rgen/rproc processing ratio for -trace")
	cycle := flag.Float64("cycle", 400, "syndrome generation cycle (ns)")
	flag.Parse()
	if !*table1 && !*trace && !*sweep {
		*table1, *sweep = true, true
	}

	benches, err := qprog.Benchmarks()
	if err != nil {
		log.Fatal(err)
	}

	if *table1 {
		fmt.Println("Table I — characteristics of the simulated benchmarks")
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "benchmark\tqubits\ttotal gates\tT gates\t(paper: qubits/total/T)")
		for _, b := range benches {
			fmt.Fprintf(w, "%s\t%d\t%d\t%d\t(%d/%d/%d)\n",
				b.Name, b.Stats.Qubits, b.Stats.Total, b.Stats.TGates,
				b.PaperQubits, b.PaperTotal, b.PaperTGates)
		}
		w.Flush()
		fmt.Println()
	}

	if *trace {
		var chosen *qprog.Benchmark
		for i := range benches {
			if benches[i].Name == *benchName {
				chosen = &benches[i]
			}
		}
		if chosen == nil {
			log.Fatalf("unknown benchmark %q", *benchName)
		}
		m := backlog.Model{SyndromeCycleNs: *cycle, DecodeNs: *ratio * *cycle}
		tr, err := m.Execute(backlog.Program(chosen.Circuit))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Fig. 5 — wall clock vs compute time, %s, f=%.2f\n\n", chosen.Name, *ratio)
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "T gate\tcompute (µs)\twall (µs)\tstall (µs)")
		for i, pt := range tr.Points {
			if i%25 != 0 && i != len(tr.Points)-1 {
				continue
			}
			fmt.Fprintf(w, "%d\t%.2f\t%.4g\t%.4g\n", i+1, pt.ComputeNs/1000, pt.WallNs/1000, pt.StallNs/1000)
		}
		w.Flush()
		fmt.Printf("\ntotal: compute %.2f µs, wall %.4g µs, slowdown %.4g\n",
			tr.ComputeNs/1000, tr.WallNs/1000, tr.Slowdown())
	}

	if *sweep {
		ratios := []float64{0.25, 0.5, 0.75, 0.9, 1.0, 1.1, 1.25, 1.5, 1.75, 2.0}
		fmt.Println("Fig. 6 — running time (s) vs syndrome data processing ratio")
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		header := "ratio"
		for _, b := range benches {
			header += "\t" + b.Name
		}
		fmt.Fprintln(w, header)
		for _, f := range ratios {
			row := fmt.Sprintf("%.2f", f)
			for _, b := range benches {
				pts, err := backlog.Sweep(backlog.Program(b.Circuit), *cycle, []float64{f})
				if err != nil {
					log.Fatal(err)
				}
				row += fmt.Sprintf("\t%.4g", pts[0].WallNs/1e9)
			}
			fmt.Fprintln(w, row)
		}
		w.Flush()
		fmt.Println("\n(ratios above 1 blow up exponentially in the T count — the paper's 10^196 s example)")
	}
}
