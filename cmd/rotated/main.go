// Command rotated compares the paper's unrotated surface-code layout
// against the rotated layout extension at equal code distance: physical
// qubit cost and lifetime logical error rate under the same channel and
// decoder family (exact matching).
//
// Usage:
//
//	rotated [-distances 3,5,7] [-p 0.03] [-cycles 20000] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"

	"repro/internal/decoder/mwpm"
	"repro/internal/noise"
	"repro/internal/rotated"
	"repro/internal/surface"
)

func main() {
	distances := flag.String("distances", "3,5,7", "code distances")
	p := flag.Float64("p", 0.03, "physical dephasing rate")
	cycles := flag.Int("cycles", 20000, "syndrome cycles per point")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	var ds []int
	for _, s := range strings.Split(*distances, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			log.Fatal(err)
		}
		ds = append(ds, v)
	}

	fmt.Printf("unrotated (paper) vs rotated layout — dephasing p=%g, exact matching, %d cycles\n\n", *p, *cycles)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "d\tlayout\tphysical qubits\tlogical errors\tPL")
	for _, d := range ds {
		ch, err := noise.NewDephasing(*p)
		if err != nil {
			log.Fatal(err)
		}
		sim, err := surface.New(surface.Config{
			Distance: d,
			Channel:  ch,
			DecoderZ: mwpm.New(),
			Seed:     *seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run(*cycles)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "%d\tunrotated\t%d\t%d\t%.5f\n",
			d, (2*d-1)*(2*d-1), res.LogicalErrors, res.PL)

		rc, err := rotated.New(d)
		if err != nil {
			log.Fatal(err)
		}
		rres, err := rc.Lifetime(*p, *cycles, rotated.Exact, *seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "%d\trotated\t%d\t%d\t%.5f\n",
			d, d*d+(d*d-1), rres.LogicalErrors, rres.PL)
	}
	w.Flush()
	fmt.Println("\nthe rotated layout reaches the same distance with roughly half the")
	fmt.Println("qubits — the natural upgrade path for the NISQ+ mesh (one decoder")
	fmt.Println("module per qubit either way).")
}
