// Command rotated compares the paper's unrotated surface-code layout
// against the rotated layout extension at equal code distance: physical
// qubit cost and lifetime logical error rate under the same channel and
// decoder family (exact matching).
//
// Both layouts run on the sharded Monte-Carlo engine, so all points
// execute in parallel and the table is bit-identical for any -workers
// value.
//
// Usage:
//
//	rotated [-distances 3,5,7] [-p 0.03] [-cycles 20000] [-seed 1]
//	        [-workers 0]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"text/tabwriter"

	"repro/internal/decoder"
	"repro/internal/decoder/mwpm"
	"repro/internal/knob"
	"repro/internal/noise"
	"repro/internal/rotated"
	"repro/internal/stats"
)

func main() {
	if err := knob.CheckEnv(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	distances := flag.String("distances", "3,5,7", "code distances")
	p := flag.Float64("p", 0.03, "physical dephasing rate")
	cycles := flag.Int("cycles", 20000, "syndrome cycles per point")
	seed := flag.Int64("seed", 1, "random seed")
	workers := flag.Int("workers", 0, "concurrent trial shards (0 = GOMAXPROCS)")
	flag.Parse()

	var ds []int
	for _, s := range strings.Split(*distances, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			log.Fatal(err)
		}
		ds = append(ds, v)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	unrotated, err := stats.CurvesContext(ctx, stats.CurveConfig{
		Distances:   ds,
		Rates:       []float64{*p},
		Cycles:      *cycles,
		NewChannel:  func(p float64) (noise.Channel, error) { return noise.NewDephasing(p) },
		NewDecoderZ: func(d int) decoder.Decoder { return mwpm.New() },
		Seed:        *seed,
		Workers:     *workers,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("unrotated (paper) vs rotated layout — dephasing p=%g, exact matching, %d cycles\n\n", *p, *cycles)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "d\tlayout\tphysical qubits\tlogical errors\tPL")
	for i, d := range ds {
		res := unrotated[i]
		fmt.Fprintf(w, "%d\tunrotated\t%d\t%d\t%.5f\n",
			d, (2*d-1)*(2*d-1), res.Errors, res.PL)

		rc, err := rotated.New(d)
		if err != nil {
			log.Fatal(err)
		}
		rres, err := rc.LifetimeMC(ctx, *p, *cycles, rotated.Exact, *seed, *workers)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "%d\trotated\t%d\t%d\t%.5f\n",
			d, d*d+(d*d-1), rres.LogicalErrors, rres.PL)
	}
	w.Flush()
	fmt.Println("\nthe rotated layout reaches the same distance with roughly half the")
	fmt.Println("qubits — the natural upgrade path for the NISQ+ mesh (one decoder")
	fmt.Println("module per qubit either way).")
}
