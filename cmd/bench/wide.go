package main

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"runtime"
	"time"

	"repro/internal/decodepool"
	"repro/internal/decoder"
	"repro/internal/lattice"
	"repro/internal/noise"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/sfq"
	"repro/internal/stats"
)

// WideArtifact is the on-disk schema of BENCH_pr8.json: the W-word SWAR
// kernel sweep and the multi-core scaling sweep. ServeRows is written
// empty here and appended in place by `loadgen -sweep`, so the one
// artifact carries the whole multi-core story.
type WideArtifact struct {
	Manifest    *obs.Manifest `json:"manifest"`
	KernelRows  []WideRow     `json:"kernel_rows"`
	ScalingRows []ScaleRow    `json:"scaling_rows"`
	ServeRows   []any         `json:"serve_rows,omitempty"`
}

// WideRow is one (distance, plane width) measurement of the SWAR batch
// kernel. Lanes is the full lane complement at that width; SpeedupVsW1
// is the per-decode throughput ratio against the one-word layout of the
// same distance, so ≥1 means the wider plane pays for its extra word
// traffic. Corrections and cycle counts are cross-checked bit-exactly
// against the scalar bit-plane kernel before timing.
type WideRow struct {
	Distance             int     `json:"d"`
	Words                int     `json:"words"`
	Lanes                int     `json:"lanes"`
	Iters                int     `json:"iters"`
	NsPerDecode          float64 `json:"ns_per_decode"`
	DecodesPerSec        float64 `json:"decodes_per_sec"`
	SpeedupVsW1          float64 `json:"speedup_vs_w1"`
	CyclesPerDecode      float64 `json:"cycles_per_decode"`
	BatchAllocsPerDecode float64 `json:"batch_allocs_per_decode"`
}

// ScaleRow is one Monte-Carlo sweep wall-clock measurement at a worker
// count. Fingerprint hashes every returned point; all rows of a run
// must agree (the harness fails otherwise), which pins bit-identical
// sweep output across worker counts, steal schedules, and plane widths.
// Ideal is min(workers, NumCPU) — on a box with fewer cores than
// workers, oversubscription cannot speed anything up and Efficiency is
// measured against what the silicon can actually deliver.
type ScaleRow struct {
	Workers     int     `json:"workers"`
	ForceSteal  bool    `json:"force_steal,omitempty"`
	Words       int     `json:"words,omitempty"` // 0: process default width
	WallMs      float64 `json:"wall_ms"`
	SpeedupVs1  float64 `json:"speedup_vs_1"`
	Ideal       int     `json:"ideal"`
	Efficiency  float64 `json:"efficiency"`
	Fingerprint string  `json:"fingerprint"`
	Steals      uint64  `json:"steals"`
	Stolen      uint64  `json:"stolen"`
	Parks       uint64  `json:"parks"`
}

// benchWideKernel times the SWAR batch kernel at every supported plane
// width on identical seeded syndromes. Each width is conformance-checked
// against the scalar bit-plane kernel (bit-identical corrections and
// cycle counts) before its timing loop, so the artifact is also a
// width-conformance record.
func benchWideKernel(iters int) ([]WideRow, error) {
	var rows []WideRow
	for _, d := range []int{5, 9, 13} {
		l := lattice.MustNew(d)
		g := l.MatchingGraph(lattice.ZErrors)
		syndromes, err := sampleSyndromes(l, g, 64, int64(100+d))
		if err != nil {
			return nil, err
		}
		mesh := sfq.NewWithKernel(g, sfq.Final, sfq.KernelBitplane)
		ss := decodepool.NewScratch()
		cycles := 0
		for _, syn := range syndromes {
			if _, err := mesh.DecodeInto(g, syn, ss); err != nil {
				return nil, err
			}
			cycles += mesh.Stats().Cycles
		}
		var w1Ns float64
		for _, words := range []int{1, 2, 4} {
			batch := sfq.NewBatchWithWidth(g, sfq.Final, words)
			lanes := batch.Lanes()
			wins := make([][][]bool, len(syndromes))
			for i := range wins {
				win := make([][]bool, lanes)
				for j := range win {
					win[j] = syndromes[(i+j)%len(syndromes)]
				}
				wins[i] = win
			}
			sb := decodepool.NewScratch()
			for wi, win := range wins {
				corrs, err := batch.DecodeBatchInto(g, win, sb)
				if err != nil {
					return nil, fmt.Errorf("wide d=%d W=%d window %d: %w", d, words, wi, err)
				}
				for j, syn := range win {
					want, err := mesh.DecodeInto(g, syn, ss)
					if err != nil {
						return nil, err
					}
					if fmt.Sprint(want.Qubits) != fmt.Sprint(corrs[j].Qubits) {
						return nil, fmt.Errorf("d=%d W=%d window %d lane %d: corrections diverge",
							d, words, wi, j)
					}
					if got := batch.LaneStats(j).Cycles; got != mesh.Stats().Cycles {
						return nil, fmt.Errorf("d=%d W=%d window %d lane %d: cycles diverge: scalar %d, batch %d",
							d, words, wi, j, mesh.Stats().Cycles, got)
					}
				}
			}
			calls := (iters + lanes - 1) / lanes
			bat, err := measureWindows(calls, wins, func(win [][]bool) error {
				_, err := batch.DecodeBatchInto(g, win, sb)
				return err
			})
			if err != nil {
				return nil, fmt.Errorf("wide d=%d W=%d: %w", d, words, err)
			}
			ns := bat.NsPerDecode / float64(lanes)
			if words == 1 {
				w1Ns = ns
			}
			row := WideRow{
				Distance:             d,
				Words:                words,
				Lanes:                lanes,
				Iters:                calls * lanes,
				NsPerDecode:          ns,
				DecodesPerSec:        1e9 / ns,
				SpeedupVsW1:          w1Ns / ns,
				CyclesPerDecode:      float64(cycles) / float64(len(syndromes)),
				BatchAllocsPerDecode: bat.AllocsPerDecode / float64(lanes),
			}
			rows = append(rows, row)
			fmt.Printf("sfq wide    d=%-3d W=%d %3d lanes %9.0f ns/decode | %.2fx vs W=1  (%.0f decodes/sec, %.2f allocs)\n",
				d, words, lanes, row.NsPerDecode, row.SpeedupVsW1, row.DecodesPerSec,
				row.BatchAllocsPerDecode)
		}
	}
	// Acceptance floor: at d ≥ 9 the four-word layout must beat the
	// single-word (PR 5) layout measured in the same run by ≥1.5× per
	// decode, allocation-free. Regenerating the artifact is the perf
	// gate — ci.sh relies on this hard failure.
	for _, row := range rows {
		if row.Words != 4 || row.Distance < 9 {
			continue
		}
		if row.SpeedupVsW1 < 1.5 {
			return nil, fmt.Errorf("wide d=%d W=4: %.2fx vs W=1 is below the 1.5x floor", row.Distance, row.SpeedupVsW1)
		}
		if row.BatchAllocsPerDecode > 0.01 {
			return nil, fmt.Errorf("wide d=%d W=4: %.2f allocs/decode, want 0", row.Distance, row.BatchAllocsPerDecode)
		}
	}
	return rows, nil
}

// scaleSweep runs one mixed-distance Monte-Carlo sweep and returns its
// points, wall-clock, and scheduler counters. words > 0 pins every mesh
// to that plane width; 0 uses the process default through the batch
// decoder pool.
func scaleSweep(cycles, workers, words int, forceSteal bool) ([]stats.Point, time.Duration, sched.Stats, error) {
	var ss sched.Stats
	cfg := stats.CurveConfig{
		Distances:  []int{5, 9, 13},
		Rates:      []float64{0.03, 0.05},
		Cycles:     cycles,
		NewChannel: func(p float64) (noise.Channel, error) { return noise.NewDephasing(p) },
		Seed:       42,
		Workers:    workers,
		ForceSteal: forceSteal,
		SchedStats: &ss,
		Batch:      true,
	}
	if words > 0 {
		cfg.NewDecoderZ = func(d int) decoder.Decoder {
			return sfq.NewBatchWithWidth(lattice.MustNew(d).MatchingGraph(lattice.ZErrors), sfq.Final, words)
		}
	} else {
		pool := sfq.NewPool(sfq.Final)
		cfg.NewDecoderZ = func(d int) decoder.Decoder { return pool.GetBatch(d, lattice.ZErrors) }
		cfg.FreeDecoder = pool.Release
	}
	start := time.Now()
	points, err := stats.Curves(cfg)
	return points, time.Since(start), ss, err
}

// fingerprintPoints hashes the full point set (FNV-1a over the fields
// that define a verdict). Two sweeps with the same fingerprint produced
// bit-identical results.
func fingerprintPoints(points []stats.Point) string {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	for _, pt := range points {
		put(uint64(pt.D))
		put(math.Float64bits(pt.P))
		put(uint64(pt.Errors))
		put(uint64(pt.Cycles))
		put(uint64(pt.Forced))
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// benchScaling measures the work-stealing engine's throughput scaling:
// the same mixed-distance sweep at 1/2/4/8 workers, once more at 8
// workers with forced stealing, and once per explicit plane width at 2
// workers. Every run must produce the same point fingerprint — the
// multi-core path is only fast if it is also exact.
func benchScaling(cycles int) ([]ScaleRow, error) {
	type run struct {
		workers    int
		words      int
		forceSteal bool
	}
	runs := []run{
		{workers: 1}, {workers: 2}, {workers: 4}, {workers: 8},
		{workers: 8, forceSteal: true},
		{workers: 2, words: 1}, {workers: 2, words: 2}, {workers: 2, words: 4},
	}
	var rows []ScaleRow
	var baseWall time.Duration
	baseFP := ""
	for _, r := range runs {
		points, wall, ss, err := scaleSweep(cycles, r.workers, r.words, r.forceSteal)
		if err != nil {
			return nil, fmt.Errorf("scaling workers=%d W=%d: %w", r.workers, r.words, err)
		}
		fp := fingerprintPoints(points)
		if baseFP == "" {
			baseFP, baseWall = fp, wall
		} else if fp != baseFP {
			return nil, fmt.Errorf("scaling workers=%d W=%d forceSteal=%v: point fingerprint %s diverges from baseline %s — sweep results depend on the schedule",
				r.workers, r.words, r.forceSteal, fp, baseFP)
		}
		ideal := r.workers
		if n := runtime.NumCPU(); ideal > n {
			ideal = n
		}
		speedup := float64(baseWall) / float64(wall)
		row := ScaleRow{
			Workers:     r.workers,
			ForceSteal:  r.forceSteal,
			Words:       r.words,
			WallMs:      float64(wall.Microseconds()) / 1e3,
			SpeedupVs1:  speedup,
			Ideal:       ideal,
			Efficiency:  speedup / float64(ideal),
			Fingerprint: fp,
			Steals:      ss.Steals,
			Stolen:      ss.Stolen,
			Parks:       ss.Parks,
		}
		rows = append(rows, row)
		fmt.Printf("mc scaling  workers=%d%s%s %8.1f ms | %.2fx vs 1 worker (ideal %d, efficiency %.2f) | %d steals / %d stolen\n",
			r.workers, wordsTag(r.words), stealTag(r.forceSteal),
			row.WallMs, row.SpeedupVs1, row.Ideal, row.Efficiency, ss.Steals, ss.Stolen)
		// Scaling floor: whenever the cores exist (workers ≤ NumCPU),
		// the sweep must reach ≥0.8× ideal. Oversubscribed rows are
		// diagnostics — on a 1-CPU box running 8 workers, scheduler
		// overhead is the measurement, not a regression.
		if r.workers <= runtime.NumCPU() && r.words == 0 && row.Efficiency < 0.8 {
			return nil, fmt.Errorf("scaling workers=%d: efficiency %.2f is below the 0.8 floor at ideal=%d",
				r.workers, row.Efficiency, ideal)
		}
	}
	return rows, nil
}

func wordsTag(w int) string {
	if w == 0 {
		return ""
	}
	return fmt.Sprintf(" W=%d", w)
}

func stealTag(f bool) string {
	if !f {
		return ""
	}
	return " force-steal"
}
