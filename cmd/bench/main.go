// Command bench measures the decode hot path outside the testing
// framework and writes the results as JSON, so benchmark regressions are
// tracked as repository artifacts. For every matching decoder and
// d ∈ {5, 9, 13} it times the legacy allocating Decode path and the
// pooled zero-allocation DecodeInto path on identical seeded syndromes
// (BENCH_pr2.json), then times the SFQ mesh's legacy and bit-plane
// stepping kernels head to head on the same syndromes (BENCH_pr3.json),
// reporting ns/decode, mesh cycles/decode, and allocation counts from
// runtime.MemStats deltas. Finally it races the scalar bit-plane kernel
// against the SWAR batch kernel at d ∈ {5, 7, 9, 13} (BENCH_pr5.json),
// cross-checking batch corrections and cycle counts against the scalar
// kernel before timing.
//
// Each artifact embeds the run manifest (git SHA + dirty flag, Go
// version, GOMAXPROCS, CPU count, kernel env knobs) so a number in the
// perf trajectory is attributable to the machine and tree that produced
// it.
//
// Usage:
//
//	bench [-iters 2000] [-out BENCH_pr2.json] [-mesh-out BENCH_pr3.json] [-batch-out BENCH_pr5.json] [-obs :9090]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"repro/internal/decodepool"
	"repro/internal/decoder/greedy"
	"repro/internal/decoder/mwpm"
	"repro/internal/decoder/unionfind"
	"repro/internal/knob"
	"repro/internal/lattice"
	"repro/internal/noise"
	"repro/internal/obs"
	"repro/internal/pauli"
	"repro/internal/sfq"
)

// Artifact is the on-disk schema of BENCH_pr2.json: the measurement
// rows plus the manifest of the run that produced them.
type Artifact struct {
	Manifest *obs.Manifest `json:"manifest"`
	Rows     []Row         `json:"rows"`
}

// MeshArtifact is the on-disk schema of BENCH_pr3.json.
type MeshArtifact struct {
	Manifest *obs.Manifest `json:"manifest"`
	Rows     []MeshRow     `json:"rows"`
}

// BatchArtifact is the on-disk schema of BENCH_pr5.json.
type BatchArtifact struct {
	Manifest *obs.Manifest `json:"manifest"`
	Rows     []BatchRow    `json:"rows"`
}

// Row is one benchmark measurement.
type Row struct {
	Decoder         string  `json:"decoder"`
	Distance        int     `json:"d"`
	Path            string  `json:"path"` // "legacy" or "pooled"
	Iters           int     `json:"iters"`
	NsPerDecode     float64 `json:"ns_per_decode"`
	AllocsPerDecode float64 `json:"allocs_per_decode"`
	BytesPerDecode  float64 `json:"bytes_per_decode"`
}

// MeshRow is one mesh-kernel measurement. CyclesPerDecode is the mean
// simulated mesh cycle count over the syndrome set — it must be
// identical across kernels (the bit-plane kernel is cycle-exact), so the
// artifact doubles as a conformance record.
type MeshRow struct {
	Kernel          string  `json:"kernel"` // "legacy" or "bitplane"
	Distance        int     `json:"d"`
	Variant         string  `json:"variant"`
	Iters           int     `json:"iters"`
	NsPerDecode     float64 `json:"ns_per_decode"`
	CyclesPerDecode float64 `json:"cycles_per_decode"`
	AllocsPerDecode float64 `json:"allocs_per_decode"`
	BytesPerDecode  float64 `json:"bytes_per_decode"`
}

// BatchRow is one scalar-vs-batch measurement: the same syndrome set
// decoded one at a time through the scalar bit-plane kernel and
// Lanes()-wide through the SWAR batch kernel. Both ns figures are
// per decode (the batch loop is normalized by lanes), so Speedup is the
// per-decode throughput ratio. CyclesPerDecode comes from the batch
// kernel and is cross-checked against the scalar kernel before timing.
type BatchRow struct {
	Distance             int     `json:"d"`
	Lanes                int     `json:"lanes"`
	Variant              string  `json:"variant"`
	Iters                int     `json:"iters"`
	ScalarNsPerDecode    float64 `json:"scalar_ns_per_decode"`
	BatchNsPerDecode     float64 `json:"batch_ns_per_decode"`
	Speedup              float64 `json:"speedup"`
	ScalarDecodesPerSec  float64 `json:"scalar_decodes_per_sec"`
	BatchDecodesPerSec   float64 `json:"batch_decodes_per_sec"`
	CyclesPerDecode      float64 `json:"cycles_per_decode"`
	BatchAllocsPerDecode float64 `json:"batch_allocs_per_decode"`
}

func main() {
	if err := knob.CheckEnv(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	iters := flag.Int("iters", 2000, "timed decodes per (decoder, d, path) cell")
	out := flag.String("out", "BENCH_pr2.json", "output JSON path (software decoders)")
	meshOut := flag.String("mesh-out", "BENCH_pr3.json", "output JSON path (mesh kernels)")
	batchOut := flag.String("batch-out", "BENCH_pr5.json", "output JSON path (scalar vs SWAR batch kernel)")
	wideOut := flag.String("wide-out", "BENCH_pr8.json", "output JSON path (W-word kernel widths + multi-core scaling)")
	scaleCycles := flag.Int("scale-cycles", 4000, "Monte-Carlo cycles per point in the scaling sweep")
	allowDirty := flag.Bool("allow-dirty", false, "permit benchmarking an uncommitted tree (artifact still records git_dirty)")
	obsAddr := flag.String("obs", "", "serve /metrics and /debug/pprof on this address while benchmarking (e.g. :9090)")
	flag.Parse()

	manifest := obs.NewManifest(map[string]any{
		"iters":           *iters,
		"scale_cycles":    *scaleCycles,
		"sfq_batch_words": sfq.BatchWords,
	})
	if manifest.GitDirty && !*allowDirty {
		fmt.Fprintf(os.Stderr,
			"bench: working tree is dirty (uncommitted changes at %s) — a perf artifact from an "+
				"unreproducible tree is worthless; commit first or rerun with -allow-dirty\n",
			manifest.GitSHA)
		os.Exit(1)
	}
	if *obsAddr != "" {
		srv, err := obs.ServeDefault(*obsAddr, map[string]any{"iters": *iters})
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "obs: telemetry on http://%s/metrics\n", srv.Addr)
	}

	var rows []Row
	for _, d := range []int{5, 9, 13} {
		l := lattice.MustNew(d)
		g := l.MatchingGraph(lattice.ZErrors)
		syndromes, err := sampleSyndromes(l, g, 64, int64(100+d))
		if err != nil {
			log.Fatal(err)
		}
		for _, dec := range []decodepool.IntoDecoder{greedy.New(), mwpm.New(), unionfind.New()} {
			legacy, err := measure(*iters, syndromes, func(syn []bool) error {
				_, err := dec.Decode(g, syn)
				return err
			})
			if err != nil {
				log.Fatalf("%s d=%d legacy: %v", dec.Name(), d, err)
			}
			legacy.Decoder, legacy.Distance, legacy.Path = dec.Name(), d, "legacy"
			rows = append(rows, legacy)

			s := decodepool.NewScratch()
			pooled, err := measure(*iters, syndromes, func(syn []bool) error {
				_, err := dec.DecodeInto(g, syn, s)
				return err
			})
			if err != nil {
				log.Fatalf("%s d=%d pooled: %v", dec.Name(), d, err)
			}
			pooled.Decoder, pooled.Distance, pooled.Path = dec.Name(), d, "pooled"
			rows = append(rows, pooled)

			fmt.Printf("%-11s d=%-3d legacy %9.0f ns/decode %7.1f allocs | pooled %9.0f ns/decode %7.1f allocs | %.2fx\n",
				dec.Name(), d, legacy.NsPerDecode, legacy.AllocsPerDecode,
				pooled.NsPerDecode, pooled.AllocsPerDecode,
				legacy.NsPerDecode/pooled.NsPerDecode)
		}
	}

	if err := writeArtifact(*out, Artifact{Manifest: manifest, Rows: rows}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d rows)\n\n", *out, len(rows))

	meshRows, err := benchMeshKernels(*iters)
	if err != nil {
		log.Fatal(err)
	}
	if err := writeArtifact(*meshOut, MeshArtifact{Manifest: manifest, Rows: meshRows}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d rows)\n\n", *meshOut, len(meshRows))

	batchRows, err := benchBatchKernel(*iters)
	if err != nil {
		log.Fatal(err)
	}
	if err := writeArtifact(*batchOut, BatchArtifact{Manifest: manifest, Rows: batchRows}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d rows)\n\n", *batchOut, len(batchRows))

	wideRows, err := benchWideKernel(*iters)
	if err != nil {
		log.Fatal(err)
	}
	scaleRows, err := benchScaling(*scaleCycles)
	if err != nil {
		log.Fatal(err)
	}
	wide := WideArtifact{Manifest: manifest, KernelRows: wideRows, ScalingRows: scaleRows}
	if err := writeArtifact(*wideOut, wide); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d kernel rows, %d scaling rows)\n", *wideOut, len(wideRows), len(scaleRows))
}

// writeArtifact marshals one artifact with a trailing newline.
func writeArtifact(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// benchMeshKernels times the SFQ mesh's two stepping kernels on
// identical seeded syndromes through the zero-allocation DecodeInto
// path, and checks that the bit-plane kernel reproduces the legacy
// kernel's simulated cycle counts exactly.
func benchMeshKernels(iters int) ([]MeshRow, error) {
	var rows []MeshRow
	for _, d := range []int{5, 9, 13} {
		l := lattice.MustNew(d)
		g := l.MatchingGraph(lattice.ZErrors)
		syndromes, err := sampleSyndromes(l, g, 64, int64(100+d))
		if err != nil {
			return nil, err
		}
		var legacyNs float64
		for _, k := range []sfq.Kernel{sfq.KernelLegacy, sfq.KernelBitplane} {
			mesh := sfq.NewWithKernel(g, sfq.Final, k)
			s := decodepool.NewScratch()
			// Cycle counts are deterministic per syndrome: one clean pass
			// gives the exact mean, independent of the timing loop.
			cycles := 0
			for _, syn := range syndromes {
				if _, err := mesh.DecodeInto(g, syn, s); err != nil {
					return nil, fmt.Errorf("mesh %s d=%d: %w", k, d, err)
				}
				cycles += mesh.Stats().Cycles
			}
			row, err := measure(iters, syndromes, func(syn []bool) error {
				_, err := mesh.DecodeInto(g, syn, s)
				return err
			})
			if err != nil {
				return nil, fmt.Errorf("mesh %s d=%d: %w", k, d, err)
			}
			rows = append(rows, MeshRow{
				Kernel:          k.String(),
				Distance:        d,
				Variant:         sfq.Final.Name(),
				Iters:           row.Iters,
				NsPerDecode:     row.NsPerDecode,
				CyclesPerDecode: float64(cycles) / float64(len(syndromes)),
				AllocsPerDecode: row.AllocsPerDecode,
				BytesPerDecode:  row.BytesPerDecode,
			})
			if k == sfq.KernelLegacy {
				legacyNs = row.NsPerDecode
			} else {
				prev := rows[len(rows)-2]
				if prev.CyclesPerDecode != rows[len(rows)-1].CyclesPerDecode {
					return nil, fmt.Errorf("d=%d: kernels disagree on cycles/decode: legacy %v, bitplane %v",
						d, prev.CyclesPerDecode, rows[len(rows)-1].CyclesPerDecode)
				}
				fmt.Printf("sfq mesh    d=%-3d legacy %9.0f ns/decode | bitplane %9.0f ns/decode | %.2fx  (%.2f cycles/decode, %.1f allocs)\n",
					d, legacyNs, row.NsPerDecode, legacyNs/row.NsPerDecode,
					rows[len(rows)-1].CyclesPerDecode, row.AllocsPerDecode)
			}
		}
	}
	return rows, nil
}

// benchBatchKernel races the scalar bit-plane kernel against the SWAR
// batch kernel on identical seeded syndromes. Before timing it decodes
// every batch window through both kernels and requires bit-identical
// corrections and cycle counts, so the artifact doubles as a
// conformance record.
func benchBatchKernel(iters int) ([]BatchRow, error) {
	var rows []BatchRow
	for _, d := range []int{5, 7, 9, 13} {
		l := lattice.MustNew(d)
		g := l.MatchingGraph(lattice.ZErrors)
		syndromes, err := sampleSyndromes(l, g, 64, int64(100+d))
		if err != nil {
			return nil, err
		}
		mesh := sfq.NewWithKernel(g, sfq.Final, sfq.KernelBitplane)
		batch := sfq.NewBatch(g, sfq.Final)
		lanes := batch.Lanes()
		// Rotating lane windows over the syndrome set, as in
		// BenchmarkSFQMesh/batch.
		wins := make([][][]bool, len(syndromes))
		for i := range wins {
			win := make([][]bool, lanes)
			for j := range win {
				win[j] = syndromes[(i+j)%len(syndromes)]
			}
			wins[i] = win
		}
		ss, sb := decodepool.NewScratch(), decodepool.NewScratch()
		for wi, win := range wins {
			corrs, err := batch.DecodeBatchInto(g, win, sb)
			if err != nil {
				return nil, fmt.Errorf("batch d=%d window %d: %w", d, wi, err)
			}
			for j, syn := range win {
				want, err := mesh.DecodeInto(g, syn, ss)
				if err != nil {
					return nil, fmt.Errorf("scalar d=%d window %d: %w", d, wi, err)
				}
				if fmt.Sprint(want.Qubits) != fmt.Sprint(corrs[j].Qubits) {
					return nil, fmt.Errorf("d=%d window %d lane %d: corrections diverge: scalar %v, batch %v",
						d, wi, j, want.Qubits, corrs[j].Qubits)
				}
				if got := batch.LaneStats(j).Cycles; got != mesh.Stats().Cycles {
					return nil, fmt.Errorf("d=%d window %d lane %d: cycles diverge: scalar %d, batch %d",
						d, wi, j, mesh.Stats().Cycles, got)
				}
			}
		}
		cycles := 0
		for _, syn := range syndromes {
			if _, err := mesh.DecodeInto(g, syn, ss); err != nil {
				return nil, err
			}
			cycles += mesh.Stats().Cycles
		}
		scalar, err := measure(iters, syndromes, func(syn []bool) error {
			_, err := mesh.DecodeInto(g, syn, ss)
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("scalar d=%d: %w", d, err)
		}
		// Time the batch kernel over enough windows to complete at least
		// iters individual decodes, then normalize by lanes.
		calls := (iters + lanes - 1) / lanes
		bat, err := measureWindows(calls, wins, func(win [][]bool) error {
			_, err := batch.DecodeBatchInto(g, win, sb)
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("batch d=%d: %w", d, err)
		}
		batNs := bat.NsPerDecode / float64(lanes)
		row := BatchRow{
			Distance:             d,
			Lanes:                lanes,
			Variant:              sfq.Final.Name(),
			Iters:                calls * lanes,
			ScalarNsPerDecode:    scalar.NsPerDecode,
			BatchNsPerDecode:     batNs,
			Speedup:              scalar.NsPerDecode / batNs,
			ScalarDecodesPerSec:  1e9 / scalar.NsPerDecode,
			BatchDecodesPerSec:   1e9 / batNs,
			CyclesPerDecode:      float64(cycles) / float64(len(syndromes)),
			BatchAllocsPerDecode: bat.AllocsPerDecode / float64(lanes),
		}
		rows = append(rows, row)
		fmt.Printf("sfq batch   d=%-3d scalar %9.0f ns/decode | batch %9.0f ns/decode (%d lanes) | %.2fx  (%.0f vs %.0f decodes/sec)\n",
			d, row.ScalarNsPerDecode, row.BatchNsPerDecode, lanes, row.Speedup,
			row.ScalarDecodesPerSec, row.BatchDecodesPerSec)
	}
	return rows, nil
}

// measureWindows is measure for batch windows: iters calls over the
// window set after a warm-up pass; per-call metrics (callers normalize
// by lane count).
func measureWindows(iters int, wins [][][]bool, decode func(win [][]bool) error) (Row, error) {
	for _, win := range wins {
		if err := decode(win); err != nil {
			return Row{}, err
		}
	}
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := decode(wins[i%len(wins)]); err != nil {
			return Row{}, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	return Row{
		Iters:           iters,
		NsPerDecode:     float64(elapsed.Nanoseconds()) / float64(iters),
		AllocsPerDecode: float64(ms1.Mallocs-ms0.Mallocs) / float64(iters),
		BytesPerDecode:  float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(iters),
	}, nil
}

// sampleSyndromes draws the benchmark's fixed syndrome set (dephasing at
// p = 5%, same seeds as BenchmarkDecodeHotPath).
func sampleSyndromes(l *lattice.Lattice, g *lattice.Graph, count int, seed int64) ([][]bool, error) {
	rng := noise.NewRand(seed)
	ch, err := noise.NewDephasing(0.05)
	if err != nil {
		return nil, err
	}
	var targets []int
	for _, s := range l.DataSites() {
		targets = append(targets, l.QubitIndex(s))
	}
	syndromes := make([][]bool, count)
	for i := range syndromes {
		f := pauli.NewFrame(l.NumQubits())
		ch.Sample(rng, f, targets)
		syndromes[i] = g.Syndrome(f)
	}
	return syndromes, nil
}

// measure times iters decodes over the syndrome set after a full
// warm-up pass, and reads allocation counts from MemStats deltas.
func measure(iters int, syndromes [][]bool, decode func(syn []bool) error) (Row, error) {
	for _, syn := range syndromes {
		if err := decode(syn); err != nil {
			return Row{}, err
		}
	}
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := decode(syndromes[i%len(syndromes)]); err != nil {
			return Row{}, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	return Row{
		Iters:           iters,
		NsPerDecode:     float64(elapsed.Nanoseconds()) / float64(iters),
		AllocsPerDecode: float64(ms1.Mallocs-ms0.Mallocs) / float64(iters),
		BytesPerDecode:  float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(iters),
	}, nil
}
