// Memory: hold a logical qubit alive with the full AQEC stack — the
// §VII lifetime experiment. For each code distance we run thousands of
// noisy syndrome cycles with the online SFQ decoder, and report the
// logical error rate alongside the decoder's real-time behaviour.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/core"
)

func main() {
	const (
		p      = 0.02 // physical dephasing rate, below the ~5% threshold
		cycles = 20000
	)
	fmt.Printf("logical memory under %.0f%% dephasing, %d syndrome cycles per distance\n\n", p*100, cycles)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "d\tlogical errors\tPL\tdecode mean (ns)\tdecode max (ns)\tonline?")
	for _, d := range []int{3, 5, 7, 9} {
		sys, err := core.New(core.Config{
			Distance:      d,
			PhysicalError: p,
			Seed:          42,
		})
		if err != nil {
			log.Fatal(err)
		}
		rep, err := sys.RunLifetime(cycles)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "%d\t%d\t%.5f\t%.2f\t%.2f\t%v\n",
			d, rep.LogicalErrors, rep.PL, rep.TimeNs.Mean, rep.TimeNs.Max, rep.CycleBudgetOK)
	}
	w.Flush()
	fmt.Println("\nbelow threshold, PL falls as the distance grows — and every decode")
	fmt.Println("finishes far inside the 400 ns syndrome cycle, so no backlog ever forms.")
}
