// Planner: the Fig. 1 story as a design tool. Given a machine size and
// physical error rate, compare the raw NISQ volume against every AQEC
// operating point, pick the SQV-maximizing code distance, and check that
// the decoder hardware fits a dilution refrigerator's power budget.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/sfqchip"
	"repro/internal/sqv"
)

func main() {
	qubits := flag.Int("qubits", 1024, "physical qubits on the device")
	p := flag.Float64("p", 1e-5, "physical error rate")
	budget := flag.Float64("budget", 0.1, "cryostat power budget for the decoder (W)")
	flag.Parse()

	m := sqv.Machine{PhysicalQubits: *qubits, ErrorRate: *p}
	fit := sqv.NISQPlusFit()

	fmt.Printf("machine: %d qubits at p=%g\n", *qubits, *p)
	fmt.Printf("raw SQV (no correction): %.3g\n\n", m.RawSQV())

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "d\tlogical\tPL\tSQV\tboost\tdecoder area\tdecoder power")
	for _, d := range []int{3, 5, 7, 9} {
		if *qubits/sqv.QubitsPerLogical(d) < 1 {
			continue
		}
		plan, err := m.PlanAt(fit, d)
		if err != nil {
			log.Fatal(err)
		}
		area, power, _ := sfqchip.DecoderFootprint(d)
		fmt.Fprintf(w, "%d\t%d\t%.2g\t%.3g\t%.0f\t%.1f mm²/qubit\t%.3f mW/qubit\n",
			d, plan.LogicalQubits, plan.LogicalError, plan.SQV, plan.BoostVsTarget, area, power)
	}
	w.Flush()

	best, err := m.Best(fit)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrecommended: distance %d → %d logical qubits, SQV %.3g (%.0f× the NISQ target)\n",
		best.Distance, best.LogicalQubits, best.SQV, best.BoostVsTarget)

	side := sfqchip.MeshSideWithinBudget(*budget)
	perLogical := sqv.QubitsPerLogical(best.Distance)
	supported := side * side / perLogical
	fmt.Printf("a %.2f W budget cools a %d×%d module mesh — decoder coverage for %d such logical qubits\n",
		*budget, side, side, supported)
	if supported < best.LogicalQubits {
		fmt.Println("warning: the power budget, not the qubit count, limits this plan")
	}
}
