// Watch: a frame-by-frame view of the SFQ decoder mesh resolving a
// syndrome — grow wavefronts (*), the request/grant handshake (r, G),
// pair signals (P) tracing out the correction chain (#), and boundary
// modules (=) answering at the code edges. This is Fig. 7 animated.
package main

import (
	"fmt"
	"log"

	"repro/internal/lattice"
	"repro/internal/sfq"
)

func main() {
	lat := lattice.MustNew(5)
	graph := lat.MatchingGraph(lattice.ZErrors)
	mesh := sfq.New(graph, sfq.Final)

	// Three hot syndromes: a mutual pair plus one near the boundary.
	syndrome := make([]bool, graph.NumChecks())
	for _, site := range []lattice.Site{
		{Row: 2, Col: 3},
		{Row: 2, Col: 7},
		{Row: 6, Col: 1},
	} {
		i, ok := graph.CheckIndex(site)
		if !ok {
			log.Fatalf("%v is not a check site", site)
		}
		syndrome[i] = true
	}

	mesh.SetTracer(func(cycle int, frame string) {
		fmt.Printf("— cycle %d —\n%s\n", cycle, frame)
	})
	correction, stats, err := mesh.DecodeWithStats(syndrome)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("done: chain %v in %d cycles (%.2f ns), %d pairings (%d via boundary)\n",
		correction.Support(), stats.Cycles, stats.TimeNs(), stats.Pairings, stats.BoundaryPairings)
}
