// Adder: the §III motivation end to end. Build the Cuccaro and
// Takahashi ripple-carry adders of Table I, verify they really add on
// the classical reversible simulator, then stream their Clifford+T
// decompositions through the backlog model with an offline 800 ns
// decoder versus this repository's online SFQ decoder.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/qprog"
)

func main() {
	// Build and sanity-check the adders: 12 + 30 with carry-in.
	cuccaro, err := qprog.Cuccaro(8)
	if err != nil {
		log.Fatal(err)
	}
	takahashi, err := qprog.Takahashi(8)
	if err != nil {
		log.Fatal(err)
	}
	for _, ad := range []qprog.Adder{cuccaro, takahashi} {
		s := qprog.NewBitState(ad.Circuit.Qubits)
		s.SetUint(ad.A, 12)
		s.SetUint(ad.B, 30)
		s[ad.Cin] = true
		if err := ad.Circuit.RunClassical(s); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: 12 + 30 + 1 = %d (carry %v, a restored: %v)\n",
			ad.Circuit.Name, s.Uint(ad.B), s[ad.Z], s.Uint(ad.A) == 12)
	}

	// A NISQ+ system provides the online decoder timing.
	sys, err := core.New(core.Config{Distance: 9, PhysicalError: 0.01, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sys.RunLifetime(2000); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nexecution-time comparison (offline decoder at 800 ns/round, Fig. 6 regime):")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "program\tT gates\tonline wall\toffline wall\toffline slowdown")
	for _, ad := range []qprog.Adder{cuccaro, takahashi} {
		dec := ad.Circuit.Decompose()
		online, offline, err := sys.ExecutionTrace(dec, 800)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "%s\t%d\t%.2f ms\t%.3g ms\t%.3g×\n",
			dec.Name, online.TGateCount,
			online.WallNs/1e6, offline.WallNs/1e6, offline.Slowdown())
	}
	w.Flush()
	fmt.Println("\nthe offline decoder's backlog compounds at every T gate — the")
	fmt.Println("exponential overhead the SFQ decoder exists to eliminate.")
}
