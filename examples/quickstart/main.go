// Quickstart: build a distance-5 surface code, inject a couple of phase
// flips, and watch the SFQ decoder mesh pair the hot syndromes online —
// the Fig. 7 walkthrough in a dozen lines of API.
package main

import (
	"fmt"
	"log"

	"repro/internal/decoder"
	"repro/internal/lattice"
	"repro/internal/pauli"
	"repro/internal/sfq"
)

func main() {
	// A distance-5 planar surface code: 81 physical qubits.
	lat := lattice.MustNew(5)
	graph := lat.MatchingGraph(lattice.ZErrors)
	fmt.Printf("distance-%d lattice: %d qubits (%d data, %d ancilla)\n",
		lat.Distance(), lat.NumQubits(), lat.NumData(), lat.NumAncillas())

	// Two Z errors on neighbouring data qubits light up a pair of
	// X-stabilizer checks plus one near the boundary.
	errs := pauli.NewFrame(lat.NumQubits())
	errs.Set(lat.QubitIndex(lattice.Site{Row: 2, Col: 4}), pauli.Z)
	errs.Set(lat.QubitIndex(lattice.Site{Row: 6, Col: 0}), pauli.Z)
	syndrome := graph.Syndrome(errs)
	fmt.Printf("hot syndromes at checks %v\n", lattice.HotChecks(syndrome))

	// The decoder: one SFQ module per qubit, final design (resets,
	// boundaries, equidistant handshake).
	mesh := sfq.New(graph, sfq.Final)
	correction, stats, err := mesh.DecodeWithStats(syndrome)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("correction chain on data qubits %v\n", correction.Support())
	fmt.Printf("solved in %d mesh cycles = %.2f ns (syndrome cycle is 400 ns)\n",
		stats.Cycles, stats.TimeNs())

	// The fundamental decoder invariant: the correction reproduces the
	// observed syndrome exactly, so error ⊕ correction is trivial.
	if err := decoder.Validate(graph, syndrome, correction); err != nil {
		log.Fatalf("correction does not clear the syndrome: %v", err)
	}
	residual := errs.Clone()
	residual.ApplyFrame(correction.Frame(lat, lattice.ZErrors))
	fmt.Printf("residual error weight after correction: %d (stabilizer-trivial)\n", residual.Weight())
}
