package decodepool

import (
	"sync"
	"testing"

	"repro/internal/lattice"
)

// The cached tables must agree entry-for-entry with the graph's own
// per-call geometry methods.
func TestGeometryMatchesGraph(t *testing.T) {
	for _, d := range []int{3, 5, 7} {
		l := lattice.MustNew(d)
		for _, e := range []lattice.ErrorType{lattice.ZErrors, lattice.XErrors} {
			g := l.MatchingGraph(e)
			geo := For(g)
			if geo.M != g.NumChecks() || geo.D != d || geo.E != e {
				t.Fatalf("d=%d %v: geometry header %+v", d, e, geo)
			}
			for i := 0; i < geo.M; i++ {
				if geo.BoundaryDist(i) != g.BoundaryDist(i) {
					t.Fatalf("d=%d %v: BoundaryDist(%d) = %d, want %d",
						d, e, i, geo.BoundaryDist(i), g.BoundaryDist(i))
				}
				if got, want := geo.AppendBoundaryPathQubits(nil, i), g.BoundaryPathQubits(i); !equalInts(got, want) {
					t.Fatalf("d=%d %v: boundary path of %d = %v, want %v", d, e, i, got, want)
				}
				for j := 0; j < geo.M; j++ {
					if geo.Dist(i, j) != g.Dist(i, j) {
						t.Fatalf("d=%d %v: Dist(%d,%d) = %d, want %d",
							d, e, i, j, geo.Dist(i, j), g.Dist(i, j))
					}
					if got, want := geo.AppendPathQubits(nil, i, j), g.PathQubits(i, j); !equalInts(got, want) {
						t.Fatalf("d=%d %v: path %d->%d = %v, want %v", d, e, i, j, got, want)
					}
				}
			}
			// Union-find view mirrors the legacy per-call derivation.
			edges := g.DecodingEdges()
			if len(edges) != len(geo.Edges) {
				t.Fatalf("d=%d %v: %d edges, want %d", d, e, len(geo.Edges), len(edges))
			}
			nv := geo.M
			for k, ed := range edges {
				if ed != geo.Edges[k] {
					t.Fatalf("d=%d %v: edge %d = %+v, want %+v", d, e, k, geo.Edges[k], ed)
				}
				a, b := ed.C1, ed.C2
				if a == lattice.Boundary {
					a = nv
					nv++
				}
				if b == lattice.Boundary {
					b = nv
					nv++
				}
				if geo.Endpoints[k] != [2]int32{int32(a), int32(b)} {
					t.Fatalf("d=%d %v: endpoints %d = %v, want (%d,%d)", d, e, k, geo.Endpoints[k], a, b)
				}
			}
			if nv != geo.NV {
				t.Fatalf("d=%d %v: NV = %d, want %d", d, e, geo.NV, nv)
			}
		}
	}
}

// Distinct graph instances of the same (distance, error type) must share
// one cached table; distinct parameters must not.
func TestGeometryCacheSharing(t *testing.T) {
	g1 := lattice.MustNew(5).MatchingGraph(lattice.ZErrors)
	g2 := lattice.MustNew(5).MatchingGraph(lattice.ZErrors)
	if For(g1) != For(g2) {
		t.Error("same (d, etype) from different lattices did not share a geometry")
	}
	if For(g1) == For(lattice.MustNew(5).MatchingGraph(lattice.XErrors)) {
		t.Error("Z and X graphs share a geometry")
	}
	if For(g1) == For(lattice.MustNew(7).MatchingGraph(lattice.ZErrors)) {
		t.Error("d=5 and d=7 share a geometry")
	}
}

// Concurrent warm-up: many goroutines racing to build the same (and
// different) geometries must all observe one shared table per key. Run
// under -race in ci.sh, this is the cache's data-race regression test.
func TestGeometryConcurrentWarmup(t *testing.T) {
	distances := []int{3, 5, 7, 9}
	const workersPerKey = 8
	var wg sync.WaitGroup
	got := make([][]*Geometry, len(distances)*2)
	for ki := range got {
		got[ki] = make([]*Geometry, workersPerKey)
	}
	for ki, d := range distances {
		for _, e := range []lattice.ErrorType{lattice.ZErrors, lattice.XErrors} {
			slot := 2*ki + int(e)
			for w := 0; w < workersPerKey; w++ {
				wg.Add(1)
				go func(d, slot, w int, e lattice.ErrorType) {
					defer wg.Done()
					g := lattice.MustNew(d).MatchingGraph(e)
					geo := For(g)
					// Exercise shared read-only access while others warm up.
					for i := 0; i < geo.M; i++ {
						_ = geo.BoundaryDist(i)
					}
					got[slot][w] = geo
				}(d, slot, w, e)
			}
		}
	}
	wg.Wait()
	for slot, geos := range got {
		for w, geo := range geos {
			if geo == nil {
				t.Fatalf("slot %d worker %d: nil geometry", slot, w)
			}
			if geo != geos[0] {
				t.Errorf("slot %d: workers observed distinct geometries", slot)
			}
		}
	}
}

// Scratch state is built once per key and then reused.
func TestScratchState(t *testing.T) {
	s := NewScratch()
	calls := 0
	mk := func() any { calls++; return &calls }
	a := s.State("k", mk)
	b := s.State("k", mk)
	if a != b || calls != 1 {
		t.Fatalf("State built %d times, pointers %p vs %p", calls, a, b)
	}
	if s.State("other", mk) == nil || calls != 2 {
		t.Fatalf("distinct key did not build new state (calls=%d)", calls)
	}
}

// HotChecks reuses its buffer and reports exactly the hot indices.
func TestScratchHotChecks(t *testing.T) {
	s := NewScratch()
	syn := []bool{false, true, true, false, true}
	hot := s.HotChecks(syn)
	if !equalInts(hot, []int{1, 2, 4}) {
		t.Fatalf("hot = %v", hot)
	}
	hot2 := s.HotChecks([]bool{true})
	if !equalInts(hot2, []int{0}) {
		t.Fatalf("hot2 = %v", hot2)
	}
	if len(syn) > 0 && cap(hot2) < 3 {
		t.Error("hot buffer was not reused")
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
