// Package decodepool implements the zero-allocation decode hot path:
// memoized matching-graph geometry shared read-only across workers, and
// per-worker scratch arenas that decoders reuse across calls.
//
// The paper's central constraint is that decoding must finish inside one
// syndrome round (§III), so per-decode latency — not just logical
// accuracy — is a product of this repository. Profiling the Monte-Carlo
// sweeps shows most decode wall-clock goes to two avoidable costs:
// re-deriving matching-graph geometry (distances, error-chain paths,
// decoding edges) on every call, and allocating fresh slices for hot
// lists, matcher state and correction buffers. This package removes
// both:
//
//   - Geometry tables (all-pairs Dist, BoundaryDist, flattened path-qubit
//     chains and the union-find decoding-edge list) are computed once per
//     (distance, error type) and served from a process-wide cache. The
//     tables are immutable after construction, so any number of worker
//     goroutines share them without synchronization beyond the cache
//     lookup.
//
//   - Scratch owns every mutable buffer a decoder needs. One Scratch
//     belongs to one worker (a Monte-Carlo shard, one simulator); it is
//     explicitly owned — never pooled through sync.Pool — so buffers
//     stay warm in cache and the steady state performs zero heap
//     allocations per decode.
//
// Decoders opt in by implementing IntoDecoder; Decode dispatches to the
// pooled path when available and falls back to the allocating
// decoder.Decoder path otherwise. Both paths are bit-identical — the
// differential conformance suite in internal/decoder asserts it.
//
// Scratch ownership rules: the Correction returned by DecodeInto aliases
// the Scratch's correction buffer and is valid only until the next
// DecodeInto call with the same Scratch. Callers that need the qubit
// list beyond that must copy it.
package decodepool

import (
	"sync"
	"time"

	"repro/internal/decoder"
	"repro/internal/lattice"
	"repro/internal/obs"
)

// IntoDecoder is the zero-allocation extension of decoder.Decoder: a
// decoder that can run its hot path entirely inside caller-owned
// scratch. Implementations must return exactly the Correction the plain
// Decode would (same qubits, same order), with Qubits aliasing the
// scratch's buffer.
type IntoDecoder interface {
	decoder.Decoder
	DecodeInto(g *lattice.Graph, syn []bool, s *Scratch) (decoder.Correction, error)
}

// Decode routes through the pooled zero-allocation path when dec
// implements IntoDecoder and s is non-nil, and falls back to the
// allocating Decode otherwise. The returned Correction follows the
// ownership rules of whichever path ran.
//
// When the scratch is instrumented (Scratch.Instrument), Decode samples
// wall-clock latency into the scratch's histogram. Sampling — rather
// than timing every call — matters at this layer: the greedy d = 5
// pooled decode runs in ~170 ns, so two clock reads per call would cost
// ~35% by themselves. A 1-in-every sample keeps the overhead inside the
// repository's ≤ 5% telemetry budget while still resolving the latency
// distribution the backlog model consumes.
func Decode(dec decoder.Decoder, g *lattice.Graph, syn []bool, s *Scratch) (decoder.Correction, error) {
	if id, ok := dec.(IntoDecoder); ok && s != nil {
		if s.obsHist != nil {
			tick := s.obsTick
			s.obsTick++
			if tick&s.obsMask == 0 {
				// One timed decode stands in for its whole sample block:
				// the counter advances by the block size so the decode
				// count stays exact to within one block.
				s.obsCount.Add(int64(s.obsMask) + 1)
				start := time.Now()
				c, err := id.DecodeInto(g, syn, s)
				s.obsHist.Observe(uint64(time.Since(start)))
				return c, err
			}
		}
		return id.DecodeInto(g, syn, s)
	}
	return dec.Decode(g, syn)
}

// BatchDecoder is the batched extension of the pooled path: a decoder
// that advances several independent syndromes per call (the SWAR mesh
// kernel decodes BatchWidth of them in the same machine words).
// DecodeBatchInto must return one Correction per syndrome, in order,
// each bit-identical to what a one-at-a-time DecodeInto would produce;
// the Corrections and the returned slice alias the scratch's batch
// buffers and are valid until the next decode through the same scratch.
type BatchDecoder interface {
	decoder.Decoder
	// BatchWidth reports how many syndromes one call advances
	// concurrently (callers size their batches to a multiple of it).
	BatchWidth() int
	DecodeBatchInto(g *lattice.Graph, syns [][]bool, s *Scratch) ([]decoder.Correction, error)
}

// DecodeBatch decodes the syndromes through dec's native batch path
// when it implements BatchDecoder (and s is non-nil), and otherwise
// loops Decode per syndrome, copying each result into the scratch's
// shared batch buffer — a per-call Decode reuses its own buffers, so
// earlier corrections must be captured before the next call clobbers
// them. Both paths follow the BatchDecoder ownership rules.
func DecodeBatch(dec decoder.Decoder, g *lattice.Graph, syns [][]bool, s *Scratch) ([]decoder.Correction, error) {
	if bd, ok := dec.(BatchDecoder); ok && s != nil {
		return bd.DecodeBatchInto(g, syns, s)
	}
	var q []int
	var spans [][2]int32
	if s != nil {
		q = s.TakeBatchQubits()
		spans = s.BatchSpans(len(syns))
	} else {
		spans = make([][2]int32, len(syns))
	}
	for i, syn := range syns {
		c, err := Decode(dec, g, syn, s)
		if err != nil {
			if s != nil {
				s.PutBatchQubits(q)
			}
			return nil, err
		}
		start := int32(len(q))
		q = append(q, c.Qubits...)
		spans[i] = [2]int32{start, int32(len(q))}
	}
	var corr []decoder.Correction
	if s != nil {
		s.PutBatchQubits(q)
		corr = s.BatchCorrections(len(syns))
	} else {
		corr = make([]decoder.Correction, len(syns))
	}
	for i, sp := range spans {
		corr[i] = decoder.Correction{Qubits: q[sp[0]:sp[1]:sp[1]]}
	}
	return corr, nil
}

// Geometry holds the immutable decode tables of one matching graph:
// all-pairs check distances, boundary distances, the minimum-length
// error chains realizing them (flattened), and the union-find decoding
// edge list with boundary pendant vertices materialized. All methods
// are safe for concurrent use.
type Geometry struct {
	D int               // code distance
	E lattice.ErrorType // error type this graph decodes
	M int               // number of checks

	// Union-find view: NV vertices (checks 0..M-1 then boundary
	// pendants), Edges in lattice.Graph.DecodingEdges order, and
	// Endpoints with the same boundary-vertex numbering the legacy
	// decoder derives on every call.
	NV        int
	Edges     []lattice.Edge
	Endpoints [][2]int32

	dist      []int32 // dist[i*M+j]
	bdist     []int32 // bdist[i]
	pathOff   []int32 // prefix offsets into pathData, i*M+j
	pathData  []int32
	bpathOff  []int32 // prefix offsets into bpathData
	bpathData []int32
}

// Dist returns the matching-graph distance between checks i and j.
func (geo *Geometry) Dist(i, j int) int { return int(geo.dist[i*geo.M+j]) }

// BoundaryDist returns check i's distance to its nearest code boundary.
func (geo *Geometry) BoundaryDist(i int) int { return int(geo.bdist[i]) }

// AppendPathQubits appends the data-qubit chain connecting checks i and
// j (identical to lattice.Graph.PathQubits) to dst and returns it.
func (geo *Geometry) AppendPathQubits(dst []int, i, j int) []int {
	k := int32(i)*int32(geo.M) + int32(j)
	for _, q := range geo.pathData[geo.pathOff[k]:geo.pathOff[k+1]] {
		dst = append(dst, int(q))
	}
	return dst
}

// AppendBoundaryPathQubits appends check i's shortest boundary chain
// (identical to lattice.Graph.BoundaryPathQubits) to dst and returns it.
func (geo *Geometry) AppendBoundaryPathQubits(dst []int, i int) []int {
	for _, q := range geo.bpathData[geo.bpathOff[i]:geo.bpathOff[i+1]] {
		dst = append(dst, int(q))
	}
	return dst
}

// geoKey identifies one geometry table. Graphs of equal distance and
// error type are structurally identical (checks index identically), so
// the cache is keyed by parameters, not by graph pointer — every worker
// rebuilding its own lattice still shares one table.
type geoKey struct {
	d int
	e lattice.ErrorType
}

var (
	geoMu    sync.RWMutex
	geoCache = map[geoKey]*Geometry{}
)

// For returns the memoized geometry of g, building it on first use.
// Concurrent warm-up is safe: racing builders construct private tables
// and the first one stored wins, so callers always observe one shared,
// fully built Geometry. The fast path takes a read lock and performs no
// allocation.
func For(g *lattice.Graph) *Geometry {
	k := geoKey{d: g.Lattice().Distance(), e: g.ErrorType()}
	geoMu.RLock()
	geo := geoCache[k]
	geoMu.RUnlock()
	if geo != nil {
		return geo
	}
	built := build(g)
	geoMu.Lock()
	if exist, ok := geoCache[k]; ok {
		built = exist
	} else {
		geoCache[k] = built
	}
	geoMu.Unlock()
	return built
}

// build derives every table from the graph's own geometry methods, so
// the cached values are definitionally identical to what the legacy
// per-call path computes.
func build(g *lattice.Graph) *Geometry {
	m := g.NumChecks()
	geo := &Geometry{
		D: g.Lattice().Distance(),
		E: g.ErrorType(),
		M: m,

		dist:     make([]int32, m*m),
		bdist:    make([]int32, m),
		pathOff:  make([]int32, m*m+1),
		bpathOff: make([]int32, m+1),
	}
	for i := 0; i < m; i++ {
		geo.bdist[i] = int32(g.BoundaryDist(i))
		for j := 0; j < m; j++ {
			geo.dist[i*m+j] = int32(g.Dist(i, j))
			for _, q := range g.PathQubits(i, j) {
				geo.pathData = append(geo.pathData, int32(q))
			}
			geo.pathOff[i*m+j+1] = int32(len(geo.pathData))
		}
		for _, q := range g.BoundaryPathQubits(i) {
			geo.bpathData = append(geo.bpathData, int32(q))
		}
		geo.bpathOff[i+1] = int32(len(geo.bpathData))
	}
	// Union-find view, with the same boundary-vertex numbering the
	// legacy decoder assigns (one fresh vertex per boundary endpoint, in
	// edge order).
	geo.Edges = g.DecodingEdges()
	geo.Endpoints = make([][2]int32, len(geo.Edges))
	nv := m
	for k, e := range geo.Edges {
		a, b := e.C1, e.C2
		if a == lattice.Boundary {
			a = nv
			nv++
		}
		if b == lattice.Boundary {
			b = nv
			nv++
		}
		geo.Endpoints[k] = [2]int32{int32(a), int32(b)}
	}
	geo.NV = nv
	return geo
}

// Scratch is one worker's reusable decode state. It is not safe for
// concurrent use: give each goroutine (each Monte-Carlo shard, each
// simulator) its own. The zero value is NOT ready; use NewScratch.
//
// Buffers grow to the high-water mark of the instances decoded through
// them and are then reused, so steady-state decoding allocates nothing.
type Scratch struct {
	hot    []int // hot-check list of the current call
	qubits []int // correction output buffer

	// Batch-decode buffers (see BatchDecoder): one shared qubit arena
	// all corrections of a batch append into, the per-syndrome
	// [start,end) spans over it, and the Correction views handed back.
	batchQ     []int
	batchSpans [][2]int32
	batchCorr  []decoder.Correction

	states map[string]any // per-decoder private state, keyed by decoder

	// Telemetry (see Instrument): nil obsHist means uninstrumented.
	obsHist  *obs.Histogram
	obsCount *obs.Counter
	obsMask  uint32 // sample every obsMask+1 decodes (power of two - 1)
	obsTick  uint32
}

// NewScratch returns an empty scratch arena.
func NewScratch() *Scratch {
	return &Scratch{states: make(map[string]any)}
}

// Instrument attaches latency telemetry to the scratch: Decode calls
// through it sample wall-clock time into hist (1 in every calls) and
// advance count by the sample-block size, keeping the decode count
// exact to within one block. every is rounded up to a power of two;
// every ≤ 0 selects the default of 16, and every = 1 times every call
// (tests use that to pin down exact counts). Passing a nil hist
// removes the instrumentation. The scratch's single-owner contract is
// unchanged — hist and count may be shared across scratches, the
// sampling state is private.
func (s *Scratch) Instrument(hist *obs.Histogram, count *obs.Counter, every int) {
	if hist == nil {
		s.obsHist, s.obsCount, s.obsMask, s.obsTick = nil, nil, 0, 0
		return
	}
	if every <= 0 {
		every = 16
	}
	mask := uint32(1)
	for int(mask) < every {
		mask <<= 1
	}
	s.obsHist = hist
	s.obsCount = count
	if s.obsCount == nil {
		s.obsCount = new(obs.Counter)
	}
	s.obsMask = mask - 1
	s.obsTick = 0
}

// HotChecks fills the scratch's hot-list buffer with the indices of the
// true entries of syn and returns it. The slice is valid until the next
// HotChecks call on this scratch.
func (s *Scratch) HotChecks(syn []bool) []int {
	hot := s.hot[:0]
	for i, h := range syn {
		if h {
			hot = append(hot, i)
		}
	}
	s.hot = hot
	return hot
}

// TakeQubits hands out the correction buffer, emptied. The caller
// appends correction qubits and passes the result to PutQubits.
func (s *Scratch) TakeQubits() []int { return s.qubits[:0] }

// PutQubits records the (possibly re-grown) correction buffer and wraps
// it in a Correction. The Correction aliases the scratch and is valid
// until the next decode through it.
func (s *Scratch) PutQubits(q []int) decoder.Correction {
	s.qubits = q
	return decoder.Correction{Qubits: q}
}

// TakeBatchQubits hands out the batch correction arena, emptied. Batch
// decoders append every lane's correction qubits to it and pass the
// result to PutBatchQubits.
func (s *Scratch) TakeBatchQubits() []int { return s.batchQ[:0] }

// PutBatchQubits records the (possibly re-grown) batch arena so the
// next batch reuses its capacity.
func (s *Scratch) PutBatchQubits(q []int) { s.batchQ = q }

// BatchSpans returns an n-element span buffer ([start,end) offsets into
// the batch arena, one per syndrome), reusing capacity. Valid until the
// next BatchSpans call on this scratch.
func (s *Scratch) BatchSpans(n int) [][2]int32 {
	if cap(s.batchSpans) < n {
		s.batchSpans = make([][2]int32, n)
	}
	s.batchSpans = s.batchSpans[:n]
	return s.batchSpans
}

// BatchCorrections returns an n-element Correction buffer, reusing
// capacity. Valid until the next BatchCorrections call on this scratch.
func (s *Scratch) BatchCorrections(n int) []decoder.Correction {
	if cap(s.batchCorr) < n {
		s.batchCorr = make([]decoder.Correction, n)
	}
	s.batchCorr = s.batchCorr[:n]
	return s.batchCorr
}

// State returns the per-decoder private state stored under key,
// building it with mk on first use. Decoder packages use it to keep
// typed, reusable internals (matcher arrays, union-find structures,
// sort buffers) inside a caller-owned Scratch without this package
// depending on them.
func (s *Scratch) State(key string, mk func() any) any {
	st, ok := s.states[key]
	if !ok {
		st = mk()
		s.states[key] = st
	}
	return st
}
