//go:build !race

package decodepool

// RaceEnabled reports whether the race detector is compiled in. The
// allocation-regression tests skip under -race because the runtime's
// instrumentation inflates allocation counts.
const RaceEnabled = false
