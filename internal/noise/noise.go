// Package noise implements the stochastic Pauli error channels the NISQ+
// evaluation uses (§VII "Error Models"): the depolarizing channel, where
// X, Y and Z errors each occur independently with probability p/3 on
// every qubit, and the pure dephasing channel, where only Z errors occur
// with probability p. A bit-flip channel is provided for symmetry, and a
// measurement-flip channel supports phenomenological-noise extensions.
//
// All sampling is driven by an explicit, seedable random source so that
// every Monte-Carlo experiment in this repository is reproducible.
package noise

import (
	"fmt"
	"math/rand"

	"repro/internal/pauli"
)

// Channel samples independent, identically distributed Pauli errors.
type Channel interface {
	// Sample composes one round of channel errors onto the qubits
	// listed in targets within the frame f.
	Sample(rng *rand.Rand, f *pauli.Frame, targets []int)
	// P returns the channel's physical error-rate parameter.
	P() float64
	// String names the channel with its parameter.
	String() string
}

// Depolarizing is the depolarizing channel: each target independently
// suffers X, Y or Z with probability p/3 each.
type Depolarizing struct{ p float64 }

// NewDepolarizing constructs a depolarizing channel. p must lie in [0,1].
func NewDepolarizing(p float64) (Depolarizing, error) {
	if !(p >= 0 && p <= 1) {
		return Depolarizing{}, fmt.Errorf("noise: depolarizing p=%v out of [0,1]", p)
	}
	return Depolarizing{p: p}, nil
}

// Sample implements Channel.
func (c Depolarizing) Sample(rng *rand.Rand, f *pauli.Frame, targets []int) {
	for _, q := range targets {
		r := rng.Float64()
		switch {
		case r < c.p/3:
			f.Apply(q, pauli.X)
		case r < 2*c.p/3:
			f.Apply(q, pauli.Y)
		case r < c.p:
			f.Apply(q, pauli.Z)
		}
	}
}

// P implements Channel.
func (c Depolarizing) P() float64 { return c.p }

// String implements Channel.
func (c Depolarizing) String() string { return fmt.Sprintf("depolarizing(p=%g)", c.p) }

// Dephasing is the pure dephasing channel: each target independently
// suffers a Z error with probability p. This is the headline channel of
// the paper's Fig. 10 evaluation.
type Dephasing struct{ p float64 }

// NewDephasing constructs a pure dephasing channel. p must lie in [0,1].
func NewDephasing(p float64) (Dephasing, error) {
	if !(p >= 0 && p <= 1) {
		return Dephasing{}, fmt.Errorf("noise: dephasing p=%v out of [0,1]", p)
	}
	return Dephasing{p: p}, nil
}

// Sample implements Channel.
func (c Dephasing) Sample(rng *rand.Rand, f *pauli.Frame, targets []int) {
	for _, q := range targets {
		if rng.Float64() < c.p {
			f.Apply(q, pauli.Z)
		}
	}
}

// P implements Channel.
func (c Dephasing) P() float64 { return c.p }

// String implements Channel.
func (c Dephasing) String() string { return fmt.Sprintf("dephasing(p=%g)", c.p) }

// BitFlip is the bit-flip channel: each target independently suffers an
// X error with probability p. It is the X-basis mirror of Dephasing.
type BitFlip struct{ p float64 }

// NewBitFlip constructs a bit-flip channel. p must lie in [0,1].
func NewBitFlip(p float64) (BitFlip, error) {
	if !(p >= 0 && p <= 1) {
		return BitFlip{}, fmt.Errorf("noise: bitflip p=%v out of [0,1]", p)
	}
	return BitFlip{p: p}, nil
}

// Sample implements Channel.
func (c BitFlip) Sample(rng *rand.Rand, f *pauli.Frame, targets []int) {
	for _, q := range targets {
		if rng.Float64() < c.p {
			f.Apply(q, pauli.X)
		}
	}
}

// P implements Channel.
func (c BitFlip) P() float64 { return c.p }

// String implements Channel.
func (c BitFlip) String() string { return fmt.Sprintf("bitflip(p=%g)", c.p) }

// MeasureFlip models classical measurement-readout noise: each syndrome
// bit flips independently with probability q. Used by the
// phenomenological extension of the lifetime simulator.
type MeasureFlip struct{ q float64 }

// NewMeasureFlip constructs a measurement-flip channel. q must lie in [0,1].
func NewMeasureFlip(q float64) (MeasureFlip, error) {
	if !(q >= 0 && q <= 1) {
		return MeasureFlip{}, fmt.Errorf("noise: measure-flip q=%v out of [0,1]", q)
	}
	return MeasureFlip{q: q}, nil
}

// Flip applies readout noise in place to a syndrome vector and returns it.
func (c MeasureFlip) Flip(rng *rand.Rand, syn []bool) []bool {
	for i := range syn {
		if rng.Float64() < c.q {
			syn[i] = !syn[i]
		}
	}
	return syn
}

// Q returns the readout flip probability.
func (c MeasureFlip) Q() float64 { return c.q }

// String names the channel.
func (c MeasureFlip) String() string { return fmt.Sprintf("measureflip(q=%g)", c.q) }

// NewRand returns a deterministic random source for the given seed.
// Centralizing construction keeps experiment harnesses uniform.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Erasure models the quantum erasure channel: each target is erased
// (its location known to the decoder) with probability pe, and an
// erased qubit is replaced by a maximally mixed state — equivalently it
// suffers the plane's Pauli error with probability 1/2. Erasure
// decoding (Delfosse & Zémor, the paper's reference [10]) exploits the
// known locations to decode in linear time.
type Erasure struct {
	pe float64
	op pauli.Op
}

// NewErasure constructs an erasure channel injecting the given Pauli on
// erased qubits. pe must lie in [0,1]; op must not be the identity.
func NewErasure(pe float64, op pauli.Op) (Erasure, error) {
	if !(pe >= 0 && pe <= 1) {
		return Erasure{}, fmt.Errorf("noise: erasure pe=%v out of [0,1]", pe)
	}
	if op == pauli.I {
		return Erasure{}, fmt.Errorf("noise: erasure needs a non-identity Pauli")
	}
	return Erasure{pe: pe, op: op}, nil
}

// SampleErasure draws the erased set and injects errors on it; the
// returned mask (indexed by position in targets) is the side channel
// the decoder receives.
func (c Erasure) SampleErasure(rng *rand.Rand, f *pauli.Frame, targets []int) []bool {
	erased := make([]bool, len(targets))
	for i, q := range targets {
		if rng.Float64() < c.pe {
			erased[i] = true
			if rng.Float64() < 0.5 {
				f.Apply(q, c.op)
			}
		}
	}
	return erased
}

// Pe returns the erasure probability.
func (c Erasure) Pe() float64 { return c.pe }

// String names the channel.
func (c Erasure) String() string { return fmt.Sprintf("erasure(pe=%g,%v)", c.pe, c.op) }
