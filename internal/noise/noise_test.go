package noise

import (
	"math"
	"testing"

	"repro/internal/pauli"
)

func TestConstructorValidation(t *testing.T) {
	for _, p := range []float64{-0.1, 1.1, math.NaN()} {
		if _, err := NewDepolarizing(p); err == nil {
			t.Errorf("NewDepolarizing(%v) accepted", p)
		}
		if _, err := NewDephasing(p); err == nil {
			t.Errorf("NewDephasing(%v) accepted", p)
		}
		if _, err := NewBitFlip(p); err == nil {
			t.Errorf("NewBitFlip(%v) accepted", p)
		}
		if _, err := NewMeasureFlip(p); err == nil {
			t.Errorf("NewMeasureFlip(%v) accepted", p)
		}
	}
}

func TestStrings(t *testing.T) {
	dep, _ := NewDepolarizing(0.01)
	dph, _ := NewDephasing(0.02)
	bf, _ := NewBitFlip(0.03)
	mf, _ := NewMeasureFlip(0.04)
	if dep.String() != "depolarizing(p=0.01)" || dep.P() != 0.01 {
		t.Error(dep.String())
	}
	if dph.String() != "dephasing(p=0.02)" || dph.P() != 0.02 {
		t.Error(dph.String())
	}
	if bf.String() != "bitflip(p=0.03)" || bf.P() != 0.03 {
		t.Error(bf.String())
	}
	if mf.String() != "measureflip(q=0.04)" || mf.Q() != 0.04 {
		t.Error(mf.String())
	}
}

// Statistical check: over many samples the empirical error rate matches p
// within 5 sigma, and the dephasing channel produces only Z errors.
func TestChannelStatistics(t *testing.T) {
	const n = 20000
	const p = 0.1
	targets := make([]int, n)
	for i := range targets {
		targets[i] = i
	}
	rng := NewRand(42)

	dph, _ := NewDephasing(p)
	f := pauli.NewFrame(n)
	dph.Sample(rng, f, targets)
	count := 0
	for i := 0; i < n; i++ {
		switch f.Get(i) {
		case pauli.Z:
			count++
		case pauli.I:
		default:
			t.Fatalf("dephasing produced %v", f.Get(i))
		}
	}
	sigma := math.Sqrt(n * p * (1 - p))
	if math.Abs(float64(count)-n*p) > 5*sigma {
		t.Errorf("dephasing rate %d/%d far from p=%v", count, n, p)
	}

	dep, _ := NewDepolarizing(p)
	f = pauli.NewFrame(n)
	dep.Sample(rng, f, targets)
	var cx, cy, cz int
	for i := 0; i < n; i++ {
		switch f.Get(i) {
		case pauli.X:
			cx++
		case pauli.Y:
			cy++
		case pauli.Z:
			cz++
		}
	}
	third := n * p / 3
	sigma3 := math.Sqrt(third * (1 - p/3))
	for name, c := range map[string]int{"X": cx, "Y": cy, "Z": cz} {
		if math.Abs(float64(c)-third) > 5*sigma3 {
			t.Errorf("depolarizing %s rate %d far from %v", name, c, third)
		}
	}

	bf, _ := NewBitFlip(p)
	f = pauli.NewFrame(n)
	bf.Sample(rng, f, targets)
	count = 0
	for i := 0; i < n; i++ {
		switch f.Get(i) {
		case pauli.X:
			count++
		case pauli.I:
		default:
			t.Fatalf("bitflip produced %v", f.Get(i))
		}
	}
	if math.Abs(float64(count)-n*p) > 5*sigma {
		t.Errorf("bitflip rate %d/%d far from p=%v", count, n, p)
	}
}

func TestZeroAndOneRates(t *testing.T) {
	const n = 100
	targets := make([]int, n)
	for i := range targets {
		targets[i] = i
	}
	rng := NewRand(1)
	zero, _ := NewDephasing(0)
	f := pauli.NewFrame(n)
	zero.Sample(rng, f, targets)
	if !f.IsIdentity() {
		t.Error("p=0 channel produced errors")
	}
	one, _ := NewDephasing(1)
	one.Sample(rng, f, targets)
	if f.Weight() != n {
		t.Errorf("p=1 channel produced %d errors, want %d", f.Weight(), n)
	}
}

func TestMeasureFlip(t *testing.T) {
	rng := NewRand(5)
	mf, _ := NewMeasureFlip(1)
	syn := []bool{true, false, true}
	mf.Flip(rng, syn)
	if syn[0] || !syn[1] || syn[2] {
		t.Errorf("q=1 flip wrong: %v", syn)
	}
	mf0, _ := NewMeasureFlip(0)
	mf0.Flip(rng, syn)
	if syn[0] || !syn[1] || syn[2] {
		t.Errorf("q=0 flip changed syndrome: %v", syn)
	}
}

func TestDeterminism(t *testing.T) {
	targets := []int{0, 1, 2, 3, 4, 5, 6, 7}
	dep, _ := NewDepolarizing(0.5)
	a := pauli.NewFrame(8)
	b := pauli.NewFrame(8)
	dep.Sample(NewRand(99), a, targets)
	dep.Sample(NewRand(99), b, targets)
	if !a.Equal(b) {
		t.Error("same seed produced different samples")
	}
}

// Channels restrict errors to the targets they are given.
func TestSampleRespectsTargets(t *testing.T) {
	rng := NewRand(3)
	dep, _ := NewDepolarizing(1)
	f := pauli.NewFrame(10)
	dep.Sample(rng, f, []int{2, 4})
	for i := 0; i < 10; i++ {
		if (i == 2 || i == 4) != (f.Get(i) != pauli.I) {
			t.Fatalf("error placement wrong at %d: %v", i, f)
		}
	}
}

var _ = []Channel{Depolarizing{}, Dephasing{}, BitFlip{}}

func TestErasureChannel(t *testing.T) {
	if _, err := NewErasure(1.5, pauli.Z); err == nil {
		t.Error("pe>1 accepted")
	}
	if _, err := NewErasure(0.5, pauli.I); err == nil {
		t.Error("identity op accepted")
	}
	ch, err := NewErasure(0.3, pauli.Z)
	if err != nil {
		t.Fatal(err)
	}
	if ch.Pe() != 0.3 || ch.String() != "erasure(pe=0.3,Z)" {
		t.Errorf("accessors wrong: %v %v", ch.Pe(), ch.String())
	}
	const n = 20000
	targets := make([]int, n)
	for i := range targets {
		targets[i] = i
	}
	rng := NewRand(8)
	f := pauli.NewFrame(n)
	mask := ch.SampleErasure(rng, f, targets)
	erased, errs := 0, 0
	for i := 0; i < n; i++ {
		if mask[i] {
			erased++
		}
		if f.Get(i) != pauli.I {
			errs++
			if !mask[i] {
				t.Fatal("error outside the erased set")
			}
		}
	}
	sigma := math.Sqrt(n * 0.3 * 0.7)
	if math.Abs(float64(erased)-n*0.3) > 5*sigma {
		t.Errorf("erasure rate %d/%d far from 0.3", erased, n)
	}
	// Half the erased qubits carry errors.
	sigmaE := math.Sqrt(float64(erased) * 0.25)
	if math.Abs(float64(errs)-float64(erased)/2) > 5*sigmaE {
		t.Errorf("%d errors on %d erased qubits, want ~half", errs, erased)
	}
	// pe=0 erases nothing.
	zero, _ := NewErasure(0, pauli.X)
	f2 := pauli.NewFrame(10)
	for _, e := range zero.SampleErasure(rng, f2, []int{0, 1, 2}) {
		if e {
			t.Error("pe=0 erased a qubit")
		}
	}
}
