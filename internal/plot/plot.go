// Package plot renders numeric series as ASCII charts for the cmd/
// harnesses — a dependency-free stand-in for the paper's figures.
// Log-log axes suit the threshold curves (Fig. 10) and the
// required-distance comparison (Fig. 11).
package plot

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Series is one named curve.
type Series struct {
	Name string
	X, Y []float64
}

// Chart collects series and axis configuration.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	LogX   bool
	LogY   bool
	Width  int // plot area width in columns (default 64)
	Height int // plot area height in rows (default 20)
	series []Series
}

// Add appends a series. Points with non-positive coordinates are
// dropped on logarithmic axes.
func (c *Chart) Add(s Series) { c.series = append(c.series, s) }

// markers cycles through per-series glyphs.
var markers = []byte{'o', 'x', '+', '#', '@', '%', '&', '~'}

// Render draws the chart.
func (c *Chart) Render() string {
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 64
	}
	if h <= 0 {
		h = 20
	}
	tx := func(v float64) (float64, bool) {
		if c.LogX {
			if v <= 0 {
				return 0, false
			}
			return math.Log10(v), true
		}
		return v, true
	}
	ty := func(v float64) (float64, bool) {
		if c.LogY {
			if v <= 0 {
				return 0, false
			}
			return math.Log10(v), true
		}
		return v, true
	}

	// Collect transformed points to find the bounds.
	type pt struct {
		x, y float64
		m    byte
	}
	var pts []pt
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for si, s := range c.series {
		m := markers[si%len(markers)]
		for i := range s.X {
			x, okx := tx(s.X[i])
			y, oky := ty(s.Y[i])
			if !okx || !oky {
				continue
			}
			pts = append(pts, pt{x, y, m})
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
	}
	var b strings.Builder
	if c.Title != "" {
		b.WriteString(c.Title + "\n")
	}
	if len(pts) == 0 {
		b.WriteString("(no plottable points)\n")
		return b.String()
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", w))
	}
	for _, p := range pts {
		col := int(math.Round((p.x - minX) / (maxX - minX) * float64(w-1)))
		row := h - 1 - int(math.Round((p.y-minY)/(maxY-minY)*float64(h-1)))
		if grid[row][col] == ' ' || grid[row][col] == p.m {
			grid[row][col] = p.m
		} else {
			grid[row][col] = '*' // collision of different series
		}
	}

	inv := func(v float64, log bool) float64 {
		if log {
			return math.Pow(10, v)
		}
		return v
	}
	for i, row := range grid {
		label := "          "
		switch i {
		case 0:
			label = fmt.Sprintf("%-10.3g", inv(maxY, c.LogY))
		case h - 1:
			label = fmt.Sprintf("%-10.3g", inv(minY, c.LogY))
		case h / 2:
			label = fmt.Sprintf("%-10.3g", inv((minY+maxY)/2, c.LogY))
		}
		b.WriteString(label + "|" + string(row) + "\n")
	}
	b.WriteString(strings.Repeat(" ", 10) + "+" + strings.Repeat("-", w) + "\n")
	left := fmt.Sprintf("%.3g", inv(minX, c.LogX))
	right := fmt.Sprintf("%.3g", inv(maxX, c.LogX))
	pad := w - len(left) - len(right)
	if pad < 1 {
		pad = 1
	}
	b.WriteString(strings.Repeat(" ", 11) + left + strings.Repeat(" ", pad) + right + "\n")
	if c.XLabel != "" || c.YLabel != "" {
		b.WriteString(fmt.Sprintf("%11sx: %s   y: %s\n", "", c.XLabel, c.YLabel))
	}
	// Legend, in insertion order.
	var legend []string
	for si, s := range c.series {
		legend = append(legend, fmt.Sprintf("%c %s", markers[si%len(markers)], s.Name))
	}
	sort.Strings(legend)
	b.WriteString(strings.Repeat(" ", 11) + strings.Join(legend, "   ") + "\n")
	return b.String()
}
