package plot

import (
	"strings"
	"testing"
)

func TestEmptyChart(t *testing.T) {
	c := &Chart{Title: "t"}
	out := c.Render()
	if !strings.Contains(out, "no plottable points") {
		t.Errorf("empty chart rendered: %q", out)
	}
}

func TestLinearChartContainsMarkers(t *testing.T) {
	c := &Chart{Width: 30, Height: 10}
	c.Add(Series{Name: "a", X: []float64{0, 1, 2}, Y: []float64{0, 1, 4}})
	c.Add(Series{Name: "b", X: []float64{0, 1, 2}, Y: []float64{4, 1, 0}})
	out := c.Render()
	if !strings.Contains(out, "o") || !strings.Contains(out, "x") {
		t.Errorf("markers missing:\n%s", out)
	}
	if !strings.Contains(out, "o a") || !strings.Contains(out, "x b") {
		t.Errorf("legend missing:\n%s", out)
	}
}

func TestLogAxesDropNonPositive(t *testing.T) {
	c := &Chart{LogX: true, LogY: true, Width: 20, Height: 8}
	c.Add(Series{Name: "s", X: []float64{0, 0.01, 0.1}, Y: []float64{-1, 0.001, 0.1}})
	out := c.Render()
	if strings.Contains(out, "no plottable points") {
		t.Fatalf("all points dropped:\n%s", out)
	}
	// Axis labels must be back-transformed to linear values.
	if !strings.Contains(out, "0.1") {
		t.Errorf("axis labels not inverse-transformed:\n%s", out)
	}
}

func TestSingleValueAxesDoNotPanic(t *testing.T) {
	c := &Chart{Width: 10, Height: 5}
	c.Add(Series{Name: "p", X: []float64{2}, Y: []float64{3}})
	out := c.Render()
	if out == "" {
		t.Error("nothing rendered")
	}
}

func TestCollisionMarker(t *testing.T) {
	c := &Chart{Width: 5, Height: 3}
	c.Add(Series{Name: "a", X: []float64{1}, Y: []float64{1}})
	c.Add(Series{Name: "b", X: []float64{1}, Y: []float64{1}})
	out := c.Render()
	if !strings.Contains(out, "*") {
		t.Errorf("collision not marked:\n%s", out)
	}
}

func TestGridDimensions(t *testing.T) {
	c := &Chart{Width: 40, Height: 12, Title: "T"}
	c.Add(Series{Name: "a", X: []float64{0, 1}, Y: []float64{0, 1}})
	lines := strings.Split(strings.TrimRight(c.Render(), "\n"), "\n")
	// title + 12 rows + axis + ticks + legend
	if len(lines) != 1+12+1+1+1 {
		t.Errorf("rendered %d lines", len(lines))
	}
	for _, l := range lines[1:13] {
		if len(l) != 10+1+40 {
			t.Errorf("row width %d: %q", len(l), l)
		}
	}
}
