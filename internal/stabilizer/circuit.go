// Package stabilizer implements the Fig. 3 stabilizer measurement
// circuits of the NISQ+ paper as gate-level Pauli-frame simulation.
//
// The X-stabilizer circuit Hadamards its ancilla, entangles it with its
// four data neighbours through CNOTs, Hadamards back and measures; the
// Z-stabilizer circuit runs data-controlled CNOTs onto the ancilla and
// measures. Pauli errors are propagated through the Clifford gates by
// conjugation, so a measurement outcome reports exactly the parity the
// stabilizer detects. The package is validated against the direct
// parity computation in internal/lattice and supports optional
// circuit-level noise injection after every gate.
package stabilizer

import (
	"fmt"
	"math/rand"

	"repro/internal/lattice"
	"repro/internal/noise"
	"repro/internal/pauli"
)

// OpKind enumerates circuit operations.
type OpKind uint8

const (
	// Hadamard exchanges the X and Z components of the frame.
	Hadamard OpKind = iota
	// CNOT propagates X control→target and Z target→control.
	CNOT
	// Measure reads the Z-basis outcome of a qubit (the parity of its
	// frame's X component relative to the ideal outcome).
	Measure
	// ResetOp returns a qubit's frame to the identity.
	ResetOp
)

// Op is one gate of a stabilizer circuit.
type Op struct {
	Kind    OpKind
	Q       int // the acted-on (or target) qubit
	Control int // CNOT control; ignored otherwise
}

// Circuit is an ordered list of operations measuring one stabilizer.
type Circuit struct {
	Ancilla int
	Ops     []Op
}

// XStabilizer builds the Fig. 3 "X" circuit for an ancilla and its data
// neighbours: H(a); CNOT(a→d) for each d; H(a); Measure(a).
func XStabilizer(ancilla int, data []int) Circuit {
	c := Circuit{Ancilla: ancilla}
	c.Ops = append(c.Ops, Op{Kind: ResetOp, Q: ancilla}, Op{Kind: Hadamard, Q: ancilla})
	for _, d := range data {
		c.Ops = append(c.Ops, Op{Kind: CNOT, Control: ancilla, Q: d})
	}
	c.Ops = append(c.Ops, Op{Kind: Hadamard, Q: ancilla}, Op{Kind: Measure, Q: ancilla})
	return c
}

// ZStabilizer builds the Fig. 3 "Z" circuit: CNOT(d→a) for each data
// neighbour d, then Measure(a).
func ZStabilizer(ancilla int, data []int) Circuit {
	c := Circuit{Ancilla: ancilla}
	c.Ops = append(c.Ops, Op{Kind: ResetOp, Q: ancilla})
	for _, d := range data {
		c.Ops = append(c.Ops, Op{Kind: CNOT, Control: d, Q: ancilla})
	}
	c.Ops = append(c.Ops, Op{Kind: Measure, Q: ancilla})
	return c
}

// Run propagates the Pauli frame through the circuit and returns the
// measurement outcome: 1 when the frame flips the ancilla's ideal
// outcome (a detection event), 0 otherwise. When gateNoise is non-nil it
// is sampled after every gate on the gate's qubits (circuit-level
// noise); rng may be nil when gateNoise is nil.
func (c Circuit) Run(f *pauli.Frame, gateNoise noise.Channel, rng *rand.Rand) int {
	outcome := -1
	for _, op := range c.Ops {
		switch op.Kind {
		case ResetOp:
			f.Set(op.Q, pauli.I)
		case Hadamard:
			f.Set(op.Q, conjugateH(f.Get(op.Q)))
		case CNOT:
			pc, pt := f.Get(op.Control), f.Get(op.Q)
			// X on the control propagates to the target; Z on the
			// target propagates to the control.
			if pc.HasX() {
				pt = pauli.Mul(pt, pauli.X)
			}
			if pt.HasZ() {
				pc = pauli.Mul(pc, pauli.Z)
			}
			f.Set(op.Control, pc)
			f.Set(op.Q, pt)
		case Measure:
			if f.Get(op.Q).HasX() {
				outcome = 1
			} else {
				outcome = 0
			}
			// Measurement collapses any phase information on the
			// ancilla; the ancilla is reused next cycle after reset.
			f.Set(op.Q, pauli.I)
		}
		if gateNoise != nil {
			targets := []int{op.Q}
			if op.Kind == CNOT {
				targets = append(targets, op.Control)
			}
			gateNoise.Sample(rng, f, targets)
		}
	}
	if outcome < 0 {
		panic("stabilizer: circuit has no measurement")
	}
	return outcome
}

// conjugateH conjugates a Pauli by the Hadamard: X↔Z, Y→Y.
func conjugateH(p pauli.Op) pauli.Op {
	switch p {
	case pauli.X:
		return pauli.Z
	case pauli.Z:
		return pauli.X
	}
	return p
}

// Extractor measures every stabilizer of one matching graph by running
// its circuit, producing the same syndrome vector as
// lattice.Graph.Syndrome for data-only noise.
type Extractor struct {
	g        *lattice.Graph
	circuits []Circuit
}

// NewExtractor builds the per-check circuits for a matching graph.
func NewExtractor(g *lattice.Graph) *Extractor {
	ex := &Extractor{g: g}
	l := g.Lattice()
	for i := 0; i < g.NumChecks(); i++ {
		s := g.CheckSite(i)
		a := l.QubitIndex(s)
		data := l.StabilizerSupport(s)
		if g.ErrorType() == lattice.ZErrors {
			ex.circuits = append(ex.circuits, XStabilizer(a, data))
		} else {
			ex.circuits = append(ex.circuits, ZStabilizer(a, data))
		}
	}
	return ex
}

// Extract runs every stabilizer circuit against the frame and returns
// the syndrome. With non-nil gateNoise, errors are injected after every
// gate and propagate into both the outcomes and the frame.
func (ex *Extractor) Extract(f *pauli.Frame, gateNoise noise.Channel, rng *rand.Rand) ([]bool, error) {
	if f.Len() != ex.g.Lattice().NumQubits() {
		return nil, fmt.Errorf("stabilizer: frame covers %d qubits, lattice has %d", f.Len(), ex.g.Lattice().NumQubits())
	}
	syn := make([]bool, len(ex.circuits))
	for i, c := range ex.circuits {
		syn[i] = c.Run(f, gateNoise, rng) == 1
	}
	return syn, nil
}
