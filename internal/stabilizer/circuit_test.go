package stabilizer

import (
	"testing"

	"repro/internal/lattice"
	"repro/internal/noise"
	"repro/internal/pauli"
)

func TestCircuitShapes(t *testing.T) {
	x := XStabilizer(9, []int{1, 2, 3, 4})
	// reset + H + 4 CNOT + H + measure
	if len(x.Ops) != 8 {
		t.Errorf("X circuit has %d ops, want 8", len(x.Ops))
	}
	z := ZStabilizer(9, []int{1, 2})
	// reset + 2 CNOT + measure
	if len(z.Ops) != 4 {
		t.Errorf("Z circuit has %d ops, want 4", len(z.Ops))
	}
	if x.Ancilla != 9 || z.Ancilla != 9 {
		t.Error("ancilla not recorded")
	}
}

func TestXStabilizerDetectsZParity(t *testing.T) {
	data := []int{0, 1, 2, 3}
	c := XStabilizer(4, data)
	cases := []struct {
		errs string
		want int
	}{
		{"IIII", 0},
		{"ZIII", 1},
		{"ZZII", 0},
		{"ZZZI", 1},
		{"ZZZZ", 0},
		{"XIII", 0}, // X errors are invisible to the X stabilizer
		{"YIII", 1}, // Y = X·Z carries a Z component
		{"YYII", 0},
		{"XZII", 1},
	}
	for _, tc := range cases {
		f := pauli.NewFrame(5)
		for i, r := range tc.errs {
			op, _ := pauli.ParseOp(r)
			f.Set(i, op)
		}
		if got := c.Run(f, nil, nil); got != tc.want {
			t.Errorf("X stabilizer on %s = %d, want %d", tc.errs, got, tc.want)
		}
	}
}

func TestZStabilizerDetectsXParity(t *testing.T) {
	data := []int{0, 1, 2, 3}
	c := ZStabilizer(4, data)
	cases := []struct {
		errs string
		want int
	}{
		{"IIII", 0},
		{"XIII", 1},
		{"XXII", 0},
		{"ZIII", 0},
		{"YIII", 1},
		{"XXXI", 1},
	}
	for _, tc := range cases {
		f := pauli.NewFrame(5)
		for i, r := range tc.errs {
			op, _ := pauli.ParseOp(r)
			f.Set(i, op)
		}
		if got := c.Run(f, nil, nil); got != tc.want {
			t.Errorf("Z stabilizer on %s = %d, want %d", tc.errs, got, tc.want)
		}
	}
}

// Noiseless circuit extraction must agree exactly with the direct parity
// computation of the matching graph and must not disturb the data frame.
func TestExtractorMatchesDirectSyndrome(t *testing.T) {
	rng := noise.NewRand(31)
	dep, _ := noise.NewDepolarizing(0.15)
	for _, d := range []int{3, 5, 7} {
		l := lattice.MustNew(d)
		targets := make([]int, 0, l.NumData())
		for _, s := range l.DataSites() {
			targets = append(targets, l.QubitIndex(s))
		}
		for _, e := range []lattice.ErrorType{lattice.ZErrors, lattice.XErrors} {
			g := l.MatchingGraph(e)
			ex := NewExtractor(g)
			for trial := 0; trial < 50; trial++ {
				f := pauli.NewFrame(l.NumQubits())
				dep.Sample(rng, f, targets)
				before := f.Clone()
				got, err := ex.Extract(f, nil, nil)
				if err != nil {
					t.Fatal(err)
				}
				want := g.Syndrome(before)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("d=%d %v trial=%d check %d: circuit %v, direct %v", d, e, trial, i, got[i], want[i])
					}
				}
				for _, q := range targets {
					if f.Get(q) != before.Get(q) {
						t.Fatalf("d=%d %v: extraction disturbed data qubit %d", d, e, q)
					}
				}
			}
		}
	}
}

func TestExtractorFrameSizeCheck(t *testing.T) {
	l := lattice.MustNew(3)
	ex := NewExtractor(l.MatchingGraph(lattice.ZErrors))
	if _, err := ex.Extract(pauli.NewFrame(3), nil, nil); err == nil {
		t.Error("wrong-size frame accepted")
	}
}

// With circuit-level noise enabled, repeated extraction must produce
// some detection events and back-propagate errors onto data qubits.
func TestGateNoiseInjects(t *testing.T) {
	l := lattice.MustNew(5)
	g := l.MatchingGraph(lattice.ZErrors)
	ex := NewExtractor(g)
	rng := noise.NewRand(41)
	dep, _ := noise.NewDepolarizing(0.05)
	f := pauli.NewFrame(l.NumQubits())
	hits := 0
	for trial := 0; trial < 50; trial++ {
		syn, err := ex.Extract(f, dep, rng)
		if err != nil {
			t.Fatal(err)
		}
		hits += len(lattice.HotChecks(syn))
	}
	if hits == 0 {
		t.Error("gate noise produced no detection events")
	}
}

func TestRunPanicsWithoutMeasurement(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no-measurement circuit did not panic")
		}
	}()
	c := Circuit{Ops: []Op{{Kind: Hadamard, Q: 0}}}
	c.Run(pauli.NewFrame(1), nil, nil)
}

func TestConjugateH(t *testing.T) {
	if conjugateH(pauli.X) != pauli.Z || conjugateH(pauli.Z) != pauli.X ||
		conjugateH(pauli.Y) != pauli.Y || conjugateH(pauli.I) != pauli.I {
		t.Error("Hadamard conjugation wrong")
	}
}
