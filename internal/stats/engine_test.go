package stats

// Satellite tests for the sharded Monte-Carlo engine as seen through
// the stats sweep layer: cross-worker determinism, deterministic error
// collection, a property-based decoder-invariant check, and a
// stream-independence test on the actual failure indicators.

import (
	"context"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/decoder"
	"repro/internal/decoder/greedy"
	"repro/internal/decoder/mwpm"
	"repro/internal/decoder/unionfind"
	"repro/internal/knob"
	"repro/internal/lattice"
	"repro/internal/mc"
	"repro/internal/noise"
	"repro/internal/surface"
)

// shortOr returns short when REPRO_MC_SHORT is set (the ci.sh race run
// uses it), full otherwise. Only applied where statistical tolerances
// scale with the sample size.
func shortOr(full, short int) int {
	if knob.Bool("REPRO_MC_SHORT") {
		return short
	}
	return full
}

func invarianceConfig(cycles int) CurveConfig {
	return CurveConfig{
		Distances:  []int{3, 5},
		Rates:      []float64{0.04, 0.09},
		Cycles:     cycles,
		NewChannel: func(p float64) (noise.Channel, error) { return noise.NewDephasing(p) },
		NewDecoderZ: func(d int) decoder.Decoder {
			return greedy.New()
		},
		Seed: 7,
	}
}

// Satellite: cross-worker determinism regression. The same sweep at
// Workers ∈ {1, 2, 8}, with different shard sizes, and with shuffled
// job order must produce bit-identical []Point output.
func TestCurvesWorkerInvariance(t *testing.T) {
	cycles := shortOr(800, 200)
	base := invarianceConfig(cycles)
	base.Workers = 1
	ref, err := Curves(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) != 4 {
		t.Fatalf("got %d points, want 4", len(ref))
	}
	anyErrors := false
	for _, pt := range ref {
		if pt.Errors > 0 {
			anyErrors = true
		}
	}
	if !anyErrors {
		t.Fatal("reference sweep saw no logical errors; invariance check is vacuous")
	}

	combos := []struct{ workers, shardSize int }{
		{2, 0}, {8, 0}, {8, 13}, {3, 1}, {1, 64},
	}
	for _, c := range combos {
		cfg := invarianceConfig(cycles)
		cfg.Workers = c.workers
		cfg.ShardSize = c.shardSize
		got, err := Curves(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Errorf("workers=%d shard=%d: point %d = %+v, want %+v",
					c.workers, c.shardSize, i, got[i], ref[i])
			}
		}
	}

	// Shuffled job order: reversing the sweep axes must not change any
	// (d, p) point — streams are keyed by parameters, not position.
	cfg := invarianceConfig(cycles)
	cfg.Workers = 4
	cfg.Distances = []int{5, 3}
	cfg.Rates = []float64{0.09, 0.04}
	got, err := Curves(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[[2]float64]Point{}
	for _, pt := range ref {
		byKey[[2]float64{float64(pt.D), pt.P}] = pt
	}
	for _, pt := range got {
		want := byKey[[2]float64{float64(pt.D), pt.P}]
		if pt != want {
			t.Errorf("shuffled order: (d=%d, p=%g) = %+v, want %+v", pt.D, pt.P, pt, want)
		}
	}
}

// Adaptive early stopping spends fewer trials than the budget on an
// easy point and spends the same number at every worker count.
func TestCurvesAdaptiveStopsDeterministic(t *testing.T) {
	var ref []Point
	for _, w := range []int{1, 2, 8} {
		cfg := CurveConfig{
			Distances:      []int{3},
			Rates:          []float64{0.09},
			Cycles:         200000,
			MinTrials:      500,
			TargetRelWidth: 0.5,
			NewChannel:     func(p float64) (noise.Channel, error) { return noise.NewDephasing(p) },
			NewDecoderZ:    func(d int) decoder.Decoder { return greedy.New() },
			Seed:           3,
			Workers:        w,
		}
		got, err := Curves(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got[0].Cycles >= cfg.Cycles {
			t.Fatalf("workers=%d: no early stop (%d cycles)", w, got[0].Cycles)
		}
		if ref == nil {
			ref = got
		} else if got[0] != ref[0] {
			t.Errorf("workers=%d: %+v, want %+v", w, got[0], ref[0])
		}
	}
}

// Satellite: the sweep collects the errors of every failing point
// (errors.Join), not just the first one a worker happens to hit.
func TestCurvesJoinsAllPointErrors(t *testing.T) {
	cfg := CurveConfig{
		Distances:   []int{3},
		Rates:       []float64{2.0, 3.0}, // both invalid -> two channel errors
		Cycles:      10,
		NewChannel:  func(p float64) (noise.Channel, error) { return noise.NewDephasing(p) },
		NewDecoderZ: func(d int) decoder.Decoder { return greedy.New() },
		Workers:     4,
	}
	_, err := Curves(cfg)
	if err == nil {
		t.Fatal("invalid rates did not surface")
	}
	for _, want := range []string{"p=2", "p=3"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error %q misses the point with %s", err, want)
		}
	}
}

// Satellite: property-based test that decoder corrections clear the
// syndrome when driven by the engine, for random seeds, worker counts,
// and shard sizes. Each trial samples a dephasing round, decodes, and
// fails if decoder.Validate rejects the correction.
func TestDecoderClearsSyndromeUnderEngine(t *testing.T) {
	l := lattice.MustNew(3)
	g := l.MatchingGraph(lattice.ZErrors)
	var data []int
	for _, s := range l.DataSites() {
		data = append(data, l.QubitIndex(s))
	}
	decoders := []func() decoder.Decoder{
		func() decoder.Decoder { return greedy.New() },
		func() decoder.Decoder { return mwpm.New() },
		func() decoder.Decoder { return unionfind.New() },
	}
	trials := shortOr(256, 64)

	property := func(seed int64, w, ss, di uint8) bool {
		newDec := decoders[int(di)%len(decoders)]
		spec := mc.PointSpec{
			ID:        mc.DeriveID(uint64(di)),
			Trials:    trials,
			ShardSize: int(ss % 32),
			NewShard: func() (mc.Shard, error) {
				dec := newDec()
				ch, err := noise.NewDephasing(0.12)
				if err != nil {
					return nil, err
				}
				f := decoder.Correction{}.Frame(l, lattice.ZErrors)
				return mc.ShardFunc(func(rng *rand.Rand, t int) (mc.Outcome, error) {
					f.Clear()
					ch.Sample(rng, f, data)
					syn := g.Syndrome(f)
					c, err := dec.Decode(g, syn)
					if err != nil {
						return mc.Outcome{}, err
					}
					return mc.Outcome{Failed: decoder.Validate(g, syn, c) != nil}, nil
				}), nil
			},
		}
		res, err := mc.Run(context.Background(),
			mc.Config{RootSeed: seed, Workers: int(w%8) + 1}, []mc.PointSpec{spec})
		if err != nil {
			t.Logf("engine error: %v", err)
			return false
		}
		if res[0].Failures > 0 {
			t.Logf("seed=%d decoder=%s: %d/%d corrections left a hot check",
				seed, newDec().Name(), res[0].Failures, res[0].Trials)
			return false
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: shortOr(16, 6),
		Rand:     rand.New(rand.NewSource(99)), // deterministic test inputs
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Error(err)
	}
}

// Satellite: stream independence on the real workload. The per-trial
// logical-failure indicators produced by lifetimeShard under
// counter-based streams must be serially uncorrelated (lag-1
// autocorrelation consistent with zero).
func TestLifetimeFailureIndicatorsUncorrelated(t *testing.T) {
	n := shortOr(4000, 1500)
	ch, err := noise.NewDephasing(0.09)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := surface.New(surface.Config{Distance: 3, Channel: ch, DecoderZ: greedy.New()})
	if err != nil {
		t.Fatal(err)
	}
	sh := &lifetimeShard{sim: sim}
	id := PointID(3, 0.09)
	xs := make([]float64, n)
	failures := 0
	for trial := 0; trial < n; trial++ {
		o, err := sh.Trial(mc.NewRand(21, id, int64(trial)), trial)
		if err != nil {
			t.Fatal(err)
		}
		if o.Failed {
			xs[trial] = 1
			failures++
		}
	}
	if failures == 0 || failures == n {
		t.Fatalf("degenerate failure count %d/%d; correlation undefined", failures, n)
	}
	mean := float64(failures) / float64(n)
	var num, den float64
	for i := 0; i < n; i++ {
		d := xs[i] - mean
		den += d * d
		if i+1 < n {
			num += d * (xs[i+1] - mean)
		}
	}
	r := num / den
	// Under independence r ~ N(0, 1/n); 5σ keeps the deterministic
	// seed safely inside.
	limit := 5 / math.Sqrt(float64(n))
	if math.Abs(r) > limit {
		t.Errorf("lag-1 autocorrelation r = %.4f exceeds %.4f (rate %.3f, n=%d)",
			r, limit, mean, n)
	}
}

// Determinism guard for the zero-allocation decode path (PR 2): the
// cross-worker bit-identity of PR 1 must survive decoders that route
// through decodepool scratches. Every worker owns a private scratch, so
// pooling must be invisible to the sweep output; mwpm and union-find are
// the decoders with the most reusable internal state.
func TestCurvesWorkerInvariancePooledDecoders(t *testing.T) {
	cycles := shortOr(400, 150)
	newDecs := map[string]func(d int) decoder.Decoder{
		"mwpm":       func(int) decoder.Decoder { return mwpm.New() },
		"union-find": func(int) decoder.Decoder { return unionfind.New() },
	}
	for name, newDec := range newDecs {
		var ref []Point
		for _, workers := range []int{1, 8} {
			cfg := CurveConfig{
				Distances:   []int{3, 5},
				Rates:       []float64{0.04, 0.09},
				Cycles:      cycles,
				NewChannel:  func(p float64) (noise.Channel, error) { return noise.NewDephasing(p) },
				NewDecoderZ: newDec,
				Seed:        11,
				Workers:     workers,
			}
			got, err := Curves(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if ref == nil {
				ref = got
				anyErrors := false
				for _, pt := range ref {
					anyErrors = anyErrors || pt.Errors > 0
				}
				if !anyErrors {
					t.Fatalf("%s: reference sweep saw no logical errors; check is vacuous", name)
				}
				continue
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Errorf("%s workers=8: point %d = %+v, want %+v", name, i, got[i], ref[i])
				}
			}
		}
	}
}
