package stats

// Acceptance gate of the two-level decoding PR: sweep results in
// two-level mode must be bit-identical across worker/shard/batch shapes.
// The escalation verdict is a pure function of the mesh Stats, which the
// sfq conformance suites pin identical between scalar and SWAR kernels,
// and MWPM is deterministic — so any divergence here is a real bug in
// the twolevel wrapper or the sweep plumbing.

import (
	"sync/atomic"
	"testing"

	"repro/internal/decoder"
	"repro/internal/lattice"
	"repro/internal/noise"
	"repro/internal/sfq"
	"repro/internal/twolevel"
)

func twoLevelSweepConfig(cycles int, batch bool, pool *sfq.Pool, esc *atomic.Int64) CurveConfig {
	pol := twolevel.Policy{OnRetry: true, OnUnresolved: true, OnFallback: true, HotThreshold: 4}
	cfg := CurveConfig{
		Distances:  []int{3, 5, 7},
		Rates:      []float64{0.02, 0.06},
		Cycles:     cycles,
		NewChannel: func(p float64) (noise.Channel, error) { return noise.NewDephasing(p) },
		NewDecoderZ: func(d int) decoder.Decoder {
			if batch {
				return pool.GetBatch(d, lattice.ZErrors)
			}
			return pool.Get(d, lattice.ZErrors)
		},
		FreeDecoder: pool.Release,
		Seed:        4321,
		Batch:       batch,
		TwoLevel:    &TwoLevelConfig{Policy: pol},
	}
	if esc != nil {
		cfg.Observer = func(d int, p float64) func(lattice.ErrorType, sfq.Stats) {
			return func(_ lattice.ErrorType, st sfq.Stats) {
				if pol.Escalate(st) {
					esc.Add(1)
				}
			}
		}
	}
	return cfg
}

// TestCurvesTwoLevelDeterminism runs the same two-level sweep scalar
// and batched, across worker/shard shapes, and requires bit-identical
// points — and that the sweep actually escalated and actually changed
// outcomes relative to pure-mesh decoding (otherwise the mode proves
// nothing).
func TestCurvesTwoLevelDeterminism(t *testing.T) {
	cycles := shortOr(1500, 400)
	pool := sfq.NewPool(sfq.Final)
	var escalations atomic.Int64
	ref, err := Curves(twoLevelSweepConfig(cycles, false, pool, &escalations))
	if err != nil {
		t.Fatal(err)
	}
	if escalations.Load() == 0 {
		t.Fatal("two-level sweep never escalated; determinism check is vacuous")
	}
	anyErrors := false
	for _, pt := range ref {
		anyErrors = anyErrors || pt.Errors > 0
	}
	if !anyErrors {
		t.Fatal("two-level sweep saw no logical errors; determinism check is vacuous")
	}

	// Pure-mesh sweep under the same seed: the escalations must have
	// changed at least one point, or the wrapper is decoding nothing.
	pure := batchSweepConfig(cycles, false, false, pool)
	pure.Distances, pure.Rates, pure.Seed = []int{3, 5, 7}, []float64{0.02, 0.06}, 4321
	purePts, err := Curves(pure)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range ref {
		if ref[i] != purePts[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("two-level sweep is bit-identical to pure mesh despite escalations")
	}

	for _, shape := range []struct {
		workers, shardSize int
		batch              bool
	}{
		{3, 17, false}, {1, 64, false}, {0, 0, true}, {3, 17, true}, {1, 64, true},
	} {
		cfg := twoLevelSweepConfig(cycles, shape.batch, pool, nil)
		cfg.Workers = shape.workers
		cfg.ShardSize = shape.shardSize
		got, err := Curves(cfg)
		if err != nil {
			t.Fatal(err)
		}
		pointsEqual(t, "two-level", ref, got)
	}

	// The pool saw only level-1 meshes back (the unwrap path): nothing
	// outstanding, nothing foreign.
	st := pool.Stats()
	if st.Outstanding != 0 || st.Foreign != 0 || st.DoublePuts != 0 {
		t.Fatalf("pool after two-level sweeps: %+v", st)
	}
}
