package stats

// Acceptance gate of the SWAR batching PR: Monte-Carlo sweep results
// must be bit-identical with batching enabled vs disabled under the
// same seeds — per-trial streams are untouched by chunking and the
// batch kernel is conformance-pinned to the scalar one, so any
// divergence here is a real bug in one of those layers.

import (
	"testing"

	"repro/internal/decoder"
	"repro/internal/lattice"
	"repro/internal/noise"
	"repro/internal/sfq"
)

func batchSweepConfig(cycles int, batch, dual bool, pool *sfq.Pool) CurveConfig {
	cfg := CurveConfig{
		Distances:  []int{3, 5, 7},
		Rates:      []float64{0.02, 0.06},
		Cycles:     cycles,
		NewChannel: func(p float64) (noise.Channel, error) { return noise.NewDephasing(p) },
		NewDecoderZ: func(d int) decoder.Decoder {
			if batch {
				return pool.GetBatch(d, lattice.ZErrors)
			}
			return pool.Get(d, lattice.ZErrors)
		},
		FreeDecoder: pool.Release,
		Seed:        1234,
		Batch:       batch,
	}
	if dual {
		cfg.NewChannel = func(p float64) (noise.Channel, error) { return noise.NewDepolarizing(p) }
		cfg.NewDecoderX = func(d int) decoder.Decoder {
			if batch {
				return pool.GetBatch(d, lattice.XErrors)
			}
			return pool.Get(d, lattice.XErrors)
		}
	}
	return cfg
}

func pointsEqual(t *testing.T, desc string, a, b []Point) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d points", desc, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: point %d diverges:\nscalar  %+v\nbatched %+v", desc, i, a[i], b[i])
		}
	}
}

// TestCurvesBatchDeterminism runs the same sweep with batching off and
// on (and across worker/shard shapes) and requires bit-identical
// points: same logical-error counts, same forced completions, same
// trial counts.
func TestCurvesBatchDeterminism(t *testing.T) {
	for _, tc := range []struct {
		name string
		dual bool
	}{
		{"dephasing-Z", false},
		{"depolarizing-ZX", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cycles := shortOr(1500, 400)
			pool := sfq.NewPool(sfq.Final)
			scalar, err := Curves(batchSweepConfig(cycles, false, tc.dual, pool))
			if err != nil {
				t.Fatal(err)
			}
			anyErrors := false
			for _, pt := range scalar {
				anyErrors = anyErrors || pt.Errors > 0
			}
			if !anyErrors {
				t.Fatal("scalar sweep saw no logical errors; determinism check is vacuous")
			}
			for _, shape := range []struct{ workers, shardSize int }{
				{0, 0}, {3, 17}, {1, 64},
			} {
				cfg := batchSweepConfig(cycles, true, tc.dual, pool)
				cfg.Workers = shape.workers
				cfg.ShardSize = shape.shardSize
				batched, err := Curves(cfg)
				if err != nil {
					t.Fatal(err)
				}
				pointsEqual(t, tc.name, scalar, batched)
			}
		})
	}
}

// TestCurvesBatchPoolRecycling checks the sweep returns its batch
// meshes: after FreeDecoder ran for every point, the pool reports no
// outstanding meshes and later sweeps reuse parked ones.
func TestCurvesBatchPoolRecycling(t *testing.T) {
	pool := sfq.NewPool(sfq.Final)
	if _, err := Curves(batchSweepConfig(300, true, false, pool)); err != nil {
		t.Fatal(err)
	}
	st := pool.Stats()
	if st.Outstanding != 0 {
		t.Fatalf("pool reports %d outstanding meshes after sweep, want 0 (%+v)", st.Outstanding, st)
	}
	if _, err := Curves(batchSweepConfig(300, true, false, pool)); err != nil {
		t.Fatal(err)
	}
	st2 := pool.Stats()
	if st2.Hits == st.Hits {
		t.Fatalf("second sweep reused no parked batch meshes: %+v", st2)
	}
}
