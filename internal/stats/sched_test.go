package stats

// Acceptance gate of the work-stealing scheduler: sweep results must be
// bit-identical at every worker count and steal schedule. ForceSteal
// makes workers migrate tasks on every dequeue, hammering the steal
// path far beyond natural imbalance; a sweep whose verdicts move under
// it has scheduling-dependent results, which the counter-based trial
// streams are supposed to make impossible. ci.sh runs this under -race.

import (
	"testing"

	"repro/internal/sched"
	"repro/internal/sfq"
)

// TestCurvesStealScheduleDeterminism runs one batched sweep as the
// reference, then replays it across worker counts with and without
// forced stealing, requiring identical points every time. The forced
// multi-worker runs must actually steal — otherwise the schedule
// hammer is vacuous.
func TestCurvesStealScheduleDeterminism(t *testing.T) {
	cycles := shortOr(1500, 400)
	pool := sfq.NewPool(sfq.Final)
	ref, err := Curves(batchSweepConfig(cycles, true, false, pool))
	if err != nil {
		t.Fatal(err)
	}
	anyErrors := false
	for _, pt := range ref {
		anyErrors = anyErrors || pt.Errors > 0
	}
	if !anyErrors {
		t.Fatal("reference sweep saw no logical errors; determinism check is vacuous")
	}
	for _, shape := range []struct {
		workers    int
		forceSteal bool
	}{
		{1, false}, {1, true}, {2, true}, {8, true}, {8, false},
	} {
		var ss sched.Stats
		cfg := batchSweepConfig(cycles, true, false, pool)
		cfg.Workers = shape.workers
		cfg.ForceSteal = shape.forceSteal
		cfg.SchedStats = &ss
		// A small fixed shard size splits every point into many tasks,
		// giving the steal schedule real work to shuffle.
		cfg.ShardSize = 16
		got, err := Curves(cfg)
		if err != nil {
			t.Fatal(err)
		}
		pointsEqual(t, "steal schedule", ref, got)
		if shape.forceSteal && shape.workers > 1 && ss.Steals == 0 {
			t.Fatalf("workers=%d forceSteal: scheduler reports zero steals; the hammer did nothing", shape.workers)
		}
	}
}
