// Package stats provides the Monte-Carlo evaluation harness of §VII:
// logical-error-rate curve generation with binomial confidence
// intervals, pseudo-threshold and accuracy-threshold estimation, and the
// PL ≈ c1·(p/pth)^(c2·d) model fits behind Table V.
package stats

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/decodepool"
	"repro/internal/decoder"
	"repro/internal/decoder/mwpm"
	"repro/internal/lattice"
	"repro/internal/mc"
	"repro/internal/noise"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/sfq"
	"repro/internal/surface"
	"repro/internal/twolevel"
)

// Point is one measured (distance, physical rate) sample.
type Point struct {
	D      int     // code distance
	P      float64 // physical error rate
	PL     float64 // measured logical error rate per cycle
	Errors int     // logical error count
	Cycles int     // cycles simulated
	Forced int     // harness force-completions
	Lo, Hi float64 // 95% Wilson interval on PL
}

// WilsonInterval returns the Wilson score interval for k successes in n
// trials at confidence coefficient z (1.96 for 95%).
func WilsonInterval(k, n int, z float64) (lo, hi float64) {
	if n == 0 {
		return 0, 1
	}
	p := float64(k) / float64(n)
	nf := float64(n)
	denom := 1 + z*z/nf
	center := (p + z*z/(2*nf)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/nf+z*z/(4*nf*nf))
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// CurveConfig drives a Monte-Carlo sweep over distances and physical
// error rates.
type CurveConfig struct {
	// Distances to simulate (odd, >= 3).
	Distances []int
	// Rates are the physical error rates p to sweep.
	Rates []float64
	// Cycles per (d, p) point.
	Cycles int
	// NewChannel builds the error channel for a rate (e.g. dephasing).
	NewChannel func(p float64) (noise.Channel, error)
	// NewDecoderZ builds the phase-flip decoder for a distance. The
	// factory is called once per point, so mesh decoders are never
	// shared across goroutines.
	NewDecoderZ func(d int) decoder.Decoder
	// NewDecoderX optionally builds the bit-flip decoder (depolarizing
	// sweeps); nil skips the X plane.
	NewDecoderX func(d int) decoder.Decoder
	// Seed is the sweep's root seed; every (point, cycle) pair derives
	// its own counter-based stream from it, so results are bit-identical
	// regardless of Workers, ShardSize, or the order of Distances/Rates.
	Seed int64
	// Workers bounds concurrently executing trial shards across the
	// whole sweep; 0 means GOMAXPROCS.
	Workers int
	// ShardSize fixes the cycles per shard; 0 lets the engine size
	// shards automatically. Results never depend on it.
	ShardSize int
	// ForceSteal makes the engine's work-stealing workers steal before
	// draining their own deques (mc.Config.ForceSteal). Results never
	// depend on it; the determinism tests use it to hammer migration.
	ForceSteal bool
	// SchedStats, when non-nil, receives a snapshot of the engine's
	// work-stealing scheduler counters once the sweep finishes
	// (mc.Config.SchedStats). Diagnostic only.
	SchedStats *sched.Stats
	// TargetRelWidth, when > 0, stops a point early once its 95% Wilson
	// interval is tighter than this fraction of the measured PL. The
	// Cycles field of the returned points reports trials actually spent.
	TargetRelWidth float64
	// MinTrials is the first early-stopping checkpoint (default 1000).
	MinTrials int
	// Progress, when non-nil, receives per-point progress after every
	// engine checkpoint (serialized; safe to print from).
	Progress func(mc.Progress)
	// Observer, when non-nil, builds the surface-simulator observer for
	// each point (used to collect mesh timing samples during sweeps).
	// The harness serializes calls within a point, but observers for
	// distinct points may run concurrently.
	Observer func(d int, p float64) func(lattice.ErrorType, sfq.Stats)
	// Batch routes trials through the shards' SWAR batch path
	// (surface.Simulator.RunTrialBatch) when the configured decoders are
	// sfq.BatchMesh instances — several independent cycles decode in the
	// same machine words per call. Trial streams are unchanged, so
	// results are bit-identical with Batch on or off (asserted by
	// TestCurvesBatchDeterminism). Ignored for non-batch decoders.
	Batch bool
	// Obs, when non-nil, receives sweep telemetry: the engine's trial
	// counters and latency histograms (see mc.Config.Obs) and the
	// simulators' decode-latency samples (see surface.Config.Obs).
	// Sweep binaries pass obs.Default() when --obs is set.
	Obs *obs.Registry
	// FreeDecoder, when non-nil, receives every decoder the factories
	// built once the point owning it finishes. Pass sfq.Pool.Release so
	// mesh decoders are recycled across points instead of rebuilt per
	// shard. Two-level wrappers are unwrapped first: the hook receives
	// the level-1 mesh, never the wrapper. Calls may come from
	// concurrent points; the hook must be safe for concurrent use.
	FreeDecoder func(decoder.Decoder)
	// TwoLevel, when non-nil, switches the sweep to two-level decoding:
	// every sfq.Mesh / sfq.BatchMesh the decoder factories build is
	// wrapped in a twolevel.Decoder, so instances the escalation policy
	// flags re-decode through the accurate level-2 decoder. The verdict
	// is a pure function of the kernel-conformance-pinned mesh Stats,
	// so points stay bit-identical at any Workers/ShardSize/Batch shape
	// (TestCurvesTwoLevelDeterminism). Non-mesh decoders pass through
	// unwrapped.
	TwoLevel *TwoLevelConfig
}

// TwoLevelConfig configures the sweep's two-level decoding mode.
type TwoLevelConfig struct {
	// Policy is the escalation policy applied to every level-1 decode.
	Policy twolevel.Policy
	// NewAccurate builds the level-2 decoder for a distance; nil uses
	// exact MWPM. The factory is called once per point per plane, like
	// the level-1 factories.
	NewAccurate func(d int) decodepool.IntoDecoder
}

// wrap turns a factory-built mesh decoder into a two-level decoder.
func (tc *TwoLevelConfig) wrap(d int, dec decoder.Decoder) decoder.Decoder {
	if dec == nil {
		return nil
	}
	var acc decodepool.IntoDecoder
	if tc.NewAccurate != nil {
		acc = tc.NewAccurate(d)
	}
	if acc == nil {
		acc = mwpm.New()
	}
	switch m := dec.(type) {
	case *sfq.Mesh:
		return twolevel.New(m, acc, tc.Policy)
	case *sfq.BatchMesh:
		return twolevel.NewBatch(m, acc, tc.Policy)
	}
	return dec
}

// Curves runs the sweep and returns points ordered by the
// (Distances, Rates) grid.
func Curves(cfg CurveConfig) ([]Point, error) {
	return CurvesContext(context.Background(), cfg)
}

// CurvesContext runs the sweep on the sharded Monte-Carlo engine
// (internal/mc), honoring ctx cancellation. Every syndrome cycle of a
// point is an independent trial whose randomness is a pure function of
// (Seed, d, p, cycle index).
func CurvesContext(ctx context.Context, cfg CurveConfig) ([]Point, error) {
	if cfg.Cycles <= 0 {
		return nil, fmt.Errorf("stats: Cycles must be positive")
	}
	if cfg.NewChannel == nil || cfg.NewDecoderZ == nil {
		return nil, fmt.Errorf("stats: NewChannel and NewDecoderZ are required")
	}
	specs := make([]mc.PointSpec, 0, len(cfg.Distances)*len(cfg.Rates))
	for _, d := range cfg.Distances {
		for _, p := range cfg.Rates {
			d, p := d, p
			var observer func(lattice.ErrorType, sfq.Stats)
			if cfg.Observer != nil {
				inner := cfg.Observer(d, p)
				var mu sync.Mutex // shards of one point decode concurrently
				observer = func(e lattice.ErrorType, st sfq.Stats) {
					mu.Lock()
					inner(e, st)
					mu.Unlock()
				}
			}
			build := func() (surface.Config, error) {
				ch, err := cfg.NewChannel(p)
				if err != nil {
					return surface.Config{}, err
				}
				sc := surface.Config{
					Distance: d,
					Channel:  ch,
					DecoderZ: cfg.NewDecoderZ(d),
					Observer: observer,
					Obs:      cfg.Obs,
				}
				if cfg.NewDecoderX != nil {
					sc.DecoderX = cfg.NewDecoderX(d)
				}
				if cfg.TwoLevel != nil {
					sc.DecoderZ = cfg.TwoLevel.wrap(d, sc.DecoderZ)
					sc.DecoderX = cfg.TwoLevel.wrap(d, sc.DecoderX)
				}
				return sc, nil
			}
			spec := LifetimeSpec(PointID(d, p), cfg.Cycles, cfg.ShardSize, build)
			if cfg.FreeDecoder != nil {
				spec.Release = ReleaseDecoders(cfg.FreeDecoder)
			}
			specs = append(specs, spec)
		}
	}
	results, err := mc.Run(ctx, mc.Config{
		RootSeed:       cfg.Seed,
		Workers:        cfg.Workers,
		ShardSize:      cfg.ShardSize,
		ForceSteal:     cfg.ForceSteal,
		SchedStats:     cfg.SchedStats,
		TargetRelWidth: cfg.TargetRelWidth,
		MinTrials:      cfg.MinTrials,
		Interval: func(k, n int) (float64, float64) {
			return WilsonInterval(k, n, 1.96)
		},
		Progress: cfg.Progress,
		Batch:    cfg.Batch,
		Obs:      cfg.Obs,
	}, specs)
	if err != nil {
		return nil, err
	}
	points := make([]Point, 0, len(results))
	i := 0
	for _, d := range cfg.Distances {
		for _, p := range cfg.Rates {
			r := results[i]
			i++
			pt := Point{D: d, P: p, Errors: r.Failures, Cycles: r.Trials, Forced: int(r.Aux)}
			if r.Trials > 0 {
				pt.PL = float64(r.Failures) / float64(r.Trials)
			}
			pt.Lo, pt.Hi = WilsonInterval(r.Failures, r.Trials, 1.96)
			points = append(points, pt)
		}
	}
	return points, nil
}

// PointID derives the engine stream key for a (distance, rate) point.
// Keying by the parameters (not grid position) makes each point's
// result invariant under reordering of the sweep.
func PointID(d int, p float64) int64 {
	return mc.DeriveID(uint64(d), math.Float64bits(p))
}

// LifetimeSpec builds the engine point spec for one surface-code
// lifetime experiment: each trial is one syndrome cycle starting from a
// clean frame (statistically equivalent to the sequential lifetime run,
// whose post-correction residual is always stabilizer-trivial). The
// outcome's Aux carries the harness force-completion count.
func LifetimeSpec(id int64, trials, shardSize int, build func() (surface.Config, error)) mc.PointSpec {
	return mc.PointSpec{
		ID:        id,
		Trials:    trials,
		ShardSize: shardSize,
		NewShard: func() (mc.Shard, error) {
			sc, err := build()
			if err != nil {
				return nil, err
			}
			sim, err := surface.New(sc)
			if err != nil {
				return nil, err
			}
			return &lifetimeShard{sim: sim}, nil
		},
	}
}

// ReleaseDecoders adapts a decoder release hook (e.g. sfq.Pool.Release)
// to mc.PointSpec.Release for lifetime shards: every decoder of the
// shard's simulator is handed to free when the shard retires.
func ReleaseDecoders(free func(decoder.Decoder)) func(mc.Shard) {
	return func(sh mc.Shard) {
		if ls, ok := sh.(*lifetimeShard); ok {
			for _, dec := range ls.sim.Decoders() {
				// Two-level wrappers are transparent to recycling: the
				// pooled resource is the level-1 mesh inside.
				if tl, ok := dec.(interface{ Level1() decoder.Decoder }); ok {
					dec = tl.Level1()
				}
				free(dec)
			}
		}
	}
}

// lifetimeShard runs single-cycle lifetime trials on a private
// simulator.
type lifetimeShard struct {
	sim   *surface.Simulator
	bouts []surface.BatchOutcome // TrialBatch's reusable outcome buffer
}

// Trial implements mc.Shard.
func (sh *lifetimeShard) Trial(rng *rand.Rand, _ int) (mc.Outcome, error) {
	sh.sim.Reset()
	sh.sim.SetRand(rng)
	res, err := sh.sim.Run(1)
	if err != nil {
		return mc.Outcome{}, err
	}
	return mc.Outcome{Failed: res.LogicalErrors > 0, Aux: int64(res.Forced)}, nil
}

// BatchSize implements mc.BatchShard: the simulator's SWAR lane width
// (1 when its decoders cannot batch, which disables chunking).
func (sh *lifetimeShard) BatchSize() int { return sh.sim.BatchWidth() }

// TrialBatch implements mc.BatchShard: each trial of the chunk is one
// independent cycle on its own frame and its own stream, bit-identical
// to the scalar Trial path.
func (sh *lifetimeShard) TrialBatch(rngs []*rand.Rand, _ int, out []mc.Outcome) (err error) {
	if cap(sh.bouts) < len(rngs) {
		sh.bouts = make([]surface.BatchOutcome, len(rngs))
	}
	bouts := sh.bouts[:len(rngs)]
	if err := sh.sim.RunTrialBatch(rngs, bouts); err != nil {
		return err
	}
	for i, bo := range bouts {
		out[i] = mc.Outcome{Failed: bo.Failed, Aux: int64(bo.Forced)}
	}
	return nil
}

// PseudoThreshold estimates the physical rate where PL = p for one
// distance's curve by log-log interpolation between the sample points
// bracketing the crossing. It reports false when the curve never
// crosses.
func PseudoThreshold(curve []Point) (float64, bool) {
	pts := append([]Point(nil), curve...)
	sort.Slice(pts, func(i, j int) bool { return pts[i].P < pts[j].P })
	for i := 0; i+1 < len(pts); i++ {
		a, b := pts[i], pts[i+1]
		if a.PL <= 0 || b.PL <= 0 {
			if a.PL <= a.P && b.PL > b.P {
				return b.P, true
			}
			continue
		}
		fa := math.Log(a.PL) - math.Log(a.P)
		fb := math.Log(b.PL) - math.Log(b.P)
		if fa <= 0 && fb > 0 {
			t := fa / (fa - fb)
			return math.Exp(math.Log(a.P) + t*(math.Log(b.P)-math.Log(a.P))), true
		}
	}
	return 0, false
}

// AccuracyThreshold estimates the physical rate where increasing the
// code distance stops suppressing errors: the average crossing point of
// successive-distance curves. It reports false when no pair of curves
// crosses inside the sampled window.
func AccuracyThreshold(points []Point) (float64, bool) {
	byD := map[int][]Point{}
	var ds []int
	for _, pt := range points {
		if _, ok := byD[pt.D]; !ok {
			ds = append(ds, pt.D)
		}
		byD[pt.D] = append(byD[pt.D], pt)
	}
	sort.Ints(ds)
	var crossings []float64
	for i := 0; i+1 < len(ds); i++ {
		if x, ok := curveCrossing(byD[ds[i]], byD[ds[i+1]]); ok {
			crossings = append(crossings, x)
		}
	}
	if len(crossings) == 0 {
		return 0, false
	}
	sum := 0.0
	for _, x := range crossings {
		sum += x
	}
	return sum / float64(len(crossings)), true
}

// curveCrossing finds where the higher-distance curve overtakes the
// lower-distance one (log-log interpolated).
func curveCrossing(lo, hi []Point) (float64, bool) {
	a := append([]Point(nil), lo...)
	b := append([]Point(nil), hi...)
	sort.Slice(a, func(i, j int) bool { return a[i].P < a[j].P })
	sort.Slice(b, func(i, j int) bool { return b[i].P < b[j].P })
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i+1 < n; i++ {
		if a[i].P != b[i].P || a[i+1].P != b[i+1].P {
			continue
		}
		if a[i].PL <= 0 || b[i].PL <= 0 || a[i+1].PL <= 0 || b[i+1].PL <= 0 {
			continue
		}
		fa := math.Log(b[i].PL) - math.Log(a[i].PL)
		fb := math.Log(b[i+1].PL) - math.Log(a[i+1].PL)
		if fa <= 0 && fb > 0 {
			t := fa / (fa - fb)
			return math.Exp(math.Log(a[i].P) + t*(math.Log(a[i+1].P)-math.Log(a[i].P))), true
		}
	}
	return 0, false
}

// LinearFit returns the least-squares slope and intercept of y on x.
func LinearFit(xs, ys []float64) (slope, intercept float64, err error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0, 0, fmt.Errorf("stats: need >= 2 paired samples, have %d/%d", len(xs), len(ys))
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	det := n*sxx - sx*sx
	if det == 0 {
		return 0, 0, fmt.Errorf("stats: degenerate fit (constant x)")
	}
	slope = (n*sxy - sx*sy) / det
	intercept = (sy - slope*sx) / n
	return slope, intercept, nil
}

// FitC2 fits the Table V model PL ≈ c1·(p/pth)^(c2·d) for a single
// distance's below-threshold points, returning c1 and c2.
func FitC2(curve []Point, pth float64) (c1, c2 float64, err error) {
	var xs, ys []float64
	for _, pt := range curve {
		if pt.P >= pth || pt.PL <= 0 {
			continue
		}
		xs = append(xs, float64(pt.D)*math.Log(pt.P/pth))
		ys = append(ys, math.Log(pt.PL))
	}
	slope, intercept, err := LinearFit(xs, ys)
	if err != nil {
		return 0, 0, fmt.Errorf("stats: FitC2: %w", err)
	}
	return math.Exp(intercept), slope, nil
}

// ByDistance splits a point set into per-distance curves.
func ByDistance(points []Point) map[int][]Point {
	m := map[int][]Point{}
	for _, pt := range points {
		m[pt.D] = append(m[pt.D], pt)
	}
	return m
}

// Summary holds moments of a sample set (Table IV's columns).
type Summary struct {
	N      int
	Max    float64
	Mean   float64
	StdDev float64
}

// Summarize computes max, mean and standard deviation of the samples.
func Summarize(samples []float64) Summary {
	s := Summary{N: len(samples)}
	if s.N == 0 {
		return s
	}
	var sum float64
	for _, v := range samples {
		sum += v
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(s.N)
	var ss float64
	for _, v := range samples {
		ss += (v - s.Mean) * (v - s.Mean)
	}
	s.StdDev = math.Sqrt(ss / float64(s.N))
	return s
}

// Percentile returns the q-quantile (0 <= q <= 1) of the samples by
// linear interpolation of the sorted order statistics.
func Percentile(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}
