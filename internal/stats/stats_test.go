package stats

import (
	"math"
	"testing"

	"repro/internal/decoder"
	"repro/internal/decoder/greedy"
	"repro/internal/lattice"
	"repro/internal/noise"
	"repro/internal/sfq"
)

func TestWilsonInterval(t *testing.T) {
	lo, hi := WilsonInterval(0, 0, 1.96)
	if lo != 0 || hi != 1 {
		t.Errorf("empty interval = [%v,%v]", lo, hi)
	}
	lo, hi = WilsonInterval(50, 100, 1.96)
	if lo >= 0.5 || hi <= 0.5 {
		t.Errorf("interval [%v,%v] does not contain 0.5", lo, hi)
	}
	if hi-lo > 0.25 {
		t.Errorf("interval [%v,%v] too wide for n=100", lo, hi)
	}
	lo, hi = WilsonInterval(0, 1000, 1.96)
	if lo != 0 || hi > 0.01 {
		t.Errorf("zero-count interval = [%v,%v]", lo, hi)
	}
	// Interval shrinks with n.
	_, hi1 := WilsonInterval(10, 100, 1.96)
	_, hi2 := WilsonInterval(100, 1000, 1.96)
	if hi2-0.1 >= hi1-0.1 {
		t.Error("interval did not shrink with n")
	}
}

func TestLinearFit(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 2x + 1
	m, b, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m-2) > 1e-12 || math.Abs(b-1) > 1e-12 {
		t.Errorf("fit = %v, %v", m, b)
	}
	if _, _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Error("single sample accepted")
	}
	if _, _, err := LinearFit([]float64{2, 2}, []float64{1, 5}); err == nil {
		t.Error("constant x accepted")
	}
	if _, _, err := LinearFit([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("mismatched lengths accepted")
	}
}

func TestFitC2RecoversSyntheticModel(t *testing.T) {
	// Generate PL = c1 (p/pth)^(c2 d) exactly and recover parameters.
	const c1, c2, pth = 0.03, 0.65, 0.05
	var curve []Point
	for _, p := range []float64{0.01, 0.02, 0.03, 0.04} {
		pl := c1 * math.Pow(p/pth, c2*3)
		curve = append(curve, Point{D: 3, P: p, PL: pl})
	}
	gotC1, gotC2, err := FitC2(curve, pth)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gotC1-c1) > 1e-9 || math.Abs(gotC2-c2) > 1e-9 {
		t.Errorf("fit c1=%v c2=%v, want %v %v", gotC1, gotC2, c1, c2)
	}
	// Points above threshold and zero-PL points are excluded.
	curve = append(curve, Point{D: 3, P: 0.2, PL: 0.9}, Point{D: 3, P: 0.015, PL: 0})
	gotC1b, gotC2b, err := FitC2(curve, pth)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gotC1b-gotC1) > 1e-9 || math.Abs(gotC2b-gotC2) > 1e-9 {
		t.Error("out-of-window points altered the fit")
	}
}

func TestPseudoThreshold(t *testing.T) {
	// PL = p²/0.05: crosses PL = p at p = 0.05.
	var curve []Point
	for _, p := range []float64{0.01, 0.02, 0.04, 0.06, 0.08} {
		curve = append(curve, Point{D: 3, P: p, PL: p * p / 0.05})
	}
	pth, ok := PseudoThreshold(curve)
	if !ok {
		t.Fatal("no pseudo-threshold found")
	}
	if math.Abs(pth-0.05) > 0.005 {
		t.Errorf("pseudo-threshold = %v, want ~0.05", pth)
	}
	// A curve that never crosses.
	flat := []Point{{P: 0.01, PL: 0.5}, {P: 0.1, PL: 0.6}}
	if _, ok := PseudoThreshold(flat); ok {
		t.Error("crossing found in non-crossing curve")
	}
}

func TestAccuracyThreshold(t *testing.T) {
	// Synthetic curves PL_d(p) = (p/0.06)^d cross exactly at p = 0.06.
	var pts []Point
	for _, d := range []int{3, 5, 7} {
		for _, p := range []float64{0.02, 0.04, 0.05, 0.07, 0.09} {
			pts = append(pts, Point{D: d, P: p, PL: math.Pow(p/0.06, float64(d))})
		}
	}
	th, ok := AccuracyThreshold(pts)
	if !ok {
		t.Fatal("no accuracy threshold found")
	}
	if math.Abs(th-0.06) > 0.005 {
		t.Errorf("accuracy threshold = %v, want ~0.06", th)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Max != 0 {
		t.Error("empty summary wrong")
	}
	s = Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Max != 4 || math.Abs(s.Mean-2.5) > 1e-12 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.StdDev-math.Sqrt(1.25)) > 1e-12 {
		t.Errorf("stddev = %v", s.StdDev)
	}
}

func TestCurvesValidation(t *testing.T) {
	if _, err := Curves(CurveConfig{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := Curves(CurveConfig{Cycles: 10}); err == nil {
		t.Error("missing factories accepted")
	}
}

// End-to-end smoke: a small sweep with the greedy decoder produces
// monotone-ish curves and populated intervals, deterministically.
func TestCurvesEndToEnd(t *testing.T) {
	cfg := CurveConfig{
		Distances: []int{3, 5},
		Rates:     []float64{0.02, 0.1},
		Cycles:    1500,
		NewChannel: func(p float64) (noise.Channel, error) {
			return noise.NewDephasing(p)
		},
		NewDecoderZ: func(d int) decoder.Decoder { return greedy.New() },
		Seed:        3,
		Workers:     2,
	}
	pts, err := Curves(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("got %d points", len(pts))
	}
	byD := ByDistance(pts)
	for d, curve := range byD {
		if len(curve) != 2 {
			t.Fatalf("d=%d has %d points", d, len(curve))
		}
		var lo, hi Point
		for _, pt := range curve {
			if pt.P == 0.02 {
				lo = pt
			} else {
				hi = pt
			}
			if pt.Cycles != 1500 {
				t.Errorf("point ran %d cycles", pt.Cycles)
			}
			if pt.Hi < pt.PL || pt.Lo > pt.PL {
				t.Errorf("interval [%v,%v] excludes PL=%v", pt.Lo, pt.Hi, pt.PL)
			}
		}
		if lo.PL > hi.PL {
			t.Errorf("d=%d: PL(0.02)=%v > PL(0.1)=%v", d, lo.PL, hi.PL)
		}
	}
	// Determinism.
	pts2, err := Curves(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		if pts[i] != pts2[i] {
			t.Fatalf("sweep not deterministic at %d: %+v vs %+v", i, pts[i], pts2[i])
		}
	}
}

// The observer hook is wired through to SFQ decodes.
func TestCurvesObserver(t *testing.T) {
	got := 0
	cfg := CurveConfig{
		Distances: []int{3},
		Rates:     []float64{0.08},
		Cycles:    100,
		NewChannel: func(p float64) (noise.Channel, error) {
			return noise.NewDephasing(p)
		},
		NewDecoderZ: func(d int) decoder.Decoder {
			return sfq.New(lattice.MustNew(d).MatchingGraph(lattice.ZErrors), sfq.Final)
		},
		Seed:    9,
		Workers: 1,
		Observer: func(d int, p float64) func(lattice.ErrorType, sfq.Stats) {
			return func(e lattice.ErrorType, st sfq.Stats) { got++ }
		},
	}
	if _, err := Curves(cfg); err != nil {
		t.Fatal(err)
	}
	if got != 100 {
		t.Errorf("observer saw %d decodes, want 100", got)
	}
}

func TestPercentile(t *testing.T) {
	if Percentile(nil, 0.5) != 0 {
		t.Error("empty percentile nonzero")
	}
	s := []float64{4, 1, 3, 2}
	if got := Percentile(s, 0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if got := Percentile(s, 1); got != 4 {
		t.Errorf("p100 = %v", got)
	}
	if got := Percentile(s, 0.5); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("p50 = %v", got)
	}
	// Input must not be reordered.
	if s[0] != 4 {
		t.Error("Percentile mutated input")
	}
}

func TestCurvesPropagatesPointErrors(t *testing.T) {
	cfg := CurveConfig{
		Distances: []int{3},
		Rates:     []float64{2.0}, // invalid rate -> channel error
		Cycles:    10,
		NewChannel: func(p float64) (noise.Channel, error) {
			return noise.NewDephasing(p)
		},
		NewDecoderZ: func(d int) decoder.Decoder { return greedy.New() },
		Workers:     1,
	}
	if _, err := Curves(cfg); err == nil {
		t.Error("invalid rate did not surface")
	}
	cfg.Rates = []float64{0.05}
	cfg.Distances = []int{4} // invalid distance -> surface error
	if _, err := Curves(cfg); err == nil {
		t.Error("invalid distance did not surface")
	}
}

func TestCurvesWithDecoderX(t *testing.T) {
	cfg := CurveConfig{
		Distances: []int{3},
		Rates:     []float64{0.05},
		Cycles:    50,
		NewChannel: func(p float64) (noise.Channel, error) {
			return noise.NewDepolarizing(p)
		},
		NewDecoderZ: func(d int) decoder.Decoder { return greedy.New() },
		NewDecoderX: func(d int) decoder.Decoder { return greedy.New() },
		Seed:        1,
		Workers:     1,
	}
	pts, err := Curves(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 || pts[0].Cycles != 50 {
		t.Fatalf("points = %+v", pts)
	}
}

// Threshold finders must tolerate zero-PL points (log interpolation
// falls back to the bracketing sample).
func TestPseudoThresholdWithZeroPoints(t *testing.T) {
	curve := []Point{
		{D: 3, P: 0.01, PL: 0},
		{D: 3, P: 0.03, PL: 0},
		{D: 3, P: 0.06, PL: 0.08},
	}
	pth, ok := PseudoThreshold(curve)
	if !ok || pth != 0.06 {
		t.Errorf("pseudo-threshold = %v ok=%v, want 0.06", pth, ok)
	}
	// Zero-PL points inside curveCrossing are skipped without panic.
	pts := []Point{
		{D: 3, P: 0.01, PL: 0}, {D: 3, P: 0.05, PL: 0.02}, {D: 3, P: 0.08, PL: 0.2},
		{D: 5, P: 0.01, PL: 0}, {D: 5, P: 0.05, PL: 0.01}, {D: 5, P: 0.08, PL: 0.4},
	}
	if th, ok := AccuracyThreshold(pts); !ok || th < 0.05 || th > 0.08 {
		t.Errorf("accuracy threshold = %v ok=%v", th, ok)
	}
}

func TestFitC2InsufficientData(t *testing.T) {
	if _, _, err := FitC2([]Point{{D: 3, P: 0.01, PL: 0.001}}, 0.05); err == nil {
		t.Error("single-point fit accepted")
	}
}
