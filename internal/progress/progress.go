// Package progress renders a single-line live indicator for long
// Monte-Carlo sweeps, fed by the engine's per-checkpoint callbacks.
// The cmd harnesses wire it to stderr so tables on stdout stay clean.
package progress

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/mc"
)

// Printer accumulates engine progress and repaints one status line.
type Printer struct {
	mu     sync.Mutex
	out    io.Writer
	points int
	done   int
	trials map[int]int // per-point trials completed
	total  int64
}

// New returns a printer for a sweep of the given point count writing
// to out (conventionally os.Stderr).
func New(out io.Writer, points int) *Printer {
	return &Printer{out: out, points: points, trials: map[int]int{}}
}

// Observe consumes one engine progress report; pass it as the sweep's
// Progress callback. The engine already serializes callbacks, but
// Observe locks anyway so multiple engines may share a printer.
func (p *Printer) Observe(pr mc.Progress) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.total += int64(pr.Trials - p.trials[pr.Point])
	p.trials[pr.Point] = pr.Trials
	if pr.Done {
		p.done++
	}
	fmt.Fprintf(p.out, "\r%d/%d points, %s trials", p.done, p.points, siCount(p.total))
}

// Finish terminates the status line so subsequent output starts clean.
func (p *Printer) Finish() {
	p.mu.Lock()
	defer p.mu.Unlock()
	fmt.Fprintf(p.out, "\r%d/%d points, %s trials\n", p.done, p.points, siCount(p.total))
}

// siCount renders a count with an SI suffix (12.3k, 4.56M).
func siCount(n int64) string {
	switch {
	case n >= 1e9:
		return fmt.Sprintf("%.2fG", float64(n)/1e9)
	case n >= 1e6:
		return fmt.Sprintf("%.2fM", float64(n)/1e6)
	case n >= 1e3:
		return fmt.Sprintf("%.1fk", float64(n)/1e3)
	}
	return fmt.Sprintf("%d", n)
}
