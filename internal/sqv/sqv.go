// Package sqv implements the Simple Quantum Volume accounting of Fig. 1
// and §VIII "Effect on SQV": SQV = (number of computational qubits) ×
// (gates per qubit before failure). For a raw NISQ machine every qubit
// sustains 1/p gates; with approximate error correction a machine packs
// floor(N / (d² + (d−1)²)) logical qubits whose collective gate budget
// is 1/PL, with PL = c1·(p/pth)^(c2·d) from the Table V fits.
package sqv

import (
	"fmt"
	"math"
)

// Machine describes a physical device.
type Machine struct {
	PhysicalQubits int
	ErrorRate      float64 // physical error rate p
}

// DecoderFit is the logical-error model of one decoder, PL =
// C1·(p/Pth)^(C2·d).
type DecoderFit struct {
	Pth float64
	C1  float64
	C2  map[int]float64 // per-distance approximation factor (Table V)
}

// NISQPlusFit returns the paper's fit for the SFQ decoder: pth = 5%,
// c1 = 0.03 and the Table V c2 values.
func NISQPlusFit() DecoderFit {
	return DecoderFit{
		Pth: 0.05,
		C1:  0.03,
		C2:  map[int]float64{3: 0.650, 5: 0.429, 7: 0.306, 9: 0.323},
	}
}

// LogicalErrorRate evaluates the model at distance d, interpolating c2
// for distances outside the fitted table (nearest entry).
func (f DecoderFit) LogicalErrorRate(p float64, d int) (float64, error) {
	if p <= 0 || p >= f.Pth {
		return 0, fmt.Errorf("sqv: p=%v outside (0, pth=%v)", p, f.Pth)
	}
	c2, ok := f.C2[d]
	if !ok {
		best, diff := 0, math.MaxInt
		for k := range f.C2 {
			if dd := abs(k - d); dd < diff {
				best, diff = k, dd
			}
		}
		c2 = f.C2[best]
	}
	return f.C1 * math.Pow(p/f.Pth, c2*float64(d)), nil
}

// Plan is one SQV operating point of a machine.
type Plan struct {
	Distance      int
	LogicalQubits int
	LogicalError  float64
	GatesPerQubit float64
	SQV           float64
	BoostVsTarget float64 // SQV / the 10^5 NISQ target of Fig. 1
}

// NISQTargetSQV is the Fig. 1 reference: a 100-qubit NISQ machine
// executing ~1000 gates per qubit.
const NISQTargetSQV = 1e5

// QubitsPerLogical returns the physical data-qubit cost of one logical
// qubit at distance d.
func QubitsPerLogical(d int) int { return d*d + (d-1)*(d-1) }

// RawSQV is the machine's volume without error correction: every qubit
// sustains 1/p gates.
func (m Machine) RawSQV() float64 {
	return float64(m.PhysicalQubits) / m.ErrorRate
}

// PlanAt evaluates the machine encoded at code distance d under the
// decoder fit.
func (m Machine) PlanAt(f DecoderFit, d int) (Plan, error) {
	if d < 3 || d%2 == 0 {
		return Plan{}, fmt.Errorf("sqv: invalid distance %d", d)
	}
	nLog := m.PhysicalQubits / QubitsPerLogical(d)
	if nLog == 0 {
		return Plan{}, fmt.Errorf("sqv: machine too small for distance %d", d)
	}
	pl, err := f.LogicalErrorRate(m.ErrorRate, d)
	if err != nil {
		return Plan{}, err
	}
	// The machine-wide gate budget is 1/PL (a logical fault anywhere
	// ends the computation), spread across the logical qubits.
	sqv := 1 / pl
	return Plan{
		Distance:      d,
		LogicalQubits: nLog,
		LogicalError:  pl,
		GatesPerQubit: sqv / float64(nLog),
		SQV:           sqv,
		BoostVsTarget: sqv / NISQTargetSQV,
	}, nil
}

// Best scans the distances the fit actually covers (extrapolating the
// Table V c2 values beyond their fitted range is not meaningful) and
// returns the hostable plan maximizing SQV.
func (m Machine) Best(f DecoderFit) (Plan, error) {
	var best Plan
	found := false
	for d := range f.C2 {
		if m.PhysicalQubits/QubitsPerLogical(d) < 1 {
			continue
		}
		p, err := m.PlanAt(f, d)
		if err != nil {
			return Plan{}, err
		}
		if !found || p.SQV > best.SQV {
			best, found = p, true
		}
	}
	if !found {
		return Plan{}, fmt.Errorf("sqv: machine of %d qubits hosts no fitted distance", m.PhysicalQubits)
	}
	return best, nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
