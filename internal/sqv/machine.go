package sqv

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/decoder"
	"repro/internal/mc"
	"repro/internal/noise"
	"repro/internal/obs"
	"repro/internal/surface"
)

// MachineSim validates the Fig. 1 SQV accounting empirically: it holds
// K independent logical tiles (each a distance-d lifetime simulation)
// and counts cycles until any tile suffers a logical fault. The
// machine-wide gate budget is the expectation of that stopping time,
// which the analytic model predicts as 1/(K·PL).
type MachineSim struct {
	cfg  SimConfig
	sims []*surface.Simulator // resident tiles for the sequential API
}

// SimConfig configures the empirical machine.
type SimConfig struct {
	LogicalQubits int
	Distance      int
	P             float64 // physical dephasing rate
	NewDecoderZ   func(d int) decoder.Decoder
	Seed          int64
	// Workers bounds the Monte-Carlo engine parallelism of
	// MeanCyclesToFailure; 0 means GOMAXPROCS.
	Workers int
	// FreeDecoder, when non-nil, receives every decoder NewDecoderZ
	// built once the engine retires the shard owning it (pass
	// sfq.Pool.Release to recycle meshes). Must be safe for concurrent
	// use.
	FreeDecoder func(decoder.Decoder)
	// Obs, when non-nil, receives engine and tile telemetry (see
	// mc.Config.Obs and surface.Config.Obs).
	Obs *obs.Registry
}

// buildTiles constructs the K tile simulators. Seeds only matter for
// the sequential CyclesToFailure path; engine shards inject per-trial
// streams.
func (cfg SimConfig) buildTiles() ([]*surface.Simulator, error) {
	var sims []*surface.Simulator
	for k := 0; k < cfg.LogicalQubits; k++ {
		ch, err := noise.NewDephasing(cfg.P)
		if err != nil {
			return nil, err
		}
		sim, err := surface.New(surface.Config{
			Distance: cfg.Distance,
			Channel:  ch,
			DecoderZ: cfg.NewDecoderZ(cfg.Distance),
			Seed:     cfg.Seed + int64(k)*7919,
			Obs:      cfg.Obs,
		})
		if err != nil {
			return nil, err
		}
		sims = append(sims, sim)
	}
	return sims, nil
}

// NewMachineSim builds the tile simulators.
func NewMachineSim(cfg SimConfig) (*MachineSim, error) {
	if cfg.LogicalQubits < 1 {
		return nil, fmt.Errorf("sqv: need at least one logical qubit, got %d", cfg.LogicalQubits)
	}
	if cfg.NewDecoderZ == nil {
		return nil, fmt.Errorf("sqv: NewDecoderZ is required")
	}
	sims, err := cfg.buildTiles()
	if err != nil {
		return nil, err
	}
	return &MachineSim{cfg: cfg, sims: sims}, nil
}

// CyclesToFailure advances every tile one syndrome cycle at a time
// until some tile flips its logical state, and returns the cycle count
// (capped at maxCycles, in which case ok is false).
func (m *MachineSim) CyclesToFailure(maxCycles int) (cycles int, ok bool, err error) {
	c, failed, err := runToFailure(m.sims, maxCycles)
	return c, failed, err
}

// runToFailure is the shared stopping-time loop: advance the tiles
// round-robin one cycle each until any tile fails or maxCycles pass.
func runToFailure(sims []*surface.Simulator, maxCycles int) (cycles int, failed bool, err error) {
	for cycles = 1; cycles <= maxCycles; cycles++ {
		for _, sim := range sims {
			res, err := sim.Run(1)
			if err != nil {
				return cycles, false, err
			}
			if res.LogicalErrors > 0 {
				return cycles, true, nil
			}
		}
	}
	return maxCycles, false, nil
}

// machineShard holds one private copy of the K-tile machine for the
// Monte-Carlo engine. Each trial replays the stopping-time experiment
// from clean frames on the trial's stream.
type machineShard struct {
	sims      []*surface.Simulator
	maxCycles int
}

// Trial implements mc.Shard: Aux carries the cycles-to-failure count
// and Failed marks trials that actually failed within the cap.
func (sh *machineShard) Trial(rng *rand.Rand, _ int) (mc.Outcome, error) {
	for _, sim := range sh.sims {
		sim.Reset()
		sim.SetRand(rng) // tiles consume the trial stream round-robin
	}
	cycles, failed, err := runToFailure(sh.sims, sh.maxCycles)
	if err != nil {
		return mc.Outcome{}, err
	}
	return mc.Outcome{Failed: failed, Aux: int64(cycles)}, nil
}

// MeanCyclesToFailure repeats the stopping-time experiment and
// averages. Trials run sharded on the Monte-Carlo engine: each trial's
// randomness is a pure function of (Seed, machine parameters, trial
// index), so the mean is bit-identical for any worker count.
func (m *MachineSim) MeanCyclesToFailure(trials, maxCycles int) (float64, error) {
	return m.MeanCyclesToFailureContext(context.Background(), trials, maxCycles)
}

// MeanCyclesToFailureContext is MeanCyclesToFailure with cancellation.
func (m *MachineSim) MeanCyclesToFailureContext(ctx context.Context, trials, maxCycles int) (float64, error) {
	if trials < 1 {
		return 0, fmt.Errorf("sqv: need at least one trial")
	}
	spec := mc.PointSpec{
		ID: mc.DeriveID(uint64(m.cfg.Distance), uint64(m.cfg.LogicalQubits),
			math.Float64bits(m.cfg.P)),
		Trials: trials,
		NewShard: func() (mc.Shard, error) {
			sims, err := m.cfg.buildTiles()
			if err != nil {
				return nil, err
			}
			return &machineShard{sims: sims, maxCycles: maxCycles}, nil
		},
	}
	if m.cfg.FreeDecoder != nil {
		spec.Release = func(sh mc.Shard) {
			ms, ok := sh.(*machineShard)
			if !ok {
				return
			}
			for _, sim := range ms.sims {
				for _, dec := range sim.Decoders() {
					m.cfg.FreeDecoder(dec)
				}
			}
		}
	}
	results, err := mc.Run(ctx, mc.Config{
		RootSeed: m.cfg.Seed,
		Workers:  m.cfg.Workers,
		Obs:      m.cfg.Obs,
	}, []mc.PointSpec{spec})
	if err != nil {
		return 0, err
	}
	return float64(results[0].Aux) / float64(trials), nil
}
