package sqv

import (
	"fmt"

	"repro/internal/decoder"
	"repro/internal/noise"
	"repro/internal/surface"
)

// MachineSim validates the Fig. 1 SQV accounting empirically: it holds
// K independent logical tiles (each a distance-d lifetime simulation)
// and counts cycles until any tile suffers a logical fault. The
// machine-wide gate budget is the expectation of that stopping time,
// which the analytic model predicts as 1/(K·PL).
type MachineSim struct {
	sims []*surface.Simulator
}

// SimConfig configures the empirical machine.
type SimConfig struct {
	LogicalQubits int
	Distance      int
	P             float64 // physical dephasing rate
	NewDecoderZ   func(d int) decoder.Decoder
	Seed          int64
}

// NewMachineSim builds the tile simulators.
func NewMachineSim(cfg SimConfig) (*MachineSim, error) {
	if cfg.LogicalQubits < 1 {
		return nil, fmt.Errorf("sqv: need at least one logical qubit, got %d", cfg.LogicalQubits)
	}
	if cfg.NewDecoderZ == nil {
		return nil, fmt.Errorf("sqv: NewDecoderZ is required")
	}
	m := &MachineSim{}
	for k := 0; k < cfg.LogicalQubits; k++ {
		ch, err := noise.NewDephasing(cfg.P)
		if err != nil {
			return nil, err
		}
		sim, err := surface.New(surface.Config{
			Distance: cfg.Distance,
			Channel:  ch,
			DecoderZ: cfg.NewDecoderZ(cfg.Distance),
			Seed:     cfg.Seed + int64(k)*7919,
		})
		if err != nil {
			return nil, err
		}
		m.sims = append(m.sims, sim)
	}
	return m, nil
}

// CyclesToFailure advances every tile one syndrome cycle at a time
// until some tile flips its logical state, and returns the cycle count
// (capped at maxCycles, in which case ok is false).
func (m *MachineSim) CyclesToFailure(maxCycles int) (cycles int, ok bool, err error) {
	for cycles = 1; cycles <= maxCycles; cycles++ {
		for _, sim := range m.sims {
			res, err := sim.Run(1)
			if err != nil {
				return cycles, false, err
			}
			if res.LogicalErrors > 0 {
				return cycles, true, nil
			}
		}
	}
	return maxCycles, false, nil
}

// MeanCyclesToFailure repeats the stopping-time experiment and averages.
// Tiles keep their residual state across trials, which is fine: each
// trial starts from a stabilizer-trivial frame.
func (m *MachineSim) MeanCyclesToFailure(trials, maxCycles int) (float64, error) {
	if trials < 1 {
		return 0, fmt.Errorf("sqv: need at least one trial")
	}
	total := 0.0
	for t := 0; t < trials; t++ {
		c, _, err := m.CyclesToFailure(maxCycles)
		if err != nil {
			return 0, err
		}
		total += float64(c)
	}
	return total / float64(trials), nil
}
