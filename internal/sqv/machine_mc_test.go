package sqv

import (
	"context"
	"testing"

	"repro/internal/decoder"
	"repro/internal/decoder/greedy"
)

// The machine simulation is bit-identical for any worker count — the
// cross-worker determinism contract of the shared engine.
func TestMeanCyclesWorkerInvariance(t *testing.T) {
	run := func(workers int) float64 {
		m, err := NewMachineSim(SimConfig{
			LogicalQubits: 2, Distance: 3, P: 0.06,
			NewDecoderZ: func(d int) decoder.Decoder { return greedy.New() },
			Seed:        11, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		v, err := m.MeanCyclesToFailureContext(context.Background(), 300, 2000)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	ref := run(1)
	for _, w := range []int{2, 4} {
		if got := run(w); got != ref {
			t.Errorf("workers=%d: mean %v, want %v", w, got, ref)
		}
	}
}
