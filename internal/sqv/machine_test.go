package sqv

import (
	"testing"

	"repro/internal/decoder"
	"repro/internal/decoder/greedy"
)

func TestMachineSimValidation(t *testing.T) {
	mk := func(d int) decoder.Decoder { return greedy.New() }
	if _, err := NewMachineSim(SimConfig{LogicalQubits: 0, Distance: 3, P: 0.05, NewDecoderZ: mk}); err == nil {
		t.Error("zero qubits accepted")
	}
	if _, err := NewMachineSim(SimConfig{LogicalQubits: 1, Distance: 3, P: 0.05}); err == nil {
		t.Error("nil decoder factory accepted")
	}
	if _, err := NewMachineSim(SimConfig{LogicalQubits: 1, Distance: 4, P: 0.05, NewDecoderZ: mk}); err == nil {
		t.Error("even distance accepted")
	}
	m, err := NewMachineSim(SimConfig{LogicalQubits: 1, Distance: 3, P: 0.05, NewDecoderZ: mk})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.MeanCyclesToFailure(0, 10); err == nil {
		t.Error("zero trials accepted")
	}
}

// The analytic claim behind Fig. 1: a K-tile machine's gate budget
// scales like 1/K — doubling the logical qubits roughly halves the
// cycles to first failure.
func TestBudgetScalesInverselyWithTiles(t *testing.T) {
	mk := func(d int) decoder.Decoder { return greedy.New() }
	mean := func(k int, seed int64) float64 {
		m, err := NewMachineSim(SimConfig{
			LogicalQubits: k, Distance: 3, P: 0.06, NewDecoderZ: mk, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		v, err := m.MeanCyclesToFailure(120, 4000)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	one := mean(1, 5)
	four := mean(4, 6)
	ratio := one / four
	if ratio < 2 || ratio > 8 {
		t.Errorf("1-tile/4-tile budget ratio %.2f, want ~4", ratio)
	}
}

// Capped runs report ok=false and the cap.
func TestCyclesToFailureCap(t *testing.T) {
	mk := func(d int) decoder.Decoder { return greedy.New() }
	m, err := NewMachineSim(SimConfig{
		LogicalQubits: 1, Distance: 5, P: 0.001, NewDecoderZ: mk, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	c, ok, err := m.CyclesToFailure(50)
	if err != nil {
		t.Fatal(err)
	}
	if ok || c != 50 {
		t.Errorf("cap not honored: c=%d ok=%v", c, ok)
	}
}
