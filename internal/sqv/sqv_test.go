package sqv

import (
	"math"
	"testing"
)

func TestQubitsPerLogical(t *testing.T) {
	if QubitsPerLogical(3) != 13 || QubitsPerLogical(5) != 41 || QubitsPerLogical(9) != 145 {
		t.Error("logical qubit cost wrong")
	}
}

func TestRawSQV(t *testing.T) {
	m := Machine{PhysicalQubits: 1024, ErrorRate: 1e-5}
	// Fig. 1: ~10^8 for the raw machine.
	if got := m.RawSQV(); math.Abs(math.Log10(got)-8) > 0.1 {
		t.Errorf("raw SQV = %g, want ~1e8", got)
	}
}

func TestLogicalErrorRateValidation(t *testing.T) {
	f := NISQPlusFit()
	if _, err := f.LogicalErrorRate(0.06, 3); err == nil {
		t.Error("p above threshold accepted")
	}
	if _, err := f.LogicalErrorRate(0, 3); err == nil {
		t.Error("p=0 accepted")
	}
	// Unknown distance falls back to the nearest fitted c2.
	pl11, err := f.LogicalErrorRate(1e-5, 11)
	if err != nil {
		t.Fatal(err)
	}
	pl9, _ := f.LogicalErrorRate(1e-5, 9)
	if pl11 >= pl9 {
		t.Errorf("PL(d=11)=%g not below PL(d=9)=%g", pl11, pl9)
	}
}

// The Fig. 1 headline numbers: a 1,024-qubit machine at p = 1e-5 packs
// 78 logical qubits at d = 3 and 40 at d = 5 (paper uses 1024/25 with
// margin — our packing is data-qubit based), with SQV boosts in the
// thousands.
func TestFig1Reproduction(t *testing.T) {
	m := Machine{PhysicalQubits: 1024, ErrorRate: 1e-5}
	f := NISQPlusFit()

	p3, err := m.PlanAt(f, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p3.LogicalQubits != 78 {
		t.Errorf("d=3 logical qubits = %d, paper says 78", p3.LogicalQubits)
	}
	// Paper: PL = 2.94e-9, SQV = 3.4e8, boost 3402. Same order required.
	if math.Abs(math.Log10(p3.LogicalError)-math.Log10(2.94e-9)) > 0.5 {
		t.Errorf("d=3 PL = %g, paper says 2.94e-9", p3.LogicalError)
	}
	if p3.BoostVsTarget < 1000 || p3.BoostVsTarget > 20000 {
		t.Errorf("d=3 boost = %v, paper says 3402", p3.BoostVsTarget)
	}

	p5, err := m.PlanAt(f, 5)
	if err != nil {
		t.Fatal(err)
	}
	if p5.LogicalQubits != 24 { // 1024/41: stricter packing than the paper's 40
		t.Errorf("d=5 logical qubits = %d", p5.LogicalQubits)
	}
	if math.Abs(math.Log10(p5.LogicalError)-math.Log10(8.96e-10)) > 0.8 {
		t.Errorf("d=5 PL = %g, paper says 8.96e-10", p5.LogicalError)
	}
	if p5.SQV <= p3.SQV {
		t.Errorf("d=5 SQV %g not above d=3 %g", p5.SQV, p3.SQV)
	}
	// SQV = qubits x gates/qubit by construction.
	if math.Abs(p5.SQV-float64(p5.LogicalQubits)*p5.GatesPerQubit) > p5.SQV*1e-9 {
		t.Error("SQV identity violated")
	}
}

func TestPlanValidation(t *testing.T) {
	m := Machine{PhysicalQubits: 1024, ErrorRate: 1e-5}
	f := NISQPlusFit()
	if _, err := m.PlanAt(f, 4); err == nil {
		t.Error("even distance accepted")
	}
	small := Machine{PhysicalQubits: 10, ErrorRate: 1e-5}
	if _, err := small.PlanAt(f, 3); err == nil {
		t.Error("machine too small accepted")
	}
}

func TestBestPicksMaxSQV(t *testing.T) {
	m := Machine{PhysicalQubits: 1024, ErrorRate: 1e-5}
	f := NISQPlusFit()
	best, err := m.Best(f)
	if err != nil {
		t.Fatal(err)
	}
	for d := range f.C2 {
		if m.PhysicalQubits/QubitsPerLogical(d) < 1 {
			continue
		}
		p, err := m.PlanAt(f, d)
		if err != nil {
			t.Fatal(err)
		}
		if p.SQV > best.SQV {
			t.Errorf("Best missed d=%d with SQV %g > %g", d, p.SQV, best.SQV)
		}
	}
	tiny := Machine{PhysicalQubits: 5, ErrorRate: 1e-5}
	if _, err := tiny.Best(f); err == nil {
		t.Error("tiny machine accepted")
	}
}
