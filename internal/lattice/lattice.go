// Package lattice implements the planar surface-code geometry the NISQ+
// decoder operates on.
//
// The code of distance d lives on a (2d−1)×(2d−1) grid of sites. Sites
// whose row+column parity is even hold data qubits (d² + (d−1)² of them);
// odd-parity sites hold ancilla qubits (2d(d−1) of them), split into
// X-type ancillas (even row, odd column — they detect phase flips) and
// Z-type ancillas (odd row, even column — they detect bit flips). At
// d = 9 this gives the 289 physical qubits quoted in §VIII of the paper.
//
// Beyond site classification the package exposes the *matching graph*
// abstraction every decoder consumes: check (ancilla) coordinates,
// pairwise Manhattan distances, distances to the two relevant code
// boundaries, and the data-qubit chains realizing those distances.
package lattice

import "fmt"

// Kind classifies a lattice site.
type Kind uint8

const (
	// Data marks a site holding a data qubit.
	Data Kind = iota
	// AncillaX marks a site holding an X-stabilizer ancilla qubit
	// (detects Z errors on its data neighbours).
	AncillaX
	// AncillaZ marks a site holding a Z-stabilizer ancilla qubit
	// (detects X errors on its data neighbours).
	AncillaZ
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Data:
		return "data"
	case AncillaX:
		return "ancilla-X"
	case AncillaZ:
		return "ancilla-Z"
	}
	return "invalid"
}

// ErrorType selects which Pauli error component a decoder is correcting.
type ErrorType uint8

const (
	// ZErrors are phase flips, detected by X-type ancillas.
	ZErrors ErrorType = iota
	// XErrors are bit flips, detected by Z-type ancillas.
	XErrors
)

// String names the error type.
func (e ErrorType) String() string {
	if e == ZErrors {
		return "Z"
	}
	return "X"
}

// Site is a lattice position: Row and Col each range over [0, 2d−2].
type Site struct {
	Row, Col int
}

// Lattice is the distance-d planar surface code layout.
type Lattice struct {
	d    int
	size int // 2d−1

	data []Site // data-qubit sites in row-major order
	ancX []Site // X-ancilla sites in row-major order
	ancZ []Site // Z-ancilla sites in row-major order

	ancXIndex map[Site]int // site -> index into ancX
	ancZIndex map[Site]int // site -> index into ancZ
}

// New constructs the distance-d lattice. Distance must be an odd integer
// of at least 3 (even distances do not tile the planar layout used here).
func New(d int) (*Lattice, error) {
	if d < 3 || d%2 == 0 {
		return nil, fmt.Errorf("lattice: distance must be odd and >= 3, got %d", d)
	}
	l := &Lattice{
		d:         d,
		size:      2*d - 1,
		ancXIndex: make(map[Site]int),
		ancZIndex: make(map[Site]int),
	}
	for r := 0; r < l.size; r++ {
		for c := 0; c < l.size; c++ {
			s := Site{r, c}
			switch l.KindAt(s) {
			case Data:
				l.data = append(l.data, s)
			case AncillaX:
				l.ancXIndex[s] = len(l.ancX)
				l.ancX = append(l.ancX, s)
			case AncillaZ:
				l.ancZIndex[s] = len(l.ancZ)
				l.ancZ = append(l.ancZ, s)
			}
		}
	}
	return l, nil
}

// MustNew is New but panics on invalid distance; for tests and examples.
func MustNew(d int) *Lattice {
	l, err := New(d)
	if err != nil {
		panic(err)
	}
	return l
}

// Distance returns the code distance d.
func (l *Lattice) Distance() int { return l.d }

// Size returns the grid side length 2d−1.
func (l *Lattice) Size() int { return l.size }

// NumQubits returns the total number of physical qubits (2d−1)².
func (l *Lattice) NumQubits() int { return l.size * l.size }

// NumData returns the number of data qubits, d² + (d−1)².
func (l *Lattice) NumData() int { return len(l.data) }

// NumAncillas returns the number of ancilla qubits, 2d(d−1).
func (l *Lattice) NumAncillas() int { return len(l.ancX) + len(l.ancZ) }

// KindAt classifies the site s.
func (l *Lattice) KindAt(s Site) Kind {
	if (s.Row+s.Col)%2 == 0 {
		return Data
	}
	if s.Row%2 == 0 {
		return AncillaX
	}
	return AncillaZ
}

// InBounds reports whether the site lies on the grid.
func (l *Lattice) InBounds(s Site) bool {
	return s.Row >= 0 && s.Row < l.size && s.Col >= 0 && s.Col < l.size
}

// QubitIndex maps a site to its dense physical-qubit index, row-major
// over the full grid. Every site — data or ancilla — has an index, so a
// pauli.Frame of length NumQubits() covers the whole device.
func (l *Lattice) QubitIndex(s Site) int { return s.Row*l.size + s.Col }

// SiteOf inverts QubitIndex.
func (l *Lattice) SiteOf(q int) Site { return Site{q / l.size, q % l.size} }

// DataSites returns all data-qubit sites in row-major order. The returned
// slice is shared; callers must not mutate it.
func (l *Lattice) DataSites() []Site { return l.data }

// AncillaSites returns the ancilla sites detecting the given error type,
// in row-major order. The returned slice is shared; do not mutate.
func (l *Lattice) AncillaSites(e ErrorType) []Site {
	if e == ZErrors {
		return l.ancX
	}
	return l.ancZ
}

// StabilizerSupport returns the physical-qubit indices of the data
// neighbours of the ancilla at site s (2 on an edge of the grid, 4 in
// the bulk). It panics if s is not an ancilla site.
func (l *Lattice) StabilizerSupport(s Site) []int {
	if l.KindAt(s) == Data {
		panic(fmt.Sprintf("lattice: %v is a data site", s))
	}
	var sup []int
	for _, n := range []Site{{s.Row - 1, s.Col}, {s.Row + 1, s.Col}, {s.Row, s.Col - 1}, {s.Row, s.Col + 1}} {
		if l.InBounds(n) {
			sup = append(sup, l.QubitIndex(n))
		}
	}
	return sup
}

// LogicalSupport returns the data-qubit indices of the logical operator
// associated with the error type: for ZErrors the logical-Z chain (data
// qubits of row 0, running left boundary to right boundary), for XErrors
// the logical-X chain (data qubits of column 0, top to bottom). The
// returned chain has exactly d qubits.
func (l *Lattice) LogicalSupport(e ErrorType) []int {
	sup := make([]int, 0, l.d)
	for i := 0; i < l.size; i += 2 {
		if e == ZErrors {
			sup = append(sup, l.QubitIndex(Site{0, i}))
		} else {
			sup = append(sup, l.QubitIndex(Site{i, 0}))
		}
	}
	return sup
}

// LogicalCutSupport returns the data-qubit indices a residual error of
// the given type is tested against to detect a logical flip: an
// undetectable Z-error chain is a logical error iff it overlaps the
// logical-X chain (column 0) an odd number of times, and symmetrically
// for X errors against row 0.
func (l *Lattice) LogicalCutSupport(e ErrorType) []int {
	if e == ZErrors {
		return l.LogicalSupport(XErrors)
	}
	return l.LogicalSupport(ZErrors)
}
