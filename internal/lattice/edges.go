package lattice

// Edge is one edge of the decoding graph: a data qubit whose error of the
// graph's type flips the checks at its endpoints. C2 == Boundary marks a
// boundary edge (the data qubit sits on a code boundary and flips only
// one check).
type Edge struct {
	Q      int // data-qubit index
	C1, C2 int // check indices; C2 may be Boundary
}

// Boundary is the pseudo-check index used for boundary edges.
const Boundary = -1

// DecodingEdges enumerates the decoding-graph edges for the error type:
// exactly one edge per data qubit. Union-find style decoders operate
// directly on this edge list.
func (g *Graph) DecodingEdges() []Edge {
	edges := make([]Edge, 0, g.l.NumData())
	for _, s := range g.l.DataSites() {
		var checks []int
		for _, n := range []Site{{s.Row - 1, s.Col}, {s.Row + 1, s.Col}, {s.Row, s.Col - 1}, {s.Row, s.Col + 1}} {
			if !g.l.InBounds(n) {
				continue
			}
			if i, ok := g.index[n]; ok {
				checks = append(checks, i)
			}
		}
		e := Edge{Q: g.l.QubitIndex(s), C1: Boundary, C2: Boundary}
		switch len(checks) {
		case 1:
			e.C1 = checks[0]
		case 2:
			e.C1, e.C2 = checks[0], checks[1]
		}
		edges = append(edges, e)
	}
	return edges
}
