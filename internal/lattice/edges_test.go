package lattice

import (
	"testing"

	"repro/internal/pauli"
)

// DecodingEdges must produce exactly one edge per data qubit, with
// endpoints matching the qubit's syndrome footprint: two checks for
// bulk qubits, one check plus Boundary for code-edge qubits.
func TestDecodingEdges(t *testing.T) {
	for _, d := range []int{3, 5, 7} {
		l := MustNew(d)
		for _, e := range []ErrorType{ZErrors, XErrors} {
			g := l.MatchingGraph(e)
			op := pauli.Z
			if e == XErrors {
				op = pauli.X
			}
			edges := g.DecodingEdges()
			if len(edges) != l.NumData() {
				t.Fatalf("d=%d %v: %d edges, want %d", d, e, len(edges), l.NumData())
			}
			seen := map[int]bool{}
			for _, edge := range edges {
				if seen[edge.Q] {
					t.Fatalf("d=%d %v: duplicate edge for qubit %d", d, e, edge.Q)
				}
				seen[edge.Q] = true
				f := pauli.NewFrame(l.NumQubits())
				f.Set(edge.Q, op)
				hot := HotChecks(g.Syndrome(f))
				var want []int
				if edge.C1 != Boundary {
					want = append(want, edge.C1)
				}
				if edge.C2 != Boundary {
					want = append(want, edge.C2)
				}
				if len(hot) != len(want) {
					t.Fatalf("d=%d %v qubit %d: edge endpoints %v, syndrome %v", d, e, edge.Q, want, hot)
				}
				for _, h := range hot {
					if h != edge.C1 && h != edge.C2 {
						t.Fatalf("d=%d %v qubit %d: check %d not an endpoint", d, e, edge.Q, h)
					}
				}
			}
		}
	}
}

func TestDistanceAccessor(t *testing.T) {
	if MustNew(7).Distance() != 7 {
		t.Error("Distance accessor wrong")
	}
}
