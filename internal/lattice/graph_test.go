package lattice

import (
	"math/rand"
	"testing"

	"repro/internal/pauli"
)

func TestGraphCheckIndexing(t *testing.T) {
	l := MustNew(5)
	for _, e := range []ErrorType{ZErrors, XErrors} {
		g := l.MatchingGraph(e)
		if g.NumChecks() != l.d*(l.d-1) {
			t.Errorf("%v NumChecks=%d want %d", e, g.NumChecks(), l.d*(l.d-1))
		}
		for i := 0; i < g.NumChecks(); i++ {
			j, ok := g.CheckIndex(g.CheckSite(i))
			if !ok || j != i {
				t.Fatalf("%v check index round trip failed at %d", e, i)
			}
		}
		if _, ok := g.CheckIndex(Site{0, 0}); ok {
			t.Errorf("%v data site has a check index", e)
		}
		if g.ErrorType() != e || g.Lattice() != l {
			t.Errorf("%v accessors wrong", e)
		}
	}
}

func TestDistExamples(t *testing.T) {
	l := MustNew(5)
	g := l.MatchingGraph(ZErrors)
	// Two X ancillas on row 0: (0,1) and (0,3) share data (0,2).
	i, _ := g.CheckIndex(Site{0, 1})
	j, _ := g.CheckIndex(Site{0, 3})
	if got := g.Dist(i, j); got != 1 {
		t.Errorf("same-row adjacent dist=%d want 1", got)
	}
	// Vertically adjacent: (0,1) and (2,1) share data (1,1).
	k, _ := g.CheckIndex(Site{2, 1})
	if got := g.Dist(i, k); got != 1 {
		t.Errorf("same-col adjacent dist=%d want 1", got)
	}
	// Diagonal: (0,1) to (2,3) needs two data errors.
	m, _ := g.CheckIndex(Site{2, 3})
	if got := g.Dist(i, m); got != 2 {
		t.Errorf("diagonal dist=%d want 2", got)
	}
	if g.Dist(i, i) != 0 {
		t.Error("self distance nonzero")
	}
}

func TestBoundaryDist(t *testing.T) {
	l := MustNew(5) // size 9, columns 0..8
	g := l.MatchingGraph(ZErrors)
	cases := []struct {
		s Site
		d int
	}{
		{Site{0, 1}, 1}, // one step to left boundary
		{Site{0, 7}, 1}, // one step to right boundary
		{Site{0, 3}, 2},
		{Site{0, 5}, 2},
	}
	for _, c := range cases {
		i, ok := g.CheckIndex(c.s)
		if !ok {
			t.Fatalf("no check at %v", c.s)
		}
		if got := g.BoundaryDist(i); got != c.d {
			t.Errorf("BoundaryDist(%v)=%d want %d", c.s, got, c.d)
		}
	}
}

// Property: Dist is a metric (symmetric, zero iff equal, triangle
// inequality) on random check pairs.
func TestDistMetricProperties(t *testing.T) {
	l := MustNew(7)
	rng := rand.New(rand.NewSource(3))
	for _, e := range []ErrorType{ZErrors, XErrors} {
		g := l.MatchingGraph(e)
		n := g.NumChecks()
		for trial := 0; trial < 500; trial++ {
			i, j, k := rng.Intn(n), rng.Intn(n), rng.Intn(n)
			if g.Dist(i, j) != g.Dist(j, i) {
				t.Fatalf("%v Dist not symmetric at %d,%d", e, i, j)
			}
			if (g.Dist(i, j) == 0) != (i == j) {
				t.Fatalf("%v Dist zero mismatch at %d,%d", e, i, j)
			}
			if g.Dist(i, k) > g.Dist(i, j)+g.Dist(j, k) {
				t.Fatalf("%v triangle inequality violated at %d,%d,%d", e, i, j, k)
			}
		}
	}
}

// Property: the chain returned by PathQubits has exactly Dist(i,j) data
// qubits and, applied as an error, produces hot syndromes exactly at
// checks i and j.
func TestPathQubitsRealizesSyndrome(t *testing.T) {
	for _, d := range []int{3, 5, 7} {
		l := MustNew(d)
		rng := rand.New(rand.NewSource(int64(d)))
		for _, e := range []ErrorType{ZErrors, XErrors} {
			g := l.MatchingGraph(e)
			op := pauli.Z
			if e == XErrors {
				op = pauli.X
			}
			n := g.NumChecks()
			for trial := 0; trial < 100; trial++ {
				i, j := rng.Intn(n), rng.Intn(n)
				if i == j {
					continue
				}
				path := g.PathQubits(i, j)
				if len(path) != g.Dist(i, j) {
					t.Fatalf("d=%d %v path length %d != dist %d", d, e, len(path), g.Dist(i, j))
				}
				f := pauli.NewFrame(l.NumQubits())
				for _, q := range path {
					if l.KindAt(l.SiteOf(q)) != Data {
						t.Fatalf("d=%d %v path contains non-data qubit", d, e)
					}
					f.Apply(q, op)
				}
				syn := g.Syndrome(f)
				for c, hot := range syn {
					want := c == i || c == j
					if hot != want {
						t.Fatalf("d=%d %v chain %d-%d: check %d hot=%v want %v", d, e, i, j, c, hot, want)
					}
				}
			}
		}
	}
}

// Property: the boundary chain has exactly BoundaryDist(i) qubits and
// lights up only check i.
func TestBoundaryPathRealizesSyndrome(t *testing.T) {
	for _, d := range []int{3, 5} {
		l := MustNew(d)
		for _, e := range []ErrorType{ZErrors, XErrors} {
			g := l.MatchingGraph(e)
			op := pauli.Z
			if e == XErrors {
				op = pauli.X
			}
			for i := 0; i < g.NumChecks(); i++ {
				path := g.BoundaryPathQubits(i)
				if len(path) != g.BoundaryDist(i) {
					t.Fatalf("d=%d %v boundary path length %d != dist %d", d, e, len(path), g.BoundaryDist(i))
				}
				f := pauli.NewFrame(l.NumQubits())
				for _, q := range path {
					f.Apply(q, op)
				}
				for c, hot := range g.Syndrome(f) {
					if hot != (c == i) {
						t.Fatalf("d=%d %v boundary chain of %d: check %d hot=%v", d, e, i, c, hot)
					}
				}
			}
		}
	}
}

func TestSyndromePanicsOnSizeMismatch(t *testing.T) {
	l := MustNew(3)
	g := l.MatchingGraph(ZErrors)
	defer func() {
		if recover() == nil {
			t.Error("Syndrome accepted wrong-size frame")
		}
	}()
	g.Syndrome(pauli.NewFrame(4))
}

func TestHotChecks(t *testing.T) {
	got := HotChecks([]bool{false, true, true, false, true})
	want := []int{1, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("HotChecks=%v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("HotChecks=%v want %v", got, want)
		}
	}
	if HotChecks(nil) != nil {
		t.Error("HotChecks(nil) != nil")
	}
}

// A single data-qubit error must light exactly its adjacent checks
// (Fig. 2 of the paper).
func TestSingleErrorSyndromes(t *testing.T) {
	l := MustNew(5)
	for _, e := range []ErrorType{ZErrors, XErrors} {
		g := l.MatchingGraph(e)
		op := pauli.Z
		if e == XErrors {
			op = pauli.X
		}
		for _, s := range l.DataSites() {
			f := pauli.NewFrame(l.NumQubits())
			f.Set(l.QubitIndex(s), op)
			hot := HotChecks(g.Syndrome(f))
			if len(hot) < 1 || len(hot) > 2 {
				t.Fatalf("%v single error at %v lights %d checks", e, s, len(hot))
			}
			for _, c := range hot {
				cs := g.CheckSite(c)
				if abs(cs.Row-s.Row)+abs(cs.Col-s.Col) != 1 {
					t.Fatalf("%v error at %v lit non-adjacent check at %v", e, s, cs)
				}
			}
		}
	}
}
