package lattice

import (
	"testing"

	"repro/internal/pauli"
)

func TestNewValidation(t *testing.T) {
	for _, d := range []int{0, 1, 2, 4, 8} {
		if _, err := New(d); err == nil {
			t.Errorf("New(%d) accepted invalid distance", d)
		}
	}
	for _, d := range []int{3, 5, 7, 9} {
		if _, err := New(d); err != nil {
			t.Errorf("New(%d) failed: %v", d, err)
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew(2) did not panic")
		}
	}()
	MustNew(2)
}

func TestCounts(t *testing.T) {
	for _, d := range []int{3, 5, 7, 9} {
		l := MustNew(d)
		if got, want := l.Size(), 2*d-1; got != want {
			t.Errorf("d=%d Size=%d want %d", d, got, want)
		}
		if got, want := l.NumQubits(), (2*d-1)*(2*d-1); got != want {
			t.Errorf("d=%d NumQubits=%d want %d", d, got, want)
		}
		if got, want := l.NumData(), d*d+(d-1)*(d-1); got != want {
			t.Errorf("d=%d NumData=%d want %d", d, got, want)
		}
		if got, want := l.NumAncillas(), 2*d*(d-1); got != want {
			t.Errorf("d=%d NumAncillas=%d want %d", d, got, want)
		}
		if l.NumData()+l.NumAncillas() != l.NumQubits() {
			t.Errorf("d=%d qubit partition does not cover grid", d)
		}
	}
	// The paper's headline count: 289 qubits at d=9.
	if got := MustNew(9).NumQubits(); got != 289 {
		t.Errorf("d=9 NumQubits=%d, paper says 289", got)
	}
}

func TestKindAt(t *testing.T) {
	l := MustNew(3)
	cases := []struct {
		s Site
		k Kind
	}{
		{Site{0, 0}, Data},
		{Site{0, 1}, AncillaX},
		{Site{1, 0}, AncillaZ},
		{Site{1, 1}, Data},
		{Site{2, 3}, AncillaX},
		{Site{3, 2}, AncillaZ},
	}
	for _, c := range cases {
		if got := l.KindAt(c.s); got != c.k {
			t.Errorf("KindAt(%v)=%v want %v", c.s, got, c.k)
		}
	}
}

func TestKindStrings(t *testing.T) {
	if Data.String() != "data" || AncillaX.String() != "ancilla-X" || AncillaZ.String() != "ancilla-Z" {
		t.Error("Kind strings wrong")
	}
	if Kind(9).String() != "invalid" {
		t.Error("invalid Kind string wrong")
	}
	if ZErrors.String() != "Z" || XErrors.String() != "X" {
		t.Error("ErrorType strings wrong")
	}
}

func TestQubitIndexRoundTrip(t *testing.T) {
	l := MustNew(5)
	for q := 0; q < l.NumQubits(); q++ {
		if got := l.QubitIndex(l.SiteOf(q)); got != q {
			t.Fatalf("index round trip failed at %d -> %v -> %d", q, l.SiteOf(q), got)
		}
	}
}

func TestStabilizerSupport(t *testing.T) {
	l := MustNew(3)
	// Bulk X ancilla at (2,1): four data neighbours.
	sup := l.StabilizerSupport(Site{2, 1})
	if len(sup) != 4 {
		t.Errorf("bulk support size %d want 4", len(sup))
	}
	// Corner-adjacent ancilla at (0,1): three neighbours (1,1),(0,0),(0,2).
	sup = l.StabilizerSupport(Site{0, 1})
	if len(sup) != 3 {
		t.Errorf("edge support size %d want 3", len(sup))
	}
	defer func() {
		if recover() == nil {
			t.Error("StabilizerSupport on data site did not panic")
		}
	}()
	l.StabilizerSupport(Site{0, 0})
}

// Every stabilizer support must contain only data qubits, and each data
// qubit must be covered by at most 2 X-checks and at most 2 Z-checks.
func TestSupportCoverage(t *testing.T) {
	for _, d := range []int{3, 5, 7} {
		l := MustNew(d)
		for _, e := range []ErrorType{ZErrors, XErrors} {
			cover := make(map[int]int)
			for _, s := range l.AncillaSites(e) {
				for _, q := range l.StabilizerSupport(s) {
					if l.KindAt(l.SiteOf(q)) != Data {
						t.Fatalf("d=%d support of %v contains non-data qubit %v", d, s, l.SiteOf(q))
					}
					cover[q]++
				}
			}
			for q, n := range cover {
				if n > 2 {
					t.Fatalf("d=%d data qubit %v covered by %d %v-checks", d, l.SiteOf(q), n, e)
				}
			}
		}
	}
}

// The two logical operators must each have weight d, commute with every
// stabilizer of their own type's detecting checks, and anticommute with
// each other.
func TestLogicalOperators(t *testing.T) {
	for _, d := range []int{3, 5, 7} {
		l := MustNew(d)
		zL := pauli.NewFrame(l.NumQubits())
		for _, q := range l.LogicalSupport(ZErrors) {
			zL.Set(q, pauli.Z)
		}
		xL := pauli.NewFrame(l.NumQubits())
		for _, q := range l.LogicalSupport(XErrors) {
			xL.Set(q, pauli.X)
		}
		if zL.Weight() != d || xL.Weight() != d {
			t.Fatalf("d=%d logical weights %d/%d", d, zL.Weight(), xL.Weight())
		}
		if zL.CommutesWith(xL) {
			t.Fatalf("d=%d logical Z and X commute", d)
		}
		// Logical Z must be invisible to every X check (trivial syndrome).
		g := l.MatchingGraph(ZErrors)
		for i, hot := range g.Syndrome(zL) {
			if hot {
				t.Fatalf("d=%d logical Z triggers check %d", d, i)
			}
		}
		gx := l.MatchingGraph(XErrors)
		for i, hot := range gx.Syndrome(xL) {
			if hot {
				t.Fatalf("d=%d logical X triggers check %d", d, i)
			}
		}
	}
}

func TestLogicalCutSupport(t *testing.T) {
	l := MustNew(3)
	// The cut for Z errors is the logical-X chain and vice versa.
	if got, want := len(l.LogicalCutSupport(ZErrors)), 3; got != want {
		t.Errorf("cut size %d want %d", got, want)
	}
	zCut := l.LogicalCutSupport(ZErrors)
	xChain := l.LogicalSupport(XErrors)
	for i := range zCut {
		if zCut[i] != xChain[i] {
			t.Fatal("Z cut is not the X logical chain")
		}
	}
	xCut := l.LogicalCutSupport(XErrors)
	zChain := l.LogicalSupport(ZErrors)
	for i := range xCut {
		if xCut[i] != zChain[i] {
			t.Fatal("X cut is not the Z logical chain")
		}
	}
}
