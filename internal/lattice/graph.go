package lattice

import (
	"fmt"

	"repro/internal/pauli"
)

// Graph is the matching graph a decoder works on: one node per ancilla
// (check) of a fixed type, plus two code boundaries. Distances are the
// minimum number of data-qubit errors needed to connect two checks (or a
// check and a boundary), and paths enumerate the data qubits realizing
// that minimum.
//
// For ZErrors the checks are X-ancillas and the boundaries are the left
// (column 0) and right (column 2d−2) edges of the grid; for XErrors the
// checks are Z-ancillas and the boundaries are the top and bottom rows.
type Graph struct {
	l      *Lattice
	etype  ErrorType
	checks []Site
	index  map[Site]int

	// Flattened per-check stabilizer supports, precomputed so the
	// syndrome hot loop (SyndromeInto) performs no allocation: check i's
	// data-qubit neighbours are supData[supOff[i]:supOff[i+1]].
	supOff  []int
	supData []int
}

// MatchingGraph builds the matching graph for the given error type.
func (l *Lattice) MatchingGraph(e ErrorType) *Graph {
	g := &Graph{l: l, etype: e, index: make(map[Site]int)}
	g.checks = l.AncillaSites(e)
	g.supOff = make([]int, len(g.checks)+1)
	for i, s := range g.checks {
		g.index[s] = i
		g.supData = append(g.supData, l.StabilizerSupport(s)...)
		g.supOff[i+1] = len(g.supData)
	}
	return g
}

// Lattice returns the underlying lattice.
func (g *Graph) Lattice() *Lattice { return g.l }

// ErrorType returns the Pauli component this graph decodes.
func (g *Graph) ErrorType() ErrorType { return g.etype }

// NumChecks returns the number of check nodes.
func (g *Graph) NumChecks() int { return len(g.checks) }

// CheckSite returns the lattice site of check i.
func (g *Graph) CheckSite(i int) Site { return g.checks[i] }

// CheckIndex returns the check index of the ancilla at site s, if any.
func (g *Graph) CheckIndex(s Site) (int, bool) {
	i, ok := g.index[s]
	return i, ok
}

// axial returns the coordinate of s along the axis that runs between the
// two boundaries of this graph, and the transverse coordinate.
func (g *Graph) axial(s Site) (a, t int) {
	if g.etype == ZErrors {
		return s.Col, s.Row
	}
	return s.Row, s.Col
}

// site reconstructs a lattice site from axial/transverse coordinates.
func (g *Graph) site(a, t int) Site {
	if g.etype == ZErrors {
		return Site{Row: t, Col: a}
	}
	return Site{Row: a, Col: t}
}

// Dist returns the matching-graph distance between checks i and j: the
// minimum number of data-qubit errors forming a chain with hot syndromes
// exactly at i and j.
func (g *Graph) Dist(i, j int) int {
	ai, ti := g.axial(g.checks[i])
	aj, tj := g.axial(g.checks[j])
	return (abs(ai-aj) + abs(ti-tj)) / 2
}

// BoundaryDist returns the distance from check i to its nearest code
// boundary.
func (g *Graph) BoundaryDist(i int) int {
	near, far := g.boundaryDists(i)
	if near < far {
		return near
	}
	return far
}

// boundaryDists returns the distances to the low-coordinate and
// high-coordinate boundaries, in that order.
func (g *Graph) boundaryDists(i int) (low, high int) {
	a, _ := g.axial(g.checks[i])
	return (a + 1) / 2, (2*g.l.d - 1 - a) / 2
}

// PathQubits returns the data-qubit indices of a minimum-length error
// chain connecting checks i and j. The chain is L-shaped: it runs along
// the axial direction at check i's transverse coordinate, then turns.
func (g *Graph) PathQubits(i, j int) []int {
	ai, ti := g.axial(g.checks[i])
	aj, tj := g.axial(g.checks[j])
	var qubits []int
	for a := min(ai, aj) + 1; a < max(ai, aj); a += 2 {
		qubits = append(qubits, g.l.QubitIndex(g.site(a, ti)))
	}
	for t := min(ti, tj) + 1; t < max(ti, tj); t += 2 {
		qubits = append(qubits, g.l.QubitIndex(g.site(aj, t)))
	}
	return qubits
}

// BoundaryPathQubits returns the data-qubit indices of the shortest error
// chain from check i to its nearest boundary (the low boundary on ties).
func (g *Graph) BoundaryPathQubits(i int) []int {
	a, t := g.axial(g.checks[i])
	low, high := g.boundaryDists(i)
	var qubits []int
	if low <= high {
		for x := a - 1; x >= 0; x -= 2 {
			qubits = append(qubits, g.l.QubitIndex(g.site(x, t)))
		}
	} else {
		for x := a + 1; x < g.l.size; x += 2 {
			qubits = append(qubits, g.l.QubitIndex(g.site(x, t)))
		}
	}
	return qubits
}

// Syndrome computes the hot-check bit vector produced by the given Pauli
// frame over the whole device: element i is true iff check i measures
// odd parity of the error component it detects.
func (g *Graph) Syndrome(f *pauli.Frame) []bool {
	return g.SyndromeInto(f, make([]bool, len(g.checks)))
}

// SyndromeInto is Syndrome writing into a caller-owned buffer, reused
// across cycles by the zero-allocation decode hot path. The buffer is
// resized (reallocating only when its capacity is insufficient) and
// returned.
func (g *Graph) SyndromeInto(f *pauli.Frame, syn []bool) []bool {
	if f.Len() != g.l.NumQubits() {
		panic(fmt.Sprintf("lattice: frame covers %d qubits, lattice has %d", f.Len(), g.l.NumQubits()))
	}
	if cap(syn) < len(g.checks) {
		syn = make([]bool, len(g.checks))
	}
	syn = syn[:len(g.checks)]
	for i := range g.checks {
		sup := g.supData[g.supOff[i]:g.supOff[i+1]]
		if g.etype == ZErrors {
			syn[i] = f.ParityZ(sup) == 1
		} else {
			syn[i] = f.ParityX(sup) == 1
		}
	}
	return syn
}

// HotChecks returns the indices of the true entries of a syndrome vector.
func HotChecks(syn []bool) []int {
	var hot []int
	for i, h := range syn {
		if h {
			hot = append(hot, i)
		}
	}
	return hot
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
