package surface

import (
	"testing"

	"repro/internal/decoder/greedy"
	"repro/internal/decoder/mwpm"
	"repro/internal/lattice"
	"repro/internal/noise"
	"repro/internal/sfq"
)

func dephasing(p float64) noise.Dephasing {
	ch, err := noise.NewDephasing(p)
	if err != nil {
		panic(err)
	}
	return ch
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Distance: 4, Channel: dephasing(0.1), DecoderZ: greedy.New()}); err == nil {
		t.Error("even distance accepted")
	}
	if _, err := New(Config{Distance: 3, DecoderZ: greedy.New()}); err == nil {
		t.Error("nil channel accepted")
	}
	if _, err := New(Config{Distance: 3, Channel: dephasing(0.1)}); err == nil {
		t.Error("no decoder accepted")
	}
}

func TestDeterministicRuns(t *testing.T) {
	mk := func() Result {
		s, err := New(Config{Distance: 3, Channel: dephasing(0.08), DecoderZ: greedy.New(), Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.Run(500)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := mk(), mk()
	if a != b {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
}

// Circuit-based syndrome extraction must give exactly the same run as
// direct parity extraction under data-only noise.
func TestCircuitExtractionEquivalent(t *testing.T) {
	run := func(circuits bool) Result {
		s, err := New(Config{
			Distance:    5,
			Channel:     dephasing(0.06),
			DecoderZ:    greedy.New(),
			Seed:        11,
			UseCircuits: circuits,
		})
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.Run(400)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	if a, b := run(false), run(true); a != b {
		t.Errorf("circuit path diverged: %+v vs %+v", a, b)
	}
}

func TestPLIncreasesWithErrorRate(t *testing.T) {
	pl := func(p float64) float64 {
		s, err := New(Config{Distance: 3, Channel: dephasing(p), DecoderZ: greedy.New(), Seed: 13})
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.Run(4000)
		if err != nil {
			t.Fatal(err)
		}
		return r.PL
	}
	low, high := pl(0.02), pl(0.15)
	if low >= high {
		t.Errorf("PL(p=0.02)=%v >= PL(p=0.15)=%v", low, high)
	}
	if high == 0 {
		t.Error("no logical errors at p=0.15")
	}
}

// Below threshold a larger code distance must suppress the logical error
// rate (the defining property of Fig. 10(a)).
func TestDistanceSuppressionBelowThreshold(t *testing.T) {
	pl := func(d int) float64 {
		s, err := New(Config{Distance: d, Channel: dephasing(0.05), DecoderZ: mwpm.New(), Seed: 17})
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.Run(40000)
		if err != nil {
			t.Fatal(err)
		}
		if r.LogicalErrors < 10 {
			t.Fatalf("d=%d only %d logical errors; test underpowered", d, r.LogicalErrors)
		}
		return r.PL
	}
	p3, p5 := pl(3), pl(5)
	if p5 >= p3 {
		t.Errorf("PL(d=5)=%v >= PL(d=3)=%v below threshold", p5, p3)
	}
}

// Depolarizing noise exercised on both planes: both decoders are
// consulted and the run completes cleanly.
func TestDepolarizingBothPlanes(t *testing.T) {
	dep, _ := noise.NewDepolarizing(0.06)
	l := lattice.MustNew(3)
	meshZ := sfq.New(l.MatchingGraph(lattice.ZErrors), sfq.Final)
	meshX := sfq.New(l.MatchingGraph(lattice.XErrors), sfq.Final)
	calls := map[lattice.ErrorType]int{}
	s, err := New(Config{
		Distance: 3,
		Channel:  dep,
		DecoderZ: meshZ,
		DecoderX: meshX,
		Seed:     19,
		Observer: func(e lattice.ErrorType, st sfq.Stats) { calls[e]++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run(800)
	if err != nil {
		t.Fatal(err)
	}
	if calls[lattice.ZErrors] != 800 || calls[lattice.XErrors] != 800 {
		t.Errorf("observer calls = %v, want 800 per plane", calls)
	}
	if r.Cycles != 800 {
		t.Errorf("cycles = %d", r.Cycles)
	}
	if r.Forced != 0 {
		t.Errorf("final design needed %d forced completions", r.Forced)
	}
}

// Ablation variants that cannot pair with boundaries must lean on the
// harness force-completion, which is what ruins their Fig. 10 curves.
func TestAblationVariantsGetForced(t *testing.T) {
	l := lattice.MustNew(5)
	mesh := sfq.New(l.MatchingGraph(lattice.ZErrors), sfq.WithReset)
	s, err := New(Config{Distance: 5, Channel: dephasing(0.08), DecoderZ: mesh, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run(500)
	if err != nil {
		t.Fatal(err)
	}
	if r.Forced == 0 {
		t.Error("reset-only variant never needed force completion")
	}
}

// The final SFQ design's lifetime PL must not be wildly worse than
// greedy software matching (they implement the same algorithm family).
func TestSFQTracksGreedyLoosely(t *testing.T) {
	l := lattice.MustNew(5)
	mesh := sfq.New(l.MatchingGraph(lattice.ZErrors), sfq.Final)
	run := func(dec Config) float64 {
		s, err := New(dec)
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.Run(6000)
		if err != nil {
			t.Fatal(err)
		}
		return r.PL
	}
	sfqPL := run(Config{Distance: 5, Channel: dephasing(0.04), DecoderZ: mesh, Seed: 29})
	grPL := run(Config{Distance: 5, Channel: dephasing(0.04), DecoderZ: greedy.New(), Seed: 29})
	if sfqPL > 6*grPL+0.02 {
		t.Errorf("sfq PL %v wildly above greedy PL %v", sfqPL, grPL)
	}
}
