package surface

import (
	"testing"

	"repro/internal/decoder/greedy"
	"repro/internal/noise"
)

// NewWithRand with an injected stream is identical to New with the
// equivalent seed — the engine path and the legacy path share one RNG.
func TestNewWithRandMatchesSeed(t *testing.T) {
	cfg := Config{Distance: 3, Channel: dephasing(0.06), DecoderZ: greedy.New(), Seed: 9}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewWithRand(cfg, noise.NewRand(9))
	if err != nil {
		t.Fatal(err)
	}
	ra, err := a.Run(200)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Run(200)
	if err != nil {
		t.Fatal(err)
	}
	if ra != rb {
		t.Errorf("NewWithRand diverged: %+v vs %+v", ra, rb)
	}
}

// Reset clears the carried residual frame: a reset simulator with a
// rewound stream replays its first run exactly.
func TestResetReplaysRun(t *testing.T) {
	cfg := Config{Distance: 3, Channel: dephasing(0.08), DecoderZ: greedy.New(), Seed: 5}
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	first, err := sim.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	sim.Reset()
	sim.SetRand(noise.NewRand(5))
	again, err := sim.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if first != again {
		t.Errorf("reset simulator diverged: %+v vs %+v", first, again)
	}
}
