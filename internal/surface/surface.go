// Package surface implements the lifetime (Monte-Carlo) simulation of
// §VII: a logical qubit held in a distance-d planar surface code while
// errors are injected every cycle, syndromes extracted, a decoder
// consulted and corrections applied. The ratio of logical errors to
// simulated cycles is the logical error rate PL, the primary performance
// metric of the paper's Fig. 10 evaluation.
package surface

import (
	"fmt"
	"math/rand"

	"repro/internal/decodepool"
	"repro/internal/decoder"
	"repro/internal/lattice"
	"repro/internal/noise"
	"repro/internal/obs"
	"repro/internal/pauli"
	"repro/internal/sfq"
	"repro/internal/stabilizer"
	"repro/internal/twolevel"
)

// Config describes one lifetime experiment.
type Config struct {
	// Distance is the code distance (odd, >= 3).
	Distance int
	// Channel injects data-qubit errors once per cycle.
	Channel noise.Channel
	// DecoderZ corrects phase flips (decodes the X-check graph); nil
	// disables Z decoding — only valid when the channel produces no Z
	// errors.
	DecoderZ decoder.Decoder
	// DecoderX corrects bit flips; nil disables X decoding.
	DecoderX decoder.Decoder
	// Seed drives all randomness; runs are reproducible per seed.
	Seed int64
	// Rand, when non-nil, supplies the randomness source directly and
	// takes precedence over Seed. Monte-Carlo shards inject per-trial
	// counter-based streams here (see internal/mc) so concurrent
	// simulators never share generator state.
	Rand *rand.Rand
	// UseCircuits extracts syndromes by simulating the Fig. 3
	// stabilizer circuits instead of computing check parities directly.
	// Both paths agree exactly under data-only noise.
	UseCircuits bool
	// Observer, when non-nil, receives the mesh statistics of every SFQ
	// decode invocation (ignored for software decoders).
	Observer func(e lattice.ErrorType, st sfq.Stats)
	// Obs, when non-nil, instruments the simulator's decode arena: the
	// software-decoder wall-clock latency is sampled into the registry's
	// decodepool_decode_ns histogram and the decode count advances
	// decodepool_decodes_total (see decodepool.Scratch.Instrument; SFQ
	// mesh decoders record their own cycle histograms process-wide).
	Obs *obs.Registry
}

// Result summarizes a lifetime run.
type Result struct {
	Cycles        int     // syndrome-measurement cycles simulated
	LogicalErrors int     // cycles on which the logical state flipped
	Forced        int     // hot checks force-completed to a boundary by the harness
	PL            float64 // LogicalErrors / Cycles
}

// Simulator holds the mutable state of one lifetime experiment.
type Simulator struct {
	cfg Config
	l   *lattice.Lattice
	rng *rand.Rand

	residual *pauli.Frame
	data     []int // data-qubit indices

	planes []*plane

	// scratch is this simulator's private decode arena. One simulator is
	// one worker (one Monte-Carlo shard), so a single scratch makes the
	// whole decode loop allocation-free in steady state.
	scratch *decodepool.Scratch

	// batchFrames are the per-lane residual frames of RunTrialBatch
	// (each lane is an independent one-cycle trial), grown on first use.
	batchFrames []*pauli.Frame
}

// plane bundles everything needed to decode one error type.
type plane struct {
	etype lattice.ErrorType
	graph *lattice.Graph
	dec   decoder.Decoder
	mesh  *sfq.Mesh         // non-nil when dec is a scalar SFQ mesh
	bmesh *sfq.BatchMesh    // non-nil when dec is a SWAR batch mesh
	tl    *twolevel.Decoder // non-nil when dec is a two-level decoder
	ext   *stabilizer.Extractor
	cut   []int // data qubits whose parity flags a logical flip
	op    pauli.Op

	syn  []bool   // reusable syndrome buffer
	left []bool   // reusable post-correction syndrome buffer
	bsyn [][]bool // per-lane syndrome buffers of the batch path
}

// New validates the configuration and builds a simulator.
func New(cfg Config) (*Simulator, error) {
	l, err := lattice.New(cfg.Distance)
	if err != nil {
		return nil, err
	}
	if cfg.Channel == nil {
		return nil, fmt.Errorf("surface: nil channel")
	}
	if cfg.DecoderZ == nil && cfg.DecoderX == nil {
		return nil, fmt.Errorf("surface: no decoder configured")
	}
	rng := cfg.Rand
	if rng == nil {
		rng = noise.NewRand(cfg.Seed)
	}
	s := &Simulator{
		cfg:      cfg,
		l:        l,
		rng:      rng,
		residual: pauli.NewFrame(l.NumQubits()),
		scratch:  decodepool.NewScratch(),
	}
	if cfg.Obs != nil {
		s.scratch.Instrument(cfg.Obs.Histogram("decodepool_decode_ns"),
			cfg.Obs.Counter("decodepool_decodes_total"), 0)
	}
	for _, site := range l.DataSites() {
		s.data = append(s.data, l.QubitIndex(site))
	}
	add := func(e lattice.ErrorType, dec decoder.Decoder, op pauli.Op) {
		if dec == nil {
			return
		}
		g := l.MatchingGraph(e)
		p := &plane{
			etype: e, graph: g, dec: dec, cut: l.LogicalCutSupport(e), op: op,
			syn:  make([]bool, g.NumChecks()),
			left: make([]bool, g.NumChecks()),
		}
		switch m := dec.(type) {
		case *sfq.Mesh:
			p.mesh = m
		case *sfq.BatchMesh:
			p.bmesh = m
		case *twolevel.Decoder:
			p.tl = m
		}
		if cfg.UseCircuits {
			p.ext = stabilizer.NewExtractor(g)
		}
		s.planes = append(s.planes, p)
	}
	add(lattice.ZErrors, cfg.DecoderZ, pauli.Z)
	add(lattice.XErrors, cfg.DecoderX, pauli.X)
	return s, nil
}

// NewWithRand builds a simulator driven by the injected random stream,
// overriding any Seed in the configuration. Sharded Monte-Carlo
// harnesses use it so each shard owns its generator state.
func NewWithRand(cfg Config, rng *rand.Rand) (*Simulator, error) {
	cfg.Rand = rng
	return New(cfg)
}

// Lattice exposes the simulator's lattice.
func (s *Simulator) Lattice() *lattice.Lattice { return s.l }

// SetRand swaps the simulator's randomness source. Engine shards call
// this before every trial with the trial's private stream.
func (s *Simulator) SetRand(rng *rand.Rand) { s.rng = rng }

// Decoders returns the simulator's configured decoders (Z plane first
// when present). Release hooks use it to reclaim pooled decoder meshes
// when a Monte-Carlo shard retires.
func (s *Simulator) Decoders() []decoder.Decoder {
	decs := make([]decoder.Decoder, 0, len(s.planes))
	for _, p := range s.planes {
		decs = append(decs, p.dec)
	}
	return decs
}

// Reset clears the residual error frame, returning the simulator to
// the code space so the next Run is independent of earlier cycles.
// Counters already returned by Run are unaffected.
func (s *Simulator) Reset() { s.residual.Clear() }

// Run simulates the given number of cycles and returns cumulative
// counters for this call.
func (s *Simulator) Run(cycles int) (Result, error) {
	var res Result
	for c := 0; c < cycles; c++ {
		s.cfg.Channel.Sample(s.rng, s.residual, s.data)
		flipped := false
		for _, p := range s.planes {
			f, err := s.decodePlane(p, &res)
			if err != nil {
				return res, err
			}
			flipped = flipped || f
		}
		if err := s.checkClean(); err != nil {
			return res, err
		}
		if flipped {
			res.LogicalErrors++
		}
		res.Cycles++
	}
	if res.Cycles > 0 {
		res.PL = float64(res.LogicalErrors) / float64(res.Cycles)
	}
	return res, nil
}

// decodePlane extracts one plane's syndrome, applies the decoder's
// correction (force-completing anything the decoder left unresolved) and
// reports whether the plane's logical operator flipped.
func (s *Simulator) decodePlane(p *plane, res *Result) (bool, error) {
	var syn []bool
	var err error
	if p.ext != nil {
		syn, err = p.ext.Extract(s.residual, nil, nil)
		if err != nil {
			return false, err
		}
	} else {
		syn = p.graph.SyndromeInto(s.residual, p.syn)
	}
	var corr decoder.Correction
	if p.mesh != nil {
		// The mesh joins the zero-allocation scratch path; cycle
		// statistics stay readable on the mesh itself.
		corr, err = p.mesh.DecodeInto(p.graph, syn, s.scratch)
		if err == nil && s.cfg.Observer != nil {
			s.cfg.Observer(p.etype, p.mesh.Stats())
		}
	} else if p.bmesh != nil {
		// A batch mesh on the scalar path decodes through lane 0.
		corr, err = p.bmesh.DecodeInto(p.graph, syn, s.scratch)
		if err == nil && s.cfg.Observer != nil {
			s.cfg.Observer(p.etype, p.bmesh.Stats())
		}
	} else if p.tl != nil {
		// Two-level: the observer sees the level-1 mesh statistics (the
		// escalation verdict is a pure function of them).
		corr, err = p.tl.DecodeInto(p.graph, syn, s.scratch)
		if err == nil && s.cfg.Observer != nil {
			s.cfg.Observer(p.etype, p.tl.MeshStats(0))
		}
	} else {
		// Routes through the zero-allocation DecodeInto path when the
		// decoder supports it; corr then aliases s.scratch and is consumed
		// before the next decode.
		corr, err = decodepool.Decode(p.dec, p.graph, syn, s.scratch)
	}
	if err != nil {
		return false, fmt.Errorf("surface: %s on %v checks: %w", p.dec.Name(), p.etype, err)
	}
	forced := 0
	flipped := s.finishPlane(p, s.residual, corr.Qubits, &forced)
	res.Forced += forced
	return flipped, nil
}

// finishPlane applies a correction to one frame, force-completes
// anything the decoder left unresolved, and reports whether the plane's
// logical operator flipped (normalizing the frame when it did). It is
// the shared tail of the scalar and batched decode paths.
func (s *Simulator) finishPlane(p *plane, f *pauli.Frame, qubits []int, forced *int) bool {
	for _, q := range qubits {
		f.Apply(q, p.op)
	}
	// Ablation variants (and any buggy decoder) may leave checks hot;
	// the evaluation harness completes them with boundary chains so the
	// residual is always stabilizer-trivial and PL stays well defined.
	left := p.graph.SyndromeInto(f, p.left)
	for i, hot := range left {
		if !hot {
			continue
		}
		for _, q := range p.graph.BoundaryPathQubits(i) {
			f.Apply(q, p.op)
		}
		*forced++
	}
	if par := parity(f, p.cut, p.etype); par == 1 {
		// Normalize the residual by the logical operator so each
		// logical flip is counted once.
		for _, q := range s.l.LogicalSupport(p.etype) {
			f.Apply(q, p.op)
		}
		return true
	}
	return false
}

// BatchOutcome is one lane's result of RunTrialBatch: one independent
// cycle simulated on a private frame.
type BatchOutcome struct {
	Failed bool // the logical state flipped this cycle
	Forced int  // hot checks force-completed to a boundary by the harness
}

// BatchWidth reports how many independent one-cycle trials
// RunTrialBatch advances per call: the smallest lane width across the
// simulator's batch-mesh planes. It is 1 — batching unavailable — when
// any configured decoder is not an sfq.BatchMesh or when syndromes are
// extracted through stabilizer circuits.
func (s *Simulator) BatchWidth() int {
	if s.cfg.UseCircuits {
		return 1
	}
	w := 0
	for _, p := range s.planes {
		var lw int
		switch {
		case p.bmesh != nil:
			lw = p.bmesh.Lanes()
		case p.tl != nil:
			lw = p.tl.BatchWidth()
		default:
			return 1
		}
		if w == 0 || lw < w {
			w = lw
		}
	}
	if w == 0 {
		return 1
	}
	return w
}

// RunTrialBatch simulates len(rngs) independent one-cycle trials, lane
// i driven by rngs[i] on its own residual frame, decoding every plane's
// syndromes in one batched SWAR call. Lane i's outcome is bit-identical
// to Reset + SetRand(rngs[i]) + Run(1) on the scalar path: each lane
// samples its channel from its own stream, and the batch kernel is
// conformance-pinned to the scalar kernel. outs must have len(rngs)
// elements; Run's cumulative counters are not touched.
func (s *Simulator) RunTrialBatch(rngs []*rand.Rand, outs []BatchOutcome) error {
	w := len(rngs)
	if len(outs) != w {
		return fmt.Errorf("surface: %d outcomes for %d trial streams", len(outs), w)
	}
	s.ensureBatch(w)
	for i := 0; i < w; i++ {
		f := s.batchFrames[i]
		f.Clear()
		s.cfg.Channel.Sample(rngs[i], f, s.data)
		outs[i] = BatchOutcome{}
	}
	for _, p := range s.planes {
		if p.bmesh == nil && p.tl == nil {
			return fmt.Errorf("surface: %v plane decoder %s cannot batch", p.etype, p.dec.Name())
		}
		for i := 0; i < w; i++ {
			p.graph.SyndromeInto(s.batchFrames[i], p.bsyn[i])
		}
		var corr []decoder.Correction
		var err error
		if p.tl != nil {
			corr, err = p.tl.DecodeBatchInto(p.graph, p.bsyn[:w], s.scratch)
		} else {
			corr, err = p.bmesh.DecodeBatchInto(p.graph, p.bsyn[:w], s.scratch)
		}
		if err != nil {
			return fmt.Errorf("surface: %s on %v checks: %w", p.dec.Name(), p.etype, err)
		}
		for i := 0; i < w; i++ {
			if s.cfg.Observer != nil {
				if p.tl != nil {
					s.cfg.Observer(p.etype, p.tl.MeshStats(i))
				} else {
					s.cfg.Observer(p.etype, p.bmesh.LaneStats(i))
				}
			}
			if s.finishPlane(p, s.batchFrames[i], corr[i].Qubits, &outs[i].Forced) {
				outs[i].Failed = true
			}
		}
	}
	for i := 0; i < w; i++ {
		if err := s.checkCleanFrame(s.batchFrames[i]); err != nil {
			return err
		}
	}
	return nil
}

// ensureBatch grows the per-lane frames and syndrome buffers to width w.
func (s *Simulator) ensureBatch(w int) {
	for len(s.batchFrames) < w {
		s.batchFrames = append(s.batchFrames, pauli.NewFrame(s.l.NumQubits()))
	}
	for _, p := range s.planes {
		for len(p.bsyn) < w {
			p.bsyn = append(p.bsyn, make([]bool, p.graph.NumChecks()))
		}
	}
}

// parity returns the residual's error parity over the cut.
func parity(f *pauli.Frame, cut []int, e lattice.ErrorType) int {
	if e == lattice.ZErrors {
		return f.ParityZ(cut)
	}
	return f.ParityX(cut)
}

// checkClean verifies the invariant that after decoding (plus forced
// completion and logical normalization) the residual frame is trivial on
// every configured plane.
func (s *Simulator) checkClean() error { return s.checkCleanFrame(s.residual) }

func (s *Simulator) checkCleanFrame(f *pauli.Frame) error {
	for _, p := range s.planes {
		for i, hot := range p.graph.SyndromeInto(f, p.left) {
			if hot {
				return fmt.Errorf("surface: residual leaves %v check %d hot after correction", p.etype, i)
			}
		}
	}
	return nil
}
