// Package trace is the decode service's request-lifecycle flight
// recorder: per-request span records with one timestamp per pipeline
// stage (accept → admit → enqueue → coalesce → decode start/end →
// escalate start/end → response write), captured into fixed-size ring
// buffers that are cheap enough to leave on in production.
//
// The paper's central quantity is a latency budget — the decoder must
// answer inside the syndrome-generation window or backlog diverges —
// and a single end-to-end histogram (serve_decode_ns) cannot say
// *where* a blown budget went: queue wait, batch-coalesce wait, the
// mesh kernel, MWPM escalation, or the out-queue. A span decomposes
// each request's wall time into exactly those stages, the derived
// per-stage histograms aggregate them, and the recorder keeps the
// individual traces worth reading:
//
//   - a deterministic 1-in-N sample of all requests (N from
//     REPRO_TRACE_SAMPLE, default 16, 0/off disables the recorder);
//   - every outlier — any request whose wall time lands within one
//     octave of the largest wall-time bucket seen so far, which always
//     includes the running maximum itself;
//   - every shed and escalation-drop decision, with the admission
//     controller inputs (EWMA arrival gap, modeled backlog ratio,
//     instantaneous queue length) that caused it. Decision capture is
//     always on and has its own ring, so a shedding storm cannot evict
//     the slow traces and vice versa.
//
// The hot path allocates nothing: spans are preallocated and recycled
// through a free list, committed records are value copies into
// preallocated rings, and every Span method is nil-receiver-safe so
// call sites need no "is tracing on" branches. When the free list is
// exhausted (more in-flight requests than MaxInFlight), Start returns
// nil and the request simply goes untraced — counted, never blocked.
package trace

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/knob"
	"repro/internal/obs"
)

// Stage indexes one lifecycle timestamp of a span.
type Stage uint8

const (
	// StageAccept is stamped when the request enters submit().
	StageAccept Stage = iota
	// StageAdmit is stamped when admission control passes the request.
	StageAdmit
	// StageEnqueue is stamped when the request enters its (d, e) queue.
	StageEnqueue
	// StageCoalesce is stamped when a drain worker pulls the request
	// into a batch; Coalesce − Enqueue is the queue wait, and includes
	// any scheduler deque wait, steal migration and park time of the
	// drain task itself.
	StageCoalesce
	// StageDecodeStart / StageDecodeEnd bracket the batch mesh decode.
	StageDecodeStart
	StageDecodeEnd
	// StageEscalateStart / StageEscalateEnd bracket the asynchronous
	// level-2 re-decode. They happen after the response is delivered
	// (level 2 never blocks level 1), so they are not part of the
	// request's wall time; EscalateStart − DecodeEnd is the escalation
	// queue wait.
	StageEscalateStart
	StageEscalateEnd
	// StageRespWrite is stamped when the response has been written to
	// the transport (or consumed by the synchronous Decode caller).
	// RespWrite − Accept is the span's wall time.
	StageRespWrite

	// NumStages is the stamp-array length.
	NumStages
)

var stageNames = [NumStages]string{
	"accept", "admit", "enqueue", "coalesce",
	"decode_start", "decode_end",
	"escalate_start", "escalate_end",
	"resp_write",
}

// String returns the stage's wire/JSON name.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "stage" + strconv.Itoa(int(s))
}

// StageNames returns the names of all stages in stamp order.
func StageNames() []string { return append([]string(nil), stageNames[:]...) }

// Kind classifies a record.
type Kind uint8

const (
	// KindRequest is a decoded (or errored-after-admission) request.
	KindRequest Kind = iota
	// KindShed is a request rejected by admission control; the record
	// carries the controller inputs behind the decision.
	KindShed
	// KindEscDrop is an escalation dropped on a full level-2 queue.
	KindEscDrop
	// KindError is a request rejected before admission (bad distance,
	// bad syndrome length, draining server).
	KindError
)

var kindNames = [...]string{"request", "shed", "esc_drop", "error"}

// String returns the kind's JSON name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "kind" + strconv.Itoa(int(k))
}

// Reason says which mechanism produced a shed/drop decision.
type Reason uint8

const (
	ReasonNone Reason = iota
	// ReasonController: the backlog model predicted divergence (under
	// weighted admission, only request classes whose normalized service
	// cost falls under the overload cut shed for this reason).
	ReasonController
	// ReasonQueueFull: the (d, e) queue hit its hard depth bound.
	ReasonQueueFull
	// ReasonEscQueueFull: the level-2 escalation queue was full.
	ReasonEscQueueFull
	// ReasonSojourn: the request aged past the queue-sojourn bound while
	// the queue stayed backlogged, so the drain worker dropped it
	// (CoDel-style drop-oldest) instead of decoding it late.
	ReasonSojourn
)

var reasonNames = [...]string{"", "controller", "queue_full", "esc_queue_full", "sojourn"}

// String returns the reason's JSON name.
func (r Reason) String() string {
	if int(r) < len(reasonNames) {
		return reasonNames[r]
	}
	return "reason" + strconv.Itoa(int(r))
}

// Span flags.
const (
	// FlagSampled: the span was selected by the 1-in-N sampler.
	FlagSampled uint32 = 1 << iota
	// FlagOutlier: wall time landed within one octave of the largest
	// wall-time bucket the recorder has seen.
	FlagOutlier
	// FlagEscalated: the decode was flagged for level-2 re-decode.
	FlagEscalated
	// FlagEscDropped: the level-2 queue was full; the escalation was
	// dropped (a KindEscDrop decision record was cut alongside).
	FlagEscDropped
	// FlagStolenDrain: the drain task that coalesced this request had
	// just been stolen by another scheduler worker.
	FlagStolenDrain
)

var flagNames = []struct {
	bit  uint32
	name string
}{
	{FlagSampled, "sampled"},
	{FlagOutlier, "outlier"},
	{FlagEscalated, "escalated"},
	{FlagEscDropped, "esc_dropped"},
	{FlagStolenDrain, "stolen_drain"},
}

// FlagNames expands a flag bitmask to its JSON names.
func FlagNames(flags uint32) []string {
	var out []string
	for _, f := range flagNames {
		if flags&f.bit != 0 {
			out = append(out, f.name)
		}
	}
	return out
}

// Span is one live request's trace: a preallocated, recycled record
// handle that travels with the request through the pipeline. Stages
// are stamped by whichever goroutine owns the request at that moment
// (reader, drain worker, escalation worker, connection writer); each
// stage is stamped at most once and the reference count released by
// Finish orders every stamp before finalization. All methods are safe
// on a nil receiver, so untraced requests cost one nil check per call.
type Span struct {
	rec *Recorder

	seq    uint64
	id     uint64
	d      int32
	etype  uint8
	kind   Kind
	reason Reason

	// Decision inputs (shed / escalation-drop records).
	in DecisionInputs

	wallNs int64
	ts     [NumStages]int64 // unix nanos; 0 = stage not reached

	flags atomic.Uint32
	refs  atomic.Int32
}

// Seq returns the span's sequence number (0 for a nil span). Sequence
// numbers start at 1, so 0 is "no trace" everywhere, exemplars
// included.
func (sp *Span) Seq() uint64 {
	if sp == nil {
		return 0
	}
	return sp.seq
}

// Kind returns the span's record kind.
func (sp *Span) Kind() Kind {
	if sp == nil {
		return KindRequest
	}
	return sp.kind
}

// TS returns the unix-nano stamp of st, 0 if not reached.
func (sp *Span) TS(st Stage) int64 {
	if sp == nil {
		return 0
	}
	return sp.ts[st]
}

// WallNs returns the finalized wall time (valid inside the recorder's
// finalize observer and after).
func (sp *Span) WallNs() int64 {
	if sp == nil {
		return 0
	}
	return sp.wallNs
}

// Flags returns the current flag bitmask.
func (sp *Span) Flags() uint32 {
	if sp == nil {
		return 0
	}
	return sp.flags.Load()
}

// Stamp records time.Now for st.
func (sp *Span) Stamp(st Stage) {
	if sp == nil {
		return
	}
	sp.ts[st] = time.Now().UnixNano()
}

// StampAt records an already-read clock value for st, letting call
// sites share one clock read across adjacent stages or across every
// lane of a batch.
func (sp *Span) StampAt(st Stage, unixNs int64) {
	if sp == nil {
		return
	}
	sp.ts[st] = unixNs
}

// SetFlag sets the given flag bits.
func (sp *Span) SetFlag(f uint32) {
	if sp == nil {
		return
	}
	for {
		old := sp.flags.Load()
		if old&f == f || sp.flags.CompareAndSwap(old, old|f) {
			return
		}
	}
}

// AddRef adds one finalization reference. The span finalizes when
// every reference is released by Finish; the escalation path holds a
// second reference so a span is never recycled while level 2 still
// writes to it.
func (sp *Span) AddRef() {
	if sp == nil {
		return
	}
	sp.refs.Add(1)
}

// Finish releases one reference; the last release finalizes the span:
// wall time is computed, the recorder's observer (stage histograms)
// runs, the keep decision is made, and the span returns to the free
// list.
func (sp *Span) Finish() {
	if sp == nil {
		return
	}
	if sp.refs.Add(-1) == 0 {
		sp.rec.finalize(sp)
	}
}

// DecisionInputs are the admission-side inputs behind one shed/drop
// decision, captured into its record so a scrape can say not just that
// a request was rejected but what the controller saw at that instant.
type DecisionInputs struct {
	// Ratio is the backlog model's processing ratio at decision time.
	Ratio float64
	// ArrivalNs is the EWMA inter-arrival estimate (ns).
	ArrivalNs float64
	// QueueLen is the instantaneous (d, e) queue length.
	QueueLen int
	// Weight is the request class's normalized service-cost weight in
	// (0, 1] under weighted admission (0 when weighting is off or the
	// decision predates any cost measurement).
	Weight float64
	// SojournNs is how long the request had been queued when a
	// drop-oldest decision evicted it (0 for admission-time sheds).
	SojournNs int64
}

// FinishDecision finalizes the span as a shed/drop decision record:
// always kept, in the decision ring.
func (sp *Span) FinishDecision(kind Kind, reason Reason, in DecisionInputs) {
	if sp == nil {
		return
	}
	sp.kind = kind
	sp.reason = reason
	sp.in = in
	sp.Finish()
}

// FinishError finalizes the span as a pre-admission error record (kept
// only when sampled).
func (sp *Span) FinishError() {
	if sp == nil {
		return
	}
	sp.kind = KindError
	sp.Finish()
}

// Record is one committed (immutable) flight-recorder entry: a plain
// value copy of a finalized span.
type Record struct {
	Seq   uint64 `json:"seq"`
	ID    uint64 `json:"id"`
	D     int32  `json:"d"`
	EType uint8  `json:"etype"`
	Kind  Kind   `json:"-"`
	Flags uint32 `json:"-"`

	Reason    Reason  `json:"-"`
	Ratio     float64 `json:"ratio,omitempty"`
	ArrivalNs float64 `json:"arrival_ns,omitempty"`
	QueueLen  int32   `json:"queue_len,omitempty"`
	Weight    float64 `json:"weight,omitempty"`
	SojournNs int64   `json:"sojourn_ns,omitempty"`

	WallNs int64            `json:"wall_ns"`
	TS     [NumStages]int64 `json:"-"`
}

// Config sizes a Recorder. Zero fields take defaults.
type Config struct {
	// Depth is the trace ring's capacity (default 256).
	Depth int
	// DecisionDepth is the shed/drop decision ring's capacity
	// (default 256).
	DecisionDepth int
	// MaxInFlight bounds concurrently live spans — the free-list size
	// (default 4096). Requests beyond it go untraced.
	MaxInFlight int
	// SampleN is the 1-in-N sampling period; N <= 0 means sample
	// nothing (outlier and decision capture still run). N == 1 traces
	// everything.
	SampleN int
}

// DefaultSample reads REPRO_TRACE_SAMPLE: unset means 16, "0" or "off"
// means tracing disabled (returns 0), anything else must be a positive
// integer sampling period. An illegal value panics, per the knob
// contract — a typo'd knob must never silently select a default.
func DefaultSample() int {
	v := knob.String("REPRO_TRACE_SAMPLE")
	switch v {
	case "":
		return 16
	case "0", "off":
		return 0
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 {
		panic(fmt.Sprintf("knob: REPRO_TRACE_SAMPLE=%q is not a positive integer, 0, or off", v))
	}
	return n
}

// Counters are the recorder's own accounting, exposed by Snapshot.
type Counters struct {
	Started   uint64 `json:"started"`   // spans handed out
	Untraced  uint64 `json:"untraced"`  // Start calls refused (free list dry)
	Kept      uint64 `json:"kept"`      // request records committed to the ring
	Outliers  uint64 `json:"outliers"`  // kept because of the outlier rule
	Decisions uint64 `json:"decisions"` // shed/drop records committed
	Finalized uint64 `json:"finalized"` // spans finalized (kept or not)
}

// Recorder is the flight recorder: a span free list, a trace ring and
// a decision ring. One Recorder serves one Server; all methods are
// safe for concurrent use.
type Recorder struct {
	sampleN  uint64
	observer func(*Span)

	seq       atomic.Uint64
	tick      atomic.Uint64
	maxBucket atomic.Int64 // highest wall-time bucket index seen

	started, untraced, kept, outliers, decisions, finalized atomic.Uint64

	mu   sync.Mutex
	free []*Span
	ring []Record
	rpos int // next write position
	rlen int // valid entries

	dmu   sync.Mutex
	dring []Record
	dpos  int
	dlen  int
}

// New builds a recorder. A nil *Recorder is a valid "tracing off"
// recorder: Start returns nil and RecordDecision is a no-op.
func New(cfg Config) *Recorder {
	if cfg.Depth <= 0 {
		cfg.Depth = 256
	}
	if cfg.DecisionDepth <= 0 {
		cfg.DecisionDepth = 256
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 4096
	}
	r := &Recorder{
		ring:  make([]Record, cfg.Depth),
		dring: make([]Record, cfg.DecisionDepth),
		free:  make([]*Span, cfg.MaxInFlight),
	}
	if cfg.SampleN > 0 {
		r.sampleN = uint64(cfg.SampleN)
	}
	r.maxBucket.Store(-1)
	spans := make([]Span, cfg.MaxInFlight)
	for i := range spans {
		spans[i].rec = r
		r.free[i] = &spans[i]
	}
	return r
}

// SetObserver installs the finalize hook: fn runs once per finalized
// span, before the keep decision, on whichever goroutine released the
// last reference. The serve layer uses it to feed the per-stage
// histograms. Install before traffic; not synchronized with Start.
func (r *Recorder) SetObserver(fn func(*Span)) { r.observer = fn }

// SampleN returns the sampling period (0 = sampling off).
func (r *Recorder) SampleN() int {
	if r == nil {
		return 0
	}
	return int(r.sampleN)
}

// Start claims a span for one request. It returns nil — meaning the
// request goes untraced — when the recorder is nil or every span is in
// flight. The span arrives with one finalization reference held.
func (r *Recorder) Start(id uint64, d int, etype uint8) *Span {
	if r == nil {
		return nil
	}
	r.started.Add(1)
	r.mu.Lock()
	n := len(r.free)
	if n == 0 {
		r.mu.Unlock()
		r.untraced.Add(1)
		return nil
	}
	sp := r.free[n-1]
	r.free[n-1] = nil
	r.free = r.free[:n-1]
	r.mu.Unlock()

	sp.ts = [NumStages]int64{}
	sp.seq = r.seq.Add(1)
	sp.id, sp.d, sp.etype = id, int32(d), uint8(etype)
	sp.kind, sp.reason = KindRequest, ReasonNone
	sp.in = DecisionInputs{}
	sp.wallNs = 0
	sp.flags.Store(0)
	sp.refs.Store(1)
	if r.sampleN > 0 && r.tick.Add(1)%r.sampleN == 0 {
		sp.flags.Store(FlagSampled)
	}
	return sp
}

// RecordDecision commits a shed/drop decision record directly, for
// call sites that have no span (untraced request, or a decision that
// must not consume the request's own span, like an escalation drop).
func (r *Recorder) RecordDecision(kind Kind, id uint64, d int, etype uint8,
	reason Reason, in DecisionInputs) {
	if r == nil {
		return
	}
	rec := Record{
		Seq: r.seq.Add(1), ID: id, D: int32(d), EType: etype,
		Kind: kind, Reason: reason,
		Ratio: in.Ratio, ArrivalNs: in.ArrivalNs, QueueLen: int32(in.QueueLen),
		Weight: in.Weight, SojournNs: in.SojournNs,
	}
	r.commitDecision(&rec)
}

// finalize runs when a span's last reference is released.
func (r *Recorder) finalize(sp *Span) {
	r.finalized.Add(1)
	// Wall time: response write minus accept; fall back to the latest
	// stamp for spans that never reached the writer (errors, sheds).
	if acc := sp.ts[StageAccept]; acc != 0 {
		end := sp.ts[StageRespWrite]
		if end == 0 {
			for st := NumStages - 1; st > StageAccept; st-- {
				if sp.ts[st] != 0 {
					end = sp.ts[st]
					break
				}
			}
		}
		if end >= acc {
			sp.wallNs = end - acc
		}
	}
	if r.observer != nil {
		r.observer(sp)
	}

	switch sp.kind {
	case KindShed, KindEscDrop:
		rec := spanRecord(sp)
		r.commitDecision(&rec)
	default:
		keep := sp.flags.Load()&FlagSampled != 0
		if sp.kind == KindRequest && sp.wallNs > 0 {
			// Outlier rule: within one octave of the largest wall-time
			// bucket seen so far. The running maximum itself always
			// qualifies, so the worst request on record is always kept.
			b := int64(obs.BucketIndex(uint64(sp.wallNs)))
			max := r.maxBucket.Load()
			for b > max && !r.maxBucket.CompareAndSwap(max, b) {
				max = r.maxBucket.Load()
			}
			if max < b {
				max = b
			}
			if b+obs.BucketsPerOctave > max {
				sp.SetFlag(FlagOutlier)
				r.outliers.Add(1)
				keep = true
			}
		}
		if keep {
			rec := spanRecord(sp)
			r.commit(&rec)
		}
	}

	r.mu.Lock()
	r.free = append(r.free, sp)
	r.mu.Unlock()
}

// spanRecord copies a finalized span into a plain Record.
func spanRecord(sp *Span) Record {
	return Record{
		Seq: sp.seq, ID: sp.id, D: sp.d, EType: sp.etype,
		Kind: sp.kind, Flags: sp.flags.Load(), Reason: sp.reason,
		Ratio: sp.in.Ratio, ArrivalNs: sp.in.ArrivalNs, QueueLen: int32(sp.in.QueueLen),
		Weight: sp.in.Weight, SojournNs: sp.in.SojournNs,
		WallNs: sp.wallNs, TS: sp.ts,
	}
}

func (r *Recorder) commit(rec *Record) {
	r.kept.Add(1)
	r.mu.Lock()
	r.ring[r.rpos] = *rec
	r.rpos = (r.rpos + 1) % len(r.ring)
	if r.rlen < len(r.ring) {
		r.rlen++
	}
	r.mu.Unlock()
}

func (r *Recorder) commitDecision(rec *Record) {
	r.decisions.Add(1)
	r.dmu.Lock()
	r.dring[r.dpos] = *rec
	r.dpos = (r.dpos + 1) % len(r.dring)
	if r.dlen < len(r.dring) {
		r.dlen++
	}
	r.dmu.Unlock()
}

// Snapshot is a point-in-time copy of the recorder's state.
type Snapshot struct {
	SampleN  int      `json:"sample_n"`
	Counters Counters `json:"counters"`
	// Traces are the committed request records, newest first.
	Traces []Record `json:"traces"`
	// Decisions are the committed shed/drop records, newest first.
	Decisions []Record `json:"decisions"`
}

// Snapshot copies both rings, newest first.
func (r *Recorder) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	s := Snapshot{
		SampleN: int(r.sampleN),
		Counters: Counters{
			Started:   r.started.Load(),
			Untraced:  r.untraced.Load(),
			Kept:      r.kept.Load(),
			Outliers:  r.outliers.Load(),
			Decisions: r.decisions.Load(),
			Finalized: r.finalized.Load(),
		},
	}
	r.mu.Lock()
	s.Traces = copyRing(r.ring, r.rpos, r.rlen)
	r.mu.Unlock()
	r.dmu.Lock()
	s.Decisions = copyRing(r.dring, r.dpos, r.dlen)
	r.dmu.Unlock()
	return s
}

// copyRing extracts a ring's valid entries newest-first.
func copyRing(ring []Record, pos, n int) []Record {
	out := make([]Record, n)
	for i := 0; i < n; i++ {
		out[i] = ring[(pos-1-i+len(ring))%len(ring)]
	}
	return out
}

// Resolve returns the committed request record with the given sequence
// number, if it is still in the ring — the exemplar → trace link.
func (s *Snapshot) Resolve(seq uint64) *Record {
	for i := range s.Traces {
		if s.Traces[i].Seq == seq {
			return &s.Traces[i]
		}
	}
	return nil
}
