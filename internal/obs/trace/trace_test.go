package trace

import (
	"testing"
	"time"

	"repro/internal/obs"
)

// stampAll walks a span through a plausible request lifecycle with the
// given wall time and finishes it.
func stampAll(sp *Span, base, wallNs int64) {
	sp.StampAt(StageAccept, base)
	sp.StampAt(StageAdmit, base)
	sp.StampAt(StageEnqueue, base)
	sp.StampAt(StageCoalesce, base+wallNs/4)
	sp.StampAt(StageDecodeStart, base+wallNs/2)
	sp.StampAt(StageDecodeEnd, base+3*wallNs/4)
	sp.StampAt(StageRespWrite, base+wallNs)
	sp.Finish()
}

// TestNilSafety pins the zero-branch contract: every Span method on a
// nil receiver and every Recorder method on a nil recorder is a no-op,
// so untraced requests need no "is tracing on" checks at call sites.
func TestNilSafety(t *testing.T) {
	var r *Recorder
	if sp := r.Start(1, 3, 0); sp != nil {
		t.Fatal("nil recorder handed out a span")
	}
	r.RecordDecision(KindShed, 1, 3, 0, ReasonController, DecisionInputs{Ratio: 1, ArrivalNs: 1, QueueLen: 1})
	if s := r.Snapshot(); len(s.Traces) != 0 || len(s.Decisions) != 0 {
		t.Fatal("nil recorder snapshot is not empty")
	}
	if r.SampleN() != 0 {
		t.Fatal("nil recorder SampleN != 0")
	}
	var sp *Span
	sp.Stamp(StageAccept)
	sp.StampAt(StageAccept, 1)
	sp.SetFlag(FlagOutlier)
	sp.AddRef()
	sp.Finish()
	sp.FinishDecision(KindShed, ReasonController, DecisionInputs{Ratio: 1, ArrivalNs: 1, QueueLen: 1})
	sp.FinishError()
	if sp.Seq() != 0 || sp.WallNs() != 0 || sp.Flags() != 0 || sp.TS(StageAccept) != 0 {
		t.Fatal("nil span accessors are not zero")
	}
}

// TestSampledSpanCommits pins the basic ring protocol: with SampleN 1
// every finished request span commits one record, newest first, with
// the stage stamps and wall time intact, and the span recycles through
// the free list.
func TestSampledSpanCommits(t *testing.T) {
	r := New(Config{SampleN: 1, Depth: 4, MaxInFlight: 2})
	base := time.Now().UnixNano()
	for i := 0; i < 6; i++ {
		sp := r.Start(uint64(100+i), 5, 1)
		if sp == nil {
			t.Fatalf("span %d: free list dry with all spans finished", i)
		}
		if sp.Flags()&FlagSampled == 0 {
			t.Fatalf("span %d not sampled at SampleN 1", i)
		}
		stampAll(sp, base, int64(1000*(i+1)))
	}
	s := r.Snapshot()
	if s.Counters.Started != 6 || s.Counters.Finalized != 6 || s.Counters.Untraced != 0 {
		t.Fatalf("counters: %+v", s.Counters)
	}
	if len(s.Traces) != 4 {
		t.Fatalf("ring holds %d, want depth 4", len(s.Traces))
	}
	// Newest first: the last committed span leads.
	if s.Traces[0].ID != 105 || s.Traces[3].ID != 102 {
		t.Fatalf("ring order: ids %d..%d, want 105..102", s.Traces[0].ID, s.Traces[3].ID)
	}
	rec := s.Traces[0]
	if rec.WallNs != 6000 {
		t.Fatalf("wall %d, want 6000", rec.WallNs)
	}
	if rec.TS[StageCoalesce] != base+1500 || rec.TS[StageRespWrite] != base+6000 {
		t.Fatalf("stamps did not survive commit: %v", rec.TS)
	}
	if got := s.Resolve(rec.Seq); got == nil || got.ID != rec.ID {
		t.Fatalf("Resolve(%d) = %v", rec.Seq, got)
	}
	if s.Resolve(9999) != nil {
		t.Fatal("Resolve of an unknown seq returned a record")
	}
}

// TestOutlierRule pins the always-on outlier capture: with sampling
// effectively off, a new wall-time maximum is always kept and flagged,
// anything within one octave of the max bucket is kept, and a request
// more than an octave below is not.
func TestOutlierRule(t *testing.T) {
	r := New(Config{SampleN: 1 << 30, Depth: 16})
	base := time.Now().UnixNano()

	finish := func(id uint64, wallNs int64) {
		sp := r.Start(id, 5, 0)
		if sp.Flags()&FlagSampled != 0 {
			t.Fatalf("span %d sampled at period 2^30", id)
		}
		stampAll(sp, base, wallNs)
	}
	finish(1, 1_000_000) // first request: the running max, kept
	finish(2, 2_000_000) // new max, kept
	finish(3, 1_500_000) // within an octave of the max bucket, kept
	finish(4, 10_000)    // 200× below: dropped
	s := r.Snapshot()
	if s.Counters.Outliers != 3 || len(s.Traces) != 3 {
		t.Fatalf("outliers %d, kept %d; want 3, 3", s.Counters.Outliers, len(s.Traces))
	}
	for _, rec := range s.Traces {
		if rec.ID == 4 {
			t.Fatal("the 200×-below-max request was kept")
		}
		if rec.Flags&FlagOutlier == 0 {
			t.Fatalf("record %d kept without the outlier flag", rec.ID)
		}
	}
}

// TestDecisionCapture pins the always-on shed/drop ring: decisions
// carry the controller inputs, land in their own ring (a shed storm
// cannot evict traces), and flow both through spans (FinishDecision)
// and the span-less direct path (RecordDecision).
func TestDecisionCapture(t *testing.T) {
	r := New(Config{SampleN: 1 << 30, Depth: 4, DecisionDepth: 8})

	sp := r.Start(7, 9, 1)
	sp.Stamp(StageAccept)
	sp.FinishDecision(KindShed, ReasonController,
		DecisionInputs{Ratio: 1.75, ArrivalNs: 42_000, QueueLen: 64, Weight: 0.25})
	r.RecordDecision(KindEscDrop, 8, 7, 0, ReasonEscQueueFull,
		DecisionInputs{Ratio: 0.5, ArrivalNs: 10_000, QueueLen: 256})
	r.RecordDecision(KindShed, 9, 13, 0, ReasonSojourn,
		DecisionInputs{Ratio: 1.2, ArrivalNs: 5_000, QueueLen: 32, Weight: 1, SojournNs: 3_500_000})

	s := r.Snapshot()
	if len(s.Decisions) != 3 || s.Counters.Decisions != 3 {
		t.Fatalf("decisions: %d records, counter %d", len(s.Decisions), s.Counters.Decisions)
	}
	if len(s.Traces) != 0 {
		t.Fatal("decision records leaked into the trace ring")
	}
	soj, drop, shed := s.Decisions[0], s.Decisions[1], s.Decisions[2] // newest first
	if shed.Kind != KindShed || shed.Reason != ReasonController ||
		shed.Ratio != 1.75 || shed.ArrivalNs != 42_000 || shed.QueueLen != 64 ||
		shed.ID != 7 || shed.Weight != 0.25 {
		t.Fatalf("shed decision: %+v", shed)
	}
	if drop.Kind != KindEscDrop || drop.Reason != ReasonEscQueueFull || drop.QueueLen != 256 {
		t.Fatalf("esc-drop decision: %+v", drop)
	}
	if soj.Reason != ReasonSojourn || soj.SojournNs != 3_500_000 || soj.Weight != 1 {
		t.Fatalf("sojourn decision lost its inputs: %+v", soj)
	}
}

// TestFreeListExhaustion pins the untraced-not-blocked contract: with
// every span in flight, Start returns nil and counts, and spans return
// to the free list on finish.
func TestFreeListExhaustion(t *testing.T) {
	r := New(Config{SampleN: 1, MaxInFlight: 2})
	a, b := r.Start(1, 3, 0), r.Start(2, 3, 0)
	if a == nil || b == nil {
		t.Fatal("free list dry before exhaustion")
	}
	if c := r.Start(3, 3, 0); c != nil {
		t.Fatal("Start handed out a third span from a 2-span free list")
	}
	if got := r.Snapshot().Counters.Untraced; got != 1 {
		t.Fatalf("untraced %d, want 1", got)
	}
	a.Finish()
	if c := r.Start(4, 3, 0); c == nil {
		t.Fatal("span did not return to the free list after Finish")
	} else {
		c.Finish()
	}
	b.Finish()
}

// TestEscalationRefCount pins the two-owner protocol: with an extra
// reference held (the escalation path), the first Finish does not
// finalize; the last one does, and stamps written between the two are
// in the committed record.
func TestEscalationRefCount(t *testing.T) {
	r := New(Config{SampleN: 1})
	base := time.Now().UnixNano()
	sp := r.Start(1, 9, 0)
	seq := sp.Seq()
	sp.StampAt(StageAccept, base)
	sp.SetFlag(FlagEscalated)
	sp.AddRef()
	sp.StampAt(StageRespWrite, base+1000)
	sp.Finish() // transport's release: one reference remains
	if got := r.Snapshot().Counters.Finalized; got != 0 {
		t.Fatalf("span finalized with a reference outstanding (finalized=%d)", got)
	}
	sp.StampAt(StageEscalateStart, base+2000)
	sp.StampAt(StageEscalateEnd, base+5000)
	sp.Finish() // level 2's release finalizes
	s := r.Snapshot()
	if len(s.Traces) != 1 {
		t.Fatalf("kept %d, want 1", len(s.Traces))
	}
	rec := s.Traces[0]
	if rec.Seq != seq || rec.Flags&FlagEscalated == 0 {
		t.Fatalf("record: %+v", rec)
	}
	if rec.WallNs != 1000 {
		t.Fatalf("wall %d: escalate stages leaked into wall time", rec.WallNs)
	}
	if rec.TS[StageEscalateEnd] != base+5000 {
		t.Fatal("level-2 stamps missing from the committed record")
	}
}

// TestObserverDeltas pins the finalize-hook contract the serve layer
// builds its stage histograms on: the observer sees the span after wall
// time is computed, with all stamps readable.
func TestObserverDeltas(t *testing.T) {
	r := New(Config{SampleN: 1})
	var wall int64
	var queueWait int64
	r.SetObserver(func(sp *Span) {
		wall = sp.WallNs()
		queueWait = sp.TS(StageCoalesce) - sp.TS(StageEnqueue)
	})
	sp := r.Start(1, 5, 0)
	stampAll(sp, time.Now().UnixNano(), 8000)
	if wall != 8000 || queueWait != 2000 {
		t.Fatalf("observer saw wall=%d queueWait=%d, want 8000, 2000", wall, queueWait)
	}
}

// TestDefaultSample pins the REPRO_TRACE_SAMPLE parse contract.
func TestDefaultSample(t *testing.T) {
	for _, tc := range []struct {
		env  string
		want int
	}{{"", 16}, {"0", 0}, {"off", 0}, {"1", 1}, {"64", 64}} {
		t.Setenv("REPRO_TRACE_SAMPLE", tc.env)
		if got := DefaultSample(); got != tc.want {
			t.Errorf("REPRO_TRACE_SAMPLE=%q: %d, want %d", tc.env, got, tc.want)
		}
	}
	t.Setenv("REPRO_TRACE_SAMPLE", "every-third")
	defer func() {
		if recover() == nil {
			t.Fatal("garbage REPRO_TRACE_SAMPLE did not panic")
		}
	}()
	DefaultSample()
}

// TestZeroAllocHotPath pins the flight recorder's central promise: the
// fully traced request path — claim a span, stamp every stage, commit
// to the ring through an observer feeding a histogram — allocates
// nothing, even at SampleN 1 where every span commits.
func TestZeroAllocHotPath(t *testing.T) {
	r := New(Config{SampleN: 1})
	h := obs.NewHistogram()
	r.SetObserver(func(sp *Span) {
		if w := sp.WallNs(); w > 0 {
			h.Observe(uint64(w))
		}
	})
	base := time.Now().UnixNano()
	id := uint64(0)
	if avg := testing.AllocsPerRun(200, func() {
		id++
		sp := r.Start(id, 9, 0)
		if sp == nil {
			t.Fatal("free list dry")
		}
		stampAll(sp, base, 5000)
	}); avg != 0 {
		t.Fatalf("traced request path allocates %.1f/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() {
		r.RecordDecision(KindShed, 1, 9, 0, ReasonController,
			DecisionInputs{Ratio: 1.5, ArrivalNs: 1000, QueueLen: 64, Weight: 0.5})
	}); avg != 0 {
		t.Fatalf("decision path allocates %.1f/op, want 0", avg)
	}
}
