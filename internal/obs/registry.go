package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is a named-metric table: counters, gauges and histograms are
// created on first use and shared by name, so independent subsystems
// (the Monte-Carlo engine, the SFQ mesh, the decode pool) contribute to
// one exposition surface without knowing about each other. All methods
// are safe for concurrent use; the get-or-create fast path takes a read
// lock only.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	manifest atomic.Pointer[Manifest]
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// defaultRegistry is the process-wide registry the instrumented hot
// layers record into; the --obs flag of the cmd binaries serves it.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = new(Counter)
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = new(Gauge)
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = NewHistogram()
		r.hists[name] = h
	}
	return h
}

// SetManifest attaches the run manifest served at /manifest.json and
// embedded in the JSON exposition.
func (r *Registry) SetManifest(m *Manifest) { r.manifest.Store(m) }

// Manifest returns the attached run manifest, or nil.
func (r *Registry) Manifest() *Manifest { return r.manifest.Load() }

// snapshot copies the metric tables under the read lock so exposition
// never holds the lock while formatting.
func (r *Registry) snapshot() (counters map[string]int64, gauges map[string]int64, hists map[string]Snapshot) {
	r.mu.RLock()
	cs := make(map[string]*Counter, len(r.counters))
	gs := make(map[string]*Gauge, len(r.gauges))
	hs := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.counters {
		cs[k] = v
	}
	for k, v := range r.gauges {
		gs[k] = v
	}
	for k, v := range r.hists {
		hs[k] = v
	}
	r.mu.RUnlock()
	counters = make(map[string]int64, len(cs))
	gauges = make(map[string]int64, len(gs))
	hists = make(map[string]Snapshot, len(hs))
	for k, v := range cs {
		counters[k] = v.Load()
	}
	for k, v := range gs {
		gauges[k] = v.Load()
	}
	for k, v := range hs {
		hists[k] = v.Snapshot()
	}
	return counters, gauges, hists
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WritePrometheus renders every metric in the Prometheus text
// exposition format (histograms as cumulative _bucket/_sum/_count
// series with inclusive le edges). Output is sorted by name so scrapes
// diff cleanly.
func (r *Registry) WritePrometheus(w io.Writer) error {
	counters, gauges, hists := r.snapshot()
	for _, name := range sortedKeys(counters) {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(gauges) {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(hists) {
		s := hists[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		var cum uint64
		for _, b := range s.Buckets {
			cum += b.Count
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, b.Hi-1, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
			name, s.Count, name, s.Sum, name, s.Count); err != nil {
			return err
		}
	}
	return nil
}

// jsonExposition is the /metrics.json document.
type jsonExposition struct {
	Manifest   *Manifest          `json:"manifest,omitempty"`
	Counters   map[string]int64   `json:"counters"`
	Gauges     map[string]int64   `json:"gauges"`
	Histograms map[string]Summary `json:"histograms"`
}

// WriteJSON renders every metric (histograms as quantile summaries)
// plus the run manifest as one JSON document.
func (r *Registry) WriteJSON(w io.Writer) error {
	counters, gauges, hists := r.snapshot()
	doc := jsonExposition{
		Manifest:   r.Manifest(),
		Counters:   counters,
		Gauges:     gauges,
		Histograms: make(map[string]Summary, len(hists)),
	}
	for name, s := range hists {
		doc.Histograms[name] = s.Summary()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
