package obs

import "sync/atomic"

// Exemplar support: a histogram can optionally remember, per bucket,
// the sequence number of the most recent trace whose observation landed
// there. That is the link the flight recorder needs — "this p99 bucket
// of serve_decode_ns was last fed by trace #1234" — without adding any
// cost to histograms that never ask for it (one nil pointer check on
// the plain Observe path, nothing else).
//
// An exemplar is two atomic words per bucket (value and trace seq),
// stored last-writer-wins: exemplars are navigation aids into the
// flight-recorder ring, not statistics, so racing writers are fine.

// exemplarTable is the per-bucket exemplar store, allocated lazily by
// EnableExemplars so plain histograms stay ~4 KiB.
type exemplarTable struct {
	val [histBuckets]atomic.Uint64
	seq [histBuckets]atomic.Uint64 // 0 = no exemplar (trace seqs start at 1)
}

// EnableExemplars turns on exemplar capture for this histogram. It is
// idempotent and safe to call concurrently with observers.
func (h *Histogram) EnableExemplars() {
	if h.ex.Load() != nil {
		return
	}
	h.ex.CompareAndSwap(nil, new(exemplarTable))
}

// ObserveExemplar records one value like Observe and, when exemplars
// are enabled and seq is nonzero, tags the value's bucket with the
// trace sequence number that produced it.
func (h *Histogram) ObserveExemplar(v uint64, seq uint64) {
	i := bucketOf(v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	atomicMax(&h.max, v)
	atomicMax(&h.invMin, ^v)
	if t := h.ex.Load(); t != nil && seq != 0 {
		t.val[i].Store(v)
		t.seq[i].Store(seq)
	}
}

// Exemplar is one bucket's most recent tagged observation.
type Exemplar struct {
	// BucketLo and BucketHi are the half-open value range of the bucket.
	BucketLo uint64 `json:"bucket_lo"`
	BucketHi uint64 `json:"bucket_hi"`
	// Value is the tagged observation.
	Value uint64 `json:"value"`
	// Seq is the trace sequence number that produced Value; resolve it
	// against the flight recorder's ring (the trace may have aged out).
	Seq uint64 `json:"trace_seq"`
}

// Exemplars returns the current exemplar set, lowest bucket first, or
// nil when exemplars were never enabled or none were recorded. Under
// concurrent writers each entry is a valid (value, seq) pair from some
// recent observation; value and seq of one entry may come from two
// racing observations — both still point into the same bucket.
func (h *Histogram) Exemplars() []Exemplar {
	t := h.ex.Load()
	if t == nil {
		return nil
	}
	var out []Exemplar
	for i := 0; i < histBuckets; i++ {
		seq := t.seq[i].Load()
		if seq == 0 {
			continue
		}
		lo, hi := bucketBounds(i)
		out = append(out, Exemplar{BucketLo: lo, BucketHi: hi, Value: t.val[i].Load(), Seq: seq})
	}
	return out
}
