package obs

import (
	"math/bits"
	"sync/atomic"
)

// Log-bucketed latency histogram: values 0–7 get exact unit buckets,
// larger values land in octaves split into 8 sub-buckets, so every
// bucket is at most 12.5% wide relative to its lower edge. The layout
// covers the full uint64 range in 496 buckets, which keeps a Histogram
// small enough (~4 KiB) to allocate per point or per shard.
const (
	histSubBits = 3
	histSub     = 1 << histSubBits // sub-buckets per octave
	// Top exponent is 64-histSubBits-1; each exponent's sub-index spans
	// [histSub, 2·histSub), so the largest index is exp<<histSubBits +
	// 2·histSub - 1 = 495.
	histBuckets = (64-histSubBits-1)<<histSubBits + 2*histSub
)

// bucketOf maps a value to its bucket index. The mapping is monotone
// and contiguous: bucket boundaries never overlap or leave gaps.
func bucketOf(v uint64) int {
	if v < histSub {
		return int(v)
	}
	exp := bits.Len64(v) - histSubBits - 1
	return exp<<histSubBits + int(v>>exp)
}

// bucketBounds returns the half-open value range [lo, hi) of bucket i.
// For the topmost bucket hi wraps to 0 (lo + width = 2^64); consumers
// only ever use hi-1, which correctly lands on MaxUint64.
func bucketBounds(i int) (lo, hi uint64) {
	if i < histSub {
		return uint64(i), uint64(i) + 1
	}
	exp := uint(i>>histSubBits) - 1
	m := uint64(i) - uint64(exp)<<histSubBits
	lo = m << exp
	return lo, lo + 1<<exp
}

// BucketIndex exposes the histogram's value→bucket mapping (monotone,
// contiguous, 12.5% relative width). The request tracer uses it to
// decide whether a wall time lands in the top buckets of the live
// latency distribution — the "outlier" capture rule.
func BucketIndex(v uint64) int { return bucketOf(v) }

// BucketsPerOctave is how many sub-buckets one power-of-two value range
// spans: bucket indices within BucketsPerOctave of the maximum seen are
// "within one octave of the max", the tracer's outlier band.
const BucketsPerOctave = histSub

// Histogram is a concurrency-safe log-bucketed histogram. Observe is
// lock-free (plain atomic adds), histograms merge exactly (bucket
// counts and the value sum are additive), and Snapshot extracts
// quantiles with a bounded relative error of 12.5%. Min, max and the
// value sum are tracked exactly, so Snapshot.Mean and Summary.Max are
// not subject to bucketing error. The zero value is ready to use.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
	invMin  atomic.Uint64 // ^min; zero value decodes to MaxUint64 (unset)
	ex      atomic.Pointer[exemplarTable]
	buckets [histBuckets]atomic.Uint64
}

// NewHistogram returns an empty histogram. Use it for unregistered
// histograms (per-point or per-shard accumulators); named process-wide
// histograms come from Registry.Histogram.
func NewHistogram() *Histogram { return new(Histogram) }

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	atomicMax(&h.max, v)
	atomicMax(&h.invMin, ^v)
}

// ObserveN records n observations of the same value in one shot. The
// runtime/metrics bridge uses it to fold cumulative runtime histogram
// deltas (bucket midpoint × new count) into a registry histogram
// without n individual Observe calls.
func (h *Histogram) ObserveN(v uint64, n uint64) {
	if n == 0 {
		return
	}
	h.buckets[bucketOf(v)].Add(n)
	h.count.Add(n)
	h.sum.Add(v * n)
	atomicMax(&h.max, v)
	atomicMax(&h.invMin, ^v)
}

// atomicMax raises *a to v if v is larger.
func atomicMax(a *atomic.Uint64, v uint64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Merge adds src's observations into h. Merging is exact, commutative
// and associative (bucket counts and sums are additive), so shard-level
// histograms can be combined in any order — the property the
// Monte-Carlo checkpoint merge relies on. Concurrent Observes on either
// histogram are safe; the merge then reflects some valid interleaving.
func (h *Histogram) Merge(src *Histogram) {
	for i := range src.buckets {
		if c := src.buckets[i].Load(); c > 0 {
			h.buckets[i].Add(c)
		}
	}
	h.count.Add(src.count.Load())
	h.sum.Add(src.sum.Load())
	atomicMax(&h.max, src.max.Load())
	atomicMax(&h.invMin, src.invMin.Load())
}

// Bucket is one non-empty bucket of a Snapshot: Count observations in
// the half-open value range [Lo, Hi).
type Bucket struct {
	Lo    uint64 `json:"lo"`
	Hi    uint64 `json:"hi"`
	Count uint64 `json:"count"`
}

// Snapshot is a point-in-time copy of a histogram. Under concurrent
// writers the copy is a valid histogram of some prefix of the
// observation stream.
type Snapshot struct {
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Min     uint64   `json:"min"`
	Max     uint64   `json:"max"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() Snapshot {
	s := Snapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
		Min:   ^h.invMin.Load(),
	}
	if s.Count == 0 {
		s.Min = 0
		return s
	}
	for i := range h.buckets {
		if c := h.buckets[i].Load(); c > 0 {
			lo, hi := bucketBounds(i)
			s.Buckets = append(s.Buckets, Bucket{Lo: lo, Hi: hi, Count: c})
		}
	}
	return s
}

// Merge returns the snapshot of the combined observation streams:
// counts and sums add, min/max widen, and buckets (kept sorted by lower
// bound) sum pointwise. Merging snapshots of same-shaped histograms is
// exact — the serve controller uses it to treat level-1 decode latency
// and level-2 escalation latency as one service-time distribution.
func (s Snapshot) Merge(o Snapshot) Snapshot {
	if o.Count == 0 {
		return s
	}
	if s.Count == 0 {
		return o
	}
	out := Snapshot{
		Count: s.Count + o.Count,
		Sum:   s.Sum + o.Sum,
		Min:   s.Min,
		Max:   s.Max,
	}
	if o.Min < out.Min {
		out.Min = o.Min
	}
	if o.Max > out.Max {
		out.Max = o.Max
	}
	out.Buckets = make([]Bucket, 0, len(s.Buckets)+len(o.Buckets))
	i, j := 0, 0
	for i < len(s.Buckets) || j < len(o.Buckets) {
		switch {
		case j >= len(o.Buckets) || (i < len(s.Buckets) && s.Buckets[i].Lo < o.Buckets[j].Lo):
			out.Buckets = append(out.Buckets, s.Buckets[i])
			i++
		case i >= len(s.Buckets) || o.Buckets[j].Lo < s.Buckets[i].Lo:
			out.Buckets = append(out.Buckets, o.Buckets[j])
			j++
		default:
			b := s.Buckets[i]
			b.Count += o.Buckets[j].Count
			out.Buckets = append(out.Buckets, b)
			i, j = i+1, j+1
		}
	}
	return out
}

// Mean returns the exact mean of the observed values (the sum is
// tracked outside the buckets), or 0 for an empty snapshot.
func (s Snapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns an upper bound on the q-quantile (0 ≤ q ≤ 1) of the
// observed values: the result r satisfies x ≤ r ≤ x + max(0, x/8) where
// x is the exact rank-⌈q·n⌉ order statistic. Quantile(1) equals the
// exact maximum.
func (s Snapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(q * float64(s.Count))
	if float64(rank) < q*float64(s.Count) || rank == 0 {
		rank++ // ceil, floored at rank 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var seen uint64
	for _, b := range s.Buckets {
		seen += b.Count
		if seen >= rank {
			r := b.Hi - 1
			if r > s.Max {
				r = s.Max
			}
			if r < s.Min {
				r = s.Min
			}
			return r
		}
	}
	return s.Max
}

// Summary condenses a snapshot to the quantile set the sweep harnesses
// report (p50/p90/p99 carry the histogram's 12.5% bucket error; Min,
// Max and Mean are exact).
type Summary struct {
	Count uint64  `json:"count"`
	Min   uint64  `json:"min"`
	Max   uint64  `json:"max"`
	P50   uint64  `json:"p50"`
	P90   uint64  `json:"p90"`
	P99   uint64  `json:"p99"`
	Mean  float64 `json:"mean"`
}

// Summary extracts the standard quantile set from the snapshot.
func (s Snapshot) Summary() Summary {
	return Summary{
		Count: s.Count,
		Min:   s.Min,
		Max:   s.Max,
		P50:   s.Quantile(0.50),
		P90:   s.Quantile(0.90),
		P99:   s.Quantile(0.99),
		Mean:  s.Mean(),
	}
}

// Local is a single-owner histogram for hot paths: Observe touches only
// plain (non-atomic) fields, so one recording costs a few adds and no
// shared cache lines. Flush merges and clears the accumulated counts
// into every target histogram; with FlushEvery > 0, Observe flushes
// itself every FlushEvery observations, amortizing the shared atomic
// traffic. A Local is not safe for concurrent use — give each shard,
// mesh or scratch its own, exactly like decodepool.Scratch.
type Local struct {
	targets      []*Histogram
	count, sum   uint64
	min, max     uint64
	loIdx, hiIdx int
	pending      uint32
	flushEvery   uint32
	buckets      [histBuckets]uint64
}

// NewLocal returns a single-owner recorder flushing into targets.
// flushEvery 0 disables auto-flushing (call Flush explicitly).
func NewLocal(flushEvery uint32, targets ...*Histogram) *Local {
	return &Local{flushEvery: flushEvery, targets: targets, loIdx: histBuckets, min: ^uint64(0)}
}

// Observe records one value. No atomics, no allocation.
func (l *Local) Observe(v uint64) {
	i := bucketOf(v)
	l.buckets[i]++
	l.count++
	l.sum += v
	if v > l.max {
		l.max = v
	}
	if v < l.min {
		l.min = v
	}
	if i < l.loIdx {
		l.loIdx = i
	}
	if i > l.hiIdx {
		l.hiIdx = i
	}
	l.pending++
	if l.flushEvery > 0 && l.pending >= l.flushEvery {
		l.Flush()
	}
}

// Flush merges the pending observations into every target and resets
// the local state. Flushing an empty Local is a no-op.
func (l *Local) Flush() {
	if l.count == 0 {
		return
	}
	for _, h := range l.targets {
		for i := l.loIdx; i <= l.hiIdx; i++ {
			if c := l.buckets[i]; c > 0 {
				h.buckets[i].Add(c)
			}
		}
		h.count.Add(l.count)
		h.sum.Add(l.sum)
		atomicMax(&h.max, l.max)
		atomicMax(&h.invMin, ^l.min)
	}
	for i := l.loIdx; i <= l.hiIdx; i++ {
		l.buckets[i] = 0
	}
	l.count, l.sum, l.max, l.pending = 0, 0, 0, 0
	l.min = ^uint64(0)
	l.loIdx, l.hiIdx = histBuckets, 0
}
