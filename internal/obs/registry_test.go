package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total")
	c.Add(3)
	if r.Counter("x_total") != c || c.Load() != 3 {
		t.Fatal("counter not shared by name")
	}
	g := r.Gauge("x_inflight")
	g.Set(5)
	g.Add(-2)
	if r.Gauge("x_inflight").Load() != 3 {
		t.Fatal("gauge not shared by name")
	}
	h := r.Histogram("x_ns")
	h.Observe(9)
	if r.Histogram("x_ns").Count() != 1 {
		t.Fatal("histogram not shared by name")
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("trials_total").Add(42)
	r.Gauge("outstanding").Set(-1)
	h := r.Histogram("lat_ns")
	for _, v := range []uint64{1, 1, 9, 200} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE trials_total counter\ntrials_total 42",
		"# TYPE outstanding gauge\noutstanding -1",
		"# TYPE lat_ns histogram",
		`lat_ns_bucket{le="1"} 2`,
		`lat_ns_bucket{le="+Inf"} 4`,
		"lat_ns_sum 211",
		"lat_ns_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Cumulative bucket counts must be non-decreasing and end at count.
	var last int64 = -1
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "lat_ns_bucket") {
			continue
		}
		var n int64
		if _, err := parseSuffixInt(line, &n); err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if n < last {
			t.Fatalf("bucket counts not cumulative: %q after %d", line, last)
		}
		last = n
	}
	if last != 4 {
		t.Fatalf("final cumulative bucket = %d, want 4", last)
	}
}

func parseSuffixInt(line string, n *int64) (int, error) {
	i := strings.LastIndexByte(line, ' ')
	v := line[i+1:]
	var err error
	*n = 0
	for _, c := range v {
		if c < '0' || c > '9' {
			return 0, io.ErrUnexpectedEOF
		}
		*n = *n*10 + int64(c-'0')
	}
	return len(v), err
}

func TestJSONExpositionAndManifest(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total").Inc()
	r.Histogram("h_ns").Observe(100)
	r.SetManifest(NewManifest(map[string]any{"seed": 7}))
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Manifest   *Manifest          `json:"manifest"`
		Counters   map[string]int64   `json:"counters"`
		Histograms map[string]Summary `json:"histograms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Counters["c_total"] != 1 {
		t.Fatalf("counters = %v", doc.Counters)
	}
	if doc.Histograms["h_ns"].Count != 1 || doc.Histograms["h_ns"].Max != 100 {
		t.Fatalf("histograms = %v", doc.Histograms)
	}
	if doc.Manifest == nil || doc.Manifest.GoVersion == "" || doc.Manifest.GOMAXPROCS < 1 ||
		doc.Manifest.NumCPU < 1 || doc.Manifest.GitSHA == "" {
		t.Fatalf("manifest incomplete: %+v", doc.Manifest)
	}
	if doc.Manifest.Config["seed"] != float64(7) {
		t.Fatalf("manifest config = %v", doc.Manifest.Config)
	}
}

// The HTTP surface: /metrics, /metrics.json, /manifest.json and the
// pprof index must all answer on a real TCP listener.
func TestServeEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("served_total").Add(5)
	r.Histogram("served_ns").Observe(123)
	r.SetManifest(NewManifest(nil))
	srv, err := Serve("127.0.0.1:0", r, true)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	if out := get("/metrics"); !strings.Contains(out, "served_total 5") || !strings.Contains(out, "served_ns_count 1") {
		t.Errorf("/metrics missing series:\n%s", out)
	}
	if out := get("/metrics.json"); !strings.Contains(out, `"served_total": 5`) {
		t.Errorf("/metrics.json missing counter:\n%s", out)
	}
	if out := get("/manifest.json"); !strings.Contains(out, `"go_version"`) {
		t.Errorf("/manifest.json incomplete:\n%s", out)
	}
	if out := get("/debug/pprof/"); !strings.Contains(out, "goroutine") {
		t.Errorf("pprof index incomplete:\n%s", out)
	}
	if out := get("/"); !strings.Contains(out, "/metrics") {
		t.Errorf("index incomplete:\n%s", out)
	}
}
