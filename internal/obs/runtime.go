package obs

import (
	"math"
	"runtime/metrics"
	"time"
)

// Runtime bridge: fold the Go runtime's own telemetry (GC stop-the-world
// pauses, scheduler wakeup latencies, goroutine count, heap size) into
// the obs registry, so a latency investigation can tell a serve-side GC
// stall apart from a slow decode on one exposition surface. The bridge
// is opt-in (cmd/serve -runtime-metrics / REPRO_RUNTIME_METRICS): it
// costs a metrics.Read plus histogram folding per poll, which is cheap
// but not free, and most sweeps don't want extra background wakeups.
//
// runtime/metrics histograms are cumulative; the bridge keeps the last
// poll's bucket counts and ObserveN's each bucket's midpoint by the new
// count, so the registry histogram converges on the runtime's
// distribution shape with at most one poll interval of lag.

// runtimeHist is one bridged cumulative histogram metric.
type runtimeHist struct {
	name string     // runtime/metrics name
	hist *Histogram // registry target (values in nanoseconds)
	prev []uint64   // previous cumulative counts
}

// RuntimeBridge polls runtime/metrics into a Registry until Close.
type RuntimeBridge struct {
	stop chan struct{}
	done chan struct{}
}

// gcPauseMetric returns the best available GC pause histogram metric
// name: the modern /sched/pauses path, or the deprecated /gc/pauses
// alias on older runtimes.
func gcPauseMetric() string {
	for _, d := range metrics.All() {
		if d.Name == "/sched/pauses/total/gc:seconds" {
			return d.Name
		}
	}
	return "/gc/pauses:seconds"
}

// StartRuntimeBridge starts polling the runtime's telemetry every
// `every` (minimum 10ms) into r as:
//
//	go_gc_pause_ns       histogram of GC stop-the-world pauses
//	go_sched_latency_ns  histogram of goroutine scheduling latencies
//	go_goroutines        gauge, live goroutine count
//	go_heap_objects_bytes gauge, bytes of live + dead heap objects
//
// The baseline is taken at start, so only pauses and latencies from
// bridge start onward are folded in. Close stops the poller.
func StartRuntimeBridge(r *Registry, every time.Duration) *RuntimeBridge {
	if every < 10*time.Millisecond {
		every = 10 * time.Millisecond
	}
	hists := []*runtimeHist{
		{name: gcPauseMetric(), hist: r.Histogram("go_gc_pause_ns")},
		{name: "/sched/latencies:seconds", hist: r.Histogram("go_sched_latency_ns")},
	}
	goroutines := r.Gauge("go_goroutines")
	heapBytes := r.Gauge("go_heap_objects_bytes")

	samples := make([]metrics.Sample, 0, len(hists)+2)
	for _, h := range hists {
		samples = append(samples, metrics.Sample{Name: h.name})
	}
	samples = append(samples,
		metrics.Sample{Name: "/sched/goroutines:goroutines"},
		metrics.Sample{Name: "/memory/classes/heap/objects:bytes"})

	b := &RuntimeBridge{stop: make(chan struct{}), done: make(chan struct{})}
	poll := func(first bool) {
		metrics.Read(samples)
		for i, h := range hists {
			if samples[i].Value.Kind() != metrics.KindFloat64Histogram {
				continue
			}
			fold(h, samples[i].Value.Float64Histogram(), first)
		}
		if s := samples[len(hists)]; s.Value.Kind() == metrics.KindUint64 {
			goroutines.Set(int64(s.Value.Uint64()))
		}
		if s := samples[len(hists)+1]; s.Value.Kind() == metrics.KindUint64 {
			heapBytes.Set(int64(s.Value.Uint64()))
		}
	}
	poll(true) // establish the cumulative baseline
	go func() {
		defer close(b.done)
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-b.stop:
				poll(false) // final fold so short runs lose nothing
				return
			case <-t.C:
				poll(false)
			}
		}
	}()
	return b
}

// fold merges one cumulative runtime histogram read into the registry
// target: each bucket's count delta since the previous read is recorded
// at the bucket's midpoint, converted from seconds to nanoseconds.
// baseline reads only capture the counts.
func fold(h *runtimeHist, fh *metrics.Float64Histogram, baseline bool) {
	if len(h.prev) != len(fh.Counts) {
		// First read, or the runtime resized its buckets: re-baseline.
		h.prev = make([]uint64, len(fh.Counts))
		baseline = true
	}
	for i, c := range fh.Counts {
		if !baseline && c > h.prev[i] {
			h.hist.ObserveN(midpointNs(fh.Buckets, i), c-h.prev[i])
		}
		h.prev[i] = c
	}
}

// midpointNs returns bucket i's representative value in nanoseconds.
// Runtime histogram bucket i spans [Buckets[i], Buckets[i+1]); the
// first and last edges may be ±Inf, in which case the finite edge
// stands in for the midpoint.
func midpointNs(edges []float64, i int) uint64 {
	lo, hi := edges[i], edges[i+1]
	var sec float64
	switch {
	case math.IsInf(lo, -1):
		sec = hi
	case math.IsInf(hi, 1):
		sec = lo
	default:
		sec = (lo + hi) / 2
	}
	if sec < 0 {
		sec = 0
	}
	return uint64(sec * 1e9)
}

// Close stops the bridge after one final fold.
func (b *RuntimeBridge) Close() {
	close(b.stop)
	<-b.done
}
