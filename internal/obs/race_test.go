package obs

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// Hammer one shared Histogram from many goroutines three ways at once —
// direct Observe, per-goroutine Local recorders flushing in, and
// concurrent Snapshot/exposition readers — the way the Monte-Carlo
// shards share a point-level recorder. Run under -race in ci.sh; the
// count/sum/min/max invariants below must hold regardless of schedule.
func TestRecorderSharedAcrossShards(t *testing.T) {
	const (
		shards   = 16
		perShard = 4000
	)
	r := NewRegistry()
	shared := r.Histogram("hammer_ns")
	trials := r.Counter("hammer_trials_total")

	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			if s%2 == 0 {
				// Even shards go through single-owner Locals with a
				// small auto-flush period, the hot-path configuration.
				l := NewLocal(7, shared)
				for i := 0; i < perShard; i++ {
					l.Observe(uint64(s*perShard + i))
					trials.Inc()
				}
				l.Flush()
				return
			}
			for i := 0; i < perShard; i++ {
				shared.Observe(uint64(s*perShard + i))
				trials.Inc()
			}
		}(s)
	}
	// Concurrent readers: snapshots and full expositions while writes
	// are in flight must be internally consistent (sum of bucket counts
	// equals the snapshot count) even though they race with Observe.
	done := make(chan struct{})
	var readers sync.WaitGroup
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				snap := shared.Snapshot()
				var n uint64
				for _, b := range snap.Buckets {
					n += b.Count
				}
				if snap.Count > uint64(shards*perShard) {
					panic(fmt.Sprintf("count overshot: %d", snap.Count))
				}
				_ = n
				var buf bytes.Buffer
				_ = r.WritePrometheus(&buf)
				_ = r.WriteJSON(&buf)
				_ = r.Histogram("hammer_ns") // get-or-create race
				_ = r.Counter(fmt.Sprintf("side_%d_total", g))
			}
		}()
	}
	wg.Wait()
	close(done)
	readers.Wait()

	s := shared.Snapshot()
	if s.Count != shards*perShard {
		t.Fatalf("count = %d, want %d", s.Count, shards*perShard)
	}
	if trials.Load() != shards*perShard {
		t.Fatalf("trials = %d, want %d", trials.Load(), shards*perShard)
	}
	if s.Min != 0 || s.Max != shards*perShard-1 {
		t.Fatalf("min/max = %d/%d, want 0/%d", s.Min, s.Max, shards*perShard-1)
	}
	// The quiescent result must equal a serial fill of the same values.
	want := NewHistogram()
	for v := uint64(0); v < shards*perShard; v++ {
		want.Observe(v)
	}
	if !reflect.DeepEqual(want.Snapshot(), s) {
		t.Fatal("concurrent fill diverged from serial fill")
	}
}
