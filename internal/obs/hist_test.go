package obs

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// Bucket geometry: the mapping must be monotone and contiguous, and
// every value must fall inside its own bucket's [lo, hi) range.
func TestBucketBoundsContainValue(t *testing.T) {
	f := func(v uint64) bool {
		i := bucketOf(v)
		if i < 0 || i >= histBuckets {
			return false
		}
		lo, hi := bucketBounds(i)
		// hi-lo is the bucket width even when the top bucket's hi
		// wraps past 2^64 to 0.
		return lo <= v && v-lo < hi-lo
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
	// Contiguity: bucket i+1 starts exactly where bucket i ends.
	for i := 0; i+1 <= bucketOf(^uint64(0)); i++ {
		_, hi := bucketBounds(i)
		lo, _ := bucketBounds(i + 1)
		if hi != lo {
			t.Fatalf("gap between buckets %d and %d: hi=%d lo=%d", i, i+1, hi, lo)
		}
	}
}

func fill(vals []uint64) *Histogram {
	h := NewHistogram()
	for _, v := range vals {
		h.Observe(v)
	}
	return h
}

// Merge must be exact, commutative and associative: any merge order of
// shard histograms yields the histogram of the combined sample set.
func TestMergeAssociative(t *testing.T) {
	f := func(a, b, c []uint64) bool {
		all := fill(append(append(append([]uint64{}, a...), b...), c...))

		// (a ⊕ b) ⊕ c
		left := fill(a)
		left.Merge(fill(b))
		left.Merge(fill(c))

		// a ⊕ (b ⊕ c)
		bc := fill(b)
		bc.Merge(fill(c))
		right := fill(a)
		right.Merge(bc)

		// c ⊕ b ⊕ a (commutativity)
		rev := fill(c)
		rev.Merge(fill(b))
		rev.Merge(fill(a))

		want := all.Snapshot()
		return reflect.DeepEqual(want, left.Snapshot()) &&
			reflect.DeepEqual(want, right.Snapshot()) &&
			reflect.DeepEqual(want, rev.Snapshot())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Snapshot.Merge must agree exactly with Histogram.Merge: merging the
// snapshots of two histograms yields the snapshot of the merged
// histogram, from either side.
func TestSnapshotMerge(t *testing.T) {
	f := func(a, b []uint64) bool {
		ha, hb := fill(a), fill(b)
		sa, sb := ha.Snapshot(), hb.Snapshot()
		ha.Merge(hb)
		want := ha.Snapshot()
		return reflect.DeepEqual(want, sa.Merge(sb)) &&
			reflect.DeepEqual(want, sb.Merge(sa))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Quantile bounds: the extracted quantile never undershoots the exact
// order statistic and overshoots by at most one bucket width (12.5%
// relative, exact below 8).
func TestQuantileBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(raw []uint32, qFrac uint16) bool {
		if len(raw) == 0 {
			raw = []uint32{uint32(rng.Uint64())}
		}
		vals := make([]uint64, len(raw))
		for i, v := range raw {
			vals[i] = uint64(v)
		}
		q := float64(qFrac) / 65535
		s := fill(vals).Snapshot()
		got := s.Quantile(q)

		sorted := append([]uint64{}, vals...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		rank := int(q * float64(len(sorted)))
		if float64(rank) < q*float64(len(sorted)) || rank == 0 {
			rank++
		}
		if rank > len(sorted) {
			rank = len(sorted)
		}
		exact := sorted[rank-1]
		return got >= exact && got-exact <= exact/8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
	// Quantile(1) is the exact maximum; Mean is exact (sum tracked
	// outside the buckets).
	s := fill([]uint64{3, 1000, 77, 77}).Snapshot()
	if s.Quantile(1) != 1000 {
		t.Fatalf("Quantile(1) = %d, want exact max 1000", s.Quantile(1))
	}
	if s.Mean() != (3+1000+77+77)/4.0 {
		t.Fatalf("Mean = %v, want exact", s.Mean())
	}
	if s.Min != 3 || s.Max != 1000 {
		t.Fatalf("Min/Max = %d/%d, want 3/1000", s.Min, s.Max)
	}
}

// A Local recorder flushed into a Histogram must be indistinguishable
// from observing directly, regardless of the auto-flush period.
func TestLocalFlushEquivalence(t *testing.T) {
	f := func(vals []uint64, every uint8) bool {
		direct := fill(vals)
		via := NewHistogram()
		l := NewLocal(uint32(every), via)
		for _, v := range vals {
			l.Observe(v)
		}
		l.Flush()
		l.Flush() // idempotent on empty
		return reflect.DeepEqual(direct.Snapshot(), via.Snapshot())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// A Local flushing into two targets delivers identical copies to both
// (the Monte-Carlo engine fans each shard's trials into the point-level
// and the process-level histogram this way).
func TestLocalDualTargets(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	l := NewLocal(3, a, b)
	for v := uint64(0); v < 1000; v++ {
		l.Observe(v * v)
	}
	l.Flush()
	if !reflect.DeepEqual(a.Snapshot(), b.Snapshot()) {
		t.Fatal("dual targets diverged")
	}
	if a.Count() != 1000 {
		t.Fatalf("count = %d, want 1000", a.Count())
	}
}

func TestEmptySnapshot(t *testing.T) {
	s := NewHistogram().Snapshot()
	if s.Count != 0 || s.Min != 0 || s.Max != 0 || s.Quantile(0.5) != 0 || s.Mean() != 0 {
		t.Fatalf("empty snapshot not zero: %+v", s)
	}
	if sum := s.Summary(); sum.Count != 0 {
		t.Fatalf("empty summary not zero: %+v", sum)
	}
}
