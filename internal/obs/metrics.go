// Package obs is the repository's stdlib-only telemetry layer: lock-free
// counters and gauges, log-bucketed mergeable latency histograms with
// quantile extraction, a named-metric registry with Prometheus-text and
// JSON exposition over net/http, opt-in pprof endpoints, and run
// manifests that make every sweep artifact attributable (git SHA, Go
// version, GOMAXPROCS, environment knobs).
//
// The paper's headline claim rests on the *distribution* of decoder
// latencies — NISQ+ wins because the latency tail stays under the
// syndrome-generation period (§III, Fig. 10(c)) — so the measurement
// layer is a product of this repository, not an afterthought. Hot
// layers record through single-owner Local recorders (plain counters,
// no shared cache lines) that flush into shared atomic histograms on an
// amortized schedule, preserving the zero-allocation decode invariant;
// the regression tests in this package and internal/decoder pin both
// properties.
package obs

import "sync/atomic"

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (set or adjusted).
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }
