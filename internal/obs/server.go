package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns the registry's HTTP surface:
//
//	/metrics        Prometheus text exposition
//	/metrics.json   JSON exposition (histogram quantile summaries + manifest)
//	/manifest.json  the run manifest alone
//	/debug/pprof/*  net/http/pprof (only when withPprof is true)
//	/               plain-text index of the above
func (r *Registry) Handler(withPprof bool) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
	mux.HandleFunc("/manifest.json", func(w http.ResponseWriter, _ *http.Request) {
		m := r.Manifest()
		if m == nil {
			http.Error(w, "no manifest attached", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = m.WriteJSON(w)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprintln(w, "repro telemetry")
		fmt.Fprintln(w, "  /metrics        Prometheus text exposition")
		fmt.Fprintln(w, "  /metrics.json   JSON exposition")
		fmt.Fprintln(w, "  /manifest.json  run manifest")
		if withPprof {
			fmt.Fprintln(w, "  /debug/pprof/   profiling endpoints")
		}
	})
	if withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// Server is a running telemetry endpoint.
type Server struct {
	// Addr is the bound listen address (useful with ":0").
	Addr string
	srv  *http.Server
	ln   net.Listener
}

// Serve binds addr (e.g. ":9090" or "127.0.0.1:0") and serves the
// registry's Handler in the background. The sweep binaries call this
// from their --obs flag; Close when the run finishes.
func Serve(addr string, r *Registry, withPprof bool) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: r.Handler(withPprof), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &Server{Addr: ln.Addr().String(), srv: srv, ln: ln}, nil
}

// Close stops the server and releases the listener.
func (s *Server) Close() error { return s.srv.Close() }

// ServeDefault is the one-liner behind every sweep binary's --obs flag:
// it attaches a fresh run manifest (config carries the binary's flag
// values) to the process-wide Default registry and serves it — pprof
// included — on addr.
func ServeDefault(addr string, config map[string]any) (*Server, error) {
	Default().SetManifest(NewManifest(config))
	return Serve(addr, Default(), true)
}
