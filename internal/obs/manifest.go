package obs

import (
	"encoding/json"
	"io"
	"math/bits"
	"os"
	"os/exec"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"time"

	"repro/internal/knob"
)

// Manifest records the provenance of one run so sweep artifacts stay
// attributable across machines and toolchains: which binary, which
// commit, which Go version, how many cores, and which environment knobs
// were live. cmd/bench embeds a Manifest in every BENCH_*.json and the
// --obs endpoint serves the active run's at /manifest.json.
type Manifest struct {
	Command    []string `json:"command"`
	StartTime  string   `json:"start_time"` // RFC 3339, UTC
	GoVersion  string   `json:"go_version"`
	GitSHA     string   `json:"git_sha"`
	GitDirty   bool     `json:"git_dirty,omitempty"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	NumCPU     int      `json:"num_cpu"`
	// CPUWordBits is the machine word size the binary was compiled for;
	// the SWAR kernels' auto width pick keys off it, so a perf artifact
	// records which plane layout "auto" resolved to on this host.
	CPUWordBits int `json:"cpu_word_bits"`
	// CPUFeatures lists the recognized SIMD/bit-manipulation feature
	// flags of the host CPU (from /proc/cpuinfo where available, empty
	// elsewhere) — enough to attribute kernel throughput to the silicon
	// that produced it.
	CPUFeatures []string          `json:"cpu_features,omitempty"`
	Env         map[string]string `json:"env,omitempty"`    // REPRO_* and Go runtime knobs
	Config      map[string]any    `json:"config,omitempty"` // caller-supplied (seed, flags)
}

// NewManifest captures the current process environment. config carries
// run-specific parameters (seed, sweep grid, flag values); nil is fine.
func NewManifest(config map[string]any) *Manifest {
	m := &Manifest{
		Command:     os.Args,
		StartTime:   time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		CPUWordBits: bits.UintSize,
		CPUFeatures: cpuFeatures(),
		Env:         map[string]string{},
		Config:      config,
	}
	m.GitSHA, m.GitDirty = gitRevision()
	// The environment knobs that change what a run measures: every
	// registered REPRO_* knob (the internal/knob registry is the single
	// source of truth) plus the Go runtime knobs. Absent variables are
	// omitted so the manifest records exactly what was set.
	for _, k := range append(knob.Names(), "GOMAXPROCS", "GOGC", "GODEBUG") {
		if v, ok := os.LookupEnv(k); ok {
			m.Env[k] = v
		}
	}
	return m
}

// gitRevision resolves the source revision: the build info's stamped
// VCS metadata when present (go build inside a repo), otherwise a
// direct `git rev-parse HEAD` of the working directory (go run, tests),
// otherwise "unknown".
func gitRevision() (sha string, dirty bool) {
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				sha = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
		if sha != "" {
			return sha, dirty
		}
	}
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "unknown", false
	}
	sha = strings.TrimSpace(string(out))
	if st, err := exec.Command("git", "status", "--porcelain").Output(); err == nil {
		dirty = len(strings.TrimSpace(string(st))) > 0
	}
	return sha, dirty
}

// cpuFeatures reads /proc/cpuinfo (linux) and returns the intersection
// of the host's advertised flags with a small allowlist of features
// that matter to the SWAR kernels — wide vector units and the bit
// twiddles (popcnt/bmi2) the hot loops lean on. Other platforms, or a
// missing procfs, yield nil: the manifest simply omits the field
// rather than guessing.
func cpuFeatures() []string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return nil
	}
	relevant := map[string]bool{
		"sse2": true, "ssse3": true, "sse4_1": true, "sse4_2": true,
		"avx": true, "avx2": true, "avx512f": true, "avx512bw": true,
		"popcnt": true, "bmi1": true, "bmi2": true,
		"asimd": true, "sve": true, "sve2": true,
	}
	found := map[string]bool{}
	for _, line := range strings.Split(string(data), "\n") {
		k, v, ok := strings.Cut(line, ":")
		if !ok {
			continue
		}
		k = strings.TrimSpace(k)
		if k != "flags" && k != "Features" { // x86 and arm64 spellings
			continue
		}
		for _, f := range strings.Fields(v) {
			if relevant[f] {
				found[f] = true
			}
		}
	}
	if len(found) == 0 {
		return nil
	}
	out := make([]string, 0, len(found))
	for f := range found {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// WriteJSON renders the manifest as indented JSON.
func (m *Manifest) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}
