package obs

import (
	"runtime"
	"testing"
	"time"
)

// TestObserveN pins the bulk-observe used by the runtime bridge: one
// ObserveN(v, n) is indistinguishable from n Observes of v.
func TestObserveN(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	a.ObserveN(1500, 3)
	a.ObserveN(90, 1)
	a.ObserveN(7, 0) // n = 0 is a no-op, not a zero-value observation
	for i := 0; i < 3; i++ {
		b.Observe(1500)
	}
	b.Observe(90)
	sa, sb := a.Snapshot(), b.Snapshot()
	if sa.Count != sb.Count || sa.Sum != sb.Sum || sa.Min != sb.Min || sa.Max != sb.Max {
		t.Fatalf("ObserveN diverges from repeated Observe: %+v vs %+v", sa, sb)
	}
	if len(sa.Buckets) != len(sb.Buckets) {
		t.Fatalf("bucket sets differ: %v vs %v", sa.Buckets, sb.Buckets)
	}
	for i := range sa.Buckets {
		if sa.Buckets[i] != sb.Buckets[i] {
			t.Fatalf("bucket %d differs: %+v vs %+v", i, sa.Buckets[i], sb.Buckets[i])
		}
	}
}

// TestExemplars pins the bucket → trace link: disabled histograms
// record nothing and allocate nothing for it, enabled ones remember the
// latest (value, seq) per bucket, and seq 0 means "no trace" and never
// writes.
func TestExemplars(t *testing.T) {
	h := NewHistogram()
	h.ObserveExemplar(1000, 7)
	if got := h.Exemplars(); got != nil {
		t.Fatalf("exemplars recorded before EnableExemplars: %v", got)
	}
	if h.Count() != 1 {
		t.Fatal("ObserveExemplar did not observe")
	}

	h.EnableExemplars()
	h.EnableExemplars() // idempotent
	h.ObserveExemplar(1000, 3)
	h.ObserveExemplar(1010, 9) // same bucket: last writer wins
	h.ObserveExemplar(1_000_000, 5)
	h.ObserveExemplar(42, 0) // untraced: observed, no exemplar

	ex := h.Exemplars()
	if len(ex) != 2 {
		t.Fatalf("%d exemplars, want 2: %v", len(ex), ex)
	}
	lo := ex[0] // lowest bucket first
	if lo.Seq != 9 || lo.Value != 1010 {
		t.Fatalf("low-bucket exemplar: %+v, want seq 9 value 1010", lo)
	}
	if lo.BucketLo > lo.Value || lo.Value >= lo.BucketHi {
		t.Fatalf("exemplar value %d outside its bucket [%d, %d)", lo.Value, lo.BucketLo, lo.BucketHi)
	}
	if ex[1].Seq != 5 || ex[1].Value != 1_000_000 {
		t.Fatalf("high-bucket exemplar: %+v", ex[1])
	}
	if h.Count() != 5 {
		t.Fatalf("count %d, want 5", h.Count())
	}

	if avg := testing.AllocsPerRun(100, func() {
		h.ObserveExemplar(1000, 11)
	}); avg != 0 {
		t.Fatalf("ObserveExemplar allocates %.1f/op, want 0", avg)
	}
}

// TestRuntimeBridge pins the runtime/metrics fold: after forced GCs the
// bridged registry holds a nonzero GC-pause histogram and live gauges,
// and the final fold on Close captures work from the last interval.
func TestRuntimeBridge(t *testing.T) {
	r := NewRegistry()
	b := StartRuntimeBridge(r, 10*time.Millisecond)
	for i := 0; i < 3; i++ {
		runtime.GC()
	}
	time.Sleep(25 * time.Millisecond)
	runtime.GC() // caught by the final fold even if the ticker missed it
	b.Close()

	if n := r.Histogram("go_gc_pause_ns").Count(); n == 0 {
		t.Error("no GC pauses folded despite forced GCs")
	}
	if g := r.Gauge("go_goroutines").Load(); g <= 0 {
		t.Errorf("go_goroutines = %d, want > 0", g)
	}
	if g := r.Gauge("go_heap_objects_bytes").Load(); g <= 0 {
		t.Errorf("go_heap_objects_bytes = %d, want > 0", g)
	}
	// Scheduler latencies exist on any runtime that ran goroutines; do
	// not assert a count (quiet runs can legitimately fold none), but
	// the histogram must at least be registered.
	if r.Histogram("go_sched_latency_ns") == nil {
		t.Error("go_sched_latency_ns not registered")
	}
}
