// Package knob centralizes the repository's REPRO_* environment knobs.
//
// Before this package, each knob was read ad hoc (os.Getenv scattered
// across cmd/bench, the sfq kernel switch, the Monte-Carlo short-trial
// tests and the obs overhead guard), which made a typo'd value — say
// REPRO_SFQ_KERNEL=bitplan — silently fall back to the default and
// measure the wrong thing. Here every knob is declared once in a
// registry with its legal values; accessors validate strictly and fail
// loudly on anything else, and CheckEnv rejects unknown REPRO_* names
// outright so a misspelled knob *name* is caught too.
//
// The manifest layer (internal/obs) records exactly the registered
// names, so BENCH artifacts and /manifest.json stay in sync with the
// set of knobs that can change what a run measures.
package knob

import (
	"fmt"
	"os"
	"sort"
	"strings"
)

// Def declares one environment knob.
type Def struct {
	// Name is the environment variable, always REPRO_*-prefixed.
	Name string
	// Desc says what the knob changes.
	Desc string
	// Allowed lists the legal non-empty values; nil means free-form.
	Allowed []string
}

// boolValues are the legal values of a boolean knob. Unset and "" mean
// false; note that "0" and "false" are *explicit* offs — under the old
// ad-hoc parsing any non-empty string (including "0") switched some
// knobs on.
var boolValues = []string{"0", "1", "false", "true"}

// defs is the registry of every knob the repository reads. Adding a
// knob here is the only step needed for manifest capture and CheckEnv
// acceptance.
var defs = []Def{
	{
		Name:    "REPRO_MC_SHORT",
		Desc:    "shrink Monte-Carlo trial budgets (ci.sh race runs); statistical tolerances rescale",
		Allowed: boolValues,
	},
	{
		Name:    "REPRO_OBS_GUARD",
		Desc:    "opt into the wall-clock telemetry-overhead guard test",
		Allowed: boolValues,
	},
	{
		Name:    "REPRO_SFQ_KERNEL",
		Desc:    "override the SFQ mesh stepping kernel",
		Allowed: []string{"legacy", "bitplane"},
	},
	{
		Name:    "REPRO_SFQ_WIDTH",
		Desc:    "plane width of the wide SWAR batch kernel in 64-bit words; auto picks from the CPU word size",
		Allowed: []string{"auto", "1", "2", "4"},
	},
	{
		// Free-form because the value is an integer period; the trace
		// layer parses it strictly and panics on anything that is not a
		// positive integer, "0" or "off".
		Name: "REPRO_TRACE_SAMPLE",
		Desc: "request-trace sampling period N (record 1 in N requests; outliers and shed decisions are always recorded; 0/off disables tracing; default 16)",
	},
	{
		Name:    "REPRO_SERVE_WEIGHTED",
		Desc:    "cost-weighted admission in the decode service: shed cheap low-distance traffic before expensive high-distance traffic (default on; 0 restores uniform shedding)",
		Allowed: boolValues,
	},
	{
		Name:    "REPRO_RUNTIME_METRICS",
		Desc:    "bridge runtime/metrics (GC pauses, scheduler latency, goroutines, heap) into the obs registry",
		Allowed: boolValues,
	},
}

// Defs returns the registered knobs, sorted by name.
func Defs() []Def {
	out := append([]Def(nil), defs...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names returns the registered knob names, sorted. The obs manifest
// captures exactly these from the environment.
func Names() []string {
	names := make([]string, len(defs))
	for i, d := range defs {
		names[i] = d.Name
	}
	sort.Strings(names)
	return names
}

// lookup returns the registered definition of name. Asking for an
// unregistered knob is a programming error, not an environment error,
// so it panics.
func lookup(name string) Def {
	for _, d := range defs {
		if d.Name == name {
			return d
		}
	}
	panic(fmt.Sprintf("knob: %s is not a registered knob (add it to internal/knob)", name))
}

// Value returns the knob's raw environment value after validating it
// against the registry. Unset and empty both return "". An illegal
// value returns an error naming the legal set.
func Value(name string) (string, error) {
	d := lookup(name)
	v := os.Getenv(name)
	if v == "" || d.Allowed == nil {
		return v, nil
	}
	for _, a := range d.Allowed {
		if v == a {
			return v, nil
		}
	}
	return "", fmt.Errorf("knob: %s=%q is not a legal value (want one of %s, or unset)",
		name, v, strings.Join(d.Allowed, ", "))
}

// String returns the knob's validated value ("" when unset), panicking
// with a clear message on an illegal value — a typo'd knob must never
// silently select a default.
func String(name string) string {
	v, err := Value(name)
	if err != nil {
		panic(err.Error())
	}
	return v
}

// Bool reads a boolean knob: unset, "", "0" and "false" are false; "1"
// and "true" are true; anything else panics.
func Bool(name string) bool {
	switch String(name) {
	case "1", "true":
		return true
	case "", "0", "false":
		return false
	}
	// Unreachable for knobs registered with boolValues; a non-boolean
	// knob passed here is a programming error.
	panic(fmt.Sprintf("knob: %s is not a boolean knob", name))
}

// CheckEnv validates the whole environment: every REPRO_*-prefixed
// variable must be a registered knob with a legal value. The cmd
// binaries call it at startup so a misspelled knob name fails the run
// instead of silently doing nothing.
func CheckEnv() error {
	for _, kv := range os.Environ() {
		eq := strings.IndexByte(kv, '=')
		if eq < 0 || !strings.HasPrefix(kv, "REPRO_") {
			continue
		}
		name := kv[:eq]
		registered := false
		for _, d := range defs {
			if d.Name == name {
				registered = true
				break
			}
		}
		if !registered {
			return fmt.Errorf("knob: unknown environment knob %s (known: %s)",
				name, strings.Join(Names(), ", "))
		}
		if _, err := Value(name); err != nil {
			return err
		}
	}
	return nil
}
