package knob

import (
	"strings"
	"testing"
)

// TestKnobTable drives every registered knob through legal, empty and
// illegal values: legal values parse, empty means unset default, and a
// typo'd value fails loudly instead of silently selecting a default —
// the regression the centralization exists to prevent.
func TestKnobTable(t *testing.T) {
	cases := []struct {
		name      string // knob under test
		value     string // environment value (set via t.Setenv)
		wantStr   string // expected String result when !wantPanic
		wantBool  bool   // expected Bool result (boolean knobs only)
		boolKnob  bool
		wantPanic bool
	}{
		{name: "REPRO_MC_SHORT", value: "", boolKnob: true, wantBool: false},
		{name: "REPRO_MC_SHORT", value: "1", wantStr: "1", boolKnob: true, wantBool: true},
		{name: "REPRO_MC_SHORT", value: "true", wantStr: "true", boolKnob: true, wantBool: true},
		{name: "REPRO_MC_SHORT", value: "0", wantStr: "0", boolKnob: true, wantBool: false},
		{name: "REPRO_MC_SHORT", value: "false", wantStr: "false", boolKnob: true, wantBool: false},
		{name: "REPRO_MC_SHORT", value: "yes", boolKnob: true, wantPanic: true},
		{name: "REPRO_OBS_GUARD", value: "1", wantStr: "1", boolKnob: true, wantBool: true},
		{name: "REPRO_OBS_GUARD", value: "on", boolKnob: true, wantPanic: true},
		{name: "REPRO_SFQ_KERNEL", value: "", wantStr: ""},
		{name: "REPRO_SFQ_KERNEL", value: "legacy", wantStr: "legacy"},
		{name: "REPRO_SFQ_KERNEL", value: "bitplane", wantStr: "bitplane"},
		{name: "REPRO_SFQ_KERNEL", value: "bitplan", wantPanic: true}, // the motivating typo
		{name: "REPRO_SFQ_KERNEL", value: "BITPLANE", wantPanic: true},
	}
	for _, tc := range cases {
		t.Run(tc.name+"="+tc.value, func(t *testing.T) {
			t.Setenv(tc.name, tc.value)
			if tc.wantPanic {
				mustPanic(t, func() { String(tc.name) })
				if tc.boolKnob {
					mustPanic(t, func() { Bool(tc.name) })
				}
				if _, err := Value(tc.name); err == nil {
					t.Errorf("Value(%s=%q): want error", tc.name, tc.value)
				}
				return
			}
			if got := String(tc.name); got != tc.wantStr {
				t.Errorf("String(%s=%q) = %q, want %q", tc.name, tc.value, got, tc.wantStr)
			}
			if tc.boolKnob {
				if got := Bool(tc.name); got != tc.wantBool {
					t.Errorf("Bool(%s=%q) = %v, want %v", tc.name, tc.value, got, tc.wantBool)
				}
			}
		})
	}
}

// TestUnregisteredKnobPanics pins that reading a knob missing from the
// registry is treated as a programming error.
func TestUnregisteredKnobPanics(t *testing.T) {
	mustPanic(t, func() { String("REPRO_NO_SUCH_KNOB") })
	mustPanic(t, func() { Bool("REPRO_NO_SUCH_KNOB") })
}

// TestCheckEnv pins the whole-environment scan: registered knobs with
// legal values pass, a typo'd name or value fails.
func TestCheckEnv(t *testing.T) {
	t.Setenv("REPRO_MC_SHORT", "1")
	t.Setenv("REPRO_SFQ_KERNEL", "legacy")
	if err := CheckEnv(); err != nil {
		t.Fatalf("CheckEnv with legal knobs: %v", err)
	}

	t.Setenv("REPRO_SFQ_KERNLE", "legacy") // misspelled name
	err := CheckEnv()
	if err == nil || !strings.Contains(err.Error(), "REPRO_SFQ_KERNLE") {
		t.Fatalf("CheckEnv with typo'd name: got %v, want unknown-knob error", err)
	}
	t.Setenv("REPRO_SFQ_KERNLE", "") // Setenv scopes cleanup; empty value still has the name set
	if err := CheckEnv(); err == nil || !strings.Contains(err.Error(), "REPRO_SFQ_KERNLE") {
		t.Fatalf("CheckEnv with empty typo'd name: got %v, want unknown-knob error", err)
	}
}

// TestCheckEnvBadValue pins that CheckEnv validates values, not just
// names.
func TestCheckEnvBadValue(t *testing.T) {
	t.Setenv("REPRO_SFQ_KERNEL", "bitplan")
	if err := CheckEnv(); err == nil || !strings.Contains(err.Error(), "bitplan") {
		t.Fatalf("CheckEnv with illegal value: got %v, want value error", err)
	}
}

// TestNamesCoverDefs pins that Names is sorted and covers the registry
// (the obs manifest iterates it).
func TestNamesCoverDefs(t *testing.T) {
	names := Names()
	if len(names) != len(defs) {
		t.Fatalf("Names() has %d entries, registry has %d", len(names), len(defs))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names() not sorted: %v", names)
		}
	}
	for _, d := range Defs() {
		found := false
		for _, n := range names {
			if n == d.Name {
				found = true
			}
		}
		if !found {
			t.Fatalf("Defs() entry %s missing from Names()", d.Name)
		}
	}
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("want panic, got none")
		}
	}()
	f()
}
