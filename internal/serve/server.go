package serve

import (
	"fmt"
	"math"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/decodepool"
	"repro/internal/decoder/mwpm"
	"repro/internal/knob"
	"repro/internal/lattice"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/sched"
	"repro/internal/sfq"
	"repro/internal/twolevel"
)

// Config parameterizes a Server. The zero value of every field has a
// usable default.
type Config struct {
	// Variant is the mesh design decoding requests. The zero value is
	// sfq.Baseline — callers wanting the paper's complete design pass
	// sfq.Final explicitly (cmd/serve does).
	Variant sfq.Variant
	// Distances are the code distances the server accepts (default
	// {3, 5, 7, 9}). Each distance gets one queue per error type.
	Distances []int
	// Workers bounds how many drain tasks one (distance, error type)
	// queue runs concurrently (default 1). Each drain slot owns one
	// batch mesh. The slots of every queue share one work-stealing
	// scheduler pool (see PoolWorkers), so the bound is a per-queue
	// fairness cap, not a thread count.
	Workers int
	// PoolWorkers sizes the shared work-stealing scheduler pool that
	// executes every queue's drain tasks (default GOMAXPROCS). One pool
	// serves all (distance, error type) queues, so mixed-distance
	// traffic saturates the machine without per-queue idle threads.
	PoolWorkers int
	// Lanes fixes each worker's batch-mesh lane width. 0 (the default)
	// draws maximum-width meshes from the pool; an explicit width builds
	// private meshes, trading peak throughput for batch latency.
	Lanes int
	// QueueDepth is each (d, e) queue's capacity (default 64). A full
	// queue sheds — the hard backpressure bound behind the model-driven
	// controller.
	QueueDepth int
	// Window is the per-connection in-flight request cap (default 32).
	// A connection at its window stops being read, pushing backpressure
	// into the client's TCP send buffer.
	Window int
	// Enter and Exit override the controller's hysteresis bounds when
	// both are nonzero (defaults 1.0 and 0.85).
	Enter, Exit float64
	// EvalEvery is the controller's re-evaluation period (default 50ms).
	EvalEvery time.Duration
	// Pool supplies decoder meshes (default: a fresh pool for Variant).
	// Sharing a pool across servers shares its accounting.
	Pool *sfq.Pool
	// Registry receives the serve_* metrics (default obs.Default()).
	// Tests pass a private registry to keep controller inputs isolated.
	Registry *obs.Registry
	// Escalate enables two-level decoding: every response still carries
	// the level-1 mesh correction at mesh latency, but requests whose
	// mesh statistics trip the escalation policy are flagged
	// (FlagEscalated) and re-decoded by exact MWPM on a bounded
	// asynchronous queue — level-2 work never blocks the level-1 path.
	// The level-2 latency feeds serve_escalate_ns, and the controller's
	// service-time signal becomes the two-tier mixture, so escalation
	// storms engage shedding like any other backlog source.
	Escalate bool
	// EscalatePolicy overrides the escalation trigger (default
	// twolevel.DefaultPolicy()). Ignored unless Escalate is set.
	EscalatePolicy *twolevel.Policy
	// EscQueueDepth bounds the escalation queue (default 256). When the
	// queue is full, escalations are dropped — counted in
	// serve_escalate_dropped_total — rather than backpressuring decode.
	EscQueueDepth int
	// EscWorkers is the level-2 worker count (default 1).
	EscWorkers int
	// TraceSample controls the request-lifecycle flight recorder
	// (internal/obs/trace): 0 (the default) defers to the
	// REPRO_TRACE_SAMPLE knob, a positive N records 1 in N requests
	// (outliers and shed/drop decisions are always recorded), and a
	// negative value disables the recorder entirely.
	TraceSample int
	// TraceDepth sizes the flight recorder's trace and decision rings
	// (default 256 each).
	TraceDepth int
	// TraceSpans bounds concurrently traced in-flight requests (default
	// 4096); requests beyond the bound go untraced, never blocked.
	TraceSpans int
	// MaxQueueWait, when positive, is the CoDel-style sojourn bound on
	// the decode queues: a drain that pops a request older than the
	// bound while more work is still queued behind it drops the request
	// (StatusShed, ReasonSojourn) instead of decoding it. Under
	// sustained backlog this bounds the queue-wait tail near the bound
	// itself, where plain FIFO ages every request to QueueDepth × the
	// service time. The zero value disables the policy — a lightly
	// loaded or conformance-tested server never drops — and the pop-time
	// backlog check (len(q.ch) > 0) means the last queued request is
	// always decoded, however stale, so an idle service still answers.
	MaxQueueWait time.Duration
	// FlushEvery is the out-queue flush batch: a connection writer
	// flushes its bufio writer after this many unflushed responses even
	// while more are queued (default 8). Only-on-empty flushing — the
	// old policy — let one slow escalated response serialize tens of
	// milliseconds of completed responses behind a never-empty queue.
	FlushEvery int
	// FlushInterval bounds how long a completed response may sit
	// unflushed while the writer keeps draining (default 200µs). The
	// count and elapsed-time conditions are OR'd.
	FlushInterval time.Duration
	// DisableWeightedShed turns off cost-weighted admission, restoring
	// the uniform pre-PR-10 shed behavior (every class sheds while the
	// controller sheds). The REPRO_SERVE_WEIGHTED=0 knob is the
	// environment spelling of the same switch.
	DisableWeightedShed bool
}

// task is one admitted request in a decode queue. deliver is invoked
// exactly once, from the decode worker, with a response the receiver
// owns.
type task struct {
	id      uint64
	syn     []bool
	deliver func(*Response)
	sp      *trace.Span // nil when the request is untraced
	enqNs   int64       // enqueue wall clock, for the sojourn bound
}

// escTask is one queued level-2 re-decode. It owns syn: the level-1
// response was already delivered when the task was enqueued, so nothing
// else references the syndrome copy. q is the queue whose free list the
// syndrome buffer returns to when level 2 finishes.
type escTask struct {
	g   *lattice.Graph
	q   *queue
	syn []bool
	sp  *trace.Span // holds one span reference until level 2 finishes
}

type queueKey struct {
	d int
	e lattice.ErrorType
}

type queue struct {
	d  int
	e  lattice.ErrorType
	ch chan task

	// costNs is the per-distance decode-cost histogram
	// (serve_decode_ns_d{d}) feeding the queue's admission weight. Both
	// error-type queues of one distance share the registry histogram.
	costNs *obs.Histogram
	// weightBits is the queue's current service-cost weight — its mean
	// decode time normalized by the most expensive distance's, in
	// math.Float64bits — written by updateWeights, read lock-free on
	// every shed check. Starts at 1.0: unknown cost reads as expensive.
	weightBits atomic.Uint64

	// synMu guards synFree, the queue's syndrome-buffer free list. Every
	// buffer has exactly len == the distance's check count, so a reused
	// buffer is always the right size. The list is bounded at the
	// queue's depth (more buffers in flight than queue slots means the
	// extras are escalation-held; letting them die to GC bounds memory).
	synMu   sync.Mutex
	synFree [][]bool

	// Drain bookkeeping: up to Config.Workers drain tasks run at once
	// per queue, spawned on demand by kick and retired by the
	// exit-recheck protocol in drainTask.Run. active counts running
	// drains; free holds the idle preallocated drain slots (each owns a
	// mesh and scratch); cond wakes Close when active reaches zero.
	mu     sync.Mutex
	cond   *sync.Cond
	active int
	free   []*drainTask
	drains []*drainTask // all slots, for mesh return on Close
}

// weight returns the queue's current normalized service-cost weight.
func (q *queue) weight() float64 { return math.Float64frombits(q.weightBits.Load()) }

func (q *queue) setWeight(w float64) { q.weightBits.Store(math.Float64bits(w)) }

// getSyn pops a syndrome buffer of length n from the queue's free list,
// allocating only when the list is dry (cold start, or buffers held by
// in-flight escalations).
func (q *queue) getSyn(n int) []bool {
	q.synMu.Lock()
	if last := len(q.synFree) - 1; last >= 0 {
		buf := q.synFree[last]
		q.synFree = q.synFree[:last]
		q.synMu.Unlock()
		return buf
	}
	q.synMu.Unlock()
	return make([]bool, n)
}

// putSyn returns a syndrome buffer to the free list once nothing
// references it (decoded without escalation, shed after copy, or the
// level-2 worker finished with it).
func (q *queue) putSyn(buf []bool) {
	if buf == nil {
		return
	}
	q.synMu.Lock()
	if len(q.synFree) < cap(q.ch) {
		q.synFree = append(q.synFree, buf)
	}
	q.synMu.Unlock()
}

// drainTask is one preallocated drain slot of a queue: a sched.Task
// that coalesces queued requests into batch-mesh lanes until the queue
// is empty, then parks itself back on the queue's free list. The slot
// owns its mesh, scratch and coalescing buffers, so a drain allocates
// nothing per batch.
type drainTask struct {
	s      *Server
	q      *queue
	g      *lattice.Graph
	b      *sfq.BatchMesh
	pooled bool // mesh came from the shared pool (return on Close)
	scr    *decodepool.Scratch
	tasks  []task
	syns   [][]bool
	stolen bool // set by ObserveSchedWait just before Run
}

// Server is the decode service: admission control in front of
// per-(distance, error type) queues, drained by workers that coalesce
// queued requests into SWAR batch-mesh lanes. Create with New, attach
// transports with Serve (framed TCP) and Handler (HTTP), stop with
// Close.
type Server struct {
	cfg   Config
	pool  *sfq.Pool
	reg   *obs.Registry
	sched *sched.Pool

	queues map[queueKey]*queue
	ctl    *Controller
	meter  arrivalMeter

	// weighted gates cost-weighted admission (Config.DisableWeightedShed
	// and REPRO_SERVE_WEIGHTED=0 both clear it); minWeightBits is the
	// smallest queue weight, maintained by updateWeights alongside the
	// per-queue weights, read lock-free by the shed predicate.
	weighted      bool
	minWeightBits atomic.Uint64

	// Response free list: the steady-state serve path recycles Response
	// objects (and their Qubits capacity) instead of allocating one per
	// request. Explicit and mutex-guarded rather than sync.Pool so a GC
	// cycle cannot empty it mid-flight — the AllocsPerRun-0 gate depends
	// on steady state meaning *zero*, not "zero between collections".
	respMu   sync.Mutex
	respFree []*Response

	escPol twolevel.Policy
	escCh  chan escTask
	escWG  sync.WaitGroup

	tracer      *trace.Recorder
	queueWaitNs *obs.Histogram // enqueue → coalesce, sched wait included
	coalesceNs  *obs.Histogram // coalesce → decode start
	escWaitNs   *obs.Histogram // decode end → escalate start
	schedWaitNs *obs.Histogram // drain-task deque wait, per dispatch
	drainSteals *obs.Counter
	escDepth    *obs.Gauge

	decodeNs   *obs.Histogram
	batchLanes *obs.Histogram
	escalateNs *obs.Histogram
	escTotal   *obs.Counter
	escDropped *obs.Counter

	reqTotal    *obs.Counter
	okTotal     *obs.Counter
	shedTotal   *obs.Counter
	errTotal    *obs.Counter
	sojournDrop *obs.Counter
	shedGauge   *obs.Gauge
	ratioPpm    *obs.Gauge
	connGauge   *obs.Gauge
	outDepth    *obs.Gauge

	mu        sync.RWMutex
	closed    bool
	listeners []net.Listener
	conns     map[*srvConn]struct{}

	connWG     sync.WaitGroup
	tickerStop chan struct{}
	tickerDone chan struct{}
}

// New builds and starts a server: its decode workers and controller
// loop run until Close.
func New(cfg Config) *Server {
	if len(cfg.Distances) == 0 {
		cfg.Distances = []int{3, 5, 7, 9}
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.Window <= 0 {
		cfg.Window = 32
	}
	if cfg.EvalEvery <= 0 {
		cfg.EvalEvery = 50 * time.Millisecond
	}
	if cfg.FlushEvery <= 0 {
		cfg.FlushEvery = 8
	}
	if cfg.FlushInterval <= 0 {
		cfg.FlushInterval = 200 * time.Microsecond
	}
	if cfg.PoolWorkers <= 0 {
		cfg.PoolWorkers = runtime.GOMAXPROCS(0)
	}
	if cfg.Pool == nil {
		cfg.Pool = sfq.NewPool(cfg.Variant)
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.Default()
	}
	s := &Server{
		cfg:         cfg,
		pool:        cfg.Pool,
		reg:         cfg.Registry,
		queues:      map[queueKey]*queue{},
		conns:       map[*srvConn]struct{}{},
		sched:       sched.New(cfg.PoolWorkers, sched.Options{}),
		decodeNs:    cfg.Registry.Histogram("serve_decode_ns"),
		batchLanes:  cfg.Registry.Histogram("serve_batch_lanes"),
		reqTotal:    cfg.Registry.Counter("serve_requests_total"),
		okTotal:     cfg.Registry.Counter("serve_ok_total"),
		shedTotal:   cfg.Registry.Counter("serve_shed_total"),
		errTotal:    cfg.Registry.Counter("serve_error_total"),
		sojournDrop: cfg.Registry.Counter("serve_sojourn_dropped_total"),
		shedGauge:   cfg.Registry.Gauge("serve_shedding"),
		schedWaitNs: cfg.Registry.Histogram("serve_sched_wait_ns"),
		drainSteals: cfg.Registry.Counter("serve_drain_steals_total"),
		ratioPpm:    cfg.Registry.Gauge("serve_backlog_ratio_ppm"),
		connGauge:   cfg.Registry.Gauge("serve_conns"),
		outDepth:    cfg.Registry.Gauge("serve_out_queue_depth"),
		tickerStop:  make(chan struct{}),
		tickerDone:  make(chan struct{}),
	}
	// Cost-weighted admission defaults on; Config and the knob are two
	// spellings of the same off switch (either wins).
	s.weighted = !cfg.DisableWeightedShed
	switch knob.String("REPRO_SERVE_WEIGHTED") {
	case "0", "false":
		s.weighted = false
	}
	s.minWeightBits.Store(math.Float64bits(1.0))
	// Flight recorder: TraceSample 0 defers to the REPRO_TRACE_SAMPLE
	// knob; knob value 0/off — or an explicit negative sample — turns
	// the recorder off entirely, including outlier and shed-decision
	// capture.
	sampleN := cfg.TraceSample
	if sampleN == 0 {
		if sampleN = trace.DefaultSample(); sampleN == 0 {
			sampleN = -1
		}
	}
	if sampleN > 0 {
		s.tracer = trace.New(trace.Config{
			Depth:         cfg.TraceDepth,
			DecisionDepth: cfg.TraceDepth,
			MaxInFlight:   cfg.TraceSpans,
			SampleN:       sampleN,
		})
		s.queueWaitNs = cfg.Registry.Histogram("serve_queue_wait_ns")
		s.coalesceNs = cfg.Registry.Histogram("serve_coalesce_ns")
		s.escWaitNs = cfg.Registry.Histogram("serve_escalate_wait_ns")
		s.tracer.SetObserver(s.observeSpan)
		// Exemplars link high serve_decode_ns buckets to trace seqs.
		s.decodeNs.EnableExemplars()
	}
	// Controller capacity: how many decodes the whole service advances
	// concurrently when saturated — lanes × workers, summed over queues.
	capacity := 0.0
	for _, d := range cfg.Distances {
		lanes := cfg.Lanes
		if max := sfq.MaxBatchLanes(d); lanes < 1 || lanes > max {
			lanes = max
		}
		for _, e := range []lattice.ErrorType{lattice.ZErrors, lattice.XErrors} {
			q := &queue{d: d, e: e, ch: make(chan task, cfg.QueueDepth),
				costNs: cfg.Registry.Histogram(fmt.Sprintf("serve_decode_ns_d%d", d))}
			q.setWeight(1.0)
			q.cond = sync.NewCond(&q.mu)
			s.queues[queueKey{d, e}] = q
			g := s.pool.Graph(d, e)
			for w := 0; w < cfg.Workers; w++ {
				dt := &drainTask{s: s, q: q, g: g, scr: decodepool.NewScratch()}
				if cfg.Lanes > 0 {
					dt.b = sfq.NewBatchWithLanes(g, cfg.Variant, cfg.Lanes)
				} else {
					dt.b = s.pool.GetBatch(d, e)
					dt.pooled = true
				}
				dt.tasks = make([]task, 0, dt.b.Lanes())
				dt.syns = make([][]bool, 0, dt.b.Lanes())
				q.drains = append(q.drains, dt)
				q.free = append(q.free, dt)
			}
			capacity += float64(lanes * cfg.Workers)
		}
	}
	if cfg.Escalate {
		s.escPol = twolevel.DefaultPolicy()
		if cfg.EscalatePolicy != nil {
			s.escPol = *cfg.EscalatePolicy
		}
		depth := cfg.EscQueueDepth
		if depth <= 0 {
			depth = 256
		}
		workers := cfg.EscWorkers
		if workers <= 0 {
			workers = 1
		}
		s.escCh = make(chan escTask, depth)
		s.escalateNs = cfg.Registry.Histogram("serve_escalate_ns")
		s.escTotal = cfg.Registry.Counter("serve_escalations_total")
		s.escDropped = cfg.Registry.Counter("serve_escalate_dropped_total")
		s.escDepth = cfg.Registry.Gauge("serve_esc_queue_depth")
		for w := 0; w < workers; w++ {
			s.escWG.Add(1)
			go s.runEscWorker()
		}
	}
	s.ctl = NewController(capacity)
	if cfg.Enter != 0 && cfg.Exit != 0 {
		s.ctl.Enter, s.ctl.Exit = cfg.Enter, cfg.Exit
	}
	go s.controlLoop()
	return s
}

// Controller returns the server's admission controller (read-only use:
// Shedding, Ratio).
func (s *Server) Controller() *Controller { return s.ctl }

// Pool returns the mesh pool backing the decode workers.
func (s *Server) Pool() *sfq.Pool { return s.pool }

// Tracer returns the server's flight recorder, nil when tracing is
// disabled. The /debug/traces handler and the scrape tests read it.
func (s *Server) Tracer() *trace.Recorder { return s.tracer }

// observeSpan is the recorder's finalize hook: fold each finalized
// request span's stage deltas into the derived stage histograms. The
// consecutive deltas telescope — accept → … → resp_write sums exactly
// to the span's wall time — so together the histograms decompose
// serve_decode_ns's end-to-end latency stage by stage.
func (s *Server) observeSpan(sp *trace.Span) {
	if sp.Kind() != trace.KindRequest {
		return
	}
	if w := stageDelta(sp, trace.StageEnqueue, trace.StageCoalesce); w >= 0 {
		s.queueWaitNs.Observe(uint64(w))
	}
	if w := stageDelta(sp, trace.StageCoalesce, trace.StageDecodeStart); w >= 0 {
		s.coalesceNs.Observe(uint64(w))
	}
	if w := stageDelta(sp, trace.StageDecodeEnd, trace.StageEscalateStart); w >= 0 {
		s.escWaitNs.Observe(uint64(w))
	}
}

// stageDelta returns to − from in nanoseconds, or −1 when either stage
// was never reached.
func stageDelta(sp *trace.Span, from, to trace.Stage) int64 {
	a, b := sp.TS(from), sp.TS(to)
	if a == 0 || b == 0 || b < a {
		return -1
	}
	return b - a
}

// recordShed commits one shed decision with the admission-controller
// inputs that caused it — through the request's own span when it has
// one, directly into the decision ring otherwise (free list dry).
// weight is the shed class's service-cost weight; sojournNs is nonzero
// only for ReasonSojourn drops (how long the request actually waited).
func (s *Server) recordShed(sp *trace.Span, id uint64, d int, e lattice.ErrorType,
	reason trace.Reason, queueLen int, weight float64, sojournNs int64) {
	if s.tracer == nil {
		return
	}
	in := trace.DecisionInputs{
		Ratio:     s.ctl.Ratio(),
		ArrivalNs: s.meter.intervalNs(time.Now()),
		QueueLen:  queueLen,
		Weight:    weight,
		SojournNs: sojournNs,
	}
	if sp != nil {
		sp.FinishDecision(trace.KindShed, reason, in)
		return
	}
	s.tracer.RecordDecision(trace.KindShed, id, d, uint8(e), reason, in)
}

// recordEscDrop commits an escalation-drop decision. The level-2 queue
// was full, so its length is its capacity by definition of the drop.
func (s *Server) recordEscDrop(id uint64, q *queue) {
	if s.tracer == nil {
		return
	}
	s.tracer.RecordDecision(trace.KindEscDrop, id, q.d, uint8(q.e),
		trace.ReasonEscQueueFull, trace.DecisionInputs{
			Ratio:     s.ctl.Ratio(),
			ArrivalNs: s.meter.intervalNs(time.Now()),
			QueueLen:  cap(s.escCh),
			Weight:    q.weight(),
		})
}

// respFreeCap bounds the response free list; responses beyond it (a
// burst drained all at once) fall to the garbage collector.
const respFreeCap = 1024

// getResp pops a recycled Response — zeroed except for its retained
// Qubits capacity — or allocates one when the list is dry.
func (s *Server) getResp() *Response {
	s.respMu.Lock()
	if last := len(s.respFree) - 1; last >= 0 {
		r := s.respFree[last]
		s.respFree[last] = nil
		s.respFree = s.respFree[:last]
		s.respMu.Unlock()
		return r
	}
	s.respMu.Unlock()
	return &Response{}
}

// putResp recycles a delivered Response after the transport encoded it
// onto the wire. The caller must not touch r afterwards.
func (s *Server) putResp(r *Response) {
	if r == nil {
		return
	}
	*r = Response{Qubits: r.Qubits[:0]}
	s.respMu.Lock()
	if len(s.respFree) < respFreeCap {
		s.respFree = append(s.respFree, r)
	}
	s.respMu.Unlock()
}

// controlLoop re-evaluates the SLO controller on a fixed period, from
// the live arrival-rate estimate and service-time histogram, and
// mirrors its state into the serve_shedding / serve_backlog_ratio_ppm
// gauges.
func (s *Server) controlLoop() {
	defer close(s.tickerDone)
	t := time.NewTicker(s.cfg.EvalEvery)
	defer t.Stop()
	for {
		select {
		case <-s.tickerStop:
			return
		case now := <-t.C:
			// With escalation on, the controller sees the two-tier
			// service-time mixture: level-1 mesh decodes plus level-2
			// MWPM re-decodes in one distribution, so an escalation storm
			// inflates the modeled backlog and engages shedding.
			svc := s.decodeNs.Snapshot()
			if s.escCh != nil {
				svc = svc.Merge(s.escalateNs.Snapshot())
			}
			shedding := s.ctl.Update(s.meter.intervalNs(now), svc)
			if shedding {
				s.shedGauge.Set(1)
			} else {
				s.shedGauge.Set(0)
			}
			s.ratioPpm.Set(int64(s.ctl.Ratio() * 1e6))
			s.updateWeights()
		}
	}
}

// updateWeights refreshes every queue's service-cost weight from the
// measured per-distance decode histograms: weight = that distance's
// mean decode time / the most expensive distance's, so the costliest
// class sits at 1.0 and cheap classes fall toward 0. A distance with no
// measurements yet keeps weight 1.0 — unknown cost reads as expensive,
// so a cold class is never shed preferentially on no evidence. The
// minimum across queues feeds ShedClass's "cheapest class" rule.
func (s *Server) updateWeights() {
	maxMean := 0.0
	means := map[int]float64{}
	for _, q := range s.queues {
		if _, ok := means[q.d]; ok {
			continue
		}
		snap := q.costNs.Snapshot()
		if snap.Count == 0 {
			continue
		}
		m := snap.Mean()
		means[q.d] = m
		if m > maxMean {
			maxMean = m
		}
	}
	minW := 1.0
	for _, q := range s.queues {
		w := 1.0
		if m, ok := means[q.d]; ok && maxMean > 0 {
			w = m / maxMean
		}
		q.setWeight(w)
		if w < minW {
			minW = w
		}
	}
	s.minWeightBits.Store(math.Float64bits(minW))
}

// shedClass applies the cost-weighted admission predicate to q while
// the controller is shedding. With weighting disabled it is uniformly
// true — the pre-weighting behavior, bit-identical because the rest of
// the shed path is unchanged.
func (s *Server) shedClass(q *queue) bool {
	if !s.weighted {
		return true
	}
	return ShedClass(q.weight(), math.Float64frombits(s.minWeightBits.Load()),
		s.ctl.Ratio(), s.ctl.Enter)
}

// submit runs admission control and, if the request is admitted,
// enqueues it. deliver is invoked exactly once in every path —
// synchronously for rejections, from a decode worker for admitted
// requests — with a response the caller owns. The syndrome is copied,
// so the caller may reuse its buffer immediately.
func (s *Server) submit(d int, e lattice.ErrorType, id uint64, syn []bool, deliver func(*Response)) {
	s.reqTotal.Inc()
	// One clock read covers the arrival meter and the accept/admit/
	// enqueue stamps: the in-process gaps between those stages are tens
	// of nanoseconds, far below anything the decomposition cares about,
	// and the saved reads keep tracing inside its overhead budget.
	now := time.Now()
	sp := s.tracer.Start(id, d, uint8(e))
	nowNs := now.UnixNano()
	sp.StampAt(trace.StageAccept, nowNs)
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		s.errTotal.Inc()
		sp.FinishError()
		deliver(&Response{ID: id, Status: StatusError, Msg: "server draining"})
		return
	}
	q := s.queues[queueKey{d, e}]
	if q == nil {
		s.mu.RUnlock()
		s.errTotal.Inc()
		sp.FinishError()
		deliver(&Response{ID: id, Status: StatusError,
			Msg: fmt.Sprintf("unsupported distance %d (serving %v)", d, s.cfg.Distances)})
		return
	}
	if want := s.pool.Graph(d, e).NumChecks(); len(syn) != want {
		s.mu.RUnlock()
		s.errTotal.Inc()
		sp.FinishError()
		deliver(&Response{ID: id, Status: StatusError,
			Msg: fmt.Sprintf("syndrome has %d checks, d=%d wants %d", len(syn), d, want)})
		return
	}
	if s.ctl.Shedding() && s.shedClass(q) {
		s.mu.RUnlock()
		s.shedTotal.Inc()
		s.recordShed(sp, id, d, e, trace.ReasonController, len(q.ch), q.weight(), 0)
		r := s.getResp()
		r.ID, r.Status = id, StatusShed
		deliver(r)
		return
	}
	s.meter.tick(now)
	sp.StampAt(trace.StageAdmit, nowNs)
	// The enqueue stamp must land before the send: once the task is in
	// the channel a drain worker owns the span. A span that then sheds
	// on the full-queue path carries a moot enqueue stamp, which the
	// decision record never reads.
	sp.StampAt(trace.StageEnqueue, nowNs)
	// The syndrome is copied into a queue-owned pooled buffer before
	// submit returns, so the caller (readLoop's reused frame buffer) may
	// overwrite its slice immediately — the aliasing regression test
	// pins exactly this.
	buf := q.getSyn(len(syn))
	copy(buf, syn)
	t := task{id: id, syn: buf, deliver: deliver, sp: sp, enqNs: nowNs}
	select {
	case q.ch <- t:
		s.mu.RUnlock()
		s.kick(q)
	default:
		// Queue full: the hard backpressure bound. The controller's
		// model-driven shedding usually engages first; this path covers
		// bursts faster than its evaluation period.
		s.mu.RUnlock()
		q.putSyn(buf)
		s.shedTotal.Inc()
		s.recordShed(sp, id, d, e, trace.ReasonQueueFull, len(q.ch), q.weight(), 0)
		r := s.getResp()
		r.ID, r.Status = id, StatusShed
		deliver(r)
	}
}

// kick makes sure the queue's enqueued work will be drained: if the
// queue is below its drain-concurrency bound, a free drain slot is
// submitted to the shared scheduler. The check runs under q.mu, which
// pairs with the exit-recheck in drainTask.Run — after any successful
// enqueue+kick, either an active drain observes the task or a new
// drain is spawned, so no admitted request can strand.
func (s *Server) kick(q *queue) {
	q.mu.Lock()
	if q.active >= s.cfg.Workers || len(q.free) == 0 {
		q.mu.Unlock()
		return
	}
	dt := q.free[len(q.free)-1]
	q.free = q.free[:len(q.free)-1]
	q.active++
	q.mu.Unlock()
	s.sched.Submit(dt)
}

// Decode runs one request through admission and the decode pipeline,
// blocking for its response. This is the synchronous path behind the
// HTTP handler; the framed TCP path pipelines instead (see ServeConn).
func (s *Server) Decode(d int, e lattice.ErrorType, id uint64, syn []bool) *Response {
	ch := make(chan *Response, 1)
	s.submit(d, e, id, syn, func(r *Response) { ch <- r })
	r := <-ch
	// The synchronous caller is its own transport: receiving the
	// response is the response write.
	if r.span != nil {
		r.span.Stamp(trace.StageRespWrite)
		r.span.Finish()
		r.span = nil
	}
	return r
}

// Run implements sched.Task: drain the queue until it is empty,
// coalescing whatever is queued — without waiting — into up to one full
// batch of mesh lanes per decode, then retire the slot. Coalescing is
// opportunistic by design: an idle service decodes single requests at
// scalar latency, a saturated one fills all lanes and rides the SWAR
// kernel's per-instruction parallelism. The task never blocks on the
// queue channel, so it can share scheduler workers with every other
// queue's drains.
func (dt *drainTask) Run() {
	s, q := dt.s, dt.q
	stolen := dt.stolen
	dt.stolen = false
	maxWait := int64(s.cfg.MaxQueueWait)
	for {
		dt.tasks = dt.tasks[:0]
		// One clock read per batch prices the sojourn bound; the coalesce
		// loop below runs in microseconds, so per-pop re-reads would buy
		// no accuracy the 12.5%-wide histograms could see.
		var nowNs int64
		if maxWait > 0 {
			nowNs = time.Now().UnixNano()
		}
	coalesce:
		for len(dt.tasks) < dt.b.Lanes() {
			select {
			case t, ok := <-q.ch:
				if !ok {
					break coalesce
				}
				// CoDel-style sojourn bound: a request that aged past
				// MaxQueueWait while more work is queued behind it is
				// already useless to a per-round latency budget — drop it
				// (StatusShed, ReasonSojourn) and spend the lanes on
				// requests that can still make their deadline. The
				// backlog guard (len(q.ch) > 0) means the newest queued
				// request is always decoded, so an idle or draining
				// service still answers everything.
				if maxWait > 0 && len(q.ch) > 0 && nowNs-t.enqNs > maxWait {
					s.dropSojourn(q, t, nowNs-t.enqNs)
					continue
				}
				dt.tasks = append(dt.tasks, t)
			default:
				break coalesce
			}
		}
		if len(dt.tasks) > 0 {
			s.batchLanes.Observe(uint64(len(dt.tasks)))
			if s.tracer != nil {
				// One clock read stamps the whole batch: every lane left
				// its queue when the coalesce loop closed.
				now := time.Now().UnixNano()
				for i := range dt.tasks {
					sp := dt.tasks[i].sp
					sp.StampAt(trace.StageCoalesce, now)
					if stolen {
						sp.SetFlag(trace.FlagStolenDrain)
					}
				}
			}
			stolen = false // only the dispatch batch rode the steal
			s.decodeTasks(dt)
			continue
		}
		// Exit-recheck, paired with kick: the queue looked empty, but a
		// producer may have enqueued after our last poll and seen this
		// drain still active (so it didn't spawn another). Re-checking
		// the channel under q.mu before retiring closes that window.
		q.mu.Lock()
		if len(q.ch) > 0 {
			q.mu.Unlock()
			continue
		}
		q.active--
		q.free = append(q.free, dt)
		q.cond.Broadcast()
		q.mu.Unlock()
		return
	}
}

// dropSojourn sheds one task the sojourn bound condemned: the decision
// is recorded with the measured wait, the syndrome buffer is recycled,
// and the client still gets its exactly-once response (StatusShed).
func (s *Server) dropSojourn(q *queue, t task, sojournNs int64) {
	s.shedTotal.Inc()
	s.sojournDrop.Inc()
	s.recordShed(t.sp, t.id, q.d, q.e, trace.ReasonSojourn, len(q.ch), q.weight(), sojournNs)
	q.putSyn(t.syn)
	r := s.getResp()
	r.ID, r.Status = t.id, StatusShed
	t.deliver(r)
}

// ObserveSchedWait implements sched.WaitObserver: the scheduler calls
// it on the executing worker immediately before Run with how long this
// drain sat in the deques and whether it arrived by steal. The wait
// feeds serve_sched_wait_ns — the scheduler's share of every coalesced
// request's queue-wait stage — and the steal flag rides into the
// dispatch batch's spans as FlagStolenDrain.
func (dt *drainTask) ObserveSchedWait(waitNs int64, stolen bool) {
	if waitNs >= 0 {
		dt.s.schedWaitNs.Observe(uint64(waitNs))
	}
	if stolen {
		dt.s.drainSteals.Inc()
	}
	dt.stolen = stolen
}

// decodeTasks decodes one coalesced batch and delivers its responses.
// Each response owns its qubit slice (the corrections alias the
// worker's scratch, which the next batch reuses).
func (s *Server) decodeTasks(dt *drainTask) {
	b, g, tasks := dt.b, dt.g, dt.tasks
	dt.syns = dt.syns[:0]
	for i := range tasks {
		dt.syns = append(dt.syns, tasks[i].syn)
	}
	start := time.Now()
	cs, err := decodepool.DecodeBatch(b, g, dt.syns, dt.scr)
	elapsed := time.Since(start)
	if err != nil {
		s.errTotal.Add(int64(len(tasks)))
		for i := range tasks {
			tasks[i].sp.FinishError()
			dt.q.putSyn(tasks[i].syn)
			tasks[i].deliver(&Response{ID: tasks[i].id, Status: StatusError, Msg: err.Error()})
		}
		return
	}
	// Batch stage stamps come from the two clock reads already paid for
	// the service-time signal; every lane shares them.
	startNs := start.UnixNano()
	endNs := startNs + elapsed.Nanoseconds()
	// The controller's service-time signal: wall-clock cost per request,
	// so lane sharing shows up as the speedup it is.
	perNs := uint64(elapsed.Nanoseconds()) / uint64(len(tasks))
	for i := range tasks {
		sp := tasks[i].sp
		sp.StampAt(trace.StageDecodeStart, startNs)
		sp.StampAt(trace.StageDecodeEnd, endNs)
		// ObserveExemplar tags the bucket with the trace seq (0 = plain
		// observe), linking high serve_decode_ns buckets to traces.
		s.decodeNs.ObserveExemplar(perNs, sp.Seq())
		// The per-distance cost histogram behind the admission weights.
		dt.q.costNs.Observe(perNs)
		st := b.LaneStats(i)
		escalate := s.escCh != nil && s.escPol.Escalate(st)
		resp := s.getResp()
		resp.ID = tasks[i].id
		resp.Status = StatusOK
		resp.Escalated = escalate
		resp.Cycles = uint32(st.Cycles)
		resp.span = sp
		if qs := cs[i].Qubits; len(qs) > 0 {
			// The corrections alias the worker's scratch (the next batch
			// reuses it); the response's retained Qubits capacity takes a
			// copy, growing only on first use per pooled response.
			if cap(resp.Qubits) < len(qs) {
				resp.Qubits = make([]int32, len(qs))
			} else {
				resp.Qubits = resp.Qubits[:len(qs)]
			}
			for j, qb := range qs {
				resp.Qubits[j] = int32(qb)
			}
		}
		s.okTotal.Inc()
		if escalate {
			// The reference for level 2 must be taken before the response
			// leaves: once delivered, the transport may finish the span at
			// any moment.
			sp.SetFlag(trace.FlagEscalated)
			sp.AddRef()
		}
		tasks[i].deliver(resp)
		if escalate {
			// The response is out; the syndrome copy is now free to hand
			// to level 2 (which recycles it into the queue's free list
			// when done). A full queue drops the escalation rather than
			// stalling this worker — level 1 never waits on level 2.
			select {
			case s.escCh <- escTask{g: g, q: dt.q, syn: tasks[i].syn, sp: sp}:
				s.escDepth.Add(1)
			default:
				s.escDropped.Inc()
				sp.SetFlag(trace.FlagEscDropped)
				s.recordEscDrop(tasks[i].id, dt.q)
				sp.Finish() // release the level-2 reference: it never ran
				dt.q.putSyn(tasks[i].syn)
			}
		} else {
			// Decoded, delivered, not escalated: nothing references the
			// syndrome copy — recycle it.
			dt.q.putSyn(tasks[i].syn)
		}
	}
}

// runEscWorker drains the escalation queue: each task is re-decoded by
// exact MWPM with worker-owned scratch, feeding the level-2 latency
// histogram the controller and the backlog model consume.
func (s *Server) runEscWorker() {
	defer s.escWG.Done()
	scratch := decodepool.NewScratch()
	dec := mwpm.New()
	for et := range s.escCh {
		s.escDepth.Add(-1)
		start := time.Now()
		et.sp.StampAt(trace.StageEscalateStart, start.UnixNano())
		if _, err := dec.DecodeInto(et.g, et.syn, scratch); err != nil {
			s.errTotal.Inc()
			et.sp.Finish()
			et.q.putSyn(et.syn)
			continue
		}
		elapsed := time.Since(start)
		et.sp.StampAt(trace.StageEscalateEnd, start.UnixNano()+elapsed.Nanoseconds())
		s.escalateNs.Observe(uint64(elapsed.Nanoseconds()))
		s.escTotal.Inc()
		et.sp.Finish()
		et.q.putSyn(et.syn)
	}
}

// Serve accepts framed-TCP connections on ln until the listener closes
// (Close closes every registered listener). It returns nil after a
// graceful Close, the accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return fmt.Errorf("serve: server is closed")
	}
	s.listeners = append(s.listeners, ln)
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			s.mu.RLock()
			closed := s.closed
			s.mu.RUnlock()
			if closed {
				return nil
			}
			return err
		}
		s.connWG.Add(1)
		go func() {
			defer s.connWG.Done()
			s.ServeConn(c)
		}()
	}
}

// Close drains and stops the server: admission switches to "draining"
// errors, connection readers are unblocked, every already-admitted
// request is decoded and its response delivered, and the decode workers
// return their meshes to the pool. Close blocks until all of that is
// done; after it returns, the pool's Outstanding count is back to its
// pre-server value.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	lns := s.listeners
	conns := make([]*srvConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	close(s.tickerStop)
	<-s.tickerDone
	for _, ln := range lns {
		ln.Close()
	}
	// Unblock every connection reader; writers then drain each
	// connection's in-flight responses before closing it.
	for _, c := range conns {
		c.cancelRead()
	}
	s.connWG.Wait()
	// No admissions can be in flight (they hold the read lock, and
	// closed was set under the write lock), so the queues are safe to
	// close; receives keep delivering the buffered remainder, and the
	// kick/exit-recheck invariant guarantees an active drain exists for
	// any queue that still holds one, so waiting for active == 0 waits
	// for every admitted request to be decoded and delivered.
	for _, q := range s.queues {
		close(q.ch)
	}
	for _, q := range s.queues {
		q.mu.Lock()
		for q.active > 0 {
			q.cond.Wait()
		}
		q.mu.Unlock()
	}
	// All drains retired and nothing can spawn more: stop the shared
	// scheduler and hand the pooled meshes back.
	s.sched.Close()
	for _, q := range s.queues {
		for _, dt := range q.drains {
			if dt.pooled {
				s.pool.PutBatch(dt.b)
			}
		}
	}
	// Decode workers were the only escalation producers; drain level 2
	// so every admitted escalation is decoded (or was counted dropped)
	// before Close returns.
	if s.escCh != nil {
		close(s.escCh)
		s.escWG.Wait()
	}
	return nil
}
