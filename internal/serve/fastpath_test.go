package serve

import (
	"net"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/lattice"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/sfq"
)

// discardConn is a net.Conn whose writes succeed into the void and
// whose reads block until Close: the write side of the steady-state
// allocation harness, where only the server's own path may allocate.
type discardConn struct {
	mu     sync.Mutex
	closed chan struct{}
}

func newDiscardConn() *discardConn { return &discardConn{closed: make(chan struct{})} }

func (c *discardConn) Read(p []byte) (int, error) {
	<-c.closed
	return 0, net.ErrClosed
}
func (c *discardConn) Write(p []byte) (int, error) { return len(p), nil }
func (c *discardConn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	select {
	case <-c.closed:
	default:
		close(c.closed)
	}
	return nil
}
func (c *discardConn) LocalAddr() net.Addr                { return &net.TCPAddr{} }
func (c *discardConn) RemoteAddr() net.Addr               { return &net.TCPAddr{} }
func (c *discardConn) SetDeadline(t time.Time) error      { return nil }
func (c *discardConn) SetReadDeadline(t time.Time) error  { return nil }
func (c *discardConn) SetWriteDeadline(t time.Time) error { return nil }

// TestSubmitCopiesSyndrome pins the aliasing contract the pooling work
// leans on: submit copies the syndrome into a server-owned buffer
// before returning, so a caller (readLoop's reused frame buffer) may
// overwrite its slice the instant submit returns. The test corrupts the
// buffer immediately after submit and checks the correction still
// matches a decode of the uncorrupted syndrome.
func TestSubmitCopiesSyndrome(t *testing.T) {
	pool := sfq.NewPool(sfq.Final)
	s := New(Config{Variant: sfq.Final, Distances: []int{9}, Pool: pool,
		Registry: obs.NewRegistry(), TraceSample: -1})
	defer s.Close()

	syns := confSyndromes(9, lattice.ZErrors, confTrials(64, 16))
	for i, syn := range syns {
		want := s.Decode(9, lattice.ZErrors, uint64(1000+i), append([]bool(nil), syn...))
		if want.Status != StatusOK {
			t.Fatalf("reference decode %d: status %v", i, want.Status)
		}
		wantQ := append([]int32(nil), want.Qubits...)
		wantC := want.Cycles

		buf := append([]bool(nil), syn...)
		ch := make(chan *Response, 1)
		s.submit(9, lattice.ZErrors, uint64(i), buf, func(r *Response) { ch <- r })
		// submit has returned: the syndrome must already be copied.
		// Corrupt every bit before the decode worker (asynchronously)
		// gets to it.
		for j := range buf {
			buf[j] = !buf[j]
		}
		got := <-ch
		if got.Status != StatusOK {
			t.Fatalf("decode %d: status %v", i, got.Status)
		}
		if got.Cycles != wantC {
			t.Fatalf("decode %d: cycles %d after buffer reuse, want %d", i, got.Cycles, wantC)
		}
		if len(got.Qubits) != len(wantQ) {
			t.Fatalf("decode %d: %d qubits after buffer reuse, want %d",
				i, len(got.Qubits), len(wantQ))
		}
		for j := range wantQ {
			if got.Qubits[j] != wantQ[j] {
				t.Fatalf("decode %d: qubit[%d] = %d after buffer reuse, want %d",
					i, j, got.Qubits[j], wantQ[j])
			}
		}
	}
}

// TestWireAliasingPipelined drives two back-to-back frames through
// ServeConn over a pipe: the second frame overwrites readLoop's reused
// buffer while the first may still be in the decode queue — the exact
// interleaving the copy in submit exists for.
func TestWireAliasingPipelined(t *testing.T) {
	pool := sfq.NewPool(sfq.Final)
	s := New(Config{Variant: sfq.Final, Distances: []int{9}, Pool: pool,
		Registry: obs.NewRegistry(), TraceSample: -1})
	defer s.Close()

	cs, ss := net.Pipe()
	go s.ServeConn(ss)
	cl := NewClient(cs)
	defer cl.Close()

	syns := confSyndromes(9, lattice.ZErrors, confTrials(32, 8))
	chans := make([]<-chan *Response, len(syns))
	wants := make([]*Response, len(syns))
	for i, syn := range syns {
		wants[i] = s.Decode(9, lattice.ZErrors, uint64(2000+i), append([]bool(nil), syn...))
		ch, err := cl.Send(&Request{D: 9, EType: lattice.ZErrors, Syndrome: syn})
		if err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		chans[i] = ch
	}
	for i, ch := range chans {
		got := <-ch
		if got == nil || got.Status != StatusOK {
			t.Fatalf("response %d: %+v", i, got)
		}
		if got.Cycles != wants[i].Cycles || len(got.Qubits) != len(wants[i].Qubits) {
			t.Fatalf("response %d: cycles/qubits (%d, %d) want (%d, %d)",
				i, got.Cycles, len(got.Qubits), wants[i].Cycles, len(wants[i].Qubits))
		}
		for j := range got.Qubits {
			if got.Qubits[j] != wants[i].Qubits[j] {
				t.Fatalf("response %d qubit[%d]: %d want %d",
					i, j, got.Qubits[j], wants[i].Qubits[j])
			}
		}
	}
}

// TestSteadyStateZeroAllocs is the AllocsPerRun-0 gate on the
// steady-state serve path: submit → queue → coalesce → decode →
// deliver → ring → response write, with the free lists warm, allocates
// nothing per request. ci.sh runs it by name; a regression here is a
// regression in the tail, not just in GC pressure.
func TestSteadyStateZeroAllocs(t *testing.T) {
	pool := sfq.NewPool(sfq.Final)
	s := New(Config{
		Variant:   sfq.Final,
		Distances: []int{9},
		Pool:      pool,
		Registry:  obs.NewRegistry(),
		// Tracing off: sampled spans are pooled but the 1-in-N record
		// copy is not part of the steady-state contract. The controller
		// loop is parked (EvalEvery huge) so its periodic snapshot
		// allocations stay out of the measurement.
		TraceSample: -1,
		EvalEvery:   time.Hour,
	})
	defer s.Close()

	nc := newDiscardConn()
	defer nc.Close()
	c := newSrvConn(s, nc)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.writeLoop()
	}()
	defer func() {
		c.mu.Lock()
		c.readDone = true
		c.cond.Broadcast()
		c.mu.Unlock()
		wg.Wait()
	}()

	syn := confSyndromes(9, lattice.ZErrors, 3)[2]
	q := s.queues[queueKey{9, lattice.ZErrors}]
	oneReq := func(id uint64) {
		c.mu.Lock()
		c.inflight++
		c.mu.Unlock()
		s.submit(9, lattice.ZErrors, id, syn, c.deliverFn)
		c.mu.Lock()
		for c.inflight != 0 {
			c.cond.Wait()
		}
		c.mu.Unlock()
	}

	// Warm every free list and lazily grown structure: syndrome buffers,
	// responses, scheduler deques, bufio, the exemplar-free histograms.
	for i := 0; i < 64; i++ {
		q.putSyn(make([]bool, len(syn)))
	}
	for i := 0; i < 512; i++ {
		oneReq(uint64(i))
	}

	var id uint64 = 1 << 20
	allocs := testing.AllocsPerRun(200, func() {
		id++
		oneReq(id)
	})
	if allocs != 0 {
		t.Fatalf("steady-state serve path allocates %.2f objects/request, want 0", allocs)
	}
}

// TestShedClassMonotone is the property behind the shed-ordering
// guarantee: for any controller state, if a class sheds then every
// class of equal or lower weight sheds too — cheap d=3 traffic is
// always cut at or before expensive d=13 traffic.
func TestShedClassMonotone(t *testing.T) {
	prop := func(w1, w2, minW, ratio, enter float64) bool {
		abs := func(x float64) float64 {
			if x < 0 {
				return -x
			}
			return x
		}
		// Map the fuzzed floats into the domains the server feeds in.
		norm := func(x float64) float64 { return abs(x) - float64(int(abs(x))) } // [0, 1)
		w1, w2, minW = norm(w1), norm(w2), norm(minW)
		if w1 > w2 {
			w1, w2 = w2, w1
		}
		enter = 0.5 + norm(enter)     // (0.5, 1.5)
		ratio = enter + 2*norm(ratio) // ≥ enter, as when shedding is engaged
		if ShedClass(w2, minW, ratio, enter) && !ShedClass(w1, minW, ratio, enter) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}

	// All-equal weights degrade to uniform shedding: every class is the
	// cheapest, so every class sheds — the pre-weighting behavior.
	for _, w := range []float64{0.1, 0.5, 1.0} {
		if !ShedClass(w, w, 1.05, 1.0) {
			t.Fatalf("ShedClass(%v, %v, 1.05, 1.0) = false, want uniform shed", w, w)
		}
	}
	// The severity ramp: just past Enter only the cheap class sheds.
	if !ShedClass(0.1, 0.1, 1.05, 1.0) {
		t.Fatal("cheapest class must shed the moment shedding engages")
	}
	if ShedClass(1.0, 0.1, 1.05, 1.0) {
		t.Fatal("most expensive class must survive a mild overload")
	}
	if !ShedClass(1.0, 0.1, 2.5, 1.0) {
		t.Fatal("every class sheds once severity saturates")
	}
}

// shedServer builds a server with mixed distances, synthetic
// per-distance decode costs, and the controller pinned into a shedding
// state at the given ratio — the deterministic overload harness for the
// ordering tests.
func shedServer(t *testing.T, ratio float64) *Server {
	t.Helper()
	pool := sfq.NewPool(sfq.Final)
	s := New(Config{Variant: sfq.Final, Distances: []int{3, 9, 13}, Pool: pool,
		Registry: obs.NewRegistry(), EvalEvery: time.Hour, TraceSample: -1})
	// Synthetic measured costs: d=13 10× d=9, 100× d=3 — the shape the
	// real serve_decode_ns_d* histograms take (decode cost grows with
	// the lattice).
	for _, c := range []struct {
		d  int
		ns uint64
	}{{3, 5_000}, {9, 50_000}, {13, 500_000}} {
		q := s.queues[queueKey{c.d, lattice.ZErrors}]
		for i := 0; i < 100; i++ {
			q.costNs.Observe(c.ns)
		}
	}
	s.updateWeights()
	s.ctl.mu.Lock()
	s.ctl.shedding = true
	s.ctl.ratio = ratio
	s.ctl.mu.Unlock()
	return s
}

// shedCount submits n requests per distance against the pinned-overload
// server and returns how many were shed per distance.
func shedCount(t *testing.T, s *Server, n int) map[int]int {
	t.Helper()
	shed := map[int]int{}
	for _, d := range []int{3, 9, 13} {
		syn := make([]bool, s.pool.Graph(d, lattice.ZErrors).NumChecks())
		for i := 0; i < n; i++ {
			r := s.Decode(d, lattice.ZErrors, uint64(d*1000+i), syn)
			if r.Status == StatusShed {
				shed[d]++
			}
		}
	}
	return shed
}

// TestWeightedShedOrdering pins the ROADMAP property end to end: under
// overload with mixed d ∈ {3, 9, 13} traffic, the shed rate is monotone
// non-increasing in distance weight — d=3 shed first, d=13 last — and
// at a mild overload the expensive class is not shed at all.
func TestWeightedShedOrdering(t *testing.T) {
	const n = 50
	s := shedServer(t, 1.2) // severity 0.2: cuts w ≤ 0.2
	defer s.Close()
	shed := shedCount(t, s, n)
	if !(shed[3] >= shed[9] && shed[9] >= shed[13]) {
		t.Fatalf("shed counts not monotone in weight: d3=%d d9=%d d13=%d",
			shed[3], shed[9], shed[13])
	}
	if shed[3] != n {
		t.Fatalf("cheapest class: %d/%d shed, want all", shed[3], n)
	}
	if shed[13] != 0 {
		t.Fatalf("most expensive class: %d/%d shed at mild overload, want none", shed[13], n)
	}

	// Saturated overload sheds everything, weights or not.
	s2 := shedServer(t, 2.5)
	defer s2.Close()
	shed2 := shedCount(t, s2, n)
	for _, d := range []int{3, 9, 13} {
		if shed2[d] != n {
			t.Fatalf("saturated overload: d=%d shed %d/%d, want all", d, shed2[d], n)
		}
	}
}

// TestWeightedShedDisabled pins that REPRO_SERVE_WEIGHTED=0 restores
// the old uniform behavior bit-identically: while the controller sheds,
// every class sheds, exactly as before cost weighting existed.
func TestWeightedShedDisabled(t *testing.T) {
	t.Setenv("REPRO_SERVE_WEIGHTED", "0")
	const n = 50
	s := shedServer(t, 1.2)
	defer s.Close()
	if s.weighted {
		t.Fatal("REPRO_SERVE_WEIGHTED=0 did not disable weighting")
	}
	shed := shedCount(t, s, n)
	for _, d := range []int{3, 9, 13} {
		if shed[d] != n {
			t.Fatalf("uniform mode: d=%d shed %d/%d, want all (old behavior)", d, shed[d], n)
		}
	}
}

// TestConfigDisableWeightedShed is the Config spelling of the same
// switch.
func TestConfigDisableWeightedShed(t *testing.T) {
	pool := sfq.NewPool(sfq.Final)
	s := New(Config{Variant: sfq.Final, Distances: []int{3}, Pool: pool,
		Registry: obs.NewRegistry(), DisableWeightedShed: true, TraceSample: -1})
	defer s.Close()
	if s.weighted {
		t.Fatal("Config.DisableWeightedShed did not disable weighting")
	}
}

// TestSojournDrop pins the CoDel-style drop policy: a drain that pops a
// request older than MaxQueueWait while more work is queued drops it
// (StatusShed, ReasonSojourn, counted in serve_sojourn_dropped_total),
// and the newest queued request is always decoded, however stale.
func TestSojournDrop(t *testing.T) {
	pool := sfq.NewPool(sfq.Final)
	reg := obs.NewRegistry()
	s := New(Config{Variant: sfq.Final, Distances: []int{9}, Pool: pool,
		Registry: reg, EvalEvery: time.Hour, MaxQueueWait: 3 * time.Millisecond,
		TraceSample: 1})
	defer s.Close()

	q := s.queues[queueKey{9, lattice.ZErrors}]
	n := s.pool.Graph(9, lattice.ZErrors).NumChecks()
	type result struct {
		id uint64
		r  *Response
	}
	ch := make(chan result, 3)
	stale := time.Now().Add(-20 * time.Millisecond).UnixNano()
	fresh := time.Now().UnixNano()
	// Hand-built queue state: two stale requests with a fresh one queued
	// behind them. The drain must drop both stale ones (work remains
	// behind each) and decode the last, which empties the queue.
	for i, enq := range []int64{stale, stale, fresh} {
		id := uint64(i)
		q.ch <- task{id: id, syn: make([]bool, n), enqNs: enq,
			deliver: func(r *Response) { ch <- result{id, r} }}
	}
	s.kick(q)

	got := map[uint64]Status{}
	for i := 0; i < 3; i++ {
		select {
		case res := <-ch:
			got[res.id] = res.r.Status
		case <-time.After(5 * time.Second):
			t.Fatal("timed out waiting for responses")
		}
	}
	if got[0] != StatusShed || got[1] != StatusShed {
		t.Fatalf("stale requests: statuses %v/%v, want shed/shed", got[0], got[1])
	}
	if got[2] != StatusOK {
		t.Fatalf("newest request: status %v, want ok (backlog guard)", got[2])
	}
	if c := reg.Counter("serve_sojourn_dropped_total").Load(); c != 2 {
		t.Fatalf("serve_sojourn_dropped_total = %d, want 2", c)
	}
	// The decision records carry the measured sojourn and the class
	// weight — the inputs the BENCH_pr10 trace check asserts on.
	snap := s.Tracer().Snapshot()
	sojourns := 0
	for _, dec := range snap.Decisions {
		if dec.Reason == trace.ReasonSojourn {
			sojourns++
			if dec.SojournNs < int64(3*time.Millisecond) {
				t.Fatalf("sojourn decision records %d ns, want ≥ bound", dec.SojournNs)
			}
			if dec.Weight <= 0 {
				t.Fatalf("sojourn decision missing weight input: %+v", dec)
			}
		}
	}
	if sojourns != 2 {
		t.Fatalf("decision ring holds %d sojourn drops, want 2", sojourns)
	}
}

// TestClientFlushBatching pins the pipelining fix: sequential callers
// still flush per request (no latency regression for the sync case),
// and the flush counter moves.
func TestClientFlushBatching(t *testing.T) {
	pool := sfq.NewPool(sfq.Final)
	s := New(Config{Variant: sfq.Final, Distances: []int{9}, Pool: pool,
		Registry: obs.NewRegistry(), TraceSample: -1})
	defer s.Close()
	cs, ss := net.Pipe()
	go s.ServeConn(ss)
	cl := NewClient(cs)
	defer cl.Close()

	syn := make([]bool, s.pool.Graph(9, lattice.ZErrors).NumChecks())
	const seq = 10
	for i := 0; i < seq; i++ {
		if _, err := cl.Do(&Request{D: 9, EType: lattice.ZErrors, Syndrome: syn}); err != nil {
			t.Fatalf("sequential do %d: %v", i, err)
		}
	}
	if f := cl.Flushes(); f != seq {
		t.Fatalf("sequential sends: %d flushes for %d requests, want one each", f, seq)
	}

	// Concurrent pipelined senders: every request must still be answered
	// (the last-writer-flushes rule can batch but never strand bytes).
	const conc = 64
	var wg sync.WaitGroup
	errs := make(chan error, conc)
	for i := 0; i < conc; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			syn := make([]bool, len(syn))
			if _, err := cl.Do(&Request{D: 9, EType: lattice.ZErrors, Syndrome: syn}); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent do: %v", err)
	}
	if f := cl.Flushes(); f < seq+1 || f > seq+conc {
		t.Fatalf("concurrent sends: flush count %d outside (%d, %d]", f, seq, seq+conc)
	}
}
