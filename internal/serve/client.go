package serve

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// clientFlushEvery bounds how many pipelined requests may batch into
// one socket flush before the writer flushes anyway.
const clientFlushEvery = 8

// Client speaks the framed protocol over one connection, pipelining
// requests: Send returns immediately with a channel for the response,
// Do blocks for it, and any number of requests may be in flight (the
// server's per-connection window permitting — beyond it, sends simply
// backpressure through TCP). Request IDs are assigned by the client;
// responses are routed back by ID, so completion order does not need to
// match send order. A Client is safe for concurrent use.
//
// Flushes are batched the same way the server's writer batches them:
// each Send registers as a writer before taking the write lock, and the
// last concurrent writer out — or any writer with clientFlushEvery
// requests unflushed — flushes. Sequential callers still flush every
// request (each is its own last writer), but concurrent pipelined load
// coalesces bursts into one syscall, so a load generator no longer pays
// a write syscall per request and under-measures server capacity.
type Client struct {
	nc net.Conn

	// writers counts Sends that intend to write but have not yet left
	// the write critical section; the last one out flushes.
	writers  atomic.Int32
	flushes  atomic.Uint64
	flushCtr *obs.Counter // client_flushes_total

	wmu       sync.Mutex
	bw        *bufio.Writer
	buf       []byte
	unflushed int

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan *Response
	err     error // terminal stream error; set once
}

// Dial connects a Client to a framed-TCP server.
func Dial(addr string) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(nc), nil
}

// NewClient wraps an established connection (tests pass one half of a
// net.Pipe). The client owns nc and closes it on Close.
func NewClient(nc net.Conn) *Client {
	c := &Client{
		nc:       nc,
		bw:       bufio.NewWriter(nc),
		flushCtr: obs.Default().Counter("client_flushes_total"),
		pending:  map[uint64]chan *Response{},
	}
	go c.readLoop()
	return c
}

// Flushes returns how many socket flushes this client has issued — the
// denominator for requests-per-syscall in the loadgen artifact.
func (c *Client) Flushes() uint64 { return c.flushes.Load() }

// Send writes req (its ID is overwritten with a client-assigned one)
// and returns a 1-buffered channel that receives the response. The
// channel is closed without a value if the stream dies first; Err then
// reports why.
func (c *Client) Send(req *Request) (<-chan *Response, error) {
	ch := make(chan *Response, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	c.nextID++
	req.ID = c.nextID
	c.pending[req.ID] = ch
	c.mu.Unlock()

	c.writers.Add(1)
	c.wmu.Lock()
	b, err := AppendRequest(c.buf[:0], req)
	if err == nil {
		c.buf = b
		if _, werr := c.bw.Write(b); werr != nil {
			err = werr
		} else {
			c.unflushed++
		}
	}
	// The last concurrent writer must flush even when its own request
	// failed to encode: earlier writers may have skipped their flush on
	// the promise that someone behind them holds the lock after.
	last := c.writers.Add(-1) == 0
	if c.unflushed > 0 && (last || c.unflushed >= clientFlushEvery) {
		if ferr := c.bw.Flush(); ferr != nil {
			if err == nil {
				err = ferr
			}
		} else {
			c.unflushed = 0
			c.flushes.Add(1)
			c.flushCtr.Inc()
		}
	}
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, req.ID)
		c.mu.Unlock()
		return nil, err
	}
	return ch, nil
}

// Do sends req and blocks for its response.
func (c *Client) Do(req *Request) (*Response, error) {
	ch, err := c.Send(req)
	if err != nil {
		return nil, err
	}
	resp, ok := <-ch
	if !ok {
		return nil, c.Err()
	}
	return resp, nil
}

// Err returns the terminal stream error, or nil while the client is
// healthy. A clean server-side close reads as io.EOF.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Close tears the connection down; outstanding Sends observe a closed
// channel.
func (c *Client) Close() error {
	err := c.nc.Close()
	c.fail(fmt.Errorf("serve: client closed"))
	return err
}

// fail records the terminal error once and wakes every waiter.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	for id, ch := range c.pending {
		close(ch)
		delete(c.pending, id)
	}
	c.mu.Unlock()
}

// readLoop routes responses to their waiters until the stream ends.
func (c *Client) readLoop() {
	br := bufio.NewReader(c.nc)
	var buf []byte
	for {
		t, payload, err := ReadFrame(br, buf)
		buf = payload
		if err != nil {
			c.fail(err) // io.EOF here means the server drained and hung up
			return
		}
		if t != MsgResult {
			c.fail(fmt.Errorf("serve: unexpected %d frame from server", t))
			c.nc.Close()
			return
		}
		resp := new(Response)
		if err := ParseResponse(payload, resp); err != nil {
			c.fail(err)
			c.nc.Close()
			return
		}
		c.mu.Lock()
		ch := c.pending[resp.ID]
		delete(c.pending, resp.ID)
		c.mu.Unlock()
		if ch != nil {
			ch <- resp
		}
	}
}
