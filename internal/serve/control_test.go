package serve

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/backlog"
	"repro/internal/lattice"
	"repro/internal/obs"
	"repro/internal/sfq"
)

// snapFor builds a service-time snapshot with the given mean (ns).
func snapFor(meanNs uint64, count int) obs.Snapshot {
	h := obs.NewHistogram()
	for i := 0; i < count; i++ {
		h.Observe(meanNs)
	}
	return h.Snapshot()
}

// TestControllerShedsIffModelDiverges is the core backpressure
// property: after an Update, the controller is shedding exactly when
// the backlog model predicted divergence (ratio above Enter), admitting
// exactly when it predicted drain (ratio below Exit), and holding its
// previous state inside the hysteresis band. The predicate is checked
// against backlog.ModelForHistogram directly, not a reimplementation.
func TestControllerShedsIffModelDiverges(t *testing.T) {
	property := func(arrivalUs uint16, meanUs uint16, wasShedding bool) bool {
		c := NewController(4)
		c.shedding = wasShedding
		arrivalNs := float64(arrivalUs)*100 + 1 // 1ns .. 6.5ms
		snap := snapFor(uint64(meanUs)*100, 32)
		got := c.Update(arrivalNs, snap)

		m := backlog.ModelForHistogram(arrivalNs*c.Capacity, c.FloorNs, c.UnitNs, snap)
		switch r := m.Ratio(); {
		case r > c.Enter:
			return got == true
		case r < c.Exit:
			return got == false
		default:
			return got == wasShedding // hysteresis band: state held
		}
	}
	cfg := &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(17))}
	if err := quick.Check(property, cfg); err != nil {
		t.Error(err)
	}
}

// TestControllerHysteresisSequence walks one overload episode and pins
// the transition edges: shedding engages only past Enter, survives the
// band, and releases only below Exit.
func TestControllerHysteresisSequence(t *testing.T) {
	c := NewController(1)
	c.Enter, c.Exit = 1.0, 0.85
	// Ratio = mean/arrival with capacity 1 and unit 1.
	steps := []struct {
		arrivalNs float64
		meanNs    uint64
		want      bool
	}{
		{1000, 500, false},   // 0.5: healthy
		{1000, 990, false},   // 0.99: inside the band from below — still admitting
		{1000, 1200, true},   // 1.2: diverging — shed
		{1000, 950, true},    // 0.95: inside the band from above — still shedding
		{1000, 1500, true},   // relapse
		{1000, 840, false},   // 0.84: below Exit — admit again
		{1000, 990, false},   // band from below again
		{0, 2000, false},     // no traffic: nothing to shed
		{1, 100000, true},    // absurd overload re-engages immediately
		{100000, 100, false}, // near-idle arrival releases
	}
	for i, st := range steps {
		if got := c.Update(st.arrivalNs, snapFor(st.meanNs, 16)); got != st.want {
			t.Fatalf("step %d (arrival %v, mean %d): shedding=%v, want %v (ratio %.3f)",
				i, st.arrivalNs, st.meanNs, got, st.want, c.Ratio())
		}
	}
}

// TestServerShedsWhenControllerTrips pins the admission wiring: the
// moment the controller predicts divergence, requests are answered
// StatusShed without touching the queues; once it releases, the same
// request decodes.
func TestServerShedsWhenControllerTrips(t *testing.T) {
	pool := sfq.NewPool(sfq.Final)
	s := New(Config{
		Variant: sfq.Final, Distances: []int{3}, Pool: pool,
		Registry:  obs.NewRegistry(),
		EvalEvery: time.Hour, // the test drives Update itself
	})
	defer s.Close()
	syn := confSyndromes(3, lattice.ZErrors, 3)[2]

	if resp := s.Decode(3, lattice.ZErrors, 1, syn); resp.Status != StatusOK {
		t.Fatalf("healthy decode: %+v", resp)
	}
	// Overload signal: service time far beyond the arrival interval.
	s.ctl.Update(10, snapFor(1e9, 64))
	if !s.ctl.Shedding() {
		t.Fatal("controller did not trip on a divergent signal")
	}
	shed := s.Decode(3, lattice.ZErrors, 2, syn)
	if shed.Status != StatusShed {
		t.Fatalf("decode under divergence: %+v, want shed", shed)
	}
	// Recovery: long arrivals, cheap decodes.
	s.ctl.Update(1e9, snapFor(10, 64))
	if s.ctl.Shedding() {
		t.Fatal("controller did not release after recovery")
	}
	if resp := s.Decode(3, lattice.ZErrors, 3, syn); resp.Status != StatusOK {
		t.Fatalf("decode after recovery: %+v", resp)
	}
}

// TestQueueFullSheds pins the hard backpressure bound underneath the
// model: with the single worker wedged mid-delivery and the queue
// filled, the next admission sheds instead of blocking or growing the
// queue; once the worker drains, admissions succeed again.
func TestQueueFullSheds(t *testing.T) {
	pool := sfq.NewPool(sfq.Final)
	s := New(Config{
		Variant: sfq.Final, Distances: []int{3}, Pool: pool,
		Registry:   obs.NewRegistry(),
		Lanes:      1, // one task per batch, so one blocked deliver wedges the worker
		QueueDepth: 2,
		EvalEvery:  time.Hour,
	})
	defer s.Close()
	syn := confSyndromes(3, lattice.ZErrors, 3)[2]

	picked := make(chan struct{})
	release := make(chan struct{})
	s.submit(3, lattice.ZErrors, 1, syn, func(*Response) {
		close(picked)
		<-release
	})
	<-picked // the worker is now wedged in deliver, its queue slot free

	done := make(chan *Response, 16)
	for i := 0; i < 2; i++ { // fill the queue behind the wedged worker
		s.submit(3, lattice.ZErrors, uint64(10+i), syn, func(r *Response) { done <- r })
	}
	if resp := s.Decode(3, lattice.ZErrors, 99, syn); resp.Status != StatusShed {
		t.Fatalf("admission to a full queue: %+v, want shed", resp)
	}

	close(release)
	for i := 0; i < 2; i++ {
		if r := <-done; r.Status != StatusOK {
			t.Fatalf("queued request %d: %+v", i, r)
		}
	}
	if resp := s.Decode(3, lattice.ZErrors, 100, syn); resp.Status != StatusOK {
		t.Fatalf("post-drain decode: %+v", resp)
	}
}

// TestArrivalMeter pins the estimator the controller feeds on: the EWMA
// tracks a steady cadence, and a traffic stop overrides it with the
// observed gap so shedding can release on silence.
func TestArrivalMeter(t *testing.T) {
	var m arrivalMeter
	base := time.Unix(0, 0)
	if got := m.intervalNs(base); got != 0 {
		t.Fatalf("empty meter interval %v, want 0", got)
	}
	for i := 0; i < 200; i++ {
		m.tick(base.Add(time.Duration(i) * time.Millisecond))
	}
	now := base.Add(200 * time.Millisecond)
	if got := m.intervalNs(now); got < 0.9e6 || got > 1.5e6 {
		t.Fatalf("steady 1ms cadence estimated at %v ns", got)
	}
	// Silence: the elapsed gap dominates the stale EWMA.
	later := base.Add(10 * time.Second)
	if got := m.intervalNs(later); got < 9e9 {
		t.Fatalf("after 10s of silence the interval reads %v ns", got)
	}
}
