package serve

import (
	"sync"
	"time"

	"repro/internal/backlog"
	"repro/internal/obs"
)

// Controller is the backlog model acting as an SLO admission
// controller. §III's argument is that a decoder slower than the
// syndrome-generation rate diverges — backlog, and therefore latency,
// grows without bound. The same recurrence governs this service: treat
// the measured request arrival interval as the syndrome cycle tGen and
// the measured per-request service-time distribution as the decode
// distribution, and backlog.ModelForHistogram yields the processing
// ratio f = DecodeNs / (arrival interval × capacity). f > 1 is
// exactly the divergence condition of Fig. 6, so the controller sheds
// load while the model predicts divergence and admits it again once
// the model says the queue drains.
//
// Shedding is hysteretic: it engages when the ratio rises above Enter
// and releases only when it falls below Exit, so the controller does
// not flap at the stability point where the ratio hovers around 1.
// The backpressure property suite pins both bounds.
//
// A Controller is safe for concurrent use; Update is typically called
// from one evaluation loop while request paths read Shedding.
type Controller struct {
	// Capacity is how many decodes the service advances concurrently
	// (decode workers × batch lanes): the model's single-decoder
	// recurrence sees an effective syndrome cycle of arrival × Capacity.
	Capacity float64
	// FloorNs is the pessimistic service-time floor fed to
	// backlog.ModelForHistogram (its floorNs parameter).
	FloorNs float64
	// UnitNs converts one histogram unit to nanoseconds (1 for the
	// wall-clock serve_decode_ns histogram).
	UnitNs float64
	// Enter and Exit are the hysteresis bounds on the processing ratio:
	// shedding starts when ratio > Enter and stops when ratio < Exit.
	// Enter must be ≥ Exit.
	Enter, Exit float64

	mu       sync.Mutex
	shedding bool
	ratio    float64
}

// NewController returns a controller at the default hysteresis band
// (Enter 1.0 — the paper's divergence threshold — Exit 0.85) for a
// service of the given concurrent decode capacity.
func NewController(capacity float64) *Controller {
	return &Controller{
		Capacity: capacity,
		FloorNs:  1,
		UnitNs:   1,
		Enter:    1.0,
		Exit:     0.85,
	}
}

// Update re-evaluates the controller: arrivalNs is the measured mean
// interval between admitted requests (0 or negative means "no traffic",
// which reads as an infinitely slow arrival and always releases
// shedding), snap is the current service-time histogram. It returns the
// new shedding state.
func (c *Controller) Update(arrivalNs float64, snap obs.Snapshot) bool {
	r := c.PredictRatio(arrivalNs, snap)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ratio = r
	if c.shedding {
		if r < c.Exit {
			c.shedding = false
		}
	} else if r > c.Enter {
		c.shedding = true
	}
	return c.shedding
}

// PredictRatio returns the backlog model's processing ratio at the
// given arrival interval and latency distribution, without touching the
// controller's state: f > 1 is the model's divergence prediction. This
// is the exact predicate Update applies its hysteresis to.
func (c *Controller) PredictRatio(arrivalNs float64, snap obs.Snapshot) float64 {
	if arrivalNs <= 0 {
		return 0
	}
	m := backlog.ModelForHistogram(arrivalNs*c.Capacity, c.FloorNs, c.UnitNs, snap)
	return m.Ratio()
}

// ShedClass is the cost-weighted admission predicate: given a request
// class's normalized service-cost weight w ∈ (0, 1] (its measured mean
// decode time divided by the most expensive class's), the smallest
// weight minW among the served classes, the controller's current
// backlog ratio and its Enter bound, it reports whether this class
// sheds while the controller is in its shedding state.
//
// The cut rises linearly with overload severity: at ratio == Enter only
// the cheapest class sheds (severity 0); by ratio == 2·Enter every
// class sheds (severity 1). Because cheap traffic is shed first, the
// expensive decodes the service exists for — the high-distance requests
// whose corrections are hardest to recompute elsewhere — keep flowing
// until the model says nothing fits (ROADMAP's per-distance weighted
// admission). The predicate is monotone in w by construction: if a
// class sheds, every class of equal or lower weight sheds too, which
// the shed-ordering property test pins.
//
// ShedClass is a pure function of its arguments; the server evaluates
// it only while Controller.Shedding() holds, so with weighting disabled
// (REPRO_SERVE_WEIGHTED=0) substituting a constant true restores the
// uniform pre-weighting behavior exactly.
func ShedClass(w, minW, ratio, enter float64) bool {
	if w <= minW {
		return true // the cheapest class always sheds first
	}
	if enter <= 0 {
		return true
	}
	severity := (ratio - enter) / enter
	return w <= severity
}

// Shedding reports whether the controller is currently rejecting load.
func (c *Controller) Shedding() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.shedding
}

// Ratio returns the processing ratio of the last Update.
func (c *Controller) Ratio() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ratio
}

// arrivalMeter estimates the mean inter-arrival interval of admitted
// requests as an EWMA (α = 1/16), with a staleness escape: when no
// request has arrived for longer than the EWMA says one should, the
// elapsed gap overrides the estimate, so a traffic stop releases
// shedding instead of freezing the last overloaded estimate forever.
type arrivalMeter struct {
	mu   sync.Mutex
	last time.Time
	ewma float64 // ns between arrivals
}

// tick records one arrival at now.
func (m *arrivalMeter) tick(now time.Time) {
	m.mu.Lock()
	if !m.last.IsZero() {
		dt := float64(now.Sub(m.last))
		if dt >= 0 {
			if m.ewma == 0 {
				m.ewma = dt
			} else {
				m.ewma += (dt - m.ewma) / 16
			}
		}
	}
	m.last = now
	m.mu.Unlock()
}

// intervalNs returns the current arrival-interval estimate as seen at
// now, or 0 when no interval has been observed yet.
func (m *arrivalMeter) intervalNs(now time.Time) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.last.IsZero() {
		return 0
	}
	if gap := float64(now.Sub(m.last)); gap > m.ewma {
		return gap
	}
	return m.ewma
}
