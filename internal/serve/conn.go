package serve

import (
	"bufio"
	"encoding/binary"
	"net"
	"sync"
	"time"

	"repro/internal/obs/trace"
)

// srvConn is one framed-TCP connection: a reader goroutine that parses
// and submits requests, and a writer goroutine that drains the
// connection's response queue. The two meet in a small amount of
// condition-variable state built around one invariant — every request
// the reader admits (inflight++) produces exactly one response that the
// writer consumes (inflight--), whether it came from a decode worker,
// admission control, or a protocol error. The writer therefore knows
// the connection is fully drained exactly when the reader has stopped,
// inflight is zero, and the queue is empty; responses are never lost on
// disconnect and never duplicated.
type srvConn struct {
	s  *Server
	nc net.Conn

	// deliverFn is the deliver method value, bound once at connection
	// setup: passing c.deliver inline to submit would allocate a fresh
	// method-value closure per request, the last per-request allocation
	// on the steady-state path.
	deliverFn func(*Response)

	mu   sync.Mutex
	cond *sync.Cond
	// Fixed ring of delivered-not-yet-written responses, sized by the
	// in-flight window: out length ≤ inflight ≤ Window, since every
	// deliver is preceded by exactly one inflight++. The old []*Response
	// FIFO shifted its backing array on every pop (out = out[1:]) and
	// re-grew it on every burst; the ring does neither.
	ring     []*Response
	head     int  // index of the oldest queued response
	n        int  // queued responses
	inflight int  // admitted, not yet written
	readDone bool // reader has exited
	canceled bool // server is draining: stop admitting
	dead     bool // a write failed: drain without writing
}

// newSrvConn builds the connection state without starting its loops.
// The steady-state allocation test drives the pieces directly.
func newSrvConn(s *Server, nc net.Conn) *srvConn {
	c := &srvConn{s: s, nc: nc, ring: make([]*Response, s.cfg.Window)}
	c.cond = sync.NewCond(&c.mu)
	c.deliverFn = c.deliver
	return c
}

// ServeConn runs the framed protocol on nc until the peer disconnects
// or the server drains, then closes nc. It blocks for the connection's
// lifetime; Serve calls it from a per-connection goroutine, and tests
// drive it directly over net.Pipe.
func (s *Server) ServeConn(nc net.Conn) {
	c := newSrvConn(s, nc)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		nc.Close()
		return
	}
	s.conns[c] = struct{}{}
	s.mu.Unlock()
	s.connGauge.Add(1)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.writeLoop()
	}()
	c.readLoop()
	wg.Wait()
	nc.Close()

	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	s.connGauge.Add(-1)
}

// cancelRead unblocks the connection's reader — both a blocked ReadFrame
// (via the read deadline) and a reader parked at the in-flight window —
// so Close can drain the connection without waiting for the peer.
func (c *srvConn) cancelRead() {
	c.nc.SetReadDeadline(time.Now())
	c.mu.Lock()
	c.canceled = true
	c.cond.Broadcast()
	c.mu.Unlock()
}

// deliver hands one response to the writer. It never blocks: responses
// queue on the connection's ring and the in-flight window bounds the
// ring, so a slow reader on the other end cannot stall a decode worker.
func (c *srvConn) deliver(r *Response) {
	c.mu.Lock()
	if c.n == len(c.ring) {
		// The window invariant bounds n at len(ring); growing instead of
		// dropping keeps delivery exactly-once even if that invariant is
		// ever violated by a future caller.
		grown := make([]*Response, 2*len(c.ring))
		for i := 0; i < c.n; i++ {
			grown[i] = c.ring[(c.head+i)%len(c.ring)]
		}
		c.ring, c.head = grown, 0
	}
	c.ring[(c.head+c.n)%len(c.ring)] = r
	c.n++
	c.cond.Broadcast()
	c.mu.Unlock()
	c.s.outDepth.Add(1)
}

// readLoop parses frames and submits requests until the peer closes,
// a protocol error occurs, or the server drains. The in-flight window
// is enforced here: at Window admitted-but-unanswered requests the
// reader stops, which stops consuming the socket, which backpressures
// the client through TCP itself.
func (c *srvConn) readLoop() {
	br := bufio.NewReader(c.nc)
	var buf []byte
	var req Request
	for {
		t, payload, err := ReadFrame(br, buf)
		buf = payload
		if err != nil || t != MsgDecode {
			break
		}
		perr := ParseRequest(payload, &req)
		if perr != nil && len(payload) < 8 {
			break // not even an ID to answer to
		}

		c.mu.Lock()
		for c.inflight >= c.s.cfg.Window && !c.canceled && !c.dead {
			c.cond.Wait()
		}
		if c.canceled || c.dead {
			c.mu.Unlock()
			break
		}
		c.inflight++
		c.mu.Unlock()

		if perr != nil {
			// The frame was well-formed but the request was not: answer
			// the ID with the parse error, then stop trusting the stream.
			c.s.errTotal.Inc()
			c.deliver(&Response{
				ID:     binary.LittleEndian.Uint64(payload),
				Status: StatusError,
				Msg:    perr.Error(),
			})
			break
		}
		c.s.submit(req.D, req.EType, req.ID, req.Syndrome, c.deliverFn)
	}
	c.mu.Lock()
	c.readDone = true
	c.cond.Broadcast()
	c.mu.Unlock()
}

// writeLoop writes responses in delivery order until the connection is
// drained: reader stopped, no request in flight, ring empty. After a
// write failure it keeps consuming (discarding) responses so the
// drained condition is still reached and no worker blocks.
//
// Flushing is batched: besides the queue-empty flush, the writer also
// flushes after FlushEvery unflushed responses or once the oldest
// unflushed response has waited FlushInterval. Under the old
// only-on-empty policy one slow escalated response could pin the ring
// non-empty while dozens of completed responses aged in the bufio
// buffer — the 19 ms resp_write outlier in the PR 9 traces.
func (c *srvConn) writeLoop() {
	bw := bufio.NewWriter(c.nc)
	var buf []byte
	flushEvery := c.s.cfg.FlushEvery
	flushNs := int64(c.s.cfg.FlushInterval)
	unflushed := 0
	var oldestNs int64 // wall clock of the first unflushed response
	for {
		c.mu.Lock()
		for c.n == 0 && !(c.readDone && c.inflight == 0) {
			c.cond.Wait()
		}
		if c.n == 0 {
			c.mu.Unlock()
			break
		}
		resp := c.ring[c.head]
		c.ring[c.head] = nil
		c.head = (c.head + 1) % len(c.ring)
		c.n--
		last := c.n == 0
		dead := c.dead
		c.mu.Unlock()
		c.s.outDepth.Add(-1)

		if !dead {
			b, err := AppendResponse(buf[:0], resp)
			if err == nil {
				buf = b
				_, err = bw.Write(buf)
			}
			if err == nil {
				now := time.Now().UnixNano()
				if unflushed == 0 {
					oldestNs = now
				}
				unflushed++
				if last || unflushed >= flushEvery || now-oldestNs >= flushNs {
					err = bw.Flush()
					unflushed = 0
				}
			}
			if err != nil {
				c.mu.Lock()
				c.dead = true
				c.cond.Broadcast()
				c.mu.Unlock()
			}
		}

		if resp.span != nil {
			// Written — or discarded on a dead connection; either way the
			// response has left the server, which is the final stage.
			resp.span.Stamp(trace.StageRespWrite)
			resp.span.Finish()
		}
		// Encoded onto the wire (or discarded): the response object is
		// free — recycle it so the steady-state path allocates nothing.
		c.s.putResp(resp)

		c.mu.Lock()
		c.inflight--
		c.cond.Broadcast()
		c.mu.Unlock()
	}
	bw.Flush()
}
