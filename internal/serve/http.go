package serve

import (
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/lattice"
)

// httpRequest is the JSON body of POST /decode. Hot lists the indices
// of hot syndrome checks (the sparse form of the framed protocol's bit
// array — JSON clients are debugging tools, not the hot path).
type httpRequest struct {
	ID    uint64 `json:"id"`
	D     int    `json:"d"`
	EType string `json:"etype"` // "z" (default) or "x"
	Hot   []int  `json:"hot"`
}

// httpResponse is the JSON body of a /decode reply.
type httpResponse struct {
	ID        uint64  `json:"id"`
	Status    string  `json:"status"`
	Escalated bool    `json:"escalated,omitempty"`
	Cycles    uint32  `json:"cycles,omitempty"`
	Qubits    []int32 `json:"qubits"`
	Error     string  `json:"error,omitempty"`
}

// Handler returns the server's HTTP surface:
//
//	POST /decode    one synchronous decode (JSON in, JSON out)
//	GET  /healthz   controller state: shedding flag, backlog ratio
//	GET  /debug/traces  the flight recorder: sampled + outlier traces,
//	                shed/drop decisions, stage histograms, exemplars
//	                (?format=text for a terminal table)
//	everything else the registry's telemetry handler — /metrics,
//	                /metrics.json, /manifest.json, and /debug/pprof/*
//	                when withPprof is true
func (s *Server) Handler(withPprof bool) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/decode", s.handleDecode)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/debug/traces", s.handleTraces)
	mux.Handle("/", s.reg.Handler(withPprof))
	return mux
}

func (s *Server) handleDecode(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var hr httpRequest
	if err := json.NewDecoder(r.Body).Decode(&hr); err != nil {
		http.Error(w, fmt.Sprintf("bad request body: %v", err), http.StatusBadRequest)
		return
	}
	var e lattice.ErrorType
	switch hr.EType {
	case "", "z":
		e = lattice.ZErrors
	case "x":
		e = lattice.XErrors
	default:
		http.Error(w, fmt.Sprintf("etype %q is not \"z\" or \"x\"", hr.EType), http.StatusBadRequest)
		return
	}
	s.mu.RLock()
	_, supported := s.queues[queueKey{hr.D, e}]
	s.mu.RUnlock()
	if !supported {
		http.Error(w, fmt.Sprintf("unsupported distance %d (serving %v)", hr.D, s.cfg.Distances),
			http.StatusBadRequest)
		return
	}
	syn := make([]bool, s.pool.Graph(hr.D, e).NumChecks())
	for _, i := range hr.Hot {
		if i < 0 || i >= len(syn) {
			http.Error(w, fmt.Sprintf("hot check %d out of range [0, %d)", i, len(syn)),
				http.StatusBadRequest)
			return
		}
		syn[i] = true
	}

	resp := s.Decode(hr.D, e, hr.ID, syn)
	out := httpResponse{
		ID:        resp.ID,
		Status:    resp.Status.String(),
		Escalated: resp.Escalated,
		Cycles:    resp.Cycles,
		Qubits:    resp.Qubits,
		Error:     resp.Msg,
	}
	if out.Qubits == nil {
		out.Qubits = []int32{}
	}
	code := http.StatusOK
	switch resp.Status {
	case StatusShed:
		code = http.StatusTooManyRequests
		w.Header().Set("Retry-After", "1")
	case StatusError:
		code = http.StatusBadRequest
		if resp.Msg == "server draining" {
			code = http.StatusServiceUnavailable
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(out)
	// out.Qubits aliased resp.Qubits until the encode above; only now is
	// the pooled response free to recycle.
	s.putResp(resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{
		"shedding": s.ctl.Shedding(),
		"ratio":    s.ctl.Ratio(),
		"conns":    s.connGauge.Load(),
	})
}
