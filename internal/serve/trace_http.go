package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"

	"repro/internal/lattice"
	"repro/internal/obs"
	"repro/internal/obs/trace"
)

// /debug/traces: the flight recorder's read side. The JSON document is
// what cmd/loadgen -trace-out scrapes; ?format=text renders the same
// traces as a terminal table for eyeball debugging. Each trace view
// carries both stage offsets (from accept) and the consecutive-stage
// durations, which telescope to the wall time — the sum check the
// acceptance harness runs is exact by construction, not a property of
// lucky clock reads.

// stageDurations maps the stamp pairs to the named duration rows of a
// trace view. Escalate rows happen after the response (level 2 is
// asynchronous), so they are reported but excluded from wall-time
// telescoping, which runs accept → resp_write.
var stageDurations = []struct {
	name     string
	from, to trace.Stage
	wall     bool // part of the accept→resp_write telescoping sum
}{
	{"admit_ns", trace.StageAccept, trace.StageAdmit, true},
	{"enqueue_ns", trace.StageAdmit, trace.StageEnqueue, true},
	{"queue_wait_ns", trace.StageEnqueue, trace.StageCoalesce, true},
	{"coalesce_ns", trace.StageCoalesce, trace.StageDecodeStart, true},
	{"decode_ns", trace.StageDecodeStart, trace.StageDecodeEnd, true},
	{"resp_write_ns", trace.StageDecodeEnd, trace.StageRespWrite, true},
	{"escalate_wait_ns", trace.StageDecodeEnd, trace.StageEscalateStart, false},
	{"escalate_ns", trace.StageEscalateStart, trace.StageEscalateEnd, false},
}

// traceView is one request record as served by /debug/traces.
type traceView struct {
	Seq    uint64   `json:"seq"`
	ID     uint64   `json:"id"`
	D      int32    `json:"d"`
	EType  string   `json:"etype"`
	Kind   string   `json:"kind"`
	Flags  []string `json:"flags,omitempty"`
	WallNs int64    `json:"wall_ns"`
	// Offsets: stage name → nanoseconds after accept, stamped stages only.
	Offsets map[string]int64 `json:"offset_ns"`
	// Stages: named consecutive-stage durations; the wall-time rows
	// (everything but the escalate pair) sum exactly to WallNs.
	Stages map[string]int64 `json:"stage_ns"`
}

// decisionView is one shed / escalation-drop record with the admission
// controller inputs that caused it.
type decisionView struct {
	Seq       uint64  `json:"seq"`
	ID        uint64  `json:"id"`
	D         int32   `json:"d"`
	EType     string  `json:"etype"`
	Kind      string  `json:"kind"`
	Reason    string  `json:"reason"`
	Ratio     float64 `json:"ratio"`
	ArrivalNs float64 `json:"arrival_ns"`
	QueueLen  int32   `json:"queue_len"`
	// Weight is the shed class's service-cost weight at decision time;
	// SojournNs is the measured queue wait of a sojourn drop (0 for
	// admission-time sheds, which never entered the queue).
	Weight    float64 `json:"weight,omitempty"`
	SojournNs int64   `json:"sojourn_ns,omitempty"`
}

// exemplarView is one serve_decode_ns bucket exemplar plus whether its
// trace is still resolvable in the ring.
type exemplarView struct {
	obs.Exemplar
	Resolved bool `json:"resolved"`
}

// traceDoc is the full /debug/traces JSON body.
type traceDoc struct {
	SampleN      int                    `json:"sample_n"`
	Counters     trace.Counters         `json:"counters"`
	StageSummary map[string]obs.Summary `json:"stage_summary"`
	Exemplars    []exemplarView         `json:"exemplars,omitempty"`
	Traces       []traceView            `json:"traces"`
	Decisions    []decisionView         `json:"decisions"`
}

func etypeName(e uint8) string {
	return lattice.ErrorType(e).String()
}

func recordView(rec *trace.Record) traceView {
	v := traceView{
		Seq: rec.Seq, ID: rec.ID, D: rec.D, EType: etypeName(rec.EType),
		Kind:    rec.Kind.String(),
		Flags:   trace.FlagNames(rec.Flags),
		WallNs:  rec.WallNs,
		Offsets: map[string]int64{},
		Stages:  map[string]int64{},
	}
	acc := rec.TS[trace.StageAccept]
	for st := trace.StageAccept; st < trace.NumStages; st++ {
		if ts := rec.TS[st]; ts != 0 {
			v.Offsets[st.String()] = ts - acc
		}
	}
	for _, sd := range stageDurations {
		a, b := rec.TS[sd.from], rec.TS[sd.to]
		if a != 0 && b != 0 && b >= a {
			v.Stages[sd.name] = b - a
		}
	}
	return v
}

func decisionViewOf(rec *trace.Record) decisionView {
	return decisionView{
		Seq: rec.Seq, ID: rec.ID, D: rec.D, EType: etypeName(rec.EType),
		Kind: rec.Kind.String(), Reason: rec.Reason.String(),
		Ratio: rec.Ratio, ArrivalNs: rec.ArrivalNs, QueueLen: rec.QueueLen,
		Weight: rec.Weight, SojournNs: rec.SojournNs,
	}
}

// stageHists returns the per-stage histograms backing the summary
// block, keyed by metric name. Nil entries (tracing or escalation off)
// are skipped.
func (s *Server) stageHists() map[string]*obs.Histogram {
	return map[string]*obs.Histogram{
		"serve_decode_ns":        s.decodeNs,
		"serve_queue_wait_ns":    s.queueWaitNs,
		"serve_coalesce_ns":      s.coalesceNs,
		"serve_escalate_wait_ns": s.escWaitNs,
		"serve_sched_wait_ns":    s.schedWaitNs,
		"serve_escalate_ns":      s.escalateNs,
	}
}

func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if s.tracer == nil {
		http.Error(w, "tracing disabled (TraceSample < 0 or REPRO_TRACE_SAMPLE=off)",
			http.StatusNotFound)
		return
	}
	snap := s.tracer.Snapshot()
	doc := traceDoc{
		SampleN:      snap.SampleN,
		Counters:     snap.Counters,
		StageSummary: map[string]obs.Summary{},
		Traces:       make([]traceView, 0, len(snap.Traces)),
		Decisions:    make([]decisionView, 0, len(snap.Decisions)),
	}
	for name, h := range s.stageHists() {
		if h == nil {
			continue
		}
		if hs := h.Snapshot(); hs.Count > 0 {
			doc.StageSummary[name] = hs.Summary()
		}
	}
	for _, ex := range s.decodeNs.Exemplars() {
		doc.Exemplars = append(doc.Exemplars,
			exemplarView{Exemplar: ex, Resolved: snap.Resolve(ex.Seq) != nil})
	}
	for i := range snap.Traces {
		doc.Traces = append(doc.Traces, recordView(&snap.Traces[i]))
	}
	for i := range snap.Decisions {
		doc.Decisions = append(doc.Decisions, decisionViewOf(&snap.Decisions[i]))
	}

	if r.URL.Query().Get("format") == "text" {
		writeTraceText(w, &doc)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(&doc)
}

// writeTraceText renders the document as a terminal table.
func writeTraceText(w http.ResponseWriter, doc *traceDoc) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "flight recorder: sample 1-in-%d  started=%d untraced=%d kept=%d outliers=%d decisions=%d\n\n",
		doc.SampleN, doc.Counters.Started, doc.Counters.Untraced,
		doc.Counters.Kept, doc.Counters.Outliers, doc.Counters.Decisions)

	names := make([]string, 0, len(doc.StageSummary))
	for name := range doc.StageSummary {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "%-24s %10s %12s %12s %12s\n", "stage histogram", "count", "p50", "p99", "max")
	for _, name := range names {
		sm := doc.StageSummary[name]
		fmt.Fprintf(w, "%-24s %10d %12d %12d %12d\n", name, sm.Count, sm.P50, sm.P99, sm.Max)
	}

	fmt.Fprintf(w, "\n%-6s %-8s %2s %2s %12s %12s %12s %12s %12s  %s\n",
		"seq", "id", "d", "e", "wall_ns", "queue_wait", "coalesce", "decode", "resp_write", "flags")
	for _, t := range doc.Traces {
		fmt.Fprintf(w, "%-6d %-8d %2d %2s %12d %12d %12d %12d %12d  %v\n",
			t.Seq, t.ID, t.D, t.EType, t.WallNs,
			t.Stages["queue_wait_ns"], t.Stages["coalesce_ns"],
			t.Stages["decode_ns"], t.Stages["resp_write_ns"], t.Flags)
	}

	if len(doc.Decisions) > 0 {
		fmt.Fprintf(w, "\n%-6s %-8s %2s %2s %-10s %-14s %10s %14s %10s %8s %12s\n",
			"seq", "id", "d", "e", "kind", "reason", "ratio", "arrival_ns", "queue_len", "weight", "sojourn_ns")
		for _, d := range doc.Decisions {
			fmt.Fprintf(w, "%-6d %-8d %2d %2s %-10s %-14s %10.3f %14.0f %10d %8.3f %12d\n",
				d.Seq, d.ID, d.D, d.EType, d.Kind, d.Reason, d.Ratio, d.ArrivalNs, d.QueueLen,
				d.Weight, d.SojournNs)
		}
	}
}
