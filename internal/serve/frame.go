// Package serve is the streaming decode service: a stdlib-only network
// front end over the SWAR batch decode machinery. Persistent TCP
// connections (and a JSON HTTP endpoint) stream syndromes in; a lane
// multiplexer coalesces concurrent in-flight requests into
// sfq.BatchMesh lanes, so the per-instruction parallelism PR 5 built
// for Monte-Carlo sweeps serves live traffic; and admission control is
// driven by backlog.ModelForHistogram over the live service-latency
// histograms — the paper's backlog model acting as a real SLO
// controller rather than an offline analysis.
//
// The wire protocol is a fixed length-prefixed binary framing, chosen
// over JSON for the hot path because one decode request at d = 9 is 145
// syndrome bits: 19 bytes of payload next to ~600 of JSON. The codec is
// strict and canonical — every parse error is explicit, hostile input
// cannot allocate more than MaxFramePayload, and a frame that parses
// re-encodes to identical bytes (FuzzFrame pins both properties).
package serve

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/lattice"
	"repro/internal/obs/trace"
)

// Frame layout (all integers little-endian):
//
//	magic   uint16  0x5146 ("FQ")
//	version uint8   1
//	type    uint8   MsgDecode | MsgResult
//	length  uint32  payload bytes (≤ MaxFramePayload)
//	payload length bytes
//
// MsgDecode payload:
//
//	id      uint64  client-chosen request tag, echoed verbatim
//	d       uint16  code distance
//	etype   uint8   0 = Z errors, 1 = X errors
//	pad     uint8   must be 0
//	nchecks uint32  syndrome bit count
//	bits    ⌈nchecks/8⌉ bytes, LSB-first; padding bits must be 0
//
// MsgResult payload:
//
//	id      uint64
//	status  uint8   StatusOK | StatusShed | StatusError
//	flags   uint8   FlagEscalated (StatusOK only); other bits must be 0
//	cycles  uint32  mesh cycles consumed (0 unless StatusOK)
//	then, for StatusOK:    nqubits uint32 + nqubits × uint32 qubit indices
//	then, for StatusError: msglen  uint32 + msglen message bytes
//	(StatusShed carries nothing further)
const (
	frameMagic   = 0x5146
	frameVersion = 1
	headerLen    = 8

	// MaxFramePayload bounds one frame's payload: large enough for any
	// surface-code distance this repository simulates (d = 181 is ~8 KiB
	// of syndrome bits), small enough that a hostile length field cannot
	// balloon allocation.
	MaxFramePayload = 1 << 20
)

// MsgType tags a frame.
type MsgType uint8

// The wire message types.
const (
	MsgDecode MsgType = 1
	MsgResult MsgType = 2
)

// Status is a response's disposition.
type Status uint8

// The response statuses.
const (
	// StatusOK carries a correction.
	StatusOK Status = 0
	// StatusShed means admission control rejected the request (queue
	// full, or the backlog model predicts divergence at the current
	// arrival rate). The request was not decoded; the client may retry.
	StatusShed Status = 1
	// StatusError carries a message (malformed request, unsupported
	// distance, server draining).
	StatusError Status = 2
)

// Response flag bits (the byte after status in a MsgResult payload).
const (
	// FlagEscalated marks a StatusOK response whose mesh statistics
	// tripped the server's escalation policy: the correction returned is
	// the level-1 mesh answer, delivered at mesh latency, and the server
	// has queued (or, under pressure, dropped) an asynchronous level-2
	// re-decode. Clients treat the correction as lower-confidence.
	FlagEscalated uint8 = 1 << 0

	respFlagsKnown = FlagEscalated
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusShed:
		return "shed"
	case StatusError:
		return "error"
	}
	return fmt.Sprintf("status(%d)", uint8(s))
}

// Request is one decode request.
type Request struct {
	ID       uint64
	D        int
	EType    lattice.ErrorType
	Syndrome []bool
}

// Response is one decode response.
type Response struct {
	ID        uint64
	Status    Status
	Escalated bool    // level-2 escalation triggered (StatusOK only)
	Cycles    uint32  // mesh cycles the decode consumed (StatusOK only)
	Qubits    []int32 // correction data-qubit indices (StatusOK only)
	Msg       string  // human-readable cause (StatusError only)

	// span is the request's trace handle, riding the response to
	// whichever goroutine writes it out — that consumer stamps the
	// resp_write stage and releases the span. Never serialized.
	span *trace.Span
}

// Framing errors.
var (
	ErrBadMagic    = errors.New("serve: bad frame magic")
	ErrBadVersion  = errors.New("serve: unsupported frame version")
	ErrFrameTooBig = errors.New("serve: frame exceeds MaxFramePayload")
)

// putHeader appends a frame header.
func putHeader(dst []byte, t MsgType, payloadLen int) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, frameMagic)
	dst = append(dst, frameVersion, byte(t))
	return binary.LittleEndian.AppendUint32(dst, uint32(payloadLen))
}

// AppendRequest appends req as a complete MsgDecode frame and returns
// the extended buffer. Requests with more than MaxFramePayload of
// syndrome, or an error type outside {Z, X}, are rejected.
func AppendRequest(dst []byte, req *Request) ([]byte, error) {
	if req.EType != lattice.ZErrors && req.EType != lattice.XErrors {
		return dst, fmt.Errorf("serve: invalid error type %d", req.EType)
	}
	if req.D < 0 || req.D > 0xffff {
		return dst, fmt.Errorf("serve: distance %d out of range", req.D)
	}
	n := len(req.Syndrome)
	payload := 16 + (n+7)/8
	if payload > MaxFramePayload {
		return dst, ErrFrameTooBig
	}
	dst = putHeader(dst, MsgDecode, payload)
	dst = binary.LittleEndian.AppendUint64(dst, req.ID)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(req.D))
	dst = append(dst, byte(req.EType), 0)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(n))
	var acc byte
	for i, h := range req.Syndrome {
		if h {
			acc |= 1 << (uint(i) & 7)
		}
		if i&7 == 7 {
			dst = append(dst, acc)
			acc = 0
		}
	}
	if n&7 != 0 {
		dst = append(dst, acc)
	}
	return dst, nil
}

// ParseRequest decodes a MsgDecode payload into req, reusing
// req.Syndrome's capacity. The parse is strict: any length mismatch,
// nonzero pad, out-of-range error type, or set padding bit is an error,
// so a payload that parses re-encodes byte-identically.
func ParseRequest(payload []byte, req *Request) error {
	if len(payload) < 16 {
		return fmt.Errorf("serve: decode payload %d bytes, want >= 16", len(payload))
	}
	req.ID = binary.LittleEndian.Uint64(payload)
	req.D = int(binary.LittleEndian.Uint16(payload[8:]))
	et := payload[10]
	if et > 1 {
		return fmt.Errorf("serve: invalid error type %d", et)
	}
	req.EType = lattice.ErrorType(et)
	if payload[11] != 0 {
		return fmt.Errorf("serve: nonzero pad byte")
	}
	n := binary.LittleEndian.Uint32(payload[12:])
	nb := (int64(n) + 7) / 8
	if int64(len(payload)) != 16+nb {
		return fmt.Errorf("serve: %d syndrome bits need %d payload bytes, got %d", n, 16+nb, len(payload))
	}
	bits := payload[16:]
	if cap(req.Syndrome) < int(n) {
		req.Syndrome = make([]bool, n)
	}
	req.Syndrome = req.Syndrome[:n]
	for i := range req.Syndrome {
		req.Syndrome[i] = bits[i>>3]&(1<<(uint(i)&7)) != 0
	}
	if n&7 != 0 && len(bits) > 0 {
		if bits[len(bits)-1]>>(uint(n)&7) != 0 {
			return fmt.Errorf("serve: nonzero syndrome padding bits")
		}
	}
	return nil
}

// AppendResponse appends resp as a complete MsgResult frame and returns
// the extended buffer.
func AppendResponse(dst []byte, resp *Response) ([]byte, error) {
	payload := 14
	switch resp.Status {
	case StatusOK:
		payload += 4 + 4*len(resp.Qubits)
	case StatusShed:
	case StatusError:
		payload += 4 + len(resp.Msg)
	default:
		return dst, fmt.Errorf("serve: invalid status %d", resp.Status)
	}
	if payload > MaxFramePayload {
		return dst, ErrFrameTooBig
	}
	var flags uint8
	if resp.Escalated {
		if resp.Status != StatusOK {
			return dst, fmt.Errorf("serve: escalated flag on %v response", resp.Status)
		}
		flags = FlagEscalated
	}
	dst = putHeader(dst, MsgResult, payload)
	dst = binary.LittleEndian.AppendUint64(dst, resp.ID)
	dst = append(dst, byte(resp.Status), flags)
	dst = binary.LittleEndian.AppendUint32(dst, resp.Cycles)
	switch resp.Status {
	case StatusOK:
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(resp.Qubits)))
		for _, q := range resp.Qubits {
			dst = binary.LittleEndian.AppendUint32(dst, uint32(q))
		}
	case StatusError:
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(resp.Msg)))
		dst = append(dst, resp.Msg...)
	}
	return dst, nil
}

// ParseResponse decodes a MsgResult payload into resp, reusing
// resp.Qubits' capacity. Strict and canonical, like ParseRequest.
func ParseResponse(payload []byte, resp *Response) error {
	if len(payload) < 14 {
		return fmt.Errorf("serve: result payload %d bytes, want >= 14", len(payload))
	}
	resp.ID = binary.LittleEndian.Uint64(payload)
	resp.Status = Status(payload[8])
	flags := payload[9]
	if flags&^respFlagsKnown != 0 {
		return fmt.Errorf("serve: unknown response flags %#02x", flags)
	}
	if flags != 0 && resp.Status != StatusOK {
		return fmt.Errorf("serve: response flags %#02x on %v status", flags, resp.Status)
	}
	resp.Escalated = flags&FlagEscalated != 0
	resp.Cycles = binary.LittleEndian.Uint32(payload[10:])
	resp.Qubits = resp.Qubits[:0]
	resp.Msg = ""
	rest := payload[14:]
	switch resp.Status {
	case StatusOK:
		if len(rest) < 4 {
			return fmt.Errorf("serve: truncated qubit count")
		}
		n := binary.LittleEndian.Uint32(rest)
		if int64(len(rest)) != 4+4*int64(n) {
			return fmt.Errorf("serve: %d qubits need %d bytes, got %d", n, 4+4*int64(n), len(rest))
		}
		if cap(resp.Qubits) < int(n) {
			resp.Qubits = make([]int32, 0, n)
		}
		for i := 0; i < int(n); i++ {
			resp.Qubits = append(resp.Qubits, int32(binary.LittleEndian.Uint32(rest[4+4*i:])))
		}
	case StatusShed:
		if len(rest) != 0 {
			return fmt.Errorf("serve: %d trailing bytes after shed response", len(rest))
		}
	case StatusError:
		if len(rest) < 4 {
			return fmt.Errorf("serve: truncated error message length")
		}
		n := binary.LittleEndian.Uint32(rest)
		if int64(len(rest)) != 4+int64(n) {
			return fmt.Errorf("serve: %d-byte message needs %d bytes, got %d", n, 4+int64(n), len(rest))
		}
		resp.Msg = string(rest[4:])
	default:
		return fmt.Errorf("serve: invalid status %d", resp.Status)
	}
	return nil
}

// ReadFrame reads one frame from br, appending its payload into buf
// (reusing capacity) and returning the message type and payload view.
// io.EOF is returned verbatim on a clean end of stream; a stream that
// ends mid-frame yields io.ErrUnexpectedEOF.
func ReadFrame(br *bufio.Reader, buf []byte) (MsgType, []byte, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(br, hdr[:1]); err != nil {
		return 0, buf[:0], err // io.EOF only possible here: clean close
	}
	if _, err := io.ReadFull(br, hdr[1:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, buf[:0], err
	}
	if binary.LittleEndian.Uint16(hdr[:]) != frameMagic {
		return 0, buf[:0], ErrBadMagic
	}
	if hdr[2] != frameVersion {
		return 0, buf[:0], ErrBadVersion
	}
	t := MsgType(hdr[3])
	if t != MsgDecode && t != MsgResult {
		return 0, buf[:0], fmt.Errorf("serve: unknown frame type %d", hdr[3])
	}
	n := binary.LittleEndian.Uint32(hdr[4:])
	if n > MaxFramePayload {
		return 0, buf[:0], ErrFrameTooBig
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(br, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, buf[:0], err
	}
	return t, buf, nil
}
