package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/lattice"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/sfq"
)

// TestTraceNoTraceBitIdentity is the determinism guard for the flight
// recorder: tracing observes the pipeline, it must never steer it. The
// same workload through a trace-everything server and a tracing-off
// server yields bit-identical corrections, cycle counts and escalation
// verdicts.
func TestTraceNoTraceBitIdentity(t *testing.T) {
	syns := confSyndromes(5, lattice.ZErrors, confTrials(64, 16))
	run := func(traceSample int) []*Response {
		pool := sfq.NewPool(sfq.Final)
		s := New(Config{
			Variant: sfq.Final, Distances: []int{5}, Pool: pool,
			Registry: obs.NewRegistry(), Escalate: true,
			TraceSample: traceSample,
		})
		defer s.Close()
		out := make([]*Response, len(syns))
		for i, syn := range syns {
			out[i] = s.Decode(5, lattice.ZErrors, uint64(i), syn)
		}
		return out
	}
	traced, plain := run(1), run(-1)
	for i := range traced {
		a, b := traced[i], plain[i]
		if a.Status != b.Status || a.Cycles != b.Cycles || a.Escalated != b.Escalated ||
			len(a.Qubits) != len(b.Qubits) {
			t.Fatalf("request %d diverges under tracing: %+v vs %+v", i, a, b)
		}
		for j := range a.Qubits {
			if a.Qubits[j] != b.Qubits[j] {
				t.Fatalf("request %d qubit %d: %d vs %d", i, j, a.Qubits[j], b.Qubits[j])
			}
		}
	}
}

// TestDebugTracesEndpoint pins the /debug/traces read side: after
// traffic on a trace-everything server, the JSON document holds
// committed traces whose wall-time stage durations telescope exactly to
// the recorded wall time, stage histograms, and working exemplar links;
// the text format renders; a tracing-off server 404s.
func TestDebugTracesEndpoint(t *testing.T) {
	pool := sfq.NewPool(sfq.Final)
	s := New(Config{
		Variant: sfq.Final, Distances: []int{5}, Pool: pool,
		Registry: obs.NewRegistry(), TraceSample: 1,
	})
	defer s.Close()
	syns := confSyndromes(5, lattice.ZErrors, 32)
	for i, syn := range syns {
		if resp := s.Decode(5, lattice.ZErrors, uint64(i), syn); resp.Status != StatusOK {
			t.Fatalf("decode %d: %+v", i, resp)
		}
	}

	ts := httptest.NewServer(s.Handler(false))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/traces: %d", resp.StatusCode)
	}
	var doc struct {
		SampleN  int `json:"sample_n"`
		Counters struct {
			Started uint64 `json:"started"`
			Kept    uint64 `json:"kept"`
		} `json:"counters"`
		StageSummary map[string]obs.Summary `json:"stage_summary"`
		Exemplars    []struct {
			Seq      uint64 `json:"trace_seq"`
			Resolved bool   `json:"resolved"`
		} `json:"exemplars"`
		Traces []struct {
			Seq    uint64           `json:"seq"`
			Kind   string           `json:"kind"`
			Flags  []string         `json:"flags"`
			WallNs int64            `json:"wall_ns"`
			Stages map[string]int64 `json:"stage_ns"`
		} `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.SampleN != 1 || doc.Counters.Started != 32 || doc.Counters.Kept == 0 {
		t.Fatalf("document header: sample=%d started=%d kept=%d",
			doc.SampleN, doc.Counters.Started, doc.Counters.Kept)
	}
	if len(doc.Traces) == 0 {
		t.Fatal("no traces committed")
	}
	wallStages := []string{"admit_ns", "enqueue_ns", "queue_wait_ns", "coalesce_ns", "decode_ns", "resp_write_ns"}
	outliers := 0
	for _, tr := range doc.Traces {
		if tr.Kind != "request" {
			continue
		}
		sum := int64(0)
		for _, st := range wallStages {
			sum += tr.Stages[st]
		}
		if sum != tr.WallNs {
			t.Fatalf("trace %d: stage durations sum %d != wall %d", tr.Seq, sum, tr.WallNs)
		}
		for _, f := range tr.Flags {
			if f == "outlier" {
				outliers++
			}
		}
	}
	if outliers == 0 {
		t.Fatal("no outlier-flagged trace: the running maximum must always be kept")
	}
	for _, name := range []string{"serve_decode_ns", "serve_queue_wait_ns", "serve_coalesce_ns"} {
		if doc.StageSummary[name].Count == 0 {
			t.Errorf("stage summary %s is empty", name)
		}
	}
	if len(doc.Exemplars) == 0 {
		t.Fatal("no exemplars on serve_decode_ns")
	}
	resolved := false
	for _, ex := range doc.Exemplars {
		if ex.Seq == 0 {
			t.Fatal("exemplar with seq 0 (reserved for untraced)")
		}
		resolved = resolved || ex.Resolved
	}
	if !resolved {
		t.Error("no exemplar resolves to a live trace at SampleN 1")
	}

	txt, err := http.Get(ts.URL + "/debug/traces?format=text")
	if err != nil {
		t.Fatal(err)
	}
	defer txt.Body.Close()
	var sb strings.Builder
	if _, err := fmt.Fprint(&sb, txt.Body); err == nil && txt.StatusCode != http.StatusOK {
		t.Fatalf("text format: %d", txt.StatusCode)
	}

	// Tracing off: the endpoint 404s instead of serving an empty doc.
	off := New(Config{
		Variant: sfq.Final, Distances: []int{3}, Pool: pool,
		Registry: obs.NewRegistry(), TraceSample: -1,
	})
	defer off.Close()
	offTS := httptest.NewServer(off.Handler(false))
	defer offTS.Close()
	r404, err := http.Get(offTS.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	r404.Body.Close()
	if r404.StatusCode != http.StatusNotFound {
		t.Fatalf("tracing-off /debug/traces: %d, want 404", r404.StatusCode)
	}
}

// TestShedDecisionCapture pins the always-on decision ring end to end:
// controller sheds and queue-full sheds both commit records carrying
// the admission-controller inputs.
func TestShedDecisionCapture(t *testing.T) {
	pool := sfq.NewPool(sfq.Final)
	s := New(Config{
		Variant: sfq.Final, Distances: []int{3}, Pool: pool,
		Registry: obs.NewRegistry(), TraceSample: 1,
		EvalEvery: time.Hour, // the test drives the controller itself
	})
	defer s.Close()
	syn := confSyndromes(3, lattice.ZErrors, 3)[2]

	// Two healthy decodes tick the arrival meter so the captured
	// decision has a live arrival estimate.
	for i := 0; i < 2; i++ {
		if resp := s.Decode(3, lattice.ZErrors, uint64(i), syn); resp.Status != StatusOK {
			t.Fatalf("healthy decode: %+v", resp)
		}
	}
	s.ctl.Update(10, snapFor(1e9, 64)) // divergent signal: shed mode
	if resp := s.Decode(3, lattice.ZErrors, 99, syn); resp.Status != StatusShed {
		t.Fatalf("decode under divergence: %+v, want shed", resp)
	}

	snap := s.Tracer().Snapshot()
	if len(snap.Decisions) == 0 {
		t.Fatal("no decision record for a controller shed")
	}
	dec := snap.Decisions[0]
	if dec.Kind != trace.KindShed || dec.Reason != trace.ReasonController || dec.ID != 99 {
		t.Fatalf("decision: kind %v reason %v id %d", dec.Kind, dec.Reason, dec.ID)
	}
	if dec.Ratio <= 0 || dec.ArrivalNs <= 0 {
		t.Fatalf("decision lost its controller inputs: ratio %v arrival %v", dec.Ratio, dec.ArrivalNs)
	}
}

// TestTraceScrapeHammer races the flight recorder's read side against
// live traffic: concurrent decodes (with escalation on, so level-2
// references are in play) while /debug/traces is scraped continuously.
// Run under -race this is the data-race proof for the whole span
// lifecycle; race-off it still checks the scrape never breaks.
func TestTraceScrapeHammer(t *testing.T) {
	pool := sfq.NewPool(sfq.Final)
	s := New(Config{
		Variant: sfq.Final, Distances: []int{3, 5}, Pool: pool,
		Registry: obs.NewRegistry(), TraceSample: 2,
		Escalate: true, EscQueueDepth: 4, TraceDepth: 64,
	})
	defer s.Close()
	ts := httptest.NewServer(s.Handler(false))
	defer ts.Close()

	const clients = 8
	trials := confTrials(64, 16)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			d := []int{3, 5}[c%2]
			syns := confSyndromes(d, lattice.ZErrors, trials)
			for i, syn := range syns {
				resp := s.Decode(d, lattice.ZErrors, uint64(c*1000+i), syn)
				if resp.Status != StatusOK && resp.Status != StatusShed {
					t.Errorf("client %d req %d: %+v", c, i, resp)
					return
				}
			}
		}(c)
	}
	stop := make(chan struct{})
	var scrapeWG sync.WaitGroup
	scrapeWG.Add(1)
	go func() {
		defer scrapeWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Get(ts.URL + "/debug/traces")
			if err != nil {
				t.Errorf("scrape: %v", err)
				return
			}
			var doc json.RawMessage
			if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
				t.Errorf("scrape decode: %v", err)
			}
			resp.Body.Close()
		}
	}()
	wg.Wait()
	close(stop)
	scrapeWG.Wait()

	snap := s.Tracer().Snapshot()
	if snap.Counters.Started == 0 || snap.Counters.Finalized == 0 {
		t.Fatalf("no spans traced under the hammer: %+v", snap.Counters)
	}
	// Every span must have come home: finalized plus still-free equals
	// started, or references leaked.
	if snap.Counters.Finalized+snap.Counters.Untraced < snap.Counters.Started {
		t.Fatalf("span leak: %+v", snap.Counters)
	}
}
