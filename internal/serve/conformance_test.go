package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/knob"
	"repro/internal/lattice"
	"repro/internal/mc"
	"repro/internal/obs"
	"repro/internal/sfq"
)

// confTrials scales the deterministic conformance workloads down for
// -short and the ci.sh race pass.
func confTrials(full, short int) int {
	if testing.Short() || knob.Bool("REPRO_MC_SHORT") {
		return short
	}
	return full
}

// confSyndromes draws a deterministic syndrome workload for (d, e):
// random densities bracketed by the two degenerate cases (empty and
// all-hot) that exercise lane refill and drain paths.
func confSyndromes(d int, e lattice.ErrorType, n int) [][]bool {
	g := lattice.MustNew(d).MatchingGraph(e)
	id := mc.DeriveID(uint64(d), uint64(e), 0x5e4e)
	syns := make([][]bool, n)
	for t := range syns {
		rng := mc.NewRand(41, id, int64(t))
		syn := make([]bool, g.NumChecks())
		switch t {
		case 0: // empty: the zero-cycle fast path
		case 1: // all hot: maximum contention
			for i := range syn {
				syn[i] = true
			}
		default:
			p := 0.02 + 0.3*rng.Float64()
			for i := range syn {
				syn[i] = rng.Float64() < p
			}
		}
		syns[t] = syn
	}
	return syns
}

// refDecode produces the ground truth for one syndrome: the scalar
// bit-plane mesh's correction and cycle count. The SWAR batch kernel is
// pinned bit-identical to this mesh by the sfq conformance suite; here
// we pin that the service's multiplexing — coalescing, lane refill,
// response routing — preserves that identity end to end over the wire.
func refDecode(t *testing.T, m *sfq.Mesh, g *lattice.Graph, syn []bool) ([]int32, uint32) {
	t.Helper()
	c, st, err := m.DecodeWithStats(syn)
	if err != nil {
		t.Fatal(err)
	}
	qs := make([]int32, len(c.Qubits))
	for i, q := range c.Qubits {
		qs[i] = int32(q)
	}
	return qs, uint32(st.Cycles)
}

// TestWireConformance drives every design variant through the framed
// protocol at several batch widths with concurrent pipelined clients,
// and requires responses bit-identical — qubit-for-qubit, cycle count
// included — to direct scalar decodes of the same syndromes.
func TestWireConformance(t *testing.T) {
	variants := []sfq.Variant{sfq.Baseline, sfq.WithReset, sfq.WithBoundary, sfq.Final}
	lanesSweep := []int{0, 1, 2} // 0 = pooled maximum width
	trials := confTrials(32, 10)
	const clients = 3

	for _, v := range variants {
		for _, lanes := range lanesSweep {
			t.Run(fmt.Sprintf("%s/lanes=%d", v.Name(), lanes), func(t *testing.T) {
				pool := sfq.NewPool(v)
				s := New(Config{
					Variant:   v,
					Distances: []int{3, 5},
					Lanes:     lanes,
					Window:    8,
					Pool:      pool,
					Registry:  obs.NewRegistry(),
				})
				defer s.Close()

				for _, d := range []int{3, 5} {
					for _, e := range []lattice.ErrorType{lattice.ZErrors, lattice.XErrors} {
						g := pool.Graph(d, e)
						ref := sfq.NewWithKernel(g, v, sfq.KernelBitplane)
						syns := confSyndromes(d, e, trials)

						var wg sync.WaitGroup
						for cl := 0; cl < clients; cl++ {
							wg.Add(1)
							go func(cl int) {
								defer wg.Done()
								cliEnd, srvEnd := net.Pipe()
								go s.ServeConn(srvEnd)
								c := NewClient(cliEnd)
								defer c.Close()
								type sent struct {
									trial int
									ch    <-chan *Response
								}
								var pending []sent
								for trial := cl; trial < len(syns); trial += clients {
									ch, err := c.Send(&Request{D: d, EType: e, Syndrome: syns[trial]})
									if err != nil {
										t.Errorf("send trial %d: %v", trial, err)
										return
									}
									pending = append(pending, sent{trial, ch})
								}
								for _, p := range pending {
									resp, ok := <-p.ch
									if !ok {
										t.Errorf("trial %d: stream died: %v", p.trial, c.Err())
										return
									}
									if resp.Status != StatusOK {
										t.Errorf("trial %d: status %v (%s)", p.trial, resp.Status, resp.Msg)
										continue
									}
									// The reference mesh is shared across client
									// goroutines; serialize its use.
									refMu.Lock()
									wantQ, wantCycles := refDecode(t, ref, g, syns[p.trial])
									refMu.Unlock()
									if resp.Cycles != wantCycles {
										t.Errorf("d=%d e=%d trial %d: %d cycles, scalar took %d",
											d, e, p.trial, resp.Cycles, wantCycles)
									}
									if len(resp.Qubits) != len(wantQ) {
										t.Errorf("d=%d e=%d trial %d: %d qubits, want %d",
											d, e, p.trial, len(resp.Qubits), len(wantQ))
										continue
									}
									for j := range wantQ {
										if resp.Qubits[j] != wantQ[j] {
											t.Errorf("d=%d e=%d trial %d qubit %d: %d, want %d",
												d, e, p.trial, j, resp.Qubits[j], wantQ[j])
											break
										}
									}
								}
							}(cl)
						}
						wg.Wait()
					}
				}
				if err := s.Close(); err != nil {
					t.Fatal(err)
				}
				if st := pool.Stats(); st.Outstanding != 0 || st.DoublePuts != 0 || st.Foreign != 0 {
					t.Errorf("pool accounting after close: %+v", st)
				}
			})
		}
	}
}

var refMu sync.Mutex

// TestHTTPConformance pins the JSON path against the same scalar
// ground truth, plus the endpoint's rejection behavior.
func TestHTTPConformance(t *testing.T) {
	v := sfq.Final
	pool := sfq.NewPool(v)
	s := New(Config{Variant: v, Distances: []int{3}, Pool: pool, Registry: obs.NewRegistry()})
	defer s.Close()
	ts := httptest.NewServer(s.Handler(false))
	defer ts.Close()

	g := pool.Graph(3, lattice.ZErrors)
	ref := sfq.NewWithKernel(g, v, sfq.KernelBitplane)
	syns := confSyndromes(3, lattice.ZErrors, confTrials(16, 6))

	post := func(body any) (*http.Response, []byte) {
		t.Helper()
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/decode", "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out bytes.Buffer
		out.ReadFrom(resp.Body)
		return resp, out.Bytes()
	}

	for trial, syn := range syns {
		var hot []int
		for i, h := range syn {
			if h {
				hot = append(hot, i)
			}
		}
		resp, body := post(map[string]any{"id": trial, "d": 3, "etype": "z", "hot": hot})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("trial %d: HTTP %d: %s", trial, resp.StatusCode, body)
		}
		var hr httpResponse
		if err := json.Unmarshal(body, &hr); err != nil {
			t.Fatalf("trial %d: %v in %s", trial, err, body)
		}
		wantQ, wantCycles := refDecode(t, ref, g, syn)
		if hr.Status != "ok" || hr.Cycles != wantCycles || len(hr.Qubits) != len(wantQ) {
			t.Fatalf("trial %d: got %+v, want %d qubits in %d cycles", trial, hr, len(wantQ), wantCycles)
		}
		for j := range wantQ {
			if hr.Qubits[j] != wantQ[j] {
				t.Fatalf("trial %d qubit %d: %d, want %d", trial, j, hr.Qubits[j], wantQ[j])
			}
		}
	}

	for name, body := range map[string]any{
		"bad distance": map[string]any{"d": 4, "etype": "z"},
		"bad etype":    map[string]any{"d": 3, "etype": "y"},
		"bad hot":      map[string]any{"d": 3, "etype": "z", "hot": []int{9999}},
	} {
		if resp, _ := post(body); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d, want 400", name, resp.StatusCode)
		}
	}

	// The telemetry surface rides the same handler.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var mb bytes.Buffer
	mb.ReadFrom(mresp.Body)
	mresp.Body.Close()
	if !bytes.Contains(mb.Bytes(), []byte("serve_ok_total")) {
		t.Errorf("/metrics does not expose serve_ok_total:\n%s", mb.Bytes())
	}
}
