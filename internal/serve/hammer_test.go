package serve

import (
	"bufio"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/lattice"
	"repro/internal/obs"
	"repro/internal/sfq"
	"repro/internal/twolevel"
)

// TestHammerExactlyOnce is the concurrency workout ci.sh runs under
// -race: many pipelined clients, abrupt disconnectors, a slow reader,
// and a drain — and afterwards the books must balance: every request a
// healthy client sent got exactly one response, and the mesh pool shows
// zero outstanding meshes, zero double puts, zero foreign puts.
func TestHammerExactlyOnce(t *testing.T) {
	const (
		clients    = 6
		perClient  = 120
		disconnect = 2 // this many clients hang up mid-stream
	)
	n := confTrials(perClient, 40)
	v := sfq.Final
	pool := sfq.NewPool(v)
	s := New(Config{
		Variant:    v,
		Distances:  []int{3},
		Window:     8,
		QueueDepth: 16,
		Pool:       pool,
		Registry:   obs.NewRegistry(),
	})

	syns := confSyndromes(3, lattice.ZErrors, 16)
	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			cliEnd, srvEnd := net.Pipe()
			go s.ServeConn(srvEnd)
			c := NewClient(cliEnd)
			defer c.Close()

			quitter := cl < disconnect
			var chans []<-chan *Response
			for i := 0; i < n; i++ {
				if quitter && i == n/2 {
					// Abrupt disconnect with requests in flight: the
					// server must drain them internally without leaking
					// meshes or blocking a worker on the dead writer.
					c.Close()
					return
				}
				ch, err := c.Send(&Request{D: 3, EType: lattice.ZErrors, Syndrome: syns[i%len(syns)]})
				if err != nil {
					if quitter {
						return
					}
					t.Errorf("client %d send %d: %v", cl, i, err)
					return
				}
				chans = append(chans, ch)
			}
			seen := 0
			for i, ch := range chans {
				resp, ok := <-ch
				if !ok {
					t.Errorf("client %d: stream died after %d responses: %v", cl, seen, c.Err())
					return
				}
				if resp.Status != StatusOK && resp.Status != StatusShed {
					t.Errorf("client %d req %d: status %v (%s)", cl, i, resp.Status, resp.Msg)
				}
				seen++
			}
			if seen != len(chans) {
				t.Errorf("client %d: %d responses for %d requests", cl, seen, len(chans))
			}
		}(cl)
	}

	// The slow reader: a raw connection that pushes requests past the
	// in-flight window while refusing to read responses for a while. The
	// server's writer must park on the bounded out-queue — never a decode
	// worker — and every response must still arrive once reading resumes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		cliEnd, srvEnd := net.Pipe()
		go s.ServeConn(srvEnd)
		defer cliEnd.Close()
		const reqs = 12 // window is 8: the tail forces writer-side blocking
		writeDone := make(chan error, 1)
		go func() {
			var buf []byte
			for i := 0; i < reqs; i++ {
				b, err := AppendRequest(buf[:0], &Request{
					ID: uint64(i + 1), D: 3, EType: lattice.ZErrors, Syndrome: syns[i%len(syns)],
				})
				if err == nil {
					buf = b
					_, err = cliEnd.Write(b)
				}
				if err != nil {
					writeDone <- err
					return
				}
			}
			writeDone <- nil
		}()
		time.Sleep(10 * time.Millisecond) // let the window fill and the writer wedge
		br := bufio.NewReader(cliEnd)
		got := map[uint64]int{}
		var buf []byte
		var resp Response
		for len(got) < reqs {
			mt, payload, err := ReadFrame(br, buf)
			if err != nil {
				t.Errorf("slow reader: %v after %d responses", err, len(got))
				return
			}
			buf = payload
			if mt != MsgResult || ParseResponse(payload, &resp) != nil {
				t.Error("slow reader: bad frame from server")
				return
			}
			got[resp.ID]++
		}
		for id, n := range got {
			if n != 1 {
				t.Errorf("slow reader: response %d delivered %d times", id, n)
			}
		}
		if err := <-writeDone; err != nil {
			t.Errorf("slow reader writes: %v", err)
		}
	}()
	wg.Wait()

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	st := pool.Stats()
	if st.Outstanding != 0 {
		t.Errorf("%d meshes still outstanding after close", st.Outstanding)
	}
	if st.DoublePuts != 0 || st.Foreign != 0 {
		t.Errorf("pool rejected puts: %+v", st)
	}
	if st.Gets == 0 {
		t.Error("hammer never touched the pool; test is vacuous")
	}
}

// TestHammerEscalation is the two-level variant of the hammer: an
// aggressive policy flags most non-empty syndromes, a tiny escalation
// queue forces drops under load, and clients disconnect abruptly with
// flagged requests in flight. The books must still balance — exactly
// one response per request on healthy connections, pool accounting
// clean — and every flagged decode must be accounted as either a
// completed level-2 escalation or a counted drop.
func TestHammerEscalation(t *testing.T) {
	const (
		clients    = 5
		perClient  = 100
		disconnect = 2
	)
	n := confTrials(perClient, 30)
	pool := sfq.NewPool(sfq.Final)
	reg := obs.NewRegistry()
	pol := twolevel.Policy{OnRetry: true, OnUnresolved: true, OnFallback: true, HotThreshold: 1}
	s := New(Config{
		Variant:        sfq.Final,
		Distances:      []int{3, 5},
		Window:         8,
		QueueDepth:     16,
		Pool:           pool,
		Registry:       reg,
		Escalate:       true,
		EscalatePolicy: &pol,
		EscQueueDepth:  4, // small on purpose: the drop path must be exercised
		EscWorkers:     2,
	})

	var escalatedSeen, okSeen atomic.Int64
	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			d := 3 + 2*(cl%2)
			syns := confSyndromes(d, lattice.ZErrors, 12)
			cliEnd, srvEnd := net.Pipe()
			go s.ServeConn(srvEnd)
			c := NewClient(cliEnd)
			defer c.Close()

			quitter := cl < disconnect
			var chans []<-chan *Response
			for i := 0; i < n; i++ {
				if quitter && i == n/2 {
					c.Close()
					return
				}
				ch, err := c.Send(&Request{D: d, EType: lattice.ZErrors, Syndrome: syns[i%len(syns)]})
				if err != nil {
					if quitter {
						return
					}
					t.Errorf("client %d send %d: %v", cl, i, err)
					return
				}
				chans = append(chans, ch)
			}
			for i, ch := range chans {
				resp, ok := <-ch
				if !ok {
					t.Errorf("client %d: stream died at response %d: %v", cl, i, c.Err())
					return
				}
				switch resp.Status {
				case StatusOK:
					okSeen.Add(1)
					if resp.Escalated {
						escalatedSeen.Add(1)
					}
				case StatusShed:
					if resp.Escalated {
						t.Errorf("client %d: escalated flag on shed response", cl)
					}
				default:
					t.Errorf("client %d req %d: status %v (%s)", cl, i, resp.Status, resp.Msg)
				}
			}
		}(cl)
	}
	wg.Wait()

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if escalatedSeen.Load() == 0 {
		t.Fatal("no escalated response observed; hammer is vacuous")
	}
	if okSeen.Load() == escalatedSeen.Load() {
		t.Error("every OK response escalated; corpus should mix verdicts")
	}
	// Every flagged response enqueued exactly one level-2 task or counted
	// one drop, and Close drained the queue — so completions plus drops
	// cover at least the escalations healthy clients observed (abrupt
	// disconnectors may have contributed more).
	done := reg.Counter("serve_escalations_total").Load()
	dropped := reg.Counter("serve_escalate_dropped_total").Load()
	if done+dropped < escalatedSeen.Load() {
		t.Errorf("escalations done %d + dropped %d < observed flagged %d",
			done, dropped, escalatedSeen.Load())
	}
	if done == 0 {
		t.Error("level-2 workers completed nothing")
	}
	if reg.Histogram("serve_escalate_ns").Snapshot().Count != uint64(done) {
		t.Error("escalate histogram count disagrees with escalations counter")
	}

	st := pool.Stats()
	if st.Outstanding != 0 || st.DoublePuts != 0 || st.Foreign != 0 {
		t.Errorf("pool accounting after escalation hammer: %+v", st)
	}
}

// TestCloseMidTraffic drains the server while clients are still
// sending: every in-flight request must still get exactly one response
// (decoded or a draining error), Close must not deadlock, and the pool
// must balance.
func TestCloseMidTraffic(t *testing.T) {
	v := sfq.Final
	pool := sfq.NewPool(v)
	s := New(Config{Variant: v, Distances: []int{3}, Window: 4, Pool: pool, Registry: obs.NewRegistry()})
	syns := confSyndromes(3, lattice.ZErrors, 8)

	const clients = 4
	var wg sync.WaitGroup
	started := make(chan struct{}, clients)
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			cliEnd, srvEnd := net.Pipe()
			go s.ServeConn(srvEnd)
			c := NewClient(cliEnd)
			defer c.Close()
			var chans []<-chan *Response
			for i := 0; ; i++ {
				ch, err := c.Send(&Request{D: 3, EType: lattice.ZErrors, Syndrome: syns[i%len(syns)]})
				if err != nil {
					break // the drain reached this connection
				}
				chans = append(chans, ch)
				if i == 0 {
					started <- struct{}{}
				}
			}
			// Whatever was accepted gets exactly one response before the
			// stream ends; after it ends, channels just close.
			for _, ch := range chans {
				resp, ok := <-ch
				if !ok {
					continue
				}
				switch resp.Status {
				case StatusOK, StatusShed, StatusError:
				default:
					t.Errorf("client %d: invalid status %v", cl, resp.Status)
				}
			}
		}(cl)
	}
	for cl := 0; cl < clients; cl++ {
		<-started
	}
	done := make(chan error, 1)
	go func() { done <- s.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Close deadlocked with clients mid-traffic")
	}
	wg.Wait()

	if st := pool.Stats(); st.Outstanding != 0 || st.DoublePuts != 0 || st.Foreign != 0 {
		t.Errorf("pool accounting after mid-traffic close: %+v", st)
	}
	// A post-close submission is answered, not enqueued.
	if resp := s.Decode(3, lattice.ZErrors, 1, syns[0]); resp.Status != StatusError {
		t.Errorf("post-close decode: %+v, want draining error", resp)
	}
}
