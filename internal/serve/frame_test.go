package serve

import (
	"bufio"
	"bytes"
	"io"
	"reflect"
	"testing"

	"repro/internal/lattice"
	"repro/internal/mc"
)

// randRequest draws a request from a deterministic counter stream.
func randRequest(seed, trial int64) *Request {
	rng := mc.NewRand(seed, mc.DeriveID(0xf4a3e), trial)
	n := rng.Intn(300)
	req := &Request{
		ID:       rng.Uint64(),
		D:        rng.Intn(30) + 1,
		EType:    lattice.ErrorType(rng.Intn(2)),
		Syndrome: make([]bool, n),
	}
	for i := range req.Syndrome {
		req.Syndrome[i] = rng.Intn(4) == 0
	}
	return req
}

func randResponse(seed, trial int64) *Response {
	rng := mc.NewRand(seed, mc.DeriveID(0xf4a3f), trial)
	resp := &Response{ID: rng.Uint64(), Status: Status(rng.Intn(3)), Cycles: 0}
	switch resp.Status {
	case StatusOK:
		resp.Cycles = rng.Uint32()
		resp.Escalated = rng.Intn(3) == 0
		resp.Qubits = make([]int32, rng.Intn(40))
		for i := range resp.Qubits {
			resp.Qubits[i] = rng.Int31()
		}
	case StatusError:
		resp.Msg = string(rune('a'+rng.Intn(26))) + "-failure"
	}
	return resp
}

// TestFrameRoundTrip pins the codec: append → read → parse recovers
// the exact request/response for a deterministic sample of both.
func TestFrameRoundTrip(t *testing.T) {
	var wire []byte
	var reqs []*Request
	var resps []*Response
	for trial := int64(0); trial < 64; trial++ {
		req := randRequest(11, trial)
		resp := randResponse(11, trial)
		var err error
		wire, err = AppendRequest(wire, req)
		if err != nil {
			t.Fatal(err)
		}
		wire, err = AppendResponse(wire, resp)
		if err != nil {
			t.Fatal(err)
		}
		reqs, resps = append(reqs, req), append(resps, resp)
	}
	br := bufio.NewReader(bytes.NewReader(wire))
	var buf []byte
	var req Request
	var resp Response
	for i := 0; ; i++ {
		mt, payload, err := ReadFrame(br, buf)
		if err == io.EOF {
			if i != 2*len(reqs) {
				t.Fatalf("stream ended after %d frames, want %d", i, 2*len(reqs))
			}
			break
		}
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		buf = payload
		switch mt {
		case MsgDecode:
			if err := ParseRequest(payload, &req); err != nil {
				t.Fatalf("frame %d: %v", i, err)
			}
			want := reqs[i/2]
			if req.ID != want.ID || req.D != want.D || req.EType != want.EType ||
				!reflect.DeepEqual(req.Syndrome, want.Syndrome) {
				t.Fatalf("frame %d: request %+v, want %+v", i, req, *want)
			}
		case MsgResult:
			if err := ParseResponse(payload, &resp); err != nil {
				t.Fatalf("frame %d: %v", i, err)
			}
			want := resps[i/2]
			if resp.ID != want.ID || resp.Status != want.Status || resp.Cycles != want.Cycles ||
				resp.Escalated != want.Escalated ||
				resp.Msg != want.Msg || len(resp.Qubits) != len(want.Qubits) {
				t.Fatalf("frame %d: response %+v, want %+v", i, resp, *want)
			}
			for j := range resp.Qubits {
				if resp.Qubits[j] != want.Qubits[j] {
					t.Fatalf("frame %d qubit %d: %d, want %d", i, j, resp.Qubits[j], want.Qubits[j])
				}
			}
		}
	}
}

// TestFrameRejects pins the strict-parse errors: truncation, bad magic,
// bad version, oversized length, nonzero pad, set padding bits.
func TestFrameRejects(t *testing.T) {
	good, err := AppendRequest(nil, &Request{ID: 7, D: 3, Syndrome: []bool{true, false, true}})
	if err != nil {
		t.Fatal(err)
	}
	read := func(b []byte) error {
		_, _, err := ReadFrame(bufio.NewReader(bytes.NewReader(b)), nil)
		return err
	}
	if err := read(good); err != nil {
		t.Fatalf("canonical frame rejected: %v", err)
	}
	cases := []struct {
		name   string
		mut    func([]byte) []byte
		accept func(error) bool
	}{
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b },
			func(e error) bool { return e == ErrBadMagic }},
		{"bad version", func(b []byte) []byte { b[2] = 9; return b },
			func(e error) bool { return e == ErrBadVersion }},
		{"oversized length", func(b []byte) []byte {
			b[4], b[5], b[6], b[7] = 0xff, 0xff, 0xff, 0xff
			return b
		}, func(e error) bool { return e == ErrFrameTooBig }},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)-1] },
			func(e error) bool { return e == io.ErrUnexpectedEOF }},
		{"truncated header", func(b []byte) []byte { return b[:4] },
			func(e error) bool { return e == io.ErrUnexpectedEOF }},
		{"unknown type", func(b []byte) []byte { b[3] = 42; return b },
			func(e error) bool { return e != nil }},
	}
	for _, tc := range cases {
		b := tc.mut(append([]byte(nil), good...))
		if err := read(b); !tc.accept(err) {
			t.Errorf("%s: error %v not the expected rejection", tc.name, err)
		}
	}

	// Payload-level strictness, bypassing the frame header.
	var req Request
	payload := append([]byte(nil), good[headerLen:]...)
	payload[11] = 1 // pad byte
	if err := ParseRequest(payload, &req); err == nil {
		t.Error("nonzero pad byte accepted")
	}
	payload = append([]byte(nil), good[headerLen:]...)
	payload[len(payload)-1] |= 0x80 // padding bit beyond 3 syndrome bits
	if err := ParseRequest(payload, &req); err == nil {
		t.Error("set syndrome padding bit accepted")
	}
	if err := ParseRequest(good[headerLen:len(good)-1], &req); err == nil {
		t.Error("short payload accepted")
	}

	// Response flags: unknown bits and flags on non-OK statuses reject;
	// the escalated flag round-trips on StatusOK.
	var resp Response
	okWire, err := AppendResponse(nil, &Response{ID: 9, Status: StatusOK, Escalated: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := ParseResponse(okWire[headerLen:], &resp); err != nil || !resp.Escalated {
		t.Errorf("escalated response did not round-trip: %v %+v", err, resp)
	}
	bad := append([]byte(nil), okWire[headerLen:]...)
	bad[9] = 0x82 // unknown flag bit
	if err := ParseResponse(bad, &resp); err == nil {
		t.Error("unknown response flag bit accepted")
	}
	shedWire, err := AppendResponse(nil, &Response{ID: 9, Status: StatusShed})
	if err != nil {
		t.Fatal(err)
	}
	bad = append([]byte(nil), shedWire[headerLen:]...)
	bad[9] = FlagEscalated
	if err := ParseResponse(bad, &resp); err == nil {
		t.Error("escalated flag on shed response accepted")
	}
	if _, err := AppendResponse(nil, &Response{Status: StatusShed, Escalated: true}); err == nil {
		t.Error("AppendResponse encoded escalated shed response")
	}
}

// FuzzFrame throws hostile bytes at the reader/parser stack (must not
// panic, must not over-allocate past MaxFramePayload) and checks the
// canonical-form property on everything that parses: a payload the
// strict parser accepts re-encodes to the identical bytes. ci.sh runs
// this a short while on every build.
func FuzzFrame(f *testing.F) {
	for trial := int64(0); trial < 8; trial++ {
		wire, err := AppendRequest(nil, randRequest(29, trial))
		if err != nil {
			f.Fatal(err)
		}
		wire, err = AppendResponse(wire, randResponse(29, trial))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(wire)
	}
	f.Add([]byte{0x46, 0x51, 1, 1, 0xff, 0xff, 0xff, 0x7f})
	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		var buf []byte
		for {
			mt, payload, err := ReadFrame(br, buf)
			if err != nil {
				return
			}
			buf = payload
			switch mt {
			case MsgDecode:
				var req Request
				if err := ParseRequest(payload, &req); err == nil {
					out, err := AppendRequest(nil, &req)
					if err != nil {
						t.Fatalf("parsed request does not re-encode: %v", err)
					}
					if !bytes.Equal(out[headerLen:], payload) {
						t.Fatalf("request not canonical:\n got %x\nwant %x", out[headerLen:], payload)
					}
				}
			case MsgResult:
				var resp Response
				if err := ParseResponse(payload, &resp); err == nil {
					out, err := AppendResponse(nil, &resp)
					if err != nil {
						t.Fatalf("parsed response does not re-encode: %v", err)
					}
					if !bytes.Equal(out[headerLen:], payload) {
						t.Fatalf("response not canonical:\n got %x\nwant %x", out[headerLen:], payload)
					}
				}
			}
		}
	})
}
