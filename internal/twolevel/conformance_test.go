package twolevel

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/decoder/mwpm"
	"repro/internal/decodepool"
	"repro/internal/knob"
	"repro/internal/lattice"
	"repro/internal/obs"
	"repro/internal/pauli"
	"repro/internal/sfq"
)

// The differential escalation conformance suite pins the two-level
// decoder against its two constituents: every non-escalated decode is
// bit-identical to the pure mesh, every escalated decode bit-identical
// to the pure MWPM decoder, and the verdict itself is identical between
// the scalar mesh and BatchMesh lanes at every lane width.

func confShort() bool {
	return testing.Short() || knob.Bool("REPRO_MC_SHORT")
}

// testPolicies spans the trigger space: the default distress-signal
// policy, a hot-count threshold that fires on clean dense decodes, and
// a cycle threshold.
func testPolicies() map[string]Policy {
	return map[string]Policy{
		"default": DefaultPolicy(),
		"hot4":    {OnRetry: true, OnUnresolved: true, OnFallback: true, HotThreshold: 4},
		"cycle28": {CycleThreshold: 28},
	}
}

// corpusFor builds the weight-≤2 error corpus plus seeded random raw
// syndromes (the dense ones exercise stalls, drains and retries).
func corpusFor(l *lattice.Lattice, g *lattice.Graph, etype lattice.ErrorType) [][]bool {
	op := pauli.Z
	if etype == lattice.XErrors {
		op = pauli.X
	}
	errSyn := func(qs ...int) []bool {
		f := pauli.NewFrame(l.NumQubits())
		for _, q := range qs {
			f.Apply(q, op)
		}
		return g.Syndrome(f)
	}
	var qubits []int
	for _, site := range l.DataSites() {
		qubits = append(qubits, l.QubitIndex(site))
	}
	var syns [][]bool
	syns = append(syns, errSyn())
	for _, q := range qubits {
		syns = append(syns, errSyn(q))
	}
	step := 1
	if confShort() {
		step = 3
	}
	for i := 0; i < len(qubits); i += step {
		for j := i + 1; j < len(qubits); j += step {
			syns = append(syns, errSyn(qubits[i], qubits[j]))
		}
	}
	rng := rand.New(rand.NewSource(int64(400*l.Distance()) + int64(etype)))
	trials := 40
	if confShort() {
		trials = 12
	}
	for _, p := range []float64{0.05, 0.2} {
		for trial := 0; trial < trials; trial++ {
			syn := make([]bool, g.NumChecks())
			for j := range syn {
				syn[j] = rng.Float64() < p
			}
			syns = append(syns, syn)
		}
	}
	return syns
}

func synWeight(syn []bool) int {
	w := 0
	for _, h := range syn {
		if h {
			w++
		}
	}
	return w
}

func TestTwoLevelConformance(t *testing.T) {
	dists := []int{3, 5}
	if !confShort() {
		dists = append(dists, 7)
	}
	for _, d := range dists {
		l := lattice.MustNew(d)
		for _, etype := range []lattice.ErrorType{lattice.ZErrors, lattice.XErrors} {
			g := l.MatchingGraph(etype)
			syns := corpusFor(l, g, etype)
			for name, pol := range testPolicies() {
				pureMesh := sfq.New(g, sfq.Final)
				sAcc, sTL := decodepool.NewScratch(), decodepool.NewScratch()
				acc := mwpm.New()
				tl := New(sfq.New(g, sfq.Final), mwpm.New(), pol)

				wantCorr := make([]string, len(syns))
				wantEsc := make([]bool, len(syns))
				for i, syn := range syns {
					desc := fmt.Sprintf("d=%d %v pol=%s syn=%d", d, etype, name, i)
					cm, stm, err := pureMesh.DecodeWithStats(syn)
					if err != nil {
						t.Fatalf("%s: mesh: %v", desc, err)
					}
					if got, want := HotCount(stm), synWeight(syn); got != want {
						t.Fatalf("%s: HotCount=%d, syndrome weight %d (stats %+v)", desc, got, want, stm)
					}
					meshStr := fmt.Sprint(cm.Qubits)
					ca, err := acc.DecodeInto(g, syn, sAcc)
					if err != nil {
						t.Fatalf("%s: mwpm: %v", desc, err)
					}
					accStr := fmt.Sprint(ca.Qubits)

					ct, err := tl.DecodeInto(g, syn, sTL)
					if err != nil {
						t.Fatalf("%s: twolevel: %v", desc, err)
					}
					esc := pol.Escalate(stm)
					if tl.Escalated(0) != esc {
						t.Fatalf("%s: verdict %v, pure-mesh stats say %v (%+v)", desc, tl.Escalated(0), esc, stm)
					}
					got := fmt.Sprint(ct.Qubits)
					want := meshStr
					if esc {
						want = accStr
					}
					if got != want {
						t.Fatalf("%s: escalated=%v correction %s, want %s", desc, esc, got, want)
					}
					wantCorr[i], wantEsc[i] = want, esc
				}

				// Verdicts and corrections must be identical through the
				// batched face at every lane width.
				widths := []int{1, 2, sfq.MaxBatchLanes(d)}
				if confShort() {
					widths = []int{sfq.MaxBatchLanes(d)}
				}
				for _, w := range widths {
					tlb := NewBatch(sfq.NewBatchWithLanes(g, sfq.Final, w), mwpm.New(), pol)
					sB := decodepool.NewScratch()
					cs, err := tlb.DecodeBatchInto(g, syns, sB)
					if err != nil {
						t.Fatalf("d=%d %v pol=%s lanes=%d: %v", d, etype, name, w, err)
					}
					for i := range syns {
						desc := fmt.Sprintf("d=%d %v pol=%s lanes=%d syn=%d", d, etype, name, w, i)
						if tlb.Escalated(i) != wantEsc[i] {
							t.Fatalf("%s: batch verdict %v, scalar %v (lane stats %+v)",
								desc, tlb.Escalated(i), wantEsc[i], tlb.MeshStats(i))
						}
						if got := fmt.Sprint(cs[i].Qubits); got != wantCorr[i] {
							t.Fatalf("%s: batch correction %s, scalar %s", desc, got, wantCorr[i])
						}
					}
				}
			}
		}
	}
}

// TestTwoLevelCounters pins the decode/escalation accounting, including
// the obs mirror.
func TestTwoLevelCounters(t *testing.T) {
	l := lattice.MustNew(5)
	g := l.MatchingGraph(lattice.ZErrors)
	// HotThreshold 1 escalates everything with a nonempty syndrome.
	tl := New(sfq.New(g, sfq.Final), mwpm.New(), Policy{HotThreshold: 1})
	reg := obs.NewRegistry()
	tl.Instrument(reg)
	s := decodepool.NewScratch()
	empty := make([]bool, g.NumChecks())
	one := make([]bool, g.NumChecks())
	one[3] = true
	for i := 0; i < 3; i++ {
		if _, err := tl.DecodeInto(g, empty, s); err != nil {
			t.Fatal(err)
		}
		if _, err := tl.DecodeInto(g, one, s); err != nil {
			t.Fatal(err)
		}
	}
	if tl.Decodes() != 6 || tl.Escalations() != 3 {
		t.Fatalf("decodes=%d escalations=%d, want 6/3", tl.Decodes(), tl.Escalations())
	}
	if got := reg.Counter("twolevel_decodes_total").Load(); got != 6 {
		t.Fatalf("obs decodes=%d, want 6", got)
	}
	if got := reg.Counter("twolevel_escalations_total").Load(); got != 3 {
		t.Fatalf("obs escalations=%d, want 3", got)
	}
}
