package twolevel

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/decoder"
	"repro/internal/decoder/mwpm"
	"repro/internal/decodepool"
	"repro/internal/lattice"
	"repro/internal/sfq"
)

// cutParity computes the homology class of a correction: the parity of
// its overlap with the logical cut for this error type. Two corrections
// of the same syndrome differ by a logical operator iff their parities
// differ.
func cutParity(l *lattice.Lattice, etype lattice.ErrorType, c decoder.Correction) int {
	onCut := map[int]bool{}
	for _, q := range l.LogicalCutSupport(etype) {
		onCut[q] = true
	}
	par := 0
	for _, q := range c.Support() {
		if onCut[q] {
			par ^= 1
		}
	}
	return par
}

// FuzzTwoLevel feeds fuzzer-chosen syndromes through the two-level
// decoder and checks the invariants that matter downstream: the final
// correction always clears the syndrome, non-escalated decodes are
// bit-identical to the pure mesh, escalated ones bit-identical to pure
// MWPM (hence in MWPM's homology class), and the batched face agrees
// with the scalar one.
func FuzzTwoLevel(f *testing.F) {
	f.Add(uint8(0), uint8(0), []byte{0x01, 0x80, 0x03})
	f.Add(uint8(1), uint8(1), []byte{0xff, 0x10, 0x00, 0x42})
	f.Add(uint8(2), uint8(2), []byte{0xaa, 0x55, 0xaa, 0x55, 0x0f})
	dists := []int{3, 5, 7}
	type target struct {
		l *lattice.Lattice
		g *lattice.Graph
	}
	targets := map[int]target{}
	for _, d := range dists {
		l := lattice.MustNew(d)
		targets[d] = target{l, l.MatchingGraph(lattice.ZErrors)}
	}
	policies := []Policy{
		DefaultPolicy(),
		{OnRetry: true, OnUnresolved: true, OnFallback: true, HotThreshold: 4},
		{CycleThreshold: 24},
	}
	f.Fuzz(func(t *testing.T, dSel, pSel uint8, synBytes []byte) {
		d := dists[int(dSel)%len(dists)]
		tg := targets[d]
		pol := policies[int(pSel)%len(policies)]
		nc := tg.g.NumChecks()
		syn := make([]bool, nc)
		if len(synBytes) > 0 {
			for i := 0; i < nc; i++ {
				syn[i] = synBytes[(i/8)%len(synBytes)]>>(i%8)&1 == 1
			}
		}

		mesh := sfq.New(tg.g, sfq.Final)
		cm, stm, err := mesh.DecodeWithStats(syn)
		if err != nil {
			t.Fatal(err)
		}
		meshStr := fmt.Sprint(cm.Qubits)
		sAcc := decodepool.NewScratch()
		ca, err := mwpm.New().DecodeInto(tg.g, syn, sAcc)
		if err != nil {
			t.Fatal(err)
		}
		accStr := fmt.Sprint(ca.Qubits)
		accPar := cutParity(tg.l, tg.g.ErrorType(), ca)

		tl := New(sfq.New(tg.g, sfq.Final), mwpm.New(), pol)
		s := decodepool.NewScratch()
		ct, err := tl.DecodeInto(tg.g, syn, s)
		if err != nil {
			t.Fatal(err)
		}
		if err := decoder.Validate(tg.g, syn, ct); err != nil {
			t.Fatalf("two-level correction invalid: %v", err)
		}
		esc := pol.Escalate(stm)
		if tl.Escalated(0) != esc {
			t.Fatalf("verdict %v, want %v (stats %+v)", tl.Escalated(0), esc, stm)
		}
		got := fmt.Sprint(ct.Qubits)
		if esc {
			if got != accStr {
				t.Fatalf("escalated correction %s != mwpm %s", got, accStr)
			}
			if par := cutParity(tg.l, tg.g.ErrorType(), ct); par != accPar {
				t.Fatalf("escalated homology class %d != mwpm %d", par, accPar)
			}
		} else if got != meshStr {
			t.Fatalf("non-escalated correction %s != mesh %s", got, meshStr)
		}

		// Batched face: same verdicts, same corrections.
		tlb := NewBatch(sfq.NewBatchWithLanes(tg.g, sfq.Final, 1+int(dSel)%sfq.MaxBatchLanes(d)), mwpm.New(), pol)
		sB := decodepool.NewScratch()
		cs, err := tlb.DecodeBatchInto(tg.g, [][]bool{syn, syn, syn}, sB)
		if err != nil {
			t.Fatal(err)
		}
		for i := range cs {
			if tlb.Escalated(i) != esc {
				t.Fatalf("batch lane %d verdict %v, scalar %v", i, tlb.Escalated(i), esc)
			}
			if bs := fmt.Sprint(cs[i].Qubits); bs != got {
				t.Fatalf("batch lane %d correction %s, scalar %s", i, bs, got)
			}
		}
	})
}

// TestEscalationRateMonotone is the testing/quick property: under
// coupled noise (one uniform draw per check, thresholded at each p, so
// syndromes only gain hot checks as p grows) the measured escalation
// rate is monotone non-decreasing in p. The hot-count trigger is
// per-instance monotone under this coupling; the stall/retry triggers
// are allowed a small slack.
func TestEscalationRateMonotone(t *testing.T) {
	l := lattice.MustNew(7)
	g := l.MatchingGraph(lattice.ZErrors)
	pol := Policy{OnRetry: true, OnUnresolved: true, OnFallback: true, HotThreshold: 4}
	mesh := sfq.New(g, sfq.Final)
	ps := []float64{0.02, 0.06, 0.12, 0.2}
	trials := 150
	if confShort() {
		trials = 60
	}
	u := make([]float64, g.NumChecks())
	syn := make([]bool, g.NumChecks())
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		counts := make([]int, len(ps))
		for trial := 0; trial < trials; trial++ {
			for j := range u {
				u[j] = rng.Float64()
			}
			for pi, p := range ps {
				for j := range syn {
					syn[j] = u[j] < p
				}
				_, st, err := mesh.DecodeWithStats(syn)
				if err != nil {
					t.Fatal(err)
				}
				if pol.Escalate(st) {
					counts[pi]++
				}
			}
		}
		for pi := 1; pi < len(ps); pi++ {
			if counts[pi]+3 < counts[pi-1] {
				t.Logf("seed %d: escalations %v not monotone at p=%v", seed, counts, ps[pi])
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 6}); err != nil {
		t.Fatal(err)
	}
}
