// Package twolevel implements two-level decoding: a fast approximate
// SFQ mesh decode (level 1) whose per-decode Stats drive an escalation
// policy, with hard instances re-decoded by an accurate software decoder
// (level 2) — MWPM by default, MLD where its exhaustive enumeration is
// legal. This is the NEO-QEC / Das-et-al. refinement of the paper's
// architecture: keep the mesh's nanosecond latency on the easy (vast
// majority of) syndromes and buy back most of the accuracy gap by
// escalating only the instances the mesh itself flags as hard.
//
// The escalation verdict is a pure function of sfq.Stats. Because the
// scalar and SWAR-batched kernels are pinned Stats-identical by the sfq
// conformance suites, a verdict computed from either kernel — at any
// lane width or sweep shard shape — is bit-identical, which makes
// two-level sweeps exactly as deterministic as pure-mesh sweeps. The
// differential conformance suite in this package pins the rest: a
// non-escalated decode is bit-identical to the pure mesh, an escalated
// one bit-identical to the pure level-2 decoder.
package twolevel

import (
	"time"

	"repro/internal/decoder"
	"repro/internal/decodepool"
	"repro/internal/lattice"
	"repro/internal/obs"
	"repro/internal/sfq"
)

// Policy decides, from the level-1 mesh Stats of one decode, whether to
// re-decode the syndrome with the accurate level-2 decoder. The zero
// value never escalates; DefaultPolicy escalates on every signal that
// the pairing protocol struggled.
type Policy struct {
	// OnRetry escalates when the mesh needed stall-recovery resets
	// (Stats.Retries > 0).
	OnRetry bool
	// OnUnresolved escalates when the pairing protocol gave up on any
	// hot module (Stats.Unresolved > 0) — whether the watchdog then
	// drained it to a boundary or left it hot.
	OnUnresolved bool
	// OnFallback escalates when the watchdog drained chains to a
	// boundary (Stats.Fallbacks > 0). Under the exit-path Stats
	// contract Fallbacks > 0 implies Unresolved > 0, so this only adds
	// signal when OnUnresolved is off.
	OnFallback bool
	// OnStall escalates on any quiescent stall (Stats.Stalls > 0),
	// including ones the retry mechanism recovered.
	OnStall bool
	// HotThreshold, when positive, escalates any syndrome whose initial
	// hot-check count is >= the threshold: dense instances are where
	// greedy mesh pairing diverges from the MWPM optimum even when the
	// protocol completes cleanly.
	HotThreshold int
	// CycleThreshold, when positive, escalates any decode that consumed
	// >= that many mesh cycles.
	CycleThreshold int
}

// DefaultPolicy escalates on every protocol-distress signal (retries,
// stalls, give-ups) but not on the hot/cycle thresholds.
func DefaultPolicy() Policy {
	return Policy{OnRetry: true, OnUnresolved: true, OnFallback: true, OnStall: true}
}

// HotCount recovers the initial hot-check count of a decode from its
// Stats: every hot module is cleared exactly once (Pairings counts
// cleared modules, including the Fallbacks drained by the watchdog,
// which Unresolved also counts) or left hot.
func HotCount(st sfq.Stats) int { return st.Pairings + st.Unresolved - st.Fallbacks }

// Escalate is the escalation verdict: a pure function of the level-1
// Stats, so it is deterministic and kernel-independent by construction.
func (p Policy) Escalate(st sfq.Stats) bool {
	switch {
	case p.OnRetry && st.Retries > 0:
		return true
	case p.OnUnresolved && st.Unresolved > 0:
		return true
	case p.OnFallback && st.Fallbacks > 0:
		return true
	case p.OnStall && st.Stalls > 0:
		return true
	case p.HotThreshold > 0 && HotCount(st) >= p.HotThreshold:
		return true
	case p.CycleThreshold > 0 && st.Cycles >= p.CycleThreshold:
		return true
	}
	return false
}

// Decoder is a two-level decoder: a level-1 sfq.Mesh or sfq.BatchMesh
// plus an accurate level-2 decodepool.IntoDecoder. It implements
// decoder.Decoder, decodepool.IntoDecoder and decodepool.BatchDecoder,
// so it drops into every sweep and serve path a mesh does.
//
// Like the meshes it wraps, a Decoder is single-goroutine: sweeps use
// one per worker.
type Decoder struct {
	mesh  *sfq.Mesh      // scalar level 1 (nil when batched)
	batch *sfq.BatchMesh // batched level 1 (nil when scalar)
	acc   decodepool.IntoDecoder
	pol   Policy

	verdicts []bool // escalation verdicts of the last (batch) decode
	lastN    int
	escOne   bool // verdict of the most recent single decode

	decodes     int64
	escalations int64
	obsDecodes  *obs.Counter   // nil until Instrument
	obsEscal    *obs.Counter
	l1Ns        *obs.Histogram // nil until Instrument: per-decode level split
	l2Ns        *obs.Histogram

	ownScratch *decodepool.Scratch // lazy, for the plain Decode face
}

// New wraps a scalar mesh.
func New(mesh *sfq.Mesh, acc decodepool.IntoDecoder, pol Policy) *Decoder {
	return &Decoder{mesh: mesh, acc: acc, pol: pol, verdicts: make([]bool, 1)}
}

// NewBatch wraps a SWAR batch mesh.
func NewBatch(b *sfq.BatchMesh, acc decodepool.IntoDecoder, pol Policy) *Decoder {
	return &Decoder{batch: b, acc: acc, pol: pol, verdicts: make([]bool, b.Lanes())}
}

// Name implements decoder.Decoder.
func (d *Decoder) Name() string {
	accName := "accurate"
	if n, ok := d.acc.(interface{ Name() string }); ok {
		accName = n.Name()
	}
	return "twolevel(" + d.Level1().Name() + "+" + accName + ")"
}

// Level1 returns the wrapped mesh decoder (for pool recycling).
func (d *Decoder) Level1() decoder.Decoder {
	if d.batch != nil {
		return d.batch
	}
	return d.mesh
}

// Policy returns the escalation policy.
func (d *Decoder) Policy() Policy { return d.pol }

// Decodes returns how many syndromes this decoder has decoded.
func (d *Decoder) Decodes() int64 { return d.decodes }

// Escalations returns how many of them escalated to level 2.
func (d *Decoder) Escalations() int64 { return d.escalations }

// Escalated reports the verdict for syndrome i of the last decode
// (i = 0 after a single decode).
func (d *Decoder) Escalated(i int) bool { return d.verdicts[i] }

// MeshStats returns the level-1 Stats for syndrome i of the last
// decode.
func (d *Decoder) MeshStats(i int) sfq.Stats {
	if d.batch != nil {
		return d.batch.LaneStats(i)
	}
	return d.mesh.Stats()
}

// Instrument mirrors the decode/escalation counters into registry
// counters twolevel_decodes_total and twolevel_escalations_total, and
// splits per-decode wall time into the twolevel_l1_ns / twolevel_l2_ns
// histograms — the level-1 mesh share versus the level-2 accurate
// re-decode share. The split is what the two-tier latency mixture
// model (and any tail investigation) actually needs: an escalated
// decode's tail is almost entirely level-2 time, and these histograms
// prove or refute that per run. Timing costs two clock reads per
// decode (three when escalating) and no allocations, so the
// zero-allocation regression suite covers the instrumented path.
func (d *Decoder) Instrument(r *obs.Registry) {
	d.obsDecodes = r.Counter("twolevel_decodes_total")
	d.obsEscal = r.Counter("twolevel_escalations_total")
	d.l1Ns = r.Histogram("twolevel_l1_ns")
	d.l2Ns = r.Histogram("twolevel_l2_ns")
}

func (d *Decoder) count(decodes, escalations int64) {
	d.decodes += decodes
	d.escalations += escalations
	if d.obsDecodes != nil {
		d.obsDecodes.Add(decodes)
		if escalations != 0 {
			d.obsEscal.Add(escalations)
		}
	}
}

// Decode implements decoder.Decoder with an internal scratch.
func (d *Decoder) Decode(g *lattice.Graph, syn []bool) (decoder.Correction, error) {
	if d.ownScratch == nil {
		d.ownScratch = decodepool.NewScratch()
	}
	c, err := d.DecodeInto(g, syn, d.ownScratch)
	if err != nil {
		return decoder.Correction{}, err
	}
	return decoder.Correction{Qubits: append([]int(nil), c.Qubits...)}, nil
}

// DecodeInto implements decodepool.IntoDecoder: level-1 decode, verdict,
// and on escalation a level-2 re-decode of the same syndrome. The
// returned correction's qubit buffer is scratch-owned either way, so the
// caller's usual consume-before-next-decode rule is unchanged. The mesh
// correction and the level-2 correction use the same scalar scratch
// buffer family; on escalation the discarded mesh result is simply
// overwritten, keeping the hot path allocation-free.
func (d *Decoder) DecodeInto(g *lattice.Graph, syn []bool, s *decodepool.Scratch) (decoder.Correction, error) {
	var l1 decodepool.IntoDecoder = d.mesh
	if d.batch != nil {
		l1 = d.batch
	}
	var t0 time.Time
	if d.l1Ns != nil {
		t0 = time.Now()
	}
	c, err := l1.DecodeInto(g, syn, s)
	if err != nil {
		return decoder.Correction{}, err
	}
	if d.l1Ns != nil {
		d.l1Ns.Observe(uint64(time.Since(t0)))
	}
	esc := d.pol.Escalate(d.MeshStats(0))
	d.verdicts[0], d.lastN = esc, 1
	if !esc {
		d.count(1, 0)
		return c, nil
	}
	d.count(1, 1)
	if d.l2Ns == nil {
		return d.acc.DecodeInto(g, syn, s)
	}
	t1 := time.Now()
	c2, err := d.acc.DecodeInto(g, syn, s)
	if err == nil {
		d.l2Ns.Observe(uint64(time.Since(t1)))
	}
	return c2, err
}

// arena holds the escalated corrections of one batch decode, reusing
// one backing array across batches (Scratch-owned, per-worker).
type arena struct {
	q     []int
	spans [][2]int
}

func mkArena() any { return new(arena) }

// BatchWidth implements decodepool.BatchDecoder.
func (d *Decoder) BatchWidth() int {
	if d.batch != nil {
		return d.batch.BatchWidth()
	}
	return 1
}

// DecodeBatchInto implements decodepool.BatchDecoder: one level-1 batch
// decode, then per-syndrome verdicts and level-2 re-decodes. Escalated
// corrections are copied into a scratch-owned arena because the level-2
// decoder reuses one scalar qubit buffer per call; non-escalated ones
// alias the mesh batch arena untouched. The level-2 decoder must not
// touch the scratch's batch buffer family (decodepool documents the
// split; mwpm/mld use only the scalar family).
func (d *Decoder) DecodeBatchInto(g *lattice.Graph, syns [][]bool, s *decodepool.Scratch) ([]decoder.Correction, error) {
	if cap(d.verdicts) < len(syns) {
		d.verdicts = make([]bool, len(syns))
	}
	d.verdicts = d.verdicts[:len(syns)]
	d.lastN = len(syns)

	if d.batch == nil {
		return d.scalarBatch(g, syns, s)
	}
	var t0 time.Time
	if d.l1Ns != nil {
		t0 = time.Now()
	}
	cs, err := d.batch.DecodeBatchInto(g, syns, s)
	if err != nil {
		return nil, err
	}
	if d.l1Ns != nil {
		// Per-syndrome share of the batch, mirroring how serve accounts
		// lane-shared wall time.
		per := uint64(time.Since(t0)) / uint64(len(syns))
		for range syns {
			d.l1Ns.Observe(per)
		}
	}
	escalated := int64(0)
	ar := s.State("twolevel:arena", mkArena).(*arena)
	ar.q, ar.spans = ar.q[:0], ar.spans[:0]
	for i := range syns {
		d.verdicts[i] = d.pol.Escalate(d.batch.LaneStats(i))
		if !d.verdicts[i] {
			continue
		}
		escalated++
		var t1 time.Time
		if d.l2Ns != nil {
			t1 = time.Now()
		}
		c2, err := d.acc.DecodeInto(g, syns[i], s)
		if err != nil {
			return nil, err
		}
		if d.l2Ns != nil {
			d.l2Ns.Observe(uint64(time.Since(t1)))
		}
		start := len(ar.q)
		ar.q = append(ar.q, c2.Qubits...)
		ar.spans = append(ar.spans, [2]int{i, start})
	}
	// Slice out of the arena only after all appends: append may move
	// the backing array while it grows toward its steady-state size.
	for k, sp := range ar.spans {
		end := len(ar.q)
		if k+1 < len(ar.spans) {
			end = ar.spans[k+1][1]
		}
		cs[sp[0]] = decoder.Correction{Qubits: ar.q[sp[1]:end:end]}
	}
	d.count(int64(len(syns)), escalated)
	return cs, nil
}

// scalarBatch serves the BatchDecoder face of a scalar-mesh Decoder:
// sequential DecodeInto calls with every correction copied into the
// arena, since each call reuses the same scratch qubit buffer.
func (d *Decoder) scalarBatch(g *lattice.Graph, syns [][]bool, s *decodepool.Scratch) ([]decoder.Correction, error) {
	ar := s.State("twolevel:arena", mkArena).(*arena)
	ar.q, ar.spans = ar.q[:0], ar.spans[:0]
	cs := s.BatchCorrections(len(syns))
	escalated, verdicts := int64(0), 0
	for i, syn := range syns {
		c, err := d.decodeOne(g, syn, s)
		if err != nil {
			return nil, err
		}
		verdicts++
		d.verdicts[i] = d.escOne
		if d.escOne {
			escalated++
		}
		start := len(ar.q)
		ar.q = append(ar.q, c.Qubits...)
		ar.spans = append(ar.spans, [2]int{i, start})
	}
	for k, sp := range ar.spans {
		end := len(ar.q)
		if k+1 < len(ar.spans) {
			end = ar.spans[k+1][1]
		}
		cs[sp[0]] = decoder.Correction{Qubits: ar.q[sp[1]:end:end]}
	}
	d.count(int64(verdicts), escalated)
	return cs, nil
}

func (d *Decoder) decodeOne(g *lattice.Graph, syn []bool, s *decodepool.Scratch) (decoder.Correction, error) {
	c, err := d.mesh.DecodeInto(g, syn, s)
	if err != nil {
		return decoder.Correction{}, err
	}
	d.escOne = d.pol.Escalate(d.mesh.Stats())
	if !d.escOne {
		return c, nil
	}
	return d.acc.DecodeInto(g, syn, s)
}
