package twolevel

import (
	"math/rand"
	"testing"

	"repro/internal/decoder/mwpm"
	"repro/internal/decodepool"
	"repro/internal/lattice"
	"repro/internal/obs"
	"repro/internal/sfq"
)

// The synchronous two-level hot path must stay allocation-free after
// warmup — escalations included (MWPM re-decodes run in the same
// decodepool.Scratch, escalated batch corrections in a scratch-owned
// arena) — with the obs counter mirror enabled.
func TestTwoLevelZeroAllocs(t *testing.T) {
	l := lattice.MustNew(9)
	g := l.MatchingGraph(lattice.ZErrors)
	rng := rand.New(rand.NewSource(7))
	mkSyn := func(p float64) []bool {
		syn := make([]bool, g.NumChecks())
		for j := range syn {
			syn[j] = rng.Float64() < p
		}
		return syn
	}
	quiet := mkSyn(0.02)  // decodes clean, no escalation under hot6
	dense := mkSyn(0.25)  // always escalates under hot6
	reg := obs.NewRegistry()
	pol := Policy{OnRetry: true, OnUnresolved: true, OnFallback: true, HotThreshold: 6}

	t.Run("scalar", func(t *testing.T) {
		tl := New(sfq.New(g, sfq.Final), mwpm.New(), pol)
		tl.Instrument(reg)
		s := decodepool.NewScratch()
		for _, syn := range [][]bool{quiet, dense} {
			for i := 0; i < 8; i++ {
				if _, err := tl.DecodeInto(g, syn, s); err != nil {
					t.Fatal(err)
				}
			}
			escalated := tl.Escalated(0)
			allocs := testing.AllocsPerRun(64, func() {
				if _, err := tl.DecodeInto(g, syn, s); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Errorf("scalar escalated=%v: %.1f allocs/decode, want 0", escalated, allocs)
			}
		}
	})

	t.Run("batch", func(t *testing.T) {
		tl := NewBatch(sfq.NewBatch(g, sfq.Final), mwpm.New(), pol)
		tl.Instrument(reg)
		s := decodepool.NewScratch()
		// A mixed batch: some lanes escalate, some do not.
		n := 2*tl.BatchWidth() + 1
		syns := make([][]bool, n)
		for i := range syns {
			if i%3 == 0 {
				syns[i] = dense
			} else {
				syns[i] = quiet
			}
		}
		for i := 0; i < 8; i++ {
			if _, err := tl.DecodeBatchInto(g, syns, s); err != nil {
				t.Fatal(err)
			}
		}
		seen := map[bool]bool{}
		for i := range syns {
			seen[tl.Escalated(i)] = true
		}
		if !seen[true] || !seen[false] {
			t.Fatalf("batch corpus not mixed: verdicts %v", seen)
		}
		allocs := testing.AllocsPerRun(16, func() {
			if _, err := tl.DecodeBatchInto(g, syns, s); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("batch: %.1f allocs/batch, want 0", allocs)
		}
	})
}
