package backlog

import (
	"math"
	"testing"

	"repro/internal/qprog"
	"repro/internal/sfq"
)

func prog(tPositions []int, n int) []bool {
	isT := make([]bool, n)
	for _, i := range tPositions {
		isT[i] = true
	}
	return isT
}

func TestValidation(t *testing.T) {
	if _, err := (Model{SyndromeCycleNs: 0, DecodeNs: 1}).Execute(nil); err == nil {
		t.Error("zero cycle accepted")
	}
	if _, err := (Model{SyndromeCycleNs: 400, DecodeNs: -1}).Execute(nil); err == nil {
		t.Error("negative decode accepted")
	}
}

func TestFastDecoderNoOverhead(t *testing.T) {
	m := Model{SyndromeCycleNs: 400, DecodeNs: 20} // the SFQ regime
	tr, err := m.Execute(prog([]int{10, 50, 99}, 100))
	if err != nil {
		t.Fatal(err)
	}
	if tr.ComputeNs != 100*400 {
		t.Errorf("compute = %v", tr.ComputeNs)
	}
	// A sub-unity ratio decoder keeps at most one round queued, so
	// stalls are bounded by one decode time each.
	if tr.IdleNs > 3*m.DecodeNs+1e-9 {
		t.Errorf("idle = %v too large for fast decoder", tr.IdleNs)
	}
	if tr.Slowdown() > 1.01 {
		t.Errorf("slowdown = %v", tr.Slowdown())
	}
	if tr.TGateCount != 3 || tr.GateCount != 100 {
		t.Errorf("counts wrong: %+v", tr)
	}
}

// The paper's central claim: for f > 1 the backlog at the k-th T gate
// grows geometrically with factor f.
func TestExponentialBacklogGrowth(t *testing.T) {
	const f = 2.0
	m := Model{SyndromeCycleNs: 400, DecodeNs: f * 400}
	// T gate every 10 gates.
	var tPos []int
	for i := 9; i < 200; i += 10 {
		tPos = append(tPos, i)
	}
	tr, err := m.Execute(prog(tPos, 200))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Points) != 20 {
		t.Fatalf("%d trace points", len(tr.Points))
	}
	// Successive stalls must grow ~geometrically with ratio -> f.
	for i := 5; i+1 < len(tr.Points); i++ {
		ratio := tr.Points[i+1].StallNs / tr.Points[i].StallNs
		if ratio < 1.5 || ratio > 2.5 {
			t.Errorf("stall growth ratio at %d = %v, want ~%v", i, ratio, f)
		}
	}
	if tr.Slowdown() < 100 {
		t.Errorf("slowdown %v too small for f=2 with 20 T gates", tr.Slowdown())
	}
}

func TestWallEqualsComputeWithoutTGates(t *testing.T) {
	m := Model{SyndromeCycleNs: 400, DecodeNs: 4000}
	tr, err := m.Execute(prog(nil, 50))
	if err != nil {
		t.Fatal(err)
	}
	if tr.WallNs != tr.ComputeNs || tr.IdleNs != 0 {
		t.Errorf("no-T program stalled: %+v", tr)
	}
	if tr.Slowdown() != 1 {
		t.Errorf("slowdown = %v", tr.Slowdown())
	}
	// Backlog still accumulates silently.
	if tr.MaxBacklog < 40 {
		t.Errorf("max backlog = %v", tr.MaxBacklog)
	}
}

func TestEmptyProgram(t *testing.T) {
	m := Model{SyndromeCycleNs: 400, DecodeNs: 100}
	tr, err := m.Execute(nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Slowdown() != 1 || tr.WallNs != 0 {
		t.Errorf("empty program trace: %+v", tr)
	}
}

func TestCyclesPerGate(t *testing.T) {
	m1 := Model{SyndromeCycleNs: 400, DecodeNs: 100, CyclesPerGate: 1}
	m5 := Model{SyndromeCycleNs: 400, DecodeNs: 100, CyclesPerGate: 5}
	p := prog([]int{9}, 10)
	t1, _ := m1.Execute(p)
	t5, _ := m5.Execute(p)
	if t5.ComputeNs != 5*t1.ComputeNs {
		t.Errorf("cycles per gate not honored: %v vs %v", t5.ComputeNs, t1.ComputeNs)
	}
}

func TestProgramExtraction(t *testing.T) {
	ad, err := qprog.Cuccaro(3)
	if err != nil {
		t.Fatal(err)
	}
	dec := ad.Circuit.Decompose()
	isT := Program(dec)
	count := 0
	for _, b := range isT {
		if b {
			count++
		}
	}
	if count != dec.Stats().TGates {
		t.Errorf("Program found %d T gates, stats say %d", count, dec.Stats().TGates)
	}
}

// Fig. 6 shape: wall time explodes past ratio 1 and stays flat below it.
func TestSweepShape(t *testing.T) {
	var tPos []int
	for i := 4; i < 300; i += 5 {
		tPos = append(tPos, i)
	}
	p := prog(tPos, 300)
	pts, err := Sweep(p, 400, []float64{0.25, 0.5, 0.9, 1.1, 1.5, 2.0})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i+1 < len(pts); i++ {
		if pts[i+1].WallNs < pts[i].WallNs {
			t.Errorf("wall time not monotone in ratio at %v", pts[i+1].Ratio)
		}
	}
	if pts[2].Slowdown > 1.5 {
		t.Errorf("slowdown below ratio 1 = %v", pts[2].Slowdown)
	}
	if pts[5].Slowdown < 1e6 {
		t.Errorf("slowdown at ratio 2 = %v, want astronomically large", pts[5].Slowdown)
	}
	if math.IsNaN(pts[5].Slowdown) {
		t.Error("NaN slowdown")
	}
}

// ModelForDecodes must take the worst observed mesh round, but never go
// below the caller's floor (the paper's 20 ns bound).
func TestModelForDecodes(t *testing.T) {
	m := ModelForDecodes(400, 20, nil)
	if m.DecodeNs != 20 || m.SyndromeCycleNs != 400 {
		t.Errorf("empty samples: got %+v, want floor 20 over 400", m)
	}
	// 200 cycles ≈ 32.5 ns at 162.72 ps/cycle — above the floor.
	samples := []sfq.Stats{{Cycles: 10}, {Cycles: 200}, {Cycles: 40}}
	m = ModelForDecodes(400, 20, samples)
	want := samples[1].TimeNs()
	if m.DecodeNs != want {
		t.Errorf("DecodeNs = %v, want worst sample %v", m.DecodeNs, want)
	}
	// All samples under the floor: the floor wins.
	m = ModelForDecodes(400, 20, samples[:1])
	if m.DecodeNs != 20 {
		t.Errorf("DecodeNs = %v, want floor 20", m.DecodeNs)
	}
}
