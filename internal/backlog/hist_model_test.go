package backlog_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/backlog"
	"repro/internal/lattice"
	"repro/internal/obs"
	"repro/internal/sfq"
)

const cycleNs = sfq.CycleTimePs / 1000

// leq is a ≤ with relative float tolerance: when a sample set is a
// point mass, mean and max coincide and the two constructors differ
// only in float association order (one ulp, amplified through the
// exponential backlog recurrence).
func leq(a, b float64) bool { return a <= b*(1+1e-9)+1e-12 }

// histAndStats builds the histogram view and the sample-slice view of
// one set of cycle counts, so the two Model constructors see identical
// measurements.
func histAndStats(cycles []uint16) (obs.Snapshot, []sfq.Stats) {
	h := obs.NewHistogram()
	stats := make([]sfq.Stats, len(cycles))
	for i, c := range cycles {
		h.Observe(uint64(c))
		stats[i] = sfq.Stats{Cycles: int(c)}
	}
	return h.Snapshot(), stats
}

// The distribution-aware model must lower-bound the worst-case model on
// any sample set (mean ≤ max), and the resulting wall-clock estimate is
// therefore never more pessimistic.
func TestHistogramModelLowerBoundsWorstCase(t *testing.T) {
	isT := make([]bool, 400)
	for i := range isT {
		isT[i] = i%3 == 0
	}
	f := func(cycles []uint16, tGenScaled uint16, floorScaled uint8) bool {
		tGen := 10 + float64(tGenScaled%990) // 10–1000 ns
		floor := float64(floorScaled % 50)   // 0–50 ns
		snap, stats := histAndStats(cycles)
		hm := backlog.ModelForHistogram(tGen, floor, cycleNs, snap)
		wm := backlog.ModelForDecodes(tGen, floor, stats)
		if !leq(hm.DecodeNs, wm.DecodeNs) {
			return false
		}
		ht, err1 := hm.Execute(isT)
		wt, err2 := wm.Execute(isT)
		if err1 != nil || err2 != nil {
			return false
		}
		return leq(ht.WallNs, wt.WallNs) && leq(ht.Slowdown(), wt.Slowdown())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// For a point-mass distribution (every decode takes the same time) the
// mean IS the max, so the two constructors must coincide exactly.
func TestHistogramModelPointMass(t *testing.T) {
	f := func(cycle uint16, n uint8, floorScaled uint8) bool {
		count := int(n)%64 + 1
		cycles := make([]uint16, count)
		for i := range cycles {
			cycles[i] = cycle
		}
		floor := float64(floorScaled % 50)
		snap, stats := histAndStats(cycles)
		hm := backlog.ModelForHistogram(400, floor, cycleNs, snap)
		wm := backlog.ModelForDecodes(400, floor, stats)
		// mean == max for a point mass; the two constructors may differ
		// only by float association ((c·ps)/1000 vs c·(ps/1000)).
		return hm.SyndromeCycleNs == wm.SyndromeCycleNs &&
			math.Abs(hm.DecodeNs-wm.DecodeNs) <= 1e-12*wm.DecodeNs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// An empty histogram falls back to the floor, exactly like
// ModelForDecodes with no samples.
func TestHistogramModelEmpty(t *testing.T) {
	hm := backlog.ModelForHistogram(400, 20, cycleNs, obs.NewHistogram().Snapshot())
	wm := backlog.ModelForDecodes(400, 20, nil)
	if hm != wm || hm.DecodeNs != 20 {
		t.Fatalf("empty-sample models diverge: %+v vs %+v", hm, wm)
	}
}

// Closing the loop on a real measured distribution: decode random d = 9
// syndromes on the final SFQ mesh, feed the measured cycles-to-solution
// histogram (Fig. 10(c)) into the backlog model, and check that it
// strictly tightens the worst-case wall-clock estimate of Fig. 5/6 once
// the distribution actually has spread above the floor.
func TestHistogramModelTightensMeasuredD9(t *testing.T) {
	const (
		d       = 9
		trials  = 60
		p       = 0.02
		floorNs = 2.0 // well below the measured cycles so the data governs
		tGenNs  = 10.0
	)
	g := lattice.MustNew(d).MatchingGraph(lattice.XErrors)
	m := sfq.New(g, sfq.Final)
	rng := rand.New(rand.NewSource(42))
	h := obs.NewHistogram()
	var stats []sfq.Stats
	syn := make([]bool, g.NumChecks())
	for i := 0; i < trials; i++ {
		any := false
		for j := range syn {
			syn[j] = rng.Float64() < p
			any = any || syn[j]
		}
		if !any {
			syn[rng.Intn(len(syn))] = true
		}
		if _, st, err := m.DecodeWithStats(syn); err != nil {
			t.Fatal(err)
		} else {
			h.Observe(uint64(st.Cycles))
			stats = append(stats, st)
		}
	}
	snap := h.Snapshot()
	if snap.Max == snap.Min {
		t.Fatalf("degenerate measured distribution (all decodes took %d cycles)", snap.Max)
	}
	hm := backlog.ModelForHistogram(tGenNs, floorNs, cycleNs, snap)
	wm := backlog.ModelForDecodes(tGenNs, floorNs, stats)
	if hm.DecodeNs >= wm.DecodeNs {
		t.Fatalf("histogram model (%.2f ns) does not tighten worst case (%.2f ns)", hm.DecodeNs, wm.DecodeNs)
	}
	isT := make([]bool, 300)
	for i := range isT {
		isT[i] = i%2 == 0
	}
	ht, err := hm.Execute(isT)
	if err != nil {
		t.Fatal(err)
	}
	wt, err := wm.Execute(isT)
	if err != nil {
		t.Fatal(err)
	}
	if ht.WallNs >= wt.WallNs {
		t.Fatalf("wall estimate not tightened: hist %.0f ns vs worst %.0f ns", ht.WallNs, wt.WallNs)
	}
	t.Logf("d=%d measured: mean %.1f cycles, max %d cycles; slowdown %.2f (hist) vs %.2f (worst-case)",
		d, snap.Mean(), snap.Max, ht.Slowdown(), wt.Slowdown())
}
