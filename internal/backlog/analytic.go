package backlog

import "math"

// Analytic closed forms of the §III backlog argument, used to cross-
// check the discrete-event simulation: with processing ratio f > 1 and
// T gates every g syndrome rounds, the backlog entering the k-th T gate
// is B_k ≈ g(1−1/f)·(f^k −1)/(f−1) rounds, each stall costs B_k·f
// rounds of wall clock, and the total slowdown is exponential in k.

// PredictedStallRounds returns the model's stall duration (in syndrome
// rounds) at the k-th T gate (1-indexed) for ratio f and gap g rounds
// between T gates.
func PredictedStallRounds(f float64, g float64, k int) float64 {
	if f <= 1 {
		return 0
	}
	// Recurrence: B_1 = g(1−1/f); B_{k+1} = f·B_k + g(1−1/f).
	// Closed form: B_k = g(1−1/f)(f^k−1)/(f−1). The stall converts the
	// backlog to wall time at f rounds per round.
	bk := g * (1 - 1/f) * (math.Pow(f, float64(k)) - 1) / (f - 1)
	return bk * f
}

// PredictedLog10Slowdown returns log10 of the end-to-end slowdown for a
// program of k T gates spaced g rounds apart at ratio f (1 when f <= 1).
func PredictedLog10Slowdown(f float64, g float64, k int) float64 {
	if f <= 1 || k == 0 {
		return 0
	}
	compute := g * float64(k)
	// Total idle = Σ stalls; dominated by the last one. Sum the
	// geometric series exactly in log space.
	// Σ_k B_k·f = g(f−1+...)·... — accumulate directly; k is small
	// enough in every use here that a loop in log space is simplest.
	logIdle := math.Inf(-1)
	for i := 1; i <= k; i++ {
		s := PredictedStallRounds(f, g, i)
		if s > 0 {
			logIdle = logAdd10(logIdle, math.Log10(s))
		}
	}
	logWall := logAdd10(math.Log10(compute), logIdle)
	return logWall - math.Log10(compute)
}

// logAdd10 returns log10(10^a + 10^b) stably.
func logAdd10(a, b float64) float64 {
	if math.IsInf(a, -1) {
		return b
	}
	if math.IsInf(b, -1) {
		return a
	}
	if a < b {
		a, b = b, a
	}
	return a + math.Log10(1+math.Pow(10, b-a))
}
