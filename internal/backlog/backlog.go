// Package backlog implements the decoding-backlog execution-time model
// of §III: T gates cannot execute until every syndrome round generated
// so far has been decoded, so a decoder slower than syndrome generation
// (f = rgen/rproc > 1) stalls the machine, and the data generated during
// each stall compounds — wall-clock overhead exponential in the number
// of T gates (Fig. 5), which makes computation intractable for any
// processing ratio above one (Fig. 6).
package backlog

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/qprog"
	"repro/internal/sfq"
)

// Model fixes the machine's timing parameters.
type Model struct {
	// SyndromeCycleNs is the syndrome generation cycle time tGen
	// (160–800 ns for superconducting devices; the paper's examples use
	// 400 ns).
	SyndromeCycleNs float64
	// DecodeNs is the decoder's time to process one syndrome round.
	DecodeNs float64
	// CyclesPerGate is the number of syndrome rounds each logical gate
	// spans; 1 if unset.
	CyclesPerGate float64
}

// Ratio returns f = rgen/rproc = DecodeNs / SyndromeCycleNs.
func (m Model) Ratio() float64 { return m.DecodeNs / m.SyndromeCycleNs }

// ModelForDecodes builds a Model whose decode latency is the worst
// observed SFQ mesh round across the given samples, floored at floorNs
// (callers pass the paper's 20 ns worst-case bound so an empty or
// easy sample set still yields the pessimistic online model).
func ModelForDecodes(syndromeCycleNs, floorNs float64, decodes []sfq.Stats) Model {
	worst := floorNs
	for _, st := range decodes {
		if t := st.TimeNs(); t > worst {
			worst = t
		}
	}
	return Model{SyndromeCycleNs: syndromeCycleNs, DecodeNs: worst}
}

// ModelForHistogram builds a Model from a measured decode-latency
// distribution (the Fig. 10(c) cycles-to-solution histograms the
// telemetry layer collects), rather than the single worst sample
// ModelForDecodes pins to.
//
// The backlog recurrence of §III only sees the decoder through the time
// it takes to drain n queued rounds, which for large n concentrates at
// n times the per-round mean (the drain is an n-fold convolution of the
// per-decode distribution; its relative spread shrinks as 1/√n). The
// steady-state model therefore uses the distribution's exact mean — the
// histogram tracks the value sum outside its buckets, so no bucketing
// error enters — floored at floorNs, the same pessimistic floor the
// worst-case constructor applies.
//
// unitNs converts one histogram unit to nanoseconds: pass
// sfq.CycleTimePs/1000 for the sfq_decode_cycles_d* histograms (units
// of mesh cycles) or 1 for wall-clock nanosecond histograms.
//
// Since mean ≤ max, the resulting DecodeNs never exceeds
// ModelForDecodes built from the same samples, and the two coincide for
// a point-mass distribution — both properties are pinned by the
// property suite in hist_model_test.go.
func ModelForHistogram(syndromeCycleNs, floorNs, unitNs float64, snap obs.Snapshot) Model {
	d := floorNs
	if snap.Count > 0 {
		if t := snap.Mean() * unitNs; t > d {
			d = t
		}
	}
	return Model{SyndromeCycleNs: syndromeCycleNs, DecodeNs: d}
}

// TracePoint records the wall clock at one T gate (the dots on Fig. 5).
type TracePoint struct {
	ComputeNs float64 // backlog-free time at which the T gate was reached
	WallNs    float64 // actual wall clock after draining the backlog
	StallNs   float64 // idle time spent draining
}

// Trace is the result of executing one program against the model.
type Trace struct {
	GateCount  int
	TGateCount int
	ComputeNs  float64 // gates × cycle time: the no-backlog execution time
	WallNs     float64 // actual wall-clock time
	IdleNs     float64 // total stall time
	MaxBacklog float64 // largest backlog (in syndrome rounds) ever queued
	Points     []TracePoint
}

// Slowdown returns wall / compute.
func (t Trace) Slowdown() float64 {
	if t.ComputeNs == 0 {
		return 1
	}
	return t.WallNs / t.ComputeNs
}

// validate checks the model parameters.
func (m Model) validate() error {
	if m.SyndromeCycleNs <= 0 {
		return fmt.Errorf("backlog: syndrome cycle must be positive, got %v", m.SyndromeCycleNs)
	}
	if m.DecodeNs < 0 {
		return fmt.Errorf("backlog: decode time must be non-negative, got %v", m.DecodeNs)
	}
	return nil
}

// Execute runs a program — a sequence of gates, true marking T gates —
// through the timing model. Decoding proceeds concurrently with
// execution; at every T gate the machine stalls until all syndrome
// rounds generated before the gate are decoded, and rounds generated
// during the stall join the next epoch's backlog.
func (m Model) Execute(isT []bool) (Trace, error) {
	if err := m.validate(); err != nil {
		return Trace{}, err
	}
	cpg := m.CyclesPerGate
	if cpg == 0 {
		cpg = 1
	}
	var tr Trace
	tr.GateCount = len(isT)
	backlog := 0.0 // undecoded syndrome rounds
	for _, t := range isT {
		// The gate occupies cpg syndrome rounds; the decoder drains
		// concurrently at one round per DecodeNs.
		gateNs := cpg * m.SyndromeCycleNs
		tr.ComputeNs += gateNs
		tr.WallNs += gateNs
		backlog += cpg
		if m.DecodeNs > 0 {
			backlog -= gateNs / m.DecodeNs
		} else {
			backlog = 0
		}
		if backlog < 0 {
			backlog = 0
		}
		if backlog > tr.MaxBacklog {
			tr.MaxBacklog = backlog
		}
		if !t {
			continue
		}
		tr.TGateCount++
		// Drain: the accumulated rounds take backlog × DecodeNs to
		// process; rounds generated while stalled become the next
		// backlog.
		stall := backlog * m.DecodeNs
		tr.WallNs += stall
		tr.IdleNs += stall
		backlog = stall / m.SyndromeCycleNs
		if backlog > tr.MaxBacklog {
			tr.MaxBacklog = backlog
		}
		tr.Points = append(tr.Points, TracePoint{
			ComputeNs: tr.ComputeNs,
			WallNs:    tr.WallNs,
			StallNs:   stall,
		})
	}
	return tr, nil
}

// Program extracts the T-gate profile of a Clifford+T circuit.
func Program(c *qprog.Circuit) []bool {
	isT := make([]bool, len(c.Gates))
	for i, g := range c.Gates {
		isT[i] = g.Kind == qprog.T || g.Kind == qprog.Tdg
	}
	return isT
}

// SweepPoint is one x/y sample of Fig. 6.
type SweepPoint struct {
	Ratio    float64 // rgen/rproc
	WallNs   float64
	Slowdown float64
}

// Sweep evaluates a program's wall-clock time across decoder processing
// ratios (Fig. 6's x-axis), holding the syndrome cycle fixed.
func Sweep(isT []bool, syndromeCycleNs float64, ratios []float64) ([]SweepPoint, error) {
	var out []SweepPoint
	for _, f := range ratios {
		m := Model{SyndromeCycleNs: syndromeCycleNs, DecodeNs: f * syndromeCycleNs}
		tr, err := m.Execute(isT)
		if err != nil {
			return nil, err
		}
		out = append(out, SweepPoint{Ratio: f, WallNs: tr.WallNs, Slowdown: tr.Slowdown()})
	}
	return out, nil
}
