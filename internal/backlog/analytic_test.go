package backlog

import (
	"math"
	"testing"
)

// The discrete-event simulation must agree with the closed-form §III
// model: stall-by-stall and in total slowdown.
func TestAnalyticMatchesSimulation(t *testing.T) {
	const (
		f = 1.8
		g = 12 // gates between T gates
		k = 18 // T gates
	)
	m := Model{SyndromeCycleNs: 400, DecodeNs: f * 400}
	isT := make([]bool, g*k)
	for i := g - 1; i < g*k; i += g {
		isT[i] = true
	}
	tr, err := m.Execute(isT)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Points) != k {
		t.Fatalf("%d trace points", len(tr.Points))
	}
	for i, pt := range tr.Points {
		wantRounds := PredictedStallRounds(f, g, i+1)
		gotRounds := pt.StallNs / m.SyndromeCycleNs
		if wantRounds == 0 {
			continue
		}
		rel := math.Abs(gotRounds-wantRounds) / wantRounds
		if rel > 0.02 {
			t.Errorf("T gate %d: stall %.1f rounds, model %.1f (rel %.3f)",
				i+1, gotRounds, wantRounds, rel)
		}
	}
	gotLog := math.Log10(tr.Slowdown())
	wantLog := PredictedLog10Slowdown(f, g, k)
	if math.Abs(gotLog-wantLog) > 0.05 {
		t.Errorf("log10 slowdown %.3f, model %.3f", gotLog, wantLog)
	}
}

func TestPredictedZeroBelowUnity(t *testing.T) {
	if PredictedStallRounds(0.8, 10, 5) != 0 {
		t.Error("sub-unity ratio predicted a stall")
	}
	if PredictedLog10Slowdown(1.0, 10, 5) != 0 {
		t.Error("ratio 1 predicted slowdown")
	}
	if PredictedLog10Slowdown(2, 10, 0) != 0 {
		t.Error("zero T gates predicted slowdown")
	}
}

// The model's defining property: stalls grow geometrically with
// factor f.
func TestPredictedGeometricGrowth(t *testing.T) {
	const f = 1.5
	for k := 3; k < 12; k++ {
		ratio := PredictedStallRounds(f, 7, k+1) / PredictedStallRounds(f, 7, k)
		if ratio <= 1 || ratio > f+0.5 {
			t.Errorf("k=%d growth ratio %.3f", k, ratio)
		}
		if k > 8 && math.Abs(ratio-f) > 0.05 {
			t.Errorf("k=%d asymptotic ratio %.3f, want ~%v", k, ratio, f)
		}
	}
}
