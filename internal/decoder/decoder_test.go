package decoder_test

import (
	"testing"

	"repro/internal/decoder"
	"repro/internal/lattice"
	"repro/internal/pauli"
)

func TestCorrectionSupportCancelling(t *testing.T) {
	c := decoder.Correction{Qubits: []int{3, 1, 3, 2, 1, 3}}
	sup := c.Support()
	want := []int{2, 3}
	if len(sup) != len(want) {
		t.Fatalf("Support=%v want %v", sup, want)
	}
	for i := range want {
		if sup[i] != want[i] {
			t.Fatalf("Support=%v want %v", sup, want)
		}
	}
	if c.Weight() != 2 {
		t.Errorf("Weight=%d want 2", c.Weight())
	}
}

func TestCorrectionFrame(t *testing.T) {
	l := lattice.MustNew(3)
	q := l.QubitIndex(lattice.Site{Row: 0, Col: 0})
	c := decoder.Correction{Qubits: []int{q, q, q}}
	f := c.Frame(l, lattice.ZErrors)
	if f.Get(q) != pauli.Z {
		t.Errorf("Z frame op = %v", f.Get(q))
	}
	f = c.Frame(l, lattice.XErrors)
	if f.Get(q) != pauli.X {
		t.Errorf("X frame op = %v", f.Get(q))
	}
	if f.Weight() != 1 {
		t.Errorf("triple application did not cancel to weight 1: %d", f.Weight())
	}
}

func TestValidateDetectsBadCorrection(t *testing.T) {
	l := lattice.MustNew(3)
	g := l.MatchingGraph(lattice.ZErrors)
	syn := make([]bool, g.NumChecks())
	// Empty syndrome, empty correction: valid.
	if err := decoder.Validate(g, syn, decoder.Correction{}); err != nil {
		t.Errorf("empty case invalid: %v", err)
	}
	// A stray single-qubit correction creates hot checks: invalid.
	q := l.QubitIndex(lattice.Site{Row: 1, Col: 1})
	if err := decoder.Validate(g, syn, decoder.Correction{Qubits: []int{q}}); err == nil {
		t.Error("Validate accepted syndrome-changing correction")
	}
}

func TestMatchingCorrectionAndWeight(t *testing.T) {
	l := lattice.MustNew(5)
	g := l.MatchingGraph(lattice.ZErrors)
	i, _ := g.CheckIndex(lattice.Site{Row: 0, Col: 1})
	j, _ := g.CheckIndex(lattice.Site{Row: 0, Col: 5})
	k, _ := g.CheckIndex(lattice.Site{Row: 4, Col: 7})
	m := decoder.Matching{Pairs: [][2]int{{i, j}}, Boundary: []int{k}}
	if got, want := m.Weight(g), g.Dist(i, j)+g.BoundaryDist(k); got != want {
		t.Errorf("Weight=%d want %d", got, want)
	}
	c := m.Correction(g)
	syn := make([]bool, g.NumChecks())
	syn[i], syn[j], syn[k] = true, true, true
	if err := decoder.Validate(g, syn, c); err != nil {
		t.Errorf("matching correction invalid: %v", err)
	}
}

func TestMatchingCovers(t *testing.T) {
	syn := []bool{true, true, false, true}
	good := decoder.Matching{Pairs: [][2]int{{0, 1}}, Boundary: []int{3}}
	if err := good.Covers(syn); err != nil {
		t.Errorf("good matching rejected: %v", err)
	}
	double := decoder.Matching{Pairs: [][2]int{{0, 1}}, Boundary: []int{1, 3}}
	if err := double.Covers(syn); err == nil {
		t.Error("double-matched check accepted")
	}
	cold := decoder.Matching{Pairs: [][2]int{{0, 2}}, Boundary: []int{1, 3}}
	if err := cold.Covers(syn); err == nil {
		t.Error("cold-matched check accepted")
	}
	missing := decoder.Matching{Pairs: [][2]int{{0, 1}}}
	if err := missing.Covers(syn); err == nil {
		t.Error("unmatched hot check accepted")
	}
}
