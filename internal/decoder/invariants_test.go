package decoder_test

import (
	"math/rand"
	"testing"

	"repro/internal/decoder"
	"repro/internal/decoder/greedy"
	"repro/internal/decoder/mwpm"
	"repro/internal/decoder/unionfind"
	"repro/internal/lattice"
	"repro/internal/noise"
	"repro/internal/pauli"
)

// randomSyndrome injects i.i.d. errors at rate p and returns the
// resulting syndrome.
func randomSyndrome(rng *rand.Rand, l *lattice.Lattice, g *lattice.Graph, p float64) []bool {
	op := pauli.Z
	if g.ErrorType() == lattice.XErrors {
		op = pauli.X
	}
	f := pauli.NewFrame(l.NumQubits())
	for _, s := range l.DataSites() {
		if rng.Float64() < p {
			f.Apply(l.QubitIndex(s), op)
		}
	}
	return g.Syndrome(f)
}

// The fundamental decoder invariant: every decoder's correction must
// reproduce the observed syndrome exactly, for every distance, error
// type and a wide range of error rates.
func TestAllDecodersClearSyndrome(t *testing.T) {
	decoders := []decoder.Decoder{greedy.New(), mwpm.New(), unionfind.New()}
	rng := noise.NewRand(17)
	for _, d := range []int{3, 5, 7, 9} {
		l := lattice.MustNew(d)
		for _, e := range []lattice.ErrorType{lattice.ZErrors, lattice.XErrors} {
			g := l.MatchingGraph(e)
			for _, p := range []float64{0.01, 0.05, 0.15, 0.3} {
				for trial := 0; trial < 25; trial++ {
					syn := randomSyndrome(rng, l, g, p)
					for _, dec := range decoders {
						c, err := dec.Decode(g, syn)
						if err != nil {
							t.Fatalf("%s d=%d %v p=%v: %v", dec.Name(), d, e, p, err)
						}
						if err := decoder.Validate(g, syn, c); err != nil {
							t.Fatalf("%s d=%d %v p=%v: %v", dec.Name(), d, e, p, err)
						}
					}
				}
			}
		}
	}
}

// MWPM must never produce a heavier matching than greedy (it is exact),
// and both matchings must cover the syndrome. (Greedy's classical
// 2-approximation guarantee is in likelihood weight, not chain length,
// so no multiplicative distance bound is asserted here.)
func TestGreedyNeverBeatsMWPM(t *testing.T) {
	gr, mw := greedy.New(), mwpm.New()
	rng := noise.NewRand(23)
	for _, d := range []int{3, 5, 7} {
		l := lattice.MustNew(d)
		g := l.MatchingGraph(lattice.ZErrors)
		for trial := 0; trial < 200; trial++ {
			syn := randomSyndrome(rng, l, g, 0.08)
			mg := gr.Match(g, syn)
			mm := mw.Match(g, syn)
			if err := mg.Covers(syn); err != nil {
				t.Fatalf("greedy matching does not cover: %v", err)
			}
			if err := mm.Covers(syn); err != nil {
				t.Fatalf("mwpm matching does not cover: %v", err)
			}
			wg, wm := mg.Weight(g), mm.Weight(g)
			if wm > wg {
				t.Fatalf("d=%d mwpm weight %d > greedy %d", d, wm, wg)
			}
		}
	}
}

// MWPM optimality cross-check: for tiny syndromes the optimal matching
// weight can be brute forced over all pairings.
func TestMWPMOptimalSmall(t *testing.T) {
	mw := mwpm.New()
	rng := noise.NewRand(29)
	l := lattice.MustNew(5)
	g := l.MatchingGraph(lattice.ZErrors)
	var bestWeight func(hot []int) int
	bestWeight = func(hot []int) int {
		if len(hot) == 0 {
			return 0
		}
		h := hot[0]
		rest := hot[1:]
		best := g.BoundaryDist(h) + bestWeight(rest)
		for i, other := range rest {
			sub := make([]int, 0, len(rest)-1)
			sub = append(sub, rest[:i]...)
			sub = append(sub, rest[i+1:]...)
			if w := g.Dist(h, other) + bestWeight(sub); w < best {
				best = w
			}
		}
		return best
	}
	for trial := 0; trial < 60; trial++ {
		syn := randomSyndrome(rng, l, g, 0.05)
		hot := lattice.HotChecks(syn)
		if len(hot) > 8 {
			continue
		}
		m := mw.Match(g, syn)
		if got, want := m.Weight(g), bestWeight(hot); got != want {
			t.Fatalf("trial %d: mwpm weight %d, optimal %d (hot=%v)", trial, got, want, hot)
		}
	}
}

// Single-error syndromes must be corrected perfectly by every decoder:
// the residual (error + correction) must be stabilizer-trivial AND not a
// logical operator.
func TestSingleErrorsCorrectedExactly(t *testing.T) {
	decoders := []decoder.Decoder{greedy.New(), mwpm.New(), unionfind.New()}
	for _, d := range []int{3, 5} {
		l := lattice.MustNew(d)
		g := l.MatchingGraph(lattice.ZErrors)
		cut := l.LogicalCutSupport(lattice.ZErrors)
		for _, s := range l.DataSites() {
			f := pauli.NewFrame(l.NumQubits())
			f.Set(l.QubitIndex(s), pauli.Z)
			syn := g.Syndrome(f)
			for _, dec := range decoders {
				c, err := dec.Decode(g, syn)
				if err != nil {
					t.Fatalf("%s: %v", dec.Name(), err)
				}
				res := f.Clone()
				res.ApplyFrame(c.Frame(l, lattice.ZErrors))
				for i, hot := range g.Syndrome(res) {
					if hot {
						t.Fatalf("%s d=%d error at %v: residual check %d hot", dec.Name(), d, s, i)
					}
				}
				if res.ParityZ(cut) != 0 {
					t.Fatalf("%s d=%d single error at %v became logical", dec.Name(), d, s)
				}
			}
		}
	}
}

// The union-find decoder reports its growth rounds; they must be
// positive when the syndrome is nonempty and zero when it is empty.
func TestUnionFindRounds(t *testing.T) {
	uf := unionfind.New()
	l := lattice.MustNew(5)
	g := l.MatchingGraph(lattice.ZErrors)
	if _, err := uf.Decode(g, make([]bool, g.NumChecks())); err != nil {
		t.Fatal(err)
	}
	if uf.Rounds != 0 {
		t.Errorf("empty syndrome rounds=%d", uf.Rounds)
	}
	f := pauli.NewFrame(l.NumQubits())
	f.Set(l.QubitIndex(lattice.Site{Row: 2, Col: 2}), pauli.Z)
	if _, err := uf.Decode(g, g.Syndrome(f)); err != nil {
		t.Fatal(err)
	}
	if uf.Rounds == 0 {
		t.Error("nonempty syndrome took zero rounds")
	}
}

func TestDecoderNames(t *testing.T) {
	if greedy.New().Name() != "greedy" || mwpm.New().Name() != "mwpm" || unionfind.New().Name() != "union-find" {
		t.Error("decoder names wrong")
	}
}
