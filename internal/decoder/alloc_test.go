package decoder_test

import (
	"testing"

	"repro/internal/decodepool"
	"repro/internal/decoder/greedy"
	"repro/internal/decoder/mld"
	"repro/internal/decoder/mwpm"
	"repro/internal/decoder/unionfind"
	"repro/internal/lattice"
	"repro/internal/noise"
)

// The pooled decode path must reach a zero-allocation steady state: once
// the geometry cache is warm and the scratch has grown to the workload's
// high-water mark, DecodeInto performs no heap allocations. This is the
// regression test behind the PR's allocs/decode numbers; the race
// runtime instruments allocations, so it is skipped under -race.
func TestDecodeIntoZeroAllocSteadyState(t *testing.T) {
	if decodepool.RaceEnabled {
		t.Skip("allocation accounting is not meaningful under -race")
	}
	l := lattice.MustNew(9)
	g := l.MatchingGraph(lattice.ZErrors)
	rng := noise.NewRand(41)
	syns := make([][]bool, 32)
	for i := range syns {
		syns[i] = randomSyndrome(rng, l, g, 0.05)
	}
	for _, dec := range []decodepool.IntoDecoder{greedy.New(), mwpm.New(), unionfind.New()} {
		s := decodepool.NewScratch()
		// Warm up: build geometry, grow every scratch buffer to the
		// workload's high-water mark.
		for _, syn := range syns {
			if _, err := dec.DecodeInto(g, syn, s); err != nil {
				t.Fatalf("%s: warm-up: %v", dec.Name(), err)
			}
		}
		i := 0
		avg := testing.AllocsPerRun(len(syns)*4, func() {
			if _, err := dec.DecodeInto(g, syns[i%len(syns)], s); err != nil {
				t.Fatalf("%s: %v", dec.Name(), err)
			}
			i++
		})
		if avg != 0 {
			t.Errorf("%s d=9: %v allocs per decode in steady state, want 0", dec.Name(), avg)
		}
	}
}

// The exact ML decoder is bounded to tiny codes, so its steady state is
// checked at d=3.
func TestMLDDecodeIntoZeroAllocSteadyState(t *testing.T) {
	if decodepool.RaceEnabled {
		t.Skip("allocation accounting is not meaningful under -race")
	}
	l := lattice.MustNew(3)
	g := l.MatchingGraph(lattice.ZErrors)
	ml, err := mld.New(g, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	rng := noise.NewRand(43)
	syns := make([][]bool, 32)
	for i := range syns {
		syns[i] = randomSyndrome(rng, l, g, 0.05)
	}
	s := decodepool.NewScratch()
	for _, syn := range syns {
		if _, err := ml.DecodeInto(g, syn, s); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	avg := testing.AllocsPerRun(len(syns)*4, func() {
		if _, err := ml.DecodeInto(g, syns[i%len(syns)], s); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if avg != 0 {
		t.Errorf("ml-exact d=3: %v allocs per decode in steady state, want 0", avg)
	}
}
