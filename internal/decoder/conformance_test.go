package decoder_test

import (
	"testing"

	"repro/internal/decodepool"
	"repro/internal/decoder"
	"repro/internal/decoder/greedy"
	"repro/internal/decoder/mld"
	"repro/internal/decoder/mwpm"
	"repro/internal/decoder/unionfind"
	"repro/internal/lattice"
	"repro/internal/noise"
	"repro/internal/pauli"
)

// conformanceSyndromes enumerates every weight-0, weight-1 and weight-2
// error pattern of the lattice plus seeded random syndromes, giving the
// differential suite deterministic, exhaustive low-weight coverage and
// some high-weight stress.
func conformanceSyndromes(t *testing.T, l *lattice.Lattice, g *lattice.Graph) [][]bool {
	t.Helper()
	op := pauli.Z
	if g.ErrorType() == lattice.XErrors {
		op = pauli.X
	}
	sites := l.DataSites()
	var syns [][]bool
	syns = append(syns, make([]bool, g.NumChecks())) // weight 0
	for a := 0; a < len(sites); a++ {
		f := pauli.NewFrame(l.NumQubits())
		f.Set(l.QubitIndex(sites[a]), op)
		syns = append(syns, g.Syndrome(f))
		for b := a + 1; b < len(sites); b++ {
			f2 := pauli.NewFrame(l.NumQubits())
			f2.Set(l.QubitIndex(sites[a]), op)
			f2.Set(l.QubitIndex(sites[b]), op)
			syns = append(syns, g.Syndrome(f2))
		}
	}
	rng := noise.NewRand(int64(31 + l.Distance()))
	for trial := 0; trial < 50; trial++ {
		syns = append(syns, randomSyndrome(rng, l, g, 0.08))
	}
	return syns
}

// Every decoder must clear every conformance syndrome, and the pooled
// DecodeInto path must return exactly the qubit sequence the legacy
// Decode path returns — on a fresh scratch and on one reused across all
// cases.
func TestConformancePooledMatchesLegacy(t *testing.T) {
	for _, d := range []int{3, 5} {
		l := lattice.MustNew(d)
		for _, e := range []lattice.ErrorType{lattice.ZErrors, lattice.XErrors} {
			g := l.MatchingGraph(e)
			decoders := []decodepool.IntoDecoder{greedy.New(), mwpm.New(), unionfind.New()}
			if l.NumData() <= mld.MaxDataQubits {
				ml, err := mld.New(g, 0.01)
				if err != nil {
					t.Fatal(err)
				}
				decoders = append(decoders, ml)
			}
			syns := conformanceSyndromes(t, l, g)
			reused := decodepool.NewScratch()
			for _, dec := range decoders {
				for si, syn := range syns {
					legacy, err := dec.Decode(g, syn)
					if err != nil {
						t.Fatalf("%s d=%d %v syn %d: legacy: %v", dec.Name(), d, e, si, err)
					}
					if err := decoder.Validate(g, syn, legacy); err != nil {
						t.Fatalf("%s d=%d %v syn %d: legacy correction invalid: %v", dec.Name(), d, e, si, err)
					}
					pooled, err := dec.DecodeInto(g, syn, reused)
					if err != nil {
						t.Fatalf("%s d=%d %v syn %d: pooled: %v", dec.Name(), d, e, si, err)
					}
					if !sameQubits(legacy.Qubits, pooled.Qubits) {
						t.Fatalf("%s d=%d %v syn %d: pooled %v != legacy %v",
							dec.Name(), d, e, si, pooled.Qubits, legacy.Qubits)
					}
					if si%17 == 0 {
						// Fresh scratch must agree too: reuse cannot be
						// load-bearing.
						fresh, err := dec.DecodeInto(g, syn, decodepool.NewScratch())
						if err != nil {
							t.Fatalf("%s d=%d %v syn %d: fresh scratch: %v", dec.Name(), d, e, si, err)
						}
						if !sameQubits(legacy.Qubits, fresh.Qubits) {
							t.Fatalf("%s d=%d %v syn %d: fresh-scratch pooled %v != legacy %v",
								dec.Name(), d, e, si, fresh.Qubits, legacy.Qubits)
						}
					}
				}
			}
		}
	}
}

// The generic dispatcher must route through DecodeInto when given a
// scratch and fall back to the legacy path without one, with identical
// results either way.
func TestConformanceDispatch(t *testing.T) {
	l := lattice.MustNew(5)
	g := l.MatchingGraph(lattice.ZErrors)
	rng := noise.NewRand(37)
	s := decodepool.NewScratch()
	dec := mwpm.New()
	for trial := 0; trial < 20; trial++ {
		syn := randomSyndrome(rng, l, g, 0.08)
		pooled, err := decodepool.Decode(dec, g, syn, s)
		if err != nil {
			t.Fatal(err)
		}
		legacy, err := decodepool.Decode(dec, g, syn, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !sameQubits(pooled.Qubits, legacy.Qubits) {
			t.Fatalf("trial %d: dispatch mismatch %v vs %v", trial, pooled.Qubits, legacy.Qubits)
		}
	}
}

// MWPM is exact: its matching weight must equal the true minimum error
// weight. At d=3 the oracle is the exact ML decoder's minimum-weight
// coset representative (at p=0.01 the lighter coset always dominates);
// at d=5 it is brute force over all pairings.
func TestConformanceMWPMWeightOptimal(t *testing.T) {
	mw := mwpm.New()

	// d=3: every conformance syndrome against the MLD representative.
	l3 := lattice.MustNew(3)
	for _, e := range []lattice.ErrorType{lattice.ZErrors, lattice.XErrors} {
		g := l3.MatchingGraph(e)
		ml, err := mld.New(g, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		for si, syn := range conformanceSyndromes(t, l3, g) {
			m := mw.Match(g, syn)
			c, err := ml.Decode(g, syn)
			if err != nil {
				t.Fatalf("syn %d: mld: %v", si, err)
			}
			if got, want := m.Weight(g), len(c.Qubits); got != want {
				t.Fatalf("d=3 %v syn %d: mwpm weight %d, ml minimum %d", e, si, got, want)
			}
		}
	}

	// d=5: small syndromes against brute-force optimal pairing.
	l5 := lattice.MustNew(5)
	g := l5.MatchingGraph(lattice.ZErrors)
	var bestWeight func(hot []int) int
	bestWeight = func(hot []int) int {
		if len(hot) == 0 {
			return 0
		}
		h, rest := hot[0], hot[1:]
		best := g.BoundaryDist(h) + bestWeight(rest)
		for i, other := range rest {
			sub := make([]int, 0, len(rest)-1)
			sub = append(sub, rest[:i]...)
			sub = append(sub, rest[i+1:]...)
			if w := g.Dist(h, other) + bestWeight(sub); w < best {
				best = w
			}
		}
		return best
	}
	for si, syn := range conformanceSyndromes(t, l5, g) {
		hot := lattice.HotChecks(syn)
		if len(hot) > 8 {
			continue
		}
		if got, want := mw.Match(g, syn).Weight(g), bestWeight(hot); got != want {
			t.Fatalf("d=5 syn %d: mwpm weight %d, brute-force optimum %d (hot=%v)", si, got, want, hot)
		}
	}
}

// sameQubits compares correction contents; the pooled path may return a
// non-nil empty slice where the legacy path returns nil.
func sameQubits(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
