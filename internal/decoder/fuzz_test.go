package decoder_test

import (
	"testing"

	"repro/internal/decodepool"
	"repro/internal/decoder"
	"repro/internal/decoder/greedy"
	"repro/internal/decoder/mwpm"
	"repro/internal/decoder/unionfind"
	"repro/internal/lattice"
)

// FuzzDecode feeds arbitrary syndrome bit patterns — not just ones
// reachable from i.i.d. errors — to every matching decoder. The planar
// code's boundaries make every syndrome decodable, so each decoder must
// return without error, its correction must clear the syndrome, and the
// pooled DecodeInto path must agree bit-for-bit with the legacy path.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{1, 0xff, 0x0f})
	f.Add([]byte{0, 0xaa})
	f.Add([]byte{1, 0x01, 0x80, 0x42, 0x18})

	graphs := map[int][2]*lattice.Graph{}
	for _, d := range []int{3, 5} {
		l := lattice.MustNew(d)
		graphs[d] = [2]*lattice.Graph{l.MatchingGraph(lattice.ZErrors), l.MatchingGraph(lattice.XErrors)}
	}
	decoders := []decodepool.IntoDecoder{greedy.New(), mwpm.New(), unionfind.New()}
	scratch := decodepool.NewScratch()

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		d := 3
		if data[0]&1 == 1 {
			d = 5
		}
		g := graphs[d][(data[0]>>1)&1]
		data = data[1:]
		syn := make([]bool, g.NumChecks())
		for i := range syn {
			if i/8 < len(data) && data[i/8]&(1<<uint(i%8)) != 0 {
				syn[i] = true
			}
		}
		for _, dec := range decoders {
			legacy, err := dec.Decode(g, syn)
			if err != nil {
				t.Fatalf("%s d=%d: legacy: %v", dec.Name(), d, err)
			}
			if err := decoder.Validate(g, syn, legacy); err != nil {
				t.Fatalf("%s d=%d syn=%v: %v", dec.Name(), d, syn, err)
			}
			pooled, err := dec.DecodeInto(g, syn, scratch)
			if err != nil {
				t.Fatalf("%s d=%d: pooled: %v", dec.Name(), d, err)
			}
			if !sameQubits(legacy.Qubits, pooled.Qubits) {
				t.Fatalf("%s d=%d syn=%v: pooled %v != legacy %v", dec.Name(), d, syn, pooled.Qubits, legacy.Qubits)
			}
		}
	})
}
