package decoder_test

import (
	"testing"

	"repro/internal/decodepool"
	"repro/internal/decoder"
	"repro/internal/decoder/greedy"
	"repro/internal/decoder/mwpm"
	"repro/internal/decoder/unionfind"
	"repro/internal/lattice"
	"repro/internal/noise"
	"repro/internal/obs"
	"repro/internal/sfq"
)

// Attaching telemetry to a scratch must not break the zero-allocation
// steady state: the sampled timing path (histogram Observe + counter
// Add) allocates nothing, both at the default 1-in-16 sampling rate and
// when every single decode is timed.
func TestInstrumentedDecodeIntoZeroAllocSteadyState(t *testing.T) {
	if decodepool.RaceEnabled {
		t.Skip("allocation accounting is not meaningful under -race")
	}
	l := lattice.MustNew(9)
	g := l.MatchingGraph(lattice.ZErrors)
	rng := noise.NewRand(43)
	syns := make([][]bool, 32)
	for i := range syns {
		syns[i] = randomSyndrome(rng, l, g, 0.05)
	}
	for _, every := range []int{0, 1} { // 0 = default 1-in-16; 1 = time every decode
		for _, dec := range []decodepool.IntoDecoder{greedy.New(), mwpm.New(), unionfind.New()} {
			s := decodepool.NewScratch()
			s.Instrument(obs.NewHistogram(), obs.Default().Counter("decoder_test_decodes_total"), every)
			for _, syn := range syns {
				if _, err := dec.DecodeInto(g, syn, s); err != nil {
					t.Fatalf("%s: warm-up: %v", dec.Name(), err)
				}
			}
			i := 0
			avg := testing.AllocsPerRun(len(syns)*4, func() {
				if _, err := dec.DecodeInto(g, syns[i%len(syns)], s); err != nil {
					t.Fatalf("%s: %v", dec.Name(), err)
				}
				i++
			})
			if avg != 0 {
				t.Errorf("%s d=9 every=%d: %v allocs per instrumented decode, want 0", dec.Name(), every, avg)
			}
		}
	}
}

// The batched decode entry point must hold the same zero-allocation
// steady state with telemetry attached, on both of its paths: the
// fallback loop over an IntoDecoder (which samples wall-clock latency
// through the instrumented scratch) and the SWAR batch kernel's native
// path (which records per-lane cycle histograms into its own flushed
// recorder).
func TestInstrumentedBatchDecodeZeroAllocSteadyState(t *testing.T) {
	if decodepool.RaceEnabled {
		t.Skip("allocation accounting is not meaningful under -race")
	}
	l := lattice.MustNew(9)
	g := l.MatchingGraph(lattice.ZErrors)
	rng := noise.NewRand(44)
	syns := make([][]bool, 12)
	for i := range syns {
		syns[i] = randomSyndrome(rng, l, g, 0.05)
	}
	for _, dec := range []decoder.Decoder{greedy.New(), sfq.NewBatch(g, sfq.Final)} {
		s := decodepool.NewScratch()
		s.Instrument(obs.NewHistogram(), obs.Default().Counter("decoder_test_batch_decodes_total"), 1)
		for i := 0; i < 4; i++ { // warm-up grows the arenas to steady state
			if _, err := decodepool.DecodeBatch(dec, g, syns, s); err != nil {
				t.Fatalf("%s: warm-up: %v", dec.Name(), err)
			}
		}
		avg := testing.AllocsPerRun(64, func() {
			if _, err := decodepool.DecodeBatch(dec, g, syns, s); err != nil {
				t.Fatalf("%s: %v", dec.Name(), err)
			}
		})
		if avg != 0 {
			t.Errorf("%s d=9: %v allocs per instrumented batch call, want 0", dec.Name(), avg)
		}
	}
}
