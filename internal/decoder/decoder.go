// Package decoder defines the interface shared by every surface-code
// decoder in this repository — the software greedy reference, the exact
// minimum-weight perfect-matching baseline, the union-find baseline, and
// the SFQ hardware mesh that is the paper's contribution — together with
// helpers for validating and applying corrections.
//
// A decoder consumes the syndrome measured on one matching graph (one
// error type) and produces a correction: a set of data qubits whose
// errors, composed with the true error, clear every check. The
// fundamental decoder invariant, enforced by Validate and exercised by
// property tests across all implementations, is that the returned
// correction produces exactly the observed syndrome.
package decoder

import (
	"fmt"
	"sort"

	"repro/internal/lattice"
	"repro/internal/pauli"
)

// Decoder maps an error syndrome to a correction.
type Decoder interface {
	// Name identifies the decoder in reports and benchmarks.
	Name() string
	// Decode returns the data-qubit indices to correct, given the
	// syndrome vector over g's checks (true = hot). Implementations
	// must return a correction whose syndrome equals syn.
	Decode(g *lattice.Graph, syn []bool) (Correction, error)
}

// Correction is a set of data qubits to flip. Qubit indices may repeat;
// repeats cancel in pairs (Pauli operators are self-inverse).
type Correction struct {
	Qubits []int
}

// Frame renders the correction as a Pauli frame over the whole device,
// using the Pauli operator matching the error type (Z for ZErrors).
func (c Correction) Frame(l *lattice.Lattice, e lattice.ErrorType) *pauli.Frame {
	op := pauli.Z
	if e == lattice.XErrors {
		op = pauli.X
	}
	f := pauli.NewFrame(l.NumQubits())
	for _, q := range c.Qubits {
		f.Apply(q, op)
	}
	return f
}

// Support returns the deduplicated, sorted qubit set after cancelling
// repeated entries in pairs.
func (c Correction) Support() []int {
	count := make(map[int]int)
	for _, q := range c.Qubits {
		count[q]++
	}
	var sup []int
	for q, n := range count {
		if n%2 == 1 {
			sup = append(sup, q)
		}
	}
	sort.Ints(sup)
	return sup
}

// Weight returns the number of qubits in the correction's support.
func (c Correction) Weight() int { return len(c.Support()) }

// Validate checks the fundamental decoder invariant: the correction's
// syndrome equals the input syndrome. It returns a descriptive error on
// the first mismatching check.
func Validate(g *lattice.Graph, syn []bool, c Correction) error {
	f := c.Frame(g.Lattice(), g.ErrorType())
	got := g.Syndrome(f)
	for i := range syn {
		if got[i] != syn[i] {
			return fmt.Errorf("decoder: check %d at %v: correction syndrome %v, want %v",
				i, g.CheckSite(i), got[i], syn[i])
		}
	}
	return nil
}

// Matching is the pairing structure matching-based decoders produce
// before converting to a correction: pairs of checks joined by chains,
// and checks joined to their nearest boundary.
type Matching struct {
	Pairs    [][2]int // paired check indices
	Boundary []int    // checks matched to a boundary
}

// Correction converts a matching into a correction by laying down the
// minimum-length chain for every pair and boundary match.
func (m Matching) Correction(g *lattice.Graph) Correction {
	var c Correction
	for _, p := range m.Pairs {
		c.Qubits = append(c.Qubits, g.PathQubits(p[0], p[1])...)
	}
	for _, i := range m.Boundary {
		c.Qubits = append(c.Qubits, g.BoundaryPathQubits(i)...)
	}
	return c
}

// Weight returns the total chain length of the matching on graph g.
func (m Matching) Weight(g *lattice.Graph) int {
	w := 0
	for _, p := range m.Pairs {
		w += g.Dist(p[0], p[1])
	}
	for _, i := range m.Boundary {
		w += g.BoundaryDist(i)
	}
	return w
}

// Covers reports whether the matching touches every hot check exactly
// once and no cold check.
func (m Matching) Covers(syn []bool) error {
	seen := make(map[int]int)
	for _, p := range m.Pairs {
		seen[p[0]]++
		seen[p[1]]++
	}
	for _, i := range m.Boundary {
		seen[i]++
	}
	for i, hot := range syn {
		switch n := seen[i]; {
		case hot && n != 1:
			return fmt.Errorf("decoder: hot check %d matched %d times", i, n)
		case !hot && n != 0:
			return fmt.Errorf("decoder: cold check %d matched %d times", i, n)
		}
	}
	return nil
}
