package mld

import (
	"testing"

	"repro/internal/decoder"
	"repro/internal/decoder/mwpm"
	"repro/internal/lattice"
	"repro/internal/noise"
	"repro/internal/pauli"
	"repro/internal/surface"
)

func TestNewValidation(t *testing.T) {
	g3 := lattice.MustNew(3).MatchingGraph(lattice.ZErrors)
	if _, err := New(g3, 0); err == nil {
		t.Error("p=0 accepted")
	}
	if _, err := New(g3, 1); err == nil {
		t.Error("p=1 accepted")
	}
	g5 := lattice.MustNew(5).MatchingGraph(lattice.ZErrors)
	if _, err := New(g5, 0.1); err == nil {
		t.Error("41 data qubits accepted for exact enumeration")
	}
}

func TestDecodeClearsAllSyndromes(t *testing.T) {
	l := lattice.MustNew(3)
	g := l.MatchingGraph(lattice.ZErrors)
	d, err := New(g, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name() != "ml-exact" || d.P() != 0.05 {
		t.Error("accessors wrong")
	}
	// Every one of the 2^6 syndromes must decode validly.
	for mask := 0; mask < 1<<6; mask++ {
		syn := make([]bool, g.NumChecks())
		for i := range syn {
			syn[i] = mask&(1<<uint(i)) != 0
		}
		c, err := d.Decode(g, syn)
		if err != nil {
			t.Fatalf("syndrome %b: %v", mask, err)
		}
		if err := decoder.Validate(g, syn, c); err != nil {
			t.Fatalf("syndrome %b: %v", mask, err)
		}
	}
}

func TestCosetProbsNormalize(t *testing.T) {
	l := lattice.MustNew(3)
	g := l.MatchingGraph(lattice.ZErrors)
	d, err := New(g, 0.08)
	if err != nil {
		t.Fatal(err)
	}
	syn := make([]bool, g.NumChecks())
	p0, p1, err := d.CosetProbs(syn)
	if err != nil {
		t.Fatal(err)
	}
	if p0+p1 < 0.999999 || p0+p1 > 1.000001 {
		t.Errorf("coset probs %v + %v != 1", p0, p1)
	}
	// The trivial syndrome at low p overwhelmingly favors "no logical".
	if p0 < 0.99 {
		t.Errorf("trivial syndrome p0 = %v", p0)
	}
	if _, _, err := d.CosetProbs(make([]bool, 3)); err == nil {
		t.Error("wrong-size syndrome accepted")
	}
}

func TestForeignGraphRejected(t *testing.T) {
	l := lattice.MustNew(3)
	g := l.MatchingGraph(lattice.ZErrors)
	other := l.MatchingGraph(lattice.XErrors)
	d, err := New(g, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Decode(other, make([]bool, other.NumChecks())); err == nil {
		t.Error("foreign graph accepted")
	}
}

// Single errors decode exactly (no logical flip) — the ML decoder can
// never be worse than distance-1 correction.
func TestSingleErrorsExact(t *testing.T) {
	l := lattice.MustNew(3)
	g := l.MatchingGraph(lattice.ZErrors)
	d, err := New(g, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	cut := l.LogicalCutSupport(lattice.ZErrors)
	for _, s := range l.DataSites() {
		f := pauli.NewFrame(l.NumQubits())
		f.Set(l.QubitIndex(s), pauli.Z)
		c, err := d.Decode(g, g.Syndrome(f))
		if err != nil {
			t.Fatal(err)
		}
		res := f.Clone()
		res.ApplyFrame(c.Frame(l, lattice.ZErrors))
		if res.ParityZ(cut) != 0 {
			t.Fatalf("single error at %v decoded to a logical flip", s)
		}
	}
}

// The optimality property: over a long lifetime run the exact ML
// decoder's logical error rate is at most MWPM's (up to statistical
// slack), because ML maximizes per-round success exactly.
func TestMLBeatsOrMatchesMWPM(t *testing.T) {
	const p = 0.08
	run := func(dec decoder.Decoder) float64 {
		ch, err := noise.NewDephasing(p)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := surface.New(surface.Config{
			Distance: 3,
			Channel:  ch,
			DecoderZ: dec,
			Seed:     77,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(30000)
		if err != nil {
			t.Fatal(err)
		}
		return res.PL
	}
	g := lattice.MustNew(3).MatchingGraph(lattice.ZErrors)
	ml, err := New(g, p)
	if err != nil {
		t.Fatal(err)
	}
	plML := run(ml)
	plMW := run(mwpm.New())
	// Identical seeds, so the same error streams: ML must not lose by
	// more than binomial noise.
	if plML > plMW*1.05+0.002 {
		t.Errorf("ML PL %v worse than MWPM PL %v", plML, plMW)
	}
	if plML == 0 {
		t.Error("no logical errors at p=0.08; test underpowered")
	}
}
