// Package mld implements exact maximum-likelihood decoding — the
// accuracy ceiling the paper's related work (§IV) attributes to
// tensor-network decoders. For each syndrome the decoder sums the
// probability of every error pattern in each logical coset and corrects
// with the likeliest coset, which is provably optimal for the i.i.d.
// channel. The sum is exact by enumeration, so the decoder is limited
// to small codes (distance 3: 2¹³ patterns per plane); it exists as the
// reference point the approximate decoders are measured against.
package mld

import (
	"fmt"
	"math"

	"repro/internal/decodepool"
	"repro/internal/decoder"
	"repro/internal/lattice"
	"repro/internal/pauli"
)

// MaxDataQubits bounds the exact enumeration.
const MaxDataQubits = 20

// Decoder is the exact ML decoder for one matching graph at one error
// rate. Build it once per (graph, p); Decode is then a table lookup.
type Decoder struct {
	g *lattice.Graph
	p float64

	// class[syndrome][logical] holds the coset probability and a
	// minimum-weight representative pattern.
	prob [][2]float64
	rep  [][2]uint32
	reps [][2]int8 // representative weights; -1 marks an empty coset

	qubits []int // data-qubit indices, bit order of the pattern masks
}

// New enumerates the coset table. It fails for codes with more than
// MaxDataQubits data qubits or p outside (0, 1).
func New(g *lattice.Graph, p float64) (*Decoder, error) {
	n := g.Lattice().NumData()
	if n > MaxDataQubits {
		return nil, fmt.Errorf("mld: %d data qubits exceeds the exact-enumeration bound %d", n, MaxDataQubits)
	}
	if p <= 0 || p >= 1 {
		return nil, fmt.Errorf("mld: p=%v outside (0,1)", p)
	}
	d := &Decoder{g: g, p: p}
	l := g.Lattice()
	for _, s := range l.DataSites() {
		d.qubits = append(d.qubits, l.QubitIndex(s))
	}
	op := pauli.Z
	if g.ErrorType() == lattice.XErrors {
		op = pauli.X
	}

	// Per-qubit syndrome masks and cut parities, so each pattern's
	// syndrome is an XOR fold.
	synMask := make([]uint64, n)
	cutBit := make([]uint32, n)
	cut := map[int]bool{}
	for _, q := range l.LogicalCutSupport(g.ErrorType()) {
		cut[q] = true
	}
	for i, q := range d.qubits {
		f := pauli.NewFrame(l.NumQubits())
		f.Set(q, op)
		for c, hot := range g.Syndrome(f) {
			if hot {
				synMask[i] |= 1 << uint(c)
			}
		}
		if cut[q] {
			cutBit[i] = 1
		}
	}
	if g.NumChecks() > 63 {
		return nil, fmt.Errorf("mld: %d checks exceeds the syndrome-mask width", g.NumChecks())
	}

	size := 1 << uint(g.NumChecks())
	d.prob = make([][2]float64, size)
	d.rep = make([][2]uint32, size)
	d.reps = make([][2]int8, size)
	for i := range d.reps {
		d.reps[i] = [2]int8{-1, -1}
	}
	logP := math.Log(p)
	logQ := math.Log(1 - p)
	for pattern := 0; pattern < 1<<uint(n); pattern++ {
		var syn uint64
		var logical uint32
		w := 0
		for i := 0; i < n; i++ {
			if pattern&(1<<uint(i)) != 0 {
				syn ^= synMask[i]
				logical ^= cutBit[i]
				w++
			}
		}
		d.prob[syn][logical] += math.Exp(float64(w)*logP + float64(n-w)*logQ)
		if d.reps[syn][logical] < 0 || int8(w) < d.reps[syn][logical] {
			d.reps[syn][logical] = int8(w)
			d.rep[syn][logical] = uint32(pattern)
		}
	}
	return d, nil
}

// Name implements decoder.Decoder.
func (*Decoder) Name() string { return "ml-exact" }

// P returns the error rate the table was built for.
func (d *Decoder) P() float64 { return d.p }

// CosetProbs returns the two logical-coset probabilities of a syndrome
// (normalized over the syndrome's total probability).
func (d *Decoder) CosetProbs(syn []bool) (p0, p1 float64, err error) {
	idx, err := d.index(syn)
	if err != nil {
		return 0, 0, err
	}
	total := d.prob[idx][0] + d.prob[idx][1]
	if total == 0 {
		return 0, 0, fmt.Errorf("mld: syndrome unreachable by any error pattern")
	}
	return d.prob[idx][0] / total, d.prob[idx][1] / total, nil
}

// Decode implements decoder.Decoder: it returns a minimum-weight
// representative of the likeliest logical coset.
func (d *Decoder) Decode(g *lattice.Graph, syn []bool) (decoder.Correction, error) {
	pattern, err := d.pattern(g, syn)
	if err != nil {
		return decoder.Correction{}, err
	}
	var c decoder.Correction
	for i, q := range d.qubits {
		if pattern&(1<<uint(i)) != 0 {
			c.Qubits = append(c.Qubits, q)
		}
	}
	return c, nil
}

// DecodeInto implements decodepool.IntoDecoder: the same table lookup
// as Decode, with the correction emitted into the caller's scratch
// buffer. The returned Correction aliases s.
func (d *Decoder) DecodeInto(g *lattice.Graph, syn []bool, s *decodepool.Scratch) (decoder.Correction, error) {
	pattern, err := d.pattern(g, syn)
	if err != nil {
		return decoder.Correction{}, err
	}
	q := s.TakeQubits()
	for i, qb := range d.qubits {
		if pattern&(1<<uint(i)) != 0 {
			q = append(q, qb)
		}
	}
	return s.PutQubits(q), nil
}

// pattern resolves the syndrome to the stored minimum-weight
// representative of the likeliest logical coset.
func (d *Decoder) pattern(g *lattice.Graph, syn []bool) (uint32, error) {
	// Structural compatibility: any graph of the same distance and
	// error type indexes checks identically.
	if g.ErrorType() != d.g.ErrorType() || g.Lattice().Distance() != d.g.Lattice().Distance() {
		return 0, fmt.Errorf("mld: decoder bound to a %v distance-%d graph",
			d.g.ErrorType(), d.g.Lattice().Distance())
	}
	idx, err := d.index(syn)
	if err != nil {
		return 0, err
	}
	logical := 0
	if d.prob[idx][1] > d.prob[idx][0] {
		logical = 1
	}
	if d.reps[idx][logical] < 0 {
		// The preferred coset is empty (cannot happen for valid
		// syndromes of this code, but stay defensive).
		logical ^= 1
	}
	if d.reps[idx][logical] < 0 {
		return 0, fmt.Errorf("mld: no pattern produces this syndrome")
	}
	return d.rep[idx][logical], nil
}

// index packs a syndrome vector into the table key.
func (d *Decoder) index(syn []bool) (uint64, error) {
	if len(syn) != d.g.NumChecks() {
		return 0, fmt.Errorf("mld: syndrome has %d checks, graph has %d", len(syn), d.g.NumChecks())
	}
	var idx uint64
	for i, hot := range syn {
		if hot {
			idx |= 1 << uint(i)
		}
	}
	return idx, nil
}

var (
	_ decoder.Decoder        = (*Decoder)(nil)
	_ decodepool.IntoDecoder = (*Decoder)(nil)
)
