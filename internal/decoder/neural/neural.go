package neural

import (
	"fmt"

	"repro/internal/decoder"
	"repro/internal/decoder/greedy"
	"repro/internal/lattice"
	"repro/internal/noise"
	"repro/internal/pauli"
)

// Decoder is the two-stage neural decoder: greedy matching proposes a
// correction, the network predicts whether a logical operator must be
// appended.
type Decoder struct {
	g       *lattice.Graph
	base    *greedy.Decoder
	net     *MLP
	logical []int // the logical-operator support to append on prediction
}

// TrainConfig drives sample generation and optimization.
type TrainConfig struct {
	P       float64 // physical error rate of the training distribution
	Samples int     // SGD samples
	Hidden  int     // hidden units (default 32)
	LR      float64 // learning rate (default 0.05)
	Seed    int64
}

// New builds and trains a neural decoder for the graph.
func New(g *lattice.Graph, cfg TrainConfig) (*Decoder, error) {
	if cfg.Samples < 1 {
		return nil, fmt.Errorf("neural: need at least one training sample")
	}
	if cfg.Hidden == 0 {
		cfg.Hidden = 32
	}
	if cfg.LR == 0 {
		cfg.LR = 0.05
	}
	var ch noise.Channel
	var err error
	if g.ErrorType() == lattice.ZErrors {
		ch, err = noise.NewDephasing(cfg.P)
	} else {
		ch, err = noise.NewBitFlip(cfg.P)
	}
	if err != nil {
		return nil, err
	}
	rng := noise.NewRand(cfg.Seed)
	net, err := NewMLP(g.NumChecks(), cfg.Hidden, rng)
	if err != nil {
		return nil, err
	}
	d := &Decoder{
		g:       g,
		base:    greedy.New(),
		net:     net,
		logical: g.Lattice().LogicalSupport(g.ErrorType()),
	}

	l := g.Lattice()
	data := dataQubits(l)
	cut := l.LogicalCutSupport(g.ErrorType())
	x := make([]float64, g.NumChecks())
	for s := 0; s < cfg.Samples; s++ {
		f := pauli.NewFrame(l.NumQubits())
		ch.Sample(rng, f, data)
		syn := g.Syndrome(f)
		corr, err := d.base.Decode(g, syn)
		if err != nil {
			return nil, err
		}
		res := f.Clone()
		res.ApplyFrame(corr.Frame(l, g.ErrorType()))
		label := 0.0
		if parity(res, cut, g.ErrorType()) == 1 {
			label = 1
		}
		for i, hot := range syn {
			if hot {
				x[i] = 1
			} else {
				x[i] = 0
			}
		}
		d.net.Step(x, label, cfg.LR)
	}
	return d, nil
}

func dataQubits(l *lattice.Lattice) []int {
	qs := make([]int, 0, l.NumData())
	for _, s := range l.DataSites() {
		qs = append(qs, l.QubitIndex(s))
	}
	return qs
}

func parity(f *pauli.Frame, cut []int, e lattice.ErrorType) int {
	if e == lattice.ZErrors {
		return f.ParityZ(cut)
	}
	return f.ParityX(cut)
}

// Name implements decoder.Decoder.
func (*Decoder) Name() string { return "neural" }

// Decode implements decoder.Decoder: the greedy proposal plus, when the
// network flags the syndrome, a logical operator (which commutes with
// every check, so validity is unchanged).
func (d *Decoder) Decode(g *lattice.Graph, syn []bool) (decoder.Correction, error) {
	if g.ErrorType() != d.g.ErrorType() || g.Lattice().Distance() != d.g.Lattice().Distance() {
		return decoder.Correction{}, fmt.Errorf("neural: decoder bound to a %v distance-%d graph",
			d.g.ErrorType(), d.g.Lattice().Distance())
	}
	corr, err := d.base.Decode(g, syn)
	if err != nil {
		return decoder.Correction{}, err
	}
	x := make([]float64, len(syn))
	for i, hot := range syn {
		if hot {
			x[i] = 1
		}
	}
	if d.net.Predict(x) > 0.5 {
		corr.Qubits = append(corr.Qubits, d.logical...)
	}
	return corr, nil
}

var _ decoder.Decoder = (*Decoder)(nil)
