package neural

import (
	"math/rand"
	"testing"

	"repro/internal/decoder"
	"repro/internal/lattice"
	"repro/internal/noise"
	"repro/internal/surface"
)

func TestMLPValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewMLP(0, 4, rng); err == nil {
		t.Error("zero inputs accepted")
	}
	if _, err := NewMLP(4, 0, rng); err == nil {
		t.Error("zero hidden accepted")
	}
}

// The classic non-linear sanity check: an MLP must learn XOR.
func TestMLPLearnsXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m, err := NewMLP(2, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	cases := [][3]float64{
		{0, 0, 0}, {0, 1, 1}, {1, 0, 1}, {1, 1, 0},
	}
	for epoch := 0; epoch < 4000; epoch++ {
		c := cases[rng.Intn(4)]
		m.Step([]float64{c[0], c[1]}, c[2], 0.2)
	}
	for _, c := range cases {
		y := m.Predict([]float64{c[0], c[1]})
		if (y > 0.5) != (c[2] == 1) {
			t.Errorf("XOR(%v,%v) predicted %v, want %v", c[0], c[1], y, c[2])
		}
	}
}

func TestMLPStepReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, err := NewMLP(3, 6, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{1, 0, 1}
	first := m.Step(x, 1, 0.1)
	var last float64
	for i := 0; i < 200; i++ {
		last = m.Step(x, 1, 0.1)
	}
	if last >= first {
		t.Errorf("loss did not decrease: %v -> %v", first, last)
	}
}

func TestTrainValidation(t *testing.T) {
	g := lattice.MustNew(3).MatchingGraph(lattice.ZErrors)
	if _, err := New(g, TrainConfig{P: 0.05, Samples: 0}); err == nil {
		t.Error("zero samples accepted")
	}
	if _, err := New(g, TrainConfig{P: -1, Samples: 10}); err == nil {
		t.Error("invalid p accepted")
	}
}

// The decoder invariant holds whatever the network predicts: appending a
// logical operator never changes the syndrome.
func TestDecodeAlwaysValid(t *testing.T) {
	for _, e := range []lattice.ErrorType{lattice.ZErrors, lattice.XErrors} {
		g := lattice.MustNew(3).MatchingGraph(e)
		d, err := New(g, TrainConfig{P: 0.1, Samples: 3000, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		if d.Name() != "neural" {
			t.Error("name wrong")
		}
		for mask := 0; mask < 1<<uint(g.NumChecks()); mask += 3 {
			syn := make([]bool, g.NumChecks())
			for i := range syn {
				syn[i] = mask&(1<<uint(i)) != 0
			}
			c, err := d.Decode(g, syn)
			if err != nil {
				t.Fatal(err)
			}
			if err := decoder.Validate(g, syn, c); err != nil {
				t.Fatalf("%v syndrome %b: %v", e, mask, err)
			}
		}
	}
}

func TestForeignGraphRejected(t *testing.T) {
	g := lattice.MustNew(3).MatchingGraph(lattice.ZErrors)
	other := lattice.MustNew(3).MatchingGraph(lattice.XErrors)
	d, err := New(g, TrainConfig{P: 0.05, Samples: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Decode(other, make([]bool, other.NumChecks())); err == nil {
		t.Error("foreign graph accepted")
	}
}

// The point of the second stage: the trained decoder must beat plain
// greedy matching on a lifetime run at the training error rate.
func TestNeuralBeatsGreedy(t *testing.T) {
	const p = 0.09
	g := lattice.MustNew(3).MatchingGraph(lattice.ZErrors)
	nn, err := New(g, TrainConfig{P: p, Samples: 60000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	run := func(dec decoder.Decoder) float64 {
		ch, err := noise.NewDephasing(p)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := surface.New(surface.Config{Distance: 3, Channel: ch, DecoderZ: dec, Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(25000)
		if err != nil {
			t.Fatal(err)
		}
		return res.PL
	}
	plNN := run(nn)
	plGr := run(nn.base)
	if plNN >= plGr {
		t.Errorf("neural PL %v not below greedy PL %v", plNN, plGr)
	}
}
