// Package neural implements the high-level neural-network decoder class
// the paper surveys in §IV (Chamberland & Ronagh; Varsamopoulos et
// al.): a simple low-level decoder proposes a correction, and a small
// feed-forward network, trained on simulated syndromes, predicts
// whether that correction leaves a logical fault — in which case a
// logical operator is appended. It is the Fig. 11 "NNet" baseline made
// concrete, in pure Go (network, backpropagation and training included).
package neural

import (
	"fmt"
	"math"
	"math/rand"
)

// MLP is a one-hidden-layer feed-forward network with tanh hidden
// activation and a sigmoid output — ample capacity for the syndrome
// classification task at small distances.
type MLP struct {
	in, hidden int
	w1         [][]float64 // [hidden][in]
	b1         []float64
	w2         []float64 // [hidden]
	b2         float64
}

// NewMLP initializes the network with scaled uniform weights.
func NewMLP(in, hidden int, rng *rand.Rand) (*MLP, error) {
	if in < 1 || hidden < 1 {
		return nil, fmt.Errorf("neural: invalid shape %dx%d", in, hidden)
	}
	m := &MLP{in: in, hidden: hidden}
	scale1 := math.Sqrt(1 / float64(in))
	scale2 := math.Sqrt(1 / float64(hidden))
	m.w1 = make([][]float64, hidden)
	m.b1 = make([]float64, hidden)
	m.w2 = make([]float64, hidden)
	for h := 0; h < hidden; h++ {
		m.w1[h] = make([]float64, in)
		for i := range m.w1[h] {
			m.w1[h][i] = (rng.Float64()*2 - 1) * scale1
		}
		m.w2[h] = (rng.Float64()*2 - 1) * scale2
	}
	return m, nil
}

// Forward returns the network output in (0, 1) and the hidden
// activations (needed for backprop).
func (m *MLP) Forward(x []float64) (float64, []float64) {
	h := make([]float64, m.hidden)
	for j := 0; j < m.hidden; j++ {
		s := m.b1[j]
		for i, xi := range x {
			s += m.w1[j][i] * xi
		}
		h[j] = math.Tanh(s)
	}
	o := m.b2
	for j, hj := range h {
		o += m.w2[j] * hj
	}
	return 1 / (1 + math.Exp(-o)), h
}

// Predict returns the output probability for the input.
func (m *MLP) Predict(x []float64) float64 {
	y, _ := m.Forward(x)
	return y
}

// Step performs one stochastic-gradient step on the cross-entropy loss
// for a single (x, label) sample and returns the loss before the step.
func (m *MLP) Step(x []float64, label float64, lr float64) float64 {
	y, h := m.Forward(x)
	eps := 1e-12
	loss := -label*math.Log(y+eps) - (1-label)*math.Log(1-y+eps)
	// dLoss/dPreactivation of the output is (y - label) for
	// sigmoid + cross-entropy.
	do := y - label
	for j := 0; j < m.hidden; j++ {
		dh := do * m.w2[j] * (1 - h[j]*h[j])
		m.w2[j] -= lr * do * h[j]
		for i, xi := range x {
			m.w1[j][i] -= lr * dh * xi
		}
		m.b1[j] -= lr * dh
	}
	m.b2 -= lr * do
	return loss
}
