package unionfind

import (
	"testing"

	"repro/internal/decoder"
	"repro/internal/lattice"
	"repro/internal/noise"
	"repro/internal/pauli"
)

func syn(g *lattice.Graph, sites ...lattice.Site) []bool {
	s := make([]bool, g.NumChecks())
	for _, site := range sites {
		i, ok := g.CheckIndex(site)
		if !ok {
			panic("not a check")
		}
		s[i] = true
	}
	return s
}

func TestDSUInvariants(t *testing.T) {
	d := newDSU(6)
	d.odd[0], d.odd[1], d.odd[3] = true, true, true
	d.boundary[5] = true
	d.union(0, 1)
	r := d.find(0)
	if d.find(1) != r {
		t.Fatal("union did not merge")
	}
	if d.odd[r] {
		t.Error("two odd clusters merged to odd")
	}
	d.union(3, 5)
	r = d.find(3)
	if !d.odd[r] || !d.boundary[r] {
		t.Error("odd+boundary merge lost flags")
	}
	if d.active(r) {
		t.Error("boundary cluster still active")
	}
	// Merging a cluster with itself is a no-op.
	size := d.size[d.find(0)]
	d.union(0, 1)
	if d.size[d.find(0)] != size {
		t.Error("self-union changed size")
	}
}

func TestSingleDefectDrainsToBoundary(t *testing.T) {
	l := lattice.MustNew(5)
	g := l.MatchingGraph(lattice.ZErrors)
	u := New()
	s := syn(g, lattice.Site{Row: 2, Col: 1})
	c, err := u.Decode(g, s)
	if err != nil {
		t.Fatal(err)
	}
	if err := decoder.Validate(g, s, c); err != nil {
		t.Fatal(err)
	}
	// The chain should be short: the defect is one step from the left
	// boundary and union-find grows minimally.
	if c.Weight() > 2 {
		t.Errorf("chain weight %d for a boundary-adjacent defect", c.Weight())
	}
}

func TestAdjacentPairShortChain(t *testing.T) {
	l := lattice.MustNew(7)
	g := l.MatchingGraph(lattice.ZErrors)
	u := New()
	s := syn(g, lattice.Site{Row: 6, Col: 5}, lattice.Site{Row: 6, Col: 7})
	c, err := u.Decode(g, s)
	if err != nil {
		t.Fatal(err)
	}
	if err := decoder.Validate(g, s, c); err != nil {
		t.Fatal(err)
	}
	if c.Weight() > 3 {
		t.Errorf("chain weight %d for adjacent defects", c.Weight())
	}
	if u.Rounds == 0 {
		t.Error("no growth rounds recorded")
	}
}

// The decoder must correct every weight-2 error pattern without
// producing a logical operator (weight-2 < d/2 for d=7).
func TestAllWeightTwoPatterns(t *testing.T) {
	l := lattice.MustNew(7)
	g := l.MatchingGraph(lattice.ZErrors)
	cut := l.LogicalCutSupport(lattice.ZErrors)
	u := New()
	data := l.DataSites()
	for i := 0; i < len(data); i += 3 { // stride keeps the test quick
		for j := i + 1; j < len(data); j += 3 {
			f := pauli.NewFrame(l.NumQubits())
			f.Set(l.QubitIndex(data[i]), pauli.Z)
			f.Set(l.QubitIndex(data[j]), pauli.Z)
			s := g.Syndrome(f)
			c, err := u.Decode(g, s)
			if err != nil {
				t.Fatal(err)
			}
			res := f.Clone()
			res.ApplyFrame(c.Frame(l, lattice.ZErrors))
			for k, hot := range g.Syndrome(res) {
				if hot {
					t.Fatalf("pattern (%v,%v): residual check %d hot", data[i], data[j], k)
				}
			}
			if res.ParityZ(cut) != 0 {
				t.Fatalf("pattern (%v,%v) decoded to a logical error", data[i], data[j])
			}
		}
	}
}

func TestXErrorPlane(t *testing.T) {
	l := lattice.MustNew(5)
	g := l.MatchingGraph(lattice.XErrors)
	u := New()
	s := syn(g, lattice.Site{Row: 1, Col: 4}, lattice.Site{Row: 7, Col: 2})
	c, err := u.Decode(g, s)
	if err != nil {
		t.Fatal(err)
	}
	if err := decoder.Validate(g, s, c); err != nil {
		t.Fatal(err)
	}
}

// Erasure decoding: every syndrome caused by errors inside a known
// erased set must be corrected using only erased qubits, and below the
// percolation threshold logical failures are rare.
func TestDecodeErasure(t *testing.T) {
	l := lattice.MustNew(5)
	g := l.MatchingGraph(lattice.ZErrors)
	u := New()
	ch, err := noise.NewErasure(0.15, pauli.Z)
	if err != nil {
		t.Fatal(err)
	}
	if ch.Pe() != 0.15 {
		t.Error("Pe accessor wrong")
	}
	rng := noise.NewRand(41)
	var targets []int
	for _, s := range l.DataSites() {
		targets = append(targets, l.QubitIndex(s))
	}
	failures := 0
	cut := l.LogicalCutSupport(lattice.ZErrors)
	for trial := 0; trial < 400; trial++ {
		f := pauli.NewFrame(l.NumQubits())
		mask := ch.SampleErasure(rng, f, targets)
		erased := make([]bool, l.NumQubits())
		for i, e := range mask {
			if e {
				erased[targets[i]] = true
			}
		}
		syn := g.Syndrome(f)
		c, err := u.DecodeErasure(g, erased, syn)
		if err != nil {
			t.Fatal(err)
		}
		if err := decoder.Validate(g, syn, c); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, q := range c.Support() {
			if !erased[q] {
				t.Fatalf("trial %d: correction used un-erased qubit %d", trial, q)
			}
		}
		res := f.Clone()
		res.ApplyFrame(c.Frame(l, lattice.ZErrors))
		if res.ParityZ(cut) == 1 {
			failures++
		}
	}
	// pe = 0.15 is far below the ~50% erasure threshold: failures must
	// be rare.
	if failures > 20 {
		t.Errorf("%d/400 logical failures at pe=0.15", failures)
	}
}

func TestDecodeErasureValidation(t *testing.T) {
	l := lattice.MustNew(3)
	g := l.MatchingGraph(lattice.ZErrors)
	u := New()
	if _, err := u.DecodeErasure(g, make([]bool, 3), make([]bool, g.NumChecks())); err == nil {
		t.Error("bad mask size accepted")
	}
}

func TestErasureChannelValidation(t *testing.T) {
	if _, err := noise.NewErasure(-0.1, pauli.Z); err == nil {
		t.Error("negative pe accepted")
	}
	if _, err := noise.NewErasure(0.1, pauli.I); err == nil {
		t.Error("identity erasure op accepted")
	}
	ch, _ := noise.NewErasure(0.2, pauli.X)
	if ch.String() != "erasure(pe=0.2,X)" {
		t.Error(ch.String())
	}
}
