// Package unionfind implements the almost-linear-time union-find decoder
// of Delfosse & Nickerson — one of the fast offline baselines the NISQ+
// paper compares against (§IV, §VIII).
//
// The decoder works on the decoding graph (one vertex per check, one
// pendant boundary vertex per boundary data qubit, one edge per data
// qubit). Clusters seeded at hot checks grow by half an edge per round;
// clusters with even defect parity or boundary contact stop growing.
// Once every cluster is neutral, a spanning forest of each cluster is
// peeled from the leaves inward, emitting a correction edge whenever a
// defect sits on a leaf.
package unionfind

import (
	"fmt"

	"repro/internal/decoder"
	"repro/internal/lattice"
)

// Decoder is the union-find decoder. The zero value is ready to use.
type Decoder struct {
	// Rounds is the number of growth rounds the last Decode performed;
	// harnesses use it as the decoder's abstract time-to-solution.
	Rounds int
}

// New returns a union-find decoder.
func New() *Decoder { return &Decoder{} }

// Name implements decoder.Decoder.
func (*Decoder) Name() string { return "union-find" }

// dsu is a union-find structure tracking defect parity and boundary
// contact per cluster.
type dsu struct {
	parent   []int
	size     []int
	odd      []bool // cluster contains an odd number of defects
	boundary []bool // cluster contains a boundary vertex
}

func newDSU(n int) *dsu {
	d := &dsu{
		parent:   make([]int, n),
		size:     make([]int, n),
		odd:      make([]bool, n),
		boundary: make([]bool, n),
	}
	for i := range d.parent {
		d.parent[i] = i
		d.size[i] = 1
	}
	return d
}

func (d *dsu) find(x int) int {
	for d.parent[x] != x {
		d.parent[x] = d.parent[d.parent[x]]
		x = d.parent[x]
	}
	return x
}

func (d *dsu) union(a, b int) {
	ra, rb := d.find(a), d.find(b)
	if ra == rb {
		return
	}
	if d.size[ra] < d.size[rb] {
		ra, rb = rb, ra
	}
	d.parent[rb] = ra
	d.size[ra] += d.size[rb]
	d.odd[ra] = d.odd[ra] != d.odd[rb]
	d.boundary[ra] = d.boundary[ra] || d.boundary[rb]
}

// active reports whether the cluster rooted at r must keep growing.
func (d *dsu) active(r int) bool { return d.odd[r] && !d.boundary[r] }

// Decode implements decoder.Decoder.
func (u *Decoder) Decode(g *lattice.Graph, syn []bool) (decoder.Correction, error) {
	edges := g.DecodingEdges()
	m := g.NumChecks()
	// Vertices: checks 0..m-1, then one boundary vertex per boundary edge.
	nv := m
	endpoints := make([][2]int, len(edges))
	for k, e := range edges {
		a, b := e.C1, e.C2
		if a == lattice.Boundary {
			a = nv
			nv++
		}
		if b == lattice.Boundary {
			b = nv
			nv++
		}
		endpoints[k] = [2]int{a, b}
	}

	d := newDSU(nv)
	for v := m; v < nv; v++ {
		d.boundary[v] = true
	}
	anyActive := false
	for i, hot := range syn {
		if hot {
			d.odd[i] = true
			anyActive = true
		}
	}

	// Growth: each edge accumulates support from its endpoints' active
	// clusters; a fully supported edge (support >= 2) merges them.
	growth := make([]int, len(edges))
	grown := make([]bool, len(edges))
	u.Rounds = 0
	for anyActive {
		u.Rounds++
		for k := range edges {
			if grown[k] {
				continue
			}
			a, b := endpoints[k][0], endpoints[k][1]
			if d.active(d.find(a)) {
				growth[k]++
			}
			if d.active(d.find(b)) {
				growth[k]++
			}
		}
		for k := range edges {
			if !grown[k] && growth[k] >= 2 {
				grown[k] = true
				d.union(endpoints[k][0], endpoints[k][1])
			}
		}
		anyActive = false
		for i, hot := range syn {
			if hot && d.active(d.find(i)) {
				anyActive = true
				break
			}
		}
		if u.Rounds > 4*g.Lattice().Size() {
			return decoder.Correction{}, fmt.Errorf("unionfind: growth did not converge after %d rounds", u.Rounds)
		}
	}

	return u.peel(g, syn, nv, m, edges, endpoints, grown)
}

// peel extracts the correction from the grown clusters.
func (u *Decoder) peel(g *lattice.Graph, syn []bool, nv, m int, edges []lattice.Edge, endpoints [][2]int, grown []bool) (decoder.Correction, error) {
	adj := make([][]int, nv) // vertex -> incident grown edge indices
	for k := range edges {
		if !grown[k] {
			continue
		}
		adj[endpoints[k][0]] = append(adj[endpoints[k][0]], k)
		adj[endpoints[k][1]] = append(adj[endpoints[k][1]], k)
	}
	defect := make([]bool, nv)
	hasDefect := false
	for i, hot := range syn {
		if hot {
			defect[i] = true
			hasDefect = true
		}
	}
	if !hasDefect {
		return decoder.Correction{}, nil
	}

	visited := make([]bool, nv)
	parentEdge := make([]int, nv)
	var c decoder.Correction
	// Roots preferring boundary vertices, so peeled defects can always
	// drain into the boundary.
	roots := make([]int, 0, nv)
	for v := m; v < nv; v++ {
		roots = append(roots, v)
	}
	for v := 0; v < m; v++ {
		roots = append(roots, v)
	}
	for _, root := range roots {
		if visited[root] {
			continue
		}
		// BFS spanning tree of the cluster containing root.
		order := []int{root}
		visited[root] = true
		parentEdge[root] = -1
		for i := 0; i < len(order); i++ {
			v := order[i]
			for _, k := range adj[v] {
				w := endpoints[k][0] + endpoints[k][1] - v
				if !visited[w] {
					visited[w] = true
					parentEdge[w] = k
					order = append(order, w)
				}
			}
		}
		// Peel leaves first (reverse BFS order).
		for i := len(order) - 1; i > 0; i-- {
			v := order[i]
			if !defect[v] {
				continue
			}
			k := parentEdge[v]
			c.Qubits = append(c.Qubits, edges[k].Q)
			defect[v] = false
			p := endpoints[k][0] + endpoints[k][1] - v
			defect[p] = !defect[p]
		}
		if defect[root] && root < m {
			return decoder.Correction{}, fmt.Errorf("unionfind: unresolved defect at check %d", root)
		}
		defect[root] = false
	}
	return c, nil
}

var _ decoder.Decoder = (*Decoder)(nil)

// DecodeErasure performs linear-time maximum-likelihood decoding of the
// quantum erasure channel (Delfosse & Zémor): the erased data qubits
// are known, every error lies inside them, so the peeling stage runs
// directly on the erased edge set with no cluster growth. erased is
// indexed by physical qubit; it must cover every hot check's
// explanation (true for genuine erasure noise).
func (u *Decoder) DecodeErasure(g *lattice.Graph, erased []bool, syn []bool) (decoder.Correction, error) {
	if len(erased) != g.Lattice().NumQubits() {
		return decoder.Correction{}, fmt.Errorf("unionfind: erasure mask covers %d qubits, lattice has %d",
			len(erased), g.Lattice().NumQubits())
	}
	edges := g.DecodingEdges()
	m := g.NumChecks()
	nv := m
	endpoints := make([][2]int, len(edges))
	grown := make([]bool, len(edges))
	for k, e := range edges {
		a, b := e.C1, e.C2
		if a == lattice.Boundary {
			a = nv
			nv++
		}
		if b == lattice.Boundary {
			b = nv
			nv++
		}
		endpoints[k] = [2]int{a, b}
		grown[k] = erased[e.Q]
	}
	u.Rounds = 0
	return u.peel(g, syn, nv, m, edges, endpoints, grown)
}
