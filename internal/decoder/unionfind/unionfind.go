// Package unionfind implements the almost-linear-time union-find decoder
// of Delfosse & Nickerson — one of the fast offline baselines the NISQ+
// paper compares against (§IV, §VIII).
//
// The decoder works on the decoding graph (one vertex per check, one
// pendant boundary vertex per boundary data qubit, one edge per data
// qubit). Clusters seeded at hot checks grow by half an edge per round;
// clusters with even defect parity or boundary contact stop growing.
// Once every cluster is neutral, a spanning forest of each cluster is
// peeled from the leaves inward, emitting a correction edge whenever a
// defect sits on a leaf.
package unionfind

import (
	"fmt"

	"repro/internal/decodepool"
	"repro/internal/decoder"
	"repro/internal/lattice"
)

// Decoder is the union-find decoder. The zero value is ready to use.
type Decoder struct {
	// Rounds is the number of growth rounds the last Decode performed;
	// harnesses use it as the decoder's abstract time-to-solution.
	Rounds int
}

// New returns a union-find decoder.
func New() *Decoder { return &Decoder{} }

// Name implements decoder.Decoder.
func (*Decoder) Name() string { return "union-find" }

// dsu is a union-find structure tracking defect parity and boundary
// contact per cluster.
type dsu struct {
	parent   []int
	size     []int
	odd      []bool // cluster contains an odd number of defects
	boundary []bool // cluster contains a boundary vertex
}

func newDSU(n int) *dsu {
	d := &dsu{
		parent:   make([]int, n),
		size:     make([]int, n),
		odd:      make([]bool, n),
		boundary: make([]bool, n),
	}
	for i := range d.parent {
		d.parent[i] = i
		d.size[i] = 1
	}
	return d
}

func (d *dsu) find(x int) int {
	for d.parent[x] != x {
		d.parent[x] = d.parent[d.parent[x]]
		x = d.parent[x]
	}
	return x
}

func (d *dsu) union(a, b int) {
	ra, rb := d.find(a), d.find(b)
	if ra == rb {
		return
	}
	if d.size[ra] < d.size[rb] {
		ra, rb = rb, ra
	}
	d.parent[rb] = ra
	d.size[ra] += d.size[rb]
	d.odd[ra] = d.odd[ra] != d.odd[rb]
	d.boundary[ra] = d.boundary[ra] || d.boundary[rb]
}

// active reports whether the cluster rooted at r must keep growing.
func (d *dsu) active(r int) bool { return d.odd[r] && !d.boundary[r] }

// Decode implements decoder.Decoder.
func (u *Decoder) Decode(g *lattice.Graph, syn []bool) (decoder.Correction, error) {
	edges := g.DecodingEdges()
	m := g.NumChecks()
	// Vertices: checks 0..m-1, then one boundary vertex per boundary edge.
	nv := m
	endpoints := make([][2]int, len(edges))
	for k, e := range edges {
		a, b := e.C1, e.C2
		if a == lattice.Boundary {
			a = nv
			nv++
		}
		if b == lattice.Boundary {
			b = nv
			nv++
		}
		endpoints[k] = [2]int{a, b}
	}

	d := newDSU(nv)
	for v := m; v < nv; v++ {
		d.boundary[v] = true
	}
	anyActive := false
	for i, hot := range syn {
		if hot {
			d.odd[i] = true
			anyActive = true
		}
	}

	// Growth: each edge accumulates support from its endpoints' active
	// clusters; a fully supported edge (support >= 2) merges them.
	growth := make([]int, len(edges))
	grown := make([]bool, len(edges))
	u.Rounds = 0
	for anyActive {
		u.Rounds++
		for k := range edges {
			if grown[k] {
				continue
			}
			a, b := endpoints[k][0], endpoints[k][1]
			if d.active(d.find(a)) {
				growth[k]++
			}
			if d.active(d.find(b)) {
				growth[k]++
			}
		}
		for k := range edges {
			if !grown[k] && growth[k] >= 2 {
				grown[k] = true
				d.union(endpoints[k][0], endpoints[k][1])
			}
		}
		anyActive = false
		for i, hot := range syn {
			if hot && d.active(d.find(i)) {
				anyActive = true
				break
			}
		}
		if u.Rounds > 4*g.Lattice().Size() {
			return decoder.Correction{}, fmt.Errorf("unionfind: growth did not converge after %d rounds", u.Rounds)
		}
	}

	return u.peel(g, syn, nv, m, edges, endpoints, grown)
}

// peel extracts the correction from the grown clusters.
func (u *Decoder) peel(g *lattice.Graph, syn []bool, nv, m int, edges []lattice.Edge, endpoints [][2]int, grown []bool) (decoder.Correction, error) {
	adj := make([][]int, nv) // vertex -> incident grown edge indices
	for k := range edges {
		if !grown[k] {
			continue
		}
		adj[endpoints[k][0]] = append(adj[endpoints[k][0]], k)
		adj[endpoints[k][1]] = append(adj[endpoints[k][1]], k)
	}
	defect := make([]bool, nv)
	hasDefect := false
	for i, hot := range syn {
		if hot {
			defect[i] = true
			hasDefect = true
		}
	}
	if !hasDefect {
		return decoder.Correction{}, nil
	}

	visited := make([]bool, nv)
	parentEdge := make([]int, nv)
	var c decoder.Correction
	// Roots preferring boundary vertices, so peeled defects can always
	// drain into the boundary.
	roots := make([]int, 0, nv)
	for v := m; v < nv; v++ {
		roots = append(roots, v)
	}
	for v := 0; v < m; v++ {
		roots = append(roots, v)
	}
	for _, root := range roots {
		if visited[root] {
			continue
		}
		// BFS spanning tree of the cluster containing root.
		order := []int{root}
		visited[root] = true
		parentEdge[root] = -1
		for i := 0; i < len(order); i++ {
			v := order[i]
			for _, k := range adj[v] {
				w := endpoints[k][0] + endpoints[k][1] - v
				if !visited[w] {
					visited[w] = true
					parentEdge[w] = k
					order = append(order, w)
				}
			}
		}
		// Peel leaves first (reverse BFS order).
		for i := len(order) - 1; i > 0; i-- {
			v := order[i]
			if !defect[v] {
				continue
			}
			k := parentEdge[v]
			c.Qubits = append(c.Qubits, edges[k].Q)
			defect[v] = false
			p := endpoints[k][0] + endpoints[k][1] - v
			defect[p] = !defect[p]
		}
		if defect[root] && root < m {
			return decoder.Correction{}, fmt.Errorf("unionfind: unresolved defect at check %d", root)
		}
		defect[root] = false
	}
	return c, nil
}

// intoState is the union-find decoder's private scratch: flat
// union-find arrays, per-edge growth state, and the CSR adjacency plus
// traversal buffers of the peeling stage.
type intoState struct {
	// Union-find over the decoding-graph vertices.
	parent, size  []int32
	odd, boundary []bool

	// Growth stage.
	growth []int32
	grown  []bool

	// Peeling stage: CSR adjacency over grown edges, then BFS + leaf
	// peel buffers.
	adjOff     []int32
	adjData    []int32
	defect     []bool
	visited    []bool
	parentEdge []int32
	order      []int32
}

func (st *intoState) reset(nv, ne int) {
	if cap(st.parent) < nv {
		st.parent = make([]int32, nv)
		st.size = make([]int32, nv)
		st.odd = make([]bool, nv)
		st.boundary = make([]bool, nv)
		st.defect = make([]bool, nv)
		st.visited = make([]bool, nv)
		st.parentEdge = make([]int32, nv)
		st.adjOff = make([]int32, nv+1)
		st.order = make([]int32, 0, nv)
	}
	st.parent = st.parent[:nv]
	st.size = st.size[:nv]
	st.odd = st.odd[:nv]
	st.boundary = st.boundary[:nv]
	st.defect = st.defect[:nv]
	st.visited = st.visited[:nv]
	st.parentEdge = st.parentEdge[:nv]
	st.adjOff = st.adjOff[:nv+1]
	for i := range st.parent {
		st.parent[i] = int32(i)
		st.size[i] = 1
	}
	clear(st.odd)
	clear(st.boundary)
	clear(st.defect)
	clear(st.visited)
	if cap(st.growth) < ne {
		st.growth = make([]int32, ne)
		st.grown = make([]bool, ne)
		st.adjData = make([]int32, 2*ne)
	}
	st.growth = st.growth[:ne]
	st.grown = st.grown[:ne]
	clear(st.growth)
	clear(st.grown)
}

func (st *intoState) find(x int32) int32 {
	for st.parent[x] != x {
		st.parent[x] = st.parent[st.parent[x]]
		x = st.parent[x]
	}
	return x
}

func (st *intoState) union(a, b int32) {
	ra, rb := st.find(a), st.find(b)
	if ra == rb {
		return
	}
	if st.size[ra] < st.size[rb] {
		ra, rb = rb, ra
	}
	st.parent[rb] = ra
	st.size[ra] += st.size[rb]
	st.odd[ra] = st.odd[ra] != st.odd[rb]
	st.boundary[ra] = st.boundary[ra] || st.boundary[rb]
}

func (st *intoState) active(r int32) bool { return st.odd[r] && !st.boundary[r] }

// DecodeInto implements decodepool.IntoDecoder: the same cluster-growth
// and peeling as Decode, on the cached decoding-edge tables and flat
// scratch arrays instead of per-call allocations. Steady state
// allocates nothing; the returned Correction aliases s.
func (u *Decoder) DecodeInto(g *lattice.Graph, syn []bool, s *decodepool.Scratch) (decoder.Correction, error) {
	geo := decodepool.For(g)
	m := geo.M
	nv := geo.NV
	ne := len(geo.Edges)
	st := s.State("unionfind", func() any { return new(intoState) }).(*intoState)
	st.reset(nv, ne)
	for v := m; v < nv; v++ {
		st.boundary[v] = true
	}
	anyActive := false
	for i, hot := range syn {
		if hot {
			st.odd[i] = true
			anyActive = true
		}
	}

	// Growth, identical to Decode: each un-grown edge accumulates
	// support from its endpoints' active clusters; support >= 2 merges.
	u.Rounds = 0
	for anyActive {
		u.Rounds++
		for k := range geo.Edges {
			if st.grown[k] {
				continue
			}
			a, b := geo.Endpoints[k][0], geo.Endpoints[k][1]
			if st.active(st.find(a)) {
				st.growth[k]++
			}
			if st.active(st.find(b)) {
				st.growth[k]++
			}
		}
		for k := range geo.Edges {
			if !st.grown[k] && st.growth[k] >= 2 {
				st.grown[k] = true
				st.union(geo.Endpoints[k][0], geo.Endpoints[k][1])
			}
		}
		anyActive = false
		for i, hot := range syn {
			if hot && st.active(st.find(int32(i))) {
				anyActive = true
				break
			}
		}
		if u.Rounds > 4*g.Lattice().Size() {
			return decoder.Correction{}, fmt.Errorf("unionfind: growth did not converge after %d rounds", u.Rounds)
		}
	}

	// Peeling on a CSR adjacency of the grown edges. Filling slots in
	// ascending edge order reproduces the legacy append order, so the
	// spanning forests — and the emitted correction — are identical.
	hasDefect := false
	for i, hot := range syn {
		if hot {
			st.defect[i] = true
			hasDefect = true
		}
	}
	if !hasDefect {
		return decoder.Correction{}, nil
	}
	adjOff := st.adjOff
	clear(adjOff)
	for k := range geo.Edges {
		if st.grown[k] {
			adjOff[geo.Endpoints[k][0]+1]++
			adjOff[geo.Endpoints[k][1]+1]++
		}
	}
	for v := 0; v < nv; v++ {
		adjOff[v+1] += adjOff[v]
	}
	fill := st.parentEdge // reuse as temporary cursor before BFS overwrites it
	copy(fill, adjOff[:nv])
	for k := range geo.Edges {
		if st.grown[k] {
			a, b := geo.Endpoints[k][0], geo.Endpoints[k][1]
			st.adjData[fill[a]] = int32(k)
			fill[a]++
			st.adjData[fill[b]] = int32(k)
			fill[b]++
		}
	}

	q := s.TakeQubits()
	// Roots preferring boundary vertices, so peeled defects can always
	// drain into the boundary (same order as Decode's root list).
	for root := int32(0); root < int32(nv); root++ {
		r := root + int32(m)
		if r >= int32(nv) {
			r -= int32(nv)
		}
		if st.visited[r] {
			continue
		}
		// BFS spanning tree of the cluster containing r.
		order := st.order[:0]
		order = append(order, r)
		st.visited[r] = true
		st.parentEdge[r] = -1
		for i := 0; i < len(order); i++ {
			v := order[i]
			for _, k := range st.adjData[adjOff[v]:adjOff[v+1]] {
				w := geo.Endpoints[k][0] + geo.Endpoints[k][1] - v
				if !st.visited[w] {
					st.visited[w] = true
					st.parentEdge[w] = k
					order = append(order, w)
				}
			}
		}
		st.order = order
		// Peel leaves first (reverse BFS order).
		for i := len(order) - 1; i > 0; i-- {
			v := order[i]
			if !st.defect[v] {
				continue
			}
			k := st.parentEdge[v]
			q = append(q, geo.Edges[k].Q)
			st.defect[v] = false
			p := geo.Endpoints[k][0] + geo.Endpoints[k][1] - v
			st.defect[p] = !st.defect[p]
		}
		if st.defect[r] && int(r) < m {
			return decoder.Correction{}, fmt.Errorf("unionfind: unresolved defect at check %d", r)
		}
		st.defect[r] = false
	}
	return s.PutQubits(q), nil
}

var (
	_ decoder.Decoder        = (*Decoder)(nil)
	_ decodepool.IntoDecoder = (*Decoder)(nil)
)

// DecodeErasure performs linear-time maximum-likelihood decoding of the
// quantum erasure channel (Delfosse & Zémor): the erased data qubits
// are known, every error lies inside them, so the peeling stage runs
// directly on the erased edge set with no cluster growth. erased is
// indexed by physical qubit; it must cover every hot check's
// explanation (true for genuine erasure noise).
func (u *Decoder) DecodeErasure(g *lattice.Graph, erased []bool, syn []bool) (decoder.Correction, error) {
	if len(erased) != g.Lattice().NumQubits() {
		return decoder.Correction{}, fmt.Errorf("unionfind: erasure mask covers %d qubits, lattice has %d",
			len(erased), g.Lattice().NumQubits())
	}
	edges := g.DecodingEdges()
	m := g.NumChecks()
	nv := m
	endpoints := make([][2]int, len(edges))
	grown := make([]bool, len(edges))
	for k, e := range edges {
		a, b := e.C1, e.C2
		if a == lattice.Boundary {
			a = nv
			nv++
		}
		if b == lattice.Boundary {
			b = nv
			nv++
		}
		endpoints[k] = [2]int{a, b}
		grown[k] = erased[e.Q]
	}
	u.Rounds = 0
	return u.peel(g, syn, nv, m, edges, endpoints, grown)
}
