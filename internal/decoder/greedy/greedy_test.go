package greedy

import (
	"testing"

	"repro/internal/decoder"
	"repro/internal/lattice"
)

func syn(g *lattice.Graph, sites ...lattice.Site) []bool {
	s := make([]bool, g.NumChecks())
	for _, site := range sites {
		i, ok := g.CheckIndex(site)
		if !ok {
			panic("not a check")
		}
		s[i] = true
	}
	return s
}

func TestEmptySyndrome(t *testing.T) {
	g := lattice.MustNew(3).MatchingGraph(lattice.ZErrors)
	d := New()
	m := d.Match(g, make([]bool, g.NumChecks()))
	if len(m.Pairs) != 0 || len(m.Boundary) != 0 {
		t.Errorf("empty syndrome matched: %+v", m)
	}
	c, err := d.Decode(g, make([]bool, g.NumChecks()))
	if err != nil || len(c.Qubits) != 0 {
		t.Errorf("empty decode: %v %v", c, err)
	}
}

// The tie-break rule: a pair edge beats boundary edges of the same
// weight, because one pairing clears two syndromes.
func TestTieBreakPrefersPairing(t *testing.T) {
	l := lattice.MustNew(3)
	g := l.MatchingGraph(lattice.ZErrors)
	// Checks (0,1) and (0,3): distance 1 from each other AND from their
	// respective boundaries.
	s := syn(g, lattice.Site{Row: 0, Col: 1}, lattice.Site{Row: 0, Col: 3})
	m := New().Match(g, s)
	if len(m.Pairs) != 1 || len(m.Boundary) != 0 {
		t.Fatalf("matching = %+v, want one pair", m)
	}
	if m.Weight(g) != 1 {
		t.Errorf("weight = %d, want 1", m.Weight(g))
	}
}

// A lone far-from-partner check pairs with its nearest boundary.
func TestIsolatedCheckGoesToBoundary(t *testing.T) {
	l := lattice.MustNew(5)
	g := l.MatchingGraph(lattice.ZErrors)
	s := syn(g, lattice.Site{Row: 4, Col: 1})
	m := New().Match(g, s)
	if len(m.Boundary) != 1 || len(m.Pairs) != 0 {
		t.Fatalf("matching = %+v", m)
	}
	if m.Weight(g) != 1 {
		t.Errorf("weight = %d, want 1", m.Weight(g))
	}
}

// Two distant checks each adjacent to opposite boundaries: boundary
// matching (total weight 2) beats pairing (weight 4).
func TestBoundaryBeatsLongPair(t *testing.T) {
	l := lattice.MustNew(5)
	g := l.MatchingGraph(lattice.ZErrors)
	s := syn(g, lattice.Site{Row: 0, Col: 1}, lattice.Site{Row: 0, Col: 7})
	m := New().Match(g, s)
	if len(m.Boundary) != 2 || len(m.Pairs) != 0 {
		t.Fatalf("matching = %+v, want two boundary matches", m)
	}
}

func TestMatchingIsDeterministic(t *testing.T) {
	l := lattice.MustNew(7)
	g := l.MatchingGraph(lattice.ZErrors)
	s := syn(g,
		lattice.Site{Row: 2, Col: 3}, lattice.Site{Row: 2, Col: 7},
		lattice.Site{Row: 6, Col: 5}, lattice.Site{Row: 10, Col: 9},
		lattice.Site{Row: 8, Col: 1},
	)
	d := New()
	a := d.Match(g, s)
	b := d.Match(g, s)
	if len(a.Pairs) != len(b.Pairs) || len(a.Boundary) != len(b.Boundary) {
		t.Fatal("nondeterministic matching")
	}
	for i := range a.Pairs {
		if a.Pairs[i] != b.Pairs[i] {
			t.Fatal("pair order changed")
		}
	}
	if err := a.Covers(s); err != nil {
		t.Fatal(err)
	}
	if err := decoder.Validate(g, s, a.Correction(g)); err != nil {
		t.Fatal(err)
	}
}
