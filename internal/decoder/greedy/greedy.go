// Package greedy implements the software reference of the NISQ+
// approximate decoding algorithm (§V-B of the paper): a greedy
// approximation to minimum-weight matching.
//
// All pairwise distances between hot syndromes — and, to handle the
// code boundaries, the distance from each hot syndrome to its nearest
// boundary — are sorted in ascending order (descending likelihood).
// Edges are then accepted greedily whenever both endpoints are still
// unmatched; boundary pseudo-nodes never saturate, mirroring the paper's
// formulation in which external nodes are connected to one another with
// weight zero. By the classical result of Drake & Hougardy the result is
// a 2-approximation of the optimal matching.
package greedy

import (
	"sort"

	"repro/internal/decodepool"
	"repro/internal/decoder"
	"repro/internal/lattice"
)

// Decoder is the greedy matching decoder. The zero value is ready to use.
type Decoder struct{}

// New returns a greedy decoder.
func New() *Decoder { return &Decoder{} }

// Name implements decoder.Decoder.
func (*Decoder) Name() string { return "greedy" }

// edge is a candidate matching edge. j == lattice.Boundary marks a
// boundary edge for hot check i.
type edge struct {
	w    int
	i, j int
}

// Match computes the greedy matching for the syndrome without converting
// it to a correction. Exposed so harnesses can inspect pairings.
func (*Decoder) Match(g *lattice.Graph, syn []bool) decoder.Matching {
	hot := lattice.HotChecks(syn)
	edges := make([]edge, 0, len(hot)*(len(hot)+1)/2)
	for a := 0; a < len(hot); a++ {
		for b := a + 1; b < len(hot); b++ {
			edges = append(edges, edge{g.Dist(hot[a], hot[b]), hot[a], hot[b]})
		}
		edges = append(edges, edge{g.BoundaryDist(hot[a]), hot[a], lattice.Boundary})
	}
	// Ascending distance. On ties, pair edges come before boundary
	// edges — pairing two hot checks at distance w clears both for the
	// price one boundary match would pay to clear one — and remaining
	// ties are broken by endpoint indices so decoding is deterministic.
	rank := func(e edge) int {
		if e.j == lattice.Boundary {
			return 1
		}
		return 0
	}
	sort.Slice(edges, func(x, y int) bool {
		if edges[x].w != edges[y].w {
			return edges[x].w < edges[y].w
		}
		if rank(edges[x]) != rank(edges[y]) {
			return rank(edges[x]) < rank(edges[y])
		}
		if edges[x].i != edges[y].i {
			return edges[x].i < edges[y].i
		}
		return edges[x].j < edges[y].j
	})

	matched := make(map[int]bool, len(hot))
	var m decoder.Matching
	for _, e := range edges {
		if matched[e.i] {
			continue
		}
		if e.j == lattice.Boundary {
			matched[e.i] = true
			m.Boundary = append(m.Boundary, e.i)
			continue
		}
		if matched[e.j] {
			continue
		}
		matched[e.i], matched[e.j] = true, true
		m.Pairs = append(m.Pairs, [2]int{e.i, e.j})
	}
	return m
}

// Decode implements decoder.Decoder.
func (d *Decoder) Decode(g *lattice.Graph, syn []bool) (decoder.Correction, error) {
	return d.Match(g, syn).Correction(g), nil
}

// gedge is the scratch-resident candidate edge; j == -1 marks a
// boundary edge.
type gedge struct{ w, i, j int32 }

// intoState is the greedy decoder's private scratch: the candidate edge
// list in generation order, the counting-sort permutation and buckets,
// the matched flags, and the accepted matching.
type intoState struct {
	edges   []gedge
	idx     []int32
	counts  []int32
	matched []bool
	pairs   [][2]int32
	bnd     []int32
}

// DecodeInto implements decodepool.IntoDecoder. It reproduces Decode's
// matching exactly but replaces the comparison sort with a stable
// two-bucket-per-weight counting sort: the sort key is 2·w + rank
// (rank 1 for boundary edges), and within a bucket the generation order
// — ascending (i, j) for pair edges, ascending i for boundary edges —
// already equals the legacy comparator's tie-break order. Steady state
// allocates nothing; the returned Correction aliases s.
func (d *Decoder) DecodeInto(g *lattice.Graph, syn []bool, s *decodepool.Scratch) (decoder.Correction, error) {
	geo := decodepool.For(g)
	hot := s.HotChecks(syn)
	if len(hot) == 0 {
		return decoder.Correction{}, nil
	}
	st := s.State("greedy", func() any { return new(intoState) }).(*intoState)
	edges := st.edges[:0]
	maxW := int32(0)
	for a := 0; a < len(hot); a++ {
		for b := a + 1; b < len(hot); b++ {
			w := int32(geo.Dist(hot[a], hot[b]))
			if w > maxW {
				maxW = w
			}
			edges = append(edges, gedge{w, int32(hot[a]), int32(hot[b])})
		}
		w := int32(geo.BoundaryDist(hot[a]))
		if w > maxW {
			maxW = w
		}
		edges = append(edges, gedge{w, int32(hot[a]), -1})
	}
	st.edges = edges

	nkeys := int(2*maxW) + 2
	if cap(st.counts) < nkeys {
		st.counts = make([]int32, nkeys)
	}
	counts := st.counts[:nkeys]
	clear(counts)
	key := func(e gedge) int32 {
		k := 2 * e.w
		if e.j < 0 {
			k++
		}
		return k
	}
	for _, e := range edges {
		counts[key(e)]++
	}
	var sum int32
	for k := range counts {
		counts[k], sum = sum, sum+counts[k]
	}
	if cap(st.idx) < len(edges) {
		st.idx = make([]int32, len(edges))
	}
	idx := st.idx[:len(edges)]
	for k, e := range edges {
		ky := key(e)
		idx[counts[ky]] = int32(k)
		counts[ky]++
	}

	m := g.NumChecks()
	if cap(st.matched) < m {
		st.matched = make([]bool, m)
	}
	matched := st.matched[:m]
	clear(matched)
	st.pairs, st.bnd = st.pairs[:0], st.bnd[:0]
	for _, k := range idx {
		e := edges[k]
		if matched[e.i] {
			continue
		}
		if e.j < 0 {
			matched[e.i] = true
			st.bnd = append(st.bnd, e.i)
			continue
		}
		if matched[e.j] {
			continue
		}
		matched[e.i], matched[e.j] = true, true
		st.pairs = append(st.pairs, [2]int32{e.i, e.j})
	}

	q := s.TakeQubits()
	for _, p := range st.pairs {
		q = geo.AppendPathQubits(q, int(p[0]), int(p[1]))
	}
	for _, i := range st.bnd {
		q = geo.AppendBoundaryPathQubits(q, int(i))
	}
	return s.PutQubits(q), nil
}

var (
	_ decoder.Decoder        = (*Decoder)(nil)
	_ decodepool.IntoDecoder = (*Decoder)(nil)
)
