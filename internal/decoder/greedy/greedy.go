// Package greedy implements the software reference of the NISQ+
// approximate decoding algorithm (§V-B of the paper): a greedy
// approximation to minimum-weight matching.
//
// All pairwise distances between hot syndromes — and, to handle the
// code boundaries, the distance from each hot syndrome to its nearest
// boundary — are sorted in ascending order (descending likelihood).
// Edges are then accepted greedily whenever both endpoints are still
// unmatched; boundary pseudo-nodes never saturate, mirroring the paper's
// formulation in which external nodes are connected to one another with
// weight zero. By the classical result of Drake & Hougardy the result is
// a 2-approximation of the optimal matching.
package greedy

import (
	"sort"

	"repro/internal/decoder"
	"repro/internal/lattice"
)

// Decoder is the greedy matching decoder. The zero value is ready to use.
type Decoder struct{}

// New returns a greedy decoder.
func New() *Decoder { return &Decoder{} }

// Name implements decoder.Decoder.
func (*Decoder) Name() string { return "greedy" }

// edge is a candidate matching edge. j == lattice.Boundary marks a
// boundary edge for hot check i.
type edge struct {
	w    int
	i, j int
}

// Match computes the greedy matching for the syndrome without converting
// it to a correction. Exposed so harnesses can inspect pairings.
func (*Decoder) Match(g *lattice.Graph, syn []bool) decoder.Matching {
	hot := lattice.HotChecks(syn)
	edges := make([]edge, 0, len(hot)*(len(hot)+1)/2)
	for a := 0; a < len(hot); a++ {
		for b := a + 1; b < len(hot); b++ {
			edges = append(edges, edge{g.Dist(hot[a], hot[b]), hot[a], hot[b]})
		}
		edges = append(edges, edge{g.BoundaryDist(hot[a]), hot[a], lattice.Boundary})
	}
	// Ascending distance. On ties, pair edges come before boundary
	// edges — pairing two hot checks at distance w clears both for the
	// price one boundary match would pay to clear one — and remaining
	// ties are broken by endpoint indices so decoding is deterministic.
	rank := func(e edge) int {
		if e.j == lattice.Boundary {
			return 1
		}
		return 0
	}
	sort.Slice(edges, func(x, y int) bool {
		if edges[x].w != edges[y].w {
			return edges[x].w < edges[y].w
		}
		if rank(edges[x]) != rank(edges[y]) {
			return rank(edges[x]) < rank(edges[y])
		}
		if edges[x].i != edges[y].i {
			return edges[x].i < edges[y].i
		}
		return edges[x].j < edges[y].j
	})

	matched := make(map[int]bool, len(hot))
	var m decoder.Matching
	for _, e := range edges {
		if matched[e.i] {
			continue
		}
		if e.j == lattice.Boundary {
			matched[e.i] = true
			m.Boundary = append(m.Boundary, e.i)
			continue
		}
		if matched[e.j] {
			continue
		}
		matched[e.i], matched[e.j] = true, true
		m.Pairs = append(m.Pairs, [2]int{e.i, e.j})
	}
	return m
}

// Decode implements decoder.Decoder.
func (d *Decoder) Decode(g *lattice.Graph, syn []bool) (decoder.Correction, error) {
	return d.Match(g, syn).Correction(g), nil
}

var _ decoder.Decoder = (*Decoder)(nil)
