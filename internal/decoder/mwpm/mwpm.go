// Package mwpm implements the exact minimum-weight perfect-matching
// surface-code decoder of Fowler et al. — the offline software baseline
// the NISQ+ paper compares against.
//
// Each hot check becomes a node; a virtual boundary twin is added per hot
// check. Check-check edges weigh the matching-graph distance, check-
// boundary edges weigh the distance to the nearest code boundary, and
// boundary-boundary edges are free — the standard construction that folds
// the planar code's open boundaries into a perfect-matching instance.
// The instance is solved exactly with the blossom algorithm from
// internal/match.
package mwpm

import (
	"repro/internal/decoder"
	"repro/internal/lattice"
	"repro/internal/match"
)

// Decoder is the exact MWPM decoder. The zero value is ready to use.
type Decoder struct{}

// New returns an MWPM decoder.
func New() *Decoder { return &Decoder{} }

// Name implements decoder.Decoder.
func (*Decoder) Name() string { return "mwpm" }

// Match computes the optimal matching for the syndrome.
func (*Decoder) Match(g *lattice.Graph, syn []bool) decoder.Matching {
	hot := lattice.HotChecks(syn)
	n := len(hot)
	if n == 0 {
		return decoder.Matching{}
	}
	// Nodes 0..n-1 are hot checks, n..2n-1 are boundary twins.
	weight := func(u, v int) int64 {
		switch {
		case u < n && v < n:
			return int64(g.Dist(hot[u], hot[v]))
		case u >= n && v >= n:
			return 0
		case u < n:
			return int64(g.BoundaryDist(hot[u]))
		default:
			return int64(g.BoundaryDist(hot[v]))
		}
	}
	mate, _ := match.MinWeightPerfectMatching(2*n, weight)
	var m decoder.Matching
	for u := 0; u < n; u++ {
		v := mate[u]
		if v >= n {
			m.Boundary = append(m.Boundary, hot[u])
		} else if v > u {
			m.Pairs = append(m.Pairs, [2]int{hot[u], hot[v]})
		}
	}
	return m
}

// Decode implements decoder.Decoder.
func (d *Decoder) Decode(g *lattice.Graph, syn []bool) (decoder.Correction, error) {
	return d.Match(g, syn).Correction(g), nil
}

var _ decoder.Decoder = (*Decoder)(nil)
