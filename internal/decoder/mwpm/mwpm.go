// Package mwpm implements the exact minimum-weight perfect-matching
// surface-code decoder of Fowler et al. — the offline software baseline
// the NISQ+ paper compares against.
//
// The open boundaries are folded into the instance without doubling it:
// hot checks i and j are joined by an edge of weight min(dist(i,j),
// bdist(i)+bdist(j)) — pairing them directly or sending both to their
// nearest boundary, whichever is lighter — and when the hot count is
// odd one extra boundary node with edges bdist(i) absorbs the leftover
// check. Every matching of the classic twin-per-check construction maps
// to a matching of this folded instance with the same total weight (two
// boundary-matched checks pair up through the min), so the optimum is
// unchanged while the blossom algorithm from internal/match runs on
// half the nodes (8x less O(n³) work). Matched pairs whose min came
// from the boundary sum are decomposed back into two boundary chains.
package mwpm

import (
	"repro/internal/decodepool"
	"repro/internal/decoder"
	"repro/internal/lattice"
	"repro/internal/match"
)

// Decoder is the exact MWPM decoder. The zero value is ready to use.
type Decoder struct{}

// New returns an MWPM decoder.
func New() *Decoder { return &Decoder{} }

// Name implements decoder.Decoder.
func (*Decoder) Name() string { return "mwpm" }

// Match computes the optimal matching for the syndrome.
func (*Decoder) Match(g *lattice.Graph, syn []bool) decoder.Matching {
	hot := lattice.HotChecks(syn)
	n := len(hot)
	if n == 0 {
		return decoder.Matching{}
	}
	// Nodes 0..n-1 are hot checks; node n (odd counts only) is the
	// boundary absorber.
	m := n + n%2
	weight := func(u, v int) int64 {
		if u > v {
			u, v = v, u
		}
		if v >= n {
			return int64(g.BoundaryDist(hot[u]))
		}
		du := int64(g.Dist(hot[u], hot[v]))
		if bs := int64(g.BoundaryDist(hot[u]) + g.BoundaryDist(hot[v])); bs < du {
			return bs
		}
		return du
	}
	mate, _ := match.MinWeightPerfectMatching(m, weight)
	var mm decoder.Matching
	for u := 0; u < n; u++ {
		v := mate[u]
		if v >= n {
			mm.Boundary = append(mm.Boundary, hot[u])
		} else if v > u {
			// Ties go to the direct pair, so a decomposition never
			// lengthens the correction.
			if int64(g.Dist(hot[u], hot[v])) <= int64(g.BoundaryDist(hot[u])+g.BoundaryDist(hot[v])) {
				mm.Pairs = append(mm.Pairs, [2]int{hot[u], hot[v]})
			} else {
				mm.Boundary = append(mm.Boundary, hot[u], hot[v])
			}
		}
	}
	return mm
}

// Decode implements decoder.Decoder.
func (d *Decoder) Decode(g *lattice.Graph, syn []bool) (decoder.Correction, error) {
	return d.Match(g, syn).Correction(g), nil
}

// intoState is the MWPM decoder's private scratch: a reusable blossom
// matcher, the flat weight matrix it consumes, and the accepted
// matching, kept so the correction can be emitted in the same order the
// legacy path uses (all pair chains, then all boundary chains).
type intoState struct {
	matcher match.Matcher
	w       []int64
	pairs   [][2]int32
	bnd     []int32
}

// DecodeInto implements decodepool.IntoDecoder: the same exact matching
// as Decode, computed from the cached geometry tables inside the
// caller's scratch. Steady state allocates nothing; the returned
// Correction aliases s and is valid until its next decode.
func (d *Decoder) DecodeInto(g *lattice.Graph, syn []bool, s *decodepool.Scratch) (decoder.Correction, error) {
	geo := decodepool.For(g)
	hot := s.HotChecks(syn)
	n := len(hot)
	if n == 0 {
		return decoder.Correction{}, nil
	}
	st := s.State("mwpm", func() any { return new(intoState) }).(*intoState)
	// Folded instance, mirroring the Match construction exactly: nodes
	// 0..n-1 are hot checks, node n (odd counts only) absorbs the
	// leftover check at its boundary distance.
	m := n + n%2
	if cap(st.w) < m*m {
		st.w = make([]int64, m*m)
	}
	w := st.w[:m*m]
	for u := 0; u < n; u++ {
		bu := int64(geo.BoundaryDist(hot[u]))
		w[u*m+u] = 0
		for v := u + 1; v < n; v++ {
			wt := int64(geo.Dist(hot[u], hot[v]))
			if bs := bu + int64(geo.BoundaryDist(hot[v])); bs < wt {
				wt = bs
			}
			w[u*m+v], w[v*m+u] = wt, wt
		}
		if m > n {
			w[u*m+n], w[n*m+u] = bu, bu
		}
	}
	if m > n {
		w[n*m+n] = 0
	}
	mate, _ := st.matcher.MinWeightPerfect(m, w)
	st.pairs, st.bnd = st.pairs[:0], st.bnd[:0]
	for u := 0; u < n; u++ {
		v := mate[u]
		if v >= n {
			st.bnd = append(st.bnd, int32(hot[u]))
		} else if v > u {
			// Same tie-break as Match: equal weights keep the direct pair.
			if int64(geo.Dist(hot[u], hot[v])) <= int64(geo.BoundaryDist(hot[u])+geo.BoundaryDist(hot[v])) {
				st.pairs = append(st.pairs, [2]int32{int32(hot[u]), int32(hot[v])})
			} else {
				st.bnd = append(st.bnd, int32(hot[u]), int32(hot[v]))
			}
		}
	}
	q := s.TakeQubits()
	for _, p := range st.pairs {
		q = geo.AppendPathQubits(q, int(p[0]), int(p[1]))
	}
	for _, i := range st.bnd {
		q = geo.AppendBoundaryPathQubits(q, int(i))
	}
	return s.PutQubits(q), nil
}

var (
	_ decoder.Decoder        = (*Decoder)(nil)
	_ decodepool.IntoDecoder = (*Decoder)(nil)
)
