package mwpm

import (
	"testing"

	"repro/internal/decoder"
	"repro/internal/lattice"
)

func syn(g *lattice.Graph, sites ...lattice.Site) []bool {
	s := make([]bool, g.NumChecks())
	for _, site := range sites {
		i, ok := g.CheckIndex(site)
		if !ok {
			panic("not a check")
		}
		s[i] = true
	}
	return s
}

func TestEmptySyndrome(t *testing.T) {
	g := lattice.MustNew(3).MatchingGraph(lattice.ZErrors)
	m := New().Match(g, make([]bool, g.NumChecks()))
	if len(m.Pairs) != 0 || len(m.Boundary) != 0 {
		t.Errorf("matched empty syndrome: %+v", m)
	}
}

func TestSingleCheckBoundary(t *testing.T) {
	l := lattice.MustNew(5)
	g := l.MatchingGraph(lattice.ZErrors)
	s := syn(g, lattice.Site{Row: 2, Col: 3})
	m := New().Match(g, s)
	if len(m.Boundary) != 1 || len(m.Pairs) != 0 {
		t.Fatalf("matching = %+v", m)
	}
	if err := m.Covers(s); err != nil {
		t.Fatal(err)
	}
}

// Optimality on a handcrafted instance where greedy-by-distance is
// suboptimal: three checks in a row where the middle one is closest to
// both ends — MWPM must pick the global optimum.
func TestOptimalOnAmbiguousRow(t *testing.T) {
	l := lattice.MustNew(7)
	g := l.MatchingGraph(lattice.ZErrors)
	// Checks at columns 1, 5, 9 in row 0: pairwise distances 2, 2, 4;
	// boundary distances 1, 3, 2.
	s := syn(g,
		lattice.Site{Row: 0, Col: 1},
		lattice.Site{Row: 0, Col: 5},
		lattice.Site{Row: 0, Col: 9},
	)
	m := New().Match(g, s)
	// Optimum: pair (5,9) at cost 2, send column-1 to the boundary at
	// cost 1 — total 3.
	if got := m.Weight(g); got != 3 {
		t.Fatalf("weight = %d, want 3 (matching %+v)", got, m)
	}
	if err := decoder.Validate(g, s, m.Correction(g)); err != nil {
		t.Fatal(err)
	}
}

// All-boundary optimum: an even number of checks all hugging opposite
// edges must not be paired across the lattice.
func TestPrefersBoundariesWhenCheaper(t *testing.T) {
	l := lattice.MustNew(9)
	g := l.MatchingGraph(lattice.ZErrors)
	s := syn(g,
		lattice.Site{Row: 0, Col: 1},
		lattice.Site{Row: 8, Col: 15},
		lattice.Site{Row: 16, Col: 1},
		lattice.Site{Row: 4, Col: 15},
	)
	m := New().Match(g, s)
	if err := m.Covers(s); err != nil {
		t.Fatal(err)
	}
	// Several matchings tie at the optimum here (two co-column checks
	// sit exactly two apart); only the optimal weight is asserted.
	if m.Weight(g) != 4 {
		t.Errorf("weight = %d, want 4", m.Weight(g))
	}
}

func TestXErrorGraph(t *testing.T) {
	l := lattice.MustNew(5)
	g := l.MatchingGraph(lattice.XErrors)
	s := syn(g, lattice.Site{Row: 3, Col: 4}, lattice.Site{Row: 5, Col: 4})
	m := New().Match(g, s)
	if len(m.Pairs) != 1 {
		t.Fatalf("matching = %+v", m)
	}
	if err := decoder.Validate(g, s, m.Correction(g)); err != nil {
		t.Fatal(err)
	}
}
