package qprog

import "testing"

func TestDepthBasics(t *testing.T) {
	c := NewCircuit("d", 4)
	if c.Depth() != 0 {
		t.Error("empty circuit has depth")
	}
	c.X(0)
	c.X(1) // parallel with the first
	if c.Depth() != 1 {
		t.Errorf("two disjoint gates depth %d", c.Depth())
	}
	c.CNOT(0, 1) // depends on both
	if c.Depth() != 2 {
		t.Errorf("dependent gate depth %d", c.Depth())
	}
	c.CCX(1, 2, 3)
	if c.Depth() != 3 {
		t.Errorf("chain depth %d", c.Depth())
	}
}

func TestLayersPartitionGates(t *testing.T) {
	ad, err := Cuccaro(5)
	if err != nil {
		t.Fatal(err)
	}
	layers := ad.Circuit.Layers()
	if len(layers) != ad.Circuit.Depth() {
		t.Errorf("layer count %d != depth %d", len(layers), ad.Circuit.Depth())
	}
	seen := map[int]bool{}
	for _, layer := range layers {
		used := map[int]bool{}
		for _, gi := range layer {
			if seen[gi] {
				t.Fatalf("gate %d scheduled twice", gi)
			}
			seen[gi] = true
			g := ad.Circuit.Gates[gi]
			for i := 0; i < g.N; i++ {
				if used[g.Qubits[i]] {
					t.Fatalf("layer reuses qubit %d", g.Qubits[i])
				}
				used[g.Qubits[i]] = true
			}
		}
	}
	if len(seen) != len(ad.Circuit.Gates) {
		t.Errorf("scheduled %d of %d gates", len(seen), len(ad.Circuit.Gates))
	}
}

// The paper describes cnx-log-depth as logarithmic and the V-chain as
// its linear-depth counterpart; verify the asymptotic split.
func TestTreeIsShallowerThanLadder(t *testing.T) {
	type sample struct{ n, tree, chain int }
	var samples []sample
	for _, n := range []int{8, 16, 32, 64} {
		mcT, err := LogDepthTree(n)
		if err != nil {
			t.Fatal(err)
		}
		mcV, err := VChain("v", n)
		if err != nil {
			t.Fatal(err)
		}
		samples = append(samples, sample{n, mcT.Circuit.Depth(), mcV.Circuit.Depth()})
	}
	for _, s := range samples {
		if s.tree >= s.chain {
			t.Errorf("n=%d: tree depth %d >= chain depth %d", s.n, s.tree, s.chain)
		}
	}
	// Doubling n must add O(1) layers to the tree but O(n) to the chain.
	treeGrowth := samples[3].tree - samples[0].tree
	chainGrowth := samples[3].chain - samples[0].chain
	if treeGrowth > 10 {
		t.Errorf("tree depth grew by %d from n=8 to n=64; not logarithmic", treeGrowth)
	}
	if chainGrowth < 100 {
		t.Errorf("chain depth grew by only %d; expected linear growth", chainGrowth)
	}
}

func TestTDepth(t *testing.T) {
	c := NewCircuit("t", 2)
	c.T(0)
	c.T(1) // parallel
	c.CNOT(0, 1)
	c.T(0)
	if got := c.TDepth(); got != 2 {
		t.Errorf("TDepth = %d, want 2", got)
	}
	ad, err := Cuccaro(4)
	if err != nil {
		t.Fatal(err)
	}
	dec := ad.Circuit.Decompose()
	if dec.TDepth() == 0 || dec.TDepth() > dec.Depth() {
		t.Errorf("TDepth %d out of range (depth %d)", dec.TDepth(), dec.Depth())
	}
}
