package qprog

import "fmt"

// Benchmark is one Table I workload: the circuit (decomposed to
// Clifford+T) plus the paper's reported characteristics for comparison.
type Benchmark struct {
	Name        string
	Circuit     *Circuit // Clifford+T decomposition
	Stats       Stats    // measured on Circuit
	PaperQubits int
	PaperTotal  int
	PaperTGates int
}

// Benchmarks generates the five Table I circuits at the paper's sizes:
// takahashi adder (n = 19), barenco half-dirty Toffoli (20 controls),
// cnu half-borrowed (19 controls), cnx log-depth (20 controls), and
// cuccaro adder (n = 20). Qubit counts match the paper exactly; T
// counts match up to the ±1 Toffoli noted on each builder; total gate
// counts run slightly below the paper's 17-gates-per-Toffoli accounting
// (our decomposition uses the standard 15-gate network).
func Benchmarks() ([]Benchmark, error) {
	type gen struct {
		name                  string
		build                 func() (*Circuit, error)
		qubits, total, tgates int
	}
	gens := []gen{
		{"takahashi adder", func() (*Circuit, error) {
			ad, err := Takahashi(19)
			if err != nil {
				return nil, err
			}
			return ad.Circuit, nil
		}, 40, 740, 266},
		{"barenco half dirty toffoli", func() (*Circuit, error) {
			mc, err := VChain("barenco-half-dirty-toffoli", 20)
			if err != nil {
				return nil, err
			}
			return mc.Circuit, nil
		}, 39, 1224, 504},
		{"cnu half borrowed", func() (*Circuit, error) {
			mc, err := VChain("cnu-half-borrowed", 19)
			if err != nil {
				return nil, err
			}
			return mc.Circuit, nil
		}, 37, 1156, 476},
		{"cnx log depth", func() (*Circuit, error) {
			mc, err := LogDepthTree(20)
			if err != nil {
				return nil, err
			}
			return mc.Circuit, nil
		}, 39, 629, 259},
		{"cuccaro adder", func() (*Circuit, error) {
			ad, err := Cuccaro(20)
			if err != nil {
				return nil, err
			}
			return ad.Circuit, nil
		}, 42, 821, 280},
	}
	var out []Benchmark
	for _, g := range gens {
		c, err := g.build()
		if err != nil {
			return nil, fmt.Errorf("qprog: building %s: %w", g.name, err)
		}
		dec := c.Decompose()
		out = append(out, Benchmark{
			Name:        g.name,
			Circuit:     dec,
			Stats:       dec.Stats(),
			PaperQubits: g.qubits,
			PaperTotal:  g.total,
			PaperTGates: g.tgates,
		})
	}
	return out, nil
}
