package qprog

import (
	"math/rand"
	"strings"
	"testing"
)

func circuitsEqual(a, b *Circuit) bool {
	if a.Qubits != b.Qubits || len(a.Gates) != len(b.Gates) {
		return false
	}
	for i := range a.Gates {
		if a.Gates[i] != b.Gates[i] {
			return false
		}
	}
	return true
}

func TestTextRoundTripBenchmarks(t *testing.T) {
	benches, err := Benchmarks()
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range benches {
		got, err := Parse(b.Circuit.Text())
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if !circuitsEqual(got, b.Circuit) {
			t.Fatalf("%s: round trip changed the circuit", b.Name)
		}
	}
}

// Property: random circuits survive the round trip.
func TestTextRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 100; trial++ {
		n := 3 + rng.Intn(10)
		c := NewCircuit("rand circuit", n)
		for g := 0; g < rng.Intn(40); g++ {
			a, b, d := rng.Intn(n), rng.Intn(n), rng.Intn(n)
			switch rng.Intn(6) {
			case 0:
				c.X(a)
			case 1:
				if a != b {
					c.CNOT(a, b)
				}
			case 2:
				if a != b && b != d && a != d {
					c.CCX(a, b, d)
				}
			case 3:
				c.H(a)
			case 4:
				c.T(a)
			case 5:
				c.Tdg(a)
			}
		}
		got, err := Parse(c.Text())
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, c.Text())
		}
		if !circuitsEqual(got, c) {
			t.Fatalf("trial %d: round trip changed the circuit", trial)
		}
	}
}

func TestParseCommentsAndBlanks(t *testing.T) {
	src := `
# a comment
circuit demo 3

x 0
# another
cnot 0 1
ccx 0 1 2
`
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "demo" || c.Qubits != 3 || len(c.Gates) != 3 {
		t.Errorf("parsed %q/%d with %d gates", c.Name, c.Qubits, len(c.Gates))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"x 0",                      // missing header
		"circuit a",                // short header
		"circuit a zero\nx 0",      // bad qubit count
		"circuit a 2\nfoo 0",       // unknown gate
		"circuit a 2\ncnot 0",      // wrong arity
		"circuit a 2\nx 5",         // out of range
		"circuit a 2\nx q",         // bad operand
		"circuit a 2\ncnot 1 1",    // duplicate operand
		"circuit a 3\nccx 0 1 2 2", // extra operand
		"circuit a 0\nx 0",         // zero qubits
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) accepted", strings.ReplaceAll(src, "\n", "; "))
		}
	}
}

func TestTextNameSanitized(t *testing.T) {
	c := NewCircuit("two words", 1)
	c.X(0)
	got, err := Parse(c.Text())
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "two_words" {
		t.Errorf("name = %q", got.Name)
	}
	unnamed := NewCircuit("", 1)
	unnamed.X(0)
	if !strings.Contains(unnamed.Text(), "circuit unnamed 1") {
		t.Error("empty name not defaulted")
	}
}
