package qprog

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"
)

// Text serializes the circuit in a simple line format:
//
//	circuit <name> <qubits>
//	<gate> <operand> [...]
//
// Gate mnemonics are lower-case kind names. Parse inverts it exactly.
func (c *Circuit) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "circuit %s %d\n", sanitizeName(c.Name), c.Qubits)
	for _, g := range c.Gates {
		b.WriteString(strings.ToLower(g.Kind.String()))
		for i := 0; i < g.N; i++ {
			fmt.Fprintf(&b, " %d", g.Qubits[i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// sanitizeName keeps the header single-token.
func sanitizeName(name string) string {
	if name == "" {
		return "unnamed"
	}
	return strings.ReplaceAll(name, " ", "_")
}

// kindByMnemonic inverts the gate naming.
var kindByMnemonic = map[string]GateKind{
	"x": X, "cnot": CNOT, "ccx": CCX, "h": H,
	"t": T, "tdg": Tdg, "s": S, "sdg": Sdg,
}

// Parse reads a circuit in the Text format. Blank lines and lines
// starting with '#' are ignored.
func Parse(src string) (*Circuit, error) {
	sc := bufio.NewScanner(strings.NewReader(src))
	var c *Circuit
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if c == nil {
			if fields[0] != "circuit" || len(fields) != 3 {
				return nil, fmt.Errorf("qprog: line %d: expected \"circuit <name> <qubits>\"", lineNo)
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil || n < 1 {
				return nil, fmt.Errorf("qprog: line %d: bad qubit count %q", lineNo, fields[2])
			}
			c = NewCircuit(fields[1], n)
			continue
		}
		kind, ok := kindByMnemonic[fields[0]]
		if !ok {
			return nil, fmt.Errorf("qprog: line %d: unknown gate %q", lineNo, fields[0])
		}
		if len(fields)-1 != kind.arity() {
			return nil, fmt.Errorf("qprog: line %d: %s takes %d operands, got %d",
				lineNo, fields[0], kind.arity(), len(fields)-1)
		}
		qs := make([]int, 0, 3)
		for _, f := range fields[1:] {
			q, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("qprog: line %d: bad operand %q", lineNo, f)
			}
			if q < 0 || q >= c.Qubits {
				return nil, fmt.Errorf("qprog: line %d: qubit %d out of range [0,%d)", lineNo, q, c.Qubits)
			}
			qs = append(qs, q)
		}
		// Reuse the validating appender (duplicate-operand checks).
		if err := capture(func() { c.add(kind, qs...) }); err != nil {
			return nil, fmt.Errorf("qprog: line %d: %v", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if c == nil {
		return nil, fmt.Errorf("qprog: empty input")
	}
	return c, nil
}

// capture converts the IR builder's panics into errors at the parse
// boundary (panics are fine for programmatic construction bugs, but
// parsed input is data).
func capture(f func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	f()
	return nil
}
