package qprog

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGateValidation(t *testing.T) {
	c := NewCircuit("v", 3)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("out of range", func() { c.X(5) })
	mustPanic("negative", func() { c.CNOT(-1, 0) })
	mustPanic("duplicate", func() { c.CCX(0, 0, 1) })
	c.X(0)
	c.CNOT(0, 1)
	c.CCX(0, 1, 2)
	if len(c.Gates) != 3 {
		t.Errorf("gates = %d", len(c.Gates))
	}
}

func TestGateKindStrings(t *testing.T) {
	names := map[GateKind]string{X: "X", CNOT: "CNOT", CCX: "CCX", H: "H", T: "T", Tdg: "Tdg", S: "S", Sdg: "Sdg"}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d String = %q want %q", k, k.String(), want)
		}
	}
}

func TestRunClassicalRejects(t *testing.T) {
	c := NewCircuit("h", 1)
	c.H(0)
	if err := c.RunClassical(NewBitState(1)); err == nil {
		t.Error("H accepted by classical simulator")
	}
	c2 := NewCircuit("x", 2)
	c2.X(0)
	if err := c2.RunClassical(NewBitState(1)); err == nil {
		t.Error("wrong-size state accepted")
	}
}

func TestBitStateRegisters(t *testing.T) {
	s := NewBitState(6)
	reg := []int{1, 3, 5}
	s.SetUint(reg, 5) // 101
	if !s[1] || s[3] || !s[5] {
		t.Errorf("SetUint wrong: %v", s)
	}
	if s.Uint(reg) != 5 {
		t.Errorf("Uint = %d", s.Uint(reg))
	}
}

// Property: both adders compute b <- a+b+cin and z <- z^carry with a and
// cin restored, for random operands at several widths.
func TestAddersAdd(t *testing.T) {
	builders := map[string]func(int) (Adder, error){
		"cuccaro":   Cuccaro,
		"takahashi": Takahashi,
	}
	for name, build := range builders {
		for _, n := range []int{1, 2, 3, 5, 8, 19, 20} {
			ad, err := build(n)
			if err != nil {
				t.Fatal(err)
			}
			f := func(a, b uint64, cin bool) bool {
				a &= (1 << uint(n)) - 1
				b &= (1 << uint(n)) - 1
				s := NewBitState(ad.Circuit.Qubits)
				s.SetUint(ad.A, a)
				s.SetUint(ad.B, b)
				s[ad.Cin] = cin
				if err := ad.Circuit.RunClassical(s); err != nil {
					t.Fatal(err)
				}
				ci := uint64(0)
				if cin {
					ci = 1
				}
				sum := a + b + ci
				wantB := sum & ((1 << uint(n)) - 1)
				wantZ := sum>>uint(n) != 0
				return s.Uint(ad.A) == a && s.Uint(ad.B) == wantB &&
					s[ad.Z] == wantZ && s[ad.Cin] == cin
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
				t.Errorf("%s n=%d: %v", name, n, err)
			}
		}
	}
}

// Adders must also be correct after Clifford+T decomposition... which we
// cannot run classically; instead verify decomposition preserves gate
// structure: same CNOT+decomposed-Toffoli accounting and no CCX left.
func TestDecomposeAccounting(t *testing.T) {
	ad, err := Cuccaro(4)
	if err != nil {
		t.Fatal(err)
	}
	before := ad.Circuit.Stats()
	dec := ad.Circuit.Decompose()
	after := dec.Stats()
	if after.CCXs != 0 {
		t.Errorf("decomposition left %d Toffolis", after.CCXs)
	}
	if after.TGates != 7*before.CCXs {
		t.Errorf("T count %d, want %d", after.TGates, 7*before.CCXs)
	}
	if after.Total != before.Total-before.CCXs+15*before.CCXs {
		t.Errorf("total %d inconsistent with 15-gate network", after.Total)
	}
	if after.TwoQ != before.TwoQ+6*before.CCXs {
		t.Errorf("two-qubit count %d inconsistent", after.TwoQ)
	}
}

// Property: the V-chain flips the target iff all controls are 1 and
// restores dirty ancillas to their arbitrary initial values.
func TestVChainControlsAndDirtyAncilla(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, n := range []int{3, 4, 5, 7, 19, 20} {
		mc, err := VChain("vchain", n)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 80; trial++ {
			s := NewBitState(mc.Circuit.Qubits)
			allOnes := trial%2 == 0
			for _, q := range mc.Control {
				s[q] = allOnes || rng.Intn(2) == 0
			}
			if !allOnes {
				// Force at least one zero control.
				s[mc.Control[rng.Intn(len(mc.Control))]] = false
			}
			for _, q := range mc.Ancilla {
				s[q] = rng.Intn(2) == 0 // dirty
			}
			s[mc.Target] = rng.Intn(2) == 0
			before := s.Clone()
			if err := mc.Circuit.RunClassical(s); err != nil {
				t.Fatal(err)
			}
			shouldFlip := true
			for _, q := range mc.Control {
				shouldFlip = shouldFlip && before[q]
			}
			if (s[mc.Target] != before[mc.Target]) != shouldFlip {
				t.Fatalf("n=%d trial=%d: target flip wrong", n, trial)
			}
			for _, q := range append(append([]int{}, mc.Control...), mc.Ancilla...) {
				if s[q] != before[q] {
					t.Fatalf("n=%d trial=%d: qubit %d not restored", n, trial, q)
				}
			}
		}
	}
}

// Property: the log-depth tree behaves like a multi-control X with clean
// ancillas restored to zero.
func TestLogDepthTreeControls(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{4, 6, 10, 20} {
		mc, err := LogDepthTree(n)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 80; trial++ {
			s := NewBitState(mc.Circuit.Qubits)
			allOnes := trial%2 == 0
			for _, q := range mc.Control {
				s[q] = allOnes || rng.Intn(2) == 0
			}
			if !allOnes {
				s[mc.Control[rng.Intn(len(mc.Control))]] = false
			}
			before := s.Clone()
			if err := mc.Circuit.RunClassical(s); err != nil {
				t.Fatal(err)
			}
			shouldFlip := true
			for _, q := range mc.Control {
				shouldFlip = shouldFlip && before[q]
			}
			if s[mc.Target] != shouldFlip {
				t.Fatalf("n=%d trial=%d: target=%v want %v", n, trial, s[mc.Target], shouldFlip)
			}
			for _, q := range mc.Ancilla {
				if s[q] {
					t.Fatalf("n=%d trial=%d: ancilla %d not cleaned", n, trial, q)
				}
			}
		}
	}
}

func TestBuilderValidation(t *testing.T) {
	if _, err := Cuccaro(0); err == nil {
		t.Error("Cuccaro(0) accepted")
	}
	if _, err := Takahashi(-1); err == nil {
		t.Error("Takahashi(-1) accepted")
	}
	if _, err := VChain("x", 2); err == nil {
		t.Error("VChain(2) accepted")
	}
	if _, err := LogDepthTree(5); err == nil {
		t.Error("odd LogDepthTree accepted")
	}
}

// The Table I reproduction: qubit counts must match the paper exactly
// and T counts must match within one Toffoli (7 T gates).
func TestBenchmarksMatchTableI(t *testing.T) {
	bs, err := Benchmarks()
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 5 {
		t.Fatalf("%d benchmarks", len(bs))
	}
	for _, b := range bs {
		if b.Stats.Qubits != b.PaperQubits {
			t.Errorf("%s: %d qubits, paper says %d", b.Name, b.Stats.Qubits, b.PaperQubits)
		}
		diff := b.Stats.TGates - b.PaperTGates
		if diff < -7 || diff > 7 {
			t.Errorf("%s: %d T gates, paper says %d", b.Name, b.Stats.TGates, b.PaperTGates)
		}
		// Totals land within 20% of the paper's accounting.
		ratio := float64(b.Stats.Total) / float64(b.PaperTotal)
		if ratio < 0.8 || ratio > 1.2 {
			t.Errorf("%s: total %d vs paper %d (ratio %.2f)", b.Name, b.Stats.Total, b.PaperTotal, ratio)
		}
		if b.Stats.CCXs != 0 {
			t.Errorf("%s not decomposed", b.Name)
		}
	}
}
