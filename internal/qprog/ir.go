// Package qprog implements the quantum-circuit substrate behind the
// paper's Table I benchmarks: a small gate IR, a classical simulator for
// the reversible {X, CNOT, Toffoli} fragment (used to *verify* that the
// generated adders add and the multi-control gates control), the five
// benchmark generators — Takahashi adder, Barenco half-dirty multi-
// control Toffoli, CnU half-borrowed, CnX log-depth, Cuccaro adder — and
// Clifford+T decomposition with gate and T-gate accounting.
package qprog

import "fmt"

// GateKind enumerates IR gates.
type GateKind uint8

// Gate kinds: the classical-reversible fragment plus the Clifford+T
// gates produced by decomposition.
const (
	X GateKind = iota
	CNOT
	CCX
	H
	T
	Tdg
	S
	Sdg
)

// String names the gate kind.
func (k GateKind) String() string {
	switch k {
	case X:
		return "X"
	case CNOT:
		return "CNOT"
	case CCX:
		return "CCX"
	case H:
		return "H"
	case T:
		return "T"
	case Tdg:
		return "Tdg"
	case S:
		return "S"
	case Sdg:
		return "Sdg"
	}
	return "?"
}

// arity returns the number of qubit operands of the kind.
func (k GateKind) arity() int {
	switch k {
	case CCX:
		return 3
	case CNOT:
		return 2
	default:
		return 1
	}
}

// Gate is one IR operation. Qubits are [target], [control, target] or
// [control1, control2, target].
type Gate struct {
	Kind   GateKind
	Qubits [3]int
	N      int // operand count
}

// Circuit is an ordered gate list over a fixed qubit count.
type Circuit struct {
	Name   string
	Qubits int
	Gates  []Gate
}

// NewCircuit allocates an empty circuit.
func NewCircuit(name string, qubits int) *Circuit {
	return &Circuit{Name: name, Qubits: qubits}
}

// add validates operands and appends a gate.
func (c *Circuit) add(k GateKind, qs ...int) {
	if len(qs) != k.arity() {
		panic(fmt.Sprintf("qprog: %v takes %d operands, got %d", k, k.arity(), len(qs)))
	}
	var g Gate
	g.Kind = k
	g.N = len(qs)
	seen := map[int]bool{}
	for i, q := range qs {
		if q < 0 || q >= c.Qubits {
			panic(fmt.Sprintf("qprog: qubit %d out of range [0,%d)", q, c.Qubits))
		}
		if seen[q] {
			panic(fmt.Sprintf("qprog: duplicate operand %d in %v", q, k))
		}
		seen[q] = true
		g.Qubits[i] = q
	}
	c.Gates = append(c.Gates, g)
}

// X appends a bit flip.
func (c *Circuit) X(t int) { c.add(X, t) }

// CNOT appends a controlled NOT.
func (c *Circuit) CNOT(ctrl, t int) { c.add(CNOT, ctrl, t) }

// CCX appends a Toffoli.
func (c *Circuit) CCX(c1, c2, t int) { c.add(CCX, c1, c2, t) }

// H appends a Hadamard.
func (c *Circuit) H(t int) { c.add(H, t) }

// T appends a T gate.
func (c *Circuit) T(t int) { c.add(T, t) }

// Tdg appends a T† gate.
func (c *Circuit) Tdg(t int) { c.add(Tdg, t) }

// Stats summarizes a circuit the way Table I does.
type Stats struct {
	Name    string
	Qubits  int
	Total   int // total gate count
	TGates  int // T and T† count
	CCXs    int // Toffolis (zero after decomposition)
	TwoQ    int // two-qubit gate count
	MaxElem int // largest operand index used
}

// Stats computes the circuit's summary.
func (c *Circuit) Stats() Stats {
	s := Stats{Name: c.Name, Qubits: c.Qubits, Total: len(c.Gates)}
	for _, g := range c.Gates {
		switch g.Kind {
		case T, Tdg:
			s.TGates++
		case CCX:
			s.CCXs++
		case CNOT:
			s.TwoQ++
		}
		for i := 0; i < g.N; i++ {
			if g.Qubits[i] > s.MaxElem {
				s.MaxElem = g.Qubits[i]
			}
		}
	}
	return s
}

// Decompose lowers every Toffoli to the standard 15-gate Clifford+T
// network (7 T/T†, 6 CNOT, 2 H — Nielsen & Chuang Fig. 4.9) and returns
// a new circuit. Other gates pass through unchanged.
//
// Note: Table I of the paper books 17 gates per Toffoli (its totals are
// exactly 17× the Toffoli count for the pure multi-control benchmarks);
// our network is the 15-gate variant, so total gate counts run slightly
// below the paper's while T counts match exactly.
func (c *Circuit) Decompose() *Circuit {
	out := NewCircuit(c.Name, c.Qubits)
	for _, g := range c.Gates {
		if g.Kind != CCX {
			out.Gates = append(out.Gates, g)
			continue
		}
		a, b, t := g.Qubits[0], g.Qubits[1], g.Qubits[2]
		out.H(t)
		out.CNOT(b, t)
		out.Tdg(t)
		out.CNOT(a, t)
		out.T(t)
		out.CNOT(b, t)
		out.Tdg(t)
		out.CNOT(a, t)
		out.T(b)
		out.T(t)
		out.H(t)
		out.CNOT(a, b)
		out.T(a)
		out.Tdg(b)
		out.CNOT(a, b)
	}
	return out
}
