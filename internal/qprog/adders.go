package qprog

import "fmt"

// Adder bundles a reversible in-place adder circuit with its register
// layout: the circuit maps (cin, a, b, z) to (cin, a, a+b+cin mod 2ⁿ,
// z ⊕ carry).
type Adder struct {
	Circuit *Circuit
	Cin     int   // carry-in qubit
	A       []int // addend register (restored)
	B       []int // accumulator register (receives the sum)
	Z       int   // carry-out qubit
}

// registers lays out the 2n+2 qubits: cin, a[0..n), b[0..n), z.
func registers(n int) (cin int, a, b []int, z int) {
	cin = 0
	for i := 0; i < n; i++ {
		a = append(a, 1+i)
		b = append(b, 1+n+i)
	}
	z = 2*n + 1
	return
}

// Cuccaro builds the CDKM ripple-carry adder (Cuccaro et al.): a chain
// of MAJ blocks computing carries in place, a carry-out CNOT, and the
// UMA chain that unwinds the carries while depositing sum bits. It uses
// 2n Toffolis on 2n+2 qubits — Table I's "cuccaro adder" at n = 20.
func Cuccaro(n int) (Adder, error) {
	if n < 1 {
		return Adder{}, fmt.Errorf("qprog: adder width must be positive, got %d", n)
	}
	cin, a, b, z := registers(n)
	c := NewCircuit(fmt.Sprintf("cuccaro-adder-%d", n), 2*n+2)
	maj := func(x, y, w int) {
		c.CNOT(w, y)
		c.CNOT(w, x)
		c.CCX(x, y, w)
	}
	uma := func(x, y, w int) {
		c.CCX(x, y, w)
		c.CNOT(w, x)
		c.CNOT(x, y)
	}
	carry := cin
	for i := 0; i < n; i++ {
		maj(carry, b[i], a[i])
		carry = a[i]
	}
	c.CNOT(a[n-1], z)
	for i := n - 1; i >= 0; i-- {
		prev := cin
		if i > 0 {
			prev = a[i-1]
		}
		uma(prev, b[i], a[i])
	}
	return Adder{Circuit: c, Cin: cin, A: a, B: b, Z: z}, nil
}

// Takahashi builds the Takahashi–Tani–Kunihiro optimized ripple adder:
// the carry chain is folded into the a register by CNOT sweeps, cutting
// both the Toffoli and CNOT counts below Cuccaro's (2n−1 Toffolis on
// the same 2n+2 layout) — Table I's "takahashi adder" at n = 19.
func Takahashi(n int) (Adder, error) {
	if n < 1 {
		return Adder{}, fmt.Errorf("qprog: adder width must be positive, got %d", n)
	}
	cin, a, b, z := registers(n)
	c := NewCircuit(fmt.Sprintf("takahashi-adder-%d", n), 2*n+2)
	// Step 1: b_i ^= a_i.
	for i := 0; i < n; i++ {
		c.CNOT(a[i], b[i])
	}
	// Step 2: spread a into a difference chain; fold the carry-in into
	// a_0 so the uniform carry recurrence a_i = A_i ⊕ c_i holds.
	c.CNOT(a[n-1], z)
	for i := n - 2; i >= 0; i-- {
		c.CNOT(a[i], a[i+1])
	}
	c.CNOT(cin, a[0])
	// Step 3: ripple the carries upward.
	for i := 0; i < n-1; i++ {
		c.CCX(a[i], b[i], a[i+1])
	}
	c.CCX(a[n-1], b[n-1], z)
	// Step 4: peel carries back down, leaving b_i = B_i ⊕ c_i.
	for i := n - 1; i >= 1; i-- {
		c.CNOT(a[i], b[i])
		c.CCX(a[i-1], b[i-1], a[i])
	}
	c.CNOT(a[0], b[0])
	// Step 5: restore the a register.
	c.CNOT(cin, a[0])
	for i := 0; i < n-1; i++ {
		c.CNOT(a[i], a[i+1])
	}
	// Step 6: finish the sums: b_i = B_i ⊕ c_i ⊕ A_i.
	for i := 0; i < n; i++ {
		c.CNOT(a[i], b[i])
	}
	return Adder{Circuit: c, Cin: cin, A: a, B: b, Z: z}, nil
}
