package qprog

import "fmt"

// BitState is a classical basis state: one bit per qubit. The reversible
// fragment {X, CNOT, CCX} maps basis states to basis states, which lets
// the adder and multi-control benchmarks be verified exhaustively
// without a full quantum simulator.
type BitState []bool

// NewBitState allocates an all-zero state.
func NewBitState(n int) BitState { return make(BitState, n) }

// Clone copies the state.
func (s BitState) Clone() BitState {
	c := make(BitState, len(s))
	copy(c, s)
	return c
}

// RunClassical applies the circuit to the state in place. It fails on
// non-classical gates (H, T, ...), which only appear after
// decomposition.
func (c *Circuit) RunClassical(s BitState) error {
	if len(s) != c.Qubits {
		return fmt.Errorf("qprog: state has %d bits, circuit has %d qubits", len(s), c.Qubits)
	}
	for _, g := range c.Gates {
		switch g.Kind {
		case X:
			s[g.Qubits[0]] = !s[g.Qubits[0]]
		case CNOT:
			if s[g.Qubits[0]] {
				s[g.Qubits[1]] = !s[g.Qubits[1]]
			}
		case CCX:
			if s[g.Qubits[0]] && s[g.Qubits[1]] {
				s[g.Qubits[2]] = !s[g.Qubits[2]]
			}
		default:
			return fmt.Errorf("qprog: gate %v is not classical", g.Kind)
		}
	}
	return nil
}

// SetUint writes value little-endian into the register qubits.
func (s BitState) SetUint(reg []int, value uint64) {
	for i, q := range reg {
		s[q] = value&(1<<uint(i)) != 0
	}
}

// Uint reads the register little-endian.
func (s BitState) Uint(reg []int) uint64 {
	var v uint64
	for i, q := range reg {
		if s[q] {
			v |= 1 << uint(i)
		}
	}
	return v
}
