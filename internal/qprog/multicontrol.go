package qprog

import "fmt"

// MultiControl bundles a multi-controlled-X construction with its
// register layout: the circuit flips Target iff every control is 1,
// restoring the ancilla register.
type MultiControl struct {
	Circuit *Circuit
	Control []int
	Ancilla []int
	Target  int
	// Dirty reports whether the ancillas may hold arbitrary initial
	// values (borrowed qubits) or must start in |0⟩ (clean).
	Dirty bool
}

// VChain builds the Barenco et al. multi-control Toffoli ladder on n
// controls with n−2 *dirty* ancilla qubits: 4(n−2) Toffolis arranged as
// two down-up sweeps whose second pass cancels the garbage the first
// deposits on the borrowed ancillas. Table I's "barenco half dirty
// toffoli" is this circuit at n = 20 and "cnu half borrowed" at n = 19.
func VChain(name string, n int) (MultiControl, error) {
	if n < 3 {
		return MultiControl{}, fmt.Errorf("qprog: VChain needs >= 3 controls, got %d", n)
	}
	qubits := n + (n - 2) + 1
	c := NewCircuit(fmt.Sprintf("%s-%d", name, n), qubits)
	mc := MultiControl{Circuit: c, Target: qubits - 1, Dirty: true}
	for i := 0; i < n; i++ {
		mc.Control = append(mc.Control, i)
	}
	for i := 0; i < n-2; i++ {
		mc.Ancilla = append(mc.Ancilla, n+i)
	}
	sweep := func() {
		c.CCX(mc.Control[n-1], mc.Ancilla[n-3], mc.Target)
		for i := n - 2; i >= 2; i-- {
			c.CCX(mc.Control[i], mc.Ancilla[i-2], mc.Ancilla[i-1])
		}
		c.CCX(mc.Control[0], mc.Control[1], mc.Ancilla[0])
		for i := 2; i <= n-2; i++ {
			c.CCX(mc.Control[i], mc.Ancilla[i-2], mc.Ancilla[i-1])
		}
	}
	sweep()
	sweep()
	return mc, nil
}

// LogDepthTree builds the logarithmic-depth multi-control Toffoli on an
// even number of controls with n−2 *clean* ancillas: two balanced AND
// trees reduce each half of the controls to a root, one Toffoli joins
// the roots onto the target, and the trees uncompute — 2(n−1)−1
// Toffolis in O(log n) depth. Table I's "cnx log depth" is this circuit
// at n = 20.
func LogDepthTree(n int) (MultiControl, error) {
	if n < 4 || n%2 != 0 {
		return MultiControl{}, fmt.Errorf("qprog: LogDepthTree needs an even control count >= 4, got %d", n)
	}
	qubits := n + (n - 2) + 1
	c := NewCircuit(fmt.Sprintf("cnx-log-depth-%d", n), qubits)
	mc := MultiControl{Circuit: c, Target: qubits - 1}
	for i := 0; i < n; i++ {
		mc.Control = append(mc.Control, i)
	}
	for i := 0; i < n-2; i++ {
		mc.Ancilla = append(mc.Ancilla, n+i)
	}
	next := 0
	alloc := func() int {
		a := mc.Ancilla[next]
		next++
		return a
	}
	// tree reduces the wires to a single wire holding their AND,
	// recording the Toffolis so they can be uncomputed in reverse.
	var compute []Gate
	var tree func(wires []int) int
	tree = func(wires []int) int {
		for len(wires) > 1 {
			var level []int
			for i := 0; i+1 < len(wires); i += 2 {
				a := alloc()
				c.CCX(wires[i], wires[i+1], a)
				compute = append(compute, c.Gates[len(c.Gates)-1])
				level = append(level, a)
			}
			if len(wires)%2 == 1 {
				level = append(level, wires[len(wires)-1])
			}
			wires = level
		}
		return wires[0]
	}
	left := tree(mc.Control[:n/2])
	right := tree(mc.Control[n/2:])
	c.CCX(left, right, mc.Target)
	for i := len(compute) - 1; i >= 0; i-- {
		g := compute[i]
		c.CCX(g.Qubits[0], g.Qubits[1], g.Qubits[2])
	}
	return mc, nil
}
