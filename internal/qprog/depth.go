package qprog

// Depth returns the circuit depth under greedy ASAP scheduling: gates
// touching disjoint qubits execute in the same layer. This is the
// metric behind Table I's benchmark descriptions — the Barenco ladder is
// linear depth while the cnx tree construction is logarithmic.
func (c *Circuit) Depth() int {
	busy := make([]int, c.Qubits) // first free layer per qubit
	depth := 0
	for _, g := range c.Gates {
		layer := 0
		for i := 0; i < g.N; i++ {
			if busy[g.Qubits[i]] > layer {
				layer = busy[g.Qubits[i]]
			}
		}
		for i := 0; i < g.N; i++ {
			busy[g.Qubits[i]] = layer + 1
		}
		if layer+1 > depth {
			depth = layer + 1
		}
	}
	return depth
}

// Layers schedules the circuit into ASAP layers and returns the gate
// indices of each layer, in order.
func (c *Circuit) Layers() [][]int {
	busy := make([]int, c.Qubits)
	var layers [][]int
	for gi, g := range c.Gates {
		layer := 0
		for i := 0; i < g.N; i++ {
			if busy[g.Qubits[i]] > layer {
				layer = busy[g.Qubits[i]]
			}
		}
		for i := 0; i < g.N; i++ {
			busy[g.Qubits[i]] = layer + 1
		}
		for len(layers) <= layer {
			layers = append(layers, nil)
		}
		layers[layer] = append(layers[layer], gi)
	}
	return layers
}

// TDepth returns the depth counting only T/T† layers — the
// fault-tolerant cost metric, since T gates are the ones requiring
// decoder synchronization (§III).
func (c *Circuit) TDepth() int {
	busy := make([]int, c.Qubits)
	depth := 0
	for _, g := range c.Gates {
		layer := 0
		for i := 0; i < g.N; i++ {
			if busy[g.Qubits[i]] > layer {
				layer = busy[g.Qubits[i]]
			}
		}
		adv := 0
		if g.Kind == T || g.Kind == Tdg {
			adv = 1
		}
		for i := 0; i < g.N; i++ {
			busy[g.Qubits[i]] = layer + adv
		}
		if layer+adv > depth {
			depth = layer + adv
		}
	}
	return depth
}
