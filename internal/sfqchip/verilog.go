package sfqchip

import (
	"fmt"
	"io"
	"strings"
)

// WriteVerilog emits the netlist as a structural Verilog module — the
// artifact an SFQ place-and-route flow would consume after the
// path-balancing pass. Primary inputs are named in[i], outputs out[i],
// internal nets n<gate-index>; cells are instantiated by library name.
func (n *Netlist) WriteVerilog(w io.Writer, moduleName string) error {
	if moduleName == "" {
		moduleName = sanitizeIdent(n.name)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "// generated from %q (depth %d, %d gates, %d DFFs)\n",
		n.name, n.LogicalDepth(), len(n.gates), n.dffs)
	fmt.Fprintf(&b, "module %s (\n  input  wire clk,\n", moduleName)
	for i := 0; i < n.numInputs; i++ {
		fmt.Fprintf(&b, "  input  wire in%d,\n", i)
	}
	for i := range n.outputs {
		sep := ","
		if i == len(n.outputs)-1 {
			sep = ""
		}
		fmt.Fprintf(&b, "  output wire out%d%s\n", i, sep)
	}
	b.WriteString(");\n")
	for i := range n.gates {
		fmt.Fprintf(&b, "  wire n%d;\n", i)
	}
	net := func(r Ref) string {
		if r.isInput() {
			return fmt.Sprintf("in%d", r.inputIndex())
		}
		return fmt.Sprintf("n%d", int(r))
	}
	for i, g := range n.gates {
		fmt.Fprintf(&b, "  %s u%d (.clk(clk)", g.cell.Name, i)
		for k, r := range g.ins {
			fmt.Fprintf(&b, ", .%c(%s)", 'a'+k, net(r))
		}
		fmt.Fprintf(&b, ", .q(n%d));\n", i)
	}
	for i, r := range n.outputs {
		fmt.Fprintf(&b, "  assign out%d = %s;\n", i, net(r))
	}
	b.WriteString("endmodule\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// sanitizeIdent turns a human-readable netlist name into a Verilog
// identifier.
func sanitizeIdent(name string) string {
	if name == "" {
		return "netlist"
	}
	var b strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
