package sfqchip

import (
	"fmt"
	"math"
)

// Ref identifies a signal in a netlist: a primary input or a gate
// output.
type Ref int

// Input returns the Ref of primary input i.
func Input(i int) Ref { return Ref(-(i + 1)) }

// isInput reports whether the ref names a primary input.
func (r Ref) isInput() bool { return r < 0 }

// inputIndex returns the primary-input index of an input ref.
func (r Ref) inputIndex() int { return int(-r) - 1 }

// gate is one instantiated cell.
type gate struct {
	cell Cell
	ins  []Ref
}

// Netlist is a DAG of library cells over a set of primary inputs. Gates
// are appended in topological order (inputs must already exist).
type Netlist struct {
	name      string
	numInputs int
	gates     []gate
	outputs   []Ref
	balanced  bool
	dffs      int // path-balancing DFFs inserted by Balance
}

// NewNetlist creates an empty netlist with the given number of primary
// inputs.
func NewNetlist(name string, numInputs int) *Netlist {
	return &Netlist{name: name, numInputs: numInputs}
}

// Name returns the netlist's label.
func (n *Netlist) Name() string { return n.name }

// NumInputs returns the primary input count.
func (n *Netlist) NumInputs() int { return n.numInputs }

// NumGates returns the gate count (including any inserted DFFs).
func (n *Netlist) NumGates() int { return len(n.gates) }

// DFFs returns the number of path-balancing DFFs inserted by Balance.
func (n *Netlist) DFFs() int { return n.dffs }

// AddGate appends a cell driven by the given refs and returns its output
// ref. Fan-in must match the cell family: 1 for NOT and DRO_DFF, 2 for
// the two-input gates.
func (n *Netlist) AddGate(cellName string, ins ...Ref) (Ref, error) {
	c, err := CellByName(cellName)
	if err != nil {
		return 0, err
	}
	want := 2
	if cellName == "NOT" || cellName == "DRO_DFF" {
		want = 1
	}
	if len(ins) != want {
		return 0, fmt.Errorf("sfqchip: %s takes %d inputs, got %d", cellName, want, len(ins))
	}
	for _, r := range ins {
		if r.isInput() {
			if r.inputIndex() >= n.numInputs {
				return 0, fmt.Errorf("sfqchip: input %d out of range", r.inputIndex())
			}
		} else if int(r) >= len(n.gates) {
			return 0, fmt.Errorf("sfqchip: gate ref %d not yet defined", int(r))
		}
	}
	n.gates = append(n.gates, gate{cell: c, ins: ins})
	n.balanced = false
	return Ref(len(n.gates) - 1), nil
}

// MustGate is AddGate panicking on error; for the fixed built-in
// subcircuit builders.
func (n *Netlist) MustGate(cellName string, ins ...Ref) Ref {
	r, err := n.AddGate(cellName, ins...)
	if err != nil {
		panic(err)
	}
	return r
}

// MarkOutput declares a primary output.
func (n *Netlist) MarkOutput(r Ref) { n.outputs = append(n.outputs, r) }

// levels computes each gate's pipeline level (primary inputs are level
// 0; each gate is one level past its deepest input).
func (n *Netlist) levels() []int {
	lv := make([]int, len(n.gates))
	for i, g := range n.gates {
		max := 0
		for _, r := range g.ins {
			d := 0
			if !r.isInput() {
				d = lv[int(r)]
			}
			if d > max {
				max = d
			}
		}
		lv[i] = max + 1
	}
	return lv
}

// LogicalDepth is the length of the longest input-to-output path counted
// in logic gates. Path-balancing DRO DFFs are pipeline storage, not
// logic, and are excluded — the convention Table III's depth column
// uses.
func (n *Netlist) LogicalDepth() int {
	ld := make([]int, len(n.gates))
	for i, g := range n.gates {
		max := 0
		for _, r := range g.ins {
			if !r.isInput() && ld[int(r)] > max {
				max = ld[int(r)]
			}
		}
		ld[i] = max
		if g.cell.Name != "DRO_DFF" {
			ld[i]++
		}
	}
	max := 0
	for _, r := range n.outputs {
		if !r.isInput() && ld[int(r)] > max {
			max = ld[int(r)]
		}
	}
	return max
}

// Balance inserts DRO DFFs so that every path from any primary input to
// any primary output crosses the same number of clocked cells — the full
// path-balancing property dc-biased SFQ circuits require. Gate levels
// are first relaxed as late as possible (the PBMap-style slack pass that
// minimizes DFF count), then each edge's residual slack is filled with
// DFFs. It returns the number of DFFs inserted.
func (n *Netlist) Balance() int {
	if n.balanced {
		return 0
	}
	asap := n.levels()
	depth := 0
	for _, r := range n.outputs {
		if !r.isInput() && asap[int(r)] > depth {
			depth = asap[int(r)]
		}
	}
	// As-late-as-possible levels: every gate sinks just below its
	// earliest consumer; outputs stay at the overall depth so the
	// circuit presents a single synchronized wavefront.
	alap := make([]int, len(n.gates))
	for i := range alap {
		alap[i] = depth
	}
	for i := len(n.gates) - 1; i >= 0; i-- {
		for _, r := range n.gates[i].ins {
			if !r.isInput() && alap[i]-1 < alap[int(r)] {
				alap[int(r)] = alap[i] - 1
			}
		}
	}
	// Clamp: a gate cannot be earlier than its ASAP level.
	lv := make([]int, len(n.gates))
	for i := range lv {
		lv[i] = alap[i]
		if asap[i] > lv[i] {
			lv[i] = asap[i]
		}
	}
	// Fill each edge's slack with DFF chains. Primary inputs are level
	// 0, so input→gate edges need lv(gate)−1 DFFs.
	var rebuilt []gate
	remap := make([]Ref, len(n.gates))
	dffs := 0
	pad := func(r Ref, from, to int) Ref {
		for k := from; k < to; k++ {
			rebuilt = append(rebuilt, gate{cell: mustCell("DRO_DFF"), ins: []Ref{r}})
			r = Ref(len(rebuilt) - 1)
			dffs++
		}
		return r
	}
	for i, g := range n.gates {
		ins := make([]Ref, len(g.ins))
		for k, r := range g.ins {
			srcLevel := 0
			src := r
			if !r.isInput() {
				srcLevel = lv[int(r)]
				src = remap[int(r)]
			}
			ins[k] = pad(src, srcLevel, lv[i]-1)
		}
		rebuilt = append(rebuilt, gate{cell: g.cell, ins: ins})
		remap[i] = Ref(len(rebuilt) - 1)
	}
	outs := make([]Ref, len(n.outputs))
	for i, r := range n.outputs {
		if r.isInput() {
			outs[i] = pad(r, 0, depth)
		} else {
			outs[i] = pad(remap[int(r)], lv[int(r)], depth)
		}
	}
	n.gates = rebuilt
	n.outputs = outs
	n.dffs += dffs
	n.balanced = true
	return dffs
}

// IsBalanced verifies the full path-balancing property directly: every
// path from a primary input to a primary output has the same gate count.
func (n *Netlist) IsBalanced() bool {
	lv := n.levels()
	// All outputs must sit at the same pipeline depth (DFFs included).
	depth := 0
	for _, r := range n.outputs {
		if !r.isInput() && lv[int(r)] > depth {
			depth = lv[int(r)]
		}
	}
	for _, r := range n.outputs {
		if r.isInput() {
			if depth != 0 {
				return false
			}
			continue
		}
		if lv[int(r)] != depth {
			return false
		}
	}
	// Within every gate, all inputs must sit exactly one level below.
	for i, g := range n.gates {
		for _, r := range g.ins {
			d := 0
			if !r.isInput() {
				d = lv[int(r)]
			}
			if d != lv[i]-1 {
				return false
			}
		}
	}
	return true
}

// Report is one row of Table III.
type Report struct {
	Name         string
	LogicalDepth int
	LatencyPs    float64
	AreaUm2      float64
	PowerUw      float64
	JJs          int
	Gates        int
	DFFs         int
}

// Characterize rolls the netlist up into a Table III row. Latency is the
// sum over pipeline stages of the slowest cell delay in each stage (the
// clock must wait for the slowest gate of a stage before releasing the
// next pulse wave).
func (n *Netlist) Characterize() Report {
	r := Report{Name: n.name, LogicalDepth: n.LogicalDepth(), Gates: len(n.gates), DFFs: n.dffs}
	lv := n.levels()
	stage := map[int]float64{}
	for i, g := range n.gates {
		r.AreaUm2 += g.cell.AreaUm2
		r.PowerUw += g.cell.PowerUw
		r.JJs += g.cell.JJs
		if g.cell.DelayPs > stage[lv[i]] {
			stage[lv[i]] = g.cell.DelayPs
		}
	}
	for _, d := range stage {
		r.LatencyPs += d
	}
	r.LatencyPs = math.Round(r.LatencyPs*100) / 100
	return r
}

func mustCell(name string) Cell {
	c, err := CellByName(name)
	if err != nil {
		panic(err)
	}
	return c
}
