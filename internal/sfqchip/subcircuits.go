package sfqchip

import "math"

// Direction index order used by the subcircuit builders: N, E, S, W
// (matching internal/sfq).
const (
	dN = iota
	dE
	dS
	dW
)

func opp(d int) int { return d ^ 2 }

// orTree folds refs with OR2 gates.
func orTree(n *Netlist, refs ...Ref) Ref {
	if len(refs) == 1 {
		return refs[0]
	}
	mid := len(refs) / 2
	return n.MustGate("OR2", orTree(n, refs[:mid]...), orTree(n, refs[mid:]...))
}

// andTree folds refs with AND2 gates.
func andTree(n *Netlist, refs ...Ref) Ref {
	if len(refs) == 1 {
		return refs[0]
	}
	mid := len(refs) / 2
	return n.MustGate("AND2", andTree(n, refs[:mid]...), andTree(n, refs[mid:]...))
}

// GrowPairReq builds the combined Pair Req./Grow subcircuit (the two are
// one row of Table III). Inputs: hot, block, growIn[4] (wavefront
// arrivals by direction of origin), growFrom[4] (latched arrivals),
// reqIn[4]. Outputs: growOut[4] then reqOut[4].
//
// Grow logic: growOut_d = ¬block ∧ (hot ∨ growIn_opp(d)).
// Request logic: an intermediate fires on grow latches from two distinct
// directions — (W∧E), (N∧S), (N∧W) or (N∧E), the §V-C effectiveness
// rule — and sends requests back toward both; otherwise requests pass
// straight through non-hot modules.
func GrowPairReq() *Netlist {
	n := NewNetlist("Pair Req./Grow Subcircuit", 14)
	hot := Input(0)
	block := Input(1)
	growIn := [4]Ref{Input(2), Input(3), Input(4), Input(5)}
	growFrom := [4]Ref{Input(6), Input(7), Input(8), Input(9)}
	reqIn := [4]Ref{Input(10), Input(11), Input(12), Input(13)}

	pass := n.MustGate("NOT", block)
	for d := 0; d < 4; d++ {
		or := n.MustGate("OR2", hot, growIn[opp(d)])
		n.MarkOutput(n.MustGate("AND2", pass, or))
	}

	fWE := n.MustGate("AND2", growFrom[dW], growFrom[dE])
	fNS := n.MustGate("AND2", growFrom[dN], growFrom[dS])
	fNW := n.MustGate("AND2", growFrom[dN], growFrom[dW])
	fNE := n.MustGate("AND2", growFrom[dN], growFrom[dE])
	fire := [4]Ref{
		dN: orTree(n, fNS, fNW, fNE),
		dE: n.MustGate("OR2", fWE, fNE),
		dS: fNS,
		dW: n.MustGate("OR2", fWE, fNW),
	}
	cold := n.MustGate("NOT", hot)
	for d := 0; d < 4; d++ {
		through := n.MustGate("AND2", reqIn[opp(d)], cold)
		out := n.MustGate("OR2", fire[d], through)
		n.MarkOutput(n.MustGate("AND2", pass, out))
	}
	return n
}

// PairGrant builds the Pair Grant subcircuit. Inputs: hot, granted
// (one-grant latch), block, reqArr[4] (requests stopping here),
// grantIn[4], want[4] (request-direction latches). Outputs grantOut[4].
//
// A hot, not-yet-granting module grants the highest-priority arriving
// request (N > W > E > S); passing grants are forwarded unless this
// module is the intermediate that requested along that line.
func PairGrant() *Netlist {
	n := NewNetlist("Pair Grant Subcircuit", 15)
	hot := Input(0)
	granted := Input(1)
	block := Input(2)
	reqArr := [4]Ref{Input(3), Input(4), Input(5), Input(6)}
	grantIn := [4]Ref{Input(7), Input(8), Input(9), Input(10)}
	want := [4]Ref{Input(11), Input(12), Input(13), Input(14)}

	pass := n.MustGate("NOT", block)
	free := n.MustGate("AND2", hot, n.MustGate("NOT", granted))
	// Priority encode N > W > E > S.
	notN := n.MustGate("NOT", reqArr[dN])
	notW := n.MustGate("NOT", reqArr[dW])
	notE := n.MustGate("NOT", reqArr[dE])
	pick := [4]Ref{
		dN: reqArr[dN],
		dW: n.MustGate("AND2", reqArr[dW], notN),
		dE: andTree(n, reqArr[dE], notN, notW),
		dS: andTree(n, reqArr[dS], notN, notW, notE),
	}
	for d := 0; d < 4; d++ {
		grant := n.MustGate("AND2", free, pick[d])
		fwd := n.MustGate("AND2", grantIn[opp(d)], n.MustGate("NOT", want[opp(d)]))
		out := n.MustGate("OR2", grant, fwd)
		n.MarkOutput(n.MustGate("AND2", pass, out))
	}
	return n
}

// PairSub builds the Pair subcircuit. Inputs: hot, pairIn[4],
// grants[4], want[4]. Outputs: pairOut[4] then resetOut.
//
// An intermediate whose every requested direction has been granted emits
// pair signals along those directions; passing pair signals forward
// through cold modules; a pair arriving at a hot module emits the global
// reset instead of passing (§VI-B).
func PairSub() *Netlist {
	n := NewNetlist("Pair Subcircuit", 13)
	hot := Input(0)
	pairIn := [4]Ref{Input(1), Input(2), Input(3), Input(4)}
	grants := [4]Ref{Input(5), Input(6), Input(7), Input(8)}
	want := [4]Ref{Input(9), Input(10), Input(11), Input(12)}

	// met = fired ∧ ∀d (want_d → grants_d)
	var oks [4]Ref
	for d := 0; d < 4; d++ {
		oks[d] = n.MustGate("OR2", grants[d], n.MustGate("NOT", want[d]))
	}
	fired := orTree(n, want[0], want[1], want[2], want[3])
	met := n.MustGate("AND2", andTree(n, oks[0], oks[1], oks[2], oks[3]), fired)
	cold := n.MustGate("NOT", hot)
	for d := 0; d < 4; d++ {
		emit := n.MustGate("AND2", met, want[d])
		through := n.MustGate("AND2", pairIn[opp(d)], cold)
		n.MarkOutput(n.MustGate("OR2", emit, through))
	}
	anyPair := orTree(n, pairIn[0], pairIn[1], pairIn[2], pairIn[3])
	n.MarkOutput(n.MustGate("AND2", hot, anyPair))
	return n
}

// ResetKeeper builds the Reset subcircuit: the arriving global reset
// pulse is stretched across ResetDepth cycles by a DRO chain (§VI-A's
// cascaded buffers) and ORed into the block signal that gates every
// other subcircuit input. depth is the module circuit depth to cover.
func ResetKeeper(depth int) *Netlist {
	n := NewNetlist("Reset Subcircuit", 1)
	in := Input(0)
	taps := []Ref{in}
	prev := in
	for i := 0; i < depth; i++ {
		prev = n.MustGate("DRO_DFF", prev)
		taps = append(taps, prev)
	}
	n.MarkOutput(orTree(n, taps...))
	return n
}

// FullModule composes every subcircuit of one decoder module into a
// single netlist sharing the hot-syndrome and block inputs, mirroring
// the Table III "Full Circuit" row.
func FullModule() *Netlist {
	n := NewNetlist("Full Circuit", 27)
	hot := Input(0)
	resetIn := Input(1)
	growIn := [4]Ref{Input(2), Input(3), Input(4), Input(5)}
	growFrom := [4]Ref{Input(6), Input(7), Input(8), Input(9)}
	reqIn := [4]Ref{Input(10), Input(11), Input(12), Input(13)}
	granted := Input(14)
	grantIn := [4]Ref{Input(15), Input(16), Input(17), Input(18)}
	want := [4]Ref{Input(19), Input(20), Input(21), Input(22)}
	pairIn := [4]Ref{Input(23), Input(24), Input(25), Input(26)}

	// Reset keeper drives the block signal.
	taps := []Ref{resetIn}
	prev := resetIn
	for i := 0; i < 5; i++ {
		prev = n.MustGate("DRO_DFF", prev)
		taps = append(taps, prev)
	}
	block := orTree(n, taps...)
	pass := n.MustGate("NOT", block)

	// Grow.
	for d := 0; d < 4; d++ {
		or := n.MustGate("OR2", hot, growIn[opp(d)])
		n.MarkOutput(n.MustGate("AND2", pass, or))
	}
	// Pair requests.
	fWE := n.MustGate("AND2", growFrom[dW], growFrom[dE])
	fNS := n.MustGate("AND2", growFrom[dN], growFrom[dS])
	fNW := n.MustGate("AND2", growFrom[dN], growFrom[dW])
	fNE := n.MustGate("AND2", growFrom[dN], growFrom[dE])
	fire := [4]Ref{
		dN: orTree(n, fNS, fNW, fNE),
		dE: n.MustGate("OR2", fWE, fNE),
		dS: fNS,
		dW: n.MustGate("OR2", fWE, fNW),
	}
	cold := n.MustGate("NOT", hot)
	for d := 0; d < 4; d++ {
		through := n.MustGate("AND2", reqIn[opp(d)], cold)
		out := n.MustGate("OR2", fire[d], through)
		n.MarkOutput(n.MustGate("AND2", pass, out))
	}
	// Pair grants.
	free := n.MustGate("AND2", hot, n.MustGate("NOT", granted))
	notN := n.MustGate("NOT", reqIn[dN])
	notW := n.MustGate("NOT", reqIn[dW])
	notE := n.MustGate("NOT", reqIn[dE])
	pick := [4]Ref{
		dN: reqIn[dN],
		dW: n.MustGate("AND2", reqIn[dW], notN),
		dE: andTree(n, reqIn[dE], notN, notW),
		dS: andTree(n, reqIn[dS], notN, notW, notE),
	}
	for d := 0; d < 4; d++ {
		grant := n.MustGate("AND2", free, pick[d])
		fwd := n.MustGate("AND2", grantIn[opp(d)], n.MustGate("NOT", want[opp(d)]))
		out := n.MustGate("OR2", grant, fwd)
		n.MarkOutput(n.MustGate("AND2", pass, out))
	}
	// Pair signals and the reset generator (deliberately NOT gated by
	// block: pair propagation survives resets).
	var oks [4]Ref
	for d := 0; d < 4; d++ {
		oks[d] = n.MustGate("OR2", grants(n, grantIn, want, d), n.MustGate("NOT", want[d]))
	}
	fired := orTree(n, want[0], want[1], want[2], want[3])
	met := n.MustGate("AND2", andTree(n, oks[0], oks[1], oks[2], oks[3]), fired)
	for d := 0; d < 4; d++ {
		emit := n.MustGate("AND2", met, want[d])
		through := n.MustGate("AND2", pairIn[opp(d)], cold)
		n.MarkOutput(n.MustGate("OR2", emit, through))
	}
	anyPair := orTree(n, pairIn[0], pairIn[1], pairIn[2], pairIn[3])
	n.MarkOutput(n.MustGate("AND2", hot, anyPair))
	return n
}

// grants models the grant-latch view the pair subcircuit consumes inside
// the composed module: a grant counts once it arrives on a wanted line.
func grants(n *Netlist, grantIn, want [4]Ref, d int) Ref {
	return n.MustGate("AND2", grantIn[d], want[d])
}

// TableIII characterizes the decoder subcircuits after path balancing:
// the reproduction of the paper's synthesis table.
func TableIII() []Report {
	nets := []*Netlist{PairGrant(), PairSub(), GrowPairReq(), FullModule()}
	reports := make([]Report, 0, len(nets))
	for _, n := range nets {
		n.Balance()
		reports = append(reports, n.Characterize())
	}
	return reports
}

// FullCircuitLatencyPs returns the critical-path latency of the
// balanced full module — the Table III "Full Circuit" row. This is the
// physical quantity behind the mesh simulator's cycle time: one mesh
// cycle takes one pulse wave through the composed pipeline. The mesh
// pins the paper's published value (sfq.CycleTimePs = 162.72 ps); this
// reproduction's simplified cell library synthesizes to the same order
// of magnitude, a gap the cross-check test in this package documents.
func FullCircuitLatencyPs() float64 {
	for _, r := range TableIII() {
		if r.Name == "Full Circuit" {
			return r.LatencyPs
		}
	}
	return 0
}

// ModuleFootprint returns the area (mm²) and power (µW) of one decoder
// module: the full composed circuit after balancing.
func ModuleFootprint() (areaMm2, powerUw float64) {
	n := FullModule()
	n.Balance()
	r := n.Characterize()
	return r.AreaUm2 / 1e6, r.PowerUw
}

// DecoderFootprint scales one module to a full distance-d decoder mesh
// (one module per physical qubit, as §VIII does for the 289-qubit d = 9
// system).
func DecoderFootprint(d int) (areaMm2, powerMw float64, modules int) {
	modules = (2*d - 1) * (2*d - 1)
	a, p := ModuleFootprint()
	return a * float64(modules), p * float64(modules) / 1000, modules
}

// MeshSideWithinBudget returns the largest square mesh side whose total
// module power fits the given budget in watts — the §VIII dilution-
// refrigerator co-location argument.
func MeshSideWithinBudget(budgetW float64) int {
	_, pUw := ModuleFootprint()
	if pUw <= 0 {
		return 0
	}
	modules := budgetW * 1e6 / pUw
	return int(math.Sqrt(modules))
}
