// Package sfqchip models the ERSFQ hardware side of the NISQ+ decoder:
// the Table II cell library, gate-level netlists for the five decoder
// subcircuits of §VI-B, the full path-balancing pass dc-biased SFQ logic
// requires (every input-to-gate path must have equal gate count, met by
// inserting DRO DFFs), and the area / power / Josephson-junction /
// latency roll-ups behind Table III and the dilution-refrigerator budget
// analysis of §VIII.
package sfqchip

import "fmt"

// Cell describes one ERSFQ standard cell (Table II).
type Cell struct {
	Name    string
	AreaUm2 float64 // cell area in µm²
	JJs     int     // Josephson junction count
	DelayPs float64 // intrinsic delay in ps
	PowerUw float64 // dissipation in µW (per the Table III AND/OR/NOT rows)
}

// The Table II ERSFQ cell library.
var library = []Cell{
	{Name: "AND2", AreaUm2: 4200, JJs: 17, DelayPs: 9.2, PowerUw: 0.026},
	{Name: "OR2", AreaUm2: 4200, JJs: 12, DelayPs: 7.2, PowerUw: 0.026},
	{Name: "XOR2", AreaUm2: 4200, JJs: 12, DelayPs: 5.7, PowerUw: 0.026},
	{Name: "NOT", AreaUm2: 4200, JJs: 13, DelayPs: 9.2, PowerUw: 0.026},
	{Name: "DRO_DFF", AreaUm2: 3360, JJs: 10, DelayPs: 5.0, PowerUw: 0.021},
}

// Library returns the Table II cells.
func Library() []Cell {
	out := make([]Cell, len(library))
	copy(out, library)
	return out
}

// CellByName resolves a library cell.
func CellByName(name string) (Cell, error) {
	for _, c := range library {
		if c.Name == name {
			return c, nil
		}
	}
	return Cell{}, fmt.Errorf("sfqchip: unknown cell %q", name)
}
