package sfqchip

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/sfq"
)

func TestLibraryMatchesTableII(t *testing.T) {
	want := map[string]struct {
		area  float64
		jjs   int
		delay float64
	}{
		"AND2":    {4200, 17, 9.2},
		"OR2":     {4200, 12, 7.2},
		"XOR2":    {4200, 12, 5.7},
		"NOT":     {4200, 13, 9.2},
		"DRO_DFF": {3360, 10, 5.0},
	}
	cells := Library()
	if len(cells) != len(want) {
		t.Fatalf("library has %d cells", len(cells))
	}
	for _, c := range cells {
		w, ok := want[c.Name]
		if !ok {
			t.Fatalf("unexpected cell %q", c.Name)
		}
		if c.AreaUm2 != w.area || c.JJs != w.jjs || c.DelayPs != w.delay {
			t.Errorf("%s = %+v, want %+v", c.Name, c, w)
		}
	}
	if _, err := CellByName("NAND9"); err == nil {
		t.Error("unknown cell resolved")
	}
}

func TestNetlistValidation(t *testing.T) {
	n := NewNetlist("t", 2)
	if _, err := n.AddGate("AND2", Input(0)); err == nil {
		t.Error("wrong fan-in accepted")
	}
	if _, err := n.AddGate("NOT", Input(5)); err == nil {
		t.Error("out-of-range input accepted")
	}
	if _, err := n.AddGate("AND2", Input(0), Ref(7)); err == nil {
		t.Error("forward gate ref accepted")
	}
	if _, err := n.AddGate("FOO", Input(0), Input(1)); err == nil {
		t.Error("unknown cell accepted")
	}
	r, err := n.AddGate("AND2", Input(0), Input(1))
	if err != nil {
		t.Fatal(err)
	}
	n.MarkOutput(r)
	if n.NumGates() != 1 || n.NumInputs() != 2 || n.LogicalDepth() != 1 {
		t.Errorf("basic netlist accounting wrong: %d gates depth %d", n.NumGates(), n.LogicalDepth())
	}
}

// Balance must establish the full path-balancing property on an
// intentionally skewed netlist and report the DFFs it inserted.
func TestBalanceSkewedNetlist(t *testing.T) {
	n := NewNetlist("skew", 3)
	a := n.MustGate("AND2", Input(0), Input(1)) // level 1
	b := n.MustGate("OR2", a, Input(2))         // level 2: input 2 needs 1 DFF
	c := n.MustGate("NOT", b)                   // level 3
	n.MarkOutput(c)
	n.MarkOutput(a) // level-1 output must be padded to depth 3
	if n.IsBalanced() {
		t.Fatal("skewed netlist claims balance")
	}
	dffs := n.Balance()
	if dffs == 0 {
		t.Fatal("no DFFs inserted")
	}
	if !n.IsBalanced() {
		t.Fatal("Balance did not balance")
	}
	if n.DFFs() != dffs {
		t.Errorf("DFFs()=%d, Balance returned %d", n.DFFs(), dffs)
	}
	// Balancing again is a no-op.
	if n.Balance() != 0 {
		t.Error("second Balance inserted more DFFs")
	}
}

// Property: Balance always yields IsBalanced on random DAGs, and never
// changes the logical depth.
func TestBalanceRandomDAGs(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	cells := []string{"AND2", "OR2", "XOR2"}
	for trial := 0; trial < 100; trial++ {
		ni := 2 + rng.Intn(5)
		n := NewNetlist("rand", ni)
		var refs []Ref
		for i := 0; i < ni; i++ {
			refs = append(refs, Input(i))
		}
		for g := 0; g < 3+rng.Intn(15); g++ {
			var r Ref
			if rng.Intn(5) == 0 {
				r = n.MustGate("NOT", refs[rng.Intn(len(refs))])
			} else {
				r = n.MustGate(cells[rng.Intn(len(cells))],
					refs[rng.Intn(len(refs))], refs[rng.Intn(len(refs))])
			}
			refs = append(refs, r)
		}
		for k := 0; k < 1+rng.Intn(3); k++ {
			n.MarkOutput(refs[ni+rng.Intn(len(refs)-ni)])
		}
		before := n.LogicalDepth()
		n.Balance()
		if !n.IsBalanced() {
			t.Fatalf("trial %d: unbalanced after Balance", trial)
		}
		if got := n.LogicalDepth(); got != before {
			t.Fatalf("trial %d: depth changed %d -> %d", trial, before, got)
		}
	}
}

func TestCharacterizeCountsCells(t *testing.T) {
	n := NewNetlist("c", 2)
	a := n.MustGate("AND2", Input(0), Input(1))
	b := n.MustGate("NOT", a)
	n.MarkOutput(b)
	r := n.Characterize()
	if r.AreaUm2 != 8400 || r.JJs != 30 || r.Gates != 2 {
		t.Errorf("report = %+v", r)
	}
	if r.LatencyPs != 9.2+9.2 {
		t.Errorf("latency = %v", r.LatencyPs)
	}
	if r.PowerUw != 0.052 {
		t.Errorf("power = %v", r.PowerUw)
	}
}

// The decoder subcircuits must balance, have depths close to the
// paper's (5 for subcircuits, 6 for the full circuit, within a small
// slack), and have footprints in the paper's order of magnitude.
func TestTableIIIShape(t *testing.T) {
	reports := TableIII()
	if len(reports) != 4 {
		t.Fatalf("TableIII has %d rows", len(reports))
	}
	byName := map[string]Report{}
	for _, r := range reports {
		byName[r.Name] = r
	}
	for name, r := range byName {
		if name == "Full Circuit" {
			continue
		}
		if r.LogicalDepth < 3 || r.LogicalDepth > 7 {
			t.Errorf("%s depth %d outside [3,7]", name, r.LogicalDepth)
		}
	}
	full := byName["Full Circuit"]
	if full.LogicalDepth < 5 || full.LogicalDepth > 9 {
		t.Errorf("full circuit depth %d outside [5,9]", full.LogicalDepth)
	}
	// Paper: full circuit 1.28 mm² and 13.08 µW per module. Our model
	// must land within the same order of magnitude.
	if full.AreaUm2 < 2e5 || full.AreaUm2 > 5e6 {
		t.Errorf("full circuit area %v µm² implausible", full.AreaUm2)
	}
	if full.PowerUw < 0.5 || full.PowerUw > 50 {
		t.Errorf("full circuit power %v µW implausible", full.PowerUw)
	}
	// The full circuit strictly contains each subcircuit.
	for name, r := range byName {
		if name != "Full Circuit" && r.AreaUm2 >= full.AreaUm2 {
			t.Errorf("%s area %v >= full %v", name, r.AreaUm2, full.AreaUm2)
		}
	}
}

// Every decoder subcircuit netlist must be balanced after Balance — the
// correctness requirement for dc-biased SFQ.
func TestSubcircuitsBalance(t *testing.T) {
	for _, n := range []*Netlist{GrowPairReq(), PairGrant(), PairSub(), ResetKeeper(5), FullModule()} {
		n.Balance()
		if !n.IsBalanced() {
			t.Errorf("%s not balanced", n.Name())
		}
	}
}

func TestResetKeeperStretch(t *testing.T) {
	n := ResetKeeper(5)
	// 5 DRO stages + OR tree over 6 taps.
	if n.NumGates() < 10 {
		t.Errorf("reset keeper has %d gates", n.NumGates())
	}
	if n.LogicalDepth() < 1 {
		t.Errorf("reset keeper depth %d < 1", n.LogicalDepth())
	}
}

func TestDecoderFootprintScaling(t *testing.T) {
	a9, p9, m9 := DecoderFootprint(9)
	if m9 != 289 {
		t.Errorf("d=9 modules = %d, want 289", m9)
	}
	a3, p3, m3 := DecoderFootprint(3)
	if m3 != 25 {
		t.Errorf("d=3 modules = %d", m3)
	}
	if a9 <= a3 || p9 <= p3 {
		t.Error("footprint not increasing with distance")
	}
	aMod, pMod := ModuleFootprint()
	if diff := a9 - aMod*289; diff > 1e-9 || diff < -1e-9 {
		t.Error("decoder area is not modules x module area")
	}
	if pMod <= 0 {
		t.Error("module power nonpositive")
	}
}

func TestMeshSideWithinBudget(t *testing.T) {
	small := MeshSideWithinBudget(0.001)
	big := MeshSideWithinBudget(1)
	if small <= 0 || big <= small {
		t.Errorf("budget scaling wrong: %d, %d", small, big)
	}
	if MeshSideWithinBudget(0) != 0 {
		t.Error("zero budget allows a mesh")
	}
}

func TestWriteVerilog(t *testing.T) {
	n := GrowPairReq()
	n.Balance()
	var buf strings.Builder
	if err := n.WriteVerilog(&buf, ""); err != nil {
		t.Fatal(err)
	}
	v := buf.String()
	for _, want := range []string{
		"module Pair_Req__Grow_Subcircuit",
		"input  wire clk",
		"input  wire in13",
		"output wire out7",
		"endmodule",
		"DRO_DFF",
		"AND2",
	} {
		if !strings.Contains(v, want) {
			t.Errorf("verilog missing %q", want)
		}
	}
	// Every instantiated cell must exist in the library.
	for _, line := range strings.Split(v, "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "AND2 ") && !strings.HasPrefix(line, "OR2 ") &&
			!strings.HasPrefix(line, "XOR2 ") && !strings.HasPrefix(line, "NOT ") &&
			!strings.HasPrefix(line, "DRO_DFF ") {
			continue
		}
		cell := strings.Fields(line)[0]
		if _, err := CellByName(cell); err != nil {
			t.Errorf("unknown cell instantiated: %s", cell)
		}
	}
	// Custom module names pass through.
	var buf2 strings.Builder
	if err := n.WriteVerilog(&buf2, "grow"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf2.String(), "module grow (") {
		t.Error("module name not honored")
	}
}

func TestSanitizeIdent(t *testing.T) {
	if sanitizeIdent("") != "netlist" {
		t.Error("empty name")
	}
	if sanitizeIdent("9lives!") != "_9lives_" {
		t.Errorf("got %q", sanitizeIdent("9lives!"))
	}
}

// The mesh simulator's cycle time (the paper's published 162.72 ps)
// must stay tied to this package's synthesized full-circuit latency:
// same Table III row, same order of magnitude. The simplified cell
// library lands below the published number but never by more than ~3×,
// and never above it (the paper's path includes wiring the model omits).
func TestFullCircuitLatencyMatchesMeshCycle(t *testing.T) {
	got := FullCircuitLatencyPs()
	if got <= 0 {
		t.Fatalf("FullCircuitLatencyPs = %v", got)
	}
	for _, r := range TableIII() {
		if r.Name == "Full Circuit" && r.LatencyPs != got {
			t.Errorf("helper %v != Table III row %v", got, r.LatencyPs)
		}
	}
	if got > sfq.CycleTimePs || got < sfq.CycleTimePs/3 {
		t.Errorf("synthesized latency %v ps drifted from the paper's %v ps cycle", got, sfq.CycleTimePs)
	}
}
