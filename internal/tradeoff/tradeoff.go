// Package tradeoff implements the Fig. 11 comparison: the code distance
// each decoder needs to run an algorithm of k T gates at a target
// success probability, once the decoding backlog is charged against the
// offline decoders. An online decoder (f ≤ 1) pays k·d syndrome rounds;
// an offline decoder at ratio f > 1 amortizes f^g rounds of idle
// accumulation at the g-th T gate, which drives its required distance
// roughly 10× higher (§VIII, Fig. 11).
package tradeoff

import (
	"fmt"
	"math"
)

// DecoderSpec models one decoder for the comparison.
type DecoderSpec struct {
	Name string
	// Pth, C1, C2: logical error model PL = C1·(p/Pth)^(C2·d).
	Pth float64
	C1  float64
	C2  float64
	// DecodeNs returns the per-round decode latency at distance d.
	DecodeNs func(d int) float64
	// Online decoders never accumulate backlog regardless of ratio
	// (used for the hypothetical "MWPM without backlog" series).
	ForceNoBacklog bool
}

// PaperDecoders returns the five Fig. 11 series: the SFQ decoder, MWPM,
// the neural-network decoder, union-find, and the hypothetical
// backlog-free MWPM. Latencies follow the paper's citations: the SFQ
// mesh solves in at most ~20 ns (≈2.2 ns × d), neural-network inference
// takes ~800 ns, union-find runs a bit over 2× the generation time, and
// software MWPM scales with the lattice.
func PaperDecoders() []DecoderSpec {
	mwpmLatency := func(d int) float64 { return 300 * float64(d) }
	return []DecoderSpec{
		{
			Name: "sfq",
			Pth:  0.05, C1: 0.03, C2: 0.45,
			DecodeNs: func(d int) float64 { return 2.2 * float64(d) },
		},
		{
			Name: "mwpm",
			Pth:  0.103, C1: 0.03, C2: 1,
			DecodeNs: mwpmLatency,
		},
		{
			Name: "nnet",
			Pth:  0.1, C1: 0.03, C2: 1,
			DecodeNs: func(d int) float64 { return 800 },
		},
		{
			Name: "union-find",
			Pth:  0.099, C1: 0.03, C2: 1,
			DecodeNs: func(d int) float64 { return 850 },
		},
		{
			Name: "mwpm-no-backlog",
			Pth:  0.103, C1: 0.03, C2: 1,
			DecodeNs:       mwpmLatency,
			ForceNoBacklog: true,
		},
	}
}

// Config fixes the Fig. 11 scenario.
type Config struct {
	TGates          int     // k: T gates in the algorithm (paper: 100)
	SyndromeCycleNs float64 // generation cycle (paper: 400 ns)
	TargetFailure   float64 // acceptable total failure probability
	MaxDistance     int     // search bound
}

// DefaultConfig is the paper's 100-T-gate scenario.
func DefaultConfig() Config {
	return Config{TGates: 100, SyndromeCycleNs: 400, TargetFailure: 0.5, MaxDistance: 2001}
}

// log10Rounds returns log10 of the syndrome rounds the algorithm
// occupies: k·d without backlog; with backlog at ratio f > 1 the g-th
// T gate additionally idles through ~f^g rounds, so the total is
// k·d + Σ f^g = k·d + f(f^k−1)/(f−1).
func log10Rounds(k, d int, f float64, noBacklog bool) float64 {
	base := math.Log10(float64(k) * float64(d))
	if noBacklog || f <= 1 {
		return base
	}
	// log10 of the geometric series f + f² + … + f^k, computed in log
	// space: dominated by f^k.
	logFk := float64(k) * math.Log10(f)
	logSeries := logFk + math.Log10(f/(f-1)) // tight upper bound
	return logAdd10(base, logSeries)
}

// logAdd10 returns log10(10^a + 10^b) stably.
func logAdd10(a, b float64) float64 {
	if a < b {
		a, b = b, a
	}
	return a + math.Log10(1+math.Pow(10, b-a))
}

// RequiredDistance returns the smallest odd code distance at which the
// decoder completes the Config's algorithm within the failure budget:
// rounds(d) × PL(p, d) ≤ TargetFailure. It reports ok=false when no
// distance up to MaxDistance suffices.
func RequiredDistance(spec DecoderSpec, p float64, cfg Config) (int, bool, error) {
	if p <= 0 || p >= spec.Pth {
		return 0, false, fmt.Errorf("tradeoff: p=%v outside (0, pth=%v) for %s", p, spec.Pth, spec.Name)
	}
	if cfg.TGates <= 0 || cfg.SyndromeCycleNs <= 0 || cfg.TargetFailure <= 0 {
		return 0, false, fmt.Errorf("tradeoff: invalid config %+v", cfg)
	}
	for d := 3; d <= cfg.MaxDistance; d += 2 {
		f := spec.DecodeNs(d) / cfg.SyndromeCycleNs
		logPL := math.Log10(spec.C1) + spec.C2*float64(d)*math.Log10(p/spec.Pth)
		logFail := log10Rounds(cfg.TGates, d, f, spec.ForceNoBacklog) + logPL
		if logFail <= math.Log10(cfg.TargetFailure) {
			return d, true, nil
		}
	}
	return 0, false, nil
}

// Point is one Fig. 11 sample.
type Point struct {
	Decoder  string
	P        float64
	Distance int
	Feasible bool
}

// Figure11 sweeps every decoder across the physical error rates and
// returns the required-distance series.
func Figure11(specs []DecoderSpec, rates []float64, cfg Config) ([]Point, error) {
	var out []Point
	for _, spec := range specs {
		for _, p := range rates {
			if p >= spec.Pth {
				out = append(out, Point{Decoder: spec.Name, P: p, Feasible: false})
				continue
			}
			d, ok, err := RequiredDistance(spec, p, cfg)
			if err != nil {
				return nil, err
			}
			out = append(out, Point{Decoder: spec.Name, P: p, Distance: d, Feasible: ok})
		}
	}
	return out, nil
}
