package tradeoff

import (
	"math"
	"testing"
)

func specByName(t *testing.T, name string) DecoderSpec {
	t.Helper()
	for _, s := range PaperDecoders() {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("no spec %q", name)
	return DecoderSpec{}
}

func TestValidation(t *testing.T) {
	sfq := specByName(t, "sfq")
	cfg := DefaultConfig()
	if _, _, err := RequiredDistance(sfq, 0.2, cfg); err == nil {
		t.Error("p above threshold accepted")
	}
	bad := cfg
	bad.TGates = 0
	if _, _, err := RequiredDistance(sfq, 1e-3, bad); err == nil {
		t.Error("zero T gates accepted")
	}
}

func TestLogAdd10(t *testing.T) {
	got := logAdd10(2, 2) // log10(200)
	if math.Abs(got-math.Log10(200)) > 1e-12 {
		t.Errorf("logAdd10(2,2) = %v", got)
	}
	got = logAdd10(10, 0) // 10^10 + 1 ~ 10^10
	if math.Abs(got-10) > 1e-9 {
		t.Errorf("logAdd10(10,0) = %v", got)
	}
	if logAdd10(0, 10) != logAdd10(10, 0) {
		t.Error("logAdd10 not symmetric")
	}
}

// The headline Fig. 11 claim: at useful error rates the SFQ decoder
// needs ~10x smaller code distance than the offline decoders once the
// backlog is charged, and the hypothetical backlog-free MWPM needs the
// least of all.
func TestFig11Ordering(t *testing.T) {
	cfg := DefaultConfig()
	sfq := specByName(t, "sfq")
	nnet := specByName(t, "nnet")
	uf := specByName(t, "union-find")
	ideal := specByName(t, "mwpm-no-backlog")

	for _, p := range []float64{1e-5, 1e-4, 1e-3} {
		dSfq, ok, err := RequiredDistance(sfq, p, cfg)
		if err != nil || !ok {
			t.Fatalf("sfq p=%v: %v ok=%v", p, err, ok)
		}
		dNnet, ok, err := RequiredDistance(nnet, p, cfg)
		if err != nil || !ok {
			t.Fatalf("nnet p=%v: %v ok=%v", p, err, ok)
		}
		dUf, ok, err := RequiredDistance(uf, p, cfg)
		if err != nil || !ok {
			t.Fatalf("uf p=%v: %v ok=%v", p, err, ok)
		}
		dIdeal, ok, err := RequiredDistance(ideal, p, cfg)
		if err != nil || !ok {
			t.Fatalf("ideal p=%v: %v ok=%v", p, err, ok)
		}
		if dSfq >= dNnet || dSfq >= dUf {
			t.Errorf("p=%v: sfq d=%d not below offline nnet=%d uf=%d", p, dSfq, dNnet, dUf)
		}
		if dIdeal > dSfq {
			t.Errorf("p=%v: ideal MWPM d=%d above sfq %d", p, dIdeal, dSfq)
		}
		ratio := float64(dNnet) / float64(dSfq)
		if ratio < 3 {
			t.Errorf("p=%v: offline/online distance ratio %.1f, paper says ~10x", p, ratio)
		}
	}
}

// Required distance must not decrease as the error rate rises.
func TestMonotoneInP(t *testing.T) {
	cfg := DefaultConfig()
	for _, spec := range PaperDecoders() {
		prev := 0
		for _, p := range []float64{1e-5, 1e-4, 1e-3, 1e-2} {
			if p >= spec.Pth {
				continue
			}
			d, ok, err := RequiredDistance(spec, p, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				continue
			}
			if d < prev {
				t.Errorf("%s: required d dropped from %d to %d at p=%v", spec.Name, prev, d, p)
			}
			prev = d
		}
	}
}

func TestFigure11Sweep(t *testing.T) {
	cfg := DefaultConfig()
	rates := []float64{1e-5, 1e-4, 1e-3, 1e-2, 0.05}
	pts, err := Figure11(PaperDecoders(), rates, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(rates)*len(PaperDecoders()) {
		t.Fatalf("%d points", len(pts))
	}
	// Rates above a decoder's threshold are marked infeasible rather
	// than erroring the sweep.
	found := false
	for _, pt := range pts {
		if pt.Decoder == "sfq" && pt.P == 0.05 {
			found = true
			if pt.Feasible {
				t.Error("sfq feasible at its own threshold")
			}
		}
	}
	if !found {
		t.Error("threshold point missing")
	}
}

// Backlog must be the thing driving the distance gap: the same MWPM
// model with backlog disabled needs far less distance.
func TestBacklogIsTheDriver(t *testing.T) {
	cfg := DefaultConfig()
	mwpm := specByName(t, "mwpm")
	ideal := specByName(t, "mwpm-no-backlog")
	d1, ok1, err1 := RequiredDistance(mwpm, 1e-4, cfg)
	d2, ok2, err2 := RequiredDistance(ideal, 1e-4, cfg)
	if err1 != nil || err2 != nil || !ok1 || !ok2 {
		t.Fatalf("errors: %v %v ok %v %v", err1, err2, ok1, ok2)
	}
	if d1 <= d2 {
		t.Errorf("backlogged MWPM d=%d not above ideal %d", d1, d2)
	}
	if float64(d1)/float64(d2) < 5 {
		t.Errorf("backlog penalty only %.1fx", float64(d1)/float64(d2))
	}
}
