package sfq

import (
	"sync"

	"repro/internal/lattice"
)

// meshGeom holds the immutable geometry of one decoder mesh: the cell
// classification of the (2d+1)×(2d+1) grid, the cell↔qubit/check index
// maps, and the precomputed bit-plane masks of the word-parallel kernel.
// Geometry depends only on (distance, error type), so it is computed
// once per parameter pair and shared read-only by every mesh — any
// number of Monte-Carlo shards rebuilding their own lattices still hit
// one table, mirroring decodepool.Geometry.
type meshGeom struct {
	d int               // code distance
	e lattice.ErrorType // error type the mesh decodes
	m int               // mesh side length
	n int               // m*m cells

	kind     []cellKind
	dataQ    []int // interior data cells -> qubit index, else -1
	checkIdx []int // interior check cells -> check index, else -1
	cellOf   []int // check index -> cell index

	// Bit-plane layout: one plane is rows×words uint64s, cell (r, c)
	// living at word r*words + c/64, bit c%64.
	rows     int    // == m
	words    int    // words per row
	pw       int    // plane length: rows*words
	lastMask uint64 // valid-column mask of the last word of each row

	interior  []uint64    // plane mask of interior cells
	boundary  []uint64    // plane mask of boundary cells
	classMask [4][]uint64 // cells with index%4 == k (rotated grant priority)
}

type geomKey struct {
	d int
	e lattice.ErrorType
}

var (
	geomMu    sync.RWMutex
	geomCache = map[geomKey]*meshGeom{}
)

// geomFor returns the memoized mesh geometry of g, building it on first
// use. Racing builders construct private tables; the first one stored
// wins.
func geomFor(g *lattice.Graph) *meshGeom {
	k := geomKey{d: g.Lattice().Distance(), e: g.ErrorType()}
	geomMu.RLock()
	geo := geomCache[k]
	geomMu.RUnlock()
	if geo != nil {
		return geo
	}
	built := buildGeom(g)
	geomMu.Lock()
	if exist, ok := geomCache[k]; ok {
		built = exist
	} else {
		geomCache[k] = built
	}
	geomMu.Unlock()
	return built
}

func buildGeom(g *lattice.Graph) *meshGeom {
	l := g.Lattice()
	size := l.Size()
	side := size + 2
	geo := &meshGeom{
		d: l.Distance(),
		e: g.ErrorType(),
		m: side,
		n: side * side,
	}
	geo.kind = make([]cellKind, geo.n)
	geo.dataQ = make([]int, geo.n)
	geo.checkIdx = make([]int, geo.n)
	geo.cellOf = make([]int, g.NumChecks())
	for i := range geo.dataQ {
		geo.dataQ[i], geo.checkIdx[i] = -1, -1
	}
	for lr := 0; lr < size; lr++ {
		for lc := 0; lc < size; lc++ {
			i := geo.index(lr+1, lc+1)
			geo.kind[i] = cellInterior
			s := lattice.Site{Row: lr, Col: lc}
			if l.KindAt(s) == lattice.Data {
				geo.dataQ[i] = l.QubitIndex(s)
			} else if ci, ok := g.CheckIndex(s); ok {
				geo.checkIdx[i] = ci
				geo.cellOf[ci] = i
			}
		}
	}
	// Boundary modules sit on the ring, facing the two code edges the
	// decoded error type can terminate on, adjacent to boundary data
	// qubits (even lattice coordinates).
	for x := 0; x < size; x += 2 {
		if g.ErrorType() == lattice.ZErrors {
			geo.kind[geo.index(x+1, 0)] = cellBoundary
			geo.kind[geo.index(x+1, side-1)] = cellBoundary
		} else {
			geo.kind[geo.index(0, x+1)] = cellBoundary
			geo.kind[geo.index(side-1, x+1)] = cellBoundary
		}
	}

	// Bit-plane masks.
	geo.rows = side
	geo.words = (side + 63) / 64
	geo.pw = geo.rows * geo.words
	if rem := side % 64; rem == 0 {
		geo.lastMask = ^uint64(0)
	} else {
		geo.lastMask = (uint64(1) << rem) - 1
	}
	geo.interior = make([]uint64, geo.pw)
	geo.boundary = make([]uint64, geo.pw)
	for k := range geo.classMask {
		geo.classMask[k] = make([]uint64, geo.pw)
	}
	for i, kd := range geo.kind {
		switch kd {
		case cellInterior:
			setPlaneBit(geo, geo.interior, i)
		case cellBoundary:
			setPlaneBit(geo, geo.boundary, i)
		}
		setPlaneBit(geo, geo.classMask[i%4], i)
	}
	return geo
}

func (geo *meshGeom) index(r, c int) int { return r*geo.m + c }

// neighbor returns the cell index one step in direction d, or -1 when
// the step leaves the mesh.
func (geo *meshGeom) neighbor(i int, d Dir) int {
	dr, dc := d.Delta()
	r, c := i/geo.m+dr, i%geo.m+dc
	if r < 0 || r >= geo.m || c < 0 || c >= geo.m {
		return -1
	}
	return r*geo.m + c
}

// planeBit reports whether cell i is set in the plane.
func (geo *meshGeom) planeBit(p []uint64, i int) bool {
	r, c := i/geo.m, i%geo.m
	return p[r*geo.words+c>>6]>>(uint(c)&63)&1 != 0
}

func setPlaneBit(geo *meshGeom, p []uint64, i int) {
	r, c := i/geo.m, i%geo.m
	p[r*geo.words+c>>6] |= uint64(1) << (uint(c) & 63)
}

// shiftInto writes src advanced one hop in direction d into dst,
// dropping bits that step off the mesh. dst must not alias src.
func (geo *meshGeom) shiftInto(dst, src []uint64, d Dir) {
	W := geo.words
	switch d {
	case North: // row r receives row r+1
		copy(dst, src[W:])
		clearPlane(dst[len(dst)-W:])
	case South: // row r receives row r-1
		copy(dst[W:], src[:len(src)-W])
		clearPlane(dst[:W])
	case East: // column c receives column c-1
		for r := 0; r < geo.rows; r++ {
			row := src[r*W : (r+1)*W]
			out := dst[r*W : (r+1)*W]
			var carry uint64
			for w := 0; w < W; w++ {
				next := row[w] >> 63
				out[w] = row[w]<<1 | carry
				carry = next
			}
			out[W-1] &= geo.lastMask
		}
	case West: // column c receives column c+1
		for r := 0; r < geo.rows; r++ {
			row := src[r*W : (r+1)*W]
			out := dst[r*W : (r+1)*W]
			for w := 0; w < W; w++ {
				v := row[w] >> 1
				if w+1 < W {
					v |= row[w+1] << 63
				}
				out[w] = v
			}
		}
	}
}

func clearPlane(p []uint64) {
	for i := range p {
		p[i] = 0
	}
}
