package sfq

import "strings"

// Tracer receives a rendered frame of the mesh after every clock when
// installed on the Mesh; used by the watch example and golden tests.
type Tracer func(cycle int, frame string)

// SetTracer installs (or clears, with nil) a per-cycle tracer.
func (m *Mesh) SetTracer(t Tracer) { m.tracer = t }

// Render draws the mesh state as one character per module:
//
//	H  hot syndrome module
//	P  pair signal in flight
//	G  pair-grant in flight
//	r  pair-request in flight
//	*  grow wavefront
//	#  error output latched (the correction chain)
//	=  boundary module
//	·  idle interior module
//
// Signals take precedence over the chain marking, which takes
// precedence over idle.
func (m *Mesh) Render() string {
	var b strings.Builder
	for r := 0; r < m.m; r++ {
		for c := 0; c < m.m; c++ {
			i := m.index(r, c)
			b.WriteString(m.cellGlyph(i))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func (m *Mesh) cellGlyph(i int) string {
	switch {
	case m.kind[i] == cellInert:
		return " "
	case m.hot[i]:
		return "H"
	case m.pair[i] != [4]bool{}:
		return "P"
	case m.grant[i] != [4]bool{}:
		return "G"
	case m.req[i] != [4]bool{}:
		return "r"
	case m.grow[i] != [4]bool{}:
		return "*"
	case m.errOut[i] && m.kind[i] == cellInterior:
		return "#"
	case m.kind[i] == cellBoundary:
		return "="
	default:
		return "·"
	}
}
