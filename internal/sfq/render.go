package sfq

import "strings"

// Tracer receives a rendered frame of the mesh after every clock when
// installed on the Mesh; used by the watch example and golden tests.
type Tracer func(cycle int, frame string)

// SetTracer installs (or clears, with nil) a per-cycle tracer.
func (m *Mesh) SetTracer(t Tracer) { m.tracer = t }

// Render draws the mesh state as one character per module:
//
//	H  hot syndrome module
//	P  pair signal in flight
//	G  pair-grant in flight
//	r  pair-request in flight
//	*  grow wavefront
//	#  error output latched (the correction chain)
//	=  boundary module
//	·  idle interior module
//
// Signals take precedence over the chain marking, which takes
// precedence over idle. Both kernels render identically.
func (m *Mesh) Render() string {
	var b strings.Builder
	for r := 0; r < m.geo.m; r++ {
		for c := 0; c < m.geo.m; c++ {
			i := m.index(r, c)
			b.WriteString(m.cellGlyph(i))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func (m *Mesh) cellGlyph(i int) string {
	if m.planes != nil {
		return m.planes.cellGlyph(i)
	}
	switch {
	case m.geo.kind[i] == cellInert:
		return " "
	case m.hot[i]:
		return "H"
	case m.pair[i] != [4]bool{}:
		return "P"
	case m.grant[i] != [4]bool{}:
		return "G"
	case m.req[i] != [4]bool{}:
		return "r"
	case m.grow[i] != [4]bool{}:
		return "*"
	case m.errOut[i] && m.geo.kind[i] == cellInterior:
		return "#"
	case m.geo.kind[i] == cellBoundary:
		return "="
	default:
		return "·"
	}
}

func (ps *planeState) cellGlyph(i int) string {
	geo := ps.geo
	switch {
	case geo.kind[i] == cellInert:
		return " "
	case geo.planeBit(ps.hot, i):
		return "H"
	case ps.anyDir(&ps.pairW, i):
		return "P"
	case ps.anyDir(&ps.grantW, i):
		return "G"
	case ps.anyDir(&ps.reqW, i):
		return "r"
	case ps.anyDir(&ps.growW, i):
		return "*"
	case geo.planeBit(ps.errOut, i) && geo.kind[i] == cellInterior:
		return "#"
	case geo.kind[i] == cellBoundary:
		return "="
	default:
		return "·"
	}
}

func (ps *planeState) anyDir(w *wavefront, i int) bool {
	for d := 0; d < 4; d++ {
		if ps.geo.planeBit(w.cur[d], i) {
			return true
		}
	}
	return false
}
