package sfq

import (
	"fmt"

	"repro/internal/decodepool"
	"repro/internal/decoder"
	"repro/internal/knob"
	"repro/internal/lattice"
	"repro/internal/obs"
)

// cellKind classifies a mesh cell.
type cellKind uint8

const (
	cellInert    cellKind = iota // ring position with no boundary role
	cellInterior                 // one module per physical qubit
	cellBoundary                 // boundary module facing the code edge
)

// Stats reports what one Decode call did, in mesh clock cycles.
type Stats struct {
	Cycles           int // total mesh clocks consumed
	Pairings         int // completed pairings (incl. boundary pairings)
	BoundaryPairings int // pairings whose second endpoint was a boundary
	Resets           int // global resets triggered by completed pairings
	Retries          int // stall-recovery resets (rotated grant priority)
	Stalls           int // quiescent stalls, incl. ones recovered by retry or drain
	Fallbacks        int // hot modules drained to a boundary by the watchdog
	Unresolved       int // hot modules the pairing protocol gave up on (drained
	// by the watchdog when the variant has boundaries — see Fallbacks —
	// or left hot otherwise)
}

// GaveUp reports whether the pairing protocol failed on any hot module:
// either the watchdog drained chains to a boundary (Fallbacks) or hot
// modules were left unpaired (Unresolved counts both cases). Escalation
// policies use this as their "mesh is not confident" signal.
func (s Stats) GaveUp() bool { return s.Unresolved > 0 }

// TimeNs converts the cycle count to nanoseconds at the synthesized
// full-circuit latency.
func (s Stats) TimeNs() float64 { return float64(s.Cycles) * CycleTimePs / 1000 }

// Kernel selects the mesh stepping implementation. Both kernels are
// cycle-exact models of the same hardware: corrections and Stats are
// bit-identical (pinned by the conformance suite and FuzzMesh).
type Kernel uint8

const (
	// KernelBitplane packs every (signal class × direction) into
	// []uint64 bit-planes and steps whole rows with shift-and-mask
	// operations. The default.
	KernelBitplane Kernel = iota
	// KernelLegacy is the original struct-of-bools reference kernel.
	KernelLegacy
)

// String implements fmt.Stringer.
func (k Kernel) String() string {
	if k == KernelLegacy {
		return "legacy"
	}
	return "bitplane"
}

// KernelByName maps "bitplane"/"legacy" to a Kernel.
func KernelByName(name string) (Kernel, bool) {
	switch name {
	case "bitplane":
		return KernelBitplane, true
	case "legacy":
		return KernelLegacy, true
	}
	return KernelBitplane, false
}

// DefaultKernel is what New uses; the REPRO_SFQ_KERNEL environment
// variable ("legacy" or "bitplane") overrides it at process start. The
// knob layer validates the value, so a typo'd kernel name panics at
// startup instead of silently selecting the default.
var DefaultKernel = kernelFromEnv()

func kernelFromEnv() Kernel {
	if v := knob.String("REPRO_SFQ_KERNEL"); v != "" {
		if k, ok := KernelByName(v); ok {
			return k
		}
	}
	return KernelBitplane
}

// Mesh is the SFQ decoder: a (2d+1)×(2d+1) grid of decoder modules (the
// (2d−1)² per-qubit modules ringed by boundary modules) bound to one
// matching graph. A Mesh is reusable across Decode calls but not safe
// for concurrent use.
type Mesh struct {
	g       *lattice.Graph
	variant Variant
	kernel  Kernel
	geo     *meshGeom

	// MaxCycles bounds one decode; Decode fails beyond it. Defaults to
	// 200 × mesh side.
	MaxCycles int

	// maxRetries bounds stall-recovery attempts per decode.
	maxRetries int

	// Dynamic per-decode state of the legacy kernel (nil planes mesh).
	hot      []bool
	growFrom [][4]bool
	fired    []bool
	reqDirs  [][4]bool
	grants   [][4]bool
	sentPair []bool
	granted  []bool
	errOut   []bool

	grow, req, grant, pair     [][4]bool // signals in flight, by direction of travel
	growN, reqN, grantN, pairN [][4]bool // next-cycle buffers
	pairB, pairBN              [][4]bool // provenance: pair signal originated at a boundary module

	reqArrived [][4]bool     // scratch: request arrivals at hot modules this cycle
	growArr    []growArrival // scratch: grow arrivals, reused across cycles
	reqArrAt   []int         // scratch: cells with request arrivals, reused

	planes *planeState // bit-plane kernel state (nil for the legacy kernel)

	hotCount       int // maintained count of hot modules (both kernels)
	resetCountdown int
	priorityOffset int
	stats          Stats
	tracer         Tracer

	// Telemetry: every decode's cycle count goes into a mesh-private
	// obs.Local (no atomics, no allocation on the hot path) that
	// auto-flushes into the process-wide sfq_decode_cycles_d<D>
	// histogram every obsFlushEvery decodes and on FlushObs.
	obsCycles *obs.Local

	// Pool bookkeeping (see Pool): which pool handed this mesh out, and
	// whether it is currently parked on a free list.
	owner  *Pool
	pooled bool
}

// obsFlushEvery is how many decodes a mesh accumulates before merging
// its private cycle histogram into the shared registry — the amortized
// flush keeps shared-cache-line traffic off the per-decode path while
// /metrics scrapes stay at most a few dozen decodes stale.
const obsFlushEvery = 64

type growArrival struct {
	n int
	d Dir
}

// New builds a decoder mesh for the matching graph with the given design
// variant, using the DefaultKernel.
func New(g *lattice.Graph, v Variant) *Mesh {
	return NewWithKernel(g, v, DefaultKernel)
}

// NewWithKernel builds a decoder mesh with an explicit stepping kernel.
func NewWithKernel(g *lattice.Graph, v Variant, k Kernel) *Mesh {
	geo := geomFor(g)
	m := &Mesh{
		g:          g,
		variant:    v,
		kernel:     k,
		geo:        geo,
		MaxCycles:  200 * geo.m,
		maxRetries: 3,
	}
	m.obsCycles = obs.NewLocal(obsFlushEvery,
		obs.Default().Histogram(fmt.Sprintf("sfq_decode_cycles_d%d", geo.d)))
	if k == KernelBitplane {
		m.planes = newPlaneState(m)
		return m
	}
	n := geo.n
	m.hot = make([]bool, n)
	m.growFrom = make([][4]bool, n)
	m.fired = make([]bool, n)
	m.reqDirs = make([][4]bool, n)
	m.grants = make([][4]bool, n)
	m.sentPair = make([]bool, n)
	m.granted = make([]bool, n)
	m.errOut = make([]bool, n)
	m.grow = make([][4]bool, n)
	m.req = make([][4]bool, n)
	m.grant = make([][4]bool, n)
	m.pair = make([][4]bool, n)
	m.growN = make([][4]bool, n)
	m.reqN = make([][4]bool, n)
	m.grantN = make([][4]bool, n)
	m.pairN = make([][4]bool, n)
	m.pairB = make([][4]bool, n)
	m.pairBN = make([][4]bool, n)
	m.reqArrived = make([][4]bool, n)
	return m
}

// Name implements decoder.Decoder.
func (m *Mesh) Name() string { return "sfq-" + m.variant.Name() }

// Variant returns the mesh's design variant.
func (m *Mesh) Variant() Variant { return m.variant }

// Kernel returns the mesh's stepping kernel.
func (m *Mesh) Kernel() Kernel { return m.kernel }

// Stats returns the statistics of the most recent Decode call.
func (m *Mesh) Stats() Stats { return m.stats }

// Reset returns the mesh to its idle state. Decode calls reset
// internally; pools call Reset before parking a mesh so a stale decode's
// state is never carried across owners.
func (m *Mesh) Reset() {
	if m.planes != nil {
		m.planes.reset()
	} else {
		m.reset()
	}
}

func (m *Mesh) index(r, c int) int { return m.geo.index(r, c) }

// neighbor returns the cell index one step in direction d, or -1 when
// the step leaves the mesh.
func (m *Mesh) neighbor(i int, d Dir) int { return m.geo.neighbor(i, d) }

// compatible reports whether the mesh can decode syndromes of g. Graphs
// of equal distance and error type are structurally identical (the
// assumption decodepool's geometry cache already rests on), so pooled
// meshes accept any such graph, not just the pointer they were built
// with.
func (m *Mesh) compatible(g *lattice.Graph) bool {
	if g == m.g {
		return true
	}
	return g.ErrorType() == m.g.ErrorType() &&
		g.Lattice().Distance() == m.g.Lattice().Distance() &&
		g.NumChecks() == m.g.NumChecks()
}

// Decode implements decoder.Decoder. The graph must be structurally
// identical to the one the mesh was built for.
func (m *Mesh) Decode(g *lattice.Graph, syn []bool) (decoder.Correction, error) {
	if !m.compatible(g) {
		return decoder.Correction{}, fmt.Errorf("sfq: mesh bound to a different matching graph")
	}
	c, _, err := m.DecodeWithStats(syn)
	return c, err
}

// DecodeInto implements decodepool.IntoDecoder: it decodes with zero
// heap allocations, appending the correction into the scratch's pooled
// qubit buffer. Cycle statistics remain available via Stats.
func (m *Mesh) DecodeInto(g *lattice.Graph, syn []bool, s *decodepool.Scratch) (decoder.Correction, error) {
	if !m.compatible(g) {
		return decoder.Correction{}, fmt.Errorf("sfq: mesh bound to a different matching graph")
	}
	q, err := m.decodeAppend(syn, s.TakeQubits())
	return s.PutQubits(q), err
}

// DecodeWithStats runs the mesh on the syndrome and also returns cycle
// statistics. The returned correction may leave checks uncleared when
// the design variant cannot resolve them (Stats.Unresolved counts them);
// the final variant resolves everything it is given.
func (m *Mesh) DecodeWithStats(syn []bool) (decoder.Correction, Stats, error) {
	q, err := m.decodeAppend(syn, nil)
	if err != nil {
		return decoder.Correction{}, Stats{}, err
	}
	return decoder.Correction{Qubits: q}, m.stats, nil
}

// decodeAppend is the shared decode core: it appends the corrected
// qubit indices to q (which may be nil or a recycled buffer), leaves
// statistics in m.stats, and records the cycle count in the mesh's
// telemetry recorder. Both kernels pass through here, so the per-d
// cycle histograms see every decode regardless of REPRO_SFQ_KERNEL.
func (m *Mesh) decodeAppend(syn []bool, q []int) ([]int, error) {
	if len(syn) != m.g.NumChecks() {
		return q, fmt.Errorf("sfq: syndrome has %d checks, graph has %d", len(syn), m.g.NumChecks())
	}
	var err error
	if m.planes != nil {
		q, err = m.planes.decodeAppend(syn, q)
	} else {
		q, err = m.legacyDecodeAppend(syn, q)
	}
	if err == nil {
		m.obsCycles.Observe(uint64(m.stats.Cycles))
	}
	return q, err
}

// FlushObs merges any pending telemetry into the shared registry
// histograms. The pool calls it when a mesh is parked; call it directly
// before scraping when a mesh is long-lived outside a pool.
func (m *Mesh) FlushObs() { m.obsCycles.Flush() }

// legacyDecodeAppend is the struct-of-bools reference kernel's decode
// core.
func (m *Mesh) legacyDecodeAppend(syn []bool, q []int) ([]int, error) {
	m.reset()
	for ci, h := range syn {
		if h {
			m.hot[m.geo.cellOf[ci]] = true
			m.hotCount++
		}
	}
	if m.hotCount == 0 {
		return q, nil
	}
	m.emitGrows()
	retries := 0
	for {
		if !m.anyHot() && !m.anySignal(m.pair) && m.resetCountdown == 0 {
			break // every syndrome paired and every chain fully marked
		}
		if m.resetCountdown == 0 && m.quiescent() {
			// Stalled with hot modules left: recover with a global
			// reset and a rotated grant priority, or give up.
			m.stats.Stalls++
			if m.variant.Reset && retries < m.maxRetries {
				retries++
				m.stats.Retries++
				m.priorityOffset = retries
				m.globalReset()
			} else if m.variant.Boundary {
				// Watchdog: drive every remaining hot module's chain
				// straight to its nearest boundary. This keeps the
				// final design live on grant deadlocks the handshake
				// retries could not break. The drained modules still
				// count as Unresolved: the protocol failed on them.
				m.stats.Unresolved = m.countHot()
				m.drainToBoundary()
				break
			} else {
				m.stats.Unresolved = m.countHot()
				break
			}
		}
		if m.stats.Cycles >= m.MaxCycles {
			m.stats.Unresolved = m.countHot()
			if m.variant.Boundary {
				m.drainToBoundary()
			}
			break
		}
		m.step()
		if m.tracer != nil {
			m.tracer(m.stats.Cycles, m.Render())
		}
	}
	for i, e := range m.errOut {
		if e && m.geo.dataQ[i] >= 0 {
			q = append(q, m.geo.dataQ[i])
		}
	}
	return q, nil
}

// reset clears all per-decode state.
func (m *Mesh) reset() {
	for i := range m.hot {
		m.hot[i] = false
		m.growFrom[i] = [4]bool{}
		m.fired[i] = false
		m.reqDirs[i] = [4]bool{}
		m.grants[i] = [4]bool{}
		m.sentPair[i] = false
		m.granted[i] = false
		m.errOut[i] = false
		m.grow[i] = [4]bool{}
		m.req[i] = [4]bool{}
		m.grant[i] = [4]bool{}
		m.pair[i] = [4]bool{}
		m.pairB[i] = [4]bool{}
	}
	m.hotCount = 0
	m.resetCountdown = 0
	m.priorityOffset = 0
	m.stats = Stats{}
}

// emitGrows loads a grow wavefront in all four directions at every hot
// module.
func (m *Mesh) emitGrows() {
	for i, h := range m.hot {
		if h {
			m.grow[i] = [4]bool{true, true, true, true}
		}
	}
}

func (m *Mesh) anyHot() bool { return m.hotCount > 0 }

func (m *Mesh) countHot() int { return m.hotCount }

func (m *Mesh) anySignal(buf [][4]bool) bool {
	for i := range buf {
		if buf[i] != ([4]bool{}) {
			return true
		}
	}
	return false
}

// quiescent reports whether no signal of any kind is in flight.
func (m *Mesh) quiescent() bool {
	return !m.anySignal(m.grow) && !m.anySignal(m.req) &&
		!m.anySignal(m.grant) && !m.anySignal(m.pair)
}

// globalReset implements the §VI-A reset: every subcircuit except pair
// propagation is cleared and module inputs are blocked for ResetDepth
// cycles.
func (m *Mesh) globalReset() {
	for i := range m.hot {
		m.growFrom[i] = [4]bool{}
		m.fired[i] = false
		m.reqDirs[i] = [4]bool{}
		m.grants[i] = [4]bool{}
		m.sentPair[i] = false
		m.granted[i] = false
		m.grow[i] = [4]bool{}
		m.req[i] = [4]bool{}
		m.grant[i] = [4]bool{}
		// pair and errOut survive by design.
	}
	m.resetCountdown = ResetDepth
}

// step advances the mesh one clock.
func (m *Mesh) step() {
	clearBuf(m.growN)
	clearBuf(m.reqN)
	clearBuf(m.grantN)
	clearBuf(m.pairN)
	clearBuf(m.pairBN)

	pairingDone := false
	if m.resetCountdown > 0 {
		// Inputs blocked: only pair signals propagate.
		pairingDone = m.movePairs()
		m.resetCountdown--
		if m.resetCountdown == 0 {
			// Blocking over; surviving hot modules grow again.
			for i, h := range m.hot {
				if h {
					m.growN[i] = [4]bool{true, true, true, true}
				}
			}
		}
	} else {
		m.moveGrows()
		m.moveReqs()
		m.moveGrants()
		pairingDone = m.movePairs()
		m.fireIntermediates()
		m.completeHandshakes()
	}

	m.grow, m.growN = m.growN, m.grow
	m.req, m.reqN = m.reqN, m.req
	m.grant, m.grantN = m.grantN, m.grant
	m.pair, m.pairN = m.pairN, m.pair
	m.pairB, m.pairBN = m.pairBN, m.pairB
	m.stats.Cycles++

	if pairingDone && m.variant.Reset {
		m.globalReset()
		m.stats.Resets++
	}
}

func clearBuf(buf [][4]bool) {
	for i := range buf {
		buf[i] = [4]bool{}
	}
}

// moveGrows advances grow wavefronts one module and latches arrivals.
// Opposing wavefronts annihilate where they meet: a grow signal does not
// continue into territory an opposite-direction grow has already swept,
// so the meeting module is the unique intermediate on the line — without
// this, the two fronts would latch every module between the endpoints
// and flood the handshake with spurious intermediates.
func (m *Mesh) moveGrows() {
	arrivals := m.growArr[:0]
	for i := range m.grow {
		for _, d := range dirs {
			if !m.grow[i][d] {
				continue
			}
			n := m.neighbor(i, d)
			if n < 0 {
				continue
			}
			entry := d.Opposite()
			switch m.geo.kind[n] {
			case cellInterior:
				m.growFrom[n][entry] = true
				arrivals = append(arrivals, growArrival{n, d})
			case cellBoundary:
				if m.variant.Boundary && !m.fired[n] {
					m.fired[n] = true
					m.reqDirs[n][entry] = true
					if m.variant.ReqGrant {
						m.reqN[n][entry] = true
					} else {
						m.sentPair[n] = true
						m.pairN[n][entry] = true
						m.pairBN[n][entry] = true
					}
				}
			}
		}
	}
	// Propagation is decided after every arrival has latched, so
	// head-on meetings stop both fronts symmetrically.
	for _, a := range arrivals {
		if !m.growFrom[a.n][a.d] {
			m.growN[a.n][a.d] = true
		}
	}
	m.growArr = arrivals
}

// moveReqs advances pair requests; requests stop at hot modules, which
// grant at most one.
func (m *Mesh) moveReqs() {
	arrivedAt := m.reqArrAt[:0]
	for i := range m.req {
		for _, d := range dirs {
			if !m.req[i][d] {
				continue
			}
			n := m.neighbor(i, d)
			if n < 0 || m.geo.kind[n] != cellInterior {
				continue
			}
			entry := d.Opposite()
			if m.hot[n] {
				if !m.reqArrived[n][entry] {
					m.reqArrived[n][entry] = true
					arrivedAt = append(arrivedAt, n)
				}
			} else {
				m.reqN[n][d] = true
			}
		}
	}
	// Grant policy: one grant per hot module, direction chosen by a
	// fixed priority rotated on stall retries.
	for _, n := range arrivedAt {
		if m.granted[n] || !m.hot[n] {
			m.reqArrived[n] = [4]bool{}
			continue
		}
		prio := [4]Dir{North, West, East, South}
		// The grant priority is fixed hardware order on the first
		// attempt; stall retries rotate it per module so symmetric
		// grant cycles cannot repeat verbatim.
		off := 0
		if m.priorityOffset > 0 {
			off = (m.priorityOffset + n) % 4
		}
		for k := 0; k < 4; k++ {
			d := prio[(k+off)%4]
			if m.reqArrived[n][d] {
				m.granted[n] = true
				m.grantN[n][d] = true
				break
			}
		}
		m.reqArrived[n] = [4]bool{}
	}
	m.reqArrAt = arrivedAt
}

// moveGrants advances pair grants; a grant is consumed by the first
// module that requested along its line (the intermediate, or a boundary
// module).
func (m *Mesh) moveGrants() {
	for i := range m.grant {
		for _, d := range dirs {
			if !m.grant[i][d] {
				continue
			}
			n := m.neighbor(i, d)
			if n < 0 {
				continue
			}
			entry := d.Opposite()
			switch m.geo.kind[n] {
			case cellInterior:
				if m.fired[n] && m.reqDirs[n][entry] && !m.grants[n][entry] {
					m.grants[n][entry] = true
				} else {
					m.grantN[n][d] = true
				}
			case cellBoundary:
				if m.fired[n] && m.reqDirs[n][entry] && !m.sentPair[n] {
					m.sentPair[n] = true
					m.pairN[n][entry] = true
					m.pairBN[n][entry] = true
				}
			}
		}
	}
}

// movePairs advances pair signals, toggling the error output of every
// module they reach (chains from successive pairings that cross the same
// data qubit must cancel, Pauli operators being self-inverse); a pair
// signal terminates at a hot module, clearing it. It reports whether any
// pairing completed this cycle.
func (m *Mesh) movePairs() bool {
	done := false
	for i := range m.pair {
		for _, d := range dirs {
			if !m.pair[i][d] {
				continue
			}
			n := m.neighbor(i, d)
			if n < 0 || m.geo.kind[n] != cellInterior {
				continue
			}
			m.errOut[n] = !m.errOut[n]
			if m.hot[n] {
				m.hot[n] = false
				m.hotCount--
				m.stats.Pairings++
				if m.pairB[i][d] {
					m.stats.BoundaryPairings++
				}
				done = true
			} else {
				m.pairN[n][d] = true
				m.pairBN[n][d] = m.pairB[i][d]
			}
		}
	}
	return done
}

// fireIntermediates turns modules holding grow signals from two distinct
// directions into intermediates. The hardwired effectiveness rule keeps
// exactly one of the two corners of any L-shaped meeting: head-on
// meetings always fire, and of the two corner candidates only the one
// whose grows arrived from the north fires.
func (m *Mesh) fireIntermediates() {
	for i := range m.growFrom {
		if m.geo.kind[i] != cellInterior || m.fired[i] || m.hot[i] {
			continue
		}
		gf := m.growFrom[i]
		var a, b Dir
		switch {
		case gf[West] && gf[East]:
			a, b = West, East
		case gf[North] && gf[South]:
			a, b = North, South
		case gf[North] && gf[West]:
			a, b = North, West
		case gf[North] && gf[East]:
			a, b = North, East
		default:
			continue
		}
		m.fired[i] = true
		m.reqDirs[i][a] = true
		m.reqDirs[i][b] = true
		if m.variant.ReqGrant {
			m.reqN[i][a] = true
			m.reqN[i][b] = true
		} else {
			m.sentPair[i] = true
			m.errOut[i] = !m.errOut[i]
			m.pairN[i][a] = true
			m.pairN[i][b] = true
		}
	}
}

// completeHandshakes lets intermediates holding grants from both request
// directions emit their pair signals.
func (m *Mesh) completeHandshakes() {
	if !m.variant.ReqGrant {
		return
	}
	for i := range m.fired {
		if !m.fired[i] || m.sentPair[i] || m.geo.kind[i] != cellInterior {
			continue
		}
		all := true
		for _, d := range dirs {
			if m.reqDirs[i][d] && !m.grants[i][d] {
				all = false
				break
			}
		}
		if !all {
			continue
		}
		m.sentPair[i] = true
		m.errOut[i] = !m.errOut[i]
		for _, d := range dirs {
			if m.reqDirs[i][d] {
				m.pairN[i][d] = true
			}
		}
	}
}

// drainToBoundary force-pairs every remaining hot module with its
// nearest boundary, toggling the error outputs along the straight-line
// chain and charging the cycles the drive would take (request, grant and
// pair traversals plus a reset per pairing).
func (m *Mesh) drainToBoundary() {
	for i, h := range m.hot {
		if !h {
			continue
		}
		d, hops := m.geo.drainDir(i)
		for j := m.neighbor(i, d); j >= 0 && m.geo.kind[j] == cellInterior; j = m.neighbor(j, d) {
			m.errOut[j] = !m.errOut[j]
		}
		m.hot[i] = false
		m.hotCount--
		m.stats.Fallbacks++
		m.stats.Pairings++
		m.stats.BoundaryPairings++
		m.stats.Cycles += 3*hops + ResetDepth
	}
}

// drainDir returns the direction and hop count of cell i's nearest
// boundary edge for the geometry's error type.
func (geo *meshGeom) drainDir(i int) (Dir, int) {
	if geo.e == lattice.ZErrors {
		c := i % geo.m
		if c <= geo.m-1-c {
			return West, c
		}
		return East, geo.m - 1 - c
	}
	r := i / geo.m
	if r <= geo.m-1-r {
		return North, r
	}
	return South, geo.m - 1 - r
}

var (
	_ decoder.Decoder        = (*Mesh)(nil)
	_ decodepool.IntoDecoder = (*Mesh)(nil)
)
