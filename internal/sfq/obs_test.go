package sfq

import (
	"testing"

	"repro/internal/lattice"
	"repro/internal/obs"
)

// Pool accounting must be exactly-once: hits + misses = gets, every
// accepted Put balances one Get, double Puts and foreign meshes are
// rejected and counted, and the outstanding count returns to zero when
// every mesh comes home.
func TestPoolExactlyOnceAccounting(t *testing.T) {
	p := NewPool(Final)

	var meshes []*Mesh
	for i := 0; i < 4; i++ {
		meshes = append(meshes, p.Get(3, lattice.XErrors))
	}
	s := p.Stats()
	if s.Gets != 4 || s.Misses != 4 || s.Hits != 0 || s.Outstanding != 4 {
		t.Fatalf("after 4 cold gets: %+v", s)
	}
	for _, m := range meshes {
		p.Put(m)
	}
	s = p.Stats()
	if s.Puts != 4 || s.Outstanding != 0 {
		t.Fatalf("after returning all: %+v", s)
	}

	// Reuse must hit the free list.
	m := p.Get(3, lattice.XErrors)
	if s = p.Stats(); s.Hits != 1 || s.Gets != 5 || s.Outstanding != 1 {
		t.Fatalf("after warm get: %+v", s)
	}

	// Double Put: the second is rejected, the mesh is not aliased.
	p.Put(m)
	p.Put(m)
	s = p.Stats()
	if s.DoublePuts != 1 || s.Puts != 5 || s.Outstanding != 0 {
		t.Fatalf("after double put: %+v", s)
	}
	a := p.Get(3, lattice.XErrors)
	b := p.Get(3, lattice.XErrors)
	if a == b {
		t.Fatal("double Put aliased one mesh into two Gets")
	}
	p.Put(a)
	p.Put(b)

	// Foreign meshes: wrong variant, and another pool's mesh.
	p.Put(NewWithKernel(p.Graph(3, lattice.XErrors), Baseline, KernelBitplane))
	other := NewPool(Final)
	p.Put(other.Get(3, lattice.XErrors))
	s = p.Stats()
	if s.Foreign != 2 {
		t.Fatalf("foreign rejects not counted: %+v", s)
	}
	if s.Outstanding != 0 {
		t.Fatalf("foreign rejects perturbed outstanding: %+v", s)
	}
	if other.Stats().Outstanding != 1 {
		t.Fatalf("other pool's outstanding = %d, want 1", other.Stats().Outstanding)
	}

	// A compatible stray built outside any pool is adopted without
	// going negative on outstanding.
	p.Put(NewWithKernel(p.Graph(3, lattice.XErrors), Final, DefaultKernel))
	if s = p.Stats(); s.Outstanding != 0 {
		t.Fatalf("adopting a stray went negative: %+v", s)
	}
}

// Every successful decode lands one observation in the shared per-d
// cycle histogram once the mesh's local recorder is flushed.
func TestMeshCycleTelemetry(t *testing.T) {
	g := lattice.MustNew(3).MatchingGraph(lattice.XErrors)
	hist := obs.Default().Histogram("sfq_decode_cycles_d3")
	before := hist.Count()

	m := New(g, Final)
	syn := make([]bool, g.NumChecks())
	syn[0], syn[1] = true, true
	const decodes = 10
	for i := 0; i < decodes; i++ {
		if _, _, err := m.DecodeWithStats(syn); err != nil {
			t.Fatal(err)
		}
	}
	m.FlushObs()
	if got := hist.Count() - before; got != decodes {
		t.Fatalf("histogram grew by %d, want %d", got, decodes)
	}
	if m.Stats().Cycles == 0 {
		t.Fatal("decode reported zero cycles")
	}
	if max := hist.Snapshot().Max; max == 0 {
		t.Fatal("histogram recorded zero max cycles")
	}
}
