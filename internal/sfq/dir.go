// Package sfq implements the NISQ+ paper's contribution: a cycle-accurate
// simulator of the SFQ decoder-module mesh (§V-C, §VI).
//
// The decoder is a rectilinear mesh of identical modules, one per
// physical qubit, ringed by boundary modules. Hot syndrome modules emit
// grow signals that advance one module per clock in all four directions;
// where two grow signals meet, an intermediate module initiates a
// pair-request / pair-grant handshake (the equidistant mechanism) and,
// once both endpoints grant, back-propagates pair signals that mark the
// correction chain and clear the endpoints' hot inputs, triggering a
// global reset that blocks module inputs for the circuit depth (5
// clocks). Boundary modules respond to arriving grow signals in place of
// a second endpoint. The incremental design variants of Fig. 10's top
// row — Baseline, +Reset, +Reset+Boundary, and the final design — are
// all selectable.
package sfq

// Dir is one of the four mesh directions.
type Dir uint8

// The four mesh directions. Signal buffers are indexed by the direction
// a signal is traveling toward.
const (
	North Dir = iota
	East
	South
	West
)

// dirs lists all directions for range loops.
var dirs = [4]Dir{North, East, South, West}

// Opposite returns the reverse direction.
func (d Dir) Opposite() Dir { return d ^ 2 }

// Delta returns the row/column step of the direction.
func (d Dir) Delta() (dr, dc int) {
	switch d {
	case North:
		return -1, 0
	case East:
		return 0, 1
	case South:
		return 1, 0
	}
	return 0, -1
}

// String names the direction.
func (d Dir) String() string {
	switch d {
	case North:
		return "N"
	case East:
		return "E"
	case South:
		return "S"
	}
	return "W"
}
