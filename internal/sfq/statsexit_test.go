package sfq

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/decodepool"
	"repro/internal/lattice"
)

// Every Decode exit path must populate Stats the same way in all three
// kernels (legacy, bitplane, SWAR batch), and no give-up may be silent:
// a decode where the pairing protocol failed on some module always shows
// Unresolved > 0 (with Fallbacks == Unresolved when the watchdog drained
// them). Escalation policies in internal/twolevel key off these fields,
// so a kernel that forgot to set one would silently skip escalations.

// exitClass buckets a Stats value by which control-flow exit produced it.
func exitClass(st Stats) string {
	switch {
	case st.Fallbacks > 0:
		return "drain"
	case st.Unresolved > 0:
		return "giveup"
	case st.Retries > 0:
		return "retry-recovered"
	default:
		return "clean"
	}
}

// decodeAllKernels runs one syndrome through legacy, bitplane and a
// single-lane batch decode and asserts corrections and Stats agree,
// returning the shared Stats.
func decodeAllKernels(t *testing.T, g *lattice.Graph, v Variant, maxCycles int, syn []bool, s *decodepool.Scratch) Stats {
	t.Helper()
	leg := NewWithKernel(g, v, KernelLegacy)
	bit := NewWithKernel(g, v, KernelBitplane)
	bat := NewBatch(g, v)
	if maxCycles > 0 {
		leg.MaxCycles, bit.MaxCycles, bat.MaxCycles = maxCycles, maxCycles, maxCycles
	}
	cl, stl, err := leg.DecodeWithStats(syn)
	if err != nil {
		t.Fatal(err)
	}
	cb, stb, err := bit.DecodeWithStats(syn)
	if err != nil {
		t.Fatal(err)
	}
	corr, err := bat.DecodeBatchInto(g, [][]bool{syn}, s)
	if err != nil {
		t.Fatal(err)
	}
	sts := bat.LaneStats(0)
	if stl != stb || stb != sts {
		t.Fatalf("%s: stats diverge:\nlegacy   %+v\nbitplane %+v\nbatch    %+v", v.Name(), stl, stb, sts)
	}
	if a, b := fmt.Sprint(cl.Qubits), fmt.Sprint(cb.Qubits); a != b {
		t.Fatalf("%s: legacy/bitplane corrections diverge: %s vs %s", v.Name(), a, b)
	}
	if a, b := fmt.Sprint(cb.Qubits), fmt.Sprint(corr[0].Qubits); a != b {
		t.Fatalf("%s: bitplane/batch corrections diverge: %s vs %s", v.Name(), a, b)
	}
	return stl
}

// checkExitInvariants asserts the cross-path Stats contract.
func checkExitInvariants(t *testing.T, v Variant, st Stats, desc string) {
	t.Helper()
	if st.Retries > st.Stalls {
		t.Fatalf("%s: Retries=%d > Stalls=%d (every retry is a stall)", desc, st.Retries, st.Stalls)
	}
	if st.Fallbacks > 0 && st.Unresolved != st.Fallbacks {
		t.Fatalf("%s: drained exit with Unresolved=%d != Fallbacks=%d", desc, st.Unresolved, st.Fallbacks)
	}
	if !v.Boundary && st.Fallbacks > 0 {
		t.Fatalf("%s: boundary-less variant drained: %+v", desc, st)
	}
	if !v.Reset && st.Retries > 0 {
		t.Fatalf("%s: reset-less variant retried: %+v", desc, st)
	}
}

// TestStatsExitPathParity drives dense raw syndromes (heavy stall/drain
// traffic) through all variants and all three kernels and pins Stats
// equality plus the give-up invariants on every exit path reached.
func TestStatsExitPathParity(t *testing.T) {
	seen := map[string]map[string]bool{}
	trials := 40
	if confShort() {
		// 16 is the smallest budget at which the seeded corpus still
		// reaches every exit class asserted below.
		trials = 16
	}
	for _, d := range []int{3, 5, 9} {
		l := lattice.MustNew(d)
		for _, etype := range []lattice.ErrorType{lattice.ZErrors, lattice.XErrors} {
			g := l.MatchingGraph(etype)
			for _, v := range []Variant{Baseline, WithReset, WithBoundary, Final} {
				s := decodepool.NewScratch()
				rng := rand.New(rand.NewSource(int64(71*d) + int64(etype)))
				for _, p := range []float64{0.15, 0.3} {
					for trial := 0; trial < trials; trial++ {
						syn := make([]bool, g.NumChecks())
						for j := range syn {
							syn[j] = rng.Float64() < p
						}
						st := decodeAllKernels(t, g, v, 0, syn, s)
						desc := fmt.Sprintf("d=%d %v %s p=%g trial=%d", d, etype, v.Name(), p, trial)
						checkExitInvariants(t, v, st, desc)
						if seen[v.Name()] == nil {
							seen[v.Name()] = map[string]bool{}
						}
						seen[v.Name()][exitClass(st)] = true
					}
				}
			}
		}
	}
	// The corpus must actually exercise the give-up paths, or the parity
	// checks above prove nothing. Pinned from the seeded corpus; the
	// remaining paths (drain for resets+boundaries, cycle-guard exits)
	// are forced in TestStatsMaxCyclesExit.
	for variant, wants := range map[string][]string{
		"baseline":          {"clean", "giveup"},
		"resets":            {"clean", "giveup"},
		"resets+boundaries": {"clean"},
		"final":             {"clean", "drain", "retry-recovered"},
	} {
		for _, class := range wants {
			if !seen[variant][class] {
				t.Errorf("corpus never exercised %s exit %q (saw %v)", variant, class, seen[variant])
			}
		}
	}
}

// TestStatsMaxCyclesExit forces the cycle-guard exit with a tiny
// MaxCycles and checks it is never silent: Unresolved reports the hot
// modules the protocol failed on, drained or not, in every kernel.
func TestStatsMaxCyclesExit(t *testing.T) {
	l := lattice.MustNew(5)
	g := l.MatchingGraph(lattice.ZErrors)
	s := decodepool.NewScratch()
	rng := rand.New(rand.NewSource(5))
	syn := make([]bool, g.NumChecks())
	for j := range syn {
		syn[j] = rng.Float64() < 0.3
	}
	for _, v := range []Variant{Baseline, WithReset, WithBoundary, Final} {
		st := decodeAllKernels(t, g, v, 2, syn, s)
		if st.Unresolved == 0 {
			t.Errorf("%s: MaxCycles exit left Unresolved=0: %+v", v.Name(), st)
		}
		if v.Boundary && st.Fallbacks != st.Unresolved {
			t.Errorf("%s: MaxCycles drain Fallbacks=%d != Unresolved=%d", v.Name(), st.Fallbacks, st.Unresolved)
		}
		if !v.Boundary && st.Fallbacks != 0 {
			t.Errorf("%s: boundary-less drain: %+v", v.Name(), st)
		}
		checkExitInvariants(t, v, st, v.Name())
	}
}
