package sfq

import (
	"testing"

	"repro/internal/decoder"
	"repro/internal/lattice"
	"repro/internal/noise"
	"repro/internal/pauli"
)

func synWithHot(g *lattice.Graph, sites ...lattice.Site) []bool {
	syn := make([]bool, g.NumChecks())
	for _, s := range sites {
		i, ok := g.CheckIndex(s)
		if !ok {
			panic("not a check site")
		}
		syn[i] = true
	}
	return syn
}

func TestVariantNames(t *testing.T) {
	cases := map[string]Variant{
		"baseline":          Baseline,
		"resets":            WithReset,
		"resets+boundaries": WithBoundary,
		"final":             Final,
	}
	for name, v := range cases {
		if v.Name() != name {
			t.Errorf("Name()=%q want %q", v.Name(), name)
		}
		got, ok := VariantByName(name)
		if !ok || got != v {
			t.Errorf("VariantByName(%q) = %v,%v", name, got, ok)
		}
	}
	if _, ok := VariantByName("nope"); ok {
		t.Error("unknown variant resolved")
	}
	custom := Variant{Reset: true, ReqGrant: true}
	if custom.Name() != "custom+reset+reqgrant" {
		t.Errorf("custom name = %q", custom.Name())
	}
}

func TestDirections(t *testing.T) {
	if North.Opposite() != South || East.Opposite() != West ||
		South.Opposite() != North || West.Opposite() != East {
		t.Error("Opposite wrong")
	}
	names := map[Dir]string{North: "N", East: "E", South: "S", West: "W"}
	for d, n := range names {
		if d.String() != n {
			t.Errorf("Dir %d String=%q", d, d.String())
		}
		dr, dc := d.Delta()
		or, oc := d.Opposite().Delta()
		if dr+or != 0 || dc+oc != 0 {
			t.Errorf("Delta of %v and opposite do not cancel", d)
		}
	}
}

func TestEmptySyndromeZeroCycles(t *testing.T) {
	l := lattice.MustNew(5)
	g := l.MatchingGraph(lattice.ZErrors)
	mesh := New(g, Final)
	c, st, err := mesh.DecodeWithStats(make([]bool, g.NumChecks()))
	if err != nil || len(c.Qubits) != 0 || st.Cycles != 0 {
		t.Fatalf("empty syndrome: c=%v st=%+v err=%v", c, st, err)
	}
}

func TestSyndromeSizeMismatch(t *testing.T) {
	l := lattice.MustNew(3)
	g := l.MatchingGraph(lattice.ZErrors)
	mesh := New(g, Final)
	if _, _, err := mesh.DecodeWithStats(make([]bool, 3)); err == nil {
		t.Error("wrong-size syndrome accepted")
	}
	other := l.MatchingGraph(lattice.XErrors)
	if _, err := mesh.Decode(other, make([]bool, other.NumChecks())); err == nil {
		t.Error("foreign graph accepted")
	}
}

// The Fig. 7 scenario: two hot syndromes pair through an intermediate
// module and the reported chain connects them.
func TestTwoHotSyndromesPair(t *testing.T) {
	l := lattice.MustNew(5)
	g := l.MatchingGraph(lattice.ZErrors)
	mesh := New(g, Final)
	// Adjacent checks on the same row: chain must be the single data
	// qubit between them.
	syn := synWithHot(g, lattice.Site{Row: 2, Col: 3}, lattice.Site{Row: 2, Col: 5})
	c, st, err := mesh.DecodeWithStats(syn)
	if err != nil {
		t.Fatal(err)
	}
	if err := decoder.Validate(g, syn, c); err != nil {
		t.Fatalf("correction invalid: %v", err)
	}
	sup := c.Support()
	if len(sup) != 1 || sup[0] != l.QubitIndex(lattice.Site{Row: 2, Col: 4}) {
		t.Fatalf("chain = %v, want just (2,4)", sup)
	}
	if st.Pairings != 2 {
		t.Errorf("cleared %d hot modules, want 2", st.Pairings)
	}
	if st.Unresolved != 0 {
		t.Errorf("unresolved %d", st.Unresolved)
	}
	if st.Cycles == 0 {
		t.Error("zero cycles for nonempty syndrome")
	}
}

// Diagonal pairing: exactly one of the two L corners may fire, and the
// resulting chain must realize the syndrome, whichever diagonal is used.
func TestDiagonalPairingBothOrientations(t *testing.T) {
	l := lattice.MustNew(5)
	g := l.MatchingGraph(lattice.ZErrors)
	mesh := New(g, Final)
	cases := [][2]lattice.Site{
		{{Row: 0, Col: 3}, {Row: 2, Col: 5}},
		{{Row: 2, Col: 3}, {Row: 0, Col: 5}},
		{{Row: 4, Col: 1}, {Row: 6, Col: 5}},
	}
	for _, pair := range cases {
		syn := synWithHot(g, pair[0], pair[1])
		c, st, err := mesh.DecodeWithStats(syn)
		if err != nil {
			t.Fatal(err)
		}
		if err := decoder.Validate(g, syn, c); err != nil {
			t.Fatalf("%v: %v (chain %v)", pair, err, c.Support())
		}
		if st.Unresolved != 0 {
			t.Fatalf("%v: unresolved=%d", pair, st.Unresolved)
		}
		i, _ := g.CheckIndex(pair[0])
		j, _ := g.CheckIndex(pair[1])
		if got, want := c.Weight(), g.Dist(i, j); got != want {
			t.Errorf("%v: chain weight %d, want %d", pair, got, want)
		}
	}
}

// A lone hot syndrome next to the boundary must pair with the boundary
// (Fig. 8(b) mechanism) under the final design.
func TestBoundaryPairing(t *testing.T) {
	l := lattice.MustNew(5)
	g := l.MatchingGraph(lattice.ZErrors)
	mesh := New(g, Final)
	syn := synWithHot(g, lattice.Site{Row: 4, Col: 1})
	c, st, err := mesh.DecodeWithStats(syn)
	if err != nil {
		t.Fatal(err)
	}
	if err := decoder.Validate(g, syn, c); err != nil {
		t.Fatalf("boundary correction invalid: %v (chain %v)", err, c.Support())
	}
	sup := c.Support()
	if len(sup) != 1 || sup[0] != l.QubitIndex(lattice.Site{Row: 4, Col: 0}) {
		t.Fatalf("chain = %v, want just (4,0)", sup)
	}
	if st.BoundaryPairings != 1 {
		t.Errorf("BoundaryPairings=%d want 1", st.BoundaryPairings)
	}
}

// Without the boundary mechanism a lone hot syndrome cannot be resolved:
// the mesh must give up and report it.
func TestNoBoundaryLeavesUnresolved(t *testing.T) {
	l := lattice.MustNew(5)
	g := l.MatchingGraph(lattice.ZErrors)
	for _, v := range []Variant{Baseline, WithReset} {
		mesh := New(g, v)
		syn := synWithHot(g, lattice.Site{Row: 4, Col: 1})
		_, st, err := mesh.DecodeWithStats(syn)
		if err != nil {
			t.Fatal(err)
		}
		if st.Unresolved != 1 {
			t.Errorf("%s: unresolved=%d want 1", v.Name(), st.Unresolved)
		}
	}
}

// The Fig. 8(c) equidistant scenario: three evenly spaced hot syndromes.
// The final design must produce a correction realizing the syndrome
// (pairing two and sending one to a boundary, or chaining all three
// consistently) rather than pairing one module twice.
func TestEquidistantResolved(t *testing.T) {
	l := lattice.MustNew(7)
	g := l.MatchingGraph(lattice.ZErrors)
	mesh := New(g, Final)
	syn := synWithHot(g,
		lattice.Site{Row: 4, Col: 3},
		lattice.Site{Row: 4, Col: 7},
		lattice.Site{Row: 4, Col: 11},
	)
	c, st, err := mesh.DecodeWithStats(syn)
	if err != nil {
		t.Fatal(err)
	}
	if st.Unresolved != 0 {
		t.Fatalf("unresolved=%d", st.Unresolved)
	}
	if err := decoder.Validate(g, syn, c); err != nil {
		t.Fatalf("equidistant correction invalid: %v (chain %v)", err, c.Support())
	}
}

// Reset flaw demonstration (Fig. 8(a)): without resets, grow signals of
// already-paired modules keep flowing and produce heavier, sloppier
// corrections than the final design on multi-error rounds. We only
// assert the final design stays valid where the baseline is allowed to
// be wrong.
func TestFinalValidWhereBaselineMaywander(t *testing.T) {
	l := lattice.MustNew(7)
	g := l.MatchingGraph(lattice.ZErrors)
	final := New(g, Final)
	base := New(g, Baseline)
	syn := synWithHot(g,
		lattice.Site{Row: 2, Col: 3},
		lattice.Site{Row: 2, Col: 7},
		lattice.Site{Row: 6, Col: 5},
		lattice.Site{Row: 6, Col: 9},
	)
	c, st, err := final.DecodeWithStats(syn)
	if err != nil {
		t.Fatal(err)
	}
	if st.Unresolved != 0 {
		t.Fatalf("final unresolved=%d", st.Unresolved)
	}
	if err := decoder.Validate(g, syn, c); err != nil {
		t.Fatalf("final invalid: %v", err)
	}
	// Baseline must still terminate (even if its correction is wrong).
	_, bst, err := base.DecodeWithStats(syn)
	if err != nil {
		t.Fatal(err)
	}
	if bst.Cycles >= base.MaxCycles {
		t.Errorf("baseline hit the cycle guard: %+v", bst)
	}
}

// The fundamental decoder invariant for the final design: random
// syndromes at a wide range of rates are always fully resolved with a
// syndrome-clearing correction, for both error types and all distances.
func TestFinalClearsRandomSyndromes(t *testing.T) {
	rng := noise.NewRand(99)
	for _, d := range []int{3, 5, 7, 9} {
		l := lattice.MustNew(d)
		for _, e := range []lattice.ErrorType{lattice.ZErrors, lattice.XErrors} {
			g := l.MatchingGraph(e)
			mesh := New(g, Final)
			op := pauli.Z
			if e == lattice.XErrors {
				op = pauli.X
			}
			for _, p := range []float64{0.01, 0.05, 0.1} {
				for trial := 0; trial < 40; trial++ {
					f := pauli.NewFrame(l.NumQubits())
					for _, s := range l.DataSites() {
						if rng.Float64() < p {
							f.Apply(l.QubitIndex(s), op)
						}
					}
					syn := g.Syndrome(f)
					c, st, err := mesh.DecodeWithStats(syn)
					if err != nil {
						t.Fatal(err)
					}
					// Unresolved > 0 is legal only when the watchdog
					// drained those modules to a boundary (Fallbacks):
					// the final design never leaves a module hot.
					if st.Unresolved != 0 && st.Fallbacks == 0 {
						t.Fatalf("d=%d %v p=%v trial=%d: unresolved=%d stats=%+v",
							d, e, p, trial, st.Unresolved, st)
					}
					if err := decoder.Validate(g, syn, c); err != nil {
						t.Fatalf("d=%d %v p=%v trial=%d: %v", d, e, p, trial, err)
					}
				}
			}
		}
	}
}

// Decoding is deterministic: the same syndrome gives the same chain and
// cycle count.
func TestDeterministicDecode(t *testing.T) {
	l := lattice.MustNew(5)
	g := l.MatchingGraph(lattice.ZErrors)
	mesh := New(g, Final)
	syn := synWithHot(g,
		lattice.Site{Row: 0, Col: 3},
		lattice.Site{Row: 4, Col: 5},
		lattice.Site{Row: 6, Col: 1},
	)
	c1, st1, err := mesh.DecodeWithStats(syn)
	if err != nil {
		t.Fatal(err)
	}
	c2, st2, err := mesh.DecodeWithStats(syn)
	if err != nil {
		t.Fatal(err)
	}
	s1, s2 := c1.Support(), c2.Support()
	if len(s1) != len(s2) || st1 != st2 {
		t.Fatalf("nondeterministic: %v/%+v vs %v/%+v", s1, st1, s2, st2)
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("nondeterministic chains: %v vs %v", s1, s2)
		}
	}
}

// Mesh cycle counts must grow with the separation of the pair (signals
// advance one module per cycle).
func TestCyclesScaleWithDistance(t *testing.T) {
	l := lattice.MustNew(9)
	g := l.MatchingGraph(lattice.ZErrors)
	mesh := New(g, Final)
	near := synWithHot(g, lattice.Site{Row: 8, Col: 7}, lattice.Site{Row: 8, Col: 9})
	far := synWithHot(g, lattice.Site{Row: 0, Col: 7}, lattice.Site{Row: 16, Col: 9})
	_, stNear, err := mesh.DecodeWithStats(near)
	if err != nil {
		t.Fatal(err)
	}
	_, stFar, err := mesh.DecodeWithStats(far)
	if err != nil {
		t.Fatal(err)
	}
	if stFar.Cycles <= stNear.Cycles {
		t.Errorf("far pair %d cycles <= near pair %d", stFar.Cycles, stNear.Cycles)
	}
}

func TestStatsTimeNs(t *testing.T) {
	st := Stats{Cycles: 100}
	if got := st.TimeNs(); got < 16.2 || got > 16.3 {
		t.Errorf("100 cycles = %vns, want ~16.27", got)
	}
}

func TestAccessors(t *testing.T) {
	l := lattice.MustNew(3)
	g := l.MatchingGraph(lattice.ZErrors)
	mesh := New(g, WithBoundary)
	if mesh.Name() != "sfq-resets+boundaries" {
		t.Errorf("Name = %q", mesh.Name())
	}
	if mesh.Variant() != WithBoundary {
		t.Error("Variant accessor wrong")
	}
	syn := synWithHot(g, lattice.Site{Row: 0, Col: 1})
	c, err := mesh.Decode(g, syn)
	if err != nil {
		t.Fatal(err)
	}
	if err := decoder.Validate(g, syn, c); err != nil {
		t.Fatal(err)
	}
	if mesh.Stats().Cycles == 0 {
		t.Error("Stats not retained after Decode")
	}
}

// The X-error mesh pairs with the top/bottom boundaries instead.
func TestXErrorBoundarySides(t *testing.T) {
	l := lattice.MustNew(5)
	g := l.MatchingGraph(lattice.XErrors)
	mesh := New(g, Final)
	syn := synWithHot(g, lattice.Site{Row: 1, Col: 4})
	c, st, err := mesh.DecodeWithStats(syn)
	if err != nil {
		t.Fatal(err)
	}
	if st.BoundaryPairings != 1 || st.Unresolved != 0 {
		t.Fatalf("stats = %+v", st)
	}
	sup := c.Support()
	if len(sup) != 1 || sup[0] != l.QubitIndex(lattice.Site{Row: 0, Col: 4}) {
		t.Fatalf("chain = %v, want just (0,4)", sup)
	}
}
