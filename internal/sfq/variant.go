package sfq

// Variant selects which of the paper's incremental design mechanisms are
// enabled. The top row of Fig. 10 evaluates these cumulatively.
type Variant struct {
	// Reset enables the global reset mechanism: after every completed
	// pairing all module state except in-flight pair signals is cleared
	// and module inputs are blocked for ResetDepth cycles.
	Reset bool
	// Boundary enables the ring of boundary modules that pair hot
	// syndromes with the code boundaries.
	Boundary bool
	// ReqGrant enables the equidistant mechanism: the pair-request /
	// pair-grant handshake that serializes degenerate pairings.
	ReqGrant bool
}

// The paper's four incremental designs.
var (
	// Baseline is the §V-C baseline: grow signals and direct pair
	// back-propagation only.
	Baseline = Variant{}
	// WithReset adds the global reset mechanism.
	WithReset = Variant{Reset: true}
	// WithBoundary adds boundary modules on top of resets.
	WithBoundary = Variant{Reset: true, Boundary: true}
	// Final is the complete design: resets, boundaries, and the
	// request-grant equidistant mechanism.
	Final = Variant{Reset: true, Boundary: true, ReqGrant: true}
)

// Name labels the variant the way the paper's figures do.
func (v Variant) Name() string {
	switch v {
	case Baseline:
		return "baseline"
	case WithReset:
		return "resets"
	case WithBoundary:
		return "resets+boundaries"
	case Final:
		return "final"
	}
	n := "custom"
	if v.Reset {
		n += "+reset"
	}
	if v.Boundary {
		n += "+boundary"
	}
	if v.ReqGrant {
		n += "+reqgrant"
	}
	return n
}

// VariantByName resolves the paper's variant names; it reports false for
// unknown names.
func VariantByName(name string) (Variant, bool) {
	switch name {
	case "baseline":
		return Baseline, true
	case "resets", "reset":
		return WithReset, true
	case "resets+boundaries", "boundaries", "boundary":
		return WithBoundary, true
	case "final":
		return Final, true
	}
	return Variant{}, false
}

// ResetDepth is the number of cycles a global reset blocks module
// inputs: the logical depth of the decoder-module circuit (§VI-B).
const ResetDepth = 5

// CycleTimePs is the wall-clock duration of one mesh cycle in
// picoseconds: the full-circuit latency from the ERSFQ synthesis results
// (Table III).
const CycleTimePs = 162.72
