package sfq

import (
	"math/bits"
)

// The bit-plane kernel packs every mesh predicate into []uint64 planes —
// one bit per cell, one plane per (signal class × direction) plus the
// hot/fired/granted/sentPair/errOut state — and advances wavefronts with
// word-parallel shift-and-mask operations over whole rows. It is a
// cycle-exact re-expression of the legacy kernel: every phase computes
// the same per-cell transition, just 64 cells per instruction, and the
// conformance suite pins corrections and Stats bit-identical.
//
// Two scan-order details of the legacy kernel are load-bearing and
// preserved here:
//
//   - The legacy per-cell loops process signal sources in ascending cell
//     index, so when several signals converge on one destination in one
//     cycle they arrive ordered from-north, from-west, from-east,
//     from-south (sources n-m, n-1, n+1, n+m). Phases with
//     order-sensitive destination state (movePairs clearing hot,
//     moveGrants consuming at boundaries) therefore process travel
//     directions in the order [South, East, West, North].
//   - The rotated stall-retry grant priority offsets by (retry + cell
//     index) % 4, which is cell-dependent; the kernel splits eligible
//     cells into four index-residue classes (geo.classMask) and runs the
//     rotated priority encoding per class.
//
// Quiescence detection is O(1): each wavefront keeps an OR-accumulator
// of every word written this cycle, and the hot population is a
// maintained counter, so the per-cycle anySignal/countHot scans of the
// legacy kernel disappear.

// pairOrder is the travel-direction processing order that reproduces the
// legacy kernel's ascending-source-index arrival order at any shared
// destination cell.
var pairOrder = [4]Dir{South, East, West, North}

// grantPrio is the hardware grant priority (entry directions).
var grantPrio = [4]Dir{North, West, East, South}

// wavefront is the double-buffered plane set of one signal class. any
// flags are OR-accumulators over every word written into the respective
// plane set; they make quiescence checks O(1) and let clearNext skip
// planes that are already zero.
type wavefront struct {
	cur, nxt       [4][]uint64
	curAny, nxtAny uint64
}

func (w *wavefront) swap() {
	w.cur, w.nxt = w.nxt, w.cur
	w.curAny, w.nxtAny = w.nxtAny, w.curAny
}

// clearNext zeroes the next-cycle planes (stale state from two cycles
// ago) if anything was ever written into them.
func (w *wavefront) clearNext() {
	if w.nxtAny == 0 {
		return
	}
	for d := range w.nxt {
		clearPlane(w.nxt[d])
	}
	w.nxtAny = 0
}

// clearCur zeroes the in-flight planes (globalReset).
func (w *wavefront) clearCur() {
	if w.curAny == 0 {
		return
	}
	for d := range w.cur {
		clearPlane(w.cur[d])
	}
	w.curAny = 0
}

// planeState is the per-mesh state of the bit-plane kernel.
type planeState struct {
	mesh *Mesh
	geo  *meshGeom

	// Persistent per-decode module state.
	hot, errOut, fired, sentPair, granted []uint64
	growFrom, reqDirs, grants             [4][]uint64

	// Signals in flight, double-buffered, indexed by travel direction
	// (pairB carries boundary provenance alongside pair).
	growW, reqW, grantW, pairW, pairBW wavefront

	// Per-cycle scratch.
	sh         [4][]uint64 // shifted arrival planes
	tmpA, tmpB []uint64
}

func newPlaneState(m *Mesh) *planeState {
	geo := m.geo
	// One backing array for all planes: 5 state + 3×4 latch + 5×2×4
	// wavefront + 4 shift scratch + 2 temp = 63 planes.
	backing := make([]uint64, 63*geo.pw)
	next := func() []uint64 {
		p := backing[:geo.pw:geo.pw]
		backing = backing[geo.pw:]
		return p
	}
	ps := &planeState{mesh: m, geo: geo}
	ps.hot, ps.errOut, ps.fired, ps.sentPair, ps.granted = next(), next(), next(), next(), next()
	for d := 0; d < 4; d++ {
		ps.growFrom[d], ps.reqDirs[d], ps.grants[d] = next(), next(), next()
		ps.sh[d] = next()
	}
	for _, w := range []*wavefront{&ps.growW, &ps.reqW, &ps.grantW, &ps.pairW, &ps.pairBW} {
		for d := 0; d < 4; d++ {
			w.cur[d], w.nxt[d] = next(), next()
		}
	}
	ps.tmpA, ps.tmpB = next(), next()
	return ps
}

// reset clears all per-decode state.
func (ps *planeState) reset() {
	clearPlane(ps.hot)
	clearPlane(ps.errOut)
	clearPlane(ps.fired)
	clearPlane(ps.sentPair)
	clearPlane(ps.granted)
	for d := 0; d < 4; d++ {
		clearPlane(ps.growFrom[d])
		clearPlane(ps.reqDirs[d])
		clearPlane(ps.grants[d])
	}
	for _, w := range []*wavefront{&ps.growW, &ps.reqW, &ps.grantW, &ps.pairW, &ps.pairBW} {
		w.clearCur()
		// Mark next dirty so clearNext wipes any state a previous
		// aborted decode left behind.
		w.nxtAny = 1
		w.clearNext()
	}
	m := ps.mesh
	m.hotCount = 0
	m.resetCountdown = 0
	m.priorityOffset = 0
	m.stats = Stats{}
}

// decodeAppend is the bit-plane decode core; same contract as
// Mesh.decodeAppend.
func (ps *planeState) decodeAppend(syn []bool, q []int) ([]int, error) {
	m, geo := ps.mesh, ps.geo
	ps.reset()
	for ci, h := range syn {
		if h {
			setPlaneBit(geo, ps.hot, geo.cellOf[ci])
			m.hotCount++
		}
	}
	if m.hotCount == 0 {
		return q, nil
	}
	// Emit grows in all four directions at every hot module.
	for d := 0; d < 4; d++ {
		copy(ps.growW.cur[d], ps.hot)
	}
	ps.growW.curAny = 1
	retries := 0
	for {
		if m.hotCount == 0 && ps.pairW.curAny == 0 && m.resetCountdown == 0 {
			break // every syndrome paired and every chain fully marked
		}
		if m.resetCountdown == 0 && ps.quiescent() {
			// Stalled with hot modules left: recover with a global
			// reset and a rotated grant priority, or give up.
			m.stats.Stalls++
			if m.variant.Reset && retries < m.maxRetries {
				retries++
				m.stats.Retries++
				m.priorityOffset = retries
				ps.globalReset()
			} else if m.variant.Boundary {
				m.stats.Unresolved = m.hotCount
				ps.drainToBoundary()
				break
			} else {
				m.stats.Unresolved = m.hotCount
				break
			}
		}
		if m.stats.Cycles >= m.MaxCycles {
			m.stats.Unresolved = m.hotCount
			if m.variant.Boundary {
				ps.drainToBoundary()
			}
			break
		}
		ps.step()
		if m.tracer != nil {
			m.tracer(m.stats.Cycles, m.Render())
		}
	}
	// Extract the correction in ascending cell order (rows, then
	// columns) — the same order the legacy kernel scans errOut.
	for r := 0; r < geo.rows; r++ {
		base := r * geo.m
		for w := 0; w < geo.words; w++ {
			word := ps.errOut[r*geo.words+w]
			for word != 0 {
				b := bits.TrailingZeros64(word)
				word &= word - 1
				if q0 := geo.dataQ[base+w*64+b]; q0 >= 0 {
					q = append(q, q0)
				}
			}
		}
	}
	return q, nil
}

// quiescent reports whether no signal of any kind is in flight.
func (ps *planeState) quiescent() bool {
	return ps.growW.curAny|ps.reqW.curAny|ps.grantW.curAny|ps.pairW.curAny == 0
}

// globalReset mirrors Mesh.globalReset: everything but pair propagation
// and error outputs is cleared and inputs block for ResetDepth cycles.
func (ps *planeState) globalReset() {
	for d := 0; d < 4; d++ {
		clearPlane(ps.growFrom[d])
		clearPlane(ps.reqDirs[d])
		clearPlane(ps.grants[d])
	}
	clearPlane(ps.fired)
	clearPlane(ps.sentPair)
	clearPlane(ps.granted)
	ps.growW.clearCur()
	ps.reqW.clearCur()
	ps.grantW.clearCur()
	// pair planes and errOut survive by design.
	ps.mesh.resetCountdown = ResetDepth
}

// step advances the mesh one clock (bit-plane version of Mesh.step).
func (ps *planeState) step() {
	m := ps.mesh
	ps.growW.clearNext()
	ps.reqW.clearNext()
	ps.grantW.clearNext()
	ps.pairW.clearNext()
	ps.pairBW.clearNext()

	pairingDone := false
	if m.resetCountdown > 0 {
		// Inputs blocked: only pair signals propagate.
		pairingDone = ps.movePairs()
		m.resetCountdown--
		if m.resetCountdown == 0 {
			// Blocking over; surviving hot modules grow again.
			var acc uint64
			for d := 0; d < 4; d++ {
				nxt := ps.growW.nxt[d]
				for k, h := range ps.hot {
					nxt[k] |= h
					acc |= h
				}
			}
			ps.growW.nxtAny |= acc
		}
	} else {
		ps.moveGrows()
		ps.moveReqs()
		ps.moveGrants()
		pairingDone = ps.movePairs()
		ps.fireIntermediates()
		ps.completeHandshakes()
	}

	ps.growW.swap()
	ps.reqW.swap()
	ps.grantW.swap()
	ps.pairW.swap()
	ps.pairBW.swap()
	m.stats.Cycles++

	if pairingDone && m.variant.Reset {
		ps.globalReset()
		m.stats.Resets++
	}
}

// moveGrows advances grow wavefronts one module and latches arrivals;
// see Mesh.moveGrows for the annihilation rationale. All arrivals latch
// into growFrom before propagation is decided, so head-on meetings stop
// both fronts symmetrically — exactly the two-pass structure of the
// legacy kernel.
func (ps *planeState) moveGrows() {
	geo, v := ps.geo, ps.mesh.variant
	for d := 0; d < 4; d++ {
		geo.shiftInto(ps.sh[d], ps.growW.cur[d], Dir(d))
	}
	// Pass 1: latch interior arrivals by entry side.
	for d := 0; d < 4; d++ {
		sh := ps.sh[d]
		gf := ps.growFrom[Dir(d).Opposite()]
		for k, in := range geo.interior {
			gf[k] |= sh[k] & in
		}
	}
	// Pass 2: propagate into territory no opposite front has swept.
	for d := 0; d < 4; d++ {
		sh := ps.sh[d]
		gf := ps.growFrom[d]
		nxt := ps.growW.nxt[d]
		var acc uint64
		for k, in := range geo.interior {
			g := sh[k] & in &^ gf[k]
			nxt[k] |= g
			acc |= g
		}
		ps.growW.nxtAny |= acc
	}
	if !v.Boundary {
		return
	}
	// Boundary modules fire on first arrival. Each boundary cell has
	// exactly one interior neighbor, so at most one front can reach it
	// per cycle and no arrival-order tie-break is needed.
	for d := 0; d < 4; d++ {
		e := Dir(d).Opposite()
		sh := ps.sh[d]
		for k, bd := range geo.boundary {
			b := sh[k] & bd &^ ps.fired[k]
			if b == 0 {
				continue
			}
			ps.fired[k] |= b
			ps.reqDirs[e][k] |= b
			if v.ReqGrant {
				ps.reqW.nxt[e][k] |= b
				ps.reqW.nxtAny |= b
			} else {
				ps.sentPair[k] |= b
				ps.pairW.nxt[e][k] |= b
				ps.pairW.nxtAny |= b
				ps.pairBW.nxt[e][k] |= b
				ps.pairBW.nxtAny |= b
			}
		}
	}
}

// moveReqs advances pair requests; requests stop at hot modules, which
// grant at most one, by the (possibly rotated) hardware priority.
func (ps *planeState) moveReqs() {
	geo := ps.geo
	m := ps.mesh
	// Advance: requests pass through non-hot interior modules and latch
	// at hot ones. After this loop ps.sh[d] holds the arrivals that
	// latched at hot modules (travel direction d, entry Opposite(d)).
	for d := 0; d < 4; d++ {
		geo.shiftInto(ps.sh[d], ps.reqW.cur[d], Dir(d))
		sh := ps.sh[d]
		nxt := ps.reqW.nxt[d]
		var acc uint64
		for k, in := range geo.interior {
			mv := sh[k] & in
			pass := mv &^ ps.hot[k]
			sh[k] = mv & ps.hot[k]
			nxt[k] |= pass
			acc |= pass
		}
		ps.reqW.nxtAny |= acc
	}
	// Grant policy: one grant per hot module, never re-granting. The
	// grant travels back out the entry side of the winning request, so
	// arrival planes are addressed by entry: arrival[e] = sh[opp(e)].
	base := m.priorityOffset
	for k := range ps.tmpA {
		any := ps.sh[0][k] | ps.sh[1][k] | ps.sh[2][k] | ps.sh[3][k]
		elig := any & ps.hot[k] &^ ps.granted[k]
		if elig == 0 {
			continue
		}
		if base == 0 {
			var taken uint64
			for _, e := range grantPrio {
				c := ps.sh[e.Opposite()][k] & elig &^ taken
				if c != 0 {
					ps.grantW.nxt[e][k] |= c
					ps.grantW.nxtAny |= c
					taken |= c
				}
			}
		} else {
			// Rotated retry priority: the offset is (retry + cell
			// index) % 4, so encode per index-residue class.
			for cls := 0; cls < 4; cls++ {
				ecls := elig & geo.classMask[cls][k]
				if ecls == 0 {
					continue
				}
				off := (base + cls) % 4
				var taken uint64
				for j := 0; j < 4; j++ {
					e := grantPrio[(j+off)%4]
					c := ps.sh[e.Opposite()][k] & ecls &^ taken
					if c != 0 {
						ps.grantW.nxt[e][k] |= c
						ps.grantW.nxtAny |= c
						taken |= c
					}
				}
			}
		}
		ps.granted[k] |= elig
	}
}

// moveGrants advances pair grants; a grant is consumed by the first
// module that requested along its line. Directions run in legacy
// arrival order (see pairOrder) — irrelevant for interior consumption
// (per-entry latches are independent) but kept for the boundary
// sentPair latch.
func (ps *planeState) moveGrants() {
	geo := ps.geo
	for _, d := range pairOrder {
		geo.shiftInto(ps.tmpA, ps.grantW.cur[d], d)
		e := d.Opposite()
		nxt := ps.grantW.nxt[d]
		var acc uint64
		for k, in := range geo.interior {
			mv := ps.tmpA[k]
			if mv == 0 {
				continue
			}
			mvI := mv & in
			cons := mvI & ps.fired[k] & ps.reqDirs[e][k] &^ ps.grants[e][k]
			ps.grants[e][k] |= cons
			pass := mvI &^ cons
			nxt[k] |= pass
			acc |= pass
			bc := mv & geo.boundary[k] & ps.fired[k] & ps.reqDirs[e][k] &^ ps.sentPair[k]
			if bc != 0 {
				ps.sentPair[k] |= bc
				ps.pairW.nxt[e][k] |= bc
				ps.pairW.nxtAny |= bc
				ps.pairBW.nxt[e][k] |= bc
				ps.pairBW.nxtAny |= bc
			}
		}
		ps.grantW.nxtAny |= acc
	}
}

// movePairs advances pair signals, toggling error outputs and clearing
// hot modules they terminate at; see Mesh.movePairs. Directions run in
// legacy arrival order so that when two pair signals reach one hot
// module in the same cycle, the same one terminates there and the same
// one passes through.
func (ps *planeState) movePairs() bool {
	geo := ps.geo
	m := ps.mesh
	done := false
	for _, d := range pairOrder {
		geo.shiftInto(ps.tmpA, ps.pairW.cur[d], d)
		geo.shiftInto(ps.tmpB, ps.pairBW.cur[d], d)
		nxt, nxtB := ps.pairW.nxt[d], ps.pairBW.nxt[d]
		var acc, accB uint64
		for k, in := range geo.interior {
			mv := ps.tmpA[k] & in
			if mv == 0 {
				continue
			}
			ps.errOut[k] ^= mv
			hits := mv & ps.hot[k]
			if hits != 0 {
				ps.hot[k] &^= hits
				nh := bits.OnesCount64(hits)
				m.hotCount -= nh
				m.stats.Pairings += nh
				m.stats.BoundaryPairings += bits.OnesCount64(hits & ps.tmpB[k])
				done = true
			}
			pass := mv &^ hits
			nxt[k] |= pass
			acc |= pass
			bp := ps.tmpB[k] & pass
			nxtB[k] |= bp
			accB |= bp
		}
		ps.pairW.nxtAny |= acc
		ps.pairBW.nxtAny |= accB
	}
	return done
}

// fireIntermediates turns modules holding grows from two distinct
// directions into intermediates, with the legacy corner priority:
// West+East, then North+South, then North+West, then North+East.
func (ps *planeState) fireIntermediates() {
	geo, v := ps.geo, ps.mesh.variant
	gfN, gfE, gfS, gfW := ps.growFrom[North], ps.growFrom[East], ps.growFrom[South], ps.growFrom[West]
	for k, in := range geo.interior {
		elig := in &^ ps.fired[k] &^ ps.hot[k]
		if elig == 0 {
			continue
		}
		cWE := elig & gfW[k] & gfE[k]
		rem := elig &^ cWE
		cNS := rem & gfN[k] & gfS[k]
		rem &^= cNS
		cNW := rem & gfN[k] & gfW[k]
		rem &^= cNW
		cNE := rem & gfN[k] & gfE[k]
		firedNew := cWE | cNS | cNW | cNE
		if firedNew == 0 {
			continue
		}
		ps.fired[k] |= firedNew
		setN := cNS | cNW | cNE
		setS := cNS
		setE := cWE | cNE
		setW := cWE | cNW
		ps.reqDirs[North][k] |= setN
		ps.reqDirs[South][k] |= setS
		ps.reqDirs[East][k] |= setE
		ps.reqDirs[West][k] |= setW
		if v.ReqGrant {
			ps.reqW.nxt[North][k] |= setN
			ps.reqW.nxt[South][k] |= setS
			ps.reqW.nxt[East][k] |= setE
			ps.reqW.nxt[West][k] |= setW
			ps.reqW.nxtAny |= firedNew
		} else {
			ps.sentPair[k] |= firedNew
			ps.errOut[k] ^= firedNew
			ps.pairW.nxt[North][k] |= setN
			ps.pairW.nxt[South][k] |= setS
			ps.pairW.nxt[East][k] |= setE
			ps.pairW.nxt[West][k] |= setW
			ps.pairW.nxtAny |= firedNew
		}
	}
}

// completeHandshakes lets intermediates holding grants from both request
// directions emit their pair signals.
func (ps *planeState) completeHandshakes() {
	if !ps.mesh.variant.ReqGrant {
		return
	}
	geo := ps.geo
	for k, in := range geo.interior {
		pend := (ps.reqDirs[0][k] &^ ps.grants[0][k]) |
			(ps.reqDirs[1][k] &^ ps.grants[1][k]) |
			(ps.reqDirs[2][k] &^ ps.grants[2][k]) |
			(ps.reqDirs[3][k] &^ ps.grants[3][k])
		ready := (ps.fired[k] &^ ps.sentPair[k]) & in &^ pend
		if ready == 0 {
			continue
		}
		ps.sentPair[k] |= ready
		ps.errOut[k] ^= ready
		for d := 0; d < 4; d++ {
			p := ready & ps.reqDirs[d][k]
			ps.pairW.nxt[d][k] |= p
			ps.pairW.nxtAny |= p
		}
	}
}

// drainToBoundary force-pairs remaining hot modules with their nearest
// boundary; bit-plane version of Mesh.drainToBoundary, iterating hot
// cells in the same ascending order.
func (ps *planeState) drainToBoundary() {
	geo := ps.geo
	m := ps.mesh
	for r := 0; r < geo.rows; r++ {
		for w := 0; w < geo.words; w++ {
			word := ps.hot[r*geo.words+w]
			for word != 0 {
				b := bits.TrailingZeros64(word)
				word &= word - 1
				i := r*geo.m + w*64 + b
				d, hops := geo.drainDir(i)
				for j := geo.neighbor(i, d); j >= 0 && geo.kind[j] == cellInterior; j = geo.neighbor(j, d) {
					ps.errOut[j/geo.m*geo.words+(j%geo.m)>>6] ^= uint64(1) << (uint(j%geo.m) & 63)
				}
				ps.hot[r*geo.words+w] &^= uint64(1) << (uint(w*64+b) & 63)
				m.hotCount--
				m.stats.Fallbacks++
				m.stats.Pairings++
				m.stats.BoundaryPairings++
				m.stats.Cycles += 3*hops + ResetDepth
			}
		}
	}
}
