package sfq

import "math/bits"

// The fused wide stepping path. For plane widths above one word the
// multi-pass phase structure inherited from the scalar kernel (shift
// planes into scratch, then latch, then propagate, each a separate
// sweep) leaves most of the step budget in loop overhead and scratch
// traffic: moveGrows alone is 16 row sweeps. Every phase of the batch
// kernel is word-local once the shifted arrival values are in hand —
// vertical shifts read the word W positions away, horizontal shifts
// never cross a word (lanes are packed within words) — so each phase
// collapses into a single sweep that materializes all four directions'
// arrivals in registers, skips words with no signal early, and touches
// every plane word at most once. The fused phases compute bit-for-bit
// the same transitions as the multi-pass originals (the conformance
// suite pins all widths against the scalar kernel); the W=1 layout
// keeps the multi-pass path as the reference and baseline.
//
// Ordering notes carried over from the originals:
//   - movePairsWide and moveGrantsWide process travel directions in
//     pairOrder [South, East, West, North] *per word*, which reproduces
//     the sequential-sweep semantics exactly because every update those
//     sweeps make is word-local (hot, errOut, sentPair, grants all live
//     at the destination word).
//   - fireCompleteWide fuses fireIntermediates and completeHandshakes:
//     the handshake scan reads only state the fire scan writes at the
//     same word, so running both at word k before moving on is
//     equivalent to two full sweeps.

// moveGrowsWide is moveGrows as one fused sweep.
func (b *BatchMesh) moveGrowsWide() {
	bg, v := b.bg, b.variant
	n := bg.n
	w := bg.words
	wm := bg.wmask
	em, wmk := bg.eastMask, bg.westMask
	interior := bg.interior[:n]
	boundary := bg.boundary[:n]
	curN := b.growW.cur[North][:n]
	curE := b.growW.cur[East][:n]
	curS := b.growW.cur[South][:n]
	curW := b.growW.cur[West][:n]
	nxtN := b.growW.nxt[North][:n]
	nxtE := b.growW.nxt[East][:n]
	nxtS := b.growW.nxt[South][:n]
	nxtW := b.growW.nxt[West][:n]
	gfN := b.growFrom[North][:n]
	gfE := b.growFrom[East][:n]
	gfS := b.growFrom[South][:n]
	gfW := b.growFrom[West][:n]
	fired := b.fired[:n]
	bdry := v.Boundary
	reqGrant := v.ReqGrant
	var acc [4]uint64
	for k := 0; k < n; k++ {
		var shN, shS uint64
		if k < n-w {
			shN = curN[k+w]
		}
		if k >= w {
			shS = curS[k-w]
		}
		shE := curE[k] << 1 & em
		shW := curW[k] >> 1 & wmk
		if shN|shS|shE|shW == 0 {
			continue
		}
		in := interior[k]
		if (shN|shS|shE|shW)&in != 0 {
			// A latch is landing at this word: fire eligibility may
			// change, so fireCompleteWide must re-evaluate it.
			b.fireDirty[k>>6] |= 1 << (uint(k) & 63)
		}
		// Latch interior arrivals by entry side (pass 1), then
		// propagate into territory no opposite front has swept (pass
		// 2). gf[d] receives only sh[opp(d)] at this same word, so the
		// latched values are complete before propagation reads them.
		gN := gfN[k] | shS&in
		gS := gfS[k] | shN&in
		gE := gfE[k] | shW&in
		gW := gfW[k] | shE&in
		gfN[k], gfS[k], gfE[k], gfW[k] = gN, gS, gE, gW
		pN := shN & in &^ gN
		pE := shE & in &^ gE
		pS := shS & in &^ gS
		pW := shW & in &^ gW
		if p := pN | pE | pS | pW; p != 0 {
			nxtN[k] |= pN
			nxtE[k] |= pE
			nxtS[k] |= pS
			nxtW[k] |= pW
			acc[k&wm] |= p
		}
		if !bdry {
			continue
		}
		bd := boundary[k]
		if bd == 0 {
			continue
		}
		// Boundary modules fire on first arrival. Each boundary cell
		// has exactly one interior neighbor, so the per-direction fire
		// sets are bit-disjoint and merge without a tie-break.
		f := fired[k]
		fbN := shN & bd &^ f
		fbE := shE & bd &^ f
		fbS := shS & bd &^ f
		fbW := shW & bd &^ f
		fb := fbN | fbE | fbS | fbW
		if fb == 0 {
			continue
		}
		fired[k] = f | fb
		// Requests head back out the entry side: e = opposite(travel).
		b.reqDirs[South][k] |= fbN
		b.reqDirs[West][k] |= fbE
		b.reqDirs[North][k] |= fbS
		b.reqDirs[East][k] |= fbW
		if reqGrant {
			b.reqW.nxt[South][k] |= fbN
			b.reqW.nxt[West][k] |= fbE
			b.reqW.nxt[North][k] |= fbS
			b.reqW.nxt[East][k] |= fbW
			b.reqW.nxtAny[k&wm] |= fb
		} else {
			b.sentPair[k] |= fb
			b.pairW.nxt[South][k] |= fbN
			b.pairW.nxt[West][k] |= fbE
			b.pairW.nxt[North][k] |= fbS
			b.pairW.nxt[East][k] |= fbW
			b.pairW.nxtAny[k&wm] |= fb
			b.pairBW.nxt[South][k] |= fbN
			b.pairBW.nxt[West][k] |= fbE
			b.pairBW.nxt[North][k] |= fbS
			b.pairBW.nxt[East][k] |= fbW
			b.pairBW.nxtAny[k&wm] |= fb
		}
	}
	b.growW.orAny(&acc)
}

// moveReqsWide is moveReqs as one fused sweep; the rotated-priority
// slow path (some lane mid-retry) stays per lane over the word's
// column.
func (b *BatchMesh) moveReqsWide() {
	bg := b.bg
	n := bg.n
	w := bg.words
	wm := bg.wmask
	em, wmk := bg.eastMask, bg.westMask
	interior := bg.interior[:n]
	curN := b.reqW.cur[North][:n]
	curE := b.reqW.cur[East][:n]
	curS := b.reqW.cur[South][:n]
	curW := b.reqW.cur[West][:n]
	nxtN := b.reqW.nxt[North][:n]
	nxtE := b.reqW.nxt[East][:n]
	nxtS := b.reqW.nxt[South][:n]
	nxtW := b.reqW.nxt[West][:n]
	gnN := b.grantW.nxt[North][:n]
	gnE := b.grantW.nxt[East][:n]
	gnS := b.grantW.nxt[South][:n]
	gnW := b.grantW.nxt[West][:n]
	hotP := b.hot[:n]
	grantedP := b.granted[:n]
	var acc [4]uint64
	for k := 0; k < n; k++ {
		var aN, aS uint64
		if k < n-w {
			aN = curN[k+w]
		}
		if k >= w {
			aS = curS[k-w]
		}
		aE := curE[k] << 1 & em
		aW := curW[k] >> 1 & wmk
		if aN|aS|aE|aW == 0 {
			continue
		}
		in := interior[k]
		hot := hotP[k]
		// Requests pass through non-hot interior modules and latch at
		// hot ones (travel direction d, entry Opposite(d)).
		mvN := aN & in
		mvE := aE & in
		mvS := aS & in
		mvW := aW & in
		latN := mvN & hot
		latE := mvE & hot
		latS := mvS & hot
		latW := mvW & hot
		psN := mvN &^ hot
		psE := mvE &^ hot
		psS := mvS &^ hot
		psW := mvW &^ hot
		if ps := psN | psE | psS | psW; ps != 0 {
			nxtN[k] |= psN
			nxtE[k] |= psE
			nxtS[k] |= psS
			nxtW[k] |= psW
			acc[k&wm] |= ps
		}
		elig := (latN | latE | latS | latW) &^ grantedP[k]
		if elig == 0 {
			continue
		}
		if b.anyPrio == 0 {
			// Fixed hardware grant priority (grantPrio = N, W, E, S by
			// entry side); arrival by entry e is lat[opposite(e)].
			cN := latS & elig
			taken := cN
			cW := latE & elig &^ taken
			taken |= cW
			cE := latW & elig &^ taken
			taken |= cE
			cS := latN & elig &^ taken
			taken |= cS
			gnN[k] |= cN
			gnW[k] |= cW
			gnE[k] |= cE
			gnS[k] |= cS
			b.grantW.nxtAny[k&wm] |= taken
		} else {
			lat := [4]uint64{latN, latE, latS, latW}
			col := k & wm
			for l := col * bg.perWord; l < bg.colEnd[col]; l++ {
				el := elig & bg.laneBits[l]
				if el == 0 {
					continue
				}
				base := b.lanePrio[l]
				if base == 0 {
					var taken uint64
					for _, e := range grantPrio {
						c := lat[e.Opposite()] & el &^ taken
						if c != 0 {
							b.grantW.nxt[e][k] |= c
							b.grantW.nxtAny[col] |= c
							taken |= c
						}
					}
					continue
				}
				for cls := 0; cls < 4; cls++ {
					ecls := el & bg.classMask[cls][k]
					if ecls == 0 {
						continue
					}
					off := (base + cls) % 4
					var taken uint64
					for j := 0; j < 4; j++ {
						e := grantPrio[(j+off)%4]
						c := lat[e.Opposite()] & ecls &^ taken
						if c != 0 {
							b.grantW.nxt[e][k] |= c
							b.grantW.nxtAny[col] |= c
							taken |= c
						}
					}
				}
			}
		}
		grantedP[k] |= elig
	}
	b.reqW.orAny(&acc)
}

// moveGrantsWide is moveGrants as one fused sweep, directions processed
// in pairOrder per word.
func (b *BatchMesh) moveGrantsWide() {
	bg := b.bg
	n := bg.n
	w := bg.words
	em, wmk := bg.eastMask, bg.westMask
	interior := bg.interior[:n]
	boundary := bg.boundary[:n]
	curN := b.grantW.cur[North][:n]
	curE := b.grantW.cur[East][:n]
	curS := b.grantW.cur[South][:n]
	curW := b.grantW.cur[West][:n]
	var acc [4]uint64
	for k := 0; k < n; k++ {
		var mvN, mvS uint64
		if k < n-w {
			mvN = curN[k+w]
		}
		if k >= w {
			mvS = curS[k-w]
		}
		mvE := curE[k] << 1 & em
		mvW := curW[k] >> 1 & wmk
		if mvS|mvE|mvW|mvN == 0 {
			continue
		}
		in := interior[k]
		bd := boundary[k]
		f := b.fired[k]
		// pairOrder: South, East, West, North; e = opposite(travel).
		if mvS != 0 {
			b.grantConsume(k, mvS, in, bd, f, North, South, &acc)
		}
		if mvE != 0 {
			b.grantConsume(k, mvE, in, bd, f, West, East, &acc)
		}
		if mvW != 0 {
			b.grantConsume(k, mvW, in, bd, f, East, West, &acc)
		}
		if mvN != 0 {
			b.grantConsume(k, mvN, in, bd, f, South, North, &acc)
		}
	}
	b.grantW.orAny(&acc)
}

// grantConsume is one travel direction of moveGrantsWide at word k:
// interior consumption, pass-through, and the boundary sentPair latch.
func (b *BatchMesh) grantConsume(k int, mv, in, bd, f uint64, e, d Dir, acc *[4]uint64) {
	wm := b.bg.wmask
	mvI := mv & in
	rde := b.reqDirs[e][k]
	cons := mvI & f & rde &^ b.grants[e][k]
	if cons != 0 {
		b.grants[e][k] |= cons
		// A grant was consumed: the module's handshake may now be
		// complete, so fireCompleteWide must re-check this word.
		b.hsDirty[k>>6] |= 1 << (uint(k) & 63)
	}
	pass := mvI &^ cons
	b.grantW.nxt[d][k] |= pass
	acc[k&wm] |= pass
	bc := mv & bd & f & rde &^ b.sentPair[k]
	if bc != 0 {
		b.sentPair[k] |= bc
		b.pairW.nxt[e][k] |= bc
		b.pairW.nxtAny[k&wm] |= bc
		b.pairBW.nxt[e][k] |= bc
		b.pairBW.nxtAny[k&wm] |= bc
	}
}

// movePairsWide is movePairs as one fused sweep, directions processed
// in pairOrder per word; per-lane hit accounting is unchanged.
func (b *BatchMesh) movePairsWide() (done uint64) {
	bg := b.bg
	n := bg.n
	w := bg.words
	em, wmk := bg.eastMask, bg.westMask
	interior := bg.interior[:n]
	curN := b.pairW.cur[North][:n]
	curE := b.pairW.cur[East][:n]
	curS := b.pairW.cur[South][:n]
	curW := b.pairW.cur[West][:n]
	curBN := b.pairBW.cur[North][:n]
	curBE := b.pairBW.cur[East][:n]
	curBS := b.pairBW.cur[South][:n]
	curBW := b.pairBW.cur[West][:n]
	for k := 0; k < n; k++ {
		var aN, aS, bN, bS uint64
		if k < n-w {
			aN = curN[k+w]
			bN = curBN[k+w]
		}
		if k >= w {
			aS = curS[k-w]
			bS = curBS[k-w]
		}
		aE := curE[k] << 1 & em
		aW := curW[k] >> 1 & wmk
		if aN|aS|aE|aW == 0 {
			continue
		}
		bE := curBE[k] << 1 & em
		bW := curBW[k] >> 1 & wmk
		in := interior[k]
		// pairOrder: South, East, West, North.
		done |= b.pairStep(k, aS&in, bS, South)
		done |= b.pairStep(k, aE&in, bE, East)
		done |= b.pairStep(k, aW&in, bW, West)
		done |= b.pairStep(k, aN&in, bN, North)
	}
	return done
}

// pairStep is one travel direction of movePairsWide at word k: error
// marking, hot termination with per-lane accounting, and pass-through
// with boundary provenance.
func (b *BatchMesh) pairStep(k int, mv, pb uint64, d Dir) (done uint64) {
	if mv == 0 {
		return 0
	}
	bg := b.bg
	wm := bg.wmask
	b.errOut[k] ^= mv
	hits := mv & b.hot[k]
	if hits != 0 {
		b.hot[k] &^= hits
		// A hot module terminated: cells here left the hot mask, so
		// their latched grows may now fire — re-evaluate the word.
		b.fireDirty[k>>6] |= 1 << (uint(k) & 63)
		col := k & wm
		for l := col * bg.perWord; l < bg.colEnd[col]; l++ {
			hl := hits & bg.laneBits[l]
			if hl == 0 {
				continue
			}
			nh := bits.OnesCount64(hl)
			b.laneHot[l] -= nh
			b.laneStats[l].Pairings += nh
			b.laneStats[l].BoundaryPairings += bits.OnesCount64(hl & pb)
			done |= uint64(1) << uint(l)
		}
	}
	pass := mv &^ hits
	b.pairW.nxt[d][k] |= pass
	b.pairW.nxtAny[k&wm] |= pass
	bp := pb & pass
	b.pairBW.nxt[d][k] |= bp
	b.pairBW.nxtAny[k&wm] |= bp
	return done
}

// fireCompleteWide is fireIntermediates + completeHandshakes restricted
// to the dirty words the earlier phases marked this step. Both scans
// are event-driven:
//
//   - Fire eligibility at a word changes only when a grow latch lands
//     there (moveGrowsWide marks fireDirty) or a hot module terminates
//     there (pairStep marks it) — fired bits and lane scrubs/resets only
//     shrink the eligible set, and a scrub or reset also clears the
//     lane's growFrom latches, so no unmarked word can newly fire.
//   - A handshake completes only when the module's last outstanding
//     grant is consumed (grantConsume marks hsDirty): a fresh fire
//     always creates pending request dirs of its own, so it can never
//     be ready in the step it fires, and sentPair/reqDirs updates only
//     remove readiness.
//
// Stale marks are harmless (the word re-evaluates to a no-op); the maps
// are consumed and cleared every step, so each event is paid once.
// Processing all fire words before all handshake words preserves the
// scalar kernel's two-sweep order; every update is word-local, so the
// sparse visit order within a sweep cannot change the outcome.
func (b *BatchMesh) fireCompleteWide() {
	fd := b.fireDirty
	b.fireDirty = [4]uint64{}
	hd := b.hsDirty
	b.hsDirty = [4]uint64{}
	reqGrant := b.variant.ReqGrant
	for g := 0; g < 4; g++ {
		m := fd[g]
		for m != 0 {
			k := g<<6 + bits.TrailingZeros64(m)
			m &= m - 1
			b.fireWord(k, reqGrant)
		}
	}
	if !reqGrant {
		return
	}
	for g := 0; g < 4; g++ {
		m := hd[g]
		for m != 0 {
			k := g<<6 + bits.TrailingZeros64(m)
			m &= m - 1
			b.handshakeWord(k)
		}
	}
}

// fireWord is fireIntermediates at one plane word.
func (b *BatchMesh) fireWord(k int, reqGrant bool) {
	bg := b.bg
	wm := bg.wmask
	elig := bg.interior[k] &^ b.fired[k] &^ b.hot[k]
	if elig == 0 {
		return
	}
	gN, gE, gS, gW := b.growFrom[North][k], b.growFrom[East][k], b.growFrom[South][k], b.growFrom[West][k]
	cWE := elig & gW & gE
	rem := elig &^ cWE
	cNS := rem & gN & gS
	rem &^= cNS
	cNW := rem & gN & gW
	rem &^= cNW
	cNE := rem & gN & gE
	firedNew := cWE | cNS | cNW | cNE
	if firedNew == 0 {
		return
	}
	b.fired[k] |= firedNew
	setN := cNS | cNW | cNE
	setS := cNS
	setE := cWE | cNE
	setW := cWE | cNW
	b.reqDirs[North][k] |= setN
	b.reqDirs[South][k] |= setS
	b.reqDirs[East][k] |= setE
	b.reqDirs[West][k] |= setW
	if reqGrant {
		b.reqW.nxt[North][k] |= setN
		b.reqW.nxt[South][k] |= setS
		b.reqW.nxt[East][k] |= setE
		b.reqW.nxt[West][k] |= setW
		b.reqW.nxtAny[k&wm] |= firedNew
	} else {
		b.sentPair[k] |= firedNew
		b.errOut[k] ^= firedNew
		b.pairW.nxt[North][k] |= setN
		b.pairW.nxt[South][k] |= setS
		b.pairW.nxt[East][k] |= setE
		b.pairW.nxt[West][k] |= setW
		b.pairW.nxtAny[k&wm] |= firedNew
	}
}

// handshakeWord is completeHandshakes at one plane word.
func (b *BatchMesh) handshakeWord(k int) {
	bg := b.bg
	wm := bg.wmask
	rdN, rdE, rdS, rdW := b.reqDirs[North][k], b.reqDirs[East][k], b.reqDirs[South][k], b.reqDirs[West][k]
	pend := (rdN &^ b.grants[North][k]) |
		(rdE &^ b.grants[East][k]) |
		(rdS &^ b.grants[South][k]) |
		(rdW &^ b.grants[West][k])
	ready := (b.fired[k] &^ b.sentPair[k]) & bg.interior[k] &^ pend
	if ready == 0 {
		return
	}
	b.sentPair[k] |= ready
	b.errOut[k] ^= ready
	pN := ready & rdN
	pE := ready & rdE
	pS := ready & rdS
	pW := ready & rdW
	b.pairW.nxt[North][k] |= pN
	b.pairW.nxt[East][k] |= pE
	b.pairW.nxt[South][k] |= pS
	b.pairW.nxt[West][k] |= pW
	b.pairW.nxtAny[k&wm] |= pN | pE | pS | pW
}
