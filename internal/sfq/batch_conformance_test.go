package sfq

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/decodepool"
	"repro/internal/lattice"
	"repro/internal/pauli"
)

// The batch conformance suite pins the SWAR kernel bit-identical to the
// scalar bit-plane kernel: same correction qubits and same per-lane
// Stats for every syndrome of a batch, across variants, error types,
// lane widths, and decode-order permutations induced by dynamic refill.

// assertBatchMatches decodes every syndrome on the scalar mesh, then
// all of them in one DecodeBatchInto, and fails on any divergence in
// corrections or per-lane Stats.
func assertBatchMatches(t *testing.T, g *lattice.Graph, scalar *Mesh, batch *BatchMesh, s *decodepool.Scratch, syns [][]bool, desc string) {
	t.Helper()
	type want struct {
		qubits string
		st     Stats
	}
	wants := make([]want, len(syns))
	for i, syn := range syns {
		c, st, err := scalar.DecodeWithStats(syn)
		if err != nil {
			t.Fatalf("%s: scalar decode %d: %v", desc, i, err)
		}
		wants[i] = want{fmt.Sprint(c.Qubits), st}
	}
	corr, err := batch.DecodeBatchInto(g, syns, s)
	if err != nil {
		t.Fatalf("%s: batch decode: %v", desc, err)
	}
	if len(corr) != len(syns) {
		t.Fatalf("%s: got %d corrections for %d syndromes", desc, len(corr), len(syns))
	}
	for i := range syns {
		if got := fmt.Sprint(corr[i].Qubits); got != wants[i].qubits {
			t.Fatalf("%s: syndrome %d corrections diverge:\nscalar %s\nbatch  %s",
				desc, i, wants[i].qubits, got)
		}
		if st := batch.LaneStats(i); st != wants[i].st {
			t.Fatalf("%s: syndrome %d stats diverge:\nscalar %+v\nbatch  %+v",
				desc, i, wants[i].st, st)
		}
	}
}

// TestBatchMeshConformanceLowWeight decodes every weight-≤2 error
// pattern as one large batch (heavy dynamic refill) at several lane
// widths, for all variants and both error types.
func TestBatchMeshConformanceLowWeight(t *testing.T) {
	for _, d := range []int{3, 5} {
		for _, etype := range []lattice.ErrorType{lattice.ZErrors, lattice.XErrors} {
			l := lattice.MustNew(d)
			g := l.MatchingGraph(etype)
			var qubits []int
			for _, site := range l.DataSites() {
				qubits = append(qubits, l.QubitIndex(site))
			}
			f := pauli.NewFrame(l.NumQubits())
			var syns [][]bool
			syns = append(syns, errorSyndrome(l, g, f)) // weight 0
			for _, q := range qubits {
				syns = append(syns, errorSyndrome(l, g, f, q))
			}
			for i := 0; i < len(qubits); i++ {
				for j := i + 1; j < len(qubits); j++ {
					syns = append(syns, errorSyndrome(l, g, f, qubits[i], qubits[j]))
				}
			}
			widths := []int{1, 2, MaxBatchLanes(d)}
			if confShort() {
				widths = []int{MaxBatchLanes(d)}
			}
			for _, v := range []Variant{Baseline, WithReset, WithBoundary, Final} {
				scalar := NewWithKernel(g, v, KernelBitplane)
				s := decodepool.NewScratch()
				for _, lanes := range widths {
					batch := NewBatchWithLanes(g, v, lanes)
					assertBatchMatches(t, g, scalar, batch, s, syns,
						fmt.Sprintf("d=%d %v %s lanes=%d", d, etype, v.Name(), batch.Lanes()))
				}
			}
		}
	}
}

// TestBatchMeshConformanceRandom drives scalar and batched kernels over
// seeded random raw syndromes, including the dense stall patterns that
// exercise per-lane retry priorities and global resets.
func TestBatchMeshConformanceRandom(t *testing.T) {
	batches := 6
	if confShort() {
		batches = 2
	}
	dists := []int{3, 5, 7, 9}
	if !confShort() {
		dists = append(dists, 13)
	}
	for _, d := range dists {
		for _, etype := range []lattice.ErrorType{lattice.ZErrors, lattice.XErrors} {
			l := lattice.MustNew(d)
			g := l.MatchingGraph(etype)
			for _, p := range []float64{0.02, 0.08, 0.2} {
				rng := rand.New(rand.NewSource(int64(9000*d) + int64(100*p*float64(d)) + int64(etype)))
				variants := []Variant{Baseline, WithReset, WithBoundary, Final}
				if d > 5 {
					variants = []Variant{Final}
				}
				for _, v := range variants {
					scalar := NewWithKernel(g, v, KernelBitplane)
					batch := NewBatch(g, v)
					s := decodepool.NewScratch()
					for b := 0; b < batches; b++ {
						n := 2*batch.Lanes() + b // uneven tails exercise partial refill
						syns := make([][]bool, n)
						for i := range syns {
							syns[i] = make([]bool, g.NumChecks())
							for j := range syns[i] {
								syns[i][j] = rng.Float64() < p
							}
						}
						assertBatchMatches(t, g, scalar, batch, s, syns,
							fmt.Sprintf("d=%d %v %s p=%g batch=%d", d, etype, v.Name(), p, b))
					}
				}
			}
		}
	}
}

// TestBatchMeshSingleDecodeAdapters checks the decoder.Decoder and
// IntoDecoder faces of BatchMesh against the scalar kernel, including
// Stats of the last single decode.
func TestBatchMeshSingleDecodeAdapters(t *testing.T) {
	l := lattice.MustNew(7)
	g := l.MatchingGraph(lattice.ZErrors)
	scalar := NewWithKernel(g, Final, KernelBitplane)
	batch := NewBatch(g, Final)
	s := decodepool.NewScratch()
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 100; trial++ {
		syn := make([]bool, g.NumChecks())
		p := []float64{0, 0.05, 0.25}[trial%3]
		for i := range syn {
			syn[i] = rng.Float64() < p
		}
		want, wantSt, err := scalar.DecodeWithStats(syn)
		if err != nil {
			t.Fatal(err)
		}
		got, err := batch.DecodeInto(g, syn, s)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(got.Qubits) != fmt.Sprint(want.Qubits) {
			t.Fatalf("trial %d: DecodeInto %v != scalar %v", trial, got.Qubits, want.Qubits)
		}
		if batch.Stats() != wantSt {
			t.Fatalf("trial %d: stats %+v != scalar %+v", trial, batch.Stats(), wantSt)
		}
		got2, err := batch.Decode(g, syn)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(got2.Qubits) != fmt.Sprint(want.Qubits) {
			t.Fatalf("trial %d: Decode %v != scalar %v", trial, got2.Qubits, want.Qubits)
		}
	}
}

// TestBatchMeshWideFallback checks the side > 64 fallback: BatchMesh at
// a distance whose mesh exceeds one word decodes through a private
// scalar mesh, lane width 1, still conformant.
func TestBatchMeshWideFallback(t *testing.T) {
	if confShort() {
		t.Skip("short mode")
	}
	d := 33 // side 2d+1 = 67 > 64
	if MaxBatchLanes(d) != 1 {
		t.Fatalf("MaxBatchLanes(%d) = %d, want 1", d, MaxBatchLanes(d))
	}
	l := lattice.MustNew(d)
	g := l.MatchingGraph(lattice.ZErrors)
	scalar := NewWithKernel(g, Final, KernelBitplane)
	batch := NewBatch(g, Final)
	if batch.Lanes() != 1 {
		t.Fatalf("fallback lanes = %d, want 1", batch.Lanes())
	}
	s := decodepool.NewScratch()
	rng := rand.New(rand.NewSource(5))
	syns := make([][]bool, 3)
	for i := range syns {
		syns[i] = make([]bool, g.NumChecks())
		for j := range syns[i] {
			syns[i][j] = rng.Float64() < 0.01
		}
	}
	assertBatchMatches(t, g, scalar, batch, s, syns, "wide fallback d=33")
}

// FuzzBatchMesh cross-checks batched against scalar decoding on
// fuzzer-chosen (distance, variant, lane width, syndromes) tuples.
func FuzzBatchMesh(f *testing.F) {
	f.Add(uint8(0), uint8(3), uint8(2), []byte{0x01, 0x80, 0x03})
	f.Add(uint8(1), uint8(0), uint8(0), []byte{0xff, 0x10, 0x00, 0x42})
	f.Add(uint8(2), uint8(2), uint8(1), []byte{0x03, 0x00, 0x81, 0xaa, 0x55})
	f.Add(uint8(3), uint8(1), uint8(7), []byte{0xaa, 0x55, 0xaa, 0x55, 0x0f, 0xf0})
	dists := []int{3, 5, 7, 9}
	variants := []Variant{Baseline, WithReset, WithBoundary, Final}
	graphs := map[int]*lattice.Graph{}
	for _, d := range dists {
		graphs[d] = lattice.MustNew(d).MatchingGraph(lattice.ZErrors)
	}
	f.Fuzz(func(t *testing.T, dSel, vSel, wSel uint8, synBytes []byte) {
		d := dists[int(dSel)%len(dists)]
		g := graphs[d]
		v := variants[vSel%4]
		lanes := 1 + int(wSel)%MaxBatchLanes(d)
		scalar := NewWithKernel(g, v, KernelBitplane)
		batch := NewBatchWithLanes(g, v, lanes)
		s := decodepool.NewScratch()
		// Slice the fuzz bytes into a batch of syndromes, one byte per
		// 8 checks, cycling through the input with a shifting offset so
		// the lanes see distinct patterns.
		nc := g.NumChecks()
		n := 2*lanes + 1
		syns := make([][]bool, n)
		for k := range syns {
			syns[k] = make([]bool, nc)
			if len(synBytes) == 0 {
				continue
			}
			for i := 0; i < nc; i++ {
				b := synBytes[(i/8+k)%len(synBytes)]
				syns[k][i] = b>>(i%8)&1 == 1
			}
		}
		assertBatchMatches(t, g, scalar, batch, s, syns,
			fmt.Sprintf("fuzz d=%d v=%s lanes=%d", d, v.Name(), lanes))
	})
}

// TestBatchMeshZeroAllocs extends the zero-allocation guarantee to the
// batched hot path: a warmed-up BatchMesh decodes full batches (and
// single syndromes through the adapter) with zero heap allocations.
func TestBatchMeshZeroAllocs(t *testing.T) {
	l := lattice.MustNew(9)
	g := l.MatchingGraph(lattice.ZErrors)
	rng := rand.New(rand.NewSource(7))
	batch := NewBatch(g, Final)
	n := 4 * batch.Lanes()
	syns := make([][]bool, n)
	for i := range syns {
		syns[i] = make([]bool, g.NumChecks())
		for j := range syns[i] {
			syns[i][j] = rng.Float64() < 0.08
		}
	}
	s := decodepool.NewScratch()
	for i := 0; i < 4; i++ {
		if _, err := batch.DecodeBatchInto(g, syns, s); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(16, func() {
		if _, err := batch.DecodeBatchInto(g, syns, s); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("batched: %.1f allocs/batch, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(64, func() {
		if _, err := batch.DecodeInto(g, syns[0], s); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("single adapter: %.1f allocs/decode, want 0", allocs)
	}
}
