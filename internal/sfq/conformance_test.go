package sfq

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/decodepool"
	"repro/internal/knob"
	"repro/internal/lattice"
	"repro/internal/pauli"
)

// The conformance suite pins the bit-plane kernel bit-identical to the
// legacy struct-of-bools reference: same correction qubits, same Stats
// (cycles, pairings, resets, retries, fallbacks, unresolved) for every
// variant, error type, and syndrome thrown at them.

func confShort() bool {
	return testing.Short() || knob.Bool("REPRO_MC_SHORT")
}

// kernelPair builds a legacy and a bit-plane mesh over the same graph.
func kernelPair(g *lattice.Graph, v Variant) (*Mesh, *Mesh) {
	return NewWithKernel(g, v, KernelLegacy), NewWithKernel(g, v, KernelBitplane)
}

// assertSameDecode decodes syn on both meshes and fails on any
// divergence in corrections or stats.
func assertSameDecode(t *testing.T, legacy, bit *Mesh, syn []bool, desc string) {
	t.Helper()
	cl, sl, errL := legacy.DecodeWithStats(syn)
	cb, sb, errB := bit.DecodeWithStats(syn)
	if (errL == nil) != (errB == nil) {
		t.Fatalf("%s: error divergence: legacy=%v bitplane=%v", desc, errL, errB)
	}
	if errL != nil {
		return
	}
	if sl != sb {
		t.Fatalf("%s: stats diverge:\nlegacy   %+v\nbitplane %+v", desc, sl, sb)
	}
	if len(cl.Qubits) != len(cb.Qubits) {
		t.Fatalf("%s: corrections diverge:\nlegacy   %v\nbitplane %v", desc, cl.Qubits, cb.Qubits)
	}
	for i := range cl.Qubits {
		if cl.Qubits[i] != cb.Qubits[i] {
			t.Fatalf("%s: corrections diverge:\nlegacy   %v\nbitplane %v", desc, cl.Qubits, cb.Qubits)
		}
	}
}

// errorSyndrome computes the syndrome of a Z- or X-error pattern on the
// given data qubits.
func errorSyndrome(l *lattice.Lattice, g *lattice.Graph, f *pauli.Frame, qubits ...int) []bool {
	f.Clear()
	op := pauli.Z
	if g.ErrorType() == lattice.XErrors {
		op = pauli.X
	}
	for _, q := range qubits {
		f.Apply(q, op)
	}
	return g.Syndrome(f)
}

// TestBitplaneConformanceLowWeight checks every weight-≤2 error pattern:
// all variants and both error types at d ∈ {3, 5}, the final variant
// at d ∈ {7, 9} (full pair enumeration there is ~10k syndromes each).
func TestBitplaneConformanceLowWeight(t *testing.T) {
	for _, d := range []int{3, 5, 7, 9} {
		variants := []Variant{Baseline, WithReset, WithBoundary, Final}
		etypes := []lattice.ErrorType{lattice.ZErrors, lattice.XErrors}
		if d >= 7 {
			variants = []Variant{Final}
			etypes = []lattice.ErrorType{lattice.ZErrors}
		}
		if confShort() && d >= 7 {
			continue
		}
		for _, etype := range etypes {
			l := lattice.MustNew(d)
			g := l.MatchingGraph(etype)
			var qubits []int
			for _, s := range l.DataSites() {
				qubits = append(qubits, l.QubitIndex(s))
			}
			f := pauli.NewFrame(l.NumQubits())
			for _, v := range variants {
				legacy, bit := kernelPair(g, v)
				// Weight 0 and 1.
				assertSameDecode(t, legacy, bit, errorSyndrome(l, g, f),
					fmt.Sprintf("d=%d %v %s weight-0", d, etype, v.Name()))
				for _, q := range qubits {
					assertSameDecode(t, legacy, bit, errorSyndrome(l, g, f, q),
						fmt.Sprintf("d=%d %v %s err{%d}", d, etype, v.Name(), q))
				}
				// Weight 2: all pairs.
				for i := 0; i < len(qubits); i++ {
					for j := i + 1; j < len(qubits); j++ {
						assertSameDecode(t, legacy, bit, errorSyndrome(l, g, f, qubits[i], qubits[j]),
							fmt.Sprintf("d=%d %v %s err{%d,%d}", d, etype, v.Name(), qubits[i], qubits[j]))
					}
				}
			}
		}
	}
}

// TestBitplaneConformanceRandom drives both kernels over seeded random
// raw syndromes (each check hot independently), which reach states —
// odd-parity syndromes, dense stall patterns — that error-derived
// syndromes rarely produce. ≥ 1k syndromes in the full run.
func TestBitplaneConformanceRandom(t *testing.T) {
	trials := 50
	if confShort() {
		trials = 8
	}
	for _, d := range []int{3, 5, 7, 9} {
		for _, etype := range []lattice.ErrorType{lattice.ZErrors, lattice.XErrors} {
			l := lattice.MustNew(d)
			g := l.MatchingGraph(etype)
			for _, p := range []float64{0.02, 0.08, 0.2} {
				rng := rand.New(rand.NewSource(int64(1000*d) + int64(100*p*float64(d)) + int64(etype)))
				for _, v := range []Variant{Baseline, WithReset, WithBoundary, Final} {
					legacy, bit := kernelPair(g, v)
					for trial := 0; trial < trials; trial++ {
						syn := make([]bool, g.NumChecks())
						for i := range syn {
							syn[i] = rng.Float64() < p
						}
						assertSameDecode(t, legacy, bit, syn,
							fmt.Sprintf("d=%d %v %s p=%g trial=%d", d, etype, v.Name(), p, trial))
					}
				}
			}
		}
	}
}

// TestBitplaneConformanceReuse interleaves decodes on shared meshes, so
// any state leaking across Decode calls in either kernel diverges.
func TestBitplaneConformanceReuse(t *testing.T) {
	l := lattice.MustNew(7)
	g := l.MatchingGraph(lattice.ZErrors)
	legacy, bit := kernelPair(g, Final)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		syn := make([]bool, g.NumChecks())
		p := []float64{0, 0.05, 0.3}[trial%3]
		for i := range syn {
			syn[i] = rng.Float64() < p
		}
		assertSameDecode(t, legacy, bit, syn, fmt.Sprintf("reuse trial=%d", trial))
	}
}

// FuzzMesh cross-checks the two kernels on fuzzer-chosen (distance,
// variant, syndrome) triples.
func FuzzMesh(f *testing.F) {
	f.Add(uint8(0), uint8(3), []byte{0x01})
	f.Add(uint8(1), uint8(0), []byte{0xff, 0x10})
	f.Add(uint8(2), uint8(2), []byte{0x03, 0x00, 0x81})
	f.Add(uint8(3), uint8(1), []byte{0xaa, 0x55, 0xaa, 0x55})
	dists := []int{3, 5, 7, 9}
	variants := []Variant{Baseline, WithReset, WithBoundary, Final}
	type pairKey struct {
		d int
		v uint8
	}
	graphs := map[int]*lattice.Graph{}
	for _, d := range dists {
		graphs[d] = lattice.MustNew(d).MatchingGraph(lattice.ZErrors)
	}
	meshes := map[pairKey][2]*Mesh{}
	for _, d := range dists {
		for vi, v := range variants {
			legacy, bit := kernelPair(graphs[d], v)
			meshes[pairKey{d, uint8(vi)}] = [2]*Mesh{legacy, bit}
		}
	}
	f.Fuzz(func(t *testing.T, dSel, vSel uint8, synBytes []byte) {
		d := dists[int(dSel)%len(dists)]
		g := graphs[d]
		pair := meshes[pairKey{d, vSel % 4}]
		syn := make([]bool, g.NumChecks())
		for i := range syn {
			if i/8 < len(synBytes) {
				syn[i] = synBytes[i/8]>>(i%8)&1 == 1
			}
		}
		assertSameDecode(t, pair[0], pair[1], syn, fmt.Sprintf("fuzz d=%d v=%d", d, vSel%4))
	})
}

// TestMeshDecodeIntoZeroAllocs is the PR 2 guarantee extended to the
// mesh decoder: a warmed-up pooled mesh decodes with zero heap
// allocations at d=9, on both kernels.
func TestMeshDecodeIntoZeroAllocs(t *testing.T) {
	l := lattice.MustNew(9)
	g := l.MatchingGraph(lattice.ZErrors)
	rng := rand.New(rand.NewSource(7))
	syndromes := make([][]bool, 32)
	for i := range syndromes {
		syndromes[i] = make([]bool, g.NumChecks())
		for j := range syndromes[i] {
			syndromes[i][j] = rng.Float64() < 0.08
		}
	}
	for _, k := range []Kernel{KernelBitplane, KernelLegacy} {
		mesh := NewWithKernel(g, Final, k)
		s := decodepool.NewScratch()
		for _, syn := range syndromes {
			if _, err := mesh.DecodeInto(g, syn, s); err != nil {
				t.Fatal(err)
			}
		}
		i := 0
		allocs := testing.AllocsPerRun(len(syndromes)*4, func() {
			if _, err := mesh.DecodeInto(g, syndromes[i%len(syndromes)], s); err != nil {
				t.Fatal(err)
			}
			i++
		})
		if allocs != 0 {
			t.Errorf("kernel %s: %.1f allocs/decode, want 0", k, allocs)
		}
	}
}

// TestMeshPoolReuse checks the pool hands back parked meshes instead of
// building new ones, and that recycled meshes decode correctly.
func TestMeshPoolReuse(t *testing.T) {
	pool := NewPool(Final)
	m1 := pool.Get(5, lattice.ZErrors)
	g := pool.Graph(5, lattice.ZErrors)
	syn := make([]bool, g.NumChecks())
	syn[0], syn[1] = true, true
	c1, _, err := m1.DecodeWithStats(syn)
	if err != nil {
		t.Fatal(err)
	}
	pool.Put(m1)
	m2 := pool.Get(5, lattice.ZErrors)
	if m2 != m1 {
		t.Fatalf("pool built a new mesh instead of reusing the parked one")
	}
	if m2.Stats() != (Stats{}) {
		t.Fatalf("recycled mesh carries stale stats: %+v", m2.Stats())
	}
	c2, _, err := m2.DecodeWithStats(syn)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(c1.Qubits) != fmt.Sprint(c2.Qubits) {
		t.Fatalf("recycled mesh decodes differently: %v vs %v", c1.Qubits, c2.Qubits)
	}
	// A mesh of a foreign variant must not enter the pool.
	pool.Put(New(pool.Graph(5, lattice.ZErrors), Baseline))
	if got := pool.Get(5, lattice.ZErrors); got == nil || got.Variant() != Final {
		t.Fatalf("pool handed out a foreign-variant mesh")
	}
}

// TestMeshPoolRelease checks the decoder.Decoder adapter ignores
// non-mesh decoders and recycles meshes.
func TestMeshPoolRelease(t *testing.T) {
	pool := NewPool(Final)
	m := pool.Get(3, lattice.XErrors)
	pool.Release(m)
	if got := pool.Get(3, lattice.XErrors); got != m {
		t.Fatalf("Release did not recycle the mesh")
	}
	pool.Release(nil) // non-mesh decoder: must not panic
}

// TestDecodeIntoMatchesDecode checks the pooled path returns the same
// correction as the allocating path, and that a structurally identical
// graph (distinct pointer) is accepted while a foreign one is rejected.
func TestDecodeIntoMatchesDecode(t *testing.T) {
	l := lattice.MustNew(5)
	g := l.MatchingGraph(lattice.ZErrors)
	g2 := lattice.MustNew(5).MatchingGraph(lattice.ZErrors) // same structure, different pointer
	wrong := l.MatchingGraph(lattice.XErrors)
	mesh := New(g, Final)
	s := decodepool.NewScratch()
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		syn := make([]bool, g.NumChecks())
		for i := range syn {
			syn[i] = rng.Float64() < 0.1
		}
		want, err := mesh.Decode(g, syn)
		if err != nil {
			t.Fatal(err)
		}
		got, err := mesh.DecodeInto(g2, syn, s)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(want.Qubits) != fmt.Sprint(got.Qubits) {
			t.Fatalf("trial %d: DecodeInto %v != Decode %v", trial, got.Qubits, want.Qubits)
		}
	}
	if _, err := mesh.DecodeInto(wrong, make([]bool, wrong.NumChecks()), s); err == nil {
		t.Fatalf("DecodeInto accepted a graph of the wrong error type")
	}
}
