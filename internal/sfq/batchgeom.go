package sfq

import (
	"sync"

	"repro/internal/lattice"
)

// batchGeom is the d-major lane layout of the SWAR batch kernel: B
// independent mesh instances packed side by side in the same []uint64
// planes, lane l occupying bits [l·m, l·m+m) of every row word. A
// batched plane is one word per row (the layout exists only for meshes
// with side ≤ 64), so a single shift-and-mask advances all B lanes at
// once while the lane masks keep wavefronts from bleeding across
// instances. Cell i of lane l lives at word i/m, bit l·m + i%m.
//
// Like meshGeom, a batchGeom depends only on (distance, error type,
// lanes) and is computed once and shared read-only.
type batchGeom struct {
	geo   *meshGeom
	lanes int

	laneBits []uint64 // per-lane mask of every row word: laneLow << (l·m)
	allLanes uint64   // OR of laneBits
	laneLow  uint64   // (1<<m)-1, the lane-0 mask

	// Lane-safe horizontal shift masks. An East shift (<<1) must not
	// carry a bit into the next lane's column 0, so eastMask clears the
	// lowest bit of every lane; West (>>1) symmetrically clears the
	// highest.
	eastMask uint64
	westMask uint64

	// Lane-replicated copies of the scalar plane masks (one word per
	// row). classMask replicates the scalar cell index residue (r·m+c)%4
	// into every lane, so the rotated grant priority matches the scalar
	// kernel per lane.
	interior  []uint64
	boundary  []uint64
	classMask [4][]uint64
}

// MaxBatchLanes returns how many independent distance-d meshes fit side
// by side in one 64-bit word: ⌊64/(2d+1)⌋, floored at 1 (meshes wider
// than a word fall back to scalar decoding inside BatchMesh).
func MaxBatchLanes(d int) int {
	side := 2*d + 1
	if side > 64 {
		return 1
	}
	return 64 / side
}

type batchGeomKey struct {
	d     int
	e     lattice.ErrorType
	lanes int
}

var (
	batchGeomMu    sync.RWMutex
	batchGeomCache = map[batchGeomKey]*batchGeom{}
)

// batchGeomFor returns the memoized lane geometry of g at the given
// width, building it on first use. Racing builders construct private
// tables; the first one stored wins.
func batchGeomFor(g *lattice.Graph, lanes int) *batchGeom {
	k := batchGeomKey{d: g.Lattice().Distance(), e: g.ErrorType(), lanes: lanes}
	batchGeomMu.RLock()
	bg := batchGeomCache[k]
	batchGeomMu.RUnlock()
	if bg != nil {
		return bg
	}
	built := buildBatchGeom(g, lanes)
	batchGeomMu.Lock()
	if exist, ok := batchGeomCache[k]; ok {
		built = exist
	} else {
		batchGeomCache[k] = built
	}
	batchGeomMu.Unlock()
	return built
}

func buildBatchGeom(g *lattice.Graph, lanes int) *batchGeom {
	geo := geomFor(g)
	bg := &batchGeom{geo: geo, lanes: lanes}
	m := geo.m
	bg.laneLow = (uint64(1) << uint(m)) - 1
	bg.laneBits = make([]uint64, lanes)
	var lowBits, highBits uint64
	for l := 0; l < lanes; l++ {
		shift := uint(l * m)
		bg.laneBits[l] = bg.laneLow << shift
		bg.allLanes |= bg.laneBits[l]
		lowBits |= uint64(1) << shift
		highBits |= uint64(1) << (shift + uint(m) - 1)
	}
	bg.eastMask = bg.allLanes &^ lowBits
	bg.westMask = bg.allLanes &^ highBits

	bg.interior = make([]uint64, geo.rows)
	bg.boundary = make([]uint64, geo.rows)
	for k := range bg.classMask {
		bg.classMask[k] = make([]uint64, geo.rows)
	}
	for i, kd := range geo.kind {
		r, c := i/m, i%m
		var bit uint64
		for l := 0; l < lanes; l++ {
			bit |= uint64(1) << uint(l*m+c)
		}
		switch kd {
		case cellInterior:
			bg.interior[r] |= bit
		case cellBoundary:
			bg.boundary[r] |= bit
		}
		bg.classMask[i%4][r] |= bit
	}
	return bg
}

// laneBit returns the plane word index and bit of cell i in lane l.
func (bg *batchGeom) laneBit(l, i int) (word int, bit uint64) {
	m := bg.geo.m
	return i / m, uint64(1) << uint(l*m+i%m)
}

// shiftInto writes src advanced one hop in direction d into dst,
// per lane: vertical shifts are whole-row word moves (lanes travel
// together), horizontal shifts mask out the bit that would cross a lane
// seam. dst must not alias src.
func (bg *batchGeom) shiftInto(dst, src []uint64, d Dir) {
	switch d {
	case North: // row r receives row r+1
		copy(dst, src[1:])
		dst[len(dst)-1] = 0
	case South: // row r receives row r-1
		copy(dst[1:], src[:len(src)-1])
		dst[0] = 0
	case East: // column c receives column c-1, per lane
		for r, v := range src {
			dst[r] = v << 1 & bg.eastMask
		}
	case West: // column c receives column c+1, per lane
		for r, v := range src {
			dst[r] = v >> 1 & bg.westMask
		}
	}
}
