package sfq

import (
	"math/bits"
	"sync"

	"repro/internal/knob"
	"repro/internal/lattice"
)

// batchGeom is the d-major lane layout of the SWAR batch kernel: B
// independent mesh instances packed side by side in the same []uint64
// planes. A batched plane is W machine words per row (W ∈ {1, 2, 4},
// the layout exists only for meshes with side ≤ 64): word k = r·W + c
// holds column c of row r, and each word column carries
// perWord = ⌊64/(2d+1)⌋ lanes. Lane l lives in column l/perWord at
// slot l%perWord, so cell i of lane l sits at word (i/m)·W + l/perWord,
// bit (l%perWord)·m + i%m. A single shift-and-mask pass over the rows
// therefore advances all W·perWord lanes at once while the lane masks
// keep wavefronts from bleeding across instances.
//
// Like meshGeom, a batchGeom depends only on (distance, error type,
// lanes) and is computed once and shared read-only.
type batchGeom struct {
	geo     *meshGeom
	lanes   int
	words   int // W: words per plane row, power of two
	wmask   int // words − 1; word k belongs to column k & wmask
	perWord int // lanes per fully occupied word column
	n       int // plane length: rows · words

	laneBits []uint64 // per-lane in-word mask: laneLow << ((l%perWord)·m)
	laneCol  []int    // word column of lane l: l / perWord
	colEnd   []int    // one past the last lane of column c
	allLanes uint64   // full-column occupancy: OR of the perWord slot masks
	laneLow  uint64   // (1<<m)−1, the slot-0 mask

	// Lane-safe horizontal shift masks, shared by every column. An East
	// shift (<<1) must not carry a bit into the next slot's column 0, so
	// eastMask clears the lowest bit of every slot; West (>>1)
	// symmetrically clears the highest. The masks are built for a fully
	// occupied column; in a partially filled last column they admit
	// stray bits into unoccupied slots, which is harmless — every
	// consumer masks with interior/boundary/hot planes, all zero there,
	// so strays never reach persistent state or the any accumulators.
	eastMask uint64
	westMask uint64

	// Lane-replicated copies of the scalar plane masks (length n).
	// classMask replicates the scalar cell index residue (r·m+c)%4 into
	// every lane, so the rotated grant priority matches the scalar
	// kernel per lane. Unoccupied slots of a partial last column are
	// zero in all of them.
	interior  []uint64
	boundary  []uint64
	classMask [4][]uint64
}

// BatchWords is the plane width of the wide SWAR kernel in 64-bit
// words: how many word columns NewBatch packs side by side. It is the
// REPRO_SFQ_WIDTH knob ("1", "2", "4"; "auto" or unset picks the widest
// layout the host word size profitably supports) resolved once at
// process start.
var BatchWords = batchWordsFromEnv()

func batchWordsFromEnv() int {
	switch v := knob.String("REPRO_SFQ_WIDTH"); v {
	case "1":
		return 1
	case "2":
		return 2
	case "4":
		return 4
	}
	return autoBatchWords()
}

// autoBatchWords picks the plane width from the CPU: a 64-bit machine
// word makes the four-word (256-bit) layout profitable — four
// independent single-word dependency chains per row keep a superscalar
// core's ALU ports busy — while a 32-bit host gets the two-word layout
// to bound the per-step footprint.
func autoBatchWords() int {
	if bits.UintSize >= 64 {
		return 4
	}
	return 2
}

// MaxBatchLanesAt returns how many independent distance-d meshes fit in
// a plane of the given word width: words·⌊64/(2d+1)⌋, floored at 1
// (meshes wider than a word fall back to scalar decoding inside
// BatchMesh).
func MaxBatchLanesAt(d, words int) int {
	side := 2*d + 1
	if side > 64 {
		return 1
	}
	return words * (64 / side)
}

// MaxBatchLanes returns the lane capacity of NewBatch meshes: the
// per-word capacity ⌊64/(2d+1)⌋ times the process-wide BatchWords plane
// width.
func MaxBatchLanes(d int) int { return MaxBatchLanesAt(d, BatchWords) }

// batchWordsFor returns the narrowest power-of-two column count that
// holds the requested lanes, capped at 4.
func batchWordsFor(d, lanes int) int {
	side := 2*d + 1
	if side > 64 {
		return 1
	}
	perWord := 64 / side
	switch {
	case lanes <= perWord:
		return 1
	case lanes <= 2*perWord:
		return 2
	default:
		return 4
	}
}

type batchGeomKey struct {
	d     int
	e     lattice.ErrorType
	lanes int
}

var (
	batchGeomMu    sync.RWMutex
	batchGeomCache = map[batchGeomKey]*batchGeom{}
)

// batchGeomFor returns the memoized lane geometry of g at the given
// width, building it on first use. Racing builders construct private
// tables; the first one stored wins. The word count is derived from the
// lane count (narrowest power-of-two layout that fits), so the key
// stays (d, e, lanes).
func batchGeomFor(g *lattice.Graph, lanes int) *batchGeom {
	k := batchGeomKey{d: g.Lattice().Distance(), e: g.ErrorType(), lanes: lanes}
	batchGeomMu.RLock()
	bg := batchGeomCache[k]
	batchGeomMu.RUnlock()
	if bg != nil {
		return bg
	}
	built := buildBatchGeom(g, lanes)
	batchGeomMu.Lock()
	if exist, ok := batchGeomCache[k]; ok {
		built = exist
	} else {
		batchGeomCache[k] = built
	}
	batchGeomMu.Unlock()
	return built
}

func buildBatchGeom(g *lattice.Graph, lanes int) *batchGeom {
	geo := geomFor(g)
	m := geo.m
	words := batchWordsFor(geo.d, lanes)
	perWord := 64 / m
	bg := &batchGeom{
		geo:     geo,
		lanes:   lanes,
		words:   words,
		wmask:   words - 1,
		perWord: perWord,
		n:       geo.rows * words,
	}
	bg.laneLow = (uint64(1) << uint(m)) - 1
	bg.laneBits = make([]uint64, lanes)
	bg.laneCol = make([]int, lanes)
	bg.colEnd = make([]int, words)
	var lowBits, highBits uint64
	for s := 0; s < perWord; s++ {
		shift := uint(s * m)
		bg.allLanes |= bg.laneLow << shift
		lowBits |= uint64(1) << shift
		highBits |= uint64(1) << (shift + uint(m) - 1)
	}
	bg.eastMask = bg.allLanes &^ lowBits
	bg.westMask = bg.allLanes &^ highBits
	for l := 0; l < lanes; l++ {
		bg.laneBits[l] = bg.laneLow << uint(l%perWord*m)
		bg.laneCol[l] = l / perWord
	}
	for c := 0; c < words; c++ {
		end := (c + 1) * perWord
		if end > lanes {
			end = lanes
		}
		bg.colEnd[c] = end
	}

	bg.interior = make([]uint64, bg.n)
	bg.boundary = make([]uint64, bg.n)
	for k := range bg.classMask {
		bg.classMask[k] = make([]uint64, bg.n)
	}
	for i, kd := range geo.kind {
		r, c := i/m, i%m
		for l := 0; l < lanes; l++ {
			w := r*words + bg.laneCol[l]
			bit := uint64(1) << uint(l%perWord*m+c)
			switch kd {
			case cellInterior:
				bg.interior[w] |= bit
			case cellBoundary:
				bg.boundary[w] |= bit
			}
			bg.classMask[i%4][w] |= bit
		}
	}
	return bg
}

// laneBit returns the plane word index and bit of cell i in lane l.
func (bg *batchGeom) laneBit(l, i int) (word int, bit uint64) {
	m := bg.geo.m
	return i/m*bg.words + bg.laneCol[l], uint64(1) << uint(l%bg.perWord*m+i%m)
}

// shiftInto writes src advanced one hop in direction d into dst,
// per lane: vertical shifts are whole-row moves of W-word row groups
// (lanes travel together), horizontal shifts mask out the bit that
// would cross a lane seam. dst must not alias src.
func (bg *batchGeom) shiftInto(dst, src []uint64, d Dir) {
	w := bg.words
	switch d {
	case North: // row r receives row r+1
		copy(dst, src[w:])
		for k := len(dst) - w; k < len(dst); k++ {
			dst[k] = 0
		}
	case South: // row r receives row r-1
		copy(dst[w:], src[:len(src)-w])
		for k := 0; k < w; k++ {
			dst[k] = 0
		}
	case East: // column c receives column c-1, per lane
		em := bg.eastMask
		if w == 4 {
			shiftEast4(dst, src, em)
			return
		}
		for r, v := range src {
			dst[r] = v << 1 & em
		}
	case West: // column c receives column c+1, per lane
		wm := bg.westMask
		if w == 4 {
			shiftWest4(dst, src, wm)
			return
		}
		for r, v := range src {
			dst[r] = v >> 1 & wm
		}
	}
}

// shiftEast4 is the unrolled four-word East shift: four independent
// single-word chains per row group keep the ALU ports saturated.
func shiftEast4(dst, src []uint64, em uint64) {
	n := len(src) &^ 3
	dst = dst[:n]
	src = src[:n]
	for k := 0; k < n; k += 4 {
		d4 := dst[k : k+4 : k+4]
		s4 := src[k : k+4 : k+4]
		d4[0] = s4[0] << 1 & em
		d4[1] = s4[1] << 1 & em
		d4[2] = s4[2] << 1 & em
		d4[3] = s4[3] << 1 & em
	}
}

func shiftWest4(dst, src []uint64, wm uint64) {
	n := len(src) &^ 3
	dst = dst[:n]
	src = src[:n]
	for k := 0; k < n; k += 4 {
		d4 := dst[k : k+4 : k+4]
		s4 := src[k : k+4 : k+4]
		d4[0] = s4[0] >> 1 & wm
		d4[1] = s4[1] >> 1 & wm
		d4[2] = s4[2] >> 1 & wm
		d4[3] = s4[3] >> 1 & wm
	}
}
