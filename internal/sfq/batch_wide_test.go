package sfq

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/decodepool"
	"repro/internal/lattice"
)

// The width-conformance suite pins the W-word plane layouts against the
// scalar bit-plane kernel: for every supported width (1, 2 and 4 words)
// the batch kernel must produce bit-identical corrections and per-lane
// Stats. W=1 steps through the multi-pass reference path and W>1
// through the fused event-driven path, so width conformance is also
// fused-vs-reference conformance.

// TestBatchMeshWidthConformance crosses distances, variants and error
// types with every explicit plane width on seeded random syndromes.
func TestBatchMeshWidthConformance(t *testing.T) {
	dists := []int{3, 5, 7}
	if !confShort() {
		dists = append(dists, 9, 13)
	}
	for _, d := range dists {
		for _, etype := range []lattice.ErrorType{lattice.ZErrors, lattice.XErrors} {
			l := lattice.MustNew(d)
			g := l.MatchingGraph(etype)
			variants := []Variant{Baseline, WithReset, WithBoundary, Final}
			if d > 5 {
				variants = []Variant{Final}
			}
			for _, v := range variants {
				scalar := NewWithKernel(g, v, KernelBitplane)
				s := decodepool.NewScratch()
				for _, words := range []int{1, 2, 4} {
					batch := NewBatchWithWidth(g, v, words)
					if got := batch.Words(); got != words {
						t.Fatalf("d=%d W=%d: Words() = %d", d, words, got)
					}
					if want := MaxBatchLanesAt(d, words); batch.Lanes() != want {
						t.Fatalf("d=%d W=%d: lanes = %d, want %d", d, words, batch.Lanes(), want)
					}
					rng := rand.New(rand.NewSource(int64(7700*d+words) + int64(etype)))
					for _, p := range []float64{0.02, 0.1, 0.25} {
						n := 2*batch.Lanes() + 1 // uneven tail exercises partial refill
						syns := make([][]bool, n)
						for i := range syns {
							syns[i] = make([]bool, g.NumChecks())
							for j := range syns[i] {
								syns[i][j] = rng.Float64() < p
							}
						}
						assertBatchMatches(t, g, scalar, batch, s, syns,
							fmt.Sprintf("d=%d %v %s W=%d p=%g", d, etype, v.Name(), words, p))
					}
				}
			}
		}
	}
}

// TestBatchMeshWidthsAgree decodes one syndrome set at every width and
// requires identical corrections lane for lane — the cross-width
// counterpart of scalar conformance, pinning that REPRO_SFQ_WIDTH can
// never change results.
func TestBatchMeshWidthsAgree(t *testing.T) {
	for _, d := range []int{5, 9} {
		l := lattice.MustNew(d)
		g := l.MatchingGraph(lattice.ZErrors)
		rng := rand.New(rand.NewSource(int64(31 * d)))
		n := 3*MaxBatchLanesAt(d, 4) + 2
		syns := make([][]bool, n)
		for i := range syns {
			syns[i] = make([]bool, g.NumChecks())
			for j := range syns[i] {
				syns[i][j] = rng.Float64() < 0.08
			}
		}
		s := decodepool.NewScratch()
		var ref []string
		var refStats []Stats
		for _, words := range []int{1, 2, 4} {
			batch := NewBatchWithWidth(g, Final, words)
			corr, err := batch.DecodeBatchInto(g, syns, s)
			if err != nil {
				t.Fatalf("d=%d W=%d: %v", d, words, err)
			}
			if words == 1 {
				ref = make([]string, n)
				refStats = make([]Stats, n)
				for i := range corr {
					ref[i] = fmt.Sprint(corr[i].Qubits)
					refStats[i] = batch.LaneStats(i)
				}
				continue
			}
			for i := range corr {
				if got := fmt.Sprint(corr[i].Qubits); got != ref[i] {
					t.Fatalf("d=%d W=%d syndrome %d: corrections diverge from W=1:\nW=1 %s\nW=%d %s",
						d, words, i, ref[i], words, got)
				}
				if st := batch.LaneStats(i); st != refStats[i] {
					t.Fatalf("d=%d W=%d syndrome %d: stats diverge from W=1:\nW=1 %+v\nW=%d %+v",
						d, words, i, refStats[i], words, st)
				}
			}
		}
	}
}

// FuzzWideBatch cross-checks the W-word layouts against the scalar
// kernel on fuzzer-chosen (distance, variant, width, syndromes) tuples.
func FuzzWideBatch(f *testing.F) {
	f.Add(uint8(0), uint8(3), uint8(1), []byte{0x01, 0x80, 0x03})
	f.Add(uint8(1), uint8(3), uint8(2), []byte{0xff, 0x10, 0x00, 0x42})
	f.Add(uint8(2), uint8(0), uint8(4), []byte{0x03, 0x00, 0x81, 0xaa, 0x55})
	f.Add(uint8(3), uint8(2), uint8(2), []byte{0xaa, 0x55, 0xaa, 0x55, 0x0f, 0xf0})
	dists := []int{3, 5, 7, 9}
	variants := []Variant{Baseline, WithReset, WithBoundary, Final}
	graphs := map[int]*lattice.Graph{}
	for _, d := range dists {
		graphs[d] = lattice.MustNew(d).MatchingGraph(lattice.ZErrors)
	}
	widths := []int{1, 2, 4}
	f.Fuzz(func(t *testing.T, dSel, vSel, wSel uint8, synBytes []byte) {
		d := dists[int(dSel)%len(dists)]
		g := graphs[d]
		v := variants[vSel%4]
		words := widths[int(wSel)%len(widths)]
		scalar := NewWithKernel(g, v, KernelBitplane)
		batch := NewBatchWithWidth(g, v, words)
		s := decodepool.NewScratch()
		nc := g.NumChecks()
		n := batch.Lanes() + 3
		syns := make([][]bool, n)
		for k := range syns {
			syns[k] = make([]bool, nc)
			if len(synBytes) == 0 {
				continue
			}
			for i := 0; i < nc; i++ {
				b := synBytes[(i/8+k)%len(synBytes)]
				syns[k][i] = b>>(i%8)&1 == 1
			}
		}
		assertBatchMatches(t, g, scalar, batch, s, syns,
			fmt.Sprintf("fuzz d=%d v=%s W=%d", d, v.Name(), words))
	})
}

// TestBatchMeshWidthZeroAllocs extends the zero-allocation guarantee to
// every plane width: warmed-up wide meshes decode full batches without
// touching the heap.
func TestBatchMeshWidthZeroAllocs(t *testing.T) {
	l := lattice.MustNew(9)
	g := l.MatchingGraph(lattice.ZErrors)
	rng := rand.New(rand.NewSource(7))
	for _, words := range []int{1, 2, 4} {
		batch := NewBatchWithWidth(g, Final, words)
		n := 2 * batch.Lanes()
		syns := make([][]bool, n)
		for i := range syns {
			syns[i] = make([]bool, g.NumChecks())
			for j := range syns[i] {
				syns[i][j] = rng.Float64() < 0.08
			}
		}
		s := decodepool.NewScratch()
		for i := 0; i < 4; i++ {
			if _, err := batch.DecodeBatchInto(g, syns, s); err != nil {
				t.Fatal(err)
			}
		}
		allocs := testing.AllocsPerRun(16, func() {
			if _, err := batch.DecodeBatchInto(g, syns, s); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("W=%d: %.1f allocs/batch, want 0", words, allocs)
		}
	}
}
