package sfq

import (
	"sync"

	"repro/internal/decoder"
	"repro/internal/lattice"
	"repro/internal/obs"
)

// Pool recycles decoder meshes across Monte-Carlo shards, mirroring
// decodepool.Scratch: a sweep that runs thousands of shards per (d, p)
// point draws meshes from the pool instead of rebuilding lattice,
// matching graph, and mesh per shard. A Pool is safe for concurrent
// use; the meshes it hands out are not (one mesh per shard).
//
// Delivery is exactly-once and observable: every mesh tracks which pool
// handed it out and whether it is currently parked, so a double Put
// (which would alias one mesh into two shards), a Put of another pool's
// mesh, or a mesh that never comes back all show up in Stats and in the
// process-wide sfq_pool_* metrics instead of silently corrupting the
// free list.
type Pool struct {
	variant Variant
	kernel  Kernel

	mu        sync.Mutex
	graphs    map[poolKey]*lattice.Graph
	free      map[poolKey][]*Mesh
	freeBatch map[batchPoolKey][]*BatchMesh
	stats     PoolStats
}

// PoolStats is a pool's cumulative accounting. Hits + Misses == Gets,
// and when every mesh has been returned exactly once,
// Outstanding == 0 and Puts == Gets - adopted strays.
type PoolStats struct {
	Gets        int64 // meshes handed out
	Hits        int64 // Gets served from the free list
	Misses      int64 // Gets that built a new mesh
	Puts        int64 // meshes accepted back
	Foreign     int64 // rejected Puts: wrong variant/kernel or another pool's mesh
	DoublePuts  int64 // rejected Puts: mesh already parked in this pool
	Outstanding int64 // handed out and not yet returned
}

type poolKey struct {
	d int
	e lattice.ErrorType
}

// batchPoolKey keys the batch free lists by (d, e, lane width): batch
// meshes of different widths have different plane layouts and must
// never mix.
type batchPoolKey struct {
	d     int
	e     lattice.ErrorType
	lanes int
}

// Process-wide pool telemetry, aggregated across all pools.
var (
	poolGets        = obs.Default().Counter("sfq_pool_gets_total")
	poolHits        = obs.Default().Counter("sfq_pool_hits_total")
	poolMisses      = obs.Default().Counter("sfq_pool_misses_total")
	poolPuts        = obs.Default().Counter("sfq_pool_puts_total")
	poolForeign     = obs.Default().Counter("sfq_pool_foreign_total")
	poolDoublePuts  = obs.Default().Counter("sfq_pool_double_puts_total")
	poolOutstanding = obs.Default().Gauge("sfq_pool_outstanding")
)

// NewPool returns a pool of meshes with the given design variant and
// the DefaultKernel.
func NewPool(v Variant) *Pool { return NewPoolWithKernel(v, DefaultKernel) }

// NewPoolWithKernel returns a pool with an explicit stepping kernel.
func NewPoolWithKernel(v Variant, k Kernel) *Pool {
	return &Pool{
		variant:   v,
		kernel:    k,
		graphs:    map[poolKey]*lattice.Graph{},
		free:      map[poolKey][]*Mesh{},
		freeBatch: map[batchPoolKey][]*BatchMesh{},
	}
}

// Stats returns a snapshot of the pool's accounting.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Graph returns the pool's shared matching graph for (d, e), building
// it on first use. All meshes the pool hands out for (d, e) are bound
// to this graph.
func (p *Pool) Graph(d int, e lattice.ErrorType) *lattice.Graph {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.graphLocked(poolKey{d, e})
}

func (p *Pool) graphLocked(k poolKey) *lattice.Graph {
	g := p.graphs[k]
	if g == nil {
		g = lattice.MustNew(k.d).MatchingGraph(k.e)
		p.graphs[k] = g
	}
	return g
}

// Get returns an idle mesh for (d, e), reusing a previously Put mesh
// when one is available.
func (p *Pool) Get(d int, e lattice.ErrorType) *Mesh {
	k := poolKey{d, e}
	p.mu.Lock()
	p.stats.Gets++
	p.stats.Outstanding++
	poolGets.Inc()
	poolOutstanding.Add(1)
	if list := p.free[k]; len(list) > 0 {
		m := list[len(list)-1]
		list[len(list)-1] = nil
		p.free[k] = list[:len(list)-1]
		m.pooled = false
		p.stats.Hits++
		p.mu.Unlock()
		poolHits.Inc()
		return m
	}
	p.stats.Misses++
	g := p.graphLocked(k)
	p.mu.Unlock()
	poolMisses.Inc()
	m := NewWithKernel(g, p.variant, p.kernel)
	m.owner = p
	return m
}

// Put resets the mesh, flushes its pending telemetry, and parks it on
// the free list. Rejected — counted, never mixed in — are meshes whose
// variant or kernel differ from the pool's, meshes owned by another
// pool, and meshes already parked here (a double Put would alias one
// mesh into two future Gets). A compatible mesh built outside any pool
// is adopted without touching the outstanding count.
func (p *Pool) Put(m *Mesh) {
	if m == nil || m.variant != p.variant || m.kernel != p.kernel {
		p.mu.Lock()
		p.stats.Foreign++
		p.mu.Unlock()
		poolForeign.Inc()
		return
	}
	m.Reset()
	m.SetTracer(nil)
	m.FlushObs()
	k := poolKey{d: m.geo.d, e: m.geo.e}
	p.mu.Lock()
	switch {
	case m.pooled && m.owner == p:
		p.stats.DoublePuts++
		p.mu.Unlock()
		poolDoublePuts.Inc()
		return
	case m.owner != nil && m.owner != p:
		p.stats.Foreign++
		p.mu.Unlock()
		poolForeign.Inc()
		return
	}
	wasOurs := m.owner == p
	m.owner = p
	m.pooled = true
	p.free[k] = append(p.free[k], m)
	p.stats.Puts++
	if wasOurs {
		p.stats.Outstanding--
	}
	p.mu.Unlock()
	poolPuts.Inc()
	if wasOurs {
		poolOutstanding.Add(-1)
	}
}

// GetBatch returns an idle SWAR batch mesh for (d, e) at the maximum
// lane width for d, reusing a previously PutBatch mesh when one is
// available. Batch meshes always run the bit-plane stepping regardless
// of the pool's scalar kernel, and share the pool's accounting.
func (p *Pool) GetBatch(d int, e lattice.ErrorType) *BatchMesh {
	k := batchPoolKey{d: d, e: e, lanes: MaxBatchLanes(d)}
	p.mu.Lock()
	p.stats.Gets++
	p.stats.Outstanding++
	poolGets.Inc()
	poolOutstanding.Add(1)
	if list := p.freeBatch[k]; len(list) > 0 {
		b := list[len(list)-1]
		list[len(list)-1] = nil
		p.freeBatch[k] = list[:len(list)-1]
		b.pooled = false
		p.stats.Hits++
		p.mu.Unlock()
		poolHits.Inc()
		return b
	}
	p.stats.Misses++
	g := p.graphLocked(poolKey{d: d, e: e})
	p.mu.Unlock()
	poolMisses.Inc()
	b := NewBatchWithLanes(g, p.variant, k.lanes)
	b.owner = p
	return b
}

// PutBatch resets the batch mesh, flushes its pending telemetry (the
// histogram holds one cycle sample per lane decode), and parks it,
// under the same exactly-once rules as Put.
func (p *Pool) PutBatch(b *BatchMesh) {
	if b == nil || b.variant != p.variant {
		p.mu.Lock()
		p.stats.Foreign++
		p.mu.Unlock()
		poolForeign.Inc()
		return
	}
	b.Reset()
	b.FlushObs()
	k := batchPoolKey{d: b.geo.d, e: b.geo.e, lanes: b.lanes}
	p.mu.Lock()
	switch {
	case b.pooled && b.owner == p:
		p.stats.DoublePuts++
		p.mu.Unlock()
		poolDoublePuts.Inc()
		return
	case b.owner != nil && b.owner != p:
		p.stats.Foreign++
		p.mu.Unlock()
		poolForeign.Inc()
		return
	}
	wasOurs := b.owner == p
	b.owner = p
	b.pooled = true
	p.freeBatch[k] = append(p.freeBatch[k], b)
	p.stats.Puts++
	if wasOurs {
		p.stats.Outstanding--
	}
	p.mu.Unlock()
	poolPuts.Inc()
	if wasOurs {
		poolOutstanding.Add(-1)
	}
}

// Release adapts Put to the func(decoder.Decoder) release hooks of the
// sweep layers: mesh decoders (scalar or batched) return to the pool,
// anything else is ignored.
func (p *Pool) Release(dec decoder.Decoder) {
	switch m := dec.(type) {
	case *Mesh:
		p.Put(m)
	case *BatchMesh:
		p.PutBatch(m)
	}
}
