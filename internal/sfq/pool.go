package sfq

import (
	"sync"

	"repro/internal/decoder"
	"repro/internal/lattice"
)

// Pool recycles decoder meshes across Monte-Carlo shards, mirroring
// decodepool.Scratch: a sweep that runs thousands of shards per (d, p)
// point draws meshes from the pool instead of rebuilding lattice,
// matching graph, and mesh per shard. A Pool is safe for concurrent
// use; the meshes it hands out are not (one mesh per shard).
type Pool struct {
	variant Variant
	kernel  Kernel

	mu     sync.Mutex
	graphs map[poolKey]*lattice.Graph
	free   map[poolKey][]*Mesh
}

type poolKey struct {
	d int
	e lattice.ErrorType
}

// NewPool returns a pool of meshes with the given design variant and
// the DefaultKernel.
func NewPool(v Variant) *Pool { return NewPoolWithKernel(v, DefaultKernel) }

// NewPoolWithKernel returns a pool with an explicit stepping kernel.
func NewPoolWithKernel(v Variant, k Kernel) *Pool {
	return &Pool{
		variant: v,
		kernel:  k,
		graphs:  map[poolKey]*lattice.Graph{},
		free:    map[poolKey][]*Mesh{},
	}
}

// Graph returns the pool's shared matching graph for (d, e), building
// it on first use. All meshes the pool hands out for (d, e) are bound
// to this graph.
func (p *Pool) Graph(d int, e lattice.ErrorType) *lattice.Graph {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.graphLocked(poolKey{d, e})
}

func (p *Pool) graphLocked(k poolKey) *lattice.Graph {
	g := p.graphs[k]
	if g == nil {
		g = lattice.MustNew(k.d).MatchingGraph(k.e)
		p.graphs[k] = g
	}
	return g
}

// Get returns an idle mesh for (d, e), reusing a previously Put mesh
// when one is available.
func (p *Pool) Get(d int, e lattice.ErrorType) *Mesh {
	k := poolKey{d, e}
	p.mu.Lock()
	if list := p.free[k]; len(list) > 0 {
		m := list[len(list)-1]
		p.free[k] = list[:len(list)-1]
		p.mu.Unlock()
		return m
	}
	g := p.graphLocked(k)
	p.mu.Unlock()
	return NewWithKernel(g, p.variant, p.kernel)
}

// Put resets the mesh and parks it on the free list. Meshes whose
// variant or kernel differ from the pool's are dropped rather than
// mixed in.
func (p *Pool) Put(m *Mesh) {
	if m == nil || m.variant != p.variant || m.kernel != p.kernel {
		return
	}
	m.Reset()
	m.SetTracer(nil)
	k := poolKey{d: m.geo.d, e: m.geo.e}
	p.mu.Lock()
	p.free[k] = append(p.free[k], m)
	p.mu.Unlock()
}

// Release adapts Put to the func(decoder.Decoder) release hooks of the
// sweep layers: mesh decoders return to the pool, anything else is
// ignored.
func (p *Pool) Release(dec decoder.Decoder) {
	if m, ok := dec.(*Mesh); ok {
		p.Put(m)
	}
}
