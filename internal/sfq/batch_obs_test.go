package sfq

import (
	"testing"

	"repro/internal/decodepool"
	"repro/internal/lattice"
	"repro/internal/obs"
)

// Every lane decode through the batch kernel — including lanes whose
// syndrome is empty — lands exactly one observation in the shared per-d
// cycle histogram, and returning the mesh to its pool flushes the local
// recorder, so the pool boundary is the exactly-once point. A rejected
// double Put must not replay samples.
func TestBatchMeshCycleTelemetry(t *testing.T) {
	p := NewPool(Final)
	g := p.Graph(3, lattice.XErrors)
	hist := obs.Default().Histogram("sfq_decode_cycles_d3")
	before := hist.Count()

	b := p.GetBatch(3, lattice.XErrors)
	s := decodepool.NewScratch()
	m := g.NumChecks()
	decodes := 0
	for w := 0; w < 3; w++ {
		syns := make([][]bool, 2*b.Lanes()+1)
		for i := range syns {
			syn := make([]bool, m)
			if i%3 != 2 { // leave every third lane empty
				syn[0] = true
				syn[1+i%(m-1)] = true
			}
			syns[i] = syn
		}
		if _, err := b.DecodeBatchInto(g, syns, s); err != nil {
			t.Fatal(err)
		}
		decodes += len(syns)
	}
	p.PutBatch(b)
	if got := hist.Count() - before; got != uint64(decodes) {
		t.Fatalf("histogram grew by %d after PutBatch, want %d (one per lane decode)", got, decodes)
	}

	// The mesh is parked now; a double Put is rejected and must not
	// flush anything new.
	p.PutBatch(b)
	if got := hist.Count() - before; got != uint64(decodes) {
		t.Fatalf("double PutBatch replayed samples: histogram grew to %d, want %d", got, decodes)
	}
}

// The single-decode adapters share the batch kernel's recorder: Decode
// and DecodeInto each record one sample, flushed by FlushObs.
func TestBatchMeshAdapterTelemetry(t *testing.T) {
	g := lattice.MustNew(3).MatchingGraph(lattice.XErrors)
	hist := obs.Default().Histogram("sfq_decode_cycles_d3")
	before := hist.Count()

	b := NewBatch(g, Final)
	s := decodepool.NewScratch()
	syn := make([]bool, g.NumChecks())
	syn[0], syn[1] = true, true
	const decodes = 10
	for i := 0; i < decodes; i++ {
		if _, err := b.DecodeInto(g, syn, s); err != nil {
			t.Fatal(err)
		}
	}
	b.FlushObs()
	if got := hist.Count() - before; got != decodes {
		t.Fatalf("histogram grew by %d, want %d", got, decodes)
	}
}
