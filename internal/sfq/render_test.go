package sfq

import (
	"strings"
	"testing"

	"repro/internal/lattice"
)

func TestRenderGlyphs(t *testing.T) {
	l := lattice.MustNew(3)
	g := l.MatchingGraph(lattice.ZErrors)
	mesh := New(g, Final)
	// Idle mesh: ring with boundary modules on the left/right even rows,
	// inert corners, idle interior.
	out := mesh.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 7 {
		t.Fatalf("render has %d lines, want 7", len(lines))
	}
	if lines[0] != "       " {
		t.Errorf("top ring not inert: %q", lines[0])
	}
	if lines[1] != "=·····=" {
		t.Errorf("row 1 = %q", lines[1])
	}
	if lines[2] != " ····· " {
		t.Errorf("row 2 = %q", lines[2])
	}
}

func TestRenderDuringDecode(t *testing.T) {
	l := lattice.MustNew(3)
	g := l.MatchingGraph(lattice.ZErrors)
	mesh := New(g, Final)
	syn := synWithHot(g, lattice.Site{Row: 2, Col: 1})
	var frames []string
	mesh.SetTracer(func(cycle int, frame string) {
		frames = append(frames, frame)
	})
	if _, _, err := mesh.DecodeWithStats(syn); err != nil {
		t.Fatal(err)
	}
	if len(frames) == 0 {
		t.Fatal("tracer saw no frames")
	}
	joined := strings.Join(frames, "")
	for _, glyph := range []string{"H", "*", "r", "G", "P", "#"} {
		if !strings.Contains(joined, glyph) {
			t.Errorf("glyph %q never rendered during a boundary pairing", glyph)
		}
	}
	// Tracer can be removed.
	mesh.SetTracer(nil)
	frames = frames[:0]
	if _, _, err := mesh.DecodeWithStats(syn); err != nil {
		t.Fatal(err)
	}
	if len(frames) != 0 {
		t.Error("tracer fired after removal")
	}
}
