package sfq

import (
	"fmt"
	"math/bits"

	"repro/internal/decodepool"
	"repro/internal/decoder"
	"repro/internal/lattice"
	"repro/internal/obs"
)

// BatchMesh is the SWAR-batched bit-plane kernel: up to
// MaxBatchLanes(d) independent decoder meshes packed d-major into the
// same []uint64 planes (see batchGeom), advanced by one shared
// wavefront step per clock. Planes are W words per row (W ∈ {1, 2, 4},
// chosen by REPRO_SFQ_WIDTH or the CPU auto-pick), so every
// shift-and-mask pass progresses W·⌊64/(2d+1)⌋ in-flight decodes.
//
// Lanes never interact — the lane masks stop every shift at the lane
// seam and all cross-plane operations are pure bitwise combinations —
// so each lane evolves exactly as a scalar bit-plane mesh would.
// Termination is per lane: each lane keeps its own hot counter, reset
// countdown, retry count and rotated grant priority, is checked against
// the scalar kernel's stall/watchdog conditions between steps, and when
// it finishes its correction and Stats are extracted, the lane is
// scrubbed, and the next pending syndrome is loaded into it while the
// other lanes keep stepping. Dynamic refill keeps all lanes busy for
// the whole batch, which is what makes throughput approach B× rather
// than B/avg-vs-max. The conformance suite pins corrections and
// per-lane Stats bit-identical to the scalar kernel.
//
// The per-lane quiescence test leans on one invariant: every wavefront
// `any` flag is the exact OR of its current planes in that flag's word
// column (signals are always accumulated with true ORs — including the
// initial grow emission — and lane scrubs clear plane bits and flag
// bits together), so `any[laneCol[l]] & laneBits[l]` precisely answers
// "does lane l have a signal in flight".
//
// A BatchMesh is reusable across DecodeBatchInto calls but not safe for
// concurrent use. Meshes wider than one word (side > 64, d ≥ 32) fall
// back to a private scalar bit-plane mesh decoded lane-at-a-time.
type BatchMesh struct {
	g       *lattice.Graph
	variant Variant
	geo     *meshGeom
	bg      *batchGeom
	lanes   int

	// MaxCycles bounds each lane's decode, as Mesh.MaxCycles does.
	MaxCycles  int
	maxRetries int

	// Shared planes, W words per row, all lanes interleaved.
	hot, errOut, fired, sentPair, granted []uint64
	growFrom, reqDirs, grants             [4][]uint64
	growW, reqW, grantW, pairW, pairBW    bwavefront
	sh                                    [4][]uint64
	tmpA, tmpB                            []uint64

	// Per-lane control state.
	laneSyn       []int // syndrome index decoding in lane l, -1 when idle
	laneHot       []int // hot modules left in lane l
	laneCountdown []int // lane-local globalReset input-blocking countdown
	laneRetries   []int // stall-recovery resets spent by lane l
	lanePrio      []int // lane-local rotated grant priority offset
	laneStats     []Stats
	anyPrio       int // lanes with a nonzero priority offset (slow-path gate)

	// Dirty-word bitmaps of the fused wide path (one bit per plane word,
	// n ≤ 256 because side ≤ 64 and W ≤ 4): fireDirty marks words where
	// fire eligibility may have changed this step (a grow latch landed or
	// a hot module terminated), hsDirty where a handshake may have
	// completed (a grant was consumed). fireCompleteWide visits only
	// marked words; see batchwide.go for the event analysis.
	fireDirty, hsDirty [4]uint64

	// In-flight batch bookkeeping (valid only inside DecodeBatchInto).
	syns   [][]bool
	spans  [][2]int32
	q      []int
	next   int
	active int

	statsBuf []Stats // per-syndrome Stats of the last batch
	lastN    int
	stat     Stats // Stats of the last single-syndrome adapter decode

	scalarMesh *Mesh    // side > 64 fallback
	one        [][]bool // single-syndrome adapter buffer
	ownScratch *decodepool.Scratch

	obsCycles *obs.Local

	// Pool bookkeeping, mirroring Mesh.
	owner  *Pool
	pooled bool
}

// bwavefront is the batch kernel's double-buffered plane set of one
// signal class: the wavefront type widened to W-word rows. The any
// flags are per-word-column OR-accumulators over every word written
// into the respective plane set (any[c] covers words k with k&wmask ==
// c); they make per-lane quiescence checks O(1) and let clearNext skip
// plane sets that are already zero.
type bwavefront struct {
	cur, nxt       [4][]uint64
	curAny, nxtAny [4]uint64
}

func (w *bwavefront) swap() {
	w.cur, w.nxt = w.nxt, w.cur
	w.curAny, w.nxtAny = w.nxtAny, w.curAny
}

// anyCur reports whether any signal of this class is in flight in any
// column.
func (w *bwavefront) anyCur() uint64 {
	return w.curAny[0] | w.curAny[1] | w.curAny[2] | w.curAny[3]
}

func (w *bwavefront) anyNxt() uint64 {
	return w.nxtAny[0] | w.nxtAny[1] | w.nxtAny[2] | w.nxtAny[3]
}

// clearNext zeroes the next-cycle planes (stale state from two cycles
// ago) if anything was ever written into them.
func (w *bwavefront) clearNext() {
	if w.anyNxt() == 0 {
		return
	}
	for d := range w.nxt {
		clearPlane(w.nxt[d])
	}
	w.nxtAny = [4]uint64{}
}

// clearCur zeroes the in-flight planes.
func (w *bwavefront) clearCur() {
	if w.anyCur() == 0 {
		return
	}
	for d := range w.cur {
		clearPlane(w.cur[d])
	}
	w.curAny = [4]uint64{}
}

// orAny folds a phase's per-column accumulator into the next-cycle
// flags.
func (w *bwavefront) orAny(acc *[4]uint64) {
	w.nxtAny[0] |= acc[0]
	w.nxtAny[1] |= acc[1]
	w.nxtAny[2] |= acc[2]
	w.nxtAny[3] |= acc[3]
}

// NewBatch builds a SWAR batch mesh for the matching graph at the
// maximum lane width for its distance (W·⌊64/(2d+1)⌋ lanes at the
// process-wide BatchWords plane width).
func NewBatch(g *lattice.Graph, v Variant) *BatchMesh {
	return NewBatchWithLanes(g, v, MaxBatchLanes(g.Lattice().Distance()))
}

// NewBatchWithWidth builds a batch mesh with an explicit plane width in
// words (1, 2 or 4, fully occupied); other widths fall back to the
// process default. Explicit widths exist for the width-conformance
// tests and the bench harness.
func NewBatchWithWidth(g *lattice.Graph, v Variant, words int) *BatchMesh {
	if words != 1 && words != 2 && words != 4 {
		words = BatchWords
	}
	return NewBatchWithLanes(g, v, MaxBatchLanesAt(g.Lattice().Distance(), words))
}

// NewBatchWithLanes builds a batch mesh with an explicit lane count;
// widths outside [1, MaxBatchLanes(d)] are clamped to the maximum. The
// plane word count is the narrowest power-of-two layout that holds the
// lanes. Narrow widths exist for tests and for callers bounding batch
// latency.
func NewBatchWithLanes(g *lattice.Graph, v Variant, lanes int) *BatchMesh {
	geo := geomFor(g)
	if max := MaxBatchLanes(geo.d); lanes < 1 || lanes > max {
		lanes = max
	}
	b := &BatchMesh{
		g:          g,
		variant:    v,
		geo:        geo,
		MaxCycles:  200 * geo.m,
		maxRetries: 3,
	}
	b.obsCycles = obs.NewLocal(obsFlushEvery,
		obs.Default().Histogram(fmt.Sprintf("sfq_decode_cycles_d%d", geo.d)))
	if geo.m > 64 {
		b.scalarMesh = NewWithKernel(g, v, KernelBitplane)
		b.lanes = 1
		return b
	}
	b.bg = batchGeomFor(g, lanes)
	b.lanes = lanes
	n := b.bg.n
	// One backing array for all planes, as newPlaneState lays out.
	backing := make([]uint64, 63*n)
	next := func() []uint64 {
		p := backing[:n:n]
		backing = backing[n:]
		return p
	}
	b.hot, b.errOut, b.fired, b.sentPair, b.granted = next(), next(), next(), next(), next()
	for d := 0; d < 4; d++ {
		b.growFrom[d], b.reqDirs[d], b.grants[d] = next(), next(), next()
		b.sh[d] = next()
	}
	for _, w := range []*bwavefront{&b.growW, &b.reqW, &b.grantW, &b.pairW, &b.pairBW} {
		for d := 0; d < 4; d++ {
			w.cur[d], w.nxt[d] = next(), next()
		}
	}
	b.tmpA, b.tmpB = next(), next()
	b.laneSyn = make([]int, lanes)
	b.laneHot = make([]int, lanes)
	b.laneCountdown = make([]int, lanes)
	b.laneRetries = make([]int, lanes)
	b.lanePrio = make([]int, lanes)
	b.laneStats = make([]Stats, lanes)
	for l := range b.laneSyn {
		b.laneSyn[l] = -1
	}
	return b
}

// Name implements decoder.Decoder.
func (b *BatchMesh) Name() string { return "sfq-batch-" + b.variant.Name() }

// Variant returns the mesh's design variant.
func (b *BatchMesh) Variant() Variant { return b.variant }

// Lanes returns how many syndromes one DecodeBatchInto call advances
// concurrently.
func (b *BatchMesh) Lanes() int { return b.lanes }

// Words returns the mesh's plane width in 64-bit words (1 for the
// side > 64 scalar fallback).
func (b *BatchMesh) Words() int {
	if b.bg == nil {
		return 1
	}
	return b.bg.words
}

// BatchWidth implements decodepool.BatchDecoder.
func (b *BatchMesh) BatchWidth() int { return b.lanes }

// Stats returns the statistics of the most recent single-syndrome
// Decode/DecodeInto call. For batched decodes use LaneStats.
func (b *BatchMesh) Stats() Stats { return b.stat }

// BatchStats returns the per-syndrome statistics of the last
// DecodeBatchInto call, indexed like its syndromes. The slice is valid
// until the next decode.
func (b *BatchMesh) BatchStats() []Stats { return b.statsBuf[:b.lastN] }

// LaneStats returns the statistics of syndrome i of the last batch.
func (b *BatchMesh) LaneStats(i int) Stats { return b.statsBuf[i] }

// Reset returns the mesh to its idle state; pools call it before
// parking so no stale decode state crosses owners.
func (b *BatchMesh) Reset() {
	if b.scalarMesh != nil {
		b.scalarMesh.Reset()
	} else {
		b.resetAll()
	}
	b.stat = Stats{}
	b.lastN = 0
}

// FlushObs merges pending telemetry into the shared registry
// histograms (one cycle sample was recorded per lane decode).
func (b *BatchMesh) FlushObs() {
	if b.scalarMesh != nil {
		b.scalarMesh.FlushObs()
		return
	}
	b.obsCycles.Flush()
}

// compatible mirrors Mesh.compatible: pooled batch meshes accept any
// structurally identical graph.
func (b *BatchMesh) compatible(g *lattice.Graph) bool {
	if g == b.g {
		return true
	}
	return g.ErrorType() == b.g.ErrorType() &&
		g.Lattice().Distance() == b.g.Lattice().Distance() &&
		g.NumChecks() == b.g.NumChecks()
}

// Decode implements decoder.Decoder on the batch mesh (one lane used).
// The returned correction is private to the caller.
func (b *BatchMesh) Decode(g *lattice.Graph, syn []bool) (decoder.Correction, error) {
	if b.ownScratch == nil {
		b.ownScratch = decodepool.NewScratch()
	}
	c, err := b.DecodeInto(g, syn, b.ownScratch)
	if err != nil {
		return decoder.Correction{}, err
	}
	return decoder.Correction{Qubits: append([]int(nil), c.Qubits...)}, nil
}

// DecodeInto implements decodepool.IntoDecoder: a single-syndrome
// decode through lane 0, zero allocations in steady state. The
// correction aliases the scratch's batch buffer and is valid until the
// next decode through it.
func (b *BatchMesh) DecodeInto(g *lattice.Graph, syn []bool, s *decodepool.Scratch) (decoder.Correction, error) {
	if b.one == nil {
		b.one = make([][]bool, 1)
	}
	b.one[0] = syn
	cs, err := b.DecodeBatchInto(g, b.one, s)
	b.one[0] = nil
	if err != nil {
		return decoder.Correction{}, err
	}
	b.stat = b.statsBuf[0]
	return cs[0], nil
}

// DecodeBatchInto decodes the syndromes through the lane-packed kernel,
// refilling lanes from the pending queue as they finish, and returns
// one Correction per syndrome (same order). Corrections and the
// returned slice alias the scratch's batch buffers and are valid until
// the next decode through the same scratch; per-syndrome Stats are
// available via BatchStats/LaneStats. Zero heap allocations in steady
// state.
func (b *BatchMesh) DecodeBatchInto(g *lattice.Graph, syns [][]bool, s *decodepool.Scratch) ([]decoder.Correction, error) {
	if !b.compatible(g) {
		return nil, fmt.Errorf("sfq: batch mesh bound to a different matching graph")
	}
	nc := b.g.NumChecks()
	for i, syn := range syns {
		if len(syn) != nc {
			return nil, fmt.Errorf("sfq: syndrome %d has %d checks, graph has %d", i, len(syn), nc)
		}
	}
	n := len(syns)
	if cap(b.statsBuf) < n {
		b.statsBuf = make([]Stats, n)
	} else {
		b.statsBuf = b.statsBuf[:n]
	}
	b.lastN = n
	spans := s.BatchSpans(n)
	if b.scalarMesh != nil {
		q := s.TakeBatchQubits()
		for i, syn := range syns {
			start := int32(len(q))
			var err error
			q, err = b.scalarMesh.decodeAppend(syn, q)
			if err != nil {
				s.PutBatchQubits(q)
				return nil, err
			}
			spans[i] = [2]int32{start, int32(len(q))}
			b.statsBuf[i] = b.scalarMesh.stats
		}
		s.PutBatchQubits(q)
		return batchCorrections(s, q, spans), nil
	}
	b.resetAll()
	b.syns, b.spans = syns, spans
	b.q = s.TakeBatchQubits()
	for l := 0; l < b.lanes && b.next < n; l++ {
		b.loadLaneNext(l)
	}
	for b.active > 0 {
		// Per-lane scalar control flow, checked between every step in
		// the scalar kernel's order: terminal, stall recovery, watchdog.
		for l := range b.laneSyn {
			if b.laneSyn[l] < 0 {
				continue
			}
			if b.laneHot[l] == 0 && b.pairW.curAny[b.bg.laneCol[l]]&b.bg.laneBits[l] == 0 && b.laneCountdown[l] == 0 {
				b.finalizeLane(l)
				continue
			}
			if b.laneCountdown[l] == 0 && b.laneQuiescent(l) {
				st := &b.laneStats[l]
				st.Stalls++
				if b.variant.Reset && b.laneRetries[l] < b.maxRetries {
					b.laneRetries[l]++
					st.Retries++
					b.setLanePrio(l, b.laneRetries[l])
					b.laneGlobalReset(l)
				} else if b.variant.Boundary {
					st.Unresolved = b.laneHot[l]
					b.drainLane(l)
					b.finalizeLane(l)
					continue
				} else {
					st.Unresolved = b.laneHot[l]
					b.finalizeLane(l)
					continue
				}
			}
			if b.laneStats[l].Cycles >= b.MaxCycles {
				b.laneStats[l].Unresolved = b.laneHot[l]
				if b.variant.Boundary {
					b.drainLane(l)
				}
				b.finalizeLane(l)
			}
		}
		if b.active == 0 {
			break
		}
		b.step()
	}
	q := b.q
	s.PutBatchQubits(q)
	b.q, b.syns, b.spans = nil, nil, nil
	return batchCorrections(s, q, spans), nil
}

// batchCorrections materializes the per-syndrome Correction views over
// the shared qubit buffer. Views are built only after all appends are
// done, so buffer re-growth mid-batch cannot invalidate earlier spans.
func batchCorrections(s *decodepool.Scratch, q []int, spans [][2]int32) []decoder.Correction {
	corr := s.BatchCorrections(len(spans))
	for i, sp := range spans {
		corr[i] = decoder.Correction{Qubits: q[sp[0]:sp[1]:sp[1]]}
	}
	return corr
}

// resetAll clears every plane and lane control.
func (b *BatchMesh) resetAll() {
	clearPlane(b.hot)
	clearPlane(b.errOut)
	clearPlane(b.fired)
	clearPlane(b.sentPair)
	clearPlane(b.granted)
	for d := 0; d < 4; d++ {
		clearPlane(b.growFrom[d])
		clearPlane(b.reqDirs[d])
		clearPlane(b.grants[d])
	}
	for _, w := range []*bwavefront{&b.growW, &b.reqW, &b.grantW, &b.pairW, &b.pairBW} {
		w.clearCur()
		w.nxtAny[0] = 1
		w.clearNext()
	}
	for l := range b.laneSyn {
		b.laneSyn[l] = -1
		b.laneHot[l] = 0
		b.laneCountdown[l] = 0
		b.laneRetries[l] = 0
		b.lanePrio[l] = 0
		b.laneStats[l] = Stats{}
	}
	b.anyPrio = 0
	b.fireDirty = [4]uint64{}
	b.hsDirty = [4]uint64{}
	b.next = 0
	b.active = 0
}

// loadLaneNext loads the next pending syndrome into idle lane l.
// Zero-hot syndromes finalize immediately (the scalar kernel never
// clocks the mesh for them); the first syndrome with hot checks is
// loaded and its grow wavefronts emitted into the current planes —
// exactly the pre-loop state of a scalar decode, so a lane loaded at
// global step T evolves identically to a scalar decode at local step 0.
func (b *BatchMesh) loadLaneNext(l int) {
	geo, bg := b.geo, b.bg
	col := bg.laneCol[l]
	lane0 := uint(l % bg.perWord * geo.m)
	for b.next < len(b.syns) {
		idx := b.next
		b.next++
		syn := b.syns[idx]
		hot := 0
		for ci, h := range syn {
			if !h {
				continue
			}
			cell := geo.cellOf[ci]
			b.hot[cell/geo.m*bg.words+col] |= uint64(1) << (lane0 + uint(cell%geo.m))
			hot++
		}
		if hot == 0 {
			off := int32(len(b.q))
			b.spans[idx] = [2]int32{off, off}
			b.statsBuf[idx] = Stats{}
			b.obsCycles.Observe(0)
			continue
		}
		b.laneSyn[l] = idx
		b.laneHot[l] = hot
		b.laneStats[l] = Stats{}
		// Emit grows in all four directions at every hot module of this
		// lane. The OR into curAny is exact (not a flag) — per-lane
		// quiescence tests depend on it.
		lane := bg.laneBits[l]
		var acc uint64
		for d := 0; d < 4; d++ {
			cur := b.growW.cur[d]
			for k := col; k < len(b.hot); k += bg.words {
				hl := b.hot[k] & lane
				cur[k] |= hl
				acc |= hl
			}
		}
		b.growW.curAny[col] |= acc
		b.active++
		return
	}
}

// finalizeLane extracts lane l's finished correction and Stats, records
// its telemetry sample (one per lane decode), scrubs the lane's bits
// out of every plane, and refills the lane from the pending queue.
func (b *BatchMesh) finalizeLane(l int) {
	idx := b.laneSyn[l]
	start := int32(len(b.q))
	b.extractLane(l)
	b.spans[idx] = [2]int32{start, int32(len(b.q))}
	b.statsBuf[idx] = b.laneStats[l]
	b.obsCycles.Observe(uint64(b.laneStats[l].Cycles))
	b.scrubLane(l)
	b.laneSyn[l] = -1
	b.active--
	b.loadLaneNext(l)
}

// extractLane appends lane l's correction to the batch qubit buffer in
// ascending cell order — the order the scalar kernels scan errOut.
func (b *BatchMesh) extractLane(l int) {
	geo, bg := b.geo, b.bg
	col := bg.laneCol[l]
	shift := uint(l % bg.perWord * geo.m)
	for r := 0; r < geo.rows; r++ {
		w := b.errOut[r*bg.words+col] >> shift & bg.laneLow
		base := r * geo.m
		for w != 0 {
			c := bits.TrailingZeros64(w)
			w &= w - 1
			if q0 := geo.dataQ[base+c]; q0 >= 0 {
				b.q = append(b.q, q0)
			}
		}
	}
}

// maskPlaneCol clears the bits outside mask from every word of the
// plane's word column col (of the given stride).
func maskPlaneCol(p []uint64, mask uint64, col, words int) {
	for k := col; k < len(p); k += words {
		p[k] &= mask
	}
}

// maskLaneCol clears one lane's bits from the in-flight planes, keeping
// curAny[col] an exact OR of the column's remaining plane contents
// (lane masks of distinct lanes in one column are disjoint).
func (w *bwavefront) maskLaneCol(lane uint64, col, words int) {
	if w.curAny[col]&lane == 0 {
		return
	}
	for d := range w.cur {
		maskPlaneCol(w.cur[d], ^lane, col, words)
	}
	w.curAny[col] &^= lane
}

// scrubLane erases every trace of lane l so the lane is ready for the
// next syndrome. Next-cycle planes need no scrubbing: they hold only
// two-cycles-ago state that clearNext wipes before any phase reads it.
func (b *BatchMesh) scrubLane(l int) {
	bg := b.bg
	lane := bg.laneBits[l]
	col := bg.laneCol[l]
	mask := ^lane
	maskPlaneCol(b.hot, mask, col, bg.words)
	maskPlaneCol(b.errOut, mask, col, bg.words)
	maskPlaneCol(b.fired, mask, col, bg.words)
	maskPlaneCol(b.sentPair, mask, col, bg.words)
	maskPlaneCol(b.granted, mask, col, bg.words)
	for d := 0; d < 4; d++ {
		maskPlaneCol(b.growFrom[d], mask, col, bg.words)
		maskPlaneCol(b.reqDirs[d], mask, col, bg.words)
		maskPlaneCol(b.grants[d], mask, col, bg.words)
	}
	b.growW.maskLaneCol(lane, col, bg.words)
	b.reqW.maskLaneCol(lane, col, bg.words)
	b.grantW.maskLaneCol(lane, col, bg.words)
	b.pairW.maskLaneCol(lane, col, bg.words)
	b.pairBW.maskLaneCol(lane, col, bg.words)
	b.laneHot[l] = 0
	b.laneCountdown[l] = 0
	b.laneRetries[l] = 0
	b.setLanePrio(l, 0)
}

// laneGlobalReset is the per-lane globalReset: everything but the
// lane's pair propagation and error outputs is cleared and the lane's
// inputs block for ResetDepth cycles.
func (b *BatchMesh) laneGlobalReset(l int) {
	bg := b.bg
	lane := bg.laneBits[l]
	col := bg.laneCol[l]
	mask := ^lane
	for d := 0; d < 4; d++ {
		maskPlaneCol(b.growFrom[d], mask, col, bg.words)
		maskPlaneCol(b.reqDirs[d], mask, col, bg.words)
		maskPlaneCol(b.grants[d], mask, col, bg.words)
	}
	maskPlaneCol(b.fired, mask, col, bg.words)
	maskPlaneCol(b.sentPair, mask, col, bg.words)
	maskPlaneCol(b.granted, mask, col, bg.words)
	b.growW.maskLaneCol(lane, col, bg.words)
	b.reqW.maskLaneCol(lane, col, bg.words)
	b.grantW.maskLaneCol(lane, col, bg.words)
	// pair planes and errOut survive by design.
	b.laneCountdown[l] = ResetDepth
}

// setLanePrio updates a lane's rotated grant priority, maintaining the
// count of lanes away from the fixed hardware order (the fast-path gate
// in moveReqs).
func (b *BatchMesh) setLanePrio(l, v int) {
	if (b.lanePrio[l] == 0) != (v == 0) {
		if v == 0 {
			b.anyPrio--
		} else {
			b.anyPrio++
		}
	}
	b.lanePrio[l] = v
}

// laneQuiescent reports whether lane l has no signal of any kind in
// flight. Exact because the any flags are exact ORs (see type comment).
func (b *BatchMesh) laneQuiescent(l int) bool {
	col := b.bg.laneCol[l]
	return (b.growW.curAny[col]|b.reqW.curAny[col]|b.grantW.curAny[col]|b.pairW.curAny[col])&
		b.bg.laneBits[l] == 0
}

// step advances every active lane one clock. The shared phases need no
// per-lane blocking: a lane mid-reset has empty grow/req/grant planes
// and latches (laneGlobalReset cleared them), so the input phases are
// natural no-ops for it, while pair signals keep propagating — exactly
// the scalar kernel's blocked branch.
func (b *BatchMesh) step() {
	b.growW.clearNext()
	b.reqW.clearNext()
	b.grantW.clearNext()
	b.pairW.clearNext()
	b.pairBW.clearNext()

	// Empty-wavefront phases are skipped outright — exact, since a phase
	// fed an all-zero wavefront writes nothing (the any flags are exact).
	// Wide layouts take the fused single-sweep phases (batchwide.go);
	// the one-word layout keeps the multi-pass reference path.
	var done uint64
	if b.bg.words == 1 {
		if b.growW.anyCur() != 0 {
			b.moveGrows()
		}
		if b.reqW.anyCur() != 0 {
			b.moveReqs()
		}
		if b.grantW.anyCur() != 0 {
			b.moveGrants()
		}
		if b.pairW.anyCur() != 0 {
			done = b.movePairs()
		}
		b.fireIntermediates()
		b.completeHandshakes()
	} else {
		if b.growW.anyCur() != 0 {
			b.moveGrowsWide()
		}
		if b.reqW.anyCur() != 0 {
			b.moveReqsWide()
		}
		if b.grantW.anyCur() != 0 {
			b.moveGrantsWide()
		}
		if b.pairW.anyCur() != 0 {
			done = b.movePairsWide()
		}
		b.fireCompleteWide()
	}

	for l, cd := range b.laneCountdown {
		if cd == 0 {
			continue
		}
		b.laneCountdown[l] = cd - 1
		if cd == 1 {
			// The lane's blocking is over; its surviving hot modules
			// grow again next cycle.
			bg := b.bg
			lane := bg.laneBits[l]
			col := bg.laneCol[l]
			var acc uint64
			for d := 0; d < 4; d++ {
				nxt := b.growW.nxt[d]
				for k := col; k < len(b.hot); k += bg.words {
					hl := b.hot[k] & lane
					nxt[k] |= hl
					acc |= hl
				}
			}
			b.growW.nxtAny[col] |= acc
		}
	}

	b.growW.swap()
	b.reqW.swap()
	b.grantW.swap()
	b.pairW.swap()
	b.pairBW.swap()
	for l, idx := range b.laneSyn {
		if idx >= 0 {
			b.laneStats[l].Cycles++
		}
	}
	if done != 0 && b.variant.Reset {
		for l := range b.laneSyn {
			if done&(uint64(1)<<uint(l)) != 0 {
				b.laneGlobalReset(l)
				b.laneStats[l].Resets++
			}
		}
	}
}

// moveGrows is planeState.moveGrows over the lane-packed planes.
func (b *BatchMesh) moveGrows() {
	bg, v := b.bg, b.variant
	wm := bg.wmask
	for d := 0; d < 4; d++ {
		bg.shiftInto(b.sh[d], b.growW.cur[d], Dir(d))
	}
	// Pass 1: latch interior arrivals by entry side.
	for d := 0; d < 4; d++ {
		sh := b.sh[d]
		gf := b.growFrom[Dir(d).Opposite()]
		for k, in := range bg.interior {
			gf[k] |= sh[k] & in
		}
	}
	// Pass 2: propagate into territory no opposite front has swept.
	for d := 0; d < 4; d++ {
		sh := b.sh[d]
		gf := b.growFrom[d]
		nxt := b.growW.nxt[d]
		var acc [4]uint64
		for k, in := range bg.interior {
			g := sh[k] & in &^ gf[k]
			nxt[k] |= g
			acc[k&wm] |= g
		}
		b.growW.orAny(&acc)
	}
	if !v.Boundary {
		return
	}
	for d := 0; d < 4; d++ {
		e := Dir(d).Opposite()
		sh := b.sh[d]
		for k, bd := range bg.boundary {
			fb := sh[k] & bd &^ b.fired[k]
			if fb == 0 {
				continue
			}
			b.fired[k] |= fb
			b.reqDirs[e][k] |= fb
			if v.ReqGrant {
				b.reqW.nxt[e][k] |= fb
				b.reqW.nxtAny[k&wm] |= fb
			} else {
				b.sentPair[k] |= fb
				b.pairW.nxt[e][k] |= fb
				b.pairW.nxtAny[k&wm] |= fb
				b.pairBW.nxt[e][k] |= fb
				b.pairBW.nxtAny[k&wm] |= fb
			}
		}
	}
}

// moveReqs is planeState.moveReqs with a per-lane grant priority: the
// rotated retry offset is lane-local state, so when any lane is mid
// retry the grant policy runs lane-by-lane over the lanes of the word's
// column (the fast path — all lanes at fixed hardware priority — stays
// whole-word).
func (b *BatchMesh) moveReqs() {
	bg := b.bg
	wm := bg.wmask
	for d := 0; d < 4; d++ {
		bg.shiftInto(b.sh[d], b.reqW.cur[d], Dir(d))
		sh := b.sh[d]
		nxt := b.reqW.nxt[d]
		var acc [4]uint64
		for k, in := range bg.interior {
			mv := sh[k] & in
			pass := mv &^ b.hot[k]
			sh[k] = mv & b.hot[k]
			nxt[k] |= pass
			acc[k&wm] |= pass
		}
		b.reqW.orAny(&acc)
	}
	for k := range bg.interior {
		any := b.sh[0][k] | b.sh[1][k] | b.sh[2][k] | b.sh[3][k]
		elig := any & b.hot[k] &^ b.granted[k]
		if elig == 0 {
			continue
		}
		if b.anyPrio == 0 {
			var taken uint64
			for _, e := range grantPrio {
				c := b.sh[e.Opposite()][k] & elig &^ taken
				if c != 0 {
					b.grantW.nxt[e][k] |= c
					b.grantW.nxtAny[k&wm] |= c
					taken |= c
				}
			}
		} else {
			col := k & wm
			for l := col * bg.perWord; l < bg.colEnd[col]; l++ {
				lane := bg.laneBits[l]
				el := elig & lane
				if el == 0 {
					continue
				}
				base := b.lanePrio[l]
				if base == 0 {
					var taken uint64
					for _, e := range grantPrio {
						c := b.sh[e.Opposite()][k] & el &^ taken
						if c != 0 {
							b.grantW.nxt[e][k] |= c
							b.grantW.nxtAny[col] |= c
							taken |= c
						}
					}
					continue
				}
				for cls := 0; cls < 4; cls++ {
					ecls := el & bg.classMask[cls][k]
					if ecls == 0 {
						continue
					}
					off := (base + cls) % 4
					var taken uint64
					for j := 0; j < 4; j++ {
						e := grantPrio[(j+off)%4]
						c := b.sh[e.Opposite()][k] & ecls &^ taken
						if c != 0 {
							b.grantW.nxt[e][k] |= c
							b.grantW.nxtAny[col] |= c
							taken |= c
						}
					}
				}
			}
		}
		b.granted[k] |= elig
	}
}

// moveGrants is planeState.moveGrants over the lane-packed planes.
func (b *BatchMesh) moveGrants() {
	bg := b.bg
	wm := bg.wmask
	for _, d := range pairOrder {
		bg.shiftInto(b.tmpA, b.grantW.cur[d], d)
		e := d.Opposite()
		nxt := b.grantW.nxt[d]
		var acc [4]uint64
		for k, in := range bg.interior {
			mv := b.tmpA[k]
			if mv == 0 {
				continue
			}
			mvI := mv & in
			cons := mvI & b.fired[k] & b.reqDirs[e][k] &^ b.grants[e][k]
			b.grants[e][k] |= cons
			pass := mvI &^ cons
			nxt[k] |= pass
			acc[k&wm] |= pass
			bc := mv & bg.boundary[k] & b.fired[k] & b.reqDirs[e][k] &^ b.sentPair[k]
			if bc != 0 {
				b.sentPair[k] |= bc
				b.pairW.nxt[e][k] |= bc
				b.pairW.nxtAny[k&wm] |= bc
				b.pairBW.nxt[e][k] |= bc
				b.pairBW.nxtAny[k&wm] |= bc
			}
		}
		b.grantW.orAny(&acc)
	}
}

// movePairs is planeState.movePairs with per-lane accounting: pair
// terminations decrement the owning lane's hot counter and Stats, and
// the returned mask has bit l set when lane l completed a pairing this
// cycle (its per-lane pairingDone).
func (b *BatchMesh) movePairs() (done uint64) {
	bg := b.bg
	wm := bg.wmask
	for _, d := range pairOrder {
		bg.shiftInto(b.tmpA, b.pairW.cur[d], d)
		bg.shiftInto(b.tmpB, b.pairBW.cur[d], d)
		nxt, nxtB := b.pairW.nxt[d], b.pairBW.nxt[d]
		var acc, accB [4]uint64
		for k, in := range bg.interior {
			mv := b.tmpA[k] & in
			if mv == 0 {
				continue
			}
			b.errOut[k] ^= mv
			hits := mv & b.hot[k]
			if hits != 0 {
				b.hot[k] &^= hits
				col := k & wm
				for l := col * bg.perWord; l < bg.colEnd[col]; l++ {
					hl := hits & bg.laneBits[l]
					if hl == 0 {
						continue
					}
					nh := bits.OnesCount64(hl)
					b.laneHot[l] -= nh
					b.laneStats[l].Pairings += nh
					b.laneStats[l].BoundaryPairings += bits.OnesCount64(hl & b.tmpB[k])
					done |= uint64(1) << uint(l)
				}
			}
			pass := mv &^ hits
			nxt[k] |= pass
			acc[k&wm] |= pass
			bp := b.tmpB[k] & pass
			nxtB[k] |= bp
			accB[k&wm] |= bp
		}
		b.pairW.orAny(&acc)
		b.pairBW.orAny(&accB)
	}
	return done
}

// fireIntermediates is planeState.fireIntermediates over the
// lane-packed planes. Lanes mid-reset have empty growFrom latches, so
// they contribute nothing, matching the scalar blocked branch.
func (b *BatchMesh) fireIntermediates() {
	bg, v := b.bg, b.variant
	wm := bg.wmask
	gfN, gfE, gfS, gfW := b.growFrom[North], b.growFrom[East], b.growFrom[South], b.growFrom[West]
	for k, in := range bg.interior {
		elig := in &^ b.fired[k] &^ b.hot[k]
		if elig == 0 {
			continue
		}
		cWE := elig & gfW[k] & gfE[k]
		rem := elig &^ cWE
		cNS := rem & gfN[k] & gfS[k]
		rem &^= cNS
		cNW := rem & gfN[k] & gfW[k]
		rem &^= cNW
		cNE := rem & gfN[k] & gfE[k]
		firedNew := cWE | cNS | cNW | cNE
		if firedNew == 0 {
			continue
		}
		b.fired[k] |= firedNew
		setN := cNS | cNW | cNE
		setS := cNS
		setE := cWE | cNE
		setW := cWE | cNW
		b.reqDirs[North][k] |= setN
		b.reqDirs[South][k] |= setS
		b.reqDirs[East][k] |= setE
		b.reqDirs[West][k] |= setW
		if v.ReqGrant {
			b.reqW.nxt[North][k] |= setN
			b.reqW.nxt[South][k] |= setS
			b.reqW.nxt[East][k] |= setE
			b.reqW.nxt[West][k] |= setW
			b.reqW.nxtAny[k&wm] |= firedNew
		} else {
			b.sentPair[k] |= firedNew
			b.errOut[k] ^= firedNew
			b.pairW.nxt[North][k] |= setN
			b.pairW.nxt[South][k] |= setS
			b.pairW.nxt[East][k] |= setE
			b.pairW.nxt[West][k] |= setW
			b.pairW.nxtAny[k&wm] |= firedNew
		}
	}
}

// completeHandshakes is planeState.completeHandshakes over the
// lane-packed planes.
func (b *BatchMesh) completeHandshakes() {
	if !b.variant.ReqGrant {
		return
	}
	bg := b.bg
	wm := bg.wmask
	for k, in := range bg.interior {
		pend := (b.reqDirs[0][k] &^ b.grants[0][k]) |
			(b.reqDirs[1][k] &^ b.grants[1][k]) |
			(b.reqDirs[2][k] &^ b.grants[2][k]) |
			(b.reqDirs[3][k] &^ b.grants[3][k])
		ready := (b.fired[k] &^ b.sentPair[k]) & in &^ pend
		if ready == 0 {
			continue
		}
		b.sentPair[k] |= ready
		b.errOut[k] ^= ready
		for d := 0; d < 4; d++ {
			p := ready & b.reqDirs[d][k]
			b.pairW.nxt[d][k] |= p
			b.pairW.nxtAny[k&wm] |= p
		}
	}
}

// drainLane force-pairs lane l's remaining hot modules with their
// nearest boundary — planeState.drainToBoundary confined to one lane,
// same ascending cell order, charging the lane's own Stats.
func (b *BatchMesh) drainLane(l int) {
	geo, bg := b.geo, b.bg
	st := &b.laneStats[l]
	col := bg.laneCol[l]
	shift := uint(l % bg.perWord * geo.m)
	for r := 0; r < geo.rows; r++ {
		w := b.hot[r*bg.words+col] >> shift & bg.laneLow
		for w != 0 {
			c := bits.TrailingZeros64(w)
			w &= w - 1
			i := r*geo.m + c
			d, hops := geo.drainDir(i)
			for j := geo.neighbor(i, d); j >= 0 && geo.kind[j] == cellInterior; j = geo.neighbor(j, d) {
				b.errOut[j/geo.m*bg.words+col] ^= uint64(1) << (shift + uint(j%geo.m))
			}
			b.hot[r*bg.words+col] &^= uint64(1) << (shift + uint(c))
			b.laneHot[l]--
			st.Fallbacks++
			st.Pairings++
			st.BoundaryPairings++
			st.Cycles += 3*hops + ResetDepth
		}
	}
}

var (
	_ decoder.Decoder         = (*BatchMesh)(nil)
	_ decodepool.IntoDecoder  = (*BatchMesh)(nil)
	_ decodepool.BatchDecoder = (*BatchMesh)(nil)
)
