// Package sched is a work-stealing task pool shared by the Monte-Carlo
// engine and the decode service: per-worker deques of tasks, steal-half
// when a worker runs dry, and park/unpark so idle workers cost nothing.
//
// The pool schedules; it never decides results. Both of its clients
// keep their outputs bit-identical under any steal schedule by
// construction — mc derives every trial's randomness from a
// counter-based stream keyed by the trial index and merges tallies
// commutatively, serve delivers each response through its own task —
// so the scheduler is free to move work anywhere at any time. The
// determinism regression tests run the same sweep across worker counts
// and forced-steal schedules and assert identical verdicts.
//
// Hot paths do not allocate in steady state: deque rings and steal
// scratch buffers grow to a high-water mark and are reused, tasks are
// interface values over caller-owned structs, and parking uses one
// condition variable. The zero-allocation regression tests pin this.
package sched

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Task is one unit of work. Implementations are typically pointers to
// preallocated structs so submission does not allocate.
type Task interface {
	Run()
}

// WaitObserver is an optional second face of a Task: a task that
// implements it is told, just before Run, how long it sat in the
// deques (submit → execution start, parks and steal migrations
// included) and whether the executing worker stole it from another
// worker's deque. The decode service uses this to attribute scheduler
// wait — otherwise invisible inside a request's queue-wait stage — and
// to mark traces whose drain was stolen. The callback runs on the
// executing worker, immediately before Run, so implementations need no
// synchronization beyond what Run itself needs.
type WaitObserver interface {
	ObserveSchedWait(waitNs int64, stolen bool)
}

// item is one queued task plus its submission instant; the timestamp
// rides the deques so wait attribution survives steals.
type item struct {
	t  Task
	at time.Time
}

// Options tunes a Pool.
type Options struct {
	// ForceSteal makes every worker try to steal from a victim before
	// draining its own deque, maximizing cross-worker migration. It
	// exists for the determinism and race tests, which use it to hammer
	// the steal path far harder than natural imbalance would.
	ForceSteal bool
}

// Stats is a snapshot of the pool's scheduling counters.
type Stats struct {
	Submitted uint64 // tasks accepted by Submit
	Executed  uint64 // tasks completed
	Steals    uint64 // successful steal events (≥1 task moved)
	Stolen    uint64 // tasks moved by steals
	Parks     uint64 // times a worker went to sleep
}

// deque is one worker's task ring. The owner pushes and pops at the
// tail (LIFO keeps a worker on cache-warm work); thieves take from the
// head, oldest first, which is where the coarsest-grained tasks sit.
// A small mutex per deque is cheap here: tasks are shard- or
// batch-sized (microseconds to milliseconds), so lock traffic is
// negligible against task run time.
type deque struct {
	mu    sync.Mutex
	buf   []item
	head  int // index of the oldest task
	count int
}

func (d *deque) pushTail(it item) {
	d.mu.Lock()
	if d.count == len(d.buf) {
		d.grow()
	}
	d.buf[(d.head+d.count)%len(d.buf)] = it
	d.count++
	d.mu.Unlock()
}

// grow doubles the ring with the live tasks re-packed from index 0.
// Called with d.mu held; allocates only until the high-water mark.
func (d *deque) grow() {
	n := len(d.buf) * 2
	if n == 0 {
		n = 8
	}
	buf := make([]item, n)
	for i := 0; i < d.count; i++ {
		buf[i] = d.buf[(d.head+i)%len(d.buf)]
	}
	d.buf = buf
	d.head = 0
}

func (d *deque) popTail() (item, bool) {
	d.mu.Lock()
	if d.count == 0 {
		d.mu.Unlock()
		return item{}, false
	}
	d.count--
	i := (d.head + d.count) % len(d.buf)
	it := d.buf[i]
	d.buf[i] = item{}
	d.mu.Unlock()
	return it, true
}

// stealInto moves up to half of the deque (rounded up, at least one)
// into scratch, oldest first, and returns the filled prefix. The
// victim's lock is the only lock held, so thieves never deadlock
// against each other.
func (d *deque) stealInto(scratch []item) []item {
	d.mu.Lock()
	if d.count == 0 {
		d.mu.Unlock()
		return scratch[:0]
	}
	n := (d.count + 1) / 2
	if n > cap(scratch) {
		scratch = make([]item, 0, n)
	}
	scratch = scratch[:n]
	for i := 0; i < n; i++ {
		j := (d.head + i) % len(d.buf)
		scratch[i] = d.buf[j]
		d.buf[j] = item{}
	}
	d.head = (d.head + n) % len(d.buf)
	d.count -= n
	d.mu.Unlock()
	return scratch
}

type worker struct {
	dq      deque
	scratch []item // steal buffer, reused across steals
}

// Pool runs tasks on a fixed set of worker goroutines. Create with
// New, feed with Submit, stop with Close. Submitting concurrently with
// or after Close is a caller bug: such tasks may never run.
type Pool struct {
	opts    Options
	workers []*worker

	queued atomic.Int64 // tasks resident in deques
	rr     atomic.Uint64

	mu     sync.Mutex // guards parked/closed with cond
	cond   *sync.Cond
	parked int
	closed bool
	wg     sync.WaitGroup

	submitted, executed, steals, stolen, parks atomic.Uint64
}

// New starts a pool with n workers (n < 1 is treated as 1).
func New(n int, opts Options) *Pool {
	if n < 1 {
		n = 1
	}
	p := &Pool{opts: opts, workers: make([]*worker, n)}
	p.cond = sync.NewCond(&p.mu)
	for i := range p.workers {
		p.workers[i] = &worker{}
	}
	for i := range p.workers {
		p.wg.Add(1)
		go p.run(i)
	}
	return p
}

// Workers returns the worker count.
func (p *Pool) Workers() int { return len(p.workers) }

// Submit queues t for execution. Round-robin placement spreads
// submission bursts across the deques; stealing rebalances from there.
func (p *Pool) Submit(t Task) {
	if t == nil {
		panic("sched: Submit(nil)")
	}
	w := p.workers[p.rr.Add(1)%uint64(len(p.workers))]
	w.dq.pushTail(item{t: t, at: time.Now()})
	p.submitted.Add(1)
	p.queued.Add(1)
	p.mu.Lock()
	if p.parked > 0 {
		p.cond.Signal()
	}
	p.mu.Unlock()
}

// Close stops the pool after running every queued task to completion
// and blocks until all workers have exited. It is idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		p.cond.Broadcast()
	}
	p.mu.Unlock()
	p.wg.Wait()
	if n := p.queued.Load(); n != 0 {
		// Tasks submitted concurrently with Close can strand; fail loud
		// instead of silently dropping work.
		panic(fmt.Sprintf("sched: pool closed with %d queued tasks (Submit raced Close)", n))
	}
}

// Stats snapshots the scheduling counters.
func (p *Pool) Stats() Stats {
	return Stats{
		Submitted: p.submitted.Load(),
		Executed:  p.executed.Load(),
		Steals:    p.steals.Load(),
		Stolen:    p.stolen.Load(),
		Parks:     p.parks.Load(),
	}
}

// run is one worker's loop: own deque, then steal, then park.
func (p *Pool) run(idx int) {
	defer p.wg.Done()
	self := p.workers[idx]
	for {
		var it item
		var ok, stolen bool
		if p.opts.ForceSteal {
			// Test schedule: migrate first, fall back to own work.
			if it, ok = p.steal(idx, self); !ok {
				it, ok = self.dq.popTail()
			} else {
				stolen = true
			}
		} else {
			if it, ok = self.dq.popTail(); !ok {
				it, ok = p.steal(idx, self)
				stolen = ok
			}
		}
		if ok {
			p.queued.Add(-1)
			if wo, isWO := it.t.(WaitObserver); isWO {
				wo.ObserveSchedWait(time.Since(it.at).Nanoseconds(), stolen)
			}
			it.t.Run()
			p.executed.Add(1)
			continue
		}
		// Nothing anywhere: park until a submit or Close. The re-check
		// of queued under the pool lock closes the submit/park race —
		// Submit increments queued before signalling under the same
		// lock, so a parker can never sleep through a wakeup.
		p.mu.Lock()
		for p.queued.Load() == 0 && !p.closed {
			p.parked++
			p.parks.Add(1)
			p.cond.Wait()
			p.parked--
		}
		closed := p.closed && p.queued.Load() == 0
		p.mu.Unlock()
		if closed {
			return
		}
	}
}

// steal scans the other workers from idx+1 and takes half of the first
// non-empty deque: one task is returned to run now, the rest land in
// the thief's own deque (submission timestamps ride along, so wait
// attribution survives the migration).
func (p *Pool) steal(idx int, self *worker) (item, bool) {
	n := len(p.workers)
	for off := 1; off < n; off++ {
		v := p.workers[(idx+off)%n]
		got := v.dq.stealInto(self.scratch[:0])
		if cap(got) > cap(self.scratch) {
			self.scratch = got[:0]
		}
		if len(got) == 0 {
			continue
		}
		p.steals.Add(1)
		p.stolen.Add(uint64(len(got)))
		for _, it := range got[1:] {
			self.dq.pushTail(it)
		}
		it := got[0]
		for i := range got {
			got[i] = item{}
		}
		return it, true
	}
	return item{}, false
}
