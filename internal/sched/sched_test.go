package sched

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// countTask is a preallocated task that bumps a shared counter; the
// WaitGroup lets tests block until a submission wave has fully run.
type countTask struct {
	n  *atomic.Int64
	wg *sync.WaitGroup
}

func (t *countTask) Run() {
	t.n.Add(1)
	t.wg.Done()
}

// slowTask holds its worker long enough for siblings to go idle and
// steal the rest of a burst.
type slowTask struct {
	n  *atomic.Int64
	wg *sync.WaitGroup
}

func (t *slowTask) Run() {
	time.Sleep(200 * time.Microsecond)
	t.n.Add(1)
	t.wg.Done()
}

// submitWave pushes count preallocated tasks and waits for all to run.
func submitWave(p *Pool, n *atomic.Int64, count int, slow bool) {
	var wg sync.WaitGroup
	wg.Add(count)
	for i := 0; i < count; i++ {
		if slow {
			p.Submit(&slowTask{n: n, wg: &wg})
		} else {
			p.Submit(&countTask{n: n, wg: &wg})
		}
	}
	wg.Wait()
}

// TestPoolRunsEverything submits several waves across worker counts and
// checks every task executed exactly once.
func TestPoolRunsEverything(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		var n atomic.Int64
		p := New(workers, Options{})
		const total = 3 * 500
		for wave := 0; wave < 3; wave++ {
			submitWave(p, &n, 500, false)
		}
		p.Close()
		if n.Load() != total {
			t.Fatalf("workers=%d: ran %d tasks, want %d", workers, n.Load(), total)
		}
		st := p.Stats()
		if st.Submitted != total || st.Executed != total {
			t.Fatalf("workers=%d: stats %+v, want %d submitted and executed", workers, st, total)
		}
	}
}

// TestStealingMovesWork checks both steal schedules migrate tasks: the
// natural one under a skewed burst (every 4th task is slow, so
// round-robin piles all the slow work on one worker and the other
// three run dry), and ForceSteal on every wave.
func TestStealingMovesWork(t *testing.T) {
	for _, force := range []bool{false, true} {
		var n atomic.Int64
		var wg sync.WaitGroup
		p := New(4, Options{ForceSteal: force})
		const count = 400
		wg.Add(count)
		for i := 0; i < count; i++ {
			if i%4 == 0 {
				p.Submit(&slowTask{n: &n, wg: &wg})
			} else {
				p.Submit(&countTask{n: &n, wg: &wg})
			}
		}
		wg.Wait()
		st := p.Stats()
		p.Close()
		if st.Steals == 0 {
			t.Fatalf("forceSteal=%v: no steals over %d skewed tasks on 4 workers", force, n.Load())
		}
		if st.Stolen < st.Steals {
			t.Fatalf("forceSteal=%v: stolen %d < steals %d", force, st.Stolen, st.Steals)
		}
	}
}

// TestParkAndWake checks idle workers park and later waves still run.
func TestParkAndWake(t *testing.T) {
	var n atomic.Int64
	p := New(2, Options{})
	submitWave(p, &n, 10, false)
	// Let both workers drain and park.
	deadline := time.Now().Add(2 * time.Second)
	for p.Stats().Parks == 0 {
		if time.Now().After(deadline) {
			t.Fatal("workers never parked while idle")
		}
		time.Sleep(time.Millisecond)
	}
	submitWave(p, &n, 10, false)
	p.Close()
	if n.Load() != 20 {
		t.Fatalf("ran %d tasks, want 20", n.Load())
	}
}

// TestCloseDrainsQueued checks Close runs tasks still sitting in deques
// (parked submissions included) before returning, and is idempotent.
func TestCloseDrainsQueued(t *testing.T) {
	var n atomic.Int64
	var wg sync.WaitGroup
	p := New(2, Options{})
	const count = 200
	wg.Add(count)
	for i := 0; i < count; i++ {
		p.Submit(&slowTask{n: &n, wg: &wg})
	}
	p.Close()
	p.Close()
	if n.Load() != count {
		t.Fatalf("Close returned with %d of %d tasks run", n.Load(), count)
	}
}

// TestSubmitNilPanics pins the nil-task guard.
func TestSubmitNilPanics(t *testing.T) {
	p := New(1, Options{})
	defer p.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Submit(nil) did not panic")
		}
	}()
	p.Submit(nil)
}

// TestSteadyStateZeroAllocs pins the hot path: once deque rings and
// steal scratch have grown to their high-water mark, submit/run/steal
// cycles allocate nothing. Tasks are preallocated, as the contract
// requires.
func TestSteadyStateZeroAllocs(t *testing.T) {
	var n atomic.Int64
	var wg sync.WaitGroup
	for _, force := range []bool{false, true} {
		p := New(4, Options{ForceSteal: force})
		const burst = 64
		tasks := make([]countTask, burst)
		for i := range tasks {
			tasks[i] = countTask{n: &n, wg: &wg}
		}
		wave := func() {
			wg.Add(burst)
			for i := range tasks {
				p.Submit(&tasks[i])
			}
			wg.Wait()
		}
		// Warm-up: grow rings and scratch to their high-water mark.
		for i := 0; i < 8; i++ {
			wave()
		}
		if allocs := testing.AllocsPerRun(32, wave); allocs != 0 {
			t.Errorf("forceSteal=%v: %.1f allocs per %d-task wave, want 0", force, allocs, burst)
		}
		p.Close()
	}
}
