package rotated

import (
	"context"
	"testing"
)

// LifetimeMC is bit-identical for any worker count, and its statistics
// agree with the sequential Lifetime path at the same physical rate.
func TestLifetimeMCWorkerInvariance(t *testing.T) {
	c, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) Result {
		res, err := c.LifetimeMC(context.Background(), 0.05, 2000, Greedy, 13, workers)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(1)
	if ref.Cycles != 2000 {
		t.Fatalf("accounting wrong: %+v", ref)
	}
	if ref.LogicalErrors == 0 {
		t.Fatal("no logical errors at p=0.05; invariance check is vacuous")
	}
	for _, w := range []int{2, 8} {
		if got := run(w); got != ref {
			t.Errorf("workers=%d: %+v, want %+v", w, got, ref)
		}
	}
}
