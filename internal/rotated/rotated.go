// Package rotated implements the rotated planar surface code — the
// qubit-efficient layout (d² data qubits instead of d²+(d−1)²) that
// production proposals favor — as an extension beyond the paper, which
// evaluates the unrotated layout its per-qubit SFQ mesh is wired for.
//
// The code lives on a d×d grid of data qubits. Weight-4 stabilizers sit
// on the faces of the grid in a checkerboard pattern and weight-2
// stabilizers on alternating boundary edges: Z-type faces detect X
// errors and X-type faces detect Z errors. The package provides the
// geometry, syndrome extraction, greedy and exact matching decoders
// (sharing internal/match), and a lifetime simulator, so the efficiency
// of the two layouts can be compared head to head (cmd/rotated).
package rotated

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/match"
	"repro/internal/mc"
	"repro/internal/noise"
	"repro/internal/pauli"
)

// Code is the distance-d rotated planar surface code.
type Code struct {
	d int
	// checks[i] lists the data qubits of X-check i (X-type stabilizers
	// detect Z errors; the dephasing evaluation needs only this plane).
	checks [][]int
	// pos[i] is the face coordinate of check i, in half-step units.
	pos [][2]int
	// logicalZ is a representative logical-Z support (a row of data
	// qubits crossing between the two X-type boundaries).
	logicalZ []int
	// cut is the logical-X support; odd overlap with a Z-residual marks
	// a logical phase flip.
	cut []int
}

// New builds the distance-d rotated code. Distance must be odd, >= 3.
func New(d int) (*Code, error) {
	if d < 3 || d%2 == 0 {
		return nil, fmt.Errorf("rotated: distance must be odd and >= 3, got %d", d)
	}
	c := &Code{d: d}
	q := func(r, col int) int { return r*d + col }
	// Bulk faces: (r, col) indexes the face whose corners are
	// (r,col),(r,col+1),(r+1,col),(r+1,col+1). X-type faces are those
	// with (r+col) odd (one consistent checkerboard convention).
	for r := 0; r < d-1; r++ {
		for col := 0; col < d-1; col++ {
			if (r+col)%2 == 1 {
				c.checks = append(c.checks, []int{q(r, col), q(r, col+1), q(r+1, col), q(r+1, col+1)})
				c.pos = append(c.pos, [2]int{2*r + 1, 2*col + 1})
			}
		}
	}
	// Boundary weight-2 X-checks live on the top and bottom edges, on
	// the columns that continue the checkerboard: top edge above row 0
	// on faces with (r=-1 + col) odd → col even; bottom edge below row
	// d-1 on faces with (r=d-1 + col) odd.
	for col := 0; col < d-1; col++ {
		if col%2 == 0 {
			c.checks = append(c.checks, []int{q(0, col), q(0, col+1)})
			c.pos = append(c.pos, [2]int{-1, 2*col + 1})
		}
		if (d-1+col)%2 == 1 {
			c.checks = append(c.checks, []int{q(d-1, col), q(d-1, col+1)})
			c.pos = append(c.pos, [2]int{2*d - 1, 2*col + 1})
		}
	}
	// Logical Z: a horizontal row of Z operators crossing left-right.
	for col := 0; col < d; col++ {
		c.logicalZ = append(c.logicalZ, q(0, col))
	}
	// Logical X: a vertical column, anticommuting with logical Z once.
	for r := 0; r < d; r++ {
		c.cut = append(c.cut, q(r, 0))
	}
	return c, nil
}

// Distance returns d.
func (c *Code) Distance() int { return c.d }

// NumData returns d².
func (c *Code) NumData() int { return c.d * c.d }

// NumChecks returns the number of X-type stabilizers, (d²−1)/2.
func (c *Code) NumChecks() int { return len(c.checks) }

// CheckSupport returns the data qubits of check i.
func (c *Code) CheckSupport(i int) []int { return c.checks[i] }

// Syndrome computes the X-check outcomes for a Z-error frame over the
// d² data qubits.
func (c *Code) Syndrome(f *pauli.Frame) ([]bool, error) {
	if f.Len() != c.NumData() {
		return nil, fmt.Errorf("rotated: frame covers %d qubits, code has %d", f.Len(), c.NumData())
	}
	syn := make([]bool, len(c.checks))
	for i, sup := range c.checks {
		syn[i] = f.ParityZ(sup) == 1
	}
	return syn, nil
}

// dist is the matching-graph distance between checks i and j: the
// minimum number of data-qubit Z errors connecting them. On the rotated
// layout checks are diagonal neighbours; in the half-step face
// coordinates that is a Chebyshev distance.
func (c *Code) dist(i, j int) int {
	dr := abs(c.pos[i][0] - c.pos[j][0])
	dc := abs(c.pos[i][1] - c.pos[j][1])
	return maxInt(dr, dc) / 2
}

// boundaryDist is the distance from check i to the nearest X-type
// boundary (the left and right edges absorb Z-error chains).
func (c *Code) boundaryDist(i int) int {
	col := c.pos[i][1]
	left := (col + 1) / 2
	right := (2*c.d - 1 - col) / 2
	return minInt(left, right)
}

// pathQubits returns a minimum-length Z-error chain connecting checks
// i and j. Same-type checks are diagonal neighbours on the rotated
// lattice, so the chain walks diagonally in face coordinates — one
// shared data qubit per step — zig-zagging on the exhausted axis when
// the two displacements differ (their difference is always even).
func (c *Code) pathQubits(i, j int) []int {
	r, col := c.pos[i][0], c.pos[i][1]
	tr, tc := c.pos[j][0], c.pos[j][1]
	var qubits []int
	zig := 1
	for r != tr || col != tc {
		sr, sc := sign(tr-r), sign(tc-col)
		if sr == 0 {
			sr = zig
			if r+2*sr < -1 || r+2*sr > 2*c.d-1 {
				sr = -sr
			}
			zig = -sr
		}
		if sc == 0 {
			sc = zig
			if col+2*sc < -1 || col+2*sc > 2*c.d-1 {
				sc = -sc
			}
			zig = -sc
		}
		qubits = append(qubits, ((r+sr)/2)*c.d+(col+sc)/2)
		r += 2 * sr
		col += 2 * sc
	}
	return qubits
}

// boundaryPathQubits returns the shortest chain from check i to its
// nearest X boundary (left on ties): a horizontal run of data qubits in
// one row of the check's support, whose intermediate face flips cancel
// pairwise by the checkerboard parity.
func (c *Code) boundaryPathQubits(i int) []int {
	r, col := c.pos[i][0], c.pos[i][1]
	step := -1
	if (2*c.d-1-col)/2 < (col+1)/2 {
		step = 1
	}
	row := clampInt((r+1)/2, 0, c.d-1)
	var qubits []int
	for x := col; ; x += 2 * step {
		qc := (x + step) / 2
		if qc < 0 || qc >= c.d {
			break
		}
		qubits = append(qubits, row*c.d+qc)
	}
	return qubits
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func clampInt(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

func sign(x int) int {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	}
	return 0
}

// Method selects the matching algorithm.
type Method uint8

const (
	// Greedy matches sorted candidate pairs greedily.
	Greedy Method = iota
	// Exact solves the matching optimally with the blossom algorithm.
	Exact
)

// Decode matches the hot checks of a syndrome and returns the data
// qubits to correct. The correction always reproduces the syndrome.
func (c *Code) Decode(syn []bool, m Method) ([]int, error) {
	if len(syn) != len(c.checks) {
		return nil, fmt.Errorf("rotated: syndrome has %d checks, code has %d", len(syn), len(c.checks))
	}
	var hot []int
	for i, h := range syn {
		if h {
			hot = append(hot, i)
		}
	}
	n := len(hot)
	if n == 0 {
		return nil, nil
	}
	var qubits []int
	if m == Exact {
		weight := func(u, v int) int64 {
			switch {
			case u < n && v < n:
				return int64(c.dist(hot[u], hot[v]))
			case u >= n && v >= n:
				return 0
			case u < n:
				return int64(c.boundaryDist(hot[u]))
			default:
				return int64(c.boundaryDist(hot[v]))
			}
		}
		mate, _ := match.MinWeightPerfectMatching(2*n, weight)
		for u := 0; u < n; u++ {
			if mate[u] >= n {
				qubits = append(qubits, c.boundaryPathQubits(hot[u])...)
			} else if mate[u] > u {
				qubits = append(qubits, c.pathQubits(hot[u], hot[mate[u]])...)
			}
		}
		return qubits, nil
	}
	type edge struct{ w, i, j int }
	var edges []edge
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			edges = append(edges, edge{c.dist(hot[a], hot[b]), a, b})
		}
		edges = append(edges, edge{c.boundaryDist(hot[a]), a, -1})
	}
	sort.Slice(edges, func(x, y int) bool {
		if edges[x].w != edges[y].w {
			return edges[x].w < edges[y].w
		}
		if (edges[x].j == -1) != (edges[y].j == -1) {
			return edges[y].j == -1
		}
		if edges[x].i != edges[y].i {
			return edges[x].i < edges[y].i
		}
		return edges[x].j < edges[y].j
	})
	matched := make([]bool, n)
	for _, e := range edges {
		if matched[e.i] {
			continue
		}
		if e.j == -1 {
			matched[e.i] = true
			qubits = append(qubits, c.boundaryPathQubits(hot[e.i])...)
			continue
		}
		if matched[e.j] {
			continue
		}
		matched[e.i], matched[e.j] = true, true
		qubits = append(qubits, c.pathQubits(hot[e.i], hot[e.j])...)
	}
	return qubits, nil
}

// Result summarizes a lifetime run.
type Result struct {
	Cycles        int
	LogicalErrors int
	PL            float64
}

// Lifetime runs the dephasing memory experiment on the rotated code.
func (c *Code) Lifetime(p float64, cycles int, m Method, seed int64) (Result, error) {
	ch, err := noise.NewDephasing(p)
	if err != nil {
		return Result{}, err
	}
	rng := noise.NewRand(seed)
	res := pauli.NewFrame(c.NumData())
	targets := make([]int, c.NumData())
	for i := range targets {
		targets[i] = i
	}
	var out Result
	for cyc := 0; cyc < cycles; cyc++ {
		flipped, err := c.runCycle(ch, rng, res, targets, m)
		if err != nil {
			return out, fmt.Errorf("%w at cycle %d", err, cyc)
		}
		if flipped {
			out.LogicalErrors++
		}
		out.Cycles++
	}
	if out.Cycles > 0 {
		out.PL = float64(out.LogicalErrors) / float64(out.Cycles)
	}
	return out, nil
}

// runCycle injects one round of errors, decodes and corrects, verifies
// the syndrome cleared, and reports whether the logical state flipped
// (normalizing the residual by the logical operator when it did).
func (c *Code) runCycle(ch noise.Dephasing, rng *rand.Rand, res *pauli.Frame, targets []int, m Method) (bool, error) {
	ch.Sample(rng, res, targets)
	syn, err := c.Syndrome(res)
	if err != nil {
		return false, err
	}
	corr, err := c.Decode(syn, m)
	if err != nil {
		return false, err
	}
	for _, q := range corr {
		res.Apply(q, pauli.Z)
	}
	left, err := c.Syndrome(res)
	if err != nil {
		return false, err
	}
	for i, hot := range left {
		if hot {
			return false, fmt.Errorf("rotated: check %d hot after correction", i)
		}
	}
	if res.ParityZ(c.cut) == 1 {
		for _, q := range c.logicalZ {
			res.Apply(q, pauli.Z)
		}
		return true, nil
	}
	return false, nil
}

// rotatedShard runs single-cycle lifetime trials on a private frame.
type rotatedShard struct {
	c       *Code
	ch      noise.Dephasing
	m       Method
	res     *pauli.Frame
	targets []int
}

// Trial implements mc.Shard.
func (sh *rotatedShard) Trial(rng *rand.Rand, _ int) (mc.Outcome, error) {
	sh.res.Clear()
	flipped, err := sh.c.runCycle(sh.ch, rng, sh.res, sh.targets, sh.m)
	if err != nil {
		return mc.Outcome{}, err
	}
	return mc.Outcome{Failed: flipped}, nil
}

// LifetimeMC runs the dephasing memory experiment on the sharded
// Monte-Carlo engine: each cycle is an independent trial whose
// randomness is a pure function of (seed, d, p, method, cycle index),
// so the result is bit-identical for any worker count.
func (c *Code) LifetimeMC(ctx context.Context, p float64, cycles int, m Method, seed int64, workers int) (Result, error) {
	ch, err := noise.NewDephasing(p)
	if err != nil {
		return Result{}, err
	}
	spec := mc.PointSpec{
		ID:     mc.DeriveID(uint64(c.d), math.Float64bits(p), uint64(m)),
		Trials: cycles,
		NewShard: func() (mc.Shard, error) {
			targets := make([]int, c.NumData())
			for i := range targets {
				targets[i] = i
			}
			return &rotatedShard{
				c: c, ch: ch, m: m,
				res: pauli.NewFrame(c.NumData()), targets: targets,
			}, nil
		},
	}
	tallies, err := mc.Run(ctx, mc.Config{RootSeed: seed, Workers: workers}, []mc.PointSpec{spec})
	if err != nil {
		return Result{}, err
	}
	t := tallies[0]
	out := Result{Cycles: t.Trials, LogicalErrors: t.Failures}
	if t.Trials > 0 {
		out.PL = float64(t.Failures) / float64(t.Trials)
	}
	return out, nil
}
