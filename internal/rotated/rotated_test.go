package rotated

import (
	"testing"

	"repro/internal/noise"
	"repro/internal/pauli"
)

func TestNewValidation(t *testing.T) {
	for _, d := range []int{0, 2, 4} {
		if _, err := New(d); err == nil {
			t.Errorf("New(%d) accepted", d)
		}
	}
}

func TestCounts(t *testing.T) {
	for _, d := range []int{3, 5, 7, 9} {
		c, err := New(d)
		if err != nil {
			t.Fatal(err)
		}
		if c.Distance() != d || c.NumData() != d*d {
			t.Errorf("d=%d basic counts wrong", d)
		}
		if got, want := c.NumChecks(), (d*d-1)/2; got != want {
			t.Errorf("d=%d NumChecks=%d want %d", d, got, want)
		}
		for i := 0; i < c.NumChecks(); i++ {
			if n := len(c.CheckSupport(i)); n != 2 && n != 4 {
				t.Errorf("d=%d check %d has weight %d", d, i, n)
			}
		}
	}
}

// Logical Z must be invisible to every X check and anticommute with the
// logical X cut exactly once.
func TestLogicalOperator(t *testing.T) {
	for _, d := range []int{3, 5, 7} {
		c, err := New(d)
		if err != nil {
			t.Fatal(err)
		}
		f := pauli.NewFrame(c.NumData())
		for _, q := range c.logicalZ {
			f.Set(q, pauli.Z)
		}
		syn, err := c.Syndrome(f)
		if err != nil {
			t.Fatal(err)
		}
		for i, hot := range syn {
			if hot {
				t.Fatalf("d=%d logical Z triggers check %d", d, i)
			}
		}
		if f.ParityZ(c.cut) != 1 {
			t.Fatalf("d=%d logical Z does not cross the cut", d)
		}
		if len(c.logicalZ) != d {
			t.Fatalf("d=%d logical weight %d", d, len(c.logicalZ))
		}
	}
}

// Each data qubit must flip at most two X checks (the checkerboard
// property the path constructions rely on).
func TestSingleErrorSyndromes(t *testing.T) {
	for _, d := range []int{3, 5, 7} {
		c, err := New(d)
		if err != nil {
			t.Fatal(err)
		}
		for q := 0; q < c.NumData(); q++ {
			f := pauli.NewFrame(c.NumData())
			f.Set(q, pauli.Z)
			syn, err := c.Syndrome(f)
			if err != nil {
				t.Fatal(err)
			}
			hot := 0
			for _, h := range syn {
				if h {
					hot++
				}
			}
			if hot < 1 || hot > 2 {
				t.Fatalf("d=%d qubit %d flips %d checks", d, q, hot)
			}
		}
	}
}

// The fundamental decoder invariant on the rotated layout: corrections
// from both methods reproduce random syndromes exactly.
func TestDecodeClearsRandomSyndromes(t *testing.T) {
	rng := noise.NewRand(21)
	for _, d := range []int{3, 5, 7, 9} {
		c, err := New(d)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []float64{0.02, 0.08, 0.15} {
			ch, err := noise.NewDephasing(p)
			if err != nil {
				t.Fatal(err)
			}
			targets := make([]int, c.NumData())
			for i := range targets {
				targets[i] = i
			}
			for trial := 0; trial < 40; trial++ {
				f := pauli.NewFrame(c.NumData())
				ch.Sample(rng, f, targets)
				syn, err := c.Syndrome(f)
				if err != nil {
					t.Fatal(err)
				}
				for _, m := range []Method{Greedy, Exact} {
					corr, err := c.Decode(syn, m)
					if err != nil {
						t.Fatal(err)
					}
					res := f.Clone()
					for _, q := range corr {
						res.Apply(q, pauli.Z)
					}
					left, err := c.Syndrome(res)
					if err != nil {
						t.Fatal(err)
					}
					for i, hot := range left {
						if hot {
							t.Fatalf("d=%d p=%v %v trial=%d: check %d hot after correction",
								d, p, m, trial, i)
						}
					}
				}
			}
		}
	}
}

// Distance metric sanity: diagonal neighbours at 1; the path length
// equals the distance.
func TestDistAndPathAgree(t *testing.T) {
	c, err := New(7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < c.NumChecks(); i++ {
		for j := i + 1; j < c.NumChecks(); j++ {
			path := c.pathQubits(i, j)
			if len(path) != c.dist(i, j) {
				t.Fatalf("checks %d-%d: path %d, dist %d", i, j, len(path), c.dist(i, j))
			}
		}
		bp := c.boundaryPathQubits(i)
		if len(bp) != c.boundaryDist(i) {
			t.Fatalf("check %d: boundary path %d, dist %d", i, len(bp), c.boundaryDist(i))
		}
	}
}

// Lifetime: distance suppression below threshold and determinism.
func TestLifetimeSuppression(t *testing.T) {
	pl := func(d int) float64 {
		c, err := New(d)
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Lifetime(0.04, 30000, Exact, 31)
		if err != nil {
			t.Fatal(err)
		}
		if res.LogicalErrors < 5 {
			t.Fatalf("d=%d only %d errors; underpowered", d, res.LogicalErrors)
		}
		return res.PL
	}
	p3, p5 := pl(3), pl(5)
	if p5 >= p3 {
		t.Errorf("PL(5)=%v >= PL(3)=%v below threshold", p5, p3)
	}
	c, _ := New(3)
	a, err := c.Lifetime(0.05, 500, Greedy, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Lifetime(0.05, 500, Greedy, 9)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("lifetime not deterministic")
	}
}
