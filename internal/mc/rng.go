package mc

import "math/rand"

// Stream is a splittable, counter-based pseudo-random source
// (SplitMix64): its state is a pure function of (rootSeed, pointID,
// trialIndex), so the random sequence a trial consumes is identical no
// matter which worker, shard, or scheduling order executed it. That
// property is the foundation of the engine's bit-reproducibility
// contract.
//
// Stream implements rand.Source64; wrap it in rand.New to drive the
// noise channels. The generator passes the package's chi-squared
// uniformity and adjacent-stream correlation tests; it is not
// cryptographic.
type Stream struct {
	state uint64
}

// golden is the SplitMix64 increment, ⌊2⁶⁴/φ⌋ (odd).
const golden = 0x9e3779b97f4a7c15

// mix64 is the SplitMix64 finalizer: a bijective avalanche mixer.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewStream returns the stream for trial trialIndex of point pointID
// under rootSeed.
func NewStream(rootSeed, pointID, trialIndex int64) *Stream {
	s := &Stream{}
	s.Reset(rootSeed, pointID, trialIndex)
	return s
}

// Reset rewinds the stream to the start of the (rootSeed, pointID,
// trialIndex) sequence. Shards reuse one Stream across trials by
// resetting between them.
func (s *Stream) Reset(rootSeed, pointID, trialIndex int64) {
	h := mix64(uint64(rootSeed))
	h = mix64(h ^ mix64(uint64(pointID)+golden))
	h = mix64(h ^ mix64(uint64(trialIndex)+0xbf58476d1ce4e5b9))
	s.state = h
}

// Uint64 implements rand.Source64.
func (s *Stream) Uint64() uint64 {
	s.state += golden
	return mix64(s.state)
}

// Int63 implements rand.Source.
func (s *Stream) Int63() int64 { return int64(s.Uint64() >> 1) }

// Seed implements rand.Source. Prefer Reset, which keys the full
// (root, point, trial) triple.
func (s *Stream) Seed(seed int64) { s.state = mix64(uint64(seed)) }

// NewRand wraps the trial stream in a *rand.Rand ready for the noise
// channels.
func NewRand(rootSeed, pointID, trialIndex int64) *rand.Rand {
	return rand.New(NewStream(rootSeed, pointID, trialIndex))
}

// DeriveID hashes the values identifying a point (code distance, the
// bits of its error rate, …) into a stable point ID. Keying streams by
// DeriveID rather than slice position makes a point's result a pure
// function of its parameters — invariant under reordering, insertion
// or removal of other points in the sweep.
func DeriveID(vals ...uint64) int64 {
	h := uint64(golden)
	for _, v := range vals {
		h = mix64(h ^ mix64(v+golden))
	}
	return int64(h)
}
