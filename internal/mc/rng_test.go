package mc

import (
	"math"
	"math/rand"
	"testing"
)

func TestStreamIsPureFunctionOfKey(t *testing.T) {
	a := NewStream(1, 2, 3)
	b := NewStream(1, 2, 3)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("identical keys diverged at draw %d", i)
		}
	}
	// Reset rewinds exactly.
	a.Reset(1, 2, 3)
	b = NewStream(1, 2, 3)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("Reset did not rewind (draw %d)", i)
		}
	}
	// Any coordinate change moves the stream.
	base := NewStream(1, 2, 3).Uint64()
	for _, s := range []*Stream{NewStream(2, 2, 3), NewStream(1, 3, 3), NewStream(1, 2, 4)} {
		if s.Uint64() == base {
			t.Error("changed key reproduced the base stream's first draw")
		}
	}
}

func TestStreamImplementsSource64(t *testing.T) {
	rng := rand.New(NewStream(7, 0, 0))
	v := rng.Float64()
	if v < 0 || v >= 1 {
		t.Fatalf("Float64 = %v out of [0,1)", v)
	}
	s := NewStream(7, 0, 0)
	if got := s.Int63(); got < 0 {
		t.Fatalf("Int63 = %d negative", got)
	}
}

// Satellite: chi-squared uniformity across adjacent trial streams. The
// first draws of consecutive trials must look jointly uniform — this is
// exactly the set of values a sharded sweep consumes.
func TestAdjacentStreamUniformityChiSquared(t *testing.T) {
	const (
		bins    = 64
		streams = 4096
		draws   = 4
		n       = streams * draws
	)
	counts := make([]int, bins)
	for trial := 0; trial < streams; trial++ {
		s := NewStream(12345, 42, int64(trial))
		for d := 0; d < draws; d++ {
			counts[s.Uint64()>>58]++ // top 6 bits select the bin
		}
	}
	expected := float64(n) / bins
	chi2 := 0.0
	for _, c := range counts {
		diff := float64(c) - expected
		chi2 += diff * diff / expected
	}
	// χ² with 63 dof has mean 63, σ = √126 ≈ 11.2; ±5σ is a
	// deterministic-seed-safe acceptance window.
	df := float64(bins - 1)
	sigma := math.Sqrt(2 * df)
	if chi2 < df-5*sigma || chi2 > df+5*sigma {
		t.Errorf("chi-squared = %.1f outside [%.1f, %.1f]", chi2, df-5*sigma, df+5*sigma)
	}
}

// Satellite: adjacent trial streams (and adjacent point streams) are
// uncorrelated — Pearson r of paired first draws is consistent with 0.
func TestAdjacentStreamsUncorrelated(t *testing.T) {
	const n = 10000
	pearson := func(xs, ys []float64) float64 {
		var sx, sy float64
		for i := range xs {
			sx += xs[i]
			sy += ys[i]
		}
		mx, my := sx/float64(len(xs)), sy/float64(len(ys))
		var sxy, sxx, syy float64
		for i := range xs {
			dx, dy := xs[i]-mx, ys[i]-my
			sxy += dx * dy
			sxx += dx * dx
			syy += dy * dy
		}
		return sxy / math.Sqrt(sxx*syy)
	}
	first := func(point, trial int64) float64 {
		return rand.New(NewStream(99, point, trial)).Float64()
	}
	var xt, xt1, yp []float64
	for i := 0; i < n; i++ {
		xt = append(xt, first(0, int64(i)))
		xt1 = append(xt1, first(0, int64(i)+1))
		yp = append(yp, first(1, int64(i)))
	}
	// 5σ for Pearson r of n uncorrelated samples is ≈ 5/√n = 0.05.
	if r := pearson(xt, xt1); math.Abs(r) > 0.05 {
		t.Errorf("adjacent-trial correlation r = %.4f", r)
	}
	if r := pearson(xt, yp); math.Abs(r) > 0.05 {
		t.Errorf("adjacent-point correlation r = %.4f", r)
	}
}

func TestDeriveIDStable(t *testing.T) {
	if DeriveID(3, 42) != DeriveID(3, 42) {
		t.Error("DeriveID not deterministic")
	}
	if DeriveID(3, 42) == DeriveID(42, 3) {
		t.Error("DeriveID ignores argument order")
	}
	if DeriveID(3) == DeriveID(3, 0) {
		t.Error("DeriveID ignores arity")
	}
}
