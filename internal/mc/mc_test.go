package mc

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

// coinShard fails a trial when the first draw of its stream falls below
// rate. Pure function of the rng, as the Shard contract requires.
func coinShard(rate float64) func() (Shard, error) {
	return func() (Shard, error) {
		return ShardFunc(func(rng *rand.Rand, t int) (Outcome, error) {
			return Outcome{Failed: rng.Float64() < rate, Aux: int64(t % 3)}, nil
		}), nil
	}
}

func coinSpecs() []PointSpec {
	var specs []PointSpec
	for i, rate := range []float64{0.02, 0.1, 0.5} {
		specs = append(specs, PointSpec{
			ID:       DeriveID(uint64(i) + 7),
			Trials:   5000,
			NewShard: coinShard(rate),
		})
	}
	return specs
}

func runCoin(t *testing.T, cfg Config, specs []PointSpec) []Result {
	t.Helper()
	res, err := Run(context.Background(), cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// Satellite: cross-worker determinism. Results must be bit-identical
// for every (Workers, ShardSize) combination and for shuffled spec
// order.
func TestRunDeterministicAcrossWorkersAndSharding(t *testing.T) {
	ref := runCoin(t, Config{RootSeed: 11, Workers: 1}, coinSpecs())
	combos := []struct{ workers, shardSize int }{
		{1, 0}, {2, 17}, {8, 64}, {3, 1}, {8, 0},
	}
	for _, c := range combos {
		got := runCoin(t, Config{RootSeed: 11, Workers: c.workers, ShardSize: c.shardSize}, coinSpecs())
		for i := range ref {
			if got[i] != ref[i] {
				t.Errorf("workers=%d shard=%d: point %d = %+v, want %+v",
					c.workers, c.shardSize, i, got[i], ref[i])
			}
		}
	}

	// Shuffled spec order: per-ID results unchanged.
	specs := coinSpecs()
	shuffled := []PointSpec{specs[2], specs[0], specs[1]}
	got := runCoin(t, Config{RootSeed: 11, Workers: 4}, shuffled)
	byID := map[int64]Result{}
	for _, r := range ref {
		byID[r.ID] = r
	}
	for _, r := range got {
		if r != byID[r.ID] {
			t.Errorf("shuffled order: id %d = %+v, want %+v", r.ID, r, byID[r.ID])
		}
	}
}

func TestRunSeedAndIDMatter(t *testing.T) {
	a := runCoin(t, Config{RootSeed: 1, Workers: 2}, coinSpecs())
	b := runCoin(t, Config{RootSeed: 2, Workers: 2}, coinSpecs())
	same := true
	for i := range a {
		if a[i].Failures != b[i].Failures {
			same = false
		}
	}
	if same {
		t.Error("changing RootSeed left every tally unchanged")
	}
	// Equal IDs replay identical streams (the head-to-head property).
	sp := coinSpecs()[1]
	twin := sp
	x := runCoin(t, Config{RootSeed: 5, Workers: 3}, []PointSpec{sp, twin})
	if x[0] != x[1] {
		t.Errorf("equal IDs diverged: %+v vs %+v", x[0], x[1])
	}
}

// Satellite: adaptive stopping is deterministic — trials spent lands on
// a checkpoint value, is under budget for an easy point, and is
// identical across worker counts.
func TestAdaptiveStoppingDeterministic(t *testing.T) {
	// Crude but monotone interval: rate ± 1.96·sqrt(rate/n).
	interval := func(k, n int) (float64, float64) {
		if n == 0 {
			return 0, 1
		}
		rate := float64(k) / float64(n)
		w := 1.96 * rate / float64(n) * 100
		return rate - w, rate + w
	}
	spec := []PointSpec{{ID: 3, Trials: 1 << 20, NewShard: coinShard(0.5)}}
	cfg := Config{
		RootSeed:       9,
		MinTrials:      500,
		TargetRelWidth: 0.2,
		Interval:       interval,
	}
	var ref []Result
	for _, w := range []int{1, 2, 8} {
		cfg.Workers = w
		got := runCoin(t, cfg, spec)
		if got[0].Trials >= spec[0].Trials {
			t.Fatalf("workers=%d: no early stop (%d trials)", w, got[0].Trials)
		}
		// Trials spent must sit on the checkpoint schedule 500·2^k.
		n := got[0].Trials
		for n > 500 {
			if n%2 != 0 {
				t.Fatalf("workers=%d: %d trials is not a checkpoint value", w, got[0].Trials)
			}
			n /= 2
		}
		if n != 500 {
			t.Fatalf("workers=%d: %d trials is not a checkpoint value", w, got[0].Trials)
		}
		if ref == nil {
			ref = got
		} else if got[0] != ref[0] {
			t.Errorf("workers=%d: %+v, want %+v", w, got[0], ref[0])
		}
	}
}

// Satellite: worker errors are all collected (errors.Join) and reported
// deterministically, not first-error-wins.
func TestRunJoinsAllPointErrors(t *testing.T) {
	bad := func(msg string) func() (Shard, error) {
		return func() (Shard, error) {
			return ShardFunc(func(rng *rand.Rand, t int) (Outcome, error) {
				return Outcome{}, errors.New(msg)
			}), nil
		}
	}
	specs := []PointSpec{
		{ID: 1, Trials: 10, NewShard: bad("first kind of failure")},
		{ID: 2, Trials: 10, NewShard: coinShard(0.5)},
		{ID: 3, Trials: 10, NewShard: bad("second kind of failure")},
	}
	for _, w := range []int{1, 4} {
		_, err := Run(context.Background(), Config{RootSeed: 1, Workers: w}, specs)
		if err == nil {
			t.Fatalf("workers=%d: expected error", w)
		}
		for _, want := range []string{"first kind of failure", "second kind of failure"} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("workers=%d: error %q misses %q", w, err, want)
			}
		}
	}
	// Shard construction failures are reported too.
	_, err := Run(context.Background(), Config{RootSeed: 1, Workers: 2}, []PointSpec{{
		ID: 9, Trials: 10,
		NewShard: func() (Shard, error) { return nil, errors.New("no shard for you") },
	}})
	if err == nil || !strings.Contains(err.Error(), "no shard for you") {
		t.Errorf("NewShard error not surfaced: %v", err)
	}
}

func TestRunValidation(t *testing.T) {
	ok := coinShard(0.5)
	cases := []struct {
		name  string
		cfg   Config
		specs []PointSpec
	}{
		{"zero trials", Config{}, []PointSpec{{ID: 1, Trials: 0, NewShard: ok}}},
		{"nil NewShard", Config{}, []PointSpec{{ID: 1, Trials: 10}}},
		{"relwidth without interval", Config{TargetRelWidth: 0.1},
			[]PointSpec{{ID: 1, Trials: 10, NewShard: ok}}},
	}
	for _, c := range cases {
		if _, err := Run(context.Background(), c.cfg, c.specs); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	// Empty spec list is a no-op, not an error.
	res, err := Run(context.Background(), Config{}, nil)
	if err != nil || res != nil {
		t.Errorf("empty run: %v, %v", res, err)
	}
}

func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var once sync.Once
	spec := []PointSpec{{
		ID: 1, Trials: 1 << 30,
		NewShard: func() (Shard, error) {
			return ShardFunc(func(rng *rand.Rand, t int) (Outcome, error) {
				once.Do(func() { close(started) })
				return Outcome{Failed: rng.Float64() < 0.5}, nil
			}), nil
		},
	}}
	go func() {
		<-started
		cancel()
	}()
	_, err := Run(ctx, Config{RootSeed: 1, Workers: 2}, spec)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestProgressCallback(t *testing.T) {
	interval := func(k, n int) (float64, float64) { return 0, 1 } // never tight
	var mu sync.Mutex
	got := map[int64][]Progress{}
	cfg := Config{
		RootSeed:       4,
		Workers:        4,
		MinTrials:      256,
		TargetRelWidth: 0.001,
		Interval:       interval,
		Progress: func(p Progress) {
			mu.Lock()
			got[p.ID] = append(got[p.ID], p)
			mu.Unlock()
		},
	}
	specs := []PointSpec{
		{ID: 10, Trials: 1000, NewShard: coinShard(0.3)},
		{ID: 20, Trials: 2000, NewShard: coinShard(0.3)},
	}
	runCoin(t, cfg, specs)
	for _, sp := range specs {
		ps := got[sp.ID]
		if len(ps) == 0 {
			t.Fatalf("id %d: no progress reports", sp.ID)
		}
		for i, p := range ps {
			if i > 0 && p.Trials <= ps[i-1].Trials {
				t.Errorf("id %d: trials not increasing: %+v after %+v", sp.ID, p, ps[i-1])
			}
			if p.Target != sp.Trials {
				t.Errorf("id %d: target %d, want %d", sp.ID, p.Target, sp.Trials)
			}
			if p.Done != (i == len(ps)-1) {
				t.Errorf("id %d: report %d Done=%v", sp.ID, i, p.Done)
			}
		}
		if last := ps[len(ps)-1]; last.Trials != sp.Trials {
			t.Errorf("id %d: final report at %d trials, want %d", sp.ID, last.Trials, sp.Trials)
		}
	}
}

func TestAuxTallied(t *testing.T) {
	specs := []PointSpec{{ID: 1, Trials: 999, NewShard: coinShard(0)}}
	res := runCoin(t, Config{RootSeed: 1, Workers: 4, ShardSize: 10}, specs)
	// coinShard returns Aux = t % 3: sum over t in [0, 999).
	var want int64
	for tr := 0; tr < 999; tr++ {
		want += int64(tr % 3)
	}
	if res[0].Aux != want {
		t.Errorf("Aux = %d, want %d", res[0].Aux, want)
	}
	if res[0].Failures != 0 {
		t.Errorf("Failures = %d, want 0", res[0].Failures)
	}
}

func ExampleRun() {
	specs := []PointSpec{{
		ID:     DeriveID(3), // derive from point parameters, not position
		Trials: 10000,
		NewShard: func() (Shard, error) {
			return ShardFunc(func(rng *rand.Rand, t int) (Outcome, error) {
				return Outcome{Failed: rng.Float64() < 0.25}, nil
			}), nil
		},
	}}
	res, _ := Run(context.Background(), Config{RootSeed: 1, Workers: 8}, specs)
	fmt.Println(res[0].Trials)
	// Output: 10000
}

// TestReleaseReturnsEveryShard checks that Release receives every shard
// NewShard built — exactly once each — after the point finishes, for
// both full-budget and mid-batch-error points.
func TestReleaseReturnsEveryShard(t *testing.T) {
	var mu sync.Mutex
	built := map[Shard]int{}
	released := map[Shard]int{}
	spec := PointSpec{
		ID:     DeriveID(1),
		Trials: 4000,
		NewShard: func() (Shard, error) {
			sh := ShardFunc(func(rng *rand.Rand, tt int) (Outcome, error) {
				return Outcome{Failed: rng.Float64() < 0.1}, nil
			})
			mu.Lock()
			built[&sh]++
			mu.Unlock()
			return &sh, nil
		},
		Release: func(sh Shard) {
			mu.Lock()
			released[sh]++
			mu.Unlock()
		},
	}
	if _, err := Run(context.Background(), Config{RootSeed: 5, Workers: 4, ShardSize: 100}, []PointSpec{spec}); err != nil {
		t.Fatal(err)
	}
	if len(built) == 0 {
		t.Fatal("no shards built")
	}
	if len(released) != len(built) {
		t.Fatalf("released %d distinct shards, built %d", len(released), len(built))
	}
	for sh, n := range released {
		if n != 1 {
			t.Fatalf("shard released %d times", n)
		}
		if built[sh] != 1 {
			t.Fatalf("released a shard that was never built")
		}
	}
}

// TestReleaseOnPointError checks shards are still reclaimed when a
// trial fails partway through the point.
func TestReleaseOnPointError(t *testing.T) {
	var mu sync.Mutex
	builtN, releasedN := 0, 0
	spec := PointSpec{
		ID:     DeriveID(2),
		Trials: 2000,
		NewShard: func() (Shard, error) {
			mu.Lock()
			builtN++
			mu.Unlock()
			return ShardFunc(func(rng *rand.Rand, tt int) (Outcome, error) {
				if tt == 999 {
					return Outcome{}, errors.New("boom")
				}
				return Outcome{}, nil
			}), nil
		},
		Release: func(Shard) {
			mu.Lock()
			releasedN++
			mu.Unlock()
		},
	}
	if _, err := Run(context.Background(), Config{RootSeed: 5, Workers: 3, ShardSize: 50}, []PointSpec{spec}); err == nil {
		t.Fatal("expected point error")
	}
	mu.Lock()
	defer mu.Unlock()
	if releasedN != builtN {
		t.Fatalf("released %d shards, built %d", releasedN, builtN)
	}
}
