// Package mc is the shared, sharded Monte-Carlo execution engine behind
// every sweep in this repository (Fig. 10 threshold curves, Table IV/V,
// the SQV machine simulation, and the space-time and rotated-layout
// extensions).
//
// The engine runs a set of points, each a budget of independent trials.
// Two levels of parallelism are exposed to one worker pool sized from
// GOMAXPROCS: points run concurrently with each other, and the trials
// inside a point are split into shards that also run concurrently, so a
// single large point (d = 9, 10⁵ cycles) no longer serializes on one
// goroutine.
//
// Reproducibility contract: every trial draws its randomness from a
// counter-based stream that is a pure function of (RootSeed, PointSpec.ID,
// trial index) — see Stream — and trials are aggregated by commutative
// tallies. Results are therefore bit-identical regardless of Workers,
// ShardSize, or scheduling order, which the cross-worker determinism
// regression tests assert.
//
// Adaptive early stopping halts a point once its confidence interval
// (the caller supplies the interval, e.g. stats.WilsonInterval) is
// tighter than TargetRelWidth relative to the measured rate. Stopping
// decisions are evaluated only at a deterministic checkpoint schedule
// (MinTrials, 2·MinTrials, 4·MinTrials, …), so the trials-spent count
// is itself reproducible.
package mc

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/sched"
)

// Outcome is the result of one trial.
type Outcome struct {
	// Failed marks the event being counted (e.g. a logical error this
	// cycle). The engine tallies failures per point.
	Failed bool
	// Aux is an auxiliary counter summed across trials (e.g. forced
	// completions, or cycles-to-failure for stopping-time experiments).
	Aux int64
}

// Shard executes trials sequentially on private state (its own
// simulator, decoder, frame). The engine creates shards with
// PointSpec.NewShard and reuses them across batches of the same point;
// a shard is never used from two goroutines at once. Single ownership
// is also what makes the zero-allocation decode path safe: a shard's
// simulator carries one decodepool.Scratch, warm after the first few
// trials, and no other shard ever touches it.
type Shard interface {
	// Trial runs trial index t. rng is positioned at the start of the
	// trial's private stream; the outcome must depend only on rng and t,
	// never on which trials the shard ran before (reset any carried
	// state first).
	Trial(rng *rand.Rand, t int) (Outcome, error)
}

// ShardFunc adapts a stateless function to the Shard interface.
type ShardFunc func(rng *rand.Rand, t int) (Outcome, error)

// Trial implements Shard.
func (f ShardFunc) Trial(rng *rand.Rand, t int) (Outcome, error) { return f(rng, t) }

// BatchShard is a Shard that can advance several trials per call —
// e.g. a simulator whose decoder packs independent syndromes into SWAR
// lanes. The engine uses it only when Config.Batch is set and
// BatchSize exceeds 1; results must be bit-identical either way, which
// the reproducibility contract makes possible: each trial of a batch
// receives its own counter-based stream, positioned exactly as the
// scalar path would position it.
type BatchShard interface {
	Shard
	// BatchSize reports the shard's native batch width. A width of 1
	// (or less) disables chunking for this shard.
	BatchSize() int
	// TrialBatch runs trials lo, lo+1, …, lo+len(rngs)-1. rngs[i] is
	// positioned at the start of trial lo+i's private stream; out[i]
	// receives its outcome. len(out) == len(rngs); the final chunk of a
	// shard may be narrower than BatchSize.
	TrialBatch(rngs []*rand.Rand, lo int, out []Outcome) error
}

// PointSpec describes one point of a sweep.
type PointSpec struct {
	// ID keys the point's random streams (with RootSeed). Use DeriveID
	// from the point's parameters so results are invariant under sweep
	// reordering. Distinct points should have distinct IDs; equal IDs
	// deliberately replay identical streams (decoder head-to-heads).
	ID int64
	// Trials is the maximum trial budget (> 0).
	Trials int
	// NewShard builds private per-shard state. It is called at most
	// once per concurrently running shard of this point.
	NewShard func() (Shard, error)
	// ShardSize overrides the engine's shard sizing for this point
	// (e.g. 1 shard for a point whose state is expensive to build).
	ShardSize int
	// Release, when non-nil, receives every shard state NewShard built
	// for this point once the point finishes (budget spent, CI tight
	// enough, or failed). Use it to return pooled resources — decoder
	// meshes, scratch arenas — to their free lists for the next point.
	Release func(Shard)
}

// Progress reports one point's cumulative tally after a checkpoint.
type Progress struct {
	Point    int   // index into the spec slice
	ID       int64 // PointSpec.ID
	Trials   int   // trials completed so far
	Target   int   // trial budget
	Failures int   // failures so far
	Done     bool  // point finished (budget exhausted or CI tight enough)
	// TrialNs summarizes the point's wall-clock per-trial latency
	// distribution up to this checkpoint. It is populated only when
	// Config.Obs is set (timing trials costs two clock reads each);
	// otherwise TrialNs is the zero Summary.
	TrialNs obs.Summary
}

// Config drives a Run.
type Config struct {
	// RootSeed seeds every stream of the run.
	RootSeed int64
	// Workers bounds concurrently executing shards across all points;
	// 0 means GOMAXPROCS.
	Workers int
	// ShardSize fixes the trials per shard; 0 sizes shards to a few
	// tasks per worker. Results never depend on this, only throughput.
	ShardSize int
	// TargetRelWidth, when > 0, stops a point early once its interval
	// half-spread satisfies hi−lo ≤ TargetRelWidth·(failures/trials).
	// Points with zero failures run their full budget.
	TargetRelWidth float64
	// Interval maps (failures, trials) to a confidence interval; it is
	// required when TargetRelWidth > 0 (pass stats.WilsonInterval at
	// the caller's z).
	Interval func(k, n int) (lo, hi float64)
	// MinTrials is the first early-stopping checkpoint (default 1000);
	// later checkpoints double until the budget is reached.
	MinTrials int
	// Progress, when non-nil, receives a Progress after every
	// checkpoint of every point. Calls run under an engine-wide mutex:
	// no two invocations overlap, but a slow callback stalls the
	// checkpoint processing of EVERY concurrently running point, not
	// just its own. Callbacks that block (network writes, scrapes)
	// should be wrapped with AsyncProgress, which hands reports to a
	// dedicated goroutine and never blocks the engine.
	Progress func(Progress)
	// Batch routes shards that implement BatchShard through their
	// chunked TrialBatch path (trial streams and tallies are unchanged,
	// so results stay bit-identical with Batch on or off — the
	// determinism regression tests assert it). Shards that don't
	// implement BatchShard, or whose BatchSize is 1, run scalar.
	Batch bool
	// Obs, when non-nil, receives engine telemetry: the mc_trials_total
	// and mc_failures_total counters and the mc_trial_ns wall-clock
	// latency histogram. Each shard records into a private obs.Local
	// and publishes as it retires — counters and histogram move
	// together on a live scrape — so results stay bit-identical and
	// the hot loop stays allocation-free whether or not Obs is set.
	Obs *obs.Registry
	// ForceSteal makes the scheduler's workers steal before draining
	// their own deques (see sched.Options.ForceSteal). Results are
	// schedule-independent, so this only exists for the determinism and
	// race tests to maximize cross-worker task migration.
	ForceSteal bool
	// SchedStats, when non-nil, receives the scheduler's counter
	// snapshot when the run finishes.
	SchedStats *sched.Stats
}

// Result is one point's aggregate tally.
type Result struct {
	ID       int64
	Trials   int   // trials actually spent (≤ budget under early stopping)
	Failures int   // failed-trial count
	Aux      int64 // summed Outcome.Aux
}

// cancelCheckEvery bounds how many trials a shard runs between
// context-cancellation checks.
const cancelCheckEvery = 256

type engine struct {
	cfg       Config
	workers   int
	minTrials int
	pool      *sched.Pool
	mu        sync.Mutex // serializes Progress callbacks

	// Telemetry, nil unless cfg.Obs is set.
	obsTrialNs  *obs.Histogram // process-wide mc_trial_ns
	obsTrials   *obs.Counter
	obsFailures *obs.Counter
}

// Run executes the sweep and returns one Result per spec, in spec
// order. On failure it returns the errors of every failed point joined
// in point order (errors.Join), never a partial result set.
func Run(ctx context.Context, cfg Config, specs []PointSpec) ([]Result, error) {
	for i, sp := range specs {
		if sp.Trials <= 0 {
			return nil, fmt.Errorf("mc: point %d (id %d): Trials must be positive", i, sp.ID)
		}
		if sp.NewShard == nil {
			return nil, fmt.Errorf("mc: point %d (id %d): NewShard is required", i, sp.ID)
		}
	}
	if cfg.TargetRelWidth > 0 && cfg.Interval == nil {
		return nil, fmt.Errorf("mc: TargetRelWidth needs an Interval function")
	}
	if len(specs) == 0 {
		return nil, nil
	}
	e := &engine{cfg: cfg, workers: cfg.Workers, minTrials: cfg.MinTrials}
	if e.workers <= 0 {
		e.workers = runtime.GOMAXPROCS(0)
	}
	if e.minTrials <= 0 {
		e.minTrials = 1000
	}
	if cfg.Obs != nil {
		e.obsTrialNs = cfg.Obs.Histogram("mc_trial_ns")
		e.obsTrials = cfg.Obs.Counter("mc_trials_total")
		e.obsFailures = cfg.Obs.Counter("mc_failures_total")
	}
	// The work-stealing pool replaces the old fixed channel fan-out:
	// every point's shards land in per-worker deques, and a worker that
	// drains a cheap point steals from one still grinding through an
	// expensive one, so mixed-cost sweeps keep every worker busy.
	e.pool = sched.New(e.workers, sched.Options{ForceSteal: cfg.ForceSteal})
	results := make([]Result, len(specs))
	errs := make([]error, len(specs))
	var pointWG sync.WaitGroup
	for i := range specs {
		pointWG.Add(1)
		go func(i int) {
			defer pointWG.Done()
			results[i], errs[i] = e.runPoint(ctx, i, specs[i])
		}(i)
	}
	pointWG.Wait()
	e.pool.Close()
	if cfg.SchedStats != nil {
		*cfg.SchedStats = e.pool.Stats()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return results, nil
}

// runPoint drives one point through its checkpoint schedule.
func (e *engine) runPoint(ctx context.Context, idx int, sp PointSpec) (Result, error) {
	res := Result{ID: sp.ID}
	var pointNs *obs.Histogram // this point's trial-latency distribution
	if e.obsTrialNs != nil {
		pointNs = obs.NewHistogram()
	}
	idle := make(chan Shard, e.workers) // shard states reused across batches
	if sp.Release != nil {
		// At most e.workers shards ever exist per point, and after every
		// batch's wg.Wait each one sits in the idle channel (capacity ==
		// workers, so the non-blocking put never drops), so draining idle
		// here hands every shard back exactly once.
		defer func() {
			for {
				select {
				case sh := <-idle:
					sp.Release(sh)
				default:
					return
				}
			}
		}()
	}
	for res.Trials < sp.Trials {
		hi := sp.Trials
		if e.cfg.TargetRelWidth > 0 {
			// Deterministic checkpoints: minTrials, then doubling.
			next := e.minTrials
			for next <= res.Trials {
				next *= 2
			}
			if next < hi {
				hi = next
			}
		}
		failures, aux, err := e.runBatch(ctx, sp, idle, pointNs, res.Trials, hi)
		if err != nil {
			return res, fmt.Errorf("mc: point %d (id %d): %w", idx, sp.ID, err)
		}
		res.Trials = hi
		res.Failures += failures
		res.Aux += aux
		done := res.Trials >= sp.Trials
		if !done && e.cfg.TargetRelWidth > 0 && res.Failures > 0 {
			lo, hiCI := e.cfg.Interval(res.Failures, res.Trials)
			rate := float64(res.Failures) / float64(res.Trials)
			done = hiCI-lo <= e.cfg.TargetRelWidth*rate
		}
		if e.cfg.Progress != nil {
			p := Progress{
				Point: idx, ID: sp.ID, Trials: res.Trials, Target: sp.Trials,
				Failures: res.Failures, Done: done,
			}
			if pointNs != nil {
				p.TrialNs = pointNs.Snapshot().Summary()
			}
			e.mu.Lock()
			e.cfg.Progress(p)
			e.mu.Unlock()
		}
		if done {
			break
		}
	}
	return res, nil
}

type shardTally struct {
	failures int
	aux      int64
	err      error
}

// shardTask is one shard's slot in the scheduler: a preallocated
// sched.Task whose Run executes trials [lo, hi) and writes the tally
// into its own result slot, so submission allocates nothing per shard
// beyond the batch's two slices.
type shardTask struct {
	e       *engine
	ctx     context.Context
	sp      *PointSpec
	idle    chan Shard
	pointNs *obs.Histogram
	lo, hi  int
	out     *shardTally
	wg      *sync.WaitGroup
}

// Run implements sched.Task.
func (t *shardTask) Run() {
	defer t.wg.Done()
	*t.out = t.e.runShard(t.ctx, *t.sp, t.idle, t.pointNs, t.lo, t.hi)
}

// runBatch fans trials [lo, hi) out over the worker pool and waits for
// the whole batch. Shard errors are joined in shard order, so the
// reported error set does not depend on scheduling.
func (e *engine) runBatch(ctx context.Context, sp PointSpec, idle chan Shard, pointNs *obs.Histogram, lo, hi int) (failures int, aux int64, err error) {
	size := sp.ShardSize
	if size <= 0 {
		size = e.cfg.ShardSize
	}
	if size <= 0 {
		// A few tasks per worker evens out stragglers while keeping
		// shard-state reuse worthwhile.
		size = (hi - lo + 4*e.workers - 1) / (4 * e.workers)
		if size < 1 {
			size = 1
		}
	}
	n := (hi - lo + size - 1) / size
	tallies := make([]shardTally, n)
	tasks := make([]shardTask, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for s := 0; s < n; s++ {
		a := lo + s*size
		b := a + size
		if b > hi {
			b = hi
		}
		tasks[s] = shardTask{
			e: e, ctx: ctx, sp: &sp, idle: idle, pointNs: pointNs,
			lo: a, hi: b, out: &tallies[s], wg: &wg,
		}
		// Submission never blocks (deques are unbounded), so a canceled
		// context is handled inside runShard: every shard checks ctx
		// before acquiring state and reports ctx.Err() uniformly.
		e.pool.Submit(&tasks[s])
	}
	wg.Wait()
	var errs []error
	seen := map[string]bool{}
	for _, t := range tallies {
		failures += t.failures
		aux += t.aux
		// Identical messages collapse to one: when every shard fails the
		// same way (e.g. NewShard rejects the point's config), the point
		// reports the failure once, not once per shard.
		if t.err != nil && !seen[t.err.Error()] {
			seen[t.err.Error()] = true
			errs = append(errs, t.err)
		}
	}
	return failures, aux, errors.Join(errs...)
}

// runShard executes trials [lo, hi) on one shard state, resetting the
// counter-based stream before every trial. With telemetry enabled it
// wall-times every trial into a shard-private obs.Local that is merged
// into the point-level and process-level histograms when the shard
// finishes — the randomness streams are untouched, so results stay
// bit-identical with and without Obs.
func (e *engine) runShard(ctx context.Context, sp PointSpec, idle chan Shard, pointNs *obs.Histogram, lo, hi int) (out shardTally) {
	if err := ctx.Err(); err != nil {
		out.err = err
		return
	}
	var sh Shard
	select {
	case sh = <-idle:
	default:
		var err error
		sh, err = sp.NewShard()
		if err != nil {
			out.err = err
			return
		}
	}
	defer func() {
		select {
		case idle <- sh:
		default:
		}
	}()
	var rec *obs.Local
	if pointNs != nil {
		rec = obs.NewLocal(0, e.obsTrialNs, pointNs)
		defer rec.Flush()
	}
	// Engine counters advance as each shard retires (not at point
	// checkpoints), so a scrape during a long fixed-budget batch sees
	// trial counts move together with the latency histograms.
	trialsDone := 0
	defer func() {
		if e.obsTrials != nil {
			e.obsTrials.Add(int64(trialsDone))
			e.obsFailures.Add(int64(out.failures))
		}
	}()
	if e.cfg.Batch {
		if bs, ok := sh.(BatchShard); ok {
			if w := bs.BatchSize(); w > 1 {
				e.runShardChunks(ctx, sp, bs, w, rec, lo, hi, &out, &trialsDone)
				return
			}
		}
	}
	src := NewStream(e.cfg.RootSeed, sp.ID, int64(lo))
	rng := rand.New(src)
	for t := lo; t < hi; t++ {
		if (t-lo)%cancelCheckEvery == 0 && ctx.Err() != nil {
			out.err = ctx.Err()
			return
		}
		src.Reset(e.cfg.RootSeed, sp.ID, int64(t))
		var start time.Time
		if rec != nil {
			start = time.Now()
		}
		o, err := sh.Trial(rng, t)
		if rec != nil {
			rec.Observe(uint64(time.Since(start)))
		}
		if err != nil {
			out.err = fmt.Errorf("trial %d: %w", t, err)
			return
		}
		if o.Failed {
			out.failures++
		}
		out.aux += o.Aux
		trialsDone++
	}
	return out
}

// runShardChunks is the BatchShard inner loop of runShard: trials
// [lo, hi) advance w at a time, each trial of a chunk driven by its own
// counter-based stream reset exactly as the scalar loop would reset it,
// so batching never perturbs the randomness. Trial timing is observed
// as the chunk's wall clock split evenly across its trials — the
// per-trial mean and totals stay comparable with the scalar path, the
// within-chunk spread is genuinely unobservable.
func (e *engine) runShardChunks(ctx context.Context, sp PointSpec, bs BatchShard, w int, rec *obs.Local, lo, hi int, out *shardTally, trialsDone *int) {
	srcs := make([]*Stream, w)
	rngs := make([]*rand.Rand, w)
	for i := range srcs {
		srcs[i] = NewStream(e.cfg.RootSeed, sp.ID, int64(lo+i))
		rngs[i] = rand.New(srcs[i])
	}
	outs := make([]Outcome, w)
	sinceCheck := 0
	for t := lo; t < hi; t += w {
		if sinceCheck >= cancelCheckEvery {
			sinceCheck = 0
			if ctx.Err() != nil {
				out.err = ctx.Err()
				return
			}
		}
		n := w
		if t+n > hi {
			n = hi - t
		}
		for i := 0; i < n; i++ {
			srcs[i].Reset(e.cfg.RootSeed, sp.ID, int64(t+i))
		}
		var start time.Time
		if rec != nil {
			start = time.Now()
		}
		if err := bs.TrialBatch(rngs[:n], t, outs[:n]); err != nil {
			out.err = fmt.Errorf("trials %d..%d: %w", t, t+n-1, err)
			return
		}
		if rec != nil {
			per := uint64(time.Since(start)) / uint64(n)
			for i := 0; i < n; i++ {
				rec.Observe(per)
			}
		}
		for i := 0; i < n; i++ {
			if outs[i].Failed {
				out.failures++
			}
			out.aux += outs[i].Aux
		}
		sinceCheck += n
		*trialsDone += n
	}
}
