package mc_test

import (
	"context"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/mc"
	"repro/internal/obs"
	"repro/internal/stats"
)

func coinSpecs(points, trials int) []mc.PointSpec {
	specs := make([]mc.PointSpec, points)
	for i := range specs {
		specs[i] = mc.PointSpec{
			ID:     int64(100 + i),
			Trials: trials,
			NewShard: func() (mc.Shard, error) {
				return mc.ShardFunc(func(rng *rand.Rand, t int) (mc.Outcome, error) {
					return mc.Outcome{Failed: rng.Float64() < 0.3, Aux: 1}, nil
				}), nil
			},
		}
	}
	return specs
}

// Progress callbacks must never overlap: the engine serializes them
// under one mutex across all concurrently running points.
func TestProgressSerialized(t *testing.T) {
	var inFlight, maxSeen atomic.Int32
	cfg := mc.Config{
		RootSeed:       1,
		Workers:        8,
		TargetRelWidth: 1e-9, // force every checkpoint
		Interval:       func(k, n int) (float64, float64) { return stats.WilsonInterval(k, n, 1.96) },
		MinTrials:      50,
		Progress: func(p mc.Progress) {
			n := inFlight.Add(1)
			for {
				m := maxSeen.Load()
				if n <= m || maxSeen.CompareAndSwap(m, n) {
					break
				}
			}
			time.Sleep(100 * time.Microsecond) // widen any overlap window
			inFlight.Add(-1)
		},
	}
	if _, err := mc.Run(context.Background(), cfg, coinSpecs(6, 400)); err != nil {
		t.Fatal(err)
	}
	if got := maxSeen.Load(); got != 1 {
		t.Fatalf("saw %d overlapping Progress callbacks, want 1", got)
	}
}

// With Obs set, every completed trial is timed: at each checkpoint the
// point's TrialNs histogram count matches the trials spent, and the
// registry counters match the final tallies.
func TestObsTrialAccounting(t *testing.T) {
	reg := obs.NewRegistry()
	var mu sync.Mutex
	last := map[int64]mc.Progress{}
	cfg := mc.Config{
		RootSeed: 2,
		Workers:  4,
		Obs:      reg,
		Progress: func(p mc.Progress) {
			if p.TrialNs.Count != uint64(p.Trials) {
				t.Errorf("point %d: TrialNs.Count = %d at %d trials", p.ID, p.TrialNs.Count, p.Trials)
			}
			if p.TrialNs.P50 > p.TrialNs.Max || p.TrialNs.Min > p.TrialNs.P50 {
				t.Errorf("point %d: quantiles out of order: %+v", p.ID, p.TrialNs)
			}
			mu.Lock()
			last[p.ID] = p
			mu.Unlock()
		},
	}
	results, err := mc.Run(context.Background(), cfg, coinSpecs(3, 2000))
	if err != nil {
		t.Fatal(err)
	}
	var wantTrials, wantFails int64
	for _, r := range results {
		wantTrials += int64(r.Trials)
		wantFails += int64(r.Failures)
	}
	if got := reg.Counter("mc_trials_total").Load(); got != wantTrials {
		t.Fatalf("mc_trials_total = %d, want %d", got, wantTrials)
	}
	if got := reg.Counter("mc_failures_total").Load(); got != wantFails {
		t.Fatalf("mc_failures_total = %d, want %d", got, wantFails)
	}
	if got := reg.Histogram("mc_trial_ns").Count(); got != uint64(wantTrials) {
		t.Fatalf("mc_trial_ns count = %d, want %d", got, wantTrials)
	}
	if len(last) != 3 {
		t.Fatalf("saw progress for %d points, want 3", len(last))
	}
}

// Telemetry must not perturb results: identical Results with and
// without Obs, and across worker counts while instrumented.
func TestObsDeterminism(t *testing.T) {
	run := func(reg *obs.Registry, workers int) []mc.Result {
		cfg := mc.Config{RootSeed: 3, Workers: workers, ShardSize: 17, Obs: reg}
		res, err := mc.Run(context.Background(), cfg, coinSpecs(4, 3000))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(nil, 4)
	instr := run(obs.NewRegistry(), 4)
	if !reflect.DeepEqual(plain, instr) {
		t.Fatalf("results diverged with Obs set:\n%+v\n%+v", plain, instr)
	}
	instr1 := run(obs.NewRegistry(), 1)
	if !reflect.DeepEqual(plain, instr1) {
		t.Fatalf("instrumented results depend on worker count:\n%+v\n%+v", plain, instr1)
	}
}

// AsyncProgress never blocks the caller, preserves order, and counts
// drops when the sink cannot keep up.
func TestAsyncProgress(t *testing.T) {
	var got []mc.Progress
	release := make(chan struct{})
	reg := obs.NewRegistry()
	cb, stop := mc.AsyncProgress(func(p mc.Progress) {
		<-release // hold the drain goroutine so the queue fills
		got = append(got, p)
	}, 4, reg)

	start := time.Now()
	for i := 0; i < 20; i++ {
		cb(mc.Progress{Point: i})
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("callback blocked for %v", elapsed)
	}
	close(release)
	dropped := stop()
	// 20 sent into a depth-4 queue with a held sink: at least one
	// drop, and sent = delivered + dropped.
	if dropped == 0 {
		t.Fatal("expected drops with a held sink and a full queue")
	}
	if int64(len(got))+dropped != 20 {
		t.Fatalf("delivered %d + dropped %d != sent 20", len(got), dropped)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Point < got[i-1].Point {
			t.Fatalf("reports out of order: %d after %d", got[i].Point, got[i-1].Point)
		}
	}
	if reg.Counter("mc_progress_reports_total").Load() != 20 {
		t.Fatalf("reports counter = %d", reg.Counter("mc_progress_reports_total").Load())
	}
	if reg.Counter("mc_progress_dropped_total").Load() != dropped {
		t.Fatalf("dropped counter = %d, want %d", reg.Counter("mc_progress_dropped_total").Load(), dropped)
	}
}
